/**
 * @file
 * Golden-fixture generator for the engine determinism tests.
 *
 * Emits, for each (scheme, core count) combination of the golden
 * configuration, one JSON document that captures everything a
 * simulation run produces: the per-core RunResult and the full
 * `pomtlb-stats-v1` export. tests/test_engine_golden.cc compares the
 * same documents built by the current engine byte-for-byte against
 * the checked-in copies under tests/golden/.
 *
 * The checked-in fixtures were generated at the last commit BEFORE
 * the batched-engine rewrite, so the test proves the rewrite changed
 * no simulated outcome. Regenerate (only when an intentional
 * modelling change lands) with:
 *
 *     ./build/tools/gen_golden_fixtures tests/golden
 *
 * The golden configuration (mirrored in the test — keep in sync):
 * benchmark mcf and gups, every scheme in the registry, cores
 * {2, 4}, 3000 measured + 1500 warmup refs per core, seed 42,
 * SystemConfig::table1 with only numCores overridden.
 *
 * Alongside the fixtures the generator writes MANIFEST.json
 * recording the stats schema, the scheme list, and the fixture
 * names it produced. tests/test_golden_manifest.cc checks that
 * manifest against the live registry, so registering a new scheme
 * (or bumping the stats schema) fails loudly with a regeneration
 * hint instead of silently leaving the new scheme golden-uncovered.
 */

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/json.hh"
#include "sim/engine.hh"
#include "sim/machine.hh"
#include "sim/scheme_registry.hh"
#include "sim/stats_export.hh"
#include "trace/profile.hh"

namespace pomtlb
{

/** Serialise one CoreRunStats as a JSON object. */
static JsonValue
coreStatsToJson(const CoreRunStats &core)
{
    JsonValue object = JsonValue::object();
    object.set("refs", core.refs);
    object.set("instructions", core.instructions);
    object.set("cycles", core.cycles);
    object.set("translation_cycles", core.translationCycles);
    object.set("l1_tlb_hits", core.l1TlbHits);
    object.set("l2_tlb_hits", core.l2TlbHits);
    object.set("last_level_tlb_misses", core.lastLevelTlbMisses);
    object.set("avg_penalty_per_miss", core.avgPenaltyPerMiss);
    object.set("page_walks", core.pageWalks);
    object.set("shootdowns", core.shootdowns);
    return object;
}

/**
 * Build the golden document for one run: the per-core RunResult plus
 * the full pomtlb-stats-v1 export. test_engine_golden.cc builds the
 * identical structure and compares serialised bytes.
 */
JsonValue
buildGoldenDocument(Machine &machine, const RunResult &result,
                    const std::string &benchmark)
{
    JsonValue doc = JsonValue::object();
    JsonValue cores = JsonValue::array();
    for (const CoreRunStats &core : result.cores)
        cores.push(coreStatsToJson(core));
    JsonValue run = JsonValue::object();
    run.set("cores", std::move(cores));
    doc.set("run_result", std::move(run));
    doc.set("stats", buildStatsDocument(machine, result, benchmark));
    return doc;
}

} // namespace pomtlb

int
main(int argc, char **argv)
{
    using namespace pomtlb;

    const std::string out_dir = argc > 1 ? argv[1] : "tests/golden";

    const std::vector<std::string> benchmarks = {"mcf", "gups"};
    const std::vector<unsigned> core_counts = {2, 4};
    const std::vector<std::string> schemes =
        SchemeRegistry::global().names();
    std::vector<std::string> fixtures;

    for (const std::string &bench : benchmarks) {
        const BenchmarkProfile &profile =
            ProfileRegistry::byName(bench);
        for (const unsigned cores : core_counts) {
            for (const std::string &scheme : schemes) {
                SystemConfig system = SystemConfig::table1();
                system.numCores = cores;

                EngineConfig engine_config;
                engine_config.refsPerCore = 3000;
                engine_config.warmupRefsPerCore = 1500;
                engine_config.seed = 42;

                Machine machine(system, scheme);
                SimulationEngine engine(machine, profile,
                                        engine_config);
                const RunResult result = engine.run();

                const JsonValue doc = buildGoldenDocument(
                    machine, result, profile.name);

                const std::string name = "golden_" + bench + "_" +
                                         scheme + "_c" +
                                         std::to_string(cores) +
                                         ".json";
                const std::string path = out_dir + "/" + name;
                std::ofstream out(path);
                if (!out) {
                    std::fprintf(stderr, "cannot open %s\n",
                                 path.c_str());
                    return 1;
                }
                doc.write(out);
                out << "\n";
                fixtures.push_back(name);
                std::printf("wrote %s\n", path.c_str());
            }
        }
    }

    // The manifest records what this fixture set was generated
    // against; test_golden_manifest.cc diffs it against the live
    // registry and schema so stale fixtures fail with a
    // regeneration hint rather than silently under-covering.
    JsonValue manifest = JsonValue::object();
    manifest.set("stats_schema", std::string(kStatsSchemaV1));
    JsonValue scheme_list = JsonValue::array();
    for (const std::string &scheme : schemes)
        scheme_list.push(scheme);
    manifest.set("schemes", std::move(scheme_list));
    JsonValue bench_list = JsonValue::array();
    for (const std::string &bench : benchmarks)
        bench_list.push(bench);
    manifest.set("benchmarks", std::move(bench_list));
    JsonValue cores_list = JsonValue::array();
    for (const unsigned cores : core_counts)
        cores_list.push(std::uint64_t(cores));
    manifest.set("core_counts", std::move(cores_list));
    JsonValue fixture_list = JsonValue::array();
    for (const std::string &name : fixtures)
        fixture_list.push(name);
    manifest.set("fixtures", std::move(fixture_list));

    const std::string manifest_path = out_dir + "/MANIFEST.json";
    std::ofstream out(manifest_path);
    if (!out) {
        std::fprintf(stderr, "cannot open %s\n",
                     manifest_path.c_str());
        return 1;
    }
    manifest.write(out);
    out << "\n";
    std::printf("wrote %s\n", manifest_path.c_str());
    return 0;
}

/**
 * @file
 * pomtlb — command-line front end to the simulator.
 *
 * Commands:
 *   list                       list the built-in benchmark profiles
 *   list-schemes               list every registered translation
 *                              scheme (name, rank, aliases)
 *   show-config                print the Table 1 machine parameters
 *   run                        run one benchmark under one scheme
 *   compare                    run every registered scheme (a
 *                              Figure 8 row)
 *   sweep                      parallel benchmark x scheme sweep
 *   scenario                   multi-tenant consolidation scenario
 *                              (churn, overcommit, shootdown
 *                              storms); emits pomtlb-scenario-v1
 *   serve                      JSONL sweep service loop (requests
 *                              from stdin or a FIFO, streamed
 *                              pomtlb-serve-v1 events on stdout)
 *   cache-gc                   evict sweep-cache entries by age
 *                              and/or total size
 *   trace                      trace-pack front end: `trace pack`
 *                              builds a pomtlb-tracepack-v1 file
 *                              from legacy/text traces or from
 *                              generator output, `trace info`
 *                              describes one, `trace cat` dumps
 *                              records as pomtlb-tracetext-v1
 *                              (docs/trace-format.md)
 *   record-trace               dump a synthetic trace to a file
 *   replay-trace               drive a machine from trace files
 *
 * sweep options:
 *   --jobs N                   worker threads (0 = all hardware
 *                              threads; default 0)
 *   --benchmarks a,b,c         comma list (default: all Table 2)
 *   --schemes x,y              comma list (default: all registered)
 *   --out FILE                 write JSON results for
 *                              scripts/plot_results.py
 *   --stats                    embed per-component statistics in
 *                              the JSON output
 *   --cache-dir DIR            memoize per-job results under DIR;
 *                              repeated sweeps execute only the
 *                              delta (docs/sweep-service.md)
 *   --journal FILE             checkpoint completed jobs to FILE;
 *                              a killed sweep resumes from it
 *   plus the run/compare configuration options below
 *
 * scenario options:
 *   --tenants N[,M,...]        tenant counts; one scenario per
 *                              count (default 1). A 1-tenant
 *                              scenario reproduces `pomtlb run`
 *                              byte-for-byte.
 *   --tenant-benchmarks a,b    workloads cycled across tenants
 *                              (default: the --benchmark value)
 *   --churn-interval N         refs between tenant arrivals when
 *                              tenants oversubscribe the cores
 *                              (0 = spread evenly)
 *   --resident-per-core N      concurrently resident tenants per
 *                              core under churn (default 4)
 *   --overcommit F             memory overcommit factor; resident
 *                              footprints shrink by F (default 1.0)
 *   --migrate-pages N          pages migrated (remap + shootdown)
 *                              when a tenant arrives (default 0)
 *   --storm-interval N         TLB-shootdown storm every N refs
 *                              per core (default 0 = off)
 *   --storm-pages N            pages invalidated per storm burst
 *                              (default 8)
 *   --time-slice N             round-robin scheduling quantum in
 *                              refs (default 2000)
 *   --out FILE                 write the pomtlb-scenario-v1 JSON
 *                              document (a campaign wrapper when
 *                              more than one tenant count is given)
 *   --stats-out FILE           write the embedded pomtlb-stats-v1
 *                              document of the first scenario
 *                              (byte-comparable to `pomtlb run
 *                              --stats-out`)
 *   --cache-dir / --journal / --jobs
 *                              memoize and checkpoint scenario jobs
 *                              exactly like sweep
 *   plus the run/compare configuration options below
 *
 * cache-gc options:
 *   --cache-dir DIR            the sweep cache to collect
 *   --max-bytes N              keep at most N bytes of entries
 *                              (0 = no size limit)
 *   --max-age SECONDS          evict entries older than this
 *                              (0 = no age limit)
 *   --dry-run                  report what the eviction would
 *                              delete without removing anything
 *
 * trace options (see docs/trace-format.md for the full grammar):
 *   trace pack --out PACK [--in FILE]...
 *              [--benchmark B --cores N [--count C] [--seed S]]
 *              [--chunk-records N] [--stream-names a,b,...]
 *   trace info PACK [--json]
 *   trace cat PACK [--stream NAME] [--limit N]
 *
 * serve options:
 *   --in FILE                  read requests from FILE (a FIFO
 *                              works; default stdin)
 *   --cache-dir DIR            shared result cache for every
 *                              campaign served
 *   --journal-dir DIR          one checkpoint journal per campaign
 *                              under DIR
 *   --jobs N                   worker threads per campaign
 *
 * Common options (run / compare / sweep):
 *   --benchmark NAME           workload (default mcf)
 *   --scheme NAME              any registered scheme name or alias;
 *                              see `pomtlb list-schemes` (run only)
 *   --cores N                  core count (default 8)
 *   --refs N                   measured references per core
 *   --warmup N                 warmup references per core
 *   --capacity MB              POM-TLB capacity
 *   --seed N                   experiment seed
 *   --native                   native (non-virtualized) mode
 *   --no-caching               POM-TLB entries not cacheable
 *   --no-bypass                disable the bypass predictor
 *   --no-size-predictor        disable the page-size predictor
 *   --unified                  unified skewed POM-TLB organisation
 *   --prefetch                 prefetch the adjacent page's set line
 *   --tlb-aware                TLB-aware cache replacement (S 5.1)
 *   --shootdown-interval N     inject a TLB shootdown every N refs
 *   --stats                    dump the pomtlb-stats-v1 document
 *                              (run) / embed per-component stats
 *                              (sweep)
 *   --stats-out FILE           write the pomtlb-stats-v1 JSON
 *                              document to FILE (run only)
 *   --trace-out FILE           enable the sampled translation trace
 *                              and write it to FILE as JSONL
 *                              (run only; POMTLB_TRACE_SAMPLE sets
 *                              the 1-in-N interval, default 64)
 *   --trace-in PACK            replay a pomtlb-tracepack-v1 file
 *                              instead of the synthetic generator:
 *                              core c takes stream c mod
 *                              stream_count (run and scenario)
 *   --trace-record PACK        scenario only: record the compiled
 *                              tenant streams to PACK (one stream
 *                              per vCPU) before running
 *
 * record-trace options:
 *   --benchmark NAME --core N --count N --out FILE
 *
 * replay-trace options:
 *   --trace FILE (repeatable; one per core, reused cyclically)
 *   plus the run options above (--benchmark supplies the workload
 *   metadata the performance model needs)
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/report.hh"
#include "common/json.hh"
#include "sim/experiment.hh"
#include "sim/engine.hh"
#include "sim/machine.hh"
#include "sim/perf_model.hh"
#include "sim/scenario.hh"
#include "sim/scheme_registry.hh"
#include "sim/stats_export.hh"
#include "sim/sweep.hh"
#include "sim/sweep_cache.hh"
#include "sim/sweep_serve.hh"
#include "sim/translation_trace.hh"
#include "trace/error.hh"
#include "trace/generator.hh"
#include "trace/source.hh"
#include "trace/trace_file.hh"
#include "trace/tracepack.hh"

namespace
{

using namespace pomtlb;

struct CliOptions
{
    std::string benchmark = "mcf";
    std::string scheme = "pom";
    unsigned cores = 8;
    std::uint64_t refs = 0;   // 0 = default
    std::uint64_t warmup = 0; // 0 = default
    std::uint64_t capacityMb = 0;
    std::uint64_t seed = 0;
    bool native = false;
    bool noCaching = false;
    bool noBypass = false;
    bool noSizePredictor = false;
    bool unified = false;
    bool prefetch = false;
    bool tlbAware = false;
    std::uint64_t shootdownInterval = 0;
    // Intra-run sharding (run / scenario / sweep / serve). Thread
    // count and epoch length never change results — only wall-clock
    // (docs/internals.md §14).
    unsigned runThreads = 0;
    std::uint64_t epochCycles = 0;
    bool dumpStats = false;
    std::string statsOutPath;
    std::string traceOutPath;

    // record-trace
    unsigned core = 0;
    std::uint64_t count = 100000;
    std::string outPath = "trace.pomt";
    bool outPathSet = false;

    // replay-trace
    std::vector<std::string> tracePaths;

    // trace-pack replay and recording (run / scenario)
    std::string tracePackIn;
    std::string tracePackRecord;

    // sweep
    unsigned jobs = 0; // 0 = all hardware threads
    std::string benchmarksList;
    std::string schemesList;
    std::string cacheDir;
    std::string journalPath;

    // serve
    std::string journalDir;
    std::string inPath;

    // scenario
    std::string tenantsList = "1";
    std::string tenantBenchmarks;
    std::uint64_t churnInterval = 0;
    std::uint64_t residentPerCore = 4;
    double overcommit = 1.0;
    std::uint64_t migratePages = 0;
    std::uint64_t stormInterval = 0;
    std::uint64_t stormPages = 8;
    std::uint64_t timeSlice = 0;

    // cache-gc
    std::uint64_t maxBytes = 0;
    std::uint64_t maxAgeSeconds = 0;
    bool dryRun = false;
};

[[noreturn]] void
usage()
{
    std::fprintf(
        stderr,
        "usage: pomtlb <list|list-schemes|show-config|run|compare|"
        "sweep|scenario|serve|cache-gc|trace|record-trace|"
        "replay-trace> [options]\n  see the header of "
        "tools/pomtlb_cli.cc or the README for the option list\n");
    std::exit(2);
}

std::uint64_t
parseNumber(const char *text)
{
    char *end = nullptr;
    const std::uint64_t value = std::strtoull(text, &end, 10);
    if (end == text || *end != '\0') {
        std::fprintf(stderr, "bad number: '%s'\n", text);
        std::exit(2);
    }
    return value;
}

double
parseDouble(const char *text)
{
    char *end = nullptr;
    const double value = std::strtod(text, &end);
    if (end == text || *end != '\0') {
        std::fprintf(stderr, "bad number: '%s'\n", text);
        std::exit(2);
    }
    return value;
}

CliOptions
parseOptions(int argc, char **argv, int first)
{
    CliOptions options;
    for (int i = first; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--benchmark")
            options.benchmark = next();
        else if (arg == "--scheme")
            options.scheme = next();
        else if (arg == "--cores")
            options.cores = static_cast<unsigned>(parseNumber(next()));
        else if (arg == "--refs")
            options.refs = parseNumber(next());
        else if (arg == "--warmup")
            options.warmup = parseNumber(next());
        else if (arg == "--capacity")
            options.capacityMb = parseNumber(next());
        else if (arg == "--seed")
            options.seed = parseNumber(next());
        else if (arg == "--native")
            options.native = true;
        else if (arg == "--no-caching")
            options.noCaching = true;
        else if (arg == "--no-bypass")
            options.noBypass = true;
        else if (arg == "--no-size-predictor")
            options.noSizePredictor = true;
        else if (arg == "--unified")
            options.unified = true;
        else if (arg == "--prefetch")
            options.prefetch = true;
        else if (arg == "--tlb-aware")
            options.tlbAware = true;
        else if (arg == "--shootdown-interval")
            options.shootdownInterval = parseNumber(next());
        else if (arg == "--run-threads")
            options.runThreads =
                static_cast<unsigned>(parseNumber(next()));
        else if (arg == "--epoch-cycles")
            options.epochCycles = parseNumber(next());
        else if (arg == "--stats")
            options.dumpStats = true;
        else if (arg == "--stats-out")
            options.statsOutPath = next();
        else if (arg == "--trace-out")
            options.traceOutPath = next();
        else if (arg == "--core")
            options.core = static_cast<unsigned>(parseNumber(next()));
        else if (arg == "--count")
            options.count = parseNumber(next());
        else if (arg == "--out") {
            options.outPath = next();
            options.outPathSet = true;
        }
        else if (arg == "--trace")
            options.tracePaths.push_back(next());
        else if (arg == "--trace-in")
            options.tracePackIn = next();
        else if (arg == "--trace-record")
            options.tracePackRecord = next();
        else if (arg == "--jobs")
            options.jobs = static_cast<unsigned>(parseNumber(next()));
        else if (arg == "--benchmarks")
            options.benchmarksList = next();
        else if (arg == "--schemes")
            options.schemesList = next();
        else if (arg == "--cache-dir")
            options.cacheDir = next();
        else if (arg == "--journal")
            options.journalPath = next();
        else if (arg == "--journal-dir")
            options.journalDir = next();
        else if (arg == "--in")
            options.inPath = next();
        else if (arg == "--tenants")
            options.tenantsList = next();
        else if (arg == "--tenant-benchmarks")
            options.tenantBenchmarks = next();
        else if (arg == "--churn-interval")
            options.churnInterval = parseNumber(next());
        else if (arg == "--resident-per-core")
            options.residentPerCore = parseNumber(next());
        else if (arg == "--overcommit")
            options.overcommit = parseDouble(next());
        else if (arg == "--migrate-pages")
            options.migratePages = parseNumber(next());
        else if (arg == "--storm-interval")
            options.stormInterval = parseNumber(next());
        else if (arg == "--storm-pages")
            options.stormPages = parseNumber(next());
        else if (arg == "--time-slice")
            options.timeSlice = parseNumber(next());
        else if (arg == "--max-bytes")
            options.maxBytes = parseNumber(next());
        else if (arg == "--max-age")
            options.maxAgeSeconds = parseNumber(next());
        else if (arg == "--dry-run")
            options.dryRun = true;
        else
            usage();
    }
    return options;
}

/**
 * Resolve a CLI scheme name (canonical or alias) through the registry,
 * or exit 2 with the list of valid names.
 */
const std::string &
schemeFromName(const std::string &name)
{
    if (const SchemeRegistry::Info *info =
            SchemeRegistry::global().find(name))
        return info->name;
    std::fprintf(stderr, "unknown scheme '%s' (known:", name.c_str());
    for (const std::string &known : SchemeRegistry::global().names())
        std::fprintf(stderr, " %s", known.c_str());
    std::fprintf(stderr, ")\n");
    std::exit(2);
}

/** Split a comma-separated list ("a,b,c"). */
std::vector<std::string>
splitList(const std::string &text)
{
    std::vector<std::string> parts;
    std::string current;
    for (const char c : text) {
        if (c == ',') {
            if (!current.empty())
                parts.push_back(current);
            current.clear();
        } else {
            current += c;
        }
    }
    if (!current.empty())
        parts.push_back(current);
    return parts;
}

ExperimentConfig
configFrom(const CliOptions &options)
{
    ExperimentConfig config = defaultExperimentConfig();
    config.system.numCores = options.cores;
    if (options.refs)
        config.engine.refsPerCore = options.refs;
    if (options.warmup)
        config.engine.warmupRefsPerCore = options.warmup;
    if (options.capacityMb)
        config.system.pomTlb.capacityBytes = options.capacityMb << 20;
    if (options.seed)
        config.engine.seed = options.seed;
    if (options.native)
        config.system.mode = ExecMode::Native;
    config.system.pomTlb.cacheable = !options.noCaching;
    config.system.pomTlb.bypassPredictor = !options.noBypass;
    config.system.pomTlb.sizePredictor = !options.noSizePredictor;
    config.system.pomTlb.unifiedOrganization = options.unified;
    config.system.pomTlb.prefetchNextSet = options.prefetch;
    config.system.tlbAwareCaching = options.tlbAware;
    config.engine.shootdownIntervalRefs = options.shootdownInterval;
    config.engine.runThreads = options.runThreads;
    if (options.epochCycles)
        config.engine.epochCycles = options.epochCycles;
    if (options.jobs)
        config.sweepJobs = options.jobs;
    return config;
}

int
commandList()
{
    ResultTable table({"name", "pattern", "mode", "footprint",
                       "large pages %", "ovh virt %"});
    for (const auto &profile : ProfileRegistry::all()) {
        table.addRow(
            {profile.name, accessPatternName(profile.pattern),
             profile.multithreaded ? "multithreaded" : "rate",
             std::to_string(profile.footprintBytes >> 20) + "MB",
             ResultTable::num(profile.fracLargePagesPct, 1),
             ResultTable::num(profile.overheadVirtualPct, 2)});
    }
    table.print(std::cout);
    return 0;
}

int
commandListSchemes()
{
    ResultTable table({"name", "rank", "aliases", "description"});
    for (const SchemeRegistry::Info *info :
         SchemeRegistry::global().entries()) {
        std::string aliases;
        for (const std::string &alias : info->aliases) {
            if (!aliases.empty())
                aliases += ", ";
            aliases += alias;
        }
        table.addRow({info->name, std::to_string(info->rank), aliases,
                      info->description});
    }
    table.print(std::cout);
    return 0;
}

int
commandShowConfig()
{
    const SystemConfig config = SystemConfig::table1();
    std::printf("cores               : %u @ %.1f GHz\n",
                config.numCores, config.coreFreqGhz);
    std::printf("L1D / L2 / L3       : %lluKB / %lluKB / %lluMB\n",
                static_cast<unsigned long long>(
                    config.l1d.sizeBytes >> 10),
                static_cast<unsigned long long>(
                    config.l2.sizeBytes >> 10),
                static_cast<unsigned long long>(
                    config.l3.sizeBytes >> 20));
    std::printf("L1 TLB (4K/2M)      : %u / %u entries\n",
                config.l1TlbSmall.entries, config.l1TlbLarge.entries);
    std::printf("L2 TLB              : %u entries, %u-way\n",
                config.l2Tlb.entries, config.l2Tlb.associativity);
    std::printf("PSC (PML4/PDP/PDE)  : %u / %u / %u entries\n",
                config.psc.pml4Entries, config.psc.pdpEntries,
                config.psc.pdeEntries);
    std::printf("POM-TLB             : %lluMB, %u-way, base 0x%llx\n",
                static_cast<unsigned long long>(
                    config.pomTlb.capacityBytes >> 20),
                config.pomTlb.associativity,
                static_cast<unsigned long long>(
                    config.pomTlb.baseAddress));
    std::printf("die-stacked DRAM    : %u banks, tCAS/tRCD/tRP "
                "%u-%u-%u @ %.1f GHz\n",
                config.dieStacked.numBanks, config.dieStacked.tCas,
                config.dieStacked.tRcd, config.dieStacked.tRp,
                config.dieStacked.busFreqGhz);
    std::printf("DDR4 main memory    : %u banks x %u channels, "
                "%u-%u-%u @ %.3f GHz\n",
                config.mainMemory.numBanks,
                config.mainMemory.numChannels, config.mainMemory.tCas,
                config.mainMemory.tRcd, config.mainMemory.tRp,
                config.mainMemory.busFreqGhz);
    return 0;
}

int
commandRun(const CliOptions &options)
{
    const BenchmarkProfile &profile =
        ProfileRegistry::byName(options.benchmark);
    ExperimentConfig config = configFrom(options);
    config.engine.tracePackPath = options.tracePackIn;
    const std::string &scheme = schemeFromName(options.scheme);

    Machine machine(config.system, scheme);
    if (!options.traceOutPath.empty())
        machine.enableTracing();
    SimulationEngine engine(machine, profile, config.engine);
    const RunResult result = engine.run();

    std::printf("benchmark             : %s\n", profile.name.c_str());
    if (!config.engine.tracePackPath.empty())
        std::printf("trace pack            : %s\n",
                    config.engine.tracePackPath.c_str());
    std::printf("scheme                : %s\n", scheme.c_str());
    std::printf("mode                  : %s\n",
                execModeName(config.system.mode));
    const RunTotals &totals = result.totals();
    std::printf("refs (measured)       : %llu\n",
                static_cast<unsigned long long>(totals.refs));
    std::printf("L2 TLB misses         : %llu\n",
                static_cast<unsigned long long>(
                    totals.lastLevelMisses));
    std::printf("avg penalty per miss  : %.2f cycles\n",
                totals.avgPenaltyPerMiss);
    std::printf("page walks            : %llu (%.2f%% of misses)\n",
                static_cast<unsigned long long>(totals.pageWalks),
                100.0 * totals.walkFraction);
    if (totals.shootdowns > 0) {
        std::printf("shootdowns injected   : %llu\n",
                    static_cast<unsigned long long>(
                        totals.shootdowns));
    }
    if (PomTlbScheme *pom = machine.pomTlbScheme()) {
        std::printf("served by L2D$/L3D$   : %.1f%% / %.1f%% (of "
                    "remainder)\n",
                    100.0 * pom->l2CacheServiceRate(),
                    100.0 * pom->l3CacheServiceRate());
        std::printf("size/bypass accuracy  : %.1f%% / %.1f%%\n",
                    100.0 * pom->sizePredictorAccuracy(),
                    100.0 * pom->bypassPredictorAccuracy());
        std::printf("die-stacked RBH       : %.1f%%\n",
                    100.0 *
                        machine.pomTlbDevice()->rowBufferHitRate());
    }
    if (options.dumpStats || !options.statsOutPath.empty()) {
        const JsonValue document =
            buildStatsDocument(machine, result, profile.name);
        if (options.dumpStats) {
            std::printf("\n");
            document.write(std::cout);
            std::printf("\n");
        }
        if (!options.statsOutPath.empty()) {
            std::ofstream out(options.statsOutPath);
            if (!out) {
                std::fprintf(stderr, "cannot open %s for writing\n",
                             options.statsOutPath.c_str());
                return 1;
            }
            document.write(out);
            out << "\n";
            std::printf("wrote %s document to %s\n", kStatsSchemaV1,
                        options.statsOutPath.c_str());
        }
    }
    if (!options.traceOutPath.empty()) {
        std::ofstream out(options.traceOutPath);
        if (!out) {
            std::fprintf(stderr, "cannot open %s for writing\n",
                         options.traceOutPath.c_str());
            return 1;
        }
        machine.tracer()->writeJsonl(out);
        std::printf("wrote %zu trace events (1-in-%llu sampling) "
                    "to %s\n",
                    machine.tracer()->size(),
                    static_cast<unsigned long long>(
                        machine.tracer()->sampleInterval()),
                    options.traceOutPath.c_str());
    }
    return 0;
}

int
commandCompare(const CliOptions &options)
{
    const BenchmarkProfile &profile =
        ProfileRegistry::byName(options.benchmark);
    const ExperimentConfig config = configFrom(options);
    const BenchmarkComparison comparison =
        compareSchemes(profile, config);

    ResultTable table({"scheme", "cycles/miss", "cost ratio",
                       "improvement %"});
    for (const auto &[scheme, summary] : comparison.runs) {
        const SchemeDelta &delta = comparison.delta(scheme);
        table.addRow(
            {scheme,
             ResultTable::num(summary.avgPenaltyPerMiss, 1),
             ResultTable::num(delta.costRatio, 3),
             ResultTable::num(delta.improvementPct, 2)});
    }

    std::printf("benchmark: %s (ovh %s%% measured)\n\n",
                profile.name.c_str(),
                ResultTable::num(profile.overheadVirtualPct, 2)
                    .c_str());
    table.print(std::cout);
    return 0;
}

int
commandSweep(const CliOptions &options)
{
    SweepSpec spec;
    spec.withBase(configFrom(options));

    if (options.benchmarksList.empty() ||
        options.benchmarksList == "all") {
        spec.withAllBenchmarks();
    } else {
        const std::vector<std::string> names =
            splitList(options.benchmarksList);
        for (const std::string &name : names) {
            if (ProfileRegistry::find(name) == nullptr) {
                std::fprintf(stderr, "unknown benchmark '%s'\n",
                             name.c_str());
                return 2;
            }
        }
        spec.withBenchmarks(names);
    }

    if (options.schemesList.empty() || options.schemesList == "all") {
        spec.withAllSchemes();
    } else {
        std::vector<std::string> schemes;
        for (const std::string &name :
             splitList(options.schemesList))
            schemes.push_back(schemeFromName(name));
        spec.withSchemes(std::move(schemes));
    }

    if (options.dumpStats)
        spec.withComponentStats();

    const bool service_mode =
        !options.cacheDir.empty() || !options.journalPath.empty();
    const SweepRunner runner(options.jobs);
    std::fprintf(stderr, "sweep: %zu jobs on %u worker thread(s)\n",
                 spec.jobCount(), runner.jobs());

    const auto start = std::chrono::steady_clock::now();
    std::vector<ExperimentResult> results;
    JsonValue document;
    SweepServiceStats service_stats;
    if (service_mode) {
        SweepServiceOptions service_options;
        service_options.cacheDir = options.cacheDir;
        service_options.journalPath = options.journalPath;
        service_options.jobs = options.jobs;
        if (const char *crash =
                std::getenv("POMTLB_SWEEP_CRASH_AFTER")) {
            service_options.crashAfterAppends =
                static_cast<unsigned>(parseNumber(crash));
        }
        SweepService service(service_options);
        const std::size_t total = spec.jobCount();
        document = service.run(
            spec, [&](const SweepJobReport &report, const JsonValue &) {
                std::fprintf(stderr, "  [%zu/%zu] %s (%s)\n",
                             report.index + 1, total,
                             report.key.c_str(),
                             jobSourceName(report.source));
            });
        service_stats = service.stats();
        results = SweepResultWriter::fromJson(document);
    } else {
        results = runner.run(spec);
        document = SweepResultWriter::toJson(results);
    }
    const double wall =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start)
            .count();

    ResultTable table({"experiment", "cycles/miss", "walk %",
                       "L3D$ hit %", "wall s"});
    for (const ExperimentResult &result : results) {
        table.addRow(
            {result.request.key(),
             ResultTable::num(result.summary.avgPenaltyPerMiss, 1),
             ResultTable::num(100.0 * result.summary.walkFraction,
                              2),
             ResultTable::num(100.0 * result.summary.l3DataHitRate,
                              2),
             ResultTable::num(result.wallSeconds, 2)});
    }
    table.print(std::cout);
    std::printf("\n%zu experiments in %.2f s wall (%u workers)\n",
                results.size(), wall, runner.jobs());
    if (service_mode) {
        std::printf("sweep-cache: jobs=%zu executed=%zu "
                    "cache_hits=%zu journal_hits=%zu "
                    "deduplicated=%zu quarantined=%zu\n",
                    service_stats.jobs, service_stats.executed,
                    service_stats.cacheHits,
                    service_stats.journalHits,
                    service_stats.deduplicated,
                    service_stats.quarantined);
    }

    if (options.outPathSet) {
        std::ofstream out(options.outPath);
        if (!out) {
            std::fprintf(stderr, "cannot open %s for writing\n",
                         options.outPath.c_str());
            return 1;
        }
        document.write(out);
        out << "\n";
        std::printf("wrote JSON results to %s\n",
                    options.outPath.c_str());
    }
    return 0;
}

/** Build one ScenarioSpec for @p tenants tenants from the CLI. */
ScenarioSpec
scenarioFrom(const CliOptions &options, std::uint64_t tenants)
{
    const ExperimentConfig config = configFrom(options);
    ScenarioSpec spec;
    spec.name = "consolidation-" + std::to_string(tenants) + "t";
    spec.scheme = schemeFromName(options.scheme);
    spec.system = config.system;
    spec.engine = config.engine;
    spec.tenantCount = static_cast<unsigned>(tenants);
    spec.tenantBenchmarks = options.tenantBenchmarks.empty()
                                ? std::vector<std::string>{
                                      options.benchmark}
                                : splitList(options.tenantBenchmarks);
    for (const std::string &name : spec.tenantBenchmarks) {
        if (ProfileRegistry::find(name) == nullptr) {
            std::fprintf(stderr, "unknown benchmark '%s'\n",
                         name.c_str());
            std::exit(2);
        }
    }
    spec.churnIntervalRefs = options.churnInterval;
    spec.residentPerCore =
        static_cast<unsigned>(options.residentPerCore);
    spec.overcommitFactor = options.overcommit;
    spec.migrationPagesPerArrival = options.migratePages;
    spec.storm.intervalRefs = options.stormInterval;
    spec.storm.pagesPerBurst =
        static_cast<unsigned>(options.stormPages);
    spec.timeSliceRefs = options.timeSlice;
    return spec;
}

int
commandScenario(const CliOptions &options)
{
    std::vector<ScenarioSpec> specs;
    for (const std::string &count : splitList(options.tenantsList))
        specs.push_back(
            scenarioFrom(options, parseNumber(count.c_str())));
    if (specs.empty()) {
        std::fprintf(stderr, "--tenants needs at least one count\n");
        return 2;
    }
    if (!options.tracePackIn.empty()) {
        for (ScenarioSpec &spec : specs)
            spec.withTracePack(options.tracePackIn);
    }
    if (!options.tracePackRecord.empty()) {
        // Record the compiled tenant streams of the first scenario
        // (one pack stream per vCPU) on a throwaway machine, then
        // run the campaign as usual.
        if (specs.size() > 1) {
            std::fprintf(stderr, "--trace-record records the first "
                                 "of %zu scenarios\n",
                         specs.size());
        }
        const ScenarioSpec &spec = specs.front();
        Machine machine(spec.system, spec.scheme);
        ScenarioEngine engine(machine, spec);
        engine.recordPack(options.tracePackRecord);
        std::printf("recorded tenant streams of '%s' to %s\n",
                    spec.name.c_str(),
                    options.tracePackRecord.c_str());
    }

    ScenarioCampaignOptions campaign;
    campaign.cacheDir = options.cacheDir;
    campaign.journalPath = options.journalPath;
    campaign.jobs = options.jobs;
    if (const char *crash = std::getenv("POMTLB_SWEEP_CRASH_AFTER")) {
        campaign.crashAfterAppends =
            static_cast<unsigned>(parseNumber(crash));
    }

    const auto start = std::chrono::steady_clock::now();
    SweepServiceStats service_stats;
    const std::size_t total = specs.size();
    const JsonValue document = runScenarioCampaign(
        specs, campaign, &service_stats,
        [&](const ScenarioJobReport &report, const JsonValue &) {
            std::fprintf(stderr, "  [%zu/%zu] %s (%s)\n",
                         report.index + 1, total,
                         report.name.c_str(),
                         jobSourceName(report.source));
        });
    const double wall =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start)
            .count();

    ResultTable table({"scenario", "tenants", "departures",
                       "migrations", "storm sd", "worst p99"});
    const JsonValue &runs = document.at("runs");
    for (std::size_t i = 0; i < runs.elements().size(); ++i) {
        const JsonValue &run = runs.at(i);
        const JsonValue &tenants = run.at("tenants");
        double worst_p99 = 0.0;
        for (const JsonValue &tenant : tenants.elements()) {
            worst_p99 = std::max(
                worst_p99,
                tenant.at("p99_translation_cycles").asNumber());
        }
        const JsonValue &events = run.at("events");
        table.addRow(
            {run.at("scenario").at("name").asString(),
             std::to_string(tenants.elements().size()),
             std::to_string(events.at("departures").asUint()),
             std::to_string(events.at("migrations").asUint()),
             std::to_string(events.at("storm_shootdowns").asUint()),
             ResultTable::num(worst_p99, 0)});
    }
    table.print(std::cout);
    std::printf("\n%zu scenario(s) in %.2f s wall\n", total, wall);
    const bool service_mode =
        !options.cacheDir.empty() || !options.journalPath.empty();
    if (service_mode) {
        std::printf("scenario-cache: jobs=%zu executed=%zu "
                    "cache_hits=%zu journal_hits=%zu "
                    "deduplicated=%zu quarantined=%zu\n",
                    service_stats.jobs, service_stats.executed,
                    service_stats.cacheHits,
                    service_stats.journalHits,
                    service_stats.deduplicated,
                    service_stats.quarantined);
    }

    if (options.outPathSet) {
        std::ofstream out(options.outPath);
        if (!out) {
            std::fprintf(stderr, "cannot open %s for writing\n",
                         options.outPath.c_str());
            return 1;
        }
        // A single scenario gets its own document; several get the
        // campaign wrapper. Both carry schema pomtlb-scenario-v1.
        const JsonValue &payload =
            total == 1 ? runs.at(std::size_t{0}) : document;
        payload.write(out);
        out << "\n";
        std::printf("wrote %s document to %s\n", kScenarioSchemaV1,
                    options.outPath.c_str());
    }
    if (!options.statsOutPath.empty()) {
        std::ofstream out(options.statsOutPath);
        if (!out) {
            std::fprintf(stderr, "cannot open %s for writing\n",
                         options.statsOutPath.c_str());
            return 1;
        }
        runs.at(std::size_t{0}).at("stats").write(out);
        out << "\n";
        std::printf("wrote %s document to %s\n", kStatsSchemaV1,
                    options.statsOutPath.c_str());
    }
    return 0;
}

int
commandCacheGc(const CliOptions &options)
{
    if (options.cacheDir.empty()) {
        std::fprintf(stderr, "cache-gc needs --cache-dir DIR\n");
        return 2;
    }
    const SweepCacheGcStats stats = sweepCacheGc(
        options.cacheDir, options.maxBytes, options.maxAgeSeconds,
        options.dryRun);
    if (options.dryRun) {
        std::printf("cache-gc (dry run): scanned=%zu "
                    "would_evict=%zu bytes_would_free=%llu "
                    "bytes_kept=%llu\n",
                    stats.scanned, stats.evicted,
                    static_cast<unsigned long long>(stats.bytesFreed),
                    static_cast<unsigned long long>(stats.bytesKept));
    } else {
        std::printf("cache-gc: scanned=%zu evicted=%zu "
                    "bytes_freed=%llu bytes_kept=%llu\n",
                    stats.scanned, stats.evicted,
                    static_cast<unsigned long long>(stats.bytesFreed),
                    static_cast<unsigned long long>(stats.bytesKept));
    }
    return 0;
}

int
commandServe(const CliOptions &options)
{
    ServeOptions serve_options;
    serve_options.cacheDir = options.cacheDir;
    serve_options.journalDir = options.journalDir;
    serve_options.jobs = options.jobs;
    if (const char *crash = std::getenv("POMTLB_SWEEP_CRASH_AFTER")) {
        serve_options.crashAfterAppends =
            static_cast<unsigned>(parseNumber(crash));
    }

    std::ifstream file_input;
    if (!options.inPath.empty()) {
        // Opening a FIFO blocks until a writer connects, which is
        // exactly the behaviour a service loop wants.
        file_input.open(options.inPath);
        if (!file_input) {
            std::fprintf(stderr, "cannot open %s for reading\n",
                         options.inPath.c_str());
            return 1;
        }
    }
    std::istream &input =
        options.inPath.empty()
            ? static_cast<std::istream &>(std::cin)
            : static_cast<std::istream &>(file_input);

    ServeSession session(input, std::cout, serve_options);
    const std::size_t handled = session.runToCompletion();
    std::fprintf(stderr, "serve: handled %zu request(s)\n", handled);
    return 0;
}

int
commandReplayTrace(const CliOptions &options)
{
    if (options.tracePaths.empty()) {
        std::fprintf(stderr,
                     "replay-trace needs at least one --trace FILE\n");
        return 2;
    }
    const BenchmarkProfile &profile =
        ProfileRegistry::byName(options.benchmark);
    const ExperimentConfig config = configFrom(options);
    const std::string &scheme = schemeFromName(options.scheme);

    std::vector<std::unique_ptr<TraceSource>> sources;
    for (unsigned core = 0; core < options.cores; ++core) {
        const std::string &path =
            options.tracePaths[core % options.tracePaths.size()];
        sources.push_back(std::make_unique<FileSource>(path));
    }

    Machine machine(config.system, scheme);
    SimulationEngine engine(machine, profile, config.engine,
                            std::move(sources));
    const RunResult result = engine.run();

    const RunTotals &totals = result.totals();
    std::printf("replayed %llu refs from %zu trace file(s) under "
                "%s\n",
                static_cast<unsigned long long>(totals.refs),
                options.tracePaths.size(), scheme.c_str());
    std::printf("L2 TLB misses         : %llu\n",
                static_cast<unsigned long long>(
                    totals.lastLevelMisses));
    std::printf("avg penalty per miss  : %.2f cycles\n",
                totals.avgPenaltyPerMiss);
    std::printf("page walks            : %.2f%% of misses\n",
                100.0 * totals.walkFraction);
    return 0;
}

int
commandRecordTrace(const CliOptions &options)
{
    const BenchmarkProfile &profile =
        ProfileRegistry::byName(options.benchmark);
    TraceGenerator generator(profile, options.core,
                             options.seed ? options.seed : 42);
    const std::uint64_t written =
        recordTrace(generator, options.outPath, options.count);
    std::printf("wrote %llu records of '%s' (core %u) to %s\n",
                static_cast<unsigned long long>(written),
                profile.name.c_str(), options.core,
                options.outPath.c_str());
    return 0;
}

/** True when @p path starts with the legacy `POMT` trace magic. */
bool
hasLegacyTraceMagic(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    char magic[4] = {};
    in.read(magic, sizeof(magic));
    return in.gcount() == sizeof(magic) &&
           std::memcmp(magic, "POMT", 4) == 0;
}

[[noreturn]] void
traceUsage()
{
    std::fprintf(
        stderr,
        "usage: pomtlb trace pack --out PACK [--in FILE]...\n"
        "                        [--benchmark B --cores N "
        "[--count C] [--seed S]]\n"
        "                        [--chunk-records N] "
        "[--stream-names a,b,...]\n"
        "       pomtlb trace info PACK [--json]\n"
        "       pomtlb trace cat PACK [--stream NAME] "
        "[--limit N]\n  see docs/trace-format.md\n");
    std::exit(2);
}

/**
 * `pomtlb trace pack`: build a pomtlb-tracepack-v1 file, either by
 * converting legacy POMT / pomtlb-tracetext-v1 inputs (one stream
 * per `--in` file, auto-detected by magic) or by capturing
 * generator output (`--benchmark`; one stream per core, seeded
 * exactly like `pomtlb run`, so `run --trace-in` replays it
 * byte-identically).
 */
int
commandTracePack(int argc, char **argv)
{
    std::string outPath;
    std::vector<std::string> inputs;
    std::string benchmark;
    unsigned cores = 0;
    std::uint64_t count = 0;
    std::uint64_t seed = 0;
    std::uint64_t chunkRecords = 4096;
    std::string streamNamesList;
    for (int i = 3; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--out")
            outPath = next();
        else if (arg == "--in")
            inputs.push_back(next());
        else if (arg == "--benchmark")
            benchmark = next();
        else if (arg == "--cores")
            cores = static_cast<unsigned>(parseNumber(next()));
        else if (arg == "--count")
            count = parseNumber(next());
        else if (arg == "--seed")
            seed = parseNumber(next());
        else if (arg == "--chunk-records")
            chunkRecords = parseNumber(next());
        else if (arg == "--stream-names")
            streamNamesList = next();
        else
            traceUsage();
    }
    if (outPath.empty() || chunkRecords == 0)
        traceUsage();
    if (inputs.empty() == benchmark.empty()) {
        std::fprintf(stderr, "trace pack needs either --in files or "
                             "a --benchmark to capture\n");
        return 2;
    }

    const std::size_t streamCount =
        inputs.empty() ? (cores ? cores : 1) : inputs.size();
    std::vector<std::string> names = splitList(streamNamesList);
    if (!names.empty() && names.size() != streamCount) {
        std::fprintf(stderr,
                     "--stream-names gives %zu names for %zu "
                     "streams\n",
                     names.size(), streamCount);
        return 2;
    }
    if (names.empty()) {
        for (std::size_t i = 0; i < streamCount; ++i)
            names.push_back("core" + std::to_string(i));
    }

    TracePackWriter writer(outPath, names, chunkRecords);
    if (!inputs.empty()) {
        for (std::size_t i = 0; i < inputs.size(); ++i) {
            const std::string &input = inputs[i];
            const std::uint32_t stream =
                static_cast<std::uint32_t>(i);
            const auto sink = [&](const TraceRecord *records,
                                  std::size_t n) {
                writer.append(stream, records, n);
            };
            const std::uint64_t records =
                hasLegacyTraceMagic(input)
                    ? scanLegacyTrace(input, sink)
                    : scanTextTrace(input, sink);
            std::printf("  %s: %llu records -> stream '%s'\n",
                        input.c_str(),
                        static_cast<unsigned long long>(records),
                        names[i].c_str());
        }
    } else {
        // Capture the exact streams a generator-driven run issues:
        // same combined seed, one stream per core, warmup + measured
        // length by default.
        const BenchmarkProfile &profile =
            ProfileRegistry::byName(benchmark);
        const ExperimentConfig defaults = defaultExperimentConfig();
        const std::uint64_t engineSeed =
            seed ? seed : defaults.engine.seed;
        const std::uint64_t combined =
            engineSeed ^ defaults.system.seed;
        const std::uint64_t perStream =
            count ? count
                  : defaults.engine.warmupRefsPerCore +
                        defaults.engine.refsPerCore;
        std::vector<TraceRecord> block(4096);
        for (std::size_t stream = 0; stream < streamCount;
             ++stream) {
            GeneratorSource source(profile,
                                   static_cast<unsigned>(stream),
                                   combined);
            std::uint64_t left = perStream;
            while (left > 0) {
                const std::size_t want =
                    static_cast<std::size_t>(std::min<std::uint64_t>(
                        block.size(), left));
                const std::size_t got =
                    source.fill(block.data(), want);
                writer.append(static_cast<std::uint32_t>(stream),
                              block.data(), got);
                left -= got;
            }
        }
    }
    writer.close();
    std::printf("wrote %llu records in %zu stream(s) to %s "
                "(content hash %s)\n",
                static_cast<unsigned long long>(writer.recordCount()),
                streamCount, outPath.c_str(),
                writer.contentHash().c_str());
    return 0;
}

/** `pomtlb trace info`: describe a pack (human table or JSON). */
int
commandTraceInfo(const std::string &path, bool json)
{
    const JsonValue info = tracePackInfoJson(path);
    if (json) {
        info.write(std::cout);
        std::printf("\n");
        return 0;
    }
    std::printf("schema        : %s\n",
                info.at("schema").asString().c_str());
    std::printf("path          : %s\n",
                info.at("path").asString().c_str());
    std::printf("file bytes    : %llu\n",
                static_cast<unsigned long long>(
                    info.at("file_bytes").asUint()));
    std::printf("records       : %llu in %llu chunk(s) of %llu\n",
                static_cast<unsigned long long>(
                    info.at("records").asUint()),
                static_cast<unsigned long long>(
                    info.at("chunks").asUint()),
                static_cast<unsigned long long>(
                    info.at("chunk_records").asUint()));
    std::printf("content hash  : %s\n",
                info.at("content_hash").asString().c_str());
    std::printf("finalized     : %s\n",
                info.at("finalized").asBool() ? "yes"
                                              : "no (recovered)");
    for (const JsonValue &stream :
         info.at("streams").elements()) {
        std::printf("  stream '%s': %llu records, %llu chunk(s)\n",
                    stream.at("name").asString().c_str(),
                    static_cast<unsigned long long>(
                        stream.at("records").asUint()),
                    static_cast<unsigned long long>(
                        stream.at("chunks").asUint()));
    }
    return 0;
}

/** `pomtlb trace cat`: dump records as pomtlb-tracetext-v1. */
int
commandTraceCat(const std::string &path,
                const std::string &streamName, std::uint64_t limit)
{
    TracePackReader reader(path);
    std::vector<std::size_t> streams;
    if (!streamName.empty()) {
        const int index = reader.streamIndex(streamName);
        if (index < 0) {
            std::fprintf(stderr, "no stream '%s' in %s\n",
                         streamName.c_str(), path.c_str());
            return 2;
        }
        streams.push_back(static_cast<std::size_t>(index));
    } else {
        for (std::size_t i = 0; i < reader.streamCount(); ++i)
            streams.push_back(i);
    }
    std::printf("# pomtlb-tracetext-v1\n");
    std::vector<TraceRecord> block(1024);
    for (const std::size_t stream : streams) {
        std::printf("# stream: %s\n",
                    reader.stream(stream).name.c_str());
        const std::uint64_t total = reader.stream(stream).records;
        const std::uint64_t wanted =
            limit ? std::min(limit, total) : total;
        std::uint64_t pos = 0;
        while (pos < wanted) {
            const std::size_t got = reader.read(
                stream, pos, block.data(),
                static_cast<std::size_t>(std::min<std::uint64_t>(
                    block.size(), wanted - pos)));
            for (std::size_t i = 0; i < got; ++i)
                std::printf("%s\n",
                            formatTextRecord(block[i]).c_str());
            pos += got;
        }
    }
    return 0;
}

/** Dispatch `pomtlb trace <pack|info|cat>`. */
int
commandTrace(int argc, char **argv)
{
    if (argc < 3)
        traceUsage();
    const std::string sub = argv[2];
    if (sub == "pack")
        return commandTracePack(argc, argv);

    // info / cat take a positional pack path plus a few flags.
    std::string path;
    bool json = false;
    std::string streamName;
    std::uint64_t limit = 0;
    for (int i = 3; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--json")
            json = true;
        else if (arg == "--stream")
            streamName = next();
        else if (arg == "--limit")
            limit = parseNumber(next());
        else if (!arg.empty() && arg[0] != '-' && path.empty())
            path = arg;
        else
            traceUsage();
    }
    if (path.empty())
        traceUsage();
    if (sub == "info")
        return commandTraceInfo(path, json);
    if (sub == "cat")
        return commandTraceCat(path, streamName, limit);
    traceUsage();
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        usage();
    const std::string command = argv[1];
    // Malformed trace input (bad pack, torn file, bad text line) is
    // an expected operator error, not a bug: report the path-named
    // message and exit 1 instead of crashing.
    try {
        if (command == "trace")
            return commandTrace(argc, argv);
        const CliOptions options = parseOptions(argc, argv, 2);

        if (command == "list")
            return commandList();
        if (command == "list-schemes")
            return commandListSchemes();
        if (command == "show-config")
            return commandShowConfig();
        if (command == "run")
            return commandRun(options);
        if (command == "compare")
            return commandCompare(options);
        if (command == "sweep")
            return commandSweep(options);
        if (command == "scenario")
            return commandScenario(options);
        if (command == "serve")
            return commandServe(options);
        if (command == "cache-gc")
            return commandCacheGc(options);
        if (command == "record-trace")
            return commandRecordTrace(options);
        if (command == "replay-trace")
            return commandReplayTrace(options);
    } catch (const TraceError &error) {
        std::fprintf(stderr, "pomtlb: %s\n", error.what());
        return 1;
    }
    usage();
}

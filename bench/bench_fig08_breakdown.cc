/**
 * @file
 * Figure 8 companion — where the translation cycles go, per scheme.
 *
 * For every (benchmark, scheme) pair this bench splits the measured
 * post-L1 translation cycles across the serving levels the
 * observability layer tracks (SchemeRunSummary::cycleBreakdown): the
 * private SRAM TLBs, the POM-TLB's L2D/L3D cached set lines, the
 * die-stacked DRAM array, the Shared_L2 SRAM structure, the TSB
 * buffer, and the page-walk fallback. Each cell is the percentage of
 * that run's total translation cycles, so rows sum to ~100.
 *
 * Expected shape (paper Section 5): under POM-TLB the page-walk share
 * collapses to near zero and most cycles are served from the cached
 * set lines; the baseline is 100% walk cycles by construction; TSB
 * splits between buffer hits and walks.
 *
 * The same decomposition is available as the `cycle_breakdown` object
 * of `pomtlb-stats-v1` (`pomtlb run --stats`) and of each
 * `pomtlb-sweep-v1` run; `scripts/plot_results.py --breakdown` draws
 * it as the stacked bars of Figure 8's cost model.
 */

#include "bench_common.hh"

namespace
{

using namespace pomtlb;
using namespace pomtlb::bench;

/**
 * The scheme-side service points a summary row reports, in stack
 * order. SramL1/SramL2 are excluded: the MMU's exact split reports
 * their share as one "sram_tlb" column.
 */
const std::vector<ServicePoint> &
reportedPoints()
{
    static const std::vector<ServicePoint> points = {
        ServicePoint::CacheL2D,     ServicePoint::CacheL3D,
        ServicePoint::PomDram,      ServicePoint::SharedTlb,
        ServicePoint::TsbBuffer,    ServicePoint::CoalescedTlb,
        ServicePoint::VictimaL2D,   ServicePoint::VictimaL3D,
        ServicePoint::PageWalk};
    return points;
}

void
runBreakdown(::benchmark::State &state,
             const BenchmarkProfile &profile)
{
    const ExperimentConfig config = figureConfig();
    for (auto _ : state) {
        const BenchmarkComparison comparison =
            compareSchemes(profile, config);
        for (const auto &[scheme, summary] : comparison.runs) {
            const double total = summary.translationCycles
                                     ? static_cast<double>(
                                           summary.translationCycles)
                                     : 1.0;
            std::vector<std::pair<std::string, double>> row;
            row.emplace_back("sram_tlb %",
                             100.0 * summary.sramCycles / total);
            for (const ServicePoint point : reportedPoints()) {
                double cycles = 0.0;
                for (const auto &[at, value] :
                     summary.cycleBreakdown) {
                    if (at == point)
                        cycles = static_cast<double>(value);
                }
                row.emplace_back(
                    std::string(servicePointName(point)) + " %",
                    100.0 * cycles / total);
            }
            collector().record(profile.name + "/" + scheme,
                               std::move(row));
        }
        state.counters["schemes"] =
            static_cast<double>(comparison.runs.size());
    }
}

} // namespace

int
main(int argc, char **argv)
{
    pomtlb::bench::registerPerWorkload("fig08brk", runBreakdown);
    return pomtlb::bench::benchMain(
        argc, argv, "Figure 8 (cycle breakdown)",
        "Translation-cycle share per serving level, % of each run's "
        "total translation cycles", 1);
}

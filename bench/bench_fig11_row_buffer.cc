/**
 * @file
 * Figure 11 — Row-buffer hit rate of the die-stacked DRAM channel
 * housing the POM-TLB (8-core).
 *
 * Expected shape (paper): ~71% average; spatially-local workloads
 * (streamcluster) near the top, scattered-access workloads lower.
 */

#include "bench_common.hh"

namespace
{

using namespace pomtlb;
using namespace pomtlb::bench;

void
runFig11(::benchmark::State &state, const BenchmarkProfile &profile)
{
    const ExperimentConfig config = figureConfig();
    for (auto _ : state) {
        const SchemeRunSummary pom =
            runScheme(profile, "POM-TLB", config);
        state.counters["row_buffer_hit_rate"] =
            pom.dieStackedRowBufferHitRate;
        collector().record(
            profile.name,
            {{"row-buffer hit rate",
              pom.dieStackedRowBufferHitRate},
             {"POM DRAM share of requests",
              (1.0 - pom.pomL2CacheServiceRate) *
                  (1.0 - pom.pomL3CacheServiceRate)}});
    }
}

} // namespace

int
main(int argc, char **argv)
{
    pomtlb::bench::registerPerWorkload("fig11", runFig11);
    return pomtlb::bench::benchMain(
        argc, argv, "Figure 11",
        "Row Buffer Hits in the L3 TLB die-stacked DRAM (8 core)", 3);
}

/**
 * @file
 * Ablation (Section 2.1.1) — POM-TLB associativity.
 *
 * The paper chose 4 ways because lower associativity "invokes
 * significantly higher conflict misses" while 4 x 16 B entries fill
 * exactly one 64 B burst. This ablation measures the page-walk
 * fraction (POM-TLB misses) at 1, 2 and 4 ways with total capacity
 * held constant.
 *
 * Note: associativities other than 4 break the one-set-per-line
 * property, so this ablation disables data-cache probing (the array
 * effect is what is being isolated).
 */

#include "bench_common.hh"

namespace
{

using namespace pomtlb;
using namespace pomtlb::bench;

const char *const workloads[] = {"mcf", "astar", "soplex",
                                 "GemsFDTD", "gcc"};

void
runAssoc(::benchmark::State &state, const BenchmarkProfile &profile)
{
    for (auto _ : state) {
        std::vector<std::pair<std::string, double>> row;
        for (const unsigned ways : {1u, 2u, 4u}) {
            // Caching is off for every point so that only the array
            // geometry varies (a non-64 B set cannot be cached as
            // one line anyway), and capacity is constrained to 4 MB
            // so set conflicts — not sheer capacity — decide the
            // outcome. Equation 1's low-bit indexing means a single
            // contiguous footprint never self-collides; the conflict
            // pressure here comes from the rate-mode copies'
            // ASLR-staggered address spaces competing for sets.
            ExperimentConfig config = figureConfig();
            config.system.pomTlb.associativity = ways;
            config.system.pomTlb.cacheable = false;
            config.system.pomTlb.capacityBytes = 4 << 20;
            const SchemeRunSummary summary =
                runScheme(profile, "POM-TLB", config);
            row.emplace_back(std::to_string(ways) + "-way walk frac",
                             summary.walkFraction);
            state.counters[std::to_string(ways) + "w"] =
                summary.walkFraction;
        }
        collector().record(profile.name, std::move(row));
    }
}

} // namespace

int
main(int argc, char **argv)
{
    for (const char *name : workloads) {
        const BenchmarkProfile &profile =
            ProfileRegistry::byName(name);
        ::benchmark::RegisterBenchmark(
            (std::string("abl_associativity/") + name).c_str(),
            [&profile](::benchmark::State &state) {
                runAssoc(state, profile);
            })
            ->Unit(::benchmark::kMillisecond)
            ->Iterations(1);
    }
    return pomtlb::bench::benchMain(
        argc, argv, "Ablation (Section 2.1.1)",
        "POM-TLB conflict misses vs associativity (walk fraction, 4 MB)", 4);
}

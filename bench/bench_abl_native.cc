/**
 * @file
 * Ablation (Section 1) — POM-TLB under *native* execution.
 *
 * The introduction claims "many benchmarks spend up to 14% execution
 * time in translation even in the bare metal case and hence will
 * benefit from the proposed scheme which improves both native and
 * virtualized cases." This bench runs the Figure 8 methodology in
 * native mode (1D walks, Table 2's native overhead column).
 */

#include "bench_common.hh"

namespace
{

using namespace pomtlb;
using namespace pomtlb::bench;

void
runNative(::benchmark::State &state, const BenchmarkProfile &profile)
{
    ExperimentConfig native = figureConfig();
    native.system.mode = ExecMode::Native;
    ExperimentConfig virt = figureConfig();

    for (auto _ : state) {
        const SchemeRunSummary native_base = runScheme(
            profile, "Baseline", native);
        const double native_imp = pomImprovementOnly(profile, native);
        const double virt_imp = pomImprovementOnly(profile, virt);
        state.counters["native_pct"] = native_imp;
        state.counters["virtualized_pct"] = virt_imp;
        collector().record(
            profile.name,
            {{"native improvement (%)", native_imp},
             {"virtualized improvement (%)", virt_imp},
             {"native cyc/miss (sim)",
              native_base.avgPenaltyPerMiss},
             {"native cyc/miss (paper)",
              profile.cyclesPerMissNative}});
    }
}

} // namespace

int
main(int argc, char **argv)
{
    pomtlb::bench::registerPerWorkload("abl_native", runNative);
    return pomtlb::bench::benchMain(
        argc, argv, "Ablation (Section 1, native mode)",
        "POM-TLB improvement under native vs virtualized execution");
}

/**
 * @file
 * Figure 4 — SRAM access latency vs. capacity (normalised to 16 KB),
 * from the CACTI-style analytical model: the motivation for why the
 * L2 TLB cannot simply be grown.
 *
 * Expected shape (paper): super-linear growth; multi-MB SRAM arrays
 * are an order of magnitude slower than the 16 KB reference.
 */

#include <benchmark/benchmark.h>

#include <iostream>

#include "analysis/cacti.hh"
#include "analysis/report.hh"

namespace
{

using namespace pomtlb;

constexpr std::uint64_t capacitiesKb[] = {
    16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384,
};

void
BM_SramLatency(::benchmark::State &state)
{
    const std::uint64_t bytes =
        static_cast<std::uint64_t>(state.range(0)) * 1024;
    double normalized = 0.0;
    for (auto _ : state)
        normalized = SramLatencyModel::normalizedLatency(bytes);
    state.counters["normalized_latency"] = normalized;
    state.counters["access_ns"] =
        SramLatencyModel::accessTimeNs(bytes);
}

} // namespace

BENCHMARK(BM_SramLatency)
    ->Arg(16)
    ->Arg(32)
    ->Arg(64)
    ->Arg(128)
    ->Arg(256)
    ->Arg(512)
    ->Arg(1024)
    ->Arg(2048)
    ->Arg(4096)
    ->Arg(8192)
    ->Arg(16384);

int
main(int argc, char **argv)
{
    ::benchmark::Initialize(&argc, argv);
    if (::benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    ::benchmark::RunSpecifiedBenchmarks();
    ::benchmark::Shutdown();

    printExperimentHeader(
        std::cout, "Figure 4",
        "SRAM Access Latency vs Capacity (normalised to 16 KB)");
    ResultTable table(
        {"capacity", "access (ns)", "normalized", "cycles @4GHz"});
    for (const std::uint64_t kb : capacitiesKb) {
        const std::uint64_t bytes = kb * 1024;
        table.addRow(
            {kb >= 1024 ? std::to_string(kb / 1024) + "MB"
                        : std::to_string(kb) + "KB",
             ResultTable::num(SramLatencyModel::accessTimeNs(bytes),
                              2),
             ResultTable::num(
                 SramLatencyModel::normalizedLatency(bytes), 2),
             std::to_string(
                 SramLatencyModel::accessCycles(bytes, 4.0))});
    }
    table.print(std::cout);
    return 0;
}

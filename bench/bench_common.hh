/**
 * @file
 * Shared scaffolding for the figure/table bench binaries.
 *
 * Every bench registers one google-benchmark entry per workload (so
 * wall-time per experiment is measured and reported) and accumulates
 * the figure's data points; after the benchmark run, main() prints
 * the rows/series the paper reports for that figure, plus a CSV block
 * for external plotting.
 *
 * Environment:
 *  - POMTLB_QUICK=1        shrink run lengths for smoke testing;
 *  - POMTLB_CSV=1          also emit CSV;
 *  - POMTLB_CORES=<n>      override the Table 1 core count;
 *  - POMTLB_SWEEP_JOBS=<n> fan independent scheme runs out over n
 *                          worker threads (see sim/sweep.hh).
 *
 * Command line: `--jobs N` (or `--jobs=N`) overrides
 * POMTLB_SWEEP_JOBS; it is stripped before google-benchmark parses
 * the remaining flags.
 */

#ifndef POMTLB_BENCH_BENCH_COMMON_HH
#define POMTLB_BENCH_BENCH_COMMON_HH

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "analysis/report.hh"
#include "common/stats.hh"
#include "sim/experiment.hh"
#include "trace/profile.hh"

namespace pomtlb
{
namespace bench
{

/** Worker-thread override from `--jobs N` (0 = not given). */
inline unsigned &
jobsOverride()
{
    static unsigned jobs = 0;
    return jobs;
}

/** The standard experiment configuration for the figure benches. */
inline ExperimentConfig
figureConfig()
{
    ExperimentConfig config = defaultExperimentConfig();
    if (const char *cores = std::getenv("POMTLB_CORES"))
        config.system.numCores = std::atoi(cores);
    if (jobsOverride() != 0)
        config.sweepJobs = jobsOverride();
    return config;
}

/** Whether to also print CSV. */
inline bool
csvRequested()
{
    return std::getenv("POMTLB_CSV") != nullptr;
}

/** Accumulates one figure's per-benchmark rows in figure order. */
class FigureCollector
{
  public:
    void
    record(const std::string &benchmark,
           std::vector<std::pair<std::string, double>> values)
    {
        order.push_back(benchmark);
        rows[benchmark] = std::move(values);
    }

    bool
    has(const std::string &benchmark) const
    {
        return rows.count(benchmark) != 0;
    }

    /** Print the aligned table plus geomean/average summary rows. */
    void
    print(const std::string &figure_id,
          const std::string &description, int precision = 2) const
    {
        printExperimentHeader(std::cout, figure_id, description);
        if (order.empty()) {
            std::cout << "(no data)\n";
            return;
        }

        std::vector<std::string> headers = {"benchmark"};
        for (const auto &value : rows.at(order.front()))
            headers.push_back(value.first);

        ResultTable table(headers);
        std::map<std::string, std::vector<double>> columns;
        for (const auto &name : order) {
            std::vector<std::string> cells = {name};
            for (const auto &value : rows.at(name)) {
                cells.push_back(
                    ResultTable::num(value.second, precision));
                columns[value.first].push_back(value.second);
            }
            table.addRow(std::move(cells));
        }

        // Arithmetic-mean summary row (the paper quotes averages and
        // geomeans; geomean is undefined for non-positive values, so
        // the mean is the universally printable summary).
        std::vector<std::string> mean_row = {"average"};
        for (std::size_t c = 1; c < headers.size(); ++c) {
            const auto &column = columns[headers[c]];
            double sum = 0.0;
            for (double v : column)
                sum += v;
            mean_row.push_back(ResultTable::num(
                column.empty() ? 0.0 : sum / column.size(),
                precision));
        }
        table.addRow(std::move(mean_row));

        table.print(std::cout);
        if (csvRequested()) {
            std::cout << "\n[csv]\n";
            table.printCsv(std::cout);
        }
        std::cout.flush();
    }

  private:
    std::vector<std::string> order;
    std::map<std::string,
             std::vector<std::pair<std::string, double>>> rows;
};

/** The collector each bench binary fills. */
inline FigureCollector &
collector()
{
    static FigureCollector instance;
    return instance;
}

/** Register one google-benchmark entry per workload. */
inline void
registerPerWorkload(const std::string &prefix,
                    void (*func)(::benchmark::State &,
                                 const BenchmarkProfile &))
{
    for (const auto &profile : ProfileRegistry::all()) {
        ::benchmark::RegisterBenchmark(
            (prefix + "/" + profile.name).c_str(),
            [func, &profile](::benchmark::State &state) {
                func(state, profile);
            })
            ->Unit(::benchmark::kMillisecond)
            ->Iterations(1);
    }
}

/**
 * Strip `--jobs N` / `--jobs=N` from argv (google-benchmark rejects
 * unknown flags) and record the value in jobsOverride().
 */
inline void
extractJobsFlag(int &argc, char **argv)
{
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--jobs" && i + 1 < argc) {
            jobsOverride() =
                static_cast<unsigned>(std::atoi(argv[++i]));
            continue;
        }
        if (arg.rfind("--jobs=", 0) == 0) {
            jobsOverride() = static_cast<unsigned>(
                std::atoi(arg.c_str() + sizeof("--jobs=") - 1));
            continue;
        }
        argv[out++] = argv[i];
    }
    argc = out;
}

/** Standard bench main: run benchmarks, then print the figure. */
inline int
benchMain(int argc, char **argv, const std::string &figure_id,
          const std::string &description, int precision = 2)
{
    extractJobsFlag(argc, argv);
    ::benchmark::Initialize(&argc, argv);
    if (::benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    ::benchmark::RunSpecifiedBenchmarks();
    ::benchmark::Shutdown();
    collector().print(figure_id, description, precision);
    return 0;
}

} // namespace bench
} // namespace pomtlb

#endif // POMTLB_BENCH_BENCH_COMMON_HH

/**
 * @file
 * Figure 3 — Ratio of virtualized to native translation costs on the
 * baseline machine.
 *
 * Expected shape (paper): every workload >= 1x; gups 1.5x, gcc 1.9x,
 * lbm/mcf ~2.5x, ccomponent the extreme (26x).
 */

#include "bench_common.hh"

namespace
{

using namespace pomtlb;
using namespace pomtlb::bench;

void
runFig3(::benchmark::State &state, const BenchmarkProfile &profile)
{
    ExperimentConfig virt_config = figureConfig();
    virt_config.system.mode = ExecMode::Virtualized;
    ExperimentConfig native_config = figureConfig();
    native_config.system.mode = ExecMode::Native;

    for (auto _ : state) {
        const SchemeRunSummary virt = runScheme(
            profile, "Baseline", virt_config);
        const SchemeRunSummary native = runScheme(
            profile, "Baseline", native_config);
        const double ratio =
            native.avgPenaltyPerMiss > 0.0
                ? virt.avgPenaltyPerMiss / native.avgPenaltyPerMiss
                : 0.0;
        state.counters["virt_native_ratio"] = ratio;
        collector().record(
            profile.name,
            {{"virt cycles/miss", virt.avgPenaltyPerMiss},
             {"native cycles/miss", native.avgPenaltyPerMiss},
             {"ratio", ratio},
             {"paper ratio",
              profile.cyclesPerMissNative > 0.0
                  ? profile.cyclesPerMissVirtual /
                        profile.cyclesPerMissNative
                  : 0.0}});
    }
}

} // namespace

int
main(int argc, char **argv)
{
    pomtlb::bench::registerPerWorkload("fig03", runFig3);
    return pomtlb::bench::benchMain(
        argc, argv, "Figure 3",
        "Ratio of Virtualized to Native Translation Costs");
}

/**
 * @file
 * Figure 8 — Performance improvement of POM-TLB vs Shared_L2 vs TSB
 * (8-core, virtualized), computed with the paper's additive model
 * (Eqs. 2-5) from the measured Table 2 overheads and the simulated
 * translation-cost ratios.
 *
 * Expected shape (paper): POM-TLB ~10% average, >=16% for the top
 * benchmarks (mcf, soplex, GemsFDTD, astar, gups); Shared_L2 ~6%;
 * TSB ~4%; ordering POM > Shared_L2 > TSB; gups shows an
 * order-of-magnitude gap between POM-TLB and TSB.
 */

#include "bench_common.hh"

namespace
{

using namespace pomtlb;
using namespace pomtlb::bench;

void
runFig8(::benchmark::State &state, const BenchmarkProfile &profile)
{
    const ExperimentConfig config = figureConfig();
    for (auto _ : state) {
        const BenchmarkComparison comparison =
            compareSchemes(profile, config);
        // Runs/deltas are keyed by registry scheme name, so new
        // contenders show up here without editing this bench.
        std::vector<std::pair<std::string, double>> row;
        for (const auto &[name, summary] : comparison.runs) {
            (void)summary;
            if (name == "Baseline")
                continue;
            const SchemeDelta &delta = comparison.delta(name);
            state.counters[name + "_improvement_pct"] =
                delta.improvementPct;
            row.emplace_back(name + " (%)", delta.improvementPct);
        }
        row.emplace_back(
            "pom_cost_ratio",
            comparison.delta("POM-TLB").costRatio);
        collector().record(profile.name, std::move(row));
    }
}

} // namespace

int
main(int argc, char **argv)
{
    pomtlb::bench::registerPerWorkload("fig08", runFig8);
    return pomtlb::bench::benchMain(
        argc, argv, "Figure 8",
        "Performance Improvement of POM-TLB (8 core), % over the "
        "measured baseline");
}

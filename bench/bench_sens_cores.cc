/**
 * @file
 * Section 4.6 sensitivity — core count (4 / 8 / 32 cores).
 *
 * Expected shape (paper): the improvement stays approximately the
 * same across core counts; the POM-TLB is large enough that nearly
 * all page walks are eliminated regardless, and the per-core L2D$
 * provides the bulk of the latency benefit at every count
 * (footnote 3).
 */

#include "bench_common.hh"

namespace
{

using namespace pomtlb;
using namespace pomtlb::bench;

const char *const workloads[] = {"mcf", "gups", "astar", "canneal"};

void
runCores(::benchmark::State &state, const BenchmarkProfile &profile)
{
    for (auto _ : state) {
        std::vector<std::pair<std::string, double>> row;
        for (const unsigned cores : {4u, 8u, 32u}) {
            ExperimentConfig config = figureConfig();
            config.system.numCores = cores;
            // Keep total simulated work bounded at 32 cores.
            if (cores == 32) {
                config.engine.refsPerCore /= 2;
                config.engine.warmupRefsPerCore /= 2;
            }
            const double improvement =
                pomImprovementOnly(profile, config);
            row.emplace_back(
                std::to_string(cores) + " cores (%)", improvement);
            state.counters[std::to_string(cores) + "c"] =
                improvement;
        }
        collector().record(profile.name, std::move(row));
    }
}

} // namespace

int
main(int argc, char **argv)
{
    for (const char *name : workloads) {
        const BenchmarkProfile &profile =
            ProfileRegistry::byName(name);
        ::benchmark::RegisterBenchmark(
            (std::string("sens_cores/") + name).c_str(),
            [&profile](::benchmark::State &state) {
                runCores(state, profile);
            })
            ->Unit(::benchmark::kMillisecond)
            ->Iterations(1);
    }
    return pomtlb::bench::benchMain(
        argc, argv, "Section 4.6 (cores)",
        "POM-TLB improvement vs core count: 4/8/32");
}

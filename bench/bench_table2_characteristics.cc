/**
 * @file
 * Table 2 — Benchmark characteristics related to TLB misses.
 *
 * The measured columns (overheads, cycles per L2 TLB miss, large-page
 * fractions) are the paper's published constants, embedded as the
 * measurement substrate; the simulated columns are regenerated from
 * this repository's machine so the calibration is auditable: the
 * simulated per-miss costs should track the measured ordering, and
 * the simulated large-page access fraction should track Table 2's.
 */

#include "bench_common.hh"

#include "sim/machine.hh"

namespace
{

using namespace pomtlb;
using namespace pomtlb::bench;

void
runTable2(::benchmark::State &state, const BenchmarkProfile &profile)
{
    ExperimentConfig config = figureConfig();
    for (auto _ : state) {
        const SchemeRunSummary virt =
            runScheme(profile, "Baseline", config);

        // Simulated large-page fraction of the mapped footprint
        // (Table 2's number comes from the Linux pagemap, i.e. the
        // mapping mix, not the access mix).
        TraceGenerator generator(profile, 0,
                                 config.engine.seed ^
                                     config.system.seed);
        std::uint64_t large = 0;
        std::uint64_t regions = 0;
        for (Addr off = 0; off < generator.footprintSize();
             off += largePageBytes) {
            ++regions;
            if (generator.pageSizeOf(generator.footprintBase() +
                                     off) == PageSize::Large2M)
                ++large;
        }
        const double frac_large =
            100.0 * static_cast<double>(large) /
            static_cast<double>(regions);

        const RunTotals &totals = virt.run.totals();
        const double mpki =
            1000.0 * static_cast<double>(totals.lastLevelMisses) /
            static_cast<double>(totals.instructions);

        state.counters["cycles_per_miss"] = virt.avgPenaltyPerMiss;
        collector().record(
            profile.name,
            {{"ovh native % (paper)", profile.overheadNativePct},
             {"ovh virtual % (paper)", profile.overheadVirtualPct},
             {"cyc/miss virt (paper)", profile.cyclesPerMissVirtual},
             {"cyc/miss virt (sim)", virt.avgPenaltyPerMiss},
             {"large pages % (paper)", profile.fracLargePagesPct},
             {"large pages % (sim)", frac_large},
             {"L2TLB MPKI (sim)", mpki}});
    }
}

} // namespace

int
main(int argc, char **argv)
{
    pomtlb::bench::registerPerWorkload("table2", runTable2);
    return pomtlb::bench::benchMain(
        argc, argv, "Table 2",
        "Benchmark Characteristics Related to TLB Misses", 1);
}

/**
 * @file
 * Ablation (Section 2.2, "Other Die-Stacked DRAM Use") — what should
 * 16 MB of die-stacked DRAM be: an L4 data cache or an L3 TLB?
 *
 * The paper's argument: a data-cache hit saves one memory access and
 * overlaps with other requests, while a TLB hit can save an entire
 * (blocking) nested walk — so the TLB use of the capacity saves more
 * cycles. Three machines per workload:
 *
 *   baseline       nested walks, stacked DRAM unused;
 *   +L4 cache      nested walks, 16 MB stacked L4 data cache;
 *   POM-TLB        the paper's design (16 MB stacked L3 TLB).
 *
 * Reported as overall speedup: the additive model extended with the
 * measured data-stall share for the L4 variant would need per-
 * workload memory-overhead constants the paper does not publish, so
 * the comparison uses total simulated cycles (translation + data) on
 * identical traces — the quantity both designs actually shrink.
 */

#include "bench_common.hh"

#include "sim/engine.hh"
#include "sim/machine.hh"

namespace
{

using namespace pomtlb;
using namespace pomtlb::bench;

const char *const workloads[] = {"mcf", "gups", "astar", "lbm",
                                 "canneal"};

/** Total simulated machine cycles (max over cores) for a variant. */
double
totalCycles(const BenchmarkProfile &profile,
            const std::string &scheme, bool l4_cache)
{
    ExperimentConfig config = figureConfig();
    config.system.dieStackedL4Cache = l4_cache;
    Machine machine(config.system, scheme);
    SimulationEngine engine(machine, profile, config.engine);
    const RunResult result = engine.run();
    double cycles = 0.0;
    for (const auto &core : result.cores)
        cycles += static_cast<double>(core.cycles);
    return cycles;
}

void
runL4(::benchmark::State &state, const BenchmarkProfile &profile)
{
    for (auto _ : state) {
        const double base =
            totalCycles(profile, "Baseline", false);
        const double l4 =
            totalCycles(profile, "Baseline", true);
        const double pom =
            totalCycles(profile, "POM-TLB", false);

        const double l4_speedup = (base / l4 - 1.0) * 100.0;
        const double pom_speedup = (base / pom - 1.0) * 100.0;
        state.counters["l4_speedup_pct"] = l4_speedup;
        state.counters["pom_speedup_pct"] = pom_speedup;
        collector().record(
            profile.name,
            {{"16MB as L4 data cache (%)", l4_speedup},
             {"16MB as POM-TLB (%)", pom_speedup},
             {"TLB advantage (pp)", pom_speedup - l4_speedup}});
    }
}

} // namespace

int
main(int argc, char **argv)
{
    for (const char *name : workloads) {
        const BenchmarkProfile &profile =
            ProfileRegistry::byName(name);
        ::benchmark::RegisterBenchmark(
            (std::string("abl_l4_cache/") + name).c_str(),
            [&profile](::benchmark::State &state) {
                runL4(state, profile);
            })
            ->Unit(::benchmark::kMillisecond)
            ->Iterations(1);
    }
    return pomtlb::bench::benchMain(
        argc, argv, "Ablation (Section 2.2, stacked-DRAM use)",
        "16 MB of die-stacked DRAM: L4 data cache vs L3 TLB "
        "(total-cycle speedup over baseline)");
}

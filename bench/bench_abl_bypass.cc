/**
 * @file
 * Ablation (Sections 2.1.4-2.1.5) — predictor configurations.
 *
 * Four POM-TLB variants per workload:
 *   both        size + bypass predictors on (the paper's design);
 *   no-bypass   size predictor only (always probe the caches);
 *   no-size     bypass only (always try the 4 KB partition first);
 *   neither     no prediction at all.
 *
 * The metric is the average post-L2-TLB-miss penalty: the bypass
 * predictor trades wasted cache probes against wasted DRAM trips,
 * and the size predictor removes most second-partition lookups.
 */

#include "bench_common.hh"

#include "sim/sweep.hh"

namespace
{

using namespace pomtlb;
using namespace pomtlb::bench;

const char *const workloads[] = {"mcf", "zeusmp", "gups", "soplex"};

/** Predictor variant applied to the base figure configuration. */
void
predictors(ExperimentConfig &config, bool size_predictor,
           bool bypass_predictor)
{
    config.system.pomTlb.sizePredictor = size_predictor;
    config.system.pomTlb.bypassPredictor = bypass_predictor;
}

void
runBypass(::benchmark::State &state, const BenchmarkProfile &profile)
{
    // The four predictor configurations are a textbook sweep: one
    // benchmark, one scheme, four config variants, fanned out over
    // the configured worker pool.
    const ExperimentConfig config = figureConfig();
    const SweepSpec spec =
        SweepSpec()
            .withBase(config)
            .withBenchmarks({profile.name})
            .withSchemes({"POM-TLB"})
            .withVariant("both",
                         [](ExperimentConfig &c) {
                             predictors(c, true, true);
                         })
            .withVariant("no-bypass",
                         [](ExperimentConfig &c) {
                             predictors(c, true, false);
                         })
            .withVariant("no-size",
                         [](ExperimentConfig &c) {
                             predictors(c, false, true);
                         })
            .withVariant("neither", [](ExperimentConfig &c) {
                predictors(c, false, false);
            });

    for (auto _ : state) {
        const std::vector<ExperimentResult> results =
            SweepRunner(config.sweepJobs).run(spec);
        const double both = results[0].summary.avgPenaltyPerMiss;
        const double no_bypass =
            results[1].summary.avgPenaltyPerMiss;
        const double no_size = results[2].summary.avgPenaltyPerMiss;
        const double neither = results[3].summary.avgPenaltyPerMiss;
        state.counters["both"] = both;
        state.counters["no_bypass"] = no_bypass;
        collector().record(profile.name,
                           {{"both (cyc/miss)", both},
                            {"no-bypass", no_bypass},
                            {"no-size", no_size},
                            {"neither", neither}});
    }
}

} // namespace

int
main(int argc, char **argv)
{
    for (const char *name : workloads) {
        const BenchmarkProfile &profile =
            ProfileRegistry::byName(name);
        ::benchmark::RegisterBenchmark(
            (std::string("abl_predictors/") + name).c_str(),
            [&profile](::benchmark::State &state) {
                runBypass(state, profile);
            })
            ->Unit(::benchmark::kMillisecond)
            ->Iterations(1);
    }
    return pomtlb::bench::benchMain(
        argc, argv, "Ablation (Sections 2.1.4-2.1.5)",
        "Average miss penalty under predictor configurations", 1);
}

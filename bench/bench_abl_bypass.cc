/**
 * @file
 * Ablation (Sections 2.1.4-2.1.5) — predictor configurations.
 *
 * Four POM-TLB variants per workload:
 *   both        size + bypass predictors on (the paper's design);
 *   no-bypass   size predictor only (always probe the caches);
 *   no-size     bypass only (always try the 4 KB partition first);
 *   neither     no prediction at all.
 *
 * The metric is the average post-L2-TLB-miss penalty: the bypass
 * predictor trades wasted cache probes against wasted DRAM trips,
 * and the size predictor removes most second-partition lookups.
 */

#include "bench_common.hh"

namespace
{

using namespace pomtlb;
using namespace pomtlb::bench;

const char *const workloads[] = {"mcf", "zeusmp", "gups", "soplex"};

double
penaltyWith(const BenchmarkProfile &profile, bool size_predictor,
            bool bypass_predictor)
{
    ExperimentConfig config = figureConfig();
    config.system.pomTlb.sizePredictor = size_predictor;
    config.system.pomTlb.bypassPredictor = bypass_predictor;
    const SchemeRunSummary summary =
        runScheme(profile, SchemeKind::PomTlb, config);
    return summary.avgPenaltyPerMiss;
}

void
runBypass(::benchmark::State &state, const BenchmarkProfile &profile)
{
    for (auto _ : state) {
        const double both = penaltyWith(profile, true, true);
        const double no_bypass = penaltyWith(profile, true, false);
        const double no_size = penaltyWith(profile, false, true);
        const double neither = penaltyWith(profile, false, false);
        state.counters["both"] = both;
        state.counters["no_bypass"] = no_bypass;
        collector().record(profile.name,
                           {{"both (cyc/miss)", both},
                            {"no-bypass", no_bypass},
                            {"no-size", no_size},
                            {"neither", neither}});
    }
}

} // namespace

int
main(int argc, char **argv)
{
    for (const char *name : workloads) {
        const BenchmarkProfile &profile =
            ProfileRegistry::byName(name);
        ::benchmark::RegisterBenchmark(
            (std::string("abl_predictors/") + name).c_str(),
            [&profile](::benchmark::State &state) {
                runBypass(state, profile);
            })
            ->Unit(::benchmark::kMillisecond)
            ->Iterations(1);
    }
    return pomtlb::bench::benchMain(
        argc, argv, "Ablation (Sections 2.1.4-2.1.5)",
        "Average miss penalty under predictor configurations", 1);
}

/**
 * @file
 * Ablation (Section 2.2) — TLB-shootdown sensitivity.
 *
 * The paper adopts a mostly-inclusive consistency design and argues
 * that because shootdowns are rare, keeping the POM-TLB coherent
 * costs little. This bench quantifies "rare": shootdowns are
 * injected every N references (a page dropped machine-wide plus an
 * IPI/handler charge) and the POM-TLB's average miss penalty is
 * tracked as N shrinks.
 */

#include "bench_common.hh"

#include "sim/engine.hh"
#include "sim/machine.hh"

namespace
{

using namespace pomtlb;
using namespace pomtlb::bench;

const char *const workloads[] = {"mcf", "canneal", "gups"};

double
penaltyAtInterval(const BenchmarkProfile &profile,
                  std::uint64_t interval)
{
    ExperimentConfig config = figureConfig();
    config.engine.shootdownIntervalRefs = interval;
    Machine machine(config.system, "POM-TLB");
    SimulationEngine engine(machine, profile, config.engine);
    return engine.run().totals().avgPenaltyPerMiss;
}

void
runShootdown(::benchmark::State &state,
             const BenchmarkProfile &profile)
{
    for (auto _ : state) {
        const double none = penaltyAtInterval(profile, 0);
        const double rare = penaltyAtInterval(profile, 50000);
        const double common = penaltyAtInterval(profile, 5000);
        const double storm = penaltyAtInterval(profile, 500);
        state.counters["none"] = none;
        state.counters["storm"] = storm;
        collector().record(
            profile.name,
            {{"no shootdowns (cyc/miss)", none},
             {"1 per 50k refs", rare},
             {"1 per 5k refs", common},
             {"1 per 500 refs", storm}});
    }
}

} // namespace

int
main(int argc, char **argv)
{
    for (const char *name : workloads) {
        const BenchmarkProfile &profile =
            ProfileRegistry::byName(name);
        ::benchmark::RegisterBenchmark(
            (std::string("abl_shootdown/") + name).c_str(),
            [&profile](::benchmark::State &state) {
                runShootdown(state, profile);
            })
            ->Unit(::benchmark::kMillisecond)
            ->Iterations(1);
    }
    return pomtlb::bench::benchMain(
        argc, argv, "Ablation (Section 2.2)",
        "POM-TLB miss penalty vs TLB-shootdown rate", 1);
}

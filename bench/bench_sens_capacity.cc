/**
 * @file
 * Section 4.6 sensitivity — POM-TLB capacity (8 / 16 / 32 MB).
 *
 * Expected shape (paper): varying the capacity changes the
 * improvement by less than one percentage point; workload footprints
 * rarely exceed even the smallest configuration's reach.
 */

#include "bench_common.hh"

namespace
{

using namespace pomtlb;
using namespace pomtlb::bench;

const char *const workloads[] = {"mcf", "gups", "canneal",
                                 "streamcluster", "ccomponent"};

void
runCapacity(::benchmark::State &state,
            const BenchmarkProfile &profile)
{
    const ExperimentConfig config = figureConfig();
    for (auto _ : state) {
        std::vector<std::pair<std::string, double>> row;
        for (const std::uint64_t mb : {8, 16, 32}) {
            // Only the POM-TLB machine changes; the baseline stays
            // on the Table 1 configuration (the overload keeps the
            // two sides independent).
            SystemConfig pom_system = config.system;
            pom_system.pomTlb.capacityBytes = mb << 20;
            const double improvement =
                pomImprovementOnly(profile, config, pom_system);
            row.emplace_back(std::to_string(mb) + "MB (%)",
                             improvement);
            state.counters[std::to_string(mb) + "MB"] = improvement;
        }
        row.emplace_back("max delta (pp)",
                         std::abs(row[2].second - row[0].second));
        collector().record(profile.name, std::move(row));
    }
}

} // namespace

int
main(int argc, char **argv)
{
    for (const char *name : workloads) {
        const BenchmarkProfile &profile =
            ProfileRegistry::byName(name);
        ::benchmark::RegisterBenchmark(
            (std::string("sens_capacity/") + name).c_str(),
            [&profile](::benchmark::State &state) {
                runCapacity(state, profile);
            })
            ->Unit(::benchmark::kMillisecond)
            ->Iterations(1);
    }
    return pomtlb::bench::benchMain(
        argc, argv, "Section 4.6 (capacity)",
        "POM-TLB improvement vs capacity: 8/16/32 MB");
}

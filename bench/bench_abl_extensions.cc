/**
 * @file
 * Ablation — the paper's proposed extensions, measured:
 *
 *   paper      the Section 2 design as evaluated in the paper;
 *   +tlb-aware Section 5.1: caches retain POM-TLB lines over data;
 *   +prefetch  Section 6: prefetch the adjacent page's set line;
 *   unified    footnote 1: one skew-indexed array, no partitions;
 *   all        tlb-aware + prefetch on the partitioned design.
 *
 * Metric: average post-L2-TLB-miss penalty (lower is better).
 */

#include "bench_common.hh"

namespace
{

using namespace pomtlb;
using namespace pomtlb::bench;

const char *const workloads[] = {"mcf",  "lbm",   "gups",
                                 "astar", "zeusmp", "canneal"};

double
penaltyWith(const BenchmarkProfile &profile, bool tlb_aware,
            bool prefetch, bool unified)
{
    ExperimentConfig config = figureConfig();
    config.system.tlbAwareCaching = tlb_aware;
    config.system.pomTlb.prefetchNextSet = prefetch;
    config.system.pomTlb.unifiedOrganization = unified;
    return runScheme(profile, "POM-TLB", config)
        .avgPenaltyPerMiss;
}

void
runExtensions(::benchmark::State &state,
              const BenchmarkProfile &profile)
{
    for (auto _ : state) {
        const double paper = penaltyWith(profile, false, false, false);
        const double aware = penaltyWith(profile, true, false, false);
        const double prefetch =
            penaltyWith(profile, false, true, false);
        const double unified =
            penaltyWith(profile, false, false, true);
        const double all = penaltyWith(profile, true, true, false);
        state.counters["paper"] = paper;
        state.counters["all"] = all;
        collector().record(profile.name,
                           {{"paper (cyc/miss)", paper},
                            {"+tlb-aware", aware},
                            {"+prefetch", prefetch},
                            {"unified", unified},
                            {"all", all}});
    }
}

} // namespace

int
main(int argc, char **argv)
{
    for (const char *name : workloads) {
        const BenchmarkProfile &profile =
            ProfileRegistry::byName(name);
        ::benchmark::RegisterBenchmark(
            (std::string("abl_extensions/") + name).c_str(),
            [&profile](::benchmark::State &state) {
                runExtensions(state, profile);
            })
            ->Unit(::benchmark::kMillisecond)
            ->Iterations(1);
    }
    return pomtlb::bench::benchMain(
        argc, argv, "Ablation (Sections 5.1, 6, footnote 1)",
        "Average miss penalty with the paper's proposed extensions",
        1);
}

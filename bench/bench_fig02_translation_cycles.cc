/**
 * @file
 * Figure 2 — Average translation cycles per L2 TLB miss on the
 * virtualized baseline (nested 2D walks with PSCs and PTE caching).
 *
 * Expected shape (paper): 61 (canneal) to 1158 (ccomponent) cycles;
 * ccomponent is the extreme outlier, streaming workloads sit low.
 * The paper's Figure 2 comes from perf-counter measurement; this
 * bench regenerates it from the simulated walker, and prints the
 * Table 2 measured value next to each simulated one for comparison.
 */

#include "bench_common.hh"

namespace
{

using namespace pomtlb;
using namespace pomtlb::bench;

void
runFig2(::benchmark::State &state, const BenchmarkProfile &profile)
{
    ExperimentConfig config = figureConfig();
    config.system.mode = ExecMode::Virtualized;
    for (auto _ : state) {
        const SchemeRunSummary baseline =
            runScheme(profile, "Baseline", config);
        state.counters["cycles_per_miss"] =
            baseline.avgPenaltyPerMiss;
        collector().record(
            profile.name,
            {{"simulated cycles/miss", baseline.avgPenaltyPerMiss},
             {"paper (Table 2)", profile.cyclesPerMissVirtual}});
    }
}

} // namespace

int
main(int argc, char **argv)
{
    pomtlb::bench::registerPerWorkload("fig02", runFig2);
    return pomtlb::bench::benchMain(
        argc, argv, "Figure 2",
        "Average Translation Cycles per L2 TLB Miss (virtualized "
        "baseline)",
        1);
}

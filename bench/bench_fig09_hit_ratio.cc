/**
 * @file
 * Figure 9 — Hit ratio of POM-TLB translation requests at each level
 * that can serve them: the requesting core's L2D$, the shared L3D$
 * (of requests that passed the L2D$), and the POM-TLB DRAM array (of
 * requests that passed both caches).
 *
 * Expected shape (paper): L2D$ ~90% average, L3D$ lower, POM-TLB
 * ~88% of the remainder; page walks nearly eliminated.
 */

#include "bench_common.hh"

namespace
{

using namespace pomtlb;
using namespace pomtlb::bench;

void
runFig9(::benchmark::State &state, const BenchmarkProfile &profile)
{
    const ExperimentConfig config = figureConfig();
    for (auto _ : state) {
        const SchemeRunSummary pom =
            runScheme(profile, "POM-TLB", config);
        state.counters["l2d_service"] = pom.pomL2CacheServiceRate;
        state.counters["l3d_service"] = pom.pomL3CacheServiceRate;
        state.counters["pom_dram_service"] = pom.pomDramServiceRate;
        collector().record(
            profile.name,
            {{"L2D$ hit", pom.pomL2CacheServiceRate},
             {"L3D$ hit (of rest)", pom.pomL3CacheServiceRate},
             {"POM-TLB hit (of rest)", pom.pomDramServiceRate},
             {"walk fraction", pom.walkFraction}});
    }
}

} // namespace

int
main(int argc, char **argv)
{
    pomtlb::bench::registerPerWorkload("fig09", runFig9);
    return pomtlb::bench::benchMain(
        argc, argv, "Figure 9",
        "Hit Ratio of POM-TLB Requests by Serving Level (8 core)", 3);
}

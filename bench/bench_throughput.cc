/**
 * @file
 * Host-throughput benchmark for the simulation engine itself.
 *
 * Unlike the figure benches (which report *simulated* metrics), this
 * binary measures how fast the simulator runs on the host: wall-clock
 * references per second of SimulationEngine::run() for every
 * (benchmark, scheme) pair, plus experiments per second through the
 * SweepRunner worker pool. The result is written as a
 * `pomtlb-bench-v1` JSON document (see docs/metrics.md) that
 * scripts/check_bench.py compares against a checked-in baseline to
 * catch performance regressions in CI.
 *
 * Because absolute refs/sec depends on the host, the document also
 * records a calibration figure — the throughput of a fixed
 * pure-ALU mix64 loop — so the checker can compare host-normalised
 * ratios instead of raw rates (a slow CI runner then does not trip
 * the gate, and a fast one does not mask a regression).
 *
 * Usage:
 *     bench_throughput [--quick] [--out FILE] [--reps N] [--jobs N]
 *                      [--schemes a,b,c] [--cache DIR]
 *
 *   --quick   CI-sized runs (fewer cores/refs, default reps 2);
 *   --out     output path (default BENCH_throughput.json);
 *   --reps    timing repetitions per cell, best-of-N (default 3);
 *   --jobs    worker threads for the sweep section (default 4,
 *             capped by the host's hardware concurrency);
 *   --schemes comma list of registry scheme names (or `all`) to
 *             measure instead of the default cells. The default is
 *             the paper's four schemes so the checked-in baseline
 *             document keeps its cell set (check_bench.py geomean);
 *             newer contenders are opt-in through this flag;
 *   --cache   opt-in: additionally time the memoized sweep service
 *             (sim/sweep_cache.hh) against the scratch cache DIR —
 *             one cold pass populates it, then warm best-of passes
 *             measure pure cache-replay throughput. The extra
 *             `sweep_cache` document section is absent without the
 *             flag, which is safe: check_bench.py skips cells
 *             missing from either document.
 *   --trace   opt-in: time trace-replay ingest — the same record
 *             stream read through the legacy POMT FileSource
 *             (whole-file buffering) and through the mmap-ed
 *             pomtlb-tracepack-v1 PackStreamSource — and record
 *             the speedup in an extra `trace` document section
 *             (temporary trace files are created next to --out and
 *             removed afterwards).
 *   --run-threads  opt-in: re-measure a reduced cell set ({mcf,
 *             gups} x {Baseline, POM-TLB}) with the sharded engine
 *             at N worker threads (EngineConfig::runThreads) and
 *             record it in an extra `run_threads` document section.
 *             check_bench.py compares these cells against the
 *             baseline like any others, so a regression in the
 *             epoch-barrier executor trips the same gate.
 *
 * Each cell is measured reps times and the best (lowest-wall) run is
 * reported: minimum-of-N is the standard estimator for "time with
 * the least interference" on a shared host.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/bitutil.hh"
#include "common/json.hh"
#include "sim/engine.hh"
#include "sim/machine.hh"
#include "sim/scheme_registry.hh"
#include "sim/sweep.hh"
#include "sim/sweep_cache.hh"
#include "trace/profile.hh"
#include "trace/source.hh"
#include "trace/trace_file.hh"
#include "trace/tracepack.hh"

namespace
{

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start)
        .count();
}

/**
 * Calibration: mix64 over a fixed iteration count. Pure ALU work
 * with a serial dependency chain — no memory traffic — so it tracks
 * the host's single-thread speed, which is also what bounds one
 * engine run. Returns millions of iterations per second.
 */
double
calibrateOnce(std::uint64_t iterations)
{
    std::uint64_t value = 0x9e3779b97f4a7c15ULL;
    const auto start = Clock::now();
    for (std::uint64_t i = 0; i < iterations; ++i)
        value = pomtlb::mix64(value ^ i);
    const double wall = secondsSince(start);
    // Store the chain through a volatile so the compiler cannot
    // prove the loop dead and delete it (a branch on the result is
    // not enough — GCC folds `fputs("")`-style sinks away).
    volatile std::uint64_t sink = value;
    (void)sink;
    return static_cast<double>(iterations) / wall / 1e6;
}

/** Best of three bursts — the least-interfered estimate. */
double
calibrate(std::uint64_t iterations)
{
    double best = 0.0;
    for (int rep = 0; rep < 3; ++rep)
        best = std::max(best, calibrateOnce(iterations));
    return best;
}

struct Options
{
    bool quick = false;
    std::string outPath = "BENCH_throughput.json";
    unsigned reps = 0;  // 0 = default for the mode
    unsigned jobs = 4;
    std::string schemesList; // empty = the default (legacy) cells
    std::string cacheDir;    // empty = skip the warm-cache section
    bool trace = false;      // measure trace-replay ingest
    unsigned runThreads = 0; // >0 = add the sharded-engine section
};

/**
 * Resolve --schemes into canonical registry names. Empty input
 * yields the paper's four schemes — the cell set of the checked-in
 * baseline document — so new registrations never silently perturb
 * the perf-smoke geomean.
 */
std::vector<std::string>
resolveSchemes(const std::string &list)
{
    using pomtlb::SchemeRegistry;
    if (list.empty())
        return {"Baseline", "POM-TLB", "Shared_L2", "TSB"};
    if (list == "all")
        return SchemeRegistry::global().names();
    std::vector<std::string> schemes;
    std::string current;
    for (const char c : list + ",") {
        if (c != ',') {
            current += c;
            continue;
        }
        if (current.empty())
            continue;
        const SchemeRegistry::Info *info =
            SchemeRegistry::global().find(current);
        if (info == nullptr) {
            std::fprintf(stderr, "unknown scheme '%s'\n",
                         current.c_str());
            std::exit(1);
        }
        schemes.push_back(info->name);
        current.clear();
    }
    return schemes;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace pomtlb;

    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--quick") {
            opt.quick = true;
        } else if (arg == "--out" && i + 1 < argc) {
            opt.outPath = argv[++i];
        } else if (arg == "--reps" && i + 1 < argc) {
            opt.reps = static_cast<unsigned>(std::atoi(argv[++i]));
        } else if (arg == "--jobs" && i + 1 < argc) {
            opt.jobs = static_cast<unsigned>(std::atoi(argv[++i]));
        } else if (arg == "--schemes" && i + 1 < argc) {
            opt.schemesList = argv[++i];
        } else if (arg == "--cache" && i + 1 < argc) {
            opt.cacheDir = argv[++i];
        } else if (arg == "--trace") {
            opt.trace = true;
        } else if (arg == "--run-threads" && i + 1 < argc) {
            opt.runThreads =
                static_cast<unsigned>(std::atoi(argv[++i]));
        } else {
            std::fprintf(stderr,
                         "usage: %s [--quick] [--out FILE] "
                         "[--reps N] [--jobs N] [--schemes a,b,c] "
                         "[--cache DIR] [--trace] "
                         "[--run-threads N]\n",
                         argv[0]);
            return 1;
        }
    }
    const std::vector<std::string> schemes =
        resolveSchemes(opt.schemesList);

    // Sizing: full mode mirrors the default `pomtlb run` shape
    // (Table 1 cores); quick mode is CI-sized — small enough for a
    // debug-pool runner, large enough that the steady state
    // dominates prepopulate and warmup.
    const unsigned cores = opt.quick ? 4 : 8;
    const std::uint64_t refs = opt.quick ? 40000 : 100000;
    const std::uint64_t warmup = opt.quick ? 20000 : 50000;
    const unsigned reps = opt.reps ? opt.reps : 3;
    const std::vector<std::string> benchmarks = {"mcf", "gups",
                                                 "graph500"};

    const double calibration_mops =
        calibrate(opt.quick ? 10'000'000ULL : 25'000'000ULL);
    std::printf("calibration: %.1f Mmix64/s\n", calibration_mops);

    JsonValue doc = JsonValue::object();
    doc.set("schema", std::string("pomtlb-bench-v1"));
    doc.set("quick", opt.quick);
    doc.set("reps", static_cast<std::uint64_t>(reps));
    doc.set("cores", static_cast<std::uint64_t>(cores));
    doc.set("refs_per_core", refs);
    doc.set("warmup_refs_per_core", warmup);
    doc.set("calibration_mops", calibration_mops);

    // -- refs/sec per (benchmark, scheme) -------------------------
    JsonValue throughput = JsonValue::array();
    for (const std::string &bench : benchmarks) {
        const BenchmarkProfile &profile =
            ProfileRegistry::byName(bench);
        for (const std::string &scheme : schemes) {
            double best_wall = 0.0;
            for (unsigned rep = 0; rep < reps; ++rep) {
                SystemConfig system = SystemConfig::table1();
                system.numCores = cores;
                EngineConfig engine_config;
                engine_config.refsPerCore = refs;
                engine_config.warmupRefsPerCore = warmup;
                engine_config.seed = 42;

                Machine machine(system, scheme);
                SimulationEngine engine(machine, profile,
                                        engine_config);
                const auto start = Clock::now();
                const RunResult result = engine.run();
                const double wall = secondsSince(start);
                if (result.totals().refs != refs * cores)
                    std::fprintf(stderr, "unexpected ref count\n");
                if (rep == 0 || wall < best_wall)
                    best_wall = wall;
            }
            // Warmup references execute the identical hot path, so
            // they count toward host throughput (the stats they
            // produce are discarded, the work is not).
            const double refs_per_sec =
                static_cast<double>((refs + warmup) * cores) /
                best_wall;
            std::printf("%-10s %-10s %12.0f refs/s (%.3f s)\n",
                        bench.c_str(), scheme.c_str(),
                        refs_per_sec, best_wall);

            JsonValue row = JsonValue::object();
            row.set("benchmark", bench);
            row.set("scheme", scheme);
            row.set("refs_per_sec", refs_per_sec);
            row.set("wall_sec", best_wall);
            throughput.push(std::move(row));
        }
    }
    doc.set("throughput", std::move(throughput));

    // -- sharded-engine refs/sec (--run-threads) ------------------
    if (opt.runThreads > 0) {
        JsonValue sharded = JsonValue::object();
        sharded.set("threads",
                    static_cast<std::uint64_t>(opt.runThreads));
        JsonValue rows = JsonValue::array();
        for (const std::string bench : {"mcf", "gups"}) {
            const BenchmarkProfile &profile =
                ProfileRegistry::byName(bench);
            for (const std::string scheme :
                 {"Baseline", "POM-TLB"}) {
                double best_wall = 0.0;
                for (unsigned rep = 0; rep < reps; ++rep) {
                    SystemConfig system = SystemConfig::table1();
                    system.numCores = cores;
                    EngineConfig engine_config;
                    engine_config.refsPerCore = refs;
                    engine_config.warmupRefsPerCore = warmup;
                    engine_config.seed = 42;
                    engine_config.runThreads = opt.runThreads;

                    Machine machine(system, scheme);
                    SimulationEngine engine(machine, profile,
                                            engine_config);
                    const auto start = Clock::now();
                    const RunResult result = engine.run();
                    const double wall = secondsSince(start);
                    if (result.totals().refs != refs * cores)
                        std::fprintf(stderr,
                                     "unexpected ref count\n");
                    if (rep == 0 || wall < best_wall)
                        best_wall = wall;
                }
                const double refs_per_sec =
                    static_cast<double>((refs + warmup) * cores) /
                    best_wall;
                std::printf("%-10s %-10s %12.0f refs/s "
                            "(%.3f s, %u threads)\n",
                            bench.c_str(), scheme.c_str(),
                            refs_per_sec, best_wall,
                            opt.runThreads);

                JsonValue row = JsonValue::object();
                row.set("benchmark", bench);
                row.set("scheme", scheme);
                row.set("refs_per_sec", refs_per_sec);
                row.set("wall_sec", best_wall);
                rows.push(std::move(row));
            }
        }
        sharded.set("rows", std::move(rows));
        doc.set("run_threads", std::move(sharded));
    }

    // -- sweep experiments/sec ------------------------------------
    const unsigned hw = std::thread::hardware_concurrency();
    const unsigned jobs =
        hw ? std::min(opt.jobs, hw) : opt.jobs;
    std::vector<ExperimentRequest> requests;
    for (const std::string bench : {"mcf", "gups"}) {
        for (const std::string &scheme : schemes) {
            requests.push_back(
                ExperimentRequest::of(bench, scheme)
                    .withCores(opt.quick ? 2 : 4)
                    .withRefs(opt.quick ? 5000 : 20000,
                              opt.quick ? 2500 : 10000));
        }
    }
    const SweepRunner runner(jobs);
    double sweep_best = 0.0;
    const unsigned sweep_reps = opt.quick ? 1 : 2;
    for (unsigned rep = 0; rep < sweep_reps; ++rep) {
        const auto start = Clock::now();
        runner.run(requests);
        const double wall = secondsSince(start);
        if (rep == 0 || wall < sweep_best)
            sweep_best = wall;
    }
    const double experiments_per_sec =
        static_cast<double>(requests.size()) / sweep_best;
    std::printf("sweep: %zu experiments, %u jobs -> %.2f exp/s\n",
                requests.size(), runner.jobs(), experiments_per_sec);

    JsonValue sweep = JsonValue::object();
    sweep.set("jobs", static_cast<std::uint64_t>(runner.jobs()));
    sweep.set("experiments",
              static_cast<std::uint64_t>(requests.size()));
    sweep.set("experiments_per_sec", experiments_per_sec);
    sweep.set("wall_sec", sweep_best);
    doc.set("sweep", std::move(sweep));

    // -- memoized warm-cache sweep (opt-in via --cache) -----------
    if (!opt.cacheDir.empty()) {
        SweepServiceOptions service_options;
        service_options.cacheDir = opt.cacheDir;
        service_options.jobs = jobs;

        // Cold pass populates (or tops up) the scratch cache; it is
        // timed for the speedup figure but the gate-worthy number is
        // the warm rate, which is pure lookup + document assembly.
        const auto cold_start = Clock::now();
        SweepService(service_options).run(requests);
        const double cold_wall = secondsSince(cold_start);

        double warm_best = 0.0;
        const unsigned warm_reps = std::max(reps, 2u);
        for (unsigned rep = 0; rep < warm_reps; ++rep) {
            SweepService service(service_options);
            const auto start = Clock::now();
            service.run(requests);
            const double wall = secondsSince(start);
            if (service.stats().executed != 0)
                std::fprintf(stderr,
                             "warm pass unexpectedly executed %zu "
                             "job(s)\n",
                             service.stats().executed);
            if (rep == 0 || wall < warm_best)
                warm_best = wall;
        }
        const double warm_rate =
            static_cast<double>(requests.size()) / warm_best;
        std::printf("sweep-cache: cold %.3f s, warm %.4f s -> "
                    "%.0f exp/s warm (x%.0f)\n",
                    cold_wall, warm_best, warm_rate,
                    cold_wall / warm_best);

        JsonValue cached = JsonValue::object();
        cached.set("jobs",
                   static_cast<std::uint64_t>(jobs));
        cached.set("experiments",
                   static_cast<std::uint64_t>(requests.size()));
        cached.set("cold_wall_sec", cold_wall);
        cached.set("warm_wall_sec", warm_best);
        cached.set("warm_experiments_per_sec", warm_rate);
        cached.set("speedup", cold_wall / warm_best);
        doc.set("sweep_cache", std::move(cached));
    }

    // -- trace-replay ingest (opt-in via --trace) -----------------
    if (opt.trace) {
        const std::uint64_t trace_records =
            opt.quick ? 200'000ULL : 1'000'000ULL;
        const std::string legacy_path = opt.outPath + ".legacy.pomt";
        const std::string pack_path = opt.outPath + ".trace.pack";

        // One record stream, written to both containers, so the two
        // ingest paths decode byte-for-byte the same content.
        std::vector<TraceRecord> records(
            static_cast<std::size_t>(trace_records));
        GeneratorSource generator(ProfileRegistry::byName("mcf"), 0,
                                  42);
        std::size_t filled = 0;
        while (filled < records.size()) {
            filled += generator.fill(records.data() + filled,
                                     records.size() - filled);
        }
        {
            TraceFileWriter writer(legacy_path);
            for (const TraceRecord &record : records)
                writer.append(record);
            writer.close();
        }
        {
            TracePackWriter writer(pack_path, {"core0"});
            writer.append(0, records.data(), records.size());
            writer.close();
        }

        // Each timed pass opens the container cold and streams every
        // record through the TraceSource block API — the exact work
        // `pomtlb replay-trace` / `run --trace-in` do per run.
        std::vector<TraceRecord> block(1024);
        std::uint64_t checksum = 0;
        const auto drain = [&](TraceSource &source) {
            std::uint64_t done = 0;
            while (done < trace_records) {
                const std::size_t got = source.fill(
                    block.data(),
                    static_cast<std::size_t>(
                        std::min<std::uint64_t>(
                            block.size(), trace_records - done)));
                for (std::size_t i = 0; i < got; ++i)
                    checksum ^= block[i].vaddr;
                done += got;
            }
        };
        double legacy_best = 0.0;
        double pack_best = 0.0;
        for (unsigned rep = 0; rep < reps; ++rep) {
            {
                const auto start = Clock::now();
                FileSource source(legacy_path);
                drain(source);
                const double wall = secondsSince(start);
                if (rep == 0 || wall < legacy_best)
                    legacy_best = wall;
            }
            {
                const auto start = Clock::now();
                auto reader =
                    std::make_shared<TracePackReader>(pack_path);
                PackStreamSource source(reader, 0);
                drain(source);
                const double wall = secondsSince(start);
                if (rep == 0 || wall < pack_best)
                    pack_best = wall;
            }
        }
        volatile std::uint64_t sink = checksum;
        (void)sink;
        std::remove(legacy_path.c_str());
        std::remove(pack_path.c_str());

        const double legacy_rate =
            static_cast<double>(trace_records) / legacy_best;
        const double pack_rate =
            static_cast<double>(trace_records) / pack_best;
        std::printf("trace: %llu records, legacy %.0f refs/s, "
                    "pack %.0f refs/s (x%.1f)\n",
                    static_cast<unsigned long long>(trace_records),
                    legacy_rate, pack_rate,
                    legacy_rate > 0.0 ? pack_rate / legacy_rate
                                      : 0.0);

        JsonValue trace = JsonValue::object();
        trace.set("records", trace_records);
        trace.set("legacy_wall_sec", legacy_best);
        trace.set("pack_wall_sec", pack_best);
        trace.set("legacy_refs_per_sec", legacy_rate);
        trace.set("pack_refs_per_sec", pack_rate);
        trace.set("speedup", pack_rate / legacy_rate);
        doc.set("trace", std::move(trace));
    }

    std::ofstream out(opt.outPath);
    if (!out) {
        std::fprintf(stderr, "cannot open %s\n", opt.outPath.c_str());
        return 1;
    }
    doc.write(out);
    out << "\n";
    std::printf("wrote %s\n", opt.outPath.c_str());
    return 0;
}

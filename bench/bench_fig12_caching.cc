/**
 * @file
 * Figure 12 — POM-TLB performance improvement with and without
 * caching of TLB entries in the data caches (8-core).
 *
 * Expected shape (paper): caching adds ~5 percentage points of
 * improvement on average; it does not change the number of page
 * walks (the capacity does that) — it hides the die-stacked DRAM
 * latency.
 */

#include "bench_common.hh"

namespace
{

using namespace pomtlb;
using namespace pomtlb::bench;

void
runFig12(::benchmark::State &state, const BenchmarkProfile &profile)
{
    // The baseline machine is identical in both comparisons; only
    // the POM-TLB side loses data caching. The pomImprovementOnly
    // overload expresses that directly instead of cloning the whole
    // experiment config.
    const ExperimentConfig config = figureConfig();
    SystemConfig uncached_system = config.system;
    uncached_system.pomTlb.cacheable = false;

    for (auto _ : state) {
        const double with_caching =
            pomImprovementOnly(profile, config);
        const double without_caching =
            pomImprovementOnly(profile, config, uncached_system);
        state.counters["with_caching_pct"] = with_caching;
        state.counters["without_caching_pct"] = without_caching;
        collector().record(
            profile.name,
            {{"with data caching (%)", with_caching},
             {"without data caching (%)", without_caching},
             {"caching benefit (pp)",
              with_caching - without_caching}});
    }
}

} // namespace

int
main(int argc, char **argv)
{
    pomtlb::bench::registerPerWorkload("fig12", runFig12);
    return pomtlb::bench::benchMain(
        argc, argv, "Figure 12",
        "POM-TLB With and Without Data Caching (8 core)");
}

/**
 * @file
 * Figure 10 — Accuracy of the page-size and cache-bypass predictors
 * (8-core).
 *
 * Expected shape (paper): size predictor ~95% average; bypass
 * predictor ~46% average with large variation across workloads.
 */

#include "bench_common.hh"

namespace
{

using namespace pomtlb;
using namespace pomtlb::bench;

void
runFig10(::benchmark::State &state, const BenchmarkProfile &profile)
{
    const ExperimentConfig config = figureConfig();
    for (auto _ : state) {
        const SchemeRunSummary pom =
            runScheme(profile, "POM-TLB", config);
        state.counters["size_accuracy"] =
            pom.sizePredictorAccuracy;
        state.counters["bypass_accuracy"] =
            pom.bypassPredictorAccuracy;
        collector().record(
            profile.name,
            {{"size predictor", pom.sizePredictorAccuracy},
             {"bypass predictor", pom.bypassPredictorAccuracy}});
    }
}

} // namespace

int
main(int argc, char **argv)
{
    pomtlb::bench::registerPerWorkload("fig10", runFig10);
    return pomtlb::bench::benchMain(
        argc, argv, "Figure 10", "Predictor Accuracy (8 core)", 3);
}

/**
 * @file
 * Anatomy of a virtualized page walk (Figure 1), hands-on.
 *
 * Drives the page-table walker directly to show where the "up to 24
 * memory references" of a 2D nested walk come from, how the
 * structure caches and nested TLB whittle them down on warm walks,
 * and why even the warm walk still costs more than one POM-TLB
 * access — the paper's central argument.
 *
 *   $ ./walk_anatomy
 */

#include <cstdio>

#include "cache/hierarchy.hh"
#include "dram/controller.hh"
#include "pagetable/walker.hh"
#include "pomtlb/pom_tlb.hh"

int
main()
{
    using namespace pomtlb;

    SystemConfig config = SystemConfig::table1();
    config.numCores = 1;

    std::printf("=== 1D vs 2D page walks ===\n\n");

    // --- Native machine: one radix-4 table, max 4 references. ---
    {
        DramController memory(config.mainMemory);
        DataHierarchy hierarchy(config, memory);
        MemoryMapConfig map_config;
        map_config.mode = ExecMode::Native;
        MemoryMap map(map_config);
        PageWalker walker(0, map, hierarchy, config.psc);

        const WalkResult cold =
            walker.walk(0x7f1234567000, 1, 1, PageSize::Small4K, 0);
        const WalkResult warm = walker.walk(
            0x7f1234567000, 1, 1, PageSize::Small4K, 10000);
        std::printf("native  cold walk: %2u refs, %4llu cycles\n",
                    cold.memRefs,
                    static_cast<unsigned long long>(cold.cycles));
        std::printf("native  warm walk: %2u refs, %4llu cycles "
                    "(PSC skips the upper levels)\n",
                    warm.memRefs,
                    static_cast<unsigned long long>(warm.cycles));
    }

    // --- Virtualized machine: guest table x host (EPT) table. ---
    DramController memory(config.mainMemory);
    DataHierarchy hierarchy(config, memory);
    MemoryMapConfig map_config;
    map_config.mode = ExecMode::Virtualized;
    MemoryMap map(map_config);
    PageWalker walker(0, map, hierarchy, config.psc);

    const WalkResult cold =
        walker.walk(0x7f1234567000, 1, 1, PageSize::Small4K, 0);
    std::printf("\nvirtual cold walk: %2u refs, %4llu cycles\n",
                cold.memRefs,
                static_cast<unsigned long long>(cold.cycles));
    std::printf("  (Figure 1: each of the 4 guest PTE reads needs a "
                "4-ref EPT walk of its gPA,\n   plus a final 4-ref "
                "EPT walk of the data gPA: 4 x (4+1) + 4 = 24)\n");

    const WalkResult warm = walker.walk(0x7f1234567000, 1, 1,
                                        PageSize::Small4K, 100000);
    std::printf("virtual warm walk: %2u refs, %4llu cycles "
                "(guest PDE cache + nested TLB)\n",
                warm.memRefs,
                static_cast<unsigned long long>(warm.cycles));

    const WalkResult large =
        walker.walk(0x40000000, 1, 1, PageSize::Large2M, 200000);
    std::printf("virtual 2MB  walk: %2u refs, %4llu cycles "
                "(one guest level fewer)\n",
                large.memRefs,
                static_cast<unsigned long long>(large.cycles));

    // --- One POM-TLB access, for contrast. ---
    std::printf("\n=== the POM-TLB alternative ===\n\n");
    DramController die_stacked(config.dieStacked);
    PomTlb pom(config.pomTlb, die_stacked);
    pom.install(0x7f1234567000, 1, 1, PageSize::Small4K,
                cold.hostPfn, 0);
    const PomTlbDeviceResult lookup = pom.lookupDram(
        0x7f1234567000, 1, 1, PageSize::Small4K, 300000);
    std::printf("POM-TLB DRAM hit : 1 access, %4llu cycles "
                "(row %s)\n",
                static_cast<unsigned long long>(lookup.cycles),
                lookup.rowBuffer == RowBufferOutcome::Hit
                    ? "hit"
                    : "opened");
    std::printf("...and when the 64 B set line sits in the L2D$, a "
                "hit costs ~%llu cycles —\nversus every walk above. "
                "That asymmetry is the paper.\n",
                static_cast<unsigned long long>(
                    config.l2.accessLatency));
    return 0;
}

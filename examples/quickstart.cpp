/**
 * @file
 * Quickstart: build the paper's Table 1 machine with a POM-TLB,
 * run one TLB-stressing workload, and compare it against the
 * conventional nested-walk baseline.
 *
 *   $ ./quickstart [benchmark]     (default: mcf)
 *
 * This is the five-minute tour of the library's public API:
 * SystemConfig -> Machine/runScheme -> SchemeRunSummary -> PerfModel.
 */

#include <cstdio>
#include <string>

#include "sim/experiment.hh"
#include "sim/perf_model.hh"
#include "trace/profile.hh"

int
main(int argc, char **argv)
{
    using namespace pomtlb;

    const std::string name = argc > 1 ? argv[1] : "mcf";
    const BenchmarkProfile &profile = ProfileRegistry::byName(name);

    // 1. Configure the machine. SystemConfig::table1() is the
    //    paper's 8-core Skylake-like setup; tweak anything you like
    //    before building.
    ExperimentConfig config;
    config.system = SystemConfig::table1();
    config.system.numCores = 4;          // keep the demo snappy
    config.engine.refsPerCore = 60000;   // measured references
    config.engine.warmupRefsPerCore = 60000;

    std::printf("workload        : %s (%s, %s)\n",
                profile.name.c_str(),
                accessPatternName(profile.pattern),
                profile.multithreaded ? "multithreaded"
                                      : "rate mode");
    std::printf("footprint       : %llu MB%s\n",
                static_cast<unsigned long long>(
                    profile.footprintBytes >> 20),
                profile.multithreaded ? " (shared)" : " per core");

    // 2. Run the conventional baseline: every L2 TLB miss triggers a
    //    2D nested page walk (up to 24 memory references).
    const SchemeRunSummary baseline =
        runScheme(profile, "Baseline", config);
    std::printf("\n-- baseline (nested walks) --\n");
    std::printf("L2 TLB misses   : %llu\n",
                static_cast<unsigned long long>(
                    baseline.run.totals().lastLevelMisses));
    std::printf("cycles per miss : %.1f\n",
                baseline.avgPenaltyPerMiss);

    // 3. Run the same trace on the POM-TLB machine.
    const SchemeRunSummary pom =
        runScheme(profile, "POM-TLB", config);
    std::printf("\n-- POM-TLB --\n");
    std::printf("cycles per miss : %.1f\n", pom.avgPenaltyPerMiss);
    std::printf("page walks left : %.2f%% of misses\n",
                100.0 * pom.walkFraction);
    std::printf("served by L2D$  : %.1f%%\n",
                100.0 * pom.pomL2CacheServiceRate);
    std::printf("size predictor  : %.1f%% accurate\n",
                100.0 * pom.sizePredictorAccuracy);

    // 4. Feed the simulated translation-cost ratio into the paper's
    //    additive performance model (Eqs. 2-5) together with the
    //    measured Table 2 overhead.
    const double ratio =
        static_cast<double>(pom.translationCycles) /
        static_cast<double>(baseline.translationCycles);
    const double improvement = PerfModel::improvementPct(
        profile, config.system.mode, ratio);
    std::printf("\ntranslation cost ratio (POM/baseline): %.3f\n",
                ratio);
    std::printf("projected speedup (Eqs. 2-5)         : %.2f%%\n",
                improvement);
    return 0;
}

/**
 * @file
 * Capacity explorer: how much part-of-memory TLB is enough?
 *
 * Sweeps the POM-TLB capacity from 1 MB to 64 MB for a chosen
 * workload and reports walk elimination and projected speedup — the
 * Section 4.6 sensitivity result, interactively. Also prints the
 * TLB reach at each point for intuition (a 16 MB POM-TLB reaches
 * ~2 GB of 4 KB pages; on-chip TLBs reach ~6 MB).
 *
 *   $ ./capacity_explorer [benchmark]    (default: gups)
 */

#include <cstdio>
#include <iostream>
#include <string>

#include "analysis/report.hh"
#include "sim/experiment.hh"
#include "sim/perf_model.hh"

int
main(int argc, char **argv)
{
    using namespace pomtlb;

    const std::string name = argc > 1 ? argv[1] : "gups";
    const BenchmarkProfile &profile = ProfileRegistry::byName(name);

    ExperimentConfig config;
    config.system.numCores = 4;
    config.engine.refsPerCore = 40000;
    config.engine.warmupRefsPerCore = 40000;

    // One baseline run; its translation cycles anchor every ratio.
    const SchemeRunSummary baseline =
        runScheme(profile, "Baseline", config);

    ResultTable table({"capacity", "4KB-page reach", "walk %",
                       "cyc/miss", "speedup %"});

    for (const std::uint64_t mb : {1, 2, 4, 8, 16, 32, 64}) {
        config.system.pomTlb.capacityBytes = mb << 20;
        const SchemeRunSummary pom =
            runScheme(profile, "POM-TLB", config);
        const double ratio =
            static_cast<double>(pom.translationCycles) /
            static_cast<double>(baseline.translationCycles);
        const double improvement = PerfModel::improvementPct(
            profile, config.system.mode, ratio);

        // Half the capacity holds 4 KB-page entries; each 16 B entry
        // covers one 4 KB page.
        const std::uint64_t reach_mb =
            (config.system.pomTlb.smallPartitionBytes() / 16) * 4 /
            1024;
        table.addRow(
            {std::to_string(mb) + "MB",
             std::to_string(reach_mb / 1024) + "." +
                 std::to_string((reach_mb % 1024) * 10 / 1024) +
                 "GB",
             ResultTable::num(100.0 * pom.walkFraction, 2),
             ResultTable::num(pom.avgPenaltyPerMiss, 1),
             ResultTable::num(improvement, 2)});
    }

    std::printf("POM-TLB capacity sweep on '%s' (%llu MB %s "
                "footprint)\n\n",
                profile.name.c_str(),
                static_cast<unsigned long long>(
                    profile.footprintBytes >> 20),
                profile.multithreaded ? "shared" : "per-core");
    table.print(std::cout);
    std::printf("\nBeyond the knee, capacity stops mattering — the "
                "paper's Section 4.6 finding\nthat 8/16/32 MB all "
                "land within a percentage point.\n");
    return 0;
}

/**
 * @file
 * Multi-VM consolidation (Section 5.2): several virtual machines
 * sharing one host.
 *
 * SRAM TLBs thrash when VMs interfere; the 16 MB POM-TLB holds every
 * VM's translations simultaneously. This example runs the same
 * workload in 1, 2 and 4 VMs (cores striped across them) and reports
 * how each design's translation penalty degrades.
 *
 *   $ ./multi_vm_consolidation [benchmark]    (default: canneal)
 */

#include <cstdio>
#include <string>
#include <vector>

#include "analysis/report.hh"
#include "sim/experiment.hh"

#include <iostream>

int
main(int argc, char **argv)
{
    using namespace pomtlb;

    const std::string name = argc > 1 ? argv[1] : "canneal";
    const BenchmarkProfile &profile = ProfileRegistry::byName(name);

    ResultTable table({"VMs", "baseline cyc/miss", "POM cyc/miss",
                       "POM walk %", "POM L3D$+L2D$ service %"});

    for (const unsigned vms : {1u, 2u, 4u}) {
        ExperimentConfig config;
        config.system.numCores = 4;
        config.engine.refsPerCore = 40000;
        config.engine.warmupRefsPerCore = 40000;
        // Stripe the four cores across the VMs.
        config.engine.coreVm.clear();
        for (unsigned core = 0; core < 4; ++core)
            config.engine.coreVm.push_back(
                static_cast<VmId>(1 + core % vms));

        const SchemeRunSummary baseline =
            runScheme(profile, SchemeKind::NestedWalk, config);
        const SchemeRunSummary pom =
            runScheme(profile, SchemeKind::PomTlb, config);

        const double cache_service =
            100.0 * (pom.pomL2CacheServiceRate +
                     (1.0 - pom.pomL2CacheServiceRate) *
                         pom.pomL3CacheServiceRate);
        table.addRow({std::to_string(vms),
                      ResultTable::num(baseline.avgPenaltyPerMiss, 1),
                      ResultTable::num(pom.avgPenaltyPerMiss, 1),
                      ResultTable::num(100.0 * pom.walkFraction, 2),
                      ResultTable::num(cache_service, 1)});
    }

    std::printf("Multi-VM consolidation on '%s' (4 cores striped "
                "across VMs)\n\n",
                profile.name.c_str());
    table.print(std::cout);
    std::printf(
        "\nThe POM-TLB keeps all VMs' translations resident (VM-ID "
        "tagged entries,\nEquation 1 spreads VMs across sets), so "
        "its walk fraction stays ~0 while\nthe SRAM-TLB baseline "
        "pays a full nested walk per miss in every VM.\n");
    return 0;
}

/**
 * @file
 * Multi-VM consolidation (Section 5.2): several virtual machines
 * sharing one host, expressed through the declarative scenario API.
 *
 * SRAM TLBs thrash when VMs interfere; the 16 MB POM-TLB holds every
 * VM's translations simultaneously. This example declares the same
 * workload as 1, 2 and 4 tenants (vCPUs splitting a 4-core host) and
 * reports how each design's translation penalty — and the worst
 * tenant's p99 translation tail — degrades as the host consolidates.
 *
 *   $ ./multi_vm_consolidation [benchmark]    (default: canneal)
 */

#include <cstdio>
#include <string>

#include "analysis/report.hh"
#include "sim/machine.hh"
#include "sim/scenario.hh"

#include <iostream>

namespace
{

/** The @p vms-tenant declaration of the workload on 4 cores. */
pomtlb::ScenarioSpec
consolidationSpec(const std::string &benchmark, unsigned vms,
                  const std::string &scheme)
{
    using namespace pomtlb;
    ScenarioSpec spec;
    spec.name = "consolidation-" + std::to_string(vms) + "vm";
    spec.scheme = scheme;
    spec.system.numCores = 4;
    spec.engine.refsPerCore = 40000;
    spec.engine.warmupRefsPerCore = 40000;
    for (unsigned vm = 0; vm < vms; ++vm)
        spec.withTenant(TenantSpec{}
                            .withName("vm" + std::to_string(1 + vm))
                            .withBenchmark(benchmark)
                            .withVcpus(4 / vms));
    return spec;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace pomtlb;

    const std::string name = argc > 1 ? argv[1] : "canneal";

    ResultTable table({"VMs", "baseline cyc/miss", "POM cyc/miss",
                       "POM walk %", "POM worst p99 (cyc)"});

    for (const unsigned vms : {1u, 2u, 4u}) {
        const ScenarioSpec baseline_spec =
            consolidationSpec(name, vms, "Baseline");
        Machine baseline_machine(baseline_spec.system,
                                 baseline_spec.scheme);
        const ScenarioResult baseline =
            runScenario(baseline_machine, baseline_spec);

        const ScenarioSpec pom_spec =
            consolidationSpec(name, vms, "POM-TLB");
        Machine pom_machine(pom_spec.system, pom_spec.scheme);
        const ScenarioResult pom = runScenario(pom_machine, pom_spec);

        std::uint64_t worst_p99 = 0;
        for (const TenantResult &tenant : pom.tenants) {
            const std::uint64_t p99 =
                tenant.translationLatency.percentileUpperBound(99.0);
            if (p99 > worst_p99)
                worst_p99 = p99;
        }

        table.addRow(
            {std::to_string(vms),
             ResultTable::num(baseline.run.totals().avgPenaltyPerMiss,
                              1),
             ResultTable::num(pom.run.totals().avgPenaltyPerMiss, 1),
             ResultTable::num(100.0 * pom.run.totals().walkFraction,
                              2),
             std::to_string(worst_p99)});
    }

    std::printf("Multi-VM consolidation on '%s' (4 cores split "
                "across tenant vCPUs)\n\n",
                name.c_str());
    table.print(std::cout);
    std::printf(
        "\nThe POM-TLB keeps all VMs' translations resident (VM-ID "
        "tagged entries,\nEquation 1 spreads VMs across sets), so "
        "its walk fraction stays ~0 while\nthe SRAM-TLB baseline "
        "pays a full nested walk per miss in every VM.\n");
    return 0;
}

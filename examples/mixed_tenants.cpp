/**
 * @file
 * Mixed-tenant consolidation: different workloads in different VMs on
 * one host — the cloud scenario the paper's introduction motivates
 * (EC2/OpenStack-style hosts running heterogeneous guests).
 *
 * Two tenants share a 4-core host: mcf in VM 1 (2 vCPUs, cores 0-1)
 * and gups in VM 2 (2 vCPUs, cores 2-3), declared through the
 * scenario API and reported with per-tenant QoS percentiles.
 *
 *   $ ./mixed_tenants
 */

#include <cstdio>
#include <string>

#include "sim/machine.hh"
#include "sim/scenario.hh"

int
main()
{
    using namespace pomtlb;

    ScenarioSpec spec;
    spec.name = "mixed-tenants";
    spec.system.numCores = 4;
    spec.engine.refsPerCore = 40000;
    spec.engine.warmupRefsPerCore = 40000;
    spec.withTenant(TenantSpec{}
                        .withName("mcf-tenant")
                        .withBenchmark("mcf")
                        .withVcpus(2))
        .withTenant(TenantSpec{}
                        .withName("gups-tenant")
                        .withBenchmark("gups")
                        .withVcpus(2));

    std::printf("4 cores, 2 VMs: mcf (VM 1, cores 0-1) + gups "
                "(VM 2, cores 2-3)\n\n");

    for (const std::string scheme : {"Baseline", "POM-TLB"}) {
        ScenarioSpec run_spec = spec;
        run_spec.scheme = scheme;
        Machine machine(run_spec.system, run_spec.scheme);
        const ScenarioResult result = runScenario(machine, run_spec);

        std::printf("-- %s --\n", scheme.c_str());
        for (const TenantResult &tenant : result.tenants) {
            const double miss_rate =
                tenant.refs == 0
                    ? 0.0
                    : static_cast<double>(tenant.lastLevelTlbMisses) /
                          static_cast<double>(tenant.refs);
            std::printf(
                "  %-11s (VM %u): %8llu refs, %5.2f%% LL-miss, "
                "p50/p95/p99 = %llu/%llu/%llu cyc\n",
                tenant.name.c_str(), tenant.vm,
                static_cast<unsigned long long>(tenant.refs),
                100.0 * miss_rate,
                static_cast<unsigned long long>(
                    tenant.translationLatency.percentileUpperBound(
                        50.0)),
                static_cast<unsigned long long>(
                    tenant.translationLatency.percentileUpperBound(
                        95.0)),
                static_cast<unsigned long long>(
                    tenant.translationLatency.percentileUpperBound(
                        99.0)));
        }
        std::printf("  machine-wide: %.1f cycles/miss, %.2f%% of "
                    "misses walked\n\n",
                    result.run.totals().avgPenaltyPerMiss,
                    100.0 * result.run.totals().walkFraction);
    }

    std::printf("One 16 MB POM-TLB absorbs both tenants' translation "
                "working sets at once —\nthe Section 5.2 argument for "
                "consolidated hosts.\n");
    return 0;
}

/**
 * @file
 * Mixed-tenant consolidation: different workloads in different VMs on
 * one host — the cloud scenario the paper's introduction motivates
 * (EC2/OpenStack-style hosts running heterogeneous guests).
 *
 * Cores 0-1 run mcf in VM 1; cores 2-3 run gups in VM 2. The engine
 * is driven through heterogeneous per-core trace sources, showing the
 * library's composition: any TraceSource mix can share one machine.
 *
 *   $ ./mixed_tenants
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "sim/engine.hh"
#include "sim/machine.hh"
#include "trace/source.hh"

int
main()
{
    using namespace pomtlb;

    SystemConfig system = SystemConfig::table1();
    system.numCores = 4;

    EngineConfig engine_config;
    engine_config.refsPerCore = 40000;
    engine_config.warmupRefsPerCore = 40000;
    engine_config.coreVm = {1, 1, 2, 2};

    const BenchmarkProfile &mcf = ProfileRegistry::byName("mcf");
    const BenchmarkProfile &gups = ProfileRegistry::byName("gups");

    auto make_sources = [&] {
        std::vector<std::unique_ptr<TraceSource>> sources;
        sources.push_back(
            std::make_unique<GeneratorSource>(mcf, 0, 42));
        sources.push_back(
            std::make_unique<GeneratorSource>(mcf, 1, 42));
        sources.push_back(
            std::make_unique<GeneratorSource>(gups, 2, 42));
        sources.push_back(
            std::make_unique<GeneratorSource>(gups, 3, 42));
        return sources;
    };

    // The pid-policy profile: rate-mode gives each core its own
    // process, which is what distinct tenants need.
    const BenchmarkProfile &pid_policy = mcf;

    std::printf("4 cores, 2 VMs: mcf (VM 1, cores 0-1) + gups "
                "(VM 2, cores 2-3)\n\n");

    for (const SchemeKind kind :
         {SchemeKind::NestedWalk, SchemeKind::PomTlb}) {
        Machine machine(system, kind);
        SimulationEngine engine(machine, pid_policy, engine_config,
                                make_sources());
        const RunResult result = engine.run();

        std::printf("-- %s --\n", schemeKindName(kind));
        for (unsigned core = 0; core < 4; ++core) {
            const CoreRunStats &stats = result.cores[core];
            std::printf("  core %u (%s, VM %u): %6llu misses, "
                        "%6.1f cycles/miss\n",
                        core, core < 2 ? "mcf " : "gups",
                        engine_config.coreVm[core],
                        static_cast<unsigned long long>(
                            stats.lastLevelTlbMisses),
                        stats.avgPenaltyPerMiss);
        }
        std::printf("  machine-wide: %.1f cycles/miss, %.2f%% of "
                    "misses walked\n\n",
                    result.totals().avgPenaltyPerMiss,
                    100.0 * result.totals().walkFraction);
    }

    std::printf("One 16 MB POM-TLB absorbs both tenants' translation "
                "working sets at once —\nthe Section 5.2 argument for "
                "consolidated hosts.\n");
    return 0;
}

#!/usr/bin/env python3
"""Compare two pomtlb-bench-v1 documents and fail on regressions.

Usage:
    check_bench.py --baseline BENCH_throughput.json \
                   --current  new.json [--tolerance 0.20] \
                   [--no-calibration]

For every (benchmark, scheme) cell present in both documents, and for
the sweep experiments/sec figure, the checker computes

    ratio = current_rate / baseline_rate

after dividing each rate by its document's ``calibration_mops`` (a
fixed pure-ALU loop timed on the same host at the same moment), so a
slower CI runner does not trip the gate and a faster one does not
mask a real regression. ``--no-calibration`` compares raw rates, for
same-host runs.

The pass/fail decision is taken on the **geometric mean** of the
ratios, not per cell: individual short cells on a shared runner can
swing tens of percent either way, but uncorrelated noise largely
cancels in the geomean while a genuine hot-path regression drags
every cell down together. The run fails when

    geomean(ratios) < 1 - tolerance        (default tolerance 0.20)

Per-cell ratios are still printed, with a ``low`` marker on cells
under the threshold, so a localized regression is visible even when
the geomean passes. Exit status: 0 = pass, 1 = regression, 2 =
usage/format error.

Run ``check_bench.py --selftest`` to exercise the comparison logic
with synthetic documents (no input files needed); the test suite
invokes this.
"""

import argparse
import json
import math
import sys


BENCH_SCHEMA = "pomtlb-bench-v1"

#: Schema families other pomtlb tools emit, with a hint for each, so
#: handing this checker the wrong artifact names the actual fix
#: instead of a bare mismatch.
FOREIGN_SCHEMAS = {
    "pomtlb-sweep": "a sweep result — plot it with "
                    "scripts/plot_results.py",
    "pomtlb-sweepcache": "an on-disk sweep-cache entry — plot it "
                         "with scripts/plot_results.py",
    "pomtlb-serve": "a serve event stream — plot it with "
                    "scripts/plot_results.py",
    "pomtlb-stats": "a single-run stats export — plot it with "
                    "scripts/plot_results.py --breakdown",
}


def check_schema(path, schema):
    """Raise ValueError naming *path* unless *schema* is the bench
    schema this checker understands."""
    if schema == BENCH_SCHEMA:
        return
    if isinstance(schema, str):
        family = schema.rsplit("-v", 1)[0]
        hint = FOREIGN_SCHEMAS.get(family)
        if hint is not None:
            raise ValueError(
                f"{path}: {schema!r} is {hint}; this checker "
                f"compares {BENCH_SCHEMA} documents "
                "(bench_throughput --json)")
        if family == BENCH_SCHEMA.rsplit("-v", 1)[0]:
            raise ValueError(
                f"{path}: unsupported bench schema version "
                f"{schema!r}; this checker understands "
                f"{BENCH_SCHEMA} only — regenerate the baseline "
                "with the matching bench_throughput")
    raise ValueError(
        f"{path}: expected schema {BENCH_SCHEMA}, "
        f"got {schema!r}")


def load(path):
    with open(path) as handle:
        try:
            doc = json.load(handle)
        except json.JSONDecodeError as error:
            raise ValueError(
                f"{path}: not a JSON document ({error}); a JSONL "
                "serve stream is plottable with "
                "scripts/plot_results.py, not comparable here")
    check_schema(path, doc.get("schema"))
    return doc


def cells(doc):
    """Map (benchmark, scheme) -> refs_per_sec."""
    return {(row["benchmark"], row["scheme"]): row["refs_per_sec"]
            for row in doc.get("throughput", [])}


def compare(baseline, current, use_calibration=True):
    """Return (rows, geomean) comparing two parsed documents.

    rows: list of (label, base_rate, cur_rate, normalised_ratio).
    geomean: geometric mean of the ratios (1.0 when rows is empty).
    """
    scale = 1.0
    if use_calibration:
        base_cal = baseline.get("calibration_mops")
        cur_cal = current.get("calibration_mops")
        if not base_cal or not cur_cal:
            raise ValueError("calibration_mops missing; rerun the "
                             "bench or pass --no-calibration")
        # ratio = (cur/cur_cal) / (base/base_cal)
        scale = base_cal / cur_cal

    rows = []
    base_cells = cells(baseline)
    cur_cells = cells(current)
    for key in sorted(base_cells):
        if key not in cur_cells:
            continue
        label = f"{key[0]}/{key[1]}"
        ratio = cur_cells[key] / base_cells[key] * scale
        rows.append((label, base_cells[key], cur_cells[key], ratio))

    base_sweep = baseline.get("sweep", {}).get("experiments_per_sec")
    cur_sweep = current.get("sweep", {}).get("experiments_per_sec")
    if base_sweep and cur_sweep:
        ratio = cur_sweep / base_sweep * scale
        rows.append(("sweep", base_sweep, cur_sweep, ratio))

    # Trace-replay ingest (bench_throughput --trace): both container
    # rates gate like any other cell when present in both documents.
    base_trace = baseline.get("trace", {})
    cur_trace = current.get("trace", {})
    for field, label in (("legacy_refs_per_sec", "trace-legacy"),
                         ("pack_refs_per_sec", "trace-pack")):
        base_rate = base_trace.get(field)
        cur_rate = cur_trace.get(field)
        if base_rate and cur_rate:
            rows.append((label, base_rate, cur_rate,
                         cur_rate / base_rate * scale))

    # Sharded-engine cells (bench_throughput --run-threads): labeled
    # "bench/scheme@tN" so a serial baseline never pairs with a
    # sharded candidate, and only thread counts measured on both
    # sides gate. A regression in the epoch-barrier executor drags
    # these cells down without touching the serial ones.
    base_sharded = baseline.get("run_threads", {})
    cur_sharded = current.get("run_threads", {})
    if base_sharded.get("threads") == cur_sharded.get("threads"):
        threads = base_sharded.get("threads")
        base_rows = {(r["benchmark"], r["scheme"]): r["refs_per_sec"]
                     for r in base_sharded.get("rows", [])}
        cur_rows = {(r["benchmark"], r["scheme"]): r["refs_per_sec"]
                    for r in cur_sharded.get("rows", [])}
        for key in sorted(base_rows):
            if key not in cur_rows:
                continue
            label = f"{key[0]}/{key[1]}@t{threads}"
            rows.append((label, base_rows[key], cur_rows[key],
                         cur_rows[key] / base_rows[key] * scale))

    if rows:
        geomean = math.exp(
            sum(math.log(r[3]) for r in rows) / len(rows))
    else:
        geomean = 1.0
    return rows, geomean


def report(rows, geomean, tolerance, out=sys.stdout):
    threshold = 1.0 - tolerance
    width = max((len(label) for label, *_ in rows), default=8)
    for label, base, cur, ratio in rows:
        flag = "low" if ratio < threshold else "ok"
        print(f"{label:<{width}}  base={base:>12.0f}  "
              f"cur={cur:>12.0f}  ratio={ratio:5.2f}  {flag}",
              file=out)
    verdict = "FAIL" if geomean < threshold else "OK"
    print(f"{verdict}: geomean ratio {geomean:.3f} vs threshold "
          f"{threshold:.2f} (host-normalised, {len(rows)} cells)",
          file=out)


def selftest():
    def doc(rate, cal, sweep):
        return {
            "schema": "pomtlb-bench-v1",
            "calibration_mops": cal,
            "throughput": [{"benchmark": "mcf", "scheme": "Baseline",
                            "refs_per_sec": rate}],
            "sweep": {"experiments_per_sec": sweep},
        }

    # Identical documents: every ratio and the geomean are 1.0.
    rows, geomean = compare(doc(1e6, 100, 4.0), doc(1e6, 100, 4.0))
    assert len(rows) == 2, rows
    assert all(abs(r[3] - 1.0) < 1e-9 for r in rows)
    assert abs(geomean - 1.0) < 1e-9, geomean

    # Uniform 30% slowdown on the same host: geomean 0.70.
    _, geomean = compare(doc(1e6, 100, 4.0), doc(0.7e6, 100, 2.8))
    assert abs(geomean - 0.7) < 1e-9, geomean

    # 30% slower rates on a 30% slower host: calibration absolves.
    _, geomean = compare(doc(1e6, 100, 4.0), doc(0.7e6, 70, 2.8))
    assert abs(geomean - 1.0) < 1e-9, geomean
    # Raw comparison of the same pair does see the slowdown.
    _, geomean = compare(doc(1e6, 100, 4.0), doc(0.7e6, 70, 2.8),
                         use_calibration=False)
    assert abs(geomean - 0.7) < 1e-9, geomean

    # One fast cell and one slow cell average out geometrically:
    # sqrt(1.25 * 0.8) = 1.0.
    current = doc(1.25e6, 100, 3.2)
    _, geomean = compare(doc(1e6, 100, 4.0), current)
    assert abs(geomean - 1.0) < 1e-9, geomean

    # Cells missing from the current document are skipped, not
    # treated as regressions (lets --quick docs subset full ones).
    current = doc(1e6, 100, 4.0)
    current["throughput"] = []
    rows, geomean = compare(doc(1e6, 100, 4.0), current)
    assert len(rows) == 1 and abs(geomean - 1.0) < 1e-9, rows

    # The opt-in trace section (bench_throughput --trace) adds two
    # gated cells when both documents carry it — and none when
    # either side lacks it.
    base = doc(1e6, 100, 4.0)
    base["trace"] = {"records": 1000,
                     "legacy_refs_per_sec": 2e7,
                     "pack_refs_per_sec": 8e7,
                     "speedup": 4.0}
    current = doc(1e6, 100, 4.0)
    current["trace"] = {"records": 1000,
                        "legacy_refs_per_sec": 2e7,
                        "pack_refs_per_sec": 4e7,
                        "speedup": 2.0}
    rows, geomean = compare(base, current)
    labels = [r[0] for r in rows]
    assert labels[-2:] == ["trace-legacy", "trace-pack"], labels
    assert abs(rows[-1][3] - 0.5) < 1e-9, rows
    rows, _ = compare(base, doc(1e6, 100, 4.0))
    assert all(not r[0].startswith("trace") for r in rows), rows

    # The opt-in run_threads section (bench_throughput
    # --run-threads) adds "@tN"-labeled cells when both documents
    # measured the same thread count — and none when either side
    # lacks the section or the counts differ.
    def sharded(rate, threads=2):
        out = doc(1e6, 100, 4.0)
        out["run_threads"] = {
            "threads": threads,
            "rows": [{"benchmark": "mcf", "scheme": "POM-TLB",
                      "refs_per_sec": rate}],
        }
        return out

    rows, _ = compare(sharded(2e6), sharded(1e6))
    assert rows[-1][0] == "mcf/POM-TLB@t2", rows
    assert abs(rows[-1][3] - 0.5) < 1e-9, rows
    rows, _ = compare(sharded(2e6), doc(1e6, 100, 4.0))
    assert all("@t" not in r[0] for r in rows), rows
    rows, _ = compare(sharded(2e6, 2), sharded(2e6, 4))
    assert all("@t" not in r[0] for r in rows), rows

    # Wrong-schema documents are rejected by load(); emulate via the
    # calibration check, the other format error compare() raises.
    try:
        compare({"schema": "pomtlb-bench-v1"}, doc(1e6, 100, 4.0))
    except ValueError:
        pass
    else:
        raise AssertionError("missing calibration not rejected")

    # Foreign schema families are rejected with a redirecting hint
    # that names the path; unknown bench versions name the version.
    for schema, needle in [
        ("pomtlb-sweep-v1", "plot_results"),
        ("pomtlb-sweepcache-v1", "cache entry"),
        ("pomtlb-serve-v1", "serve event stream"),
        ("pomtlb-stats-v1", "--breakdown"),
        ("pomtlb-bench-v7", "version"),
        ("other-tool-v1", "expected schema"),
        (None, "expected schema"),
    ]:
        try:
            check_schema("some/input.json", schema)
        except ValueError as error:
            assert "some/input.json" in str(error), error
            assert needle in str(error), (schema, error)
        else:
            raise AssertionError(f"{schema!r} not rejected")
    check_schema("ok.json", "pomtlb-bench-v1")  # must not raise

    print("check_bench selftest: OK")
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--baseline", help="pomtlb-bench-v1 baseline")
    parser.add_argument("--current", help="pomtlb-bench-v1 candidate")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed fractional geomean slowdown "
                             "(default 0.20)")
    parser.add_argument("--no-calibration", action="store_true",
                        help="compare raw rates (same-host runs)")
    parser.add_argument("--selftest", action="store_true",
                        help="run built-in unit tests and exit")
    args = parser.parse_args(argv)

    if args.selftest:
        return selftest()
    if not args.baseline or not args.current:
        parser.error("--baseline and --current are required")

    try:
        baseline = load(args.baseline)
        current = load(args.current)
        rows, geomean = compare(baseline, current,
                                not args.no_calibration)
    except (OSError, ValueError, KeyError) as error:
        print(f"check_bench: {error}", file=sys.stderr)
        return 2

    report(rows, geomean, args.tolerance)
    return 1 if geomean < 1.0 - args.tolerance else 0


if __name__ == "__main__":
    sys.exit(main())

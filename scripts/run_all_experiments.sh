#!/usr/bin/env sh
# Regenerate every table and figure of the paper, tee-ing the output
# the way EXPERIMENTS.md records it.
#
#   scripts/run_all_experiments.sh [build-dir] [output-file] [jobs]
#
# Environment: POMTLB_QUICK=1 for a fast smoke pass, POMTLB_CSV=1 for
# CSV blocks, POMTLB_CORES=n to override the core count,
# POMTLB_SWEEP_JOBS=n to run each figure's experiments on n worker
# threads (the third positional argument sets it for you; results
# are bit-identical at every job count).

set -eu

BUILD_DIR="${1:-build}"
OUTPUT="${2:-bench_output.txt}"
JOBS="${3:-${POMTLB_SWEEP_JOBS:-}}"
if [ -n "$JOBS" ]; then
    export POMTLB_SWEEP_JOBS="$JOBS"
    echo "running with POMTLB_SWEEP_JOBS=$JOBS"
fi

if [ ! -d "$BUILD_DIR/bench" ]; then
    echo "error: $BUILD_DIR/bench not found — build the project first" >&2
    exit 1
fi

: > "$OUTPUT"
for b in "$BUILD_DIR"/bench/*; do
    [ -f "$b" ] && [ -x "$b" ] || continue
    echo "===== $b =====" | tee -a "$OUTPUT"
    "$b" 2>&1 | tee -a "$OUTPUT"
done
echo "wrote $OUTPUT"

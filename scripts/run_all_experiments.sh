#!/usr/bin/env sh
# Regenerate every table and figure of the paper, tee-ing the output
# the way EXPERIMENTS.md records it.
#
#   scripts/run_all_experiments.sh [build-dir] [output-file]
#
# Environment: POMTLB_QUICK=1 for a fast smoke pass, POMTLB_CSV=1 for
# CSV blocks, POMTLB_CORES=n to override the core count.

set -eu

BUILD_DIR="${1:-build}"
OUTPUT="${2:-bench_output.txt}"

if [ ! -d "$BUILD_DIR/bench" ]; then
    echo "error: $BUILD_DIR/bench not found — build the project first" >&2
    exit 1
fi

: > "$OUTPUT"
for b in "$BUILD_DIR"/bench/*; do
    [ -f "$b" ] && [ -x "$b" ] || continue
    echo "===== $b =====" | tee -a "$OUTPUT"
    "$b" 2>&1 | tee -a "$OUTPUT"
done
echo "wrote $OUTPUT"

#!/usr/bin/env python3
"""Plot the figure benches' CSV output or a sweep's JSON output.

Usage:
    POMTLB_CSV=1 build/bench/bench_fig08_performance > fig08.txt
    scripts/plot_results.py fig08.txt -o fig08.png

    build/tools/pomtlb sweep --jobs 8 --out sweep.json
    scripts/plot_results.py sweep.json -o sweep.png \\
        --metric walk_fraction

Two input formats are accepted and auto-detected:

* the ``[csv]`` block a bench emits under POMTLB_CSV=1 (the aligned
  table is for humans; the CSV block is for this script), and
* the ``pomtlb-sweep-v1`` JSON document ``SweepResultWriter`` emits
  (``pomtlb sweep --out``), from which ``--metric`` picks one summary
  field per run; runs become rows keyed by benchmark, with one series
  per scheme (and variant label, if any).

Either way the result is a grouped bar chart in the paper's figure
style: benchmarks on the x-axis, one bar group per series.

Requires matplotlib (not needed for anything else in the repo).
"""

import argparse
import csv
import io
import json
import sys


def sweep_rows(
    document: dict, metric: str
) -> list[dict[str, str]]:
    """Flatten a pomtlb-sweep-v1 document into CSV-style rows.

    One row per benchmark; one column per scheme[/label] holding the
    requested summary *metric* (or ``wall_seconds``).
    """
    if document.get("schema") != "pomtlb-sweep-v1":
        raise SystemExit(
            "unrecognised JSON schema: expected pomtlb-sweep-v1"
        )
    table: dict[str, dict[str, str]] = {}
    for run in document.get("runs", []):
        series = run["scheme"]
        if run.get("label"):
            series += "/" + run["label"]
        if metric == "wall_seconds":
            value = run["wall_seconds"]
        else:
            summary = run["summary"]
            if metric not in summary:
                raise SystemExit(
                    f"metric {metric!r} not in summary; available: "
                    + ", ".join(sorted(summary))
                )
            value = summary[metric]
        row = table.setdefault(
            run["benchmark"], {"benchmark": run["benchmark"]}
        )
        row[series] = str(value)
    return list(table.values())


def extract_csv(text: str) -> list[dict[str, str]]:
    """Return the rows of the first [csv] block in *text*."""
    marker = "[csv]"
    start = text.find(marker)
    if start < 0:
        raise SystemExit(
            "no [csv] block found — run the bench with POMTLB_CSV=1"
        )
    block = text[start + len(marker):].lstrip("\n")
    # The block ends at the first blank line or EOF.
    body = block.split("\n\n", 1)[0]
    reader = csv.DictReader(io.StringIO(body))
    return list(reader)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "input",
        help="bench output file (with [csv]) or sweep JSON",
    )
    parser.add_argument("-o", "--output", default="figure.png")
    parser.add_argument("--title", default=None)
    parser.add_argument(
        "--drop-average",
        action="store_true",
        help="omit the summary 'average' row",
    )
    parser.add_argument(
        "--metric",
        default="translation_cycles",
        help="summary field to plot from sweep JSON input "
        "(default: translation_cycles; 'wall_seconds' plots the "
        "per-run wall clock)",
    )
    args = parser.parse_args()

    with open(args.input, encoding="utf-8") as handle:
        text = handle.read()
    if text.lstrip().startswith("{"):
        rows = sweep_rows(json.loads(text), args.metric)
    else:
        rows = extract_csv(text)
    if not rows:
        raise SystemExit("no rows found in input")

    label_key = next(iter(rows[0]))
    value_keys = [k for k in rows[0] if k != label_key]
    if args.drop_average:
        rows = [r for r in rows if r[label_key] != "average"]

    labels = [r[label_key] for r in rows]
    series = {
        key: [float(r[key]) for r in rows] for key in value_keys
    }

    try:
        import matplotlib

        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        raise SystemExit(
            "matplotlib is required: pip install matplotlib"
        )

    _, axis = plt.subplots(
        figsize=(max(8.0, 0.7 * len(labels)), 4.0)
    )
    width = 0.8 / max(1, len(series))
    for index, (name, values) in enumerate(series.items()):
        positions = [
            i + index * width for i in range(len(labels))
        ]
        axis.bar(positions, values, width=width, label=name)

    axis.set_xticks(
        [i + 0.4 - width / 2 for i in range(len(labels))]
    )
    axis.set_xticklabels(labels, rotation=45, ha="right")
    axis.legend(fontsize=8)
    axis.grid(axis="y", linewidth=0.3)
    if args.title:
        axis.set_title(args.title)

    plt.tight_layout()
    plt.savefig(args.output, dpi=150)
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

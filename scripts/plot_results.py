#!/usr/bin/env python3
"""Plot the figure benches' CSV output or the simulator's JSON output.

Usage:
    POMTLB_CSV=1 build/bench/bench_fig08_performance > fig08.txt
    scripts/plot_results.py fig08.txt -o fig08.png

    build/tools/pomtlb sweep --jobs 8 --out sweep.json
    scripts/plot_results.py sweep.json -o sweep.png \\
        --metric walk_fraction
    scripts/plot_results.py sweep.json -o breakdown.png --breakdown

    build/tools/pomtlb run --stats-out run.json
    scripts/plot_results.py run.json -o breakdown.png --breakdown

Three input formats are accepted and auto-detected:

* the ``[csv]`` block a bench emits under POMTLB_CSV=1 (the aligned
  table is for humans; the CSV block is for this script);
* the ``pomtlb-sweep-v1`` JSON document ``SweepResultWriter`` emits
  (``pomtlb sweep --out``), from which ``--metric`` picks one summary
  field per run; and
* the ``pomtlb-stats-v1`` JSON document of a single run
  (``pomtlb run --stats-out``), usable with ``--breakdown``;
* a saved ``pomtlb-serve-v1`` event stream (the JSONL stdout of
  ``pomtlb serve``, even truncated mid-campaign): the ``run`` object
  of every ``job`` event is assembled back into a sweep document, in
  the request order the service guarantees;
* a single ``pomtlb-sweepcache-v1`` cache entry
  (``<cache-dir>/<hash>.json``), plotted as a one-run sweep; and
* a ``pomtlb-scenario-v1`` consolidation-scenario document
  (``pomtlb scenario --out``), single scenario or campaign wrapper:
  rendered as a per-tenant QoS chart, one bar group per tenant with
  the p50/p95/p99 translation-cycle percentiles; and
* a ``pomtlb-tracepack-v1`` trace-pack description (the
  ``pomtlb trace info --json`` document, docs/trace-format.md):
  rendered as a per-stream chart of record and chunk counts.

The default output is a grouped bar chart in the paper's figure
style: benchmarks on the x-axis, one bar group per series.
``--breakdown`` instead draws the stacked translation-cycle
decomposition of Figure 8's cost model: one stacked bar per
(benchmark, scheme) run, one segment per serving level, normalised to
each run's total translation cycles. Every stat and field this script
reads is documented in docs/metrics.md.

Unknown *versions* of a known result schema family (e.g. a future
``pomtlb-sweep-v2``) produce a warning and a best-effort parse;
missing required fields are hard errors naming the field. Cache
entries, serve events, and scenario documents are different: a
version bump there changes the job-identity recipe, the wire
protocol, the scenario-identity recipe, or the trace container
layout, so an unknown ``pomtlb-sweepcache-*``, ``pomtlb-serve-*``,
``pomtlb-scenario-*``, or ``pomtlb-tracepack-*`` version is a hard
error naming the input path and the offending schema. Run
``scripts/plot_results.py --selftest`` to execute the built-in parser
tests (no matplotlib needed; CI runs this as a ctest).

Requires matplotlib for plotting (not needed for anything else in the
repo, nor for --selftest).
"""

import argparse
import csv
import io
import json
import sys

SWEEP_SCHEMA = "pomtlb-sweep-v1"
STATS_SCHEMA = "pomtlb-stats-v1"
SWEEPCACHE_SCHEMA = "pomtlb-sweepcache-v1"
SERVE_SCHEMA = "pomtlb-serve-v1"
SCENARIO_SCHEMA = "pomtlb-scenario-v1"
TRACEPACK_SCHEMA = "pomtlb-tracepack-v1"

#: The per-tenant QoS percentiles a scenario chart plots, in order.
SCENARIO_PERCENTILES = [
    "p50_translation_cycles",
    "p95_translation_cycles",
    "p99_translation_cycles",
]

#: Stacked-segment order for --breakdown, matching the ServicePoint
#: order of sim/scheme.hh ("sram_tlb" is the MMUs' aggregate share).
BREAKDOWN_ORDER = [
    "sram_tlb",
    "pom_l2d_cache",
    "pom_l3d_cache",
    "pom_dram",
    "shared_l2_tlb",
    "tsb_buffer",
    "coalesced_tlb",
    "victima_l2d_cache",
    "victima_l3d_cache",
    "page_walk",
]


class ParseError(ValueError):
    """A document is structurally unusable (missing required field)."""


def _require(mapping, key, context):
    """Return ``mapping[key]`` or raise ParseError naming the field."""
    if not isinstance(mapping, dict) or key not in mapping:
        raise ParseError(f"missing required field '{context}{key}'")
    return mapping[key]


def _check_schema(document):
    """Validate the schema tag; returns the schema *family*.

    Exact known schemas pass silently. An unknown version of a known
    family ("pomtlb-sweep-v*", "pomtlb-stats-v*") warns on stderr and
    parses best-effort. Anything else is a ParseError.
    """
    schema = _require(document, "schema", "")
    for known in (SWEEP_SCHEMA, STATS_SCHEMA):
        family = known.rsplit("-v", 1)[0]
        if schema == known:
            return family
        if isinstance(schema, str) and schema.startswith(
            family + "-v"
        ):
            print(
                f"warning: unrecognised schema version {schema!r}; "
                f"parsing as {known}",
                file=sys.stderr,
            )
            return family
    raise ParseError(f"unrecognised JSON schema: {schema!r}")


def _unwrap_cache_entry(document):
    """Turn one on-disk cache entry into a single-run sweep document.

    Cache entries are content-addressed: a version bump means the
    job-identity recipe changed, so unlike the result schemas there
    is no best-effort path for ``pomtlb-sweepcache-v2`` — reject it.
    """
    schema = _require(document, "schema", "")
    if schema != SWEEPCACHE_SCHEMA:
        raise ParseError(
            f"unsupported cache-entry schema {schema!r}; this "
            f"script understands {SWEEPCACHE_SCHEMA} only (a cache "
            "version bump changes the job-identity recipe — "
            "re-run the sweep to repopulate)"
        )
    return {
        "schema": SWEEP_SCHEMA,
        "runs": [_require(document, "run", "")],
    }


def _scenario_documents(document):
    """Return the scenario documents in *document*.

    Accepts a single ``pomtlb-scenario-v1`` document or the campaign
    wrapper (``runs`` holding one scenario document each). Scenario
    documents are content-addressed like cache entries: a version
    bump means the scenario-identity recipe changed, so an unknown
    ``pomtlb-scenario-*`` version is a hard error (the CLI prefixes
    the input path), never a best-effort parse.
    """
    schema = _require(document, "schema", "")
    if schema != SCENARIO_SCHEMA:
        raise ParseError(
            f"unsupported scenario schema {schema!r}; this script "
            f"understands {SCENARIO_SCHEMA} only (a scenario "
            "version bump changes the identity recipe — re-run "
            "`pomtlb scenario`)"
        )
    if "runs" not in document:
        return [document]
    documents = []
    for index, run in enumerate(document["runs"]):
        context = f"runs[{index}]."
        inner = _require(run, "schema", context)
        if inner != SCENARIO_SCHEMA:
            raise ParseError(
                f"{context}schema: unsupported scenario schema "
                f"{inner!r}; this script understands "
                f"{SCENARIO_SCHEMA} only"
            )
        documents.append(run)
    if not documents:
        raise ParseError(
            "scenario campaign contains no runs — nothing to plot"
        )
    return documents


def scenario_rows(document):
    """Per-tenant QoS rows from scenario document(s).

    One row per tenant: the tenant name (prefixed with the scenario
    name when the input holds several scenarios) followed by the
    p50/p95/p99 translation-cycle percentiles, ready for the grouped
    bar chart or a CSV-style table.
    """
    documents = _scenario_documents(document)
    rows = []
    for doc in documents:
        scenario = _require(doc, "scenario", "")
        name = _require(scenario, "name", "scenario.")
        for index, tenant in enumerate(
            _require(doc, "tenants", "")
        ):
            context = f"tenants[{index}]."
            label = _require(tenant, "name", context)
            if len(documents) > 1:
                label = f"{name}/{label}"
            row = {"tenant": label}
            for key in SCENARIO_PERCENTILES:
                row[key.replace("_translation_cycles", "")] = str(
                    _require(tenant, key, context)
                )
            rows.append(row)
    if not rows:
        raise ParseError(
            "scenario document contains no tenants — nothing to "
            "plot"
        )
    return rows


def tracepack_rows(document):
    """Per-stream rows from a ``pomtlb trace info --json`` document.

    One row per stream: its name, record count, and chunk count.
    Trace packs are an identity format — their content hash feeds
    sweep-cache job identity — so unlike the result schemas an
    unknown ``pomtlb-tracepack-*`` version is a hard error (the CLI
    prefixes the input path): guessing at a future container layout
    would silently misreport what a memoized campaign replayed.
    """
    schema = _require(document, "schema", "")
    if schema != TRACEPACK_SCHEMA:
        raise ParseError(
            f"unsupported trace-pack schema {schema!r}; this "
            f"script understands {TRACEPACK_SCHEMA} only (re-pack "
            "the trace with this build's `pomtlb trace pack`)"
        )
    rows = []
    for index, stream in enumerate(
        _require(document, "streams", "")
    ):
        context = f"streams[{index}]."
        rows.append(
            {
                "stream": _require(stream, "name", context),
                "records": str(
                    _require(stream, "records", context)
                ),
                "chunks": str(_require(stream, "chunks", context)),
            }
        )
    if not rows:
        raise ParseError(
            "trace pack contains no streams — nothing to plot"
        )
    return rows


def assemble_serve_stream(lines):
    """Assemble a saved serve event stream into a sweep document.

    *lines* is the JSONL stdout of ``pomtlb serve`` (possibly
    truncated mid-campaign). The ``run`` object of every ``job``
    event becomes one sweep run; the service streams job events in
    request order, so the assembled document matches what
    ``pomtlb sweep --out`` would have written for the same campaign
    (identity form: wall_seconds is 0; the real per-job wall time is
    the event's own ``wall_seconds``, plottable via ``--metric
    wall_seconds`` only from sweep documents).
    """
    runs = []
    for number, line in enumerate(lines, 1):
        line = line.strip()
        if not line:
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError as error:
            raise ParseError(
                f"line {number}: not a JSON event: {error}"
            )
        context = f"line {number}: "
        schema = _require(event, "schema", context)
        if schema != SERVE_SCHEMA:
            raise ParseError(
                f"line {number}: unsupported event schema "
                f"{schema!r}; this script understands "
                f"{SERVE_SCHEMA} only"
            )
        if _require(event, "event", context) != "job":
            continue
        run = dict(_require(event, "run", context))
        # Surface the real wall time the event carried out-of-band.
        run["wall_seconds"] = event.get("wall_seconds", 0)
        runs.append(run)
    if not runs:
        raise ParseError(
            "event stream contains no 'job' events — nothing to "
            "plot (did the campaign error before its first job?)"
        )
    return {"schema": SWEEP_SCHEMA, "runs": runs}


def load_json_input(text):
    """Auto-detect and normalise JSON input to a plottable document.

    Returns a ``pomtlb-sweep-v1`` / ``pomtlb-stats-v1`` document,
    unwrapping cache entries and assembling serve event streams on
    the way. Raises ParseError (without the input path; the CLI
    prefixes it).
    """
    try:
        document = json.loads(text)
    except json.JSONDecodeError:
        # More than one top-level object: a JSONL serve stream.
        return assemble_serve_stream(text.splitlines())
    if isinstance(document, dict):
        schema = document.get("schema")
        if isinstance(schema, str):
            if schema.startswith("pomtlb-sweepcache-"):
                return _unwrap_cache_entry(document)
            if schema.startswith("pomtlb-serve-"):
                # A one-line event file parses as a single object.
                return assemble_serve_stream(text.splitlines())
    return document


def parse_document(document):
    """Parse a sweep or stats document into a normalised run list.

    Returns a list of run dicts with keys ``benchmark``, ``scheme``,
    ``label``, ``summary`` (the metric mapping ``--metric`` indexes),
    ``wall_seconds`` (None for stats documents) and
    ``cycle_breakdown`` (mapping with the serving-level cycles plus
    ``sram_tlb``, or None when the document predates it).

    Raises ParseError on missing required fields; warns (stderr) on
    unknown versions of a known schema family.
    """
    family = _check_schema(document)

    if family == "pomtlb-stats":
        totals = _require(document, "totals", "")
        runs = [
            {
                "benchmark": _require(document, "benchmark", ""),
                "scheme": _require(document, "scheme", ""),
                "label": "",
                "summary": totals,
                "wall_seconds": None,
                "cycle_breakdown": document.get("cycle_breakdown"),
            }
        ]
        _require(totals, "translation_cycles", "totals.")
        return runs

    runs = []
    for index, run in enumerate(_require(document, "runs", "")):
        context = f"runs[{index}]."
        summary = _require(run, "summary", context)
        _require(
            summary, "translation_cycles", context + "summary."
        )
        breakdown = summary.get("cycle_breakdown")
        if breakdown is not None:
            breakdown = dict(breakdown)
            breakdown.setdefault(
                "sram_tlb", summary.get("sram_cycles", 0)
            )
        runs.append(
            {
                "benchmark": _require(run, "benchmark", context),
                "scheme": _require(run, "scheme", context),
                "label": run.get("label", ""),
                "summary": summary,
                "wall_seconds": run.get("wall_seconds"),
                "cycle_breakdown": breakdown,
            }
        )
    return runs


def sweep_rows(document, metric):
    """Flatten a parsed document into CSV-style rows.

    One row per benchmark; one column per scheme[/label] holding the
    requested summary *metric* (or ``wall_seconds``).
    """
    table = {}
    for run in parse_document(document):
        series = run["scheme"]
        if run["label"]:
            series += "/" + run["label"]
        if metric == "wall_seconds":
            value = run["wall_seconds"]
        else:
            summary = run["summary"]
            if metric not in summary:
                raise ParseError(
                    f"metric {metric!r} not in summary; available: "
                    + ", ".join(sorted(summary))
                )
            value = summary[metric]
        row = table.setdefault(
            run["benchmark"], {"benchmark": run["benchmark"]}
        )
        row[series] = str(value)
    return list(table.values())


def breakdown_rows(document):
    """Per-run translation-cycle shares for the stacked plot.

    Returns ``(labels, series)``: one label per run
    ("benchmark/scheme[/label]") and, for every serving level in
    BREAKDOWN_ORDER, that run's share of its own total translation
    cycles (each label's shares sum to ~1.0).
    """
    labels = []
    series = {key: [] for key in BREAKDOWN_ORDER}
    for run in parse_document(document):
        breakdown = run["cycle_breakdown"]
        if breakdown is None:
            raise ParseError(
                "document has no cycle_breakdown (produced by a "
                "pre-observability build?)"
            )
        label = f"{run['benchmark']}/{run['scheme']}"
        if run["label"]:
            label += "/" + run["label"]
        labels.append(label)
        total = float(
            run["summary"]["translation_cycles"]
        ) or 1.0
        for key in BREAKDOWN_ORDER:
            series[key].append(
                float(breakdown.get(key, 0.0)) / total
            )
    return labels, series


def extract_csv(text):
    """Return the rows of the first [csv] block in *text*."""
    marker = "[csv]"
    start = text.find(marker)
    if start < 0:
        raise SystemExit(
            "no [csv] block found — run the bench with POMTLB_CSV=1"
        )
    block = text[start + len(marker):].lstrip("\n")
    # The block ends at the first blank line or EOF.
    body = block.split("\n\n", 1)[0]
    reader = csv.DictReader(io.StringIO(body))
    return list(reader)


def _load_pyplot():
    try:
        import matplotlib

        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        raise SystemExit(
            "matplotlib is required: pip install matplotlib"
        )
    return plt


def plot_grouped(rows, args):
    """Grouped bar chart: one group per row, one bar per series."""
    label_key = next(iter(rows[0]))
    value_keys = [k for k in rows[0] if k != label_key]
    if args.drop_average:
        rows = [r for r in rows if r[label_key] != "average"]

    labels = [r[label_key] for r in rows]
    series = {
        key: [float(r[key]) for r in rows] for key in value_keys
    }

    plt = _load_pyplot()
    _, axis = plt.subplots(
        figsize=(max(8.0, 0.7 * len(labels)), 4.0)
    )
    width = 0.8 / max(1, len(series))
    for index, (name, values) in enumerate(series.items()):
        positions = [
            i + index * width for i in range(len(labels))
        ]
        axis.bar(positions, values, width=width, label=name)

    axis.set_xticks(
        [i + 0.4 - width / 2 for i in range(len(labels))]
    )
    axis.set_xticklabels(labels, rotation=45, ha="right")
    axis.legend(fontsize=8)
    axis.grid(axis="y", linewidth=0.3)
    if args.title:
        axis.set_title(args.title)

    plt.tight_layout()
    plt.savefig(args.output, dpi=150)
    print(f"wrote {args.output}")


def plot_breakdown(labels, series, args):
    """Stacked bars: translation-cycle share per serving level."""
    plt = _load_pyplot()
    _, axis = plt.subplots(
        figsize=(max(8.0, 0.6 * len(labels)), 4.5)
    )
    bottoms = [0.0] * len(labels)
    positions = list(range(len(labels)))
    for key in BREAKDOWN_ORDER:
        values = series[key]
        if not any(values):
            continue
        axis.bar(
            positions, values, bottom=bottoms, width=0.7, label=key
        )
        bottoms = [b + v for b, v in zip(bottoms, values)]
    axis.set_xticks(positions)
    axis.set_xticklabels(labels, rotation=45, ha="right")
    axis.set_ylabel("share of translation cycles")
    axis.set_ylim(0.0, 1.05)
    axis.legend(fontsize=8)
    axis.grid(axis="y", linewidth=0.3)
    if args.title:
        axis.set_title(args.title)
    plt.tight_layout()
    plt.savefig(args.output, dpi=150)
    print(f"wrote {args.output}")


def selftest():
    """Built-in parser tests (run by ctest; no matplotlib needed)."""
    import contextlib
    import unittest

    def sweep_doc(**summary_overrides):
        summary = {
            "translation_cycles": 1000,
            "sram_cycles": 400,
            "scheme_cycles": 600,
            "cycle_breakdown": {"pom_dram": 350, "page_walk": 250},
            "walk_fraction": 0.25,
        }
        summary.update(summary_overrides)
        return {
            "schema": SWEEP_SCHEMA,
            "runs": [
                {
                    "benchmark": "mcf",
                    "scheme": "POM-TLB",
                    "label": "",
                    "wall_seconds": 1.5,
                    "summary": summary,
                }
            ],
        }

    class ParserTests(unittest.TestCase):
        def test_missing_schema_errors(self):
            with self.assertRaisesRegex(ParseError, "schema"):
                parse_document({"runs": []})

        def test_foreign_schema_errors(self):
            with self.assertRaisesRegex(
                ParseError, "unrecognised"
            ):
                parse_document({"schema": "other-tool-v1"})

        def test_future_version_warns_but_parses(self):
            document = sweep_doc()
            document["schema"] = "pomtlb-sweep-v99"
            stderr = io.StringIO()
            with contextlib.redirect_stderr(stderr):
                runs = parse_document(document)
            self.assertIn("pomtlb-sweep-v99", stderr.getvalue())
            self.assertEqual(len(runs), 1)

        def test_missing_required_field_errors(self):
            document = sweep_doc()
            del document["runs"][0]["summary"][
                "translation_cycles"
            ]
            with self.assertRaisesRegex(
                ParseError, r"runs\[0\].summary.translation_cycles"
            ):
                parse_document(document)

        def test_missing_benchmark_errors(self):
            document = sweep_doc()
            del document["runs"][0]["benchmark"]
            with self.assertRaisesRegex(
                ParseError, r"runs\[0\].benchmark"
            ):
                parse_document(document)

        def test_sweep_rows_picks_metric(self):
            rows = sweep_rows(sweep_doc(), "walk_fraction")
            self.assertEqual(rows[0]["POM-TLB"], "0.25")

        def test_sweep_rows_unknown_metric_errors(self):
            with self.assertRaisesRegex(ParseError, "nope"):
                sweep_rows(sweep_doc(), "nope")

        def test_breakdown_shares_sum_to_one(self):
            labels, series = breakdown_rows(sweep_doc())
            self.assertEqual(labels, ["mcf/POM-TLB"])
            total = sum(
                series[key][0] for key in BREAKDOWN_ORDER
            )
            self.assertAlmostEqual(total, 1.0)
            self.assertAlmostEqual(series["sram_tlb"][0], 0.4)

        def test_breakdown_missing_errors(self):
            document = sweep_doc()
            del document["runs"][0]["summary"]["cycle_breakdown"]
            with self.assertRaisesRegex(
                ParseError, "cycle_breakdown"
            ):
                breakdown_rows(document)

        def test_stats_document(self):
            document = {
                "schema": STATS_SCHEMA,
                "benchmark": "gups",
                "scheme": "TSB",
                "totals": {"translation_cycles": 10},
                "cycle_breakdown": {
                    "sram_tlb": 4,
                    "tsb_buffer": 6,
                },
            }
            labels, series = breakdown_rows(document)
            self.assertEqual(labels, ["gups/TSB"])
            self.assertAlmostEqual(
                series["tsb_buffer"][0], 0.6
            )

        def test_stats_document_missing_totals_errors(self):
            with self.assertRaisesRegex(ParseError, "totals"):
                parse_document(
                    {
                        "schema": STATS_SCHEMA,
                        "benchmark": "gups",
                        "scheme": "TSB",
                    }
                )

        def sweep_run(self, benchmark="mcf"):
            run = dict(sweep_doc()["runs"][0])
            run["benchmark"] = benchmark
            run["wall_seconds"] = 0
            return run

        def serve_event(self, **fields):
            event = {"schema": SERVE_SCHEMA}
            event.update(fields)
            return json.dumps(event)

        def test_cache_entry_plots_as_one_run_sweep(self):
            entry = {
                "schema": SWEEPCACHE_SCHEMA,
                "job_hash": "0" * 32,
                "key": "mcf/POM-TLB",
                "run": self.sweep_run(),
            }
            document = load_json_input(json.dumps(entry))
            runs = parse_document(document)
            self.assertEqual(len(runs), 1)
            self.assertEqual(runs[0]["benchmark"], "mcf")

        def test_unknown_cache_version_is_a_hard_error(self):
            entry = {
                "schema": "pomtlb-sweepcache-v9",
                "run": self.sweep_run(),
            }
            with self.assertRaisesRegex(
                ParseError, "pomtlb-sweepcache-v9"
            ):
                load_json_input(json.dumps(entry))

        def test_serve_stream_assembles_job_runs_in_order(self):
            stream = "\n".join(
                [
                    self.serve_event(event="ready", jobs=4),
                    self.serve_event(
                        event="job",
                        index=0,
                        key="mcf/POM-TLB",
                        source="cache",
                        wall_seconds=0,
                        run=self.sweep_run("mcf"),
                    ),
                    "",  # blank lines are skipped
                    self.serve_event(
                        event="job",
                        index=1,
                        key="gups/POM-TLB",
                        source="executed",
                        wall_seconds=2.5,
                        run=self.sweep_run("gups"),
                    ),
                    self.serve_event(
                        event="sweep-end", sweep_hash="", stats={}
                    ),
                ]
            )
            runs = parse_document(load_json_input(stream))
            self.assertEqual(
                [r["benchmark"] for r in runs], ["mcf", "gups"]
            )
            # The event's out-of-band wall time is surfaced so
            # --metric wall_seconds works on streamed input too.
            self.assertEqual(runs[1]["wall_seconds"], 2.5)

        def test_single_line_serve_stream_without_jobs_errors(self):
            with self.assertRaisesRegex(ParseError, "no 'job'"):
                load_json_input(self.serve_event(event="ready"))

        def test_unknown_serve_version_is_a_hard_error(self):
            stream = json.dumps(
                {"schema": "pomtlb-serve-v2", "event": "ready"}
            )
            with self.assertRaisesRegex(
                ParseError, "pomtlb-serve-v2"
            ):
                load_json_input(stream)

        def test_torn_serve_stream_names_the_line(self):
            stream = (
                self.serve_event(event="ready")
                + "\n"
                + '{"schema": "pomtlb-serve-v1", "eve'
            )
            with self.assertRaisesRegex(
                ParseError, "line 2"
            ):
                load_json_input(stream)

        def test_plain_documents_pass_through_unchanged(self):
            document = sweep_doc()
            self.assertEqual(
                load_json_input(json.dumps(document)), document
            )

        def scenario_doc(self, name="churn-4t", tenants=2):
            return {
                "schema": SCENARIO_SCHEMA,
                "scenario": {"name": name},
                "scenario_hash": "0" * 32,
                "tenants": [
                    {
                        "name": f"t{i}",
                        "benchmark": "mcf",
                        "refs": 1000,
                        "p50_translation_cycles": 0,
                        "p95_translation_cycles": 15 + i,
                        "p99_translation_cycles": 255,
                    }
                    for i in range(tenants)
                ],
                "events": {
                    "departures": 1,
                    "migrations": 0,
                    "storm_shootdowns": 8,
                },
            }

        def test_scenario_rows_carry_tenant_percentiles(self):
            rows = scenario_rows(self.scenario_doc())
            self.assertEqual(
                [r["tenant"] for r in rows], ["t0", "t1"]
            )
            self.assertEqual(rows[0]["p50"], "0")
            self.assertEqual(rows[1]["p95"], "16")
            self.assertEqual(rows[1]["p99"], "255")

        def test_scenario_campaign_prefixes_scenario_names(self):
            campaign = {
                "schema": SCENARIO_SCHEMA,
                "runs": [
                    self.scenario_doc("a-1t", tenants=1),
                    self.scenario_doc("b-2t", tenants=2),
                ],
            }
            rows = scenario_rows(campaign)
            self.assertEqual(
                [r["tenant"] for r in rows],
                ["a-1t/t0", "b-2t/t0", "b-2t/t1"],
            )

        def test_unknown_scenario_version_is_a_hard_error(self):
            document = self.scenario_doc()
            document["schema"] = "pomtlb-scenario-v9"
            with self.assertRaisesRegex(
                ParseError, "pomtlb-scenario-v9"
            ):
                scenario_rows(document)

        def test_unknown_nested_scenario_version_errors(self):
            run = self.scenario_doc()
            run["schema"] = "pomtlb-scenario-v9"
            campaign = {
                "schema": SCENARIO_SCHEMA,
                "runs": [run],
            }
            with self.assertRaisesRegex(
                ParseError, r"runs\[0\].*pomtlb-scenario-v9"
            ):
                scenario_rows(campaign)

        def test_scenario_missing_percentile_names_the_path(self):
            document = self.scenario_doc()
            del document["tenants"][1]["p95_translation_cycles"]
            with self.assertRaisesRegex(
                ParseError,
                r"tenants\[1\].p95_translation_cycles",
            ):
                scenario_rows(document)

        def test_empty_scenario_campaign_errors(self):
            with self.assertRaisesRegex(ParseError, "no runs"):
                scenario_rows(
                    {"schema": SCENARIO_SCHEMA, "runs": []}
                )

        def tracepack_doc(self):
            return {
                "schema": TRACEPACK_SCHEMA,
                "path": "mcf.pack",
                "file_bytes": 17120,
                "header_bytes": 128,
                "record_bytes": 16,
                "chunk_records": 4096,
                "records": 1000,
                "chunks": 2,
                "content_hash": "0" * 32,
                "finalized": True,
                "streams": [
                    {"name": "core0", "records": 750, "chunks": 1},
                    {"name": "core1", "records": 250, "chunks": 1},
                ],
            }

        def test_tracepack_rows_one_per_stream(self):
            rows = tracepack_rows(self.tracepack_doc())
            self.assertEqual(
                [r["stream"] for r in rows], ["core0", "core1"]
            )
            self.assertEqual(rows[0]["records"], "750")
            self.assertEqual(rows[1]["chunks"], "1")

        def test_unknown_tracepack_version_is_a_hard_error(self):
            document = self.tracepack_doc()
            document["schema"] = "pomtlb-tracepack-v9"
            with self.assertRaisesRegex(
                ParseError, "pomtlb-tracepack-v9"
            ):
                tracepack_rows(document)

        def test_tracepack_missing_field_names_the_path(self):
            document = self.tracepack_doc()
            del document["streams"][1]["records"]
            with self.assertRaisesRegex(
                ParseError, r"streams\[1\].records"
            ):
                tracepack_rows(document)

        def test_empty_tracepack_errors(self):
            document = self.tracepack_doc()
            document["streams"] = []
            with self.assertRaisesRegex(ParseError, "no streams"):
                tracepack_rows(document)

    suite = unittest.defaultTestLoader.loadTestsFromTestCase(
        ParserTests
    )
    result = unittest.TextTestRunner(verbosity=2).run(suite)
    return 0 if result.wasSuccessful() else 1


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "input",
        nargs="?",
        help="bench output file (with [csv]) or simulator JSON",
    )
    parser.add_argument("-o", "--output", default="figure.png")
    parser.add_argument("--title", default=None)
    parser.add_argument(
        "--drop-average",
        action="store_true",
        help="omit the summary 'average' row",
    )
    parser.add_argument(
        "--metric",
        default="translation_cycles",
        help="summary field to plot from sweep JSON input "
        "(default: translation_cycles; 'wall_seconds' plots the "
        "per-run wall clock)",
    )
    parser.add_argument(
        "--breakdown",
        action="store_true",
        help="stacked translation-cycle breakdown per run "
        "(JSON input only)",
    )
    parser.add_argument(
        "--selftest",
        action="store_true",
        help="run the built-in parser tests and exit",
    )
    args = parser.parse_args()

    if args.selftest:
        return selftest()
    if args.input is None:
        parser.error("an input file is required unless --selftest")

    with open(args.input, encoding="utf-8") as handle:
        text = handle.read()

    try:
        if args.breakdown:
            labels, series = breakdown_rows(load_json_input(text))
            plot_breakdown(labels, series, args)
            return 0
        if text.lstrip().startswith("{"):
            document = load_json_input(text)
            schema = (
                document.get("schema", "")
                if isinstance(document, dict)
                else ""
            )
            if isinstance(schema, str) and schema.startswith(
                "pomtlb-scenario-"
            ):
                rows = scenario_rows(document)
            elif isinstance(schema, str) and schema.startswith(
                "pomtlb-tracepack-"
            ):
                rows = tracepack_rows(document)
            else:
                rows = sweep_rows(document, args.metric)
        else:
            rows = extract_csv(text)
    except ParseError as error:
        raise SystemExit(f"error: {args.input}: {error}")
    if not rows:
        raise SystemExit("no rows found in input")
    plot_grouped(rows, args)
    return 0


if __name__ == "__main__":
    sys.exit(main())

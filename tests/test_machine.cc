/**
 * @file
 * Machine-assembly tests: scheme wiring, configuration scaling, and
 * whole-machine shootdown.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/machine.hh"

namespace pomtlb
{
namespace
{

TEST(Machine, BuildsAllPaperSchemes)
{
    SystemConfig config = SystemConfig::table1();
    config.numCores = 2;
    for (const std::string scheme :
         {"Baseline", "POM-TLB", "Shared_L2", "TSB"}) {
        Machine machine(config, scheme);
        EXPECT_EQ(machine.schemeName(), scheme);
        EXPECT_EQ(machine.numCores(), 2u);
    }
}

TEST(Machine, PomDeviceOnlyForPomScheme)
{
    SystemConfig config = SystemConfig::table1();
    config.numCores = 1;
    Machine pom(config, "POM-TLB");
    EXPECT_NE(pom.pomTlbDevice(), nullptr);
    EXPECT_NE(pom.pomTlbScheme(), nullptr);

    Machine baseline(config, "Baseline");
    EXPECT_EQ(baseline.pomTlbDevice(), nullptr);
    EXPECT_EQ(baseline.pomTlbScheme(), nullptr);
}

TEST(Machine, CoreCountScalesComponents)
{
    SystemConfig config = SystemConfig::table1();
    config.numCores = 4;
    Machine machine(config, "POM-TLB");
    for (CoreId core = 0; core < 4; ++core) {
        EXPECT_NO_THROW(machine.mmu(core));
        EXPECT_NO_THROW(machine.walker(core));
    }
    EXPECT_EQ(machine.hierarchy().numCores(), 4u);
}

TEST(Machine, PrivateL2PresentExceptSharedL2)
{
    SystemConfig config = SystemConfig::table1();
    config.numCores = 1;
    Machine pom(config, "POM-TLB");
    EXPECT_TRUE(pom.mmu(0).tlbs().hasPrivateL2());
    Machine shared(config, "Shared_L2");
    EXPECT_FALSE(shared.mmu(0).tlbs().hasPrivateL2());
    Machine tsb(config, "TSB");
    EXPECT_TRUE(tsb.mmu(0).tlbs().hasPrivateL2());
}

TEST(Machine, ShootdownVmClearsEverything)
{
    SystemConfig config = SystemConfig::table1();
    config.numCores = 1;
    Machine machine(config, "POM-TLB");
    machine.mmu(0).translate(0x1234000, PageSize::Small4K, 1, 1, 0);
    machine.shootdownVm(1);
    const MmuResult after = machine.mmu(0).translate(
        0x1234000, PageSize::Small4K, 1, 1, 1000);
    EXPECT_EQ(after.level, TlbLevel::Miss);
    EXPECT_TRUE(after.walked);
}

TEST(Machine, ResetStatsPreservesState)
{
    SystemConfig config = SystemConfig::table1();
    config.numCores = 1;
    Machine machine(config, "POM-TLB");
    machine.mmu(0).translate(0x1234000, PageSize::Small4K, 1, 1, 0);
    machine.resetStats();
    EXPECT_EQ(machine.mmu(0).translationCount(), 0u);
    // Translation state survives: next access is an L1 hit.
    const MmuResult after = machine.mmu(0).translate(
        0x1234000, PageSize::Small4K, 1, 1, 1000);
    EXPECT_EQ(after.level, TlbLevel::L1);
}

TEST(Machine, DramChannelsAreSeparate)
{
    SystemConfig config = SystemConfig::table1();
    config.numCores = 1;
    Machine machine(config, "POM-TLB");
    // Main-memory traffic does not touch the die-stacked channel.
    machine.hierarchy().accessData(0, 0x5000, AccessType::Read, 0);
    EXPECT_GT(machine.mainMemory().accessCount(), 0u);
    EXPECT_EQ(machine.dieStackedMemory().accessCount(), 0u);
}

TEST(Machine, NativeModeMachine)
{
    SystemConfig config = SystemConfig::table1();
    config.numCores = 1;
    config.mode = ExecMode::Native;
    Machine machine(config, "Baseline");
    const MmuResult result = machine.mmu(0).translate(
        0x1234000, PageSize::Small4K, 1, 1, 0);
    EXPECT_TRUE(result.walked);
    EXPECT_EQ(machine.memoryMap().mode(), ExecMode::Native);
}

TEST(Machine, DumpStatsProducesOutput)
{
    SystemConfig config = SystemConfig::table1();
    config.numCores = 1;
    Machine machine(config, "POM-TLB");
    machine.mmu(0).translate(0x1234000, PageSize::Small4K, 1, 1, 0);
    std::ostringstream oss;
    machine.dumpStats(oss);
    const std::string out = oss.str();
    EXPECT_NE(out.find("ddr4-2133"), std::string::npos);
    EXPECT_NE(out.find("die-stacked"), std::string::npos);
    EXPECT_NE(out.find("mmu.0"), std::string::npos);
    EXPECT_NE(out.find("l3"), std::string::npos);
}

} // namespace
} // namespace pomtlb

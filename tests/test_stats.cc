/**
 * @file
 * Unit tests for the statistics framework.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <sstream>

#include "common/json.hh"
#include "common/stats.hh"

namespace pomtlb
{
namespace
{

TEST(Counter, IncrementAndReset)
{
    Counter counter;
    EXPECT_EQ(counter.value(), 0u);
    ++counter;
    counter += 5;
    counter.increment(2);
    EXPECT_EQ(counter.value(), 8u);
    counter.reset();
    EXPECT_EQ(counter.value(), 0u);
}

TEST(Average, MeanOfSamples)
{
    Average avg;
    EXPECT_DOUBLE_EQ(avg.mean(), 0.0);
    avg.sample(2.0);
    avg.sample(4.0);
    avg.sample(6.0);
    EXPECT_DOUBLE_EQ(avg.mean(), 4.0);
    EXPECT_EQ(avg.sampleCount(), 3u);
    EXPECT_DOUBLE_EQ(avg.sum(), 12.0);
    avg.reset();
    EXPECT_DOUBLE_EQ(avg.mean(), 0.0);
    EXPECT_EQ(avg.sampleCount(), 0u);
}

TEST(Histogram, BucketsAndOverflow)
{
    Histogram hist(10, 5); // buckets [0,10) ... [40,50), overflow
    hist.sample(0);
    hist.sample(9);
    hist.sample(10);
    hist.sample(49);
    hist.sample(50);
    hist.sample(1000);
    EXPECT_EQ(hist.bucket(0), 2u);
    EXPECT_EQ(hist.bucket(1), 1u);
    EXPECT_EQ(hist.bucket(4), 1u);
    EXPECT_EQ(hist.overflow(), 2u);
    EXPECT_EQ(hist.sampleCount(), 6u);
    EXPECT_EQ(hist.maxValue(), 1000u);
    EXPECT_NEAR(hist.mean(), (0 + 9 + 10 + 49 + 50 + 1000) / 6.0, 1e-9);

    hist.reset();
    EXPECT_EQ(hist.sampleCount(), 0u);
    EXPECT_EQ(hist.overflow(), 0u);
}

TEST(Log2Histogram, ZeroHasItsOwnBucket)
{
    Log2Histogram hist;
    hist.sample(0);
    EXPECT_EQ(Log2Histogram::bucketIndex(0), 0u);
    EXPECT_EQ(hist.bucket(0), 1u);
    EXPECT_EQ(Log2Histogram::bucketLow(0), 0u);
    EXPECT_EQ(Log2Histogram::bucketHigh(0), 0u);
    EXPECT_EQ(hist.sampleCount(), 1u);
    EXPECT_EQ(hist.maxValue(), 0u);
    EXPECT_DOUBLE_EQ(hist.mean(), 0.0);
}

TEST(Log2Histogram, PowerOfTwoBoundaries)
{
    // Bucket b >= 1 holds [2^(b-1), 2^b - 1]: a power of two opens a
    // new bucket, the value below it closes the previous one.
    EXPECT_EQ(Log2Histogram::bucketIndex(1), 1u);
    EXPECT_EQ(Log2Histogram::bucketIndex(2), 2u);
    EXPECT_EQ(Log2Histogram::bucketIndex(3), 2u);
    EXPECT_EQ(Log2Histogram::bucketIndex(4), 3u);
    EXPECT_EQ(Log2Histogram::bucketIndex(255), 8u);
    EXPECT_EQ(Log2Histogram::bucketIndex(256), 9u);
    for (std::size_t b = 1; b < 64; ++b) {
        EXPECT_EQ(Log2Histogram::bucketIndex(
                      Log2Histogram::bucketLow(b)),
                  b);
        EXPECT_EQ(Log2Histogram::bucketIndex(
                      Log2Histogram::bucketHigh(b)),
                  b);
        EXPECT_EQ(Log2Histogram::bucketHigh(b) + 1,
                  Log2Histogram::bucketLow(b + 1));
    }
}

TEST(Log2Histogram, MaxUint64HasNoOverflow)
{
    // The top bucket holds [2^63, 2^64 - 1]; there is no overflow
    // bucket to lose samples to.
    const std::uint64_t max =
        std::numeric_limits<std::uint64_t>::max();
    EXPECT_EQ(Log2Histogram::bucketIndex(max), 64u);
    EXPECT_EQ(Log2Histogram::bucketHigh(64), max);
    Log2Histogram hist;
    hist.sample(max);
    hist.sample(std::uint64_t{1} << 63);
    EXPECT_EQ(hist.bucket(64), 2u);
    EXPECT_EQ(hist.sampleCount(), 2u);
    EXPECT_EQ(hist.maxValue(), max);
}

TEST(Log2Histogram, PercentileUpperBound)
{
    Log2Histogram hist;
    EXPECT_EQ(hist.percentileUpperBound(99.0), 0u);
    for (int i = 0; i < 99; ++i)
        hist.sample(10); // bucket 4: [8, 15]
    hist.sample(1000); // bucket 10: [512, 1023]
    EXPECT_EQ(hist.percentileUpperBound(50.0), 15u);
    EXPECT_EQ(hist.percentileUpperBound(99.0), 15u);
    EXPECT_EQ(hist.percentileUpperBound(100.0), 1023u);
}

TEST(Log2Histogram, JsonShape)
{
    Log2Histogram hist;
    hist.sample(0);
    hist.sample(12);
    hist.sample(12);
    const JsonValue json = hist.toJson();
    EXPECT_EQ(json.at("kind").asString(), "log2_histogram");
    EXPECT_EQ(json.at("samples").asUint(), 3u);
    EXPECT_EQ(json.at("max").asUint(), 12u);
    const JsonValue &buckets = json.at("buckets");
    ASSERT_EQ(buckets.size(), 2u); // zero bucket + [8,15]
    EXPECT_EQ(buckets.at(std::size_t{0}).at("lo").asUint(), 0u);
    EXPECT_EQ(buckets.at(std::size_t{1}).at("lo").asUint(), 8u);
    EXPECT_EQ(buckets.at(std::size_t{1}).at("hi").asUint(), 15u);
    EXPECT_EQ(buckets.at(std::size_t{1}).at("count").asUint(), 2u);

    // Round trip through text: the document parses back identical.
    EXPECT_EQ(JsonValue::parse(json.dump()), json);
}

TEST(Log2Histogram, ResetClearsEverything)
{
    Log2Histogram hist;
    hist.sample(77);
    hist.reset();
    EXPECT_EQ(hist.sampleCount(), 0u);
    EXPECT_EQ(hist.maxValue(), 0u);
    EXPECT_EQ(hist.bucket(Log2Histogram::bucketIndex(77)), 0u);
    EXPECT_EQ(hist.toJson().at("buckets").size(), 0u);
}

TEST(StatGroup, DumpContainsRegisteredStats)
{
    Counter hits;
    Average latency;
    StatGroup group("l1");
    group.addCounter("hits", hits);
    group.addAverage("latency", latency);
    group.addDerived("two", [] { return 2.0; });

    hits += 7;
    latency.sample(3.0);

    std::ostringstream oss;
    group.dump(oss);
    const std::string out = oss.str();
    EXPECT_NE(out.find("l1.hits"), std::string::npos);
    EXPECT_NE(out.find("7"), std::string::npos);
    EXPECT_NE(out.find("l1.latency"), std::string::npos);
    EXPECT_NE(out.find("l1.two"), std::string::npos);
}

TEST(StatGroup, NestedChildren)
{
    Counter c;
    StatGroup parent("machine");
    StatGroup child("core0");
    child.addCounter("events", c);
    parent.addChild(child);
    c += 3;

    std::vector<std::pair<std::string, double>> flat;
    parent.collect(flat);
    ASSERT_EQ(flat.size(), 1u);
    EXPECT_EQ(flat[0].first, "machine.core0.events");
    EXPECT_DOUBLE_EQ(flat[0].second, 3.0);
}

TEST(StatGroup, JsonTreeMirrorsHierarchy)
{
    Counter hits;
    Log2Histogram lat;
    StatGroup parent("mmu");
    StatGroup child("l1tlb4k");
    parent.addCounter("hits", hits);
    parent.addHistogram("lat_hist", lat);
    parent.addChild(child);
    child.addCounter("hits", hits);
    hits += 2;
    lat.sample(5);

    const JsonValue json = parent.toJson();
    EXPECT_EQ(json.at("hits").asUint(), 2u);
    EXPECT_EQ(json.at("lat_hist").at("samples").asUint(), 1u);
    EXPECT_EQ(json.at("l1tlb4k").at("hits").asUint(), 2u);
    EXPECT_EQ(JsonValue::parse(json.dump()), json);
}

TEST(StatsRegistry, CollectsAndSerialisesEveryGroup)
{
    Counter a;
    Counter b;
    StatGroup first("alpha");
    StatGroup second("beta");
    first.addCounter("events", a);
    second.addCounter("events", b);
    a += 1;
    b += 2;

    StatsRegistry registry;
    registry.add(first);
    registry.add(second);
    EXPECT_EQ(registry.groupCount(), 2u);
    EXPECT_EQ(registry.topLevel()[0], &first);

    std::vector<std::pair<std::string, double>> flat;
    registry.collect(flat);
    ASSERT_EQ(flat.size(), 2u);
    EXPECT_EQ(flat[0].first, "alpha.events");
    EXPECT_EQ(flat[1].first, "beta.events");

    const JsonValue json = registry.toJson();
    EXPECT_EQ(json.at("alpha").at("events").asUint(), 1u);
    EXPECT_EQ(json.at("beta").at("events").asUint(), 2u);
}

TEST(StatsRegistry, DetailSwitchIsGlobalAndRestorable)
{
    const bool before = StatsRegistry::detail();
    StatsRegistry::setDetail(false);
    EXPECT_FALSE(StatsRegistry::detail());
    StatsRegistry::setDetail(true);
    EXPECT_TRUE(StatsRegistry::detail());
    StatsRegistry::setDetail(before);
}

TEST(Geomean, KnownValues)
{
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
    EXPECT_DOUBLE_EQ(geomean({4.0}), 4.0);
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geomean({2.0, 8.0}), 4.0, 1e-12);
}

} // namespace
} // namespace pomtlb

/**
 * @file
 * Unit tests for the statistics framework.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/stats.hh"

namespace pomtlb
{
namespace
{

TEST(Counter, IncrementAndReset)
{
    Counter counter;
    EXPECT_EQ(counter.value(), 0u);
    ++counter;
    counter += 5;
    counter.increment(2);
    EXPECT_EQ(counter.value(), 8u);
    counter.reset();
    EXPECT_EQ(counter.value(), 0u);
}

TEST(Average, MeanOfSamples)
{
    Average avg;
    EXPECT_DOUBLE_EQ(avg.mean(), 0.0);
    avg.sample(2.0);
    avg.sample(4.0);
    avg.sample(6.0);
    EXPECT_DOUBLE_EQ(avg.mean(), 4.0);
    EXPECT_EQ(avg.sampleCount(), 3u);
    EXPECT_DOUBLE_EQ(avg.sum(), 12.0);
    avg.reset();
    EXPECT_DOUBLE_EQ(avg.mean(), 0.0);
    EXPECT_EQ(avg.sampleCount(), 0u);
}

TEST(Histogram, BucketsAndOverflow)
{
    Histogram hist(10, 5); // buckets [0,10) ... [40,50), overflow
    hist.sample(0);
    hist.sample(9);
    hist.sample(10);
    hist.sample(49);
    hist.sample(50);
    hist.sample(1000);
    EXPECT_EQ(hist.bucket(0), 2u);
    EXPECT_EQ(hist.bucket(1), 1u);
    EXPECT_EQ(hist.bucket(4), 1u);
    EXPECT_EQ(hist.overflow(), 2u);
    EXPECT_EQ(hist.sampleCount(), 6u);
    EXPECT_EQ(hist.maxValue(), 1000u);
    EXPECT_NEAR(hist.mean(), (0 + 9 + 10 + 49 + 50 + 1000) / 6.0, 1e-9);

    hist.reset();
    EXPECT_EQ(hist.sampleCount(), 0u);
    EXPECT_EQ(hist.overflow(), 0u);
}

TEST(StatGroup, DumpContainsRegisteredStats)
{
    Counter hits;
    Average latency;
    StatGroup group("l1");
    group.addCounter("hits", hits);
    group.addAverage("latency", latency);
    group.addDerived("two", [] { return 2.0; });

    hits += 7;
    latency.sample(3.0);

    std::ostringstream oss;
    group.dump(oss);
    const std::string out = oss.str();
    EXPECT_NE(out.find("l1.hits"), std::string::npos);
    EXPECT_NE(out.find("7"), std::string::npos);
    EXPECT_NE(out.find("l1.latency"), std::string::npos);
    EXPECT_NE(out.find("l1.two"), std::string::npos);
}

TEST(StatGroup, NestedChildren)
{
    Counter c;
    StatGroup parent("machine");
    StatGroup child("core0");
    child.addCounter("events", c);
    parent.addChild(child);
    c += 3;

    std::vector<std::pair<std::string, double>> flat;
    parent.collect(flat);
    ASSERT_EQ(flat.size(), 1u);
    EXPECT_EQ(flat[0].first, "machine.core0.events");
    EXPECT_DOUBLE_EQ(flat[0].second, 3.0);
}

TEST(Geomean, KnownValues)
{
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
    EXPECT_DOUBLE_EQ(geomean({4.0}), 4.0);
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geomean({2.0, 8.0}), 4.0, 1e-12);
}

} // namespace
} // namespace pomtlb

/**
 * @file
 * Staleness guard for the golden fixture set.
 *
 * tests/golden/MANIFEST.json records what the checked-in fixtures
 * were generated against: the stats schema identifier, the scheme
 * registry's canonical name list, and the fixture files themselves.
 * This test diffs that record against the live build. The failure
 * mode it closes: someone registers a new translation scheme (or
 * bumps `pomtlb-stats-v1`), the parameterised golden tests quietly
 * instantiate cases whose fixtures do not exist (or compare against
 * documents of an older shape), and the mismatch surfaces as a
 * confusing "missing fixture" assert deep in test_engine_golden.cc.
 * Here it surfaces as one focused failure with the regeneration
 * command in the message.
 *
 * Regenerate (ONLY after an intentional modelling/schema/registry
 * change — never to paper over an unintentional diff):
 *
 *     ./build/tools/gen_golden_fixtures tests/golden
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.hh"
#include "sim/scheme_registry.hh"
#include "sim/stats_export.hh"

namespace pomtlb
{
namespace
{

constexpr const char *kRegenHint =
    "golden fixtures are stale — regenerate with "
    "`./build/tools/gen_golden_fixtures tests/golden` (only if the "
    "registry/schema change was intentional)";

std::string
goldenDir()
{
    return std::string(POMTLB_SOURCE_DIR) + "/tests/golden";
}

JsonValue
loadManifest()
{
    const std::string path = goldenDir() + "/MANIFEST.json";
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in) << "missing " << path << "; " << kRegenHint;
    if (!in)
        return JsonValue::object();
    std::ostringstream text;
    text << in.rdbuf();
    return JsonValue::parse(text.str());
}

std::vector<std::string>
stringList(const JsonValue &manifest, const std::string &key)
{
    std::vector<std::string> out;
    if (!manifest.has(key))
        return out;
    const JsonValue &list = manifest.at(key);
    for (std::size_t i = 0; i < list.size(); ++i)
        out.push_back(list.at(i).asString());
    return out;
}

TEST(GoldenManifest, SchemaMatchesTheLiveExport)
{
    const JsonValue manifest = loadManifest();
    ASSERT_TRUE(manifest.has("stats_schema")) << kRegenHint;
    EXPECT_EQ(manifest.at("stats_schema").asString(),
              std::string(kStatsSchemaV1))
        << "fixtures were generated for stats schema '"
        << manifest.at("stats_schema").asString()
        << "' but the build exports '" << kStatsSchemaV1 << "'; "
        << kRegenHint;
}

TEST(GoldenManifest, SchemeListMatchesTheLiveRegistry)
{
    const JsonValue manifest = loadManifest();
    const std::vector<std::string> recorded =
        stringList(manifest, "schemes");
    const std::vector<std::string> live =
        SchemeRegistry::global().names();
    EXPECT_EQ(recorded, live)
        << "fixtures cover a different scheme registry than this "
           "build registers; "
        << kRegenHint;
}

TEST(GoldenManifest, EveryRecordedFixtureExists)
{
    const JsonValue manifest = loadManifest();
    const std::vector<std::string> fixtures =
        stringList(manifest, "fixtures");
    EXPECT_FALSE(fixtures.empty()) << kRegenHint;
    for (const std::string &name : fixtures) {
        std::ifstream in(goldenDir() + "/" + name,
                         std::ios::binary);
        EXPECT_TRUE(in) << "manifest lists fixture '" << name
                        << "' but the file is missing; "
                        << kRegenHint;
    }
}

TEST(GoldenManifest, CoversTheFullGoldenMatrix)
{
    // The manifest's fixture list must span benchmarks × cores ×
    // every registered scheme — the exact matrix
    // test_engine_golden.cc instantiates.
    const JsonValue manifest = loadManifest();
    const std::vector<std::string> fixtures =
        stringList(manifest, "fixtures");
    for (const std::string bench : {"mcf", "gups"}) {
        for (const unsigned cores : {2u, 4u}) {
            for (const std::string &scheme :
                 SchemeRegistry::global().names()) {
                const std::string name =
                    "golden_" + bench + "_" + scheme + "_c" +
                    std::to_string(cores) + ".json";
                EXPECT_NE(std::find(fixtures.begin(),
                                    fixtures.end(), name),
                          fixtures.end())
                    << "no fixture for " << bench << "/" << scheme
                    << "/c" << cores << "; " << kRegenHint;
            }
        }
    }
}

} // namespace
} // namespace pomtlb

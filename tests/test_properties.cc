/**
 * @file
 * Property-based sweeps (parameterised gtest): invariants that must
 * hold across benchmarks, schemes, core counts, and random stimulus.
 */

#include <gtest/gtest.h>

#include <unordered_map>

#include "common/rng.hh"
#include "pomtlb/pom_tlb.hh"
#include "sim/experiment.hh"
#include "tlb/tlb.hh"

namespace pomtlb
{
namespace
{

// ---------------------------------------------------------------
// Property: a TLB behaves as a map — whatever was inserted last for
// a key is what a hit returns — under random stimulus.
// ---------------------------------------------------------------

class TlbPropertyTest : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(TlbPropertyTest, TlbMatchesReferenceMap)
{
    TlbConfig config;
    config.entries = 64;
    config.associativity = 4;
    SetAssocTlb tlb(config);
    Rng rng(GetParam());

    std::unordered_map<std::uint64_t, PageNum> reference;
    for (int step = 0; step < 20000; ++step) {
        const PageNum vpn = rng.below(256);
        const VmId vm = static_cast<VmId>(rng.below(3));
        const ProcessId pid = static_cast<ProcessId>(rng.below(3));
        const PageSize size = rng.chance(0.3) ? PageSize::Large2M
                                              : PageSize::Small4K;
        const std::uint64_t key =
            vpn | (static_cast<std::uint64_t>(vm) << 40) |
            (static_cast<std::uint64_t>(pid) << 48) |
            (static_cast<std::uint64_t>(size) << 56);

        if (rng.chance(0.7)) {
            const PageNum pfn = rng.next() & 0xffffff;
            tlb.insert(vpn, size, vm, pid, pfn);
            reference[key] = pfn;
        } else {
            const TlbLookupResult result =
                tlb.lookup(vpn, size, vm, pid);
            if (result.hit) {
                // A hit must return exactly the last-inserted frame.
                auto it = reference.find(key);
                ASSERT_NE(it, reference.end());
                EXPECT_EQ(result.pfn, it->second);
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TlbPropertyTest,
                         ::testing::Values(1, 2, 3, 17, 99));

// ---------------------------------------------------------------
// Property: the POM-TLB device is also a map, and its entry count
// never exceeds capacity.
// ---------------------------------------------------------------

class PomPropertyTest : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(PomPropertyTest, DeviceMatchesReferenceMap)
{
    PomTlbConfig config;
    config.capacityBytes = 64 * 1024; // small: force evictions
    config.baseAddress = Addr{1} << 40;
    DramConfig die = DramConfig::dieStacked();
    DramController dram(die);
    PomTlb pom(config, dram);
    Rng rng(GetParam());

    std::unordered_map<std::uint64_t, PageNum> reference;
    const std::uint64_t capacity_entries =
        config.capacityBytes / config.entryBytes;

    for (int step = 0; step < 20000; ++step) {
        const Addr vaddr = rng.below(1u << 30) & ~Addr{0xfff};
        const VmId vm = static_cast<VmId>(rng.below(2));
        const PageSize size = rng.chance(0.25) ? PageSize::Large2M
                                               : PageSize::Small4K;
        const std::uint64_t key =
            pageNumber(vaddr, size) |
            (static_cast<std::uint64_t>(vm) << 48) |
            (static_cast<std::uint64_t>(size) << 60);

        if (rng.chance(0.6)) {
            const PageNum pfn = rng.next() & 0xffffff;
            pom.installUntimed(vaddr, vm, 1, size, pfn);
            reference[key] = pfn;
        } else {
            const PomTlbArrayResult result =
                pom.searchSet(vaddr, vm, 1, size);
            if (result.hit) {
                auto it = reference.find(key);
                ASSERT_NE(it, reference.end());
                EXPECT_EQ(result.pfn, it->second);
            }
        }
        const std::uint64_t valid =
            pom.partition(PageSize::Small4K).validEntryCount() +
            pom.partition(PageSize::Large2M).validEntryCount();
        ASSERT_LE(valid, capacity_entries);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PomPropertyTest,
                         ::testing::Values(5, 23, 71));

// ---------------------------------------------------------------
// Property sweep: for every benchmark profile, the POM-TLB machine
// (a) never walks more than a small fraction of misses after
// pre-population and (b) resolves translations consistently with the
// memory map.
// ---------------------------------------------------------------

class BenchmarkSweepTest
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(BenchmarkSweepTest, PomWalkFractionTiny)
{
    ExperimentConfig config;
    config.system.numCores = 2;
    config.engine.refsPerCore = 3000;
    config.engine.warmupRefsPerCore = 1500;
    const SchemeRunSummary summary = runScheme(
        ProfileRegistry::byName(GetParam()), "POM-TLB",
        config);
    EXPECT_LT(summary.walkFraction, 0.05) << GetParam();
}

TEST_P(BenchmarkSweepTest, SchemePenaltiesArePositiveAndBounded)
{
    ExperimentConfig config;
    config.system.numCores = 2;
    config.engine.refsPerCore = 3000;
    config.engine.warmupRefsPerCore = 1500;
    for (const std::string scheme :
         {"Baseline", "POM-TLB", "Shared_L2", "TSB"}) {
        const SchemeRunSummary summary = runScheme(
            ProfileRegistry::byName(GetParam()), scheme, config);
        if (summary.run.totals().lastLevelMisses == 0)
            continue; // nothing to measure for this workload
        EXPECT_GT(summary.avgPenaltyPerMiss, 0.0)
            << GetParam() << "/" << scheme;
        EXPECT_LT(summary.avgPenaltyPerMiss, 5000.0)
            << GetParam() << "/" << scheme;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, BenchmarkSweepTest,
    ::testing::Values("astar", "canneal", "gups", "mcf", "lbm",
                      "streamcluster", "ccomponent", "soplex"));

// ---------------------------------------------------------------
// Property sweep over core counts: building and running the machine
// holds its invariants at 1, 2, 4 cores (32-core runs belong to the
// sensitivity bench, not the unit suite).
// ---------------------------------------------------------------

class CoreCountTest : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(CoreCountTest, MachineRunsAtAnyCoreCount)
{
    ExperimentConfig config;
    config.system.numCores = GetParam();
    config.engine.refsPerCore = 2000;
    config.engine.warmupRefsPerCore = 1000;
    const SchemeRunSummary summary = runScheme(
        ProfileRegistry::byName("gups"), "POM-TLB", config);
    EXPECT_EQ(summary.run.cores.size(), GetParam());
    EXPECT_LT(summary.walkFraction, 0.05);
}

INSTANTIATE_TEST_SUITE_P(Cores, CoreCountTest,
                         ::testing::Values(1u, 2u, 4u));

// ---------------------------------------------------------------
// Property: POM-TLB capacity sweep never breaks correctness and
// bigger is never (meaningfully) worse on walk elimination.
// ---------------------------------------------------------------

class CapacityTest : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(CapacityTest, WalkEliminationHolds)
{
    ExperimentConfig config;
    config.system.numCores = 2;
    config.system.pomTlb.capacityBytes = GetParam();
    config.engine.refsPerCore = 3000;
    config.engine.warmupRefsPerCore = 1500;
    const SchemeRunSummary summary = runScheme(
        ProfileRegistry::byName("gups"), "POM-TLB", config);
    EXPECT_LT(summary.walkFraction, 0.10);
}

INSTANTIATE_TEST_SUITE_P(
    Capacities, CapacityTest,
    ::testing::Values(std::uint64_t{8} << 20, std::uint64_t{16} << 20,
                      std::uint64_t{32} << 20));

} // namespace
} // namespace pomtlb

/**
 * @file
 * Trace-pack container tests: round trips, multi-stream packs, the
 * wrap/rewind contract, torn-tail recovery, corrupt-chunk detection,
 * a randomized-truncation fuzz loop, the converters (legacy POMT and
 * the text form), the info document, and the docs/trace-format.md
 * coverage gate.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <random>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.hh"
#include "trace/error.hh"
#include "trace/generator.hh"
#include "trace/trace_file.hh"
#include "trace/tracepack.hh"

namespace pomtlb
{
namespace
{

std::vector<TraceRecord>
syntheticRecords(std::size_t n, std::uint64_t seed)
{
    const auto &profile = ProfileRegistry::byName("mcf");
    TraceGenerator generator(profile, 0, seed);
    std::vector<TraceRecord> records(n);
    generator.fill(records.data(), n);
    return records;
}

std::string
fileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
}

void
writeBytes(const std::string &path, const std::string &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
}

class TracePackTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        path = ::testing::TempDir() + "pomtlb_tracepack_test.pack";
    }

    void TearDown() override { std::remove(path.c_str()); }

    std::string path;
};

TEST_F(TracePackTest, RoundTripSingleStream)
{
    const auto records = syntheticRecords(10000, 42);
    {
        TracePackWriter writer(path, {"core0"}, 512);
        writer.append(0, records.data(), records.size());
        writer.close();
        EXPECT_EQ(writer.recordCount(), records.size());
    }

    TracePackReader reader(path);
    EXPECT_TRUE(reader.finalized());
    EXPECT_FALSE(reader.recovered());
    EXPECT_EQ(reader.streamCount(), 1u);
    EXPECT_EQ(reader.recordCount(), records.size());
    EXPECT_EQ(reader.stream(0).name, "core0");
    EXPECT_EQ(reader.stream(0).records, records.size());
    // 10000 records at 512 per chunk: 19 full chunks + 1 partial.
    EXPECT_EQ(reader.stream(0).chunks, 20u);
    EXPECT_EQ(reader.contentHash().size(), 32u);

    std::vector<TraceRecord> got(records.size());
    EXPECT_EQ(reader.read(0, 0, got.data(), got.size()),
              records.size());
    for (std::size_t i = 0; i < records.size(); ++i) {
        ASSERT_EQ(got[i].vaddr, records[i].vaddr) << "record " << i;
        ASSERT_EQ(got[i].instGap, records[i].instGap);
        ASSERT_EQ(got[i].type, records[i].type);
        ASSERT_EQ(got[i].pageSize, records[i].pageSize);
    }
}

TEST_F(TracePackTest, SeekIsPositionIndependent)
{
    const auto records = syntheticRecords(3000, 7);
    {
        TracePackWriter writer(path, {"core0"}, 256);
        writer.append(0, records.data(), records.size());
    } // destructor finalises

    TracePackReader reader(path);
    // Reads starting mid-stream (mid-chunk and at chunk edges)
    // return exactly the records a sequential read would.
    for (std::uint64_t pos : {1u, 255u, 256u, 257u, 2999u}) {
        TraceRecord one;
        ASSERT_EQ(reader.read(0, pos, &one, 1), 1u) << pos;
        EXPECT_EQ(one.vaddr, records[pos].vaddr) << pos;
    }
    TraceRecord past;
    EXPECT_EQ(reader.read(0, 3000, &past, 1), 0u);
}

TEST_F(TracePackTest, MultiStreamPackKeepsStreamsApart)
{
    const auto first = syntheticRecords(700, 1);
    const auto second = syntheticRecords(1300, 2);
    {
        TracePackWriter writer(path, {"tenant0", "tenant1", "spare"},
                               128);
        // Interleave appends; chunks interleave in the file too.
        std::size_t a = 0, b = 0;
        while (a < first.size() || b < second.size()) {
            if (a < first.size())
                writer.append(0, &first[a++], 1);
            if (b < second.size())
                writer.append(1, &second[b++], 1);
        }
        writer.close();
    }

    TracePackReader reader(path);
    EXPECT_EQ(reader.streamCount(), 3u);
    EXPECT_EQ(reader.streamIndex("tenant1"), 1);
    EXPECT_EQ(reader.streamIndex("absent"), -1);
    EXPECT_EQ(reader.stream(0).records, first.size());
    EXPECT_EQ(reader.stream(1).records, second.size());
    EXPECT_EQ(reader.stream(2).records, 0u) << "zero-record stream";
    EXPECT_EQ(reader.stream(2).chunks, 0u);

    std::vector<TraceRecord> got(second.size());
    EXPECT_EQ(reader.read(1, 0, got.data(), got.size()),
              second.size());
    for (std::size_t i = 0; i < second.size(); ++i)
        ASSERT_EQ(got[i].vaddr, second[i].vaddr) << "record " << i;
}

TEST_F(TracePackTest, PackStreamSourceWrapsLikeFileSource)
{
    const auto records = syntheticRecords(5, 3);
    {
        TracePackWriter writer(path, {"core0"});
        writer.append(0, records.data(), records.size());
    }

    auto reader = std::make_shared<TracePackReader>(path);
    PackStreamSource source(reader, 0, /*wrap=*/true);
    EXPECT_EQ(source.recordCount(), 5u);

    std::vector<TraceRecord> block(13);
    EXPECT_EQ(source.fill(block.data(), 13), 13u);
    for (int i = 0; i < 13; ++i)
        EXPECT_EQ(block[i].vaddr, records[i % 5].vaddr)
            << "record " << i;

    source.rewind();
    TraceRecord head;
    EXPECT_EQ(source.fill(&head, 1), 1u);
    EXPECT_EQ(head.vaddr, records[0].vaddr);
}

TEST_F(TracePackTest, PackStreamSourceShortReadsWithoutWrap)
{
    const auto records = syntheticRecords(10, 4);
    {
        TracePackWriter writer(path, {"core0"});
        writer.append(0, records.data(), records.size());
    }
    auto reader = std::make_shared<TracePackReader>(path);
    PackStreamSource source(reader, 0, /*wrap=*/false);
    std::vector<TraceRecord> block(16);
    EXPECT_EQ(source.fill(block.data(), 16), 10u);
    EXPECT_EQ(source.fill(block.data(), 16), 0u);
}

TEST_F(TracePackTest, EmptyStreamNeverSpinsEvenWithWrap)
{
    {
        TracePackWriter writer(path, {"empty", "full"});
        const auto records = syntheticRecords(3, 5);
        writer.append(1, records.data(), records.size());
    }
    auto reader = std::make_shared<TracePackReader>(path);
    PackStreamSource source(reader, 0, /*wrap=*/true);
    TraceRecord block[4];
    EXPECT_EQ(source.fill(block, 4), 0u);
}

TEST_F(TracePackTest, ContentHashChangesWithOneRecord)
{
    auto records = syntheticRecords(1000, 9);
    std::string firstHash;
    {
        TracePackWriter writer(path, {"core0"}, 256);
        writer.append(0, records.data(), records.size());
        writer.close();
        firstHash = writer.contentHash();
    }
    EXPECT_EQ(TracePackReader(path).contentHash(), firstHash);
    EXPECT_EQ(tracePackContentHash(path), firstHash);

    records[500].vaddr ^= 0x1000; // one record, one page bit
    {
        TracePackWriter writer(path, {"core0"}, 256);
        writer.append(0, records.data(), records.size());
        writer.close();
        EXPECT_NE(writer.contentHash(), firstHash);
    }
    EXPECT_NE(tracePackContentHash(path), firstHash);
}

// -- corrupt and truncated input ----------------------------------

TEST_F(TracePackTest, TornTailRecoversThePrefix)
{
    const auto records = syntheticRecords(2048, 11);
    {
        TracePackWriter writer(path, {"core0"}, 256);
        writer.append(0, records.data(), records.size());
        writer.close();
    }
    const std::string intact = fileBytes(path);

    // Cut mid-way through the 5th chunk's payload: the reader must
    // keep the 4 complete chunks and drop the torn tail.
    const std::size_t chunkOnDisk = 64 + 256 * 16;
    const std::size_t dataStart = 128 + 64; // header + directory
    writeBytes(path, intact.substr(0, dataStart + 4 * chunkOnDisk +
                                          64 + 100));

    TracePackReader reader(path);
    EXPECT_TRUE(reader.recovered());
    EXPECT_FALSE(reader.finalized());
    EXPECT_EQ(reader.stream(0).name, "core0")
        << "directory survives the torn tail";
    EXPECT_EQ(reader.stream(0).records, 4u * 256u);
    std::vector<TraceRecord> got(4 * 256);
    EXPECT_EQ(reader.read(0, 0, got.data(), got.size()),
              got.size());
    for (std::size_t i = 0; i < got.size(); ++i)
        ASSERT_EQ(got[i].vaddr, records[i].vaddr) << "record " << i;
}

TEST_F(TracePackTest, BitFlippedChunkIsNamedOnFirstRead)
{
    const auto records = syntheticRecords(1024, 13);
    {
        TracePackWriter writer(path, {"core0"}, 256);
        writer.append(0, records.data(), records.size());
        writer.close();
    }
    std::string bytes = fileBytes(path);
    // Flip one payload bit in the 3rd chunk (file layout: header,
    // 64-byte directory, then 64-byte chunk headers + payloads).
    const std::size_t chunkOnDisk = 64 + 256 * 16;
    const std::size_t dataStart = 128 + 64;
    bytes[dataStart + 2 * chunkOnDisk + 64 + 10] ^= 0x01;
    writeBytes(path, bytes);

    // Checksums are lazy: open succeeds, untouched chunks read
    // fine, and the corrupt chunk throws a path-named error when
    // first touched.
    TracePackReader reader(path);
    EXPECT_TRUE(reader.finalized());
    TraceRecord one;
    EXPECT_EQ(reader.read(0, 0, &one, 1), 1u);
    try {
        std::vector<TraceRecord> all(1024);
        reader.read(0, 0, all.data(), all.size());
        FAIL() << "expected TraceError";
    } catch (const TraceError &error) {
        const std::string what = error.what();
        EXPECT_NE(what.find(path), std::string::npos) << what;
        EXPECT_NE(what.find("chunk 2"), std::string::npos) << what;
        EXPECT_NE(what.find("checksum"), std::string::npos) << what;
    }
}

TEST_F(TracePackTest, GarbageAndShortFilesAreNamedErrors)
{
    writeBytes(path, "not a pack");
    try {
        TracePackReader reader(path);
        FAIL() << "expected TraceError";
    } catch (const TraceError &error) {
        const std::string what = error.what();
        EXPECT_NE(what.find(path), std::string::npos) << what;
        EXPECT_NE(what.find("10 bytes"), std::string::npos) << what;
    }
    EXPECT_THROW(TracePackReader("/nonexistent/trace.pack"),
                 TraceError);
}

TEST_F(TracePackTest, UnsupportedVersionIsRejected)
{
    {
        TracePackWriter writer(path, {"core0"});
        const auto records = syntheticRecords(4, 1);
        writer.append(0, records.data(), records.size());
    }
    std::string bytes = fileBytes(path);
    bytes[8] = 9; // version field
    writeBytes(path, bytes);
    try {
        TracePackReader reader(path);
        FAIL() << "expected TraceError";
    } catch (const TraceError &error) {
        EXPECT_NE(std::string(error.what()).find("version 9"),
                  std::string::npos)
            << error.what();
    }
}

TEST_F(TracePackTest, FuzzRandomTruncationNeverCrashes)
{
    const auto records = syntheticRecords(1500, 17);
    {
        TracePackWriter writer(path, {"a", "b"}, 128);
        writer.append(0, records.data(), 700);
        writer.append(1, records.data() + 700, 800);
        writer.close();
    }
    const std::string intact = fileBytes(path);
    const std::string fullHash = TracePackReader(path).contentHash();

    std::mt19937_64 rng(20260808);
    std::uniform_int_distribution<std::size_t> cut(
        0, intact.size() - 1);
    for (int trial = 0; trial < 200; ++trial) {
        const std::size_t keep =
            trial < 8 ? static_cast<std::size_t>(trial)
                      : cut(rng);
        writeBytes(path, intact.substr(0, keep));
        try {
            TracePackReader reader(path);
            // Opened: every retained record must be readable and
            // match the original — recovery never invents data.
            ASSERT_LE(reader.stream(0).records, 700u);
            ASSERT_LE(reader.stream(1).records, 800u);
            std::vector<TraceRecord> got(
                std::max<std::uint64_t>(reader.recordCount(), 1));
            const std::size_t a = reader.read(
                0, 0, got.data(), reader.stream(0).records);
            ASSERT_EQ(a, reader.stream(0).records);
            for (std::size_t i = 0; i < a; ++i)
                ASSERT_EQ(got[i].vaddr, records[i].vaddr);
            const std::size_t b = reader.read(
                1, 0, got.data(), reader.stream(1).records);
            ASSERT_EQ(b, reader.stream(1).records);
            for (std::size_t i = 0; i < b; ++i)
                ASSERT_EQ(got[i].vaddr, records[700 + i].vaddr);
            if (keep < intact.size())
                ASSERT_TRUE(reader.recovered())
                    << "a truncated pack cannot claim finality";
            else
                ASSERT_EQ(reader.contentHash(), fullHash);
        } catch (const TraceError &error) {
            // Rejected: fine, as long as the error names the path.
            ASSERT_NE(std::string(error.what()).find(path),
                      std::string::npos)
                << error.what();
        }
    }
}

// -- converters ---------------------------------------------------

TEST_F(TracePackTest, LegacyScanStreamsEveryRecordOnce)
{
    const std::string legacy =
        ::testing::TempDir() + "pomtlb_tracepack_legacy.pomt";
    const auto records = syntheticRecords(2500, 19);
    {
        TraceFileWriter writer(legacy);
        for (const TraceRecord &record : records)
            writer.append(record);
    }

    std::vector<TraceRecord> seen;
    const std::uint64_t count = scanLegacyTrace(
        legacy, [&](const TraceRecord *block, std::size_t n) {
            seen.insert(seen.end(), block, block + n);
        });
    EXPECT_EQ(count, records.size());
    ASSERT_EQ(seen.size(), records.size());
    for (std::size_t i = 0; i < records.size(); ++i) {
        ASSERT_EQ(seen[i].vaddr, records[i].vaddr) << "record " << i;
        ASSERT_EQ(seen[i].instGap, records[i].instGap);
        ASSERT_EQ(seen[i].type, records[i].type);
        ASSERT_EQ(seen[i].pageSize, records[i].pageSize);
    }

    // Truncation is a named, size-reporting error up front — the
    // sink never sees a partial stream presented as complete.
    std::string bytes = fileBytes(legacy);
    bytes.resize(bytes.size() - 7);
    writeBytes(legacy, bytes);
    try {
        scanLegacyTrace(legacy,
                        [](const TraceRecord *, std::size_t) {});
        FAIL() << "expected TraceError";
    } catch (const TraceError &error) {
        const std::string what = error.what();
        EXPECT_NE(what.find(legacy), std::string::npos) << what;
        EXPECT_NE(what.find("2500 records"), std::string::npos)
            << what;
    }
    std::remove(legacy.c_str());
}

TEST_F(TracePackTest, TextFormRoundTripsAndNamesBadLines)
{
    const std::string text =
        ::testing::TempDir() + "pomtlb_tracepack_text.csv";
    {
        std::ofstream out(text);
        out << "# pomtlb-tracetext-v1\n"
            << "\n"
            << "0x1a000,3,R,4K\n"
            << "  0xdeadbeef000 , 1 , W , 2M  \n"
            << "4096,7,r,4k\n";
    }
    std::vector<TraceRecord> seen;
    EXPECT_EQ(scanTextTrace(
                  text,
                  [&](const TraceRecord *block, std::size_t n) {
                      seen.insert(seen.end(), block, block + n);
                  }),
              3u);
    ASSERT_EQ(seen.size(), 3u);
    EXPECT_EQ(seen[0].vaddr, 0x1a000u);
    EXPECT_EQ(seen[0].instGap, 3u);
    EXPECT_EQ(seen[0].type, AccessType::Read);
    EXPECT_EQ(seen[0].pageSize, PageSize::Small4K);
    EXPECT_EQ(seen[1].vaddr, 0xdeadbeef000u);
    EXPECT_EQ(seen[1].type, AccessType::Write);
    EXPECT_EQ(seen[1].pageSize, PageSize::Large2M);
    EXPECT_EQ(seen[2].vaddr, 4096u);

    // formatTextRecord emits lines scanTextTrace accepts.
    EXPECT_EQ(formatTextRecord(seen[1]), "0xdeadbeef000,1,W,2M");

    {
        std::ofstream out(text);
        out << "0x1000,1,R,4K\n0x2000,oops,R,4K\n";
    }
    try {
        scanTextTrace(text,
                      [](const TraceRecord *, std::size_t) {});
        FAIL() << "expected TraceError";
    } catch (const TraceError &error) {
        const std::string what = error.what();
        EXPECT_NE(what.find(text), std::string::npos) << what;
        EXPECT_NE(what.find("line 2"), std::string::npos) << what;
    }
    std::remove(text.c_str());
}

// -- the info document --------------------------------------------

TEST_F(TracePackTest, InfoJsonDescribesThePack)
{
    const auto records = syntheticRecords(300, 23);
    {
        TracePackWriter writer(path, {"core0", "core1"}, 128);
        writer.append(0, records.data(), 200);
        writer.append(1, records.data() + 200, 100);
    }
    const JsonValue doc = tracePackInfoJson(path);
    EXPECT_EQ(doc.at("schema").asString(), "pomtlb-tracepack-v1");
    EXPECT_EQ(doc.at("path").asString(), path);
    EXPECT_EQ(doc.at("record_bytes").asUint(), 16u);
    EXPECT_EQ(doc.at("header_bytes").asUint(), 128u);
    EXPECT_EQ(doc.at("chunk_records").asUint(), 128u);
    EXPECT_EQ(doc.at("records").asUint(), 300u);
    EXPECT_EQ(doc.at("chunks").asUint(), 3u);
    EXPECT_TRUE(doc.at("finalized").asBool());
    EXPECT_EQ(doc.at("content_hash").asString(),
              tracePackContentHash(path));
    EXPECT_GT(doc.at("file_bytes").asUint(), 0u);
    ASSERT_EQ(doc.at("streams").size(), 2u);
    EXPECT_EQ(doc.at("streams").at(0).at("name").asString(),
              "core0");
    EXPECT_EQ(doc.at("streams").at(0).at("records").asUint(), 200u);
    EXPECT_EQ(doc.at("streams").at(1).at("chunks").asUint(), 1u);
}

// -- docs/trace-format.md coverage --------------------------------

// Every key the info document can emit must appear as a backticked
// token in docs/trace-format.md, the same discipline metrics.md and
// sweep-service.md are held to.
TEST_F(TracePackTest, TraceFormatDocCoversTheInfoDocument)
{
    const std::string docPath =
        std::string(POMTLB_SOURCE_DIR) + "/docs/trace-format.md";
    std::ifstream in(docPath);
    ASSERT_TRUE(in.good()) << "cannot open " << docPath;
    std::stringstream buffer;
    buffer << in.rdbuf();
    const std::string doc = buffer.str();

    std::set<std::string> documented;
    std::size_t at = 0;
    while ((at = doc.find('`', at)) != std::string::npos) {
        const std::size_t end = doc.find('`', at + 1);
        if (end == std::string::npos)
            break;
        documented.insert(doc.substr(at + 1, end - at - 1));
        at = end + 1;
    }

    const auto records = syntheticRecords(10, 29);
    {
        TracePackWriter writer(path, {"core0"});
        writer.append(0, records.data(), records.size());
    }
    const JsonValue info = tracePackInfoJson(path);

    std::function<void(const JsonValue &)> walk =
        [&](const JsonValue &value) {
            if (value.isObject()) {
                for (const auto &member : value.members()) {
                    EXPECT_TRUE(documented.count(member.first))
                        << "info key '" << member.first
                        << "' is not documented in "
                           "docs/trace-format.md";
                    walk(member.second);
                }
            } else if (value.isArray()) {
                for (const auto &element : value.elements())
                    walk(element);
            }
        };
    walk(info);

    // The schema name and the text form's tag must be documented
    // verbatim too.
    EXPECT_TRUE(documented.count("pomtlb-tracepack-v1"));
    EXPECT_TRUE(documented.count("pomtlb-tracetext-v1"));
}

} // namespace
} // namespace pomtlb

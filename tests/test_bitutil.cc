/**
 * @file
 * Unit tests for the bit-manipulation helpers.
 */

#include <gtest/gtest.h>

#include "common/bitutil.hh"
#include "common/types.hh"

namespace pomtlb
{
namespace
{

TEST(BitUtil, IsPowerOfTwo)
{
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(2));
    EXPECT_FALSE(isPowerOfTwo(3));
    EXPECT_TRUE(isPowerOfTwo(4096));
    EXPECT_FALSE(isPowerOfTwo(4097));
    EXPECT_TRUE(isPowerOfTwo(std::uint64_t{1} << 63));
    EXPECT_FALSE(isPowerOfTwo((std::uint64_t{1} << 63) + 1));
}

TEST(BitUtil, FloorLog2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(4), 2u);
    EXPECT_EQ(floorLog2(4096), 12u);
    EXPECT_EQ(floorLog2(std::uint64_t{1} << 40), 40u);
    EXPECT_EQ(floorLog2((std::uint64_t{1} << 40) + 5), 40u);
}

TEST(BitUtil, CeilLog2)
{
    EXPECT_EQ(ceilLog2(0), 0u);
    EXPECT_EQ(ceilLog2(1), 0u);
    EXPECT_EQ(ceilLog2(2), 1u);
    EXPECT_EQ(ceilLog2(3), 2u);
    EXPECT_EQ(ceilLog2(4), 2u);
    EXPECT_EQ(ceilLog2(5), 3u);
    EXPECT_EQ(ceilLog2(4096), 12u);
}

TEST(BitUtil, ExtractBits)
{
    EXPECT_EQ(extractBits(0xdeadbeef, 0, 8), 0xefu);
    EXPECT_EQ(extractBits(0xdeadbeef, 8, 8), 0xbeu);
    EXPECT_EQ(extractBits(0xdeadbeef, 16, 16), 0xdeadu);
    EXPECT_EQ(extractBits(~std::uint64_t{0}, 0, 64), ~std::uint64_t{0});
    EXPECT_EQ(extractBits(0xff, 4, 0), 0u);
}

TEST(BitUtil, AlignDownUp)
{
    EXPECT_EQ(alignDown(4097, 4096), 4096u);
    EXPECT_EQ(alignDown(4096, 4096), 4096u);
    EXPECT_EQ(alignUp(4097, 4096), 8192u);
    EXPECT_EQ(alignUp(4096, 4096), 4096u);
    EXPECT_EQ(alignUp(0, 4096), 0u);
}

TEST(BitUtil, Mix64Distributes)
{
    // Different inputs should map to different, well-spread outputs.
    EXPECT_NE(mix64(1), mix64(2));
    EXPECT_NE(mix64(0x1000), mix64(0x2000));
    // The finalizer must not be the identity for small values.
    EXPECT_NE(mix64(1), 1u);
}

TEST(BitUtil, PageHelpers)
{
    const Addr addr = (Addr{7} << largePageShift) | 0x1234;
    EXPECT_EQ(pageNumber(addr, PageSize::Large2M), 7u);
    EXPECT_EQ(pageOffset(addr, PageSize::Large2M), 0x1234u);
    EXPECT_EQ(pageBase(addr, PageSize::Large2M),
              Addr{7} << largePageShift);

    EXPECT_EQ(pageBytes(PageSize::Small4K), 4096u);
    EXPECT_EQ(pageBytes(PageSize::Large2M), 2u * 1024 * 1024);
    EXPECT_STREQ(pageSizeName(PageSize::Small4K), "4KB");
    EXPECT_STREQ(pageSizeName(PageSize::Large2M), "2MB");
}

} // namespace
} // namespace pomtlb

/**
 * @file
 * Performance-model tests: Equations 2-5 and the overhead-fraction
 * identity used for Figure 8.
 */

#include <gtest/gtest.h>

#include "sim/perf_model.hh"

namespace pomtlb
{
namespace
{

TEST(PerfModel, EquationsTwoToFive)
{
    AdditiveModelInput input;
    input.totalInstructions = 1e9;
    input.totalCycles = 1e9; // IPC 1.0
    input.totalMisses = 1e6;
    input.totalPenalty = 169e6; // P_avg = 169 (mcf-like)

    const AdditiveModelResult result =
        PerfModel::evaluate(input, /*scheme_p_avg=*/40.0);
    EXPECT_DOUBLE_EQ(result.idealCycles, 1e9 - 169e6);       // Eq. 2
    EXPECT_DOUBLE_EQ(result.baselinePavg, 169.0);            // Eq. 3
    EXPECT_DOUBLE_EQ(result.baselineIpc, 1.0);
    EXPECT_DOUBLE_EQ(result.schemeCycles,
                     (1e9 - 169e6) + 1e6 * 40.0);            // Eq. 4
    EXPECT_NEAR(result.schemeIpc,
                1e9 / ((1e9 - 169e6) + 40e6), 1e-12);        // Eq. 5
    EXPECT_GT(result.improvementPct, 0.0);
}

TEST(PerfModel, ZeroPenaltySchemeRecoversFullOverhead)
{
    AdditiveModelInput input;
    input.totalInstructions = 1e9;
    input.totalCycles = 1e9;
    input.totalMisses = 1e6;
    input.totalPenalty = 0.1e9; // 10% overhead

    const AdditiveModelResult result =
        PerfModel::evaluate(input, 0.0);
    // Removing a 10% overhead yields 1/0.9 - 1 = 11.1% improvement.
    EXPECT_NEAR(result.improvementPct, 100.0 / 0.9 - 100.0, 1e-9);
}

TEST(PerfModel, OverheadFractionFormMatchesAbsoluteForm)
{
    AdditiveModelInput input;
    input.totalInstructions = 5e8;
    input.totalCycles = 2e9;
    input.totalMisses = 3e6;
    input.totalPenalty = 0.19 * 2e9;

    const double p_scheme = 45.0;
    const AdditiveModelResult absolute =
        PerfModel::evaluate(input, p_scheme);

    const double p_base = input.totalPenalty / input.totalMisses;
    const double ratio = p_scheme / p_base;
    const double via_fraction =
        PerfModel::improvementPct(19.0, ratio);
    EXPECT_NEAR(absolute.improvementPct, via_fraction, 1e-9);
}

TEST(PerfModel, IdentityRatioMeansNoImprovement)
{
    EXPECT_NEAR(PerfModel::improvementPct(12.0, 1.0), 0.0, 1e-12);
}

TEST(PerfModel, WorseSchemeIsNegative)
{
    EXPECT_LT(PerfModel::improvementPct(12.0, 2.0), 0.0);
}

TEST(PerfModel, ImprovementGrowsWithOverhead)
{
    const double low = PerfModel::improvementPct(2.0, 0.3);
    const double high = PerfModel::improvementPct(19.0, 0.3);
    EXPECT_GT(high, low);
}

TEST(PerfModel, ProfileOverloadUsesModeColumn)
{
    const BenchmarkProfile &mcf = ProfileRegistry::byName("mcf");
    const double virt =
        PerfModel::improvementPct(mcf, ExecMode::Virtualized, 0.3);
    const double native =
        PerfModel::improvementPct(mcf, ExecMode::Native, 0.3);
    // mcf's virtualized overhead (19.01%) exceeds native (10.32%).
    EXPECT_GT(virt, native);
}

TEST(PerfModel, PaperHeadlineMagnitude)
{
    // Sanity-check the model against the paper's headline: with the
    // measured overheads and a cost ratio around 0.2, the improvement
    // lands in the 10-20% band for high-overhead workloads.
    const BenchmarkProfile &mcf = ProfileRegistry::byName("mcf");
    const double imp =
        PerfModel::improvementPct(mcf, ExecMode::Virtualized, 0.2);
    EXPECT_GT(imp, 10.0);
    EXPECT_LT(imp, 25.0);
}

TEST(PerfModel, RejectsNonsenseInputs)
{
    AdditiveModelInput bad;
    bad.totalInstructions = 0.0;
    bad.totalCycles = 1.0;
    EXPECT_THROW(PerfModel::evaluate(bad, 1.0), std::logic_error);

    EXPECT_THROW(PerfModel::improvementPct(120.0, 0.5),
                 std::logic_error);
    EXPECT_THROW(PerfModel::improvementPct(10.0, -1.0),
                 std::logic_error);
}

} // namespace
} // namespace pomtlb

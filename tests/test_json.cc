/**
 * @file
 * Tests for the minimal JSON document model (common/json.hh):
 * construction, serialisation, parsing, and round trips.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/json.hh"

namespace pomtlb
{
namespace
{

TEST(Json, KindsAndAccessors)
{
    EXPECT_TRUE(JsonValue().isNull());
    EXPECT_TRUE(JsonValue(true).asBool());
    EXPECT_DOUBLE_EQ(JsonValue(2.5).asNumber(), 2.5);
    EXPECT_EQ(JsonValue("hi").asString(), "hi");
    EXPECT_EQ(JsonValue(std::uint64_t(42)).asUint(), 42u);

    EXPECT_THROW(JsonValue(2.5).asString(), std::logic_error);
    EXPECT_THROW(JsonValue("x").asNumber(), std::logic_error);
    EXPECT_THROW(JsonValue(2.5).asUint(), std::logic_error);
}

TEST(Json, ObjectPreservesInsertionOrder)
{
    JsonValue object = JsonValue::object();
    object.set("zeta", 1);
    object.set("alpha", 2);
    object.set("mid", 3);
    ASSERT_EQ(object.size(), 3u);
    EXPECT_EQ(object.members()[0].first, "zeta");
    EXPECT_EQ(object.members()[1].first, "alpha");
    EXPECT_EQ(object.members()[2].first, "mid");

    // Overwrite keeps position.
    object.set("alpha", 9);
    EXPECT_EQ(object.members()[1].first, "alpha");
    EXPECT_DOUBLE_EQ(object.at("alpha").asNumber(), 9.0);
    EXPECT_EQ(object.size(), 3u);
}

TEST(Json, CompactAndPrettySerialisation)
{
    JsonValue object = JsonValue::object();
    object.set("a", 1);
    JsonValue list = JsonValue::array();
    list.push("x").push(JsonValue(true)).push(JsonValue());
    object.set("b", std::move(list));

    EXPECT_EQ(object.dump(0), "{\"a\":1,\"b\":[\"x\",true,null]}");
    EXPECT_EQ(object.dump(2),
              "{\n  \"a\": 1,\n  \"b\": [\n    \"x\",\n    true,\n"
              "    null\n  ]\n}");
}

TEST(Json, StringEscapes)
{
    const JsonValue value(std::string("a\"b\\c\nd\te\x01"));
    EXPECT_EQ(value.dump(0), "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
    // And back again.
    EXPECT_EQ(JsonValue::parse(value.dump(0)).asString(),
              value.asString());
}

TEST(Json, ParsesScalarsAndNesting)
{
    const JsonValue doc = JsonValue::parse(
        " { \"n\": -1.5e2, \"t\": true, \"f\": false, "
        "\"z\": null, \"arr\": [1, 2, [3]] } ");
    EXPECT_DOUBLE_EQ(doc.at("n").asNumber(), -150.0);
    EXPECT_TRUE(doc.at("t").asBool());
    EXPECT_FALSE(doc.at("f").asBool());
    EXPECT_TRUE(doc.at("z").isNull());
    EXPECT_EQ(doc.at("arr").size(), 3u);
    EXPECT_DOUBLE_EQ(doc.at("arr").at(2).at(0).asNumber(), 3.0);
}

TEST(Json, RejectsMalformedInput)
{
    EXPECT_THROW(JsonValue::parse(""), JsonParseError);
    EXPECT_THROW(JsonValue::parse("{"), JsonParseError);
    EXPECT_THROW(JsonValue::parse("[1,]"), JsonParseError);
    EXPECT_THROW(JsonValue::parse("{1: 2}"), JsonParseError);
    EXPECT_THROW(JsonValue::parse("tru"), JsonParseError);
    EXPECT_THROW(JsonValue::parse("\"unterminated"), JsonParseError);
    EXPECT_THROW(JsonValue::parse("{} trailing"), JsonParseError);
    EXPECT_THROW(JsonValue::parse("1e"), JsonParseError);
}

TEST(Json, RejectsNonFiniteNumbers)
{
    EXPECT_THROW(
        JsonValue(std::numeric_limits<double>::quiet_NaN()).dump(),
        std::logic_error);
    EXPECT_THROW(
        JsonValue(std::numeric_limits<double>::infinity()).dump(),
        std::logic_error);
}

TEST(Json, DoubleRoundTripIsLossless)
{
    // %.17g preserves every IEEE-754 double exactly.
    const double values[] = {0.1, 1.0 / 3.0, 6.02214076e23,
                             -2.2250738585072014e-308, 123456789.5};
    for (const double v : values) {
        const JsonValue parsed =
            JsonValue::parse(JsonValue(v).dump(0));
        EXPECT_EQ(parsed.asNumber(), v);
    }
}

TEST(Json, DocumentRoundTripPreservesEquality)
{
    JsonValue doc = JsonValue::object();
    doc.set("name", "sweep");
    doc.set("count", 17);
    doc.set("enabled", true);
    JsonValue runs = JsonValue::array();
    for (int i = 0; i < 3; ++i) {
        JsonValue run = JsonValue::object();
        run.set("i", i);
        run.set("rate", 0.25 * i);
        runs.push(std::move(run));
    }
    doc.set("runs", std::move(runs));

    EXPECT_EQ(JsonValue::parse(doc.dump(2)), doc);
    EXPECT_EQ(JsonValue::parse(doc.dump(0)), doc);
}

} // namespace
} // namespace pomtlb

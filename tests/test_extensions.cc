/**
 * @file
 * Tests for the paper's extension/future-work features: TLB-aware
 * caching (Section 5.1), the unified skewed organisation
 * (footnote 1), next-set prefetching (Section 6), and TLB-shootdown
 * injection (Section 2.2).
 */

#include <gtest/gtest.h>

#include "cache/cache.hh"
#include "cache/dram_cache.hh"
#include "sim/experiment.hh"
#include "sim/machine.hh"

namespace pomtlb
{
namespace
{

// ----------------------------------------------------------------
// TLB-aware caching (Section 5.1).
// ----------------------------------------------------------------

CacheConfig
tinyCache()
{
    CacheConfig config;
    config.name = "test";
    config.sizeBytes = 4 * 1024; // 16 sets x 4 ways
    config.associativity = 4;
    config.lineBytes = 64;
    return config;
}

Addr
addrFor(std::uint64_t set, std::uint64_t tag)
{
    return (tag << (6 + 4)) | (set << 6);
}

TEST(TlbAwareCaching, DataEvictedBeforeTlbLines)
{
    SetAssocCache cache(tinyCache());
    cache.setTlbLinePolicy(TlbLinePolicy::RetainTlb);

    cache.fill(addrFor(0, 0), LineKind::TlbEntry);
    cache.fill(addrFor(0, 1), LineKind::Data);
    cache.fill(addrFor(0, 2), LineKind::Data);
    cache.fill(addrFor(0, 3), LineKind::Data);
    // The TLB line is the LRU, but a data line must go instead.
    const CacheFillResult fill =
        cache.fill(addrFor(0, 9), LineKind::Data);
    EXPECT_TRUE(fill.evicted);
    EXPECT_EQ(fill.victimKind, LineKind::Data);
    EXPECT_EQ(fill.victimAddr, addrFor(0, 1));
    EXPECT_TRUE(cache.contains(addrFor(0, 0)));
}

TEST(TlbAwareCaching, AllTlbSetFallsBackToLru)
{
    SetAssocCache cache(tinyCache());
    cache.setTlbLinePolicy(TlbLinePolicy::RetainTlb);
    for (std::uint64_t tag = 0; tag < 4; ++tag)
        cache.fill(addrFor(0, tag), LineKind::TlbEntry);
    const CacheFillResult fill =
        cache.fill(addrFor(0, 9), LineKind::TlbEntry);
    EXPECT_TRUE(fill.evicted);
    EXPECT_EQ(fill.victimKind, LineKind::TlbEntry);
    EXPECT_EQ(fill.victimAddr, addrFor(0, 0)); // LRU among TLB lines
}

TEST(TlbAwareCaching, DisabledPolicyIsPlainLru)
{
    SetAssocCache cache(tinyCache());
    ASSERT_EQ(cache.tlbLinePolicy(), TlbLinePolicy::None);
    cache.fill(addrFor(0, 0), LineKind::TlbEntry);
    for (std::uint64_t tag = 1; tag < 4; ++tag)
        cache.fill(addrFor(0, tag), LineKind::Data);
    const CacheFillResult fill =
        cache.fill(addrFor(0, 9), LineKind::Data);
    EXPECT_EQ(fill.victimKind, LineKind::TlbEntry); // plain LRU
}

TEST(TlbAwareCaching, MachineWiringAppliesPolicy)
{
    SystemConfig config = SystemConfig::table1();
    config.numCores = 1;
    config.tlbAwareCaching = true;
    Machine machine(config, "POM-TLB");
    EXPECT_EQ(machine.hierarchy().l2d(0).tlbLinePolicy(),
              TlbLinePolicy::RetainTlb);
    EXPECT_EQ(machine.hierarchy().l3d().tlbLinePolicy(),
              TlbLinePolicy::RetainTlb);
    EXPECT_EQ(machine.hierarchy().l1d(0).tlbLinePolicy(),
              TlbLinePolicy::None);
}

TEST(TlbAwareCaching, ImprovesTlbLineResidency)
{
    ExperimentConfig plain;
    plain.system.numCores = 2;
    plain.engine.refsPerCore = 20000;
    plain.engine.warmupRefsPerCore = 10000;
    ExperimentConfig aware = plain;
    aware.system.tlbAwareCaching = true;

    const SchemeRunSummary base = runScheme(
        ProfileRegistry::byName("mcf"), "POM-TLB", plain);
    const SchemeRunSummary retained = runScheme(
        ProfileRegistry::byName("mcf"), "POM-TLB", aware);
    // Retaining TLB lines must not make translation slower.
    EXPECT_LE(retained.avgPenaltyPerMiss,
              base.avgPenaltyPerMiss * 1.05);
}

// ----------------------------------------------------------------
// Unified skewed organisation (footnote 1).
// ----------------------------------------------------------------

TEST(UnifiedPom, BothSizesShareOneArray)
{
    PomTlbConfig config;
    config.unifiedOrganization = true;
    DramConfig die = DramConfig::dieStacked();
    DramController dram(die);
    PomTlb pom(config, dram);

    EXPECT_TRUE(pom.addrMap().isUnified());
    // The shared array holds the full capacity's worth of sets.
    EXPECT_EQ(pom.addrMap().numSets(PageSize::Small4K),
              config.capacityBytes / 64);
    EXPECT_EQ(pom.addrMap().numSets(PageSize::Small4K),
              pom.addrMap().numSets(PageSize::Large2M));

    pom.installUntimed(0x12345000, 1, 1, PageSize::Small4K, 0xA);
    pom.installUntimed(0x40000000, 1, 1, PageSize::Large2M, 0xB);
    EXPECT_EQ(
        pom.searchSet(0x12345000, 1, 1, PageSize::Small4K).pfn, 0xAu);
    EXPECT_EQ(
        pom.searchSet(0x40000000, 1, 1, PageSize::Large2M).pfn, 0xBu);
    // Both live in the same (small) partition object.
    EXPECT_EQ(pom.partition(PageSize::Small4K).validEntryCount(), 2u);
}

TEST(UnifiedPom, LargePagesUseSkewedIndex)
{
    PomTlbConfig config;
    config.unifiedOrganization = true;
    PomTlbAddressMap map(config);
    // Small pages keep Equation 1; large pages are skew-hashed.
    EXPECT_EQ(map.setIndex(100, 0, PageSize::Small4K), 100u);
    EXPECT_NE(map.setIndex(100, 0, PageSize::Large2M),
              map.setIndex(100, 0, PageSize::Small4K));
}

TEST(UnifiedPom, EndToEndRunWorks)
{
    ExperimentConfig config;
    config.system.numCores = 2;
    config.system.pomTlb.unifiedOrganization = true;
    config.engine.refsPerCore = 5000;
    config.engine.warmupRefsPerCore = 2500;
    const SchemeRunSummary summary = runScheme(
        ProfileRegistry::byName("mcf"), "POM-TLB", config);
    EXPECT_LT(summary.walkFraction, 0.02);
}

// ----------------------------------------------------------------
// Next-set prefetching (Section 6).
// ----------------------------------------------------------------

TEST(Prefetch, AdjacentSetLineLandsInCaches)
{
    SystemConfig config = SystemConfig::table1();
    config.numCores = 1;
    config.pomTlb.prefetchNextSet = true;
    Machine machine(config, "POM-TLB");

    const Addr vaddr = 0x12345000;
    machine.scheme().translateMiss(0, vaddr, PageSize::Small4K, 1, 1,
                                   0);
    const Addr next_set = machine.pomTlbDevice()->setAddress(
        vaddr + smallPageBytes, 1, PageSize::Small4K);
    EXPECT_TRUE(machine.hierarchy().l2d(0).contains(next_set));
}

TEST(Prefetch, HelpsSequentialMissStreams)
{
    ExperimentConfig off;
    off.system.numCores = 2;
    off.engine.refsPerCore = 20000;
    off.engine.warmupRefsPerCore = 10000;
    ExperimentConfig on = off;
    on.system.pomTlb.prefetchNextSet = true;

    // lbm's sweep misses walk pages in order: the prefetch turns its
    // POM DRAM trips into cache hits.
    const SchemeRunSummary without = runScheme(
        ProfileRegistry::byName("lbm"), "POM-TLB", off);
    const SchemeRunSummary with = runScheme(
        ProfileRegistry::byName("lbm"), "POM-TLB", on);
    EXPECT_LT(with.avgPenaltyPerMiss, without.avgPenaltyPerMiss);
}

// ----------------------------------------------------------------
// L4 die-stacked data cache (Section 2.2's alternative use).
// ----------------------------------------------------------------

TEST(L4DramCache, MissThenHitTiming)
{
    DramConfig channel_config = DramConfig::dieStacked();
    channel_config.coreFreqGhz = 4.0;
    DramController channel(channel_config);
    DramCache cache(1 << 20, 64, channel);

    const DramCacheResult miss =
        cache.access(0x1000, AccessType::Read, 0);
    EXPECT_FALSE(miss.hit);
    // A miss costs only the tag check on the L4's own path.
    EXPECT_EQ(miss.latency, cache.tagLatency());

    const DramCacheResult hit =
        cache.access(0x1000, AccessType::Read, 10000);
    EXPECT_TRUE(hit.hit);
    // A hit pays a die-stacked DRAM burst on top of the tag check.
    EXPECT_GT(hit.latency, cache.tagLatency());
    EXPECT_DOUBLE_EQ(cache.hitRate(), 0.5);
}

TEST(L4DramCache, MachineWiring)
{
    SystemConfig config = SystemConfig::table1();
    config.numCores = 1;
    config.dieStackedL4Cache = true;
    Machine machine(config, "Baseline");
    ASSERT_NE(machine.hierarchy().l4Cache(), nullptr);

    // 32 lines that all collide in one 16-way L3 set (stride = L3
    // set count x line size) but spread over two 16-way L4 sets:
    // the L3 thrashes every round while the L4 holds them all, so
    // later rounds hit in the L4.
    const Addr stride = config.l3.numSets() * 64;
    for (int round = 0; round < 3; ++round) {
        for (unsigned k = 0; k < 32; ++k) {
            machine.hierarchy().accessData(
                0, Addr{k} * stride, AccessType::Read,
                static_cast<Cycles>(round) * 100000 + k * 100);
        }
    }
    EXPECT_GT(machine.hierarchy().l4Cache()->hits(), 0u);
}

TEST(L4DramCache, AbsentWithoutFlag)
{
    SystemConfig config = SystemConfig::table1();
    config.numCores = 1;
    Machine machine(config, "Baseline");
    EXPECT_EQ(machine.hierarchy().l4Cache(), nullptr);
}

TEST(L4DramCache, ReducesBaselineCycles)
{
    // On a data-heavy workload the L4 cache must not hurt.
    ExperimentConfig off;
    off.system.numCores = 2;
    off.engine.refsPerCore = 10000;
    off.engine.warmupRefsPerCore = 5000;
    ExperimentConfig on = off;
    on.system.dieStackedL4Cache = true;

    const SchemeRunSummary without = runScheme(
        ProfileRegistry::byName("canneal"), "Baseline",
        off);
    const SchemeRunSummary with = runScheme(
        ProfileRegistry::byName("canneal"), "Baseline",
        on);
    double cycles_without = 0.0;
    double cycles_with = 0.0;
    for (const auto &core : without.run.cores)
        cycles_without += static_cast<double>(core.cycles);
    for (const auto &core : with.run.cores)
        cycles_with += static_cast<double>(core.cycles);
    EXPECT_LT(cycles_with, cycles_without * 1.02);
}

// ----------------------------------------------------------------
// Shootdown injection (Section 2.2).
// ----------------------------------------------------------------

TEST(Shootdown, PageShootdownClearsEveryStructure)
{
    SystemConfig config = SystemConfig::table1();
    config.numCores = 2;
    Machine machine(config, "POM-TLB");
    const Addr vaddr = 0x77777000;
    machine.mmu(0).translate(vaddr, PageSize::Small4K, 1, 1, 0);
    machine.mmu(1).translate(vaddr, PageSize::Small4K, 1, 1, 100);

    machine.shootdownPage(vaddr, PageSize::Small4K, 1, 1);

    // Both cores' next access misses all TLB levels and walks.
    const MmuResult core0 = machine.mmu(0).translate(
        vaddr, PageSize::Small4K, 1, 1, 1000);
    EXPECT_EQ(core0.level, TlbLevel::Miss);
    EXPECT_TRUE(core0.walked);
}

TEST(Shootdown, InjectionCountsAndCharges)
{
    ExperimentConfig config;
    config.system.numCores = 2;
    config.engine.refsPerCore = 10000;
    config.engine.warmupRefsPerCore = 5000;
    config.engine.shootdownIntervalRefs = 1000;

    Machine machine(config.system, "POM-TLB");
    SimulationEngine engine(
        machine, ProfileRegistry::byName("mcf"), config.engine);
    const RunResult result = engine.run();
    // 20000 measured refs at one shootdown per 1000.
    EXPECT_NEAR(static_cast<double>(result.totals().shootdowns), 20.0,
                2.0);
    // Shot-down pages must be re-fetched: a few walks reappear.
    EXPECT_GT(result.totals().pageWalks, 0u);
}

TEST(Shootdown, RareShootdownsBarelyAffectPom)
{
    // Section 2.2's argument: shootdowns are rare, so the POM-TLB's
    // participation costs little.
    ExperimentConfig quiet;
    quiet.system.numCores = 2;
    quiet.engine.refsPerCore = 20000;
    quiet.engine.warmupRefsPerCore = 10000;
    ExperimentConfig noisy = quiet;
    noisy.engine.shootdownIntervalRefs = 10000; // rare

    const SchemeRunSummary base = runScheme(
        ProfileRegistry::byName("mcf"), "POM-TLB", quiet);
    const SchemeRunSummary shot = runScheme(
        ProfileRegistry::byName("mcf"), "POM-TLB", noisy);
    EXPECT_LT(shot.avgPenaltyPerMiss,
              base.avgPenaltyPerMiss * 1.15);
}

} // namespace
} // namespace pomtlb

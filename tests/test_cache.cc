/**
 * @file
 * Set-associative cache tests: hit/miss behaviour, eviction,
 * dirty-line writeback accounting, and TLB-line occupancy tracking.
 */

#include <gtest/gtest.h>

#include "cache/cache.hh"

namespace pomtlb
{
namespace
{

CacheConfig
tinyCache()
{
    CacheConfig config;
    config.name = "test";
    config.sizeBytes = 4 * 1024; // 16 sets x 4 ways x 64 B
    config.associativity = 4;
    config.lineBytes = 64;
    config.accessLatency = 3;
    return config;
}

/** Address mapping to a given (set, tag) in the tiny cache. */
Addr
addrFor(std::uint64_t set, std::uint64_t tag)
{
    return (tag << (6 + 4)) | (set << 6);
}

TEST(Cache, MissThenHit)
{
    SetAssocCache cache(tinyCache());
    const Addr addr = addrFor(3, 7);
    EXPECT_FALSE(
        cache.lookup(addr, AccessType::Read, LineKind::Data).hit);
    cache.fill(addr, LineKind::Data);
    EXPECT_TRUE(
        cache.lookup(addr, AccessType::Read, LineKind::Data).hit);
    EXPECT_TRUE(cache.contains(addr));
}

TEST(Cache, SameLineDifferentOffsets)
{
    SetAssocCache cache(tinyCache());
    cache.fill(addrFor(1, 1), LineKind::Data);
    EXPECT_TRUE(cache.lookup(addrFor(1, 1) + 63, AccessType::Read,
                             LineKind::Data)
                    .hit);
}

TEST(Cache, EvictionOnFullSet)
{
    SetAssocCache cache(tinyCache());
    for (std::uint64_t tag = 0; tag < 4; ++tag)
        cache.fill(addrFor(0, tag), LineKind::Data);
    // A fifth line in the same set must evict the LRU (tag 0).
    const CacheFillResult fill =
        cache.fill(addrFor(0, 100), LineKind::Data);
    EXPECT_TRUE(fill.evicted);
    EXPECT_EQ(fill.victimAddr, addrFor(0, 0));
    EXPECT_FALSE(cache.contains(addrFor(0, 0)));
    EXPECT_TRUE(cache.contains(addrFor(0, 100)));
}

TEST(Cache, WriteMarksDirtyAndWritebackCounts)
{
    SetAssocCache cache(tinyCache());
    cache.fill(addrFor(0, 0), LineKind::Data);
    cache.lookup(addrFor(0, 0), AccessType::Write, LineKind::Data);
    for (std::uint64_t tag = 1; tag <= 4; ++tag)
        cache.fill(addrFor(0, tag), LineKind::Data);
    // The dirty line was evicted: one writeback.
    EXPECT_EQ(cache.writebackCount(), 1u);
}

TEST(Cache, DirtyFillEvictionReportsDirtyVictim)
{
    SetAssocCache cache(tinyCache());
    cache.fill(addrFor(0, 0), LineKind::Data, /*dirty=*/true);
    for (std::uint64_t tag = 1; tag < 4; ++tag)
        cache.fill(addrFor(0, tag), LineKind::Data);
    const CacheFillResult fill =
        cache.fill(addrFor(0, 9), LineKind::Data);
    EXPECT_TRUE(fill.evicted);
    EXPECT_TRUE(fill.victimDirty);
}

TEST(Cache, TlbLineOccupancyTracked)
{
    SetAssocCache cache(tinyCache());
    EXPECT_EQ(cache.tlbLineCount(), 0u);
    cache.fill(addrFor(0, 0), LineKind::TlbEntry);
    cache.fill(addrFor(1, 0), LineKind::TlbEntry);
    cache.fill(addrFor(2, 0), LineKind::Data);
    EXPECT_EQ(cache.tlbLineCount(), 2u);
    EXPECT_EQ(cache.validLineCount(), 3u);

    cache.invalidate(addrFor(0, 0));
    EXPECT_EQ(cache.tlbLineCount(), 1u);
    EXPECT_EQ(cache.validLineCount(), 2u);
}

TEST(Cache, TlbVictimReported)
{
    SetAssocCache cache(tinyCache());
    cache.fill(addrFor(0, 0), LineKind::TlbEntry);
    for (std::uint64_t tag = 1; tag < 4; ++tag)
        cache.fill(addrFor(0, tag), LineKind::Data);
    const CacheFillResult fill =
        cache.fill(addrFor(0, 50), LineKind::Data);
    EXPECT_TRUE(fill.evicted);
    EXPECT_EQ(fill.victimKind, LineKind::TlbEntry);
    EXPECT_EQ(cache.tlbLineCount(), 0u);
}

TEST(Cache, RefillInPlaceDoesNotEvict)
{
    SetAssocCache cache(tinyCache());
    cache.fill(addrFor(0, 0), LineKind::Data);
    const CacheFillResult fill =
        cache.fill(addrFor(0, 0), LineKind::Data, /*dirty=*/true);
    EXPECT_FALSE(fill.evicted);
    EXPECT_EQ(cache.validLineCount(), 1u);
}

TEST(Cache, KindChangeOnRefillUpdatesOccupancy)
{
    SetAssocCache cache(tinyCache());
    cache.fill(addrFor(0, 0), LineKind::Data);
    cache.fill(addrFor(0, 0), LineKind::TlbEntry);
    EXPECT_EQ(cache.tlbLineCount(), 1u);
    cache.fill(addrFor(0, 0), LineKind::Data);
    EXPECT_EQ(cache.tlbLineCount(), 0u);
}

TEST(Cache, HitRatesByKind)
{
    SetAssocCache cache(tinyCache());
    cache.fill(addrFor(0, 0), LineKind::Data);
    cache.lookup(addrFor(0, 0), AccessType::Read, LineKind::Data);
    cache.lookup(addrFor(1, 0), AccessType::Read, LineKind::Data);
    cache.lookup(addrFor(2, 0), AccessType::Read, LineKind::TlbEntry);
    EXPECT_DOUBLE_EQ(cache.hitRate(LineKind::Data), 0.5);
    EXPECT_DOUBLE_EQ(cache.hitRate(LineKind::TlbEntry), 0.0);
    EXPECT_NEAR(cache.hitRate(), 1.0 / 3.0, 1e-12);
}

TEST(Cache, FlushDropsEverything)
{
    SetAssocCache cache(tinyCache());
    cache.fill(addrFor(0, 0), LineKind::Data);
    cache.fill(addrFor(1, 0), LineKind::TlbEntry);
    EXPECT_EQ(cache.flush(), 2u);
    EXPECT_EQ(cache.validLineCount(), 0u);
    EXPECT_EQ(cache.tlbLineCount(), 0u);
    EXPECT_FALSE(cache.contains(addrFor(0, 0)));
}

TEST(Cache, LruOrderRespectsLookups)
{
    SetAssocCache cache(tinyCache());
    for (std::uint64_t tag = 0; tag < 4; ++tag)
        cache.fill(addrFor(0, tag), LineKind::Data);
    // Touch tag 0 so tag 1 becomes LRU.
    cache.lookup(addrFor(0, 0), AccessType::Read, LineKind::Data);
    const CacheFillResult fill =
        cache.fill(addrFor(0, 77), LineKind::Data);
    EXPECT_EQ(fill.victimAddr, addrFor(0, 1));
}

} // namespace
} // namespace pomtlb

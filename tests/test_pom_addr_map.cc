/**
 * @file
 * POM-TLB address-map tests: Equation 1 set indexing, partition
 * layout, and the addressable range.
 */

#include <gtest/gtest.h>

#include "pomtlb/addr_map.hh"

namespace pomtlb
{
namespace
{

TEST(PomAddrMap, PartitionGeometry)
{
    PomTlbConfig config;
    PomTlbAddressMap map(config);
    // 8 MB per partition at 64 B per set.
    EXPECT_EQ(map.numSets(PageSize::Small4K),
              config.smallPartitionBytes() / 64);
    EXPECT_EQ(map.numSets(PageSize::Large2M),
              config.largePartitionBytes() / 64);
    EXPECT_EQ(map.associativity(), 4u);
}

TEST(PomAddrMap, SetAddressesAre64ByteAligned)
{
    PomTlbConfig config;
    PomTlbAddressMap map(config);
    for (PageNum vpn = 0; vpn < 1000; ++vpn) {
        EXPECT_EQ(map.setAddress(vpn, 1, PageSize::Small4K) % 64, 0u);
        EXPECT_EQ(map.setAddress(vpn, 1, PageSize::Large2M) % 64, 0u);
    }
}

TEST(PomAddrMap, ConsecutiveVpnsMapToConsecutiveSets)
{
    // The spatial-locality property behind the row-buffer hits of
    // Section 4.4: adjacent pages get adjacent 64 B set lines.
    PomTlbConfig config;
    PomTlbAddressMap map(config);
    const Addr a = map.setAddress(100, 0, PageSize::Small4K);
    const Addr b = map.setAddress(101, 0, PageSize::Small4K);
    EXPECT_EQ(b - a, 64u);
}

TEST(PomAddrMap, VmIdSpreadsSets)
{
    PomTlbConfig config;
    PomTlbAddressMap map(config);
    // Equation 1 XORs the VM id into the set index.
    EXPECT_NE(map.setIndex(100, 1, PageSize::Small4K),
              map.setIndex(100, 2, PageSize::Small4K));
    EXPECT_EQ(map.setIndex(100, 1, PageSize::Small4K),
              (100 ^ 1) % map.numSets(PageSize::Small4K));
}

TEST(PomAddrMap, PartitionsAreDisjoint)
{
    PomTlbConfig config;
    PomTlbAddressMap map(config);
    const Addr small_end =
        map.partitionBase(PageSize::Small4K) +
        map.numSets(PageSize::Small4K) * 64;
    EXPECT_EQ(small_end, map.partitionBase(PageSize::Large2M));
    EXPECT_EQ(map.rangeEnd(),
              config.baseAddress + config.capacityBytes);
}

TEST(PomAddrMap, PartitionOfClassifiesAddresses)
{
    PomTlbConfig config;
    PomTlbAddressMap map(config);
    EXPECT_EQ(map.partitionOf(config.baseAddress),
              PageSize::Small4K);
    EXPECT_EQ(map.partitionOf(map.partitionBase(PageSize::Large2M)),
              PageSize::Large2M);
    EXPECT_EQ(map.partitionOf(config.baseAddress - 1), std::nullopt);
    EXPECT_EQ(map.partitionOf(map.rangeEnd()), std::nullopt);
}

TEST(PomAddrMap, SetIndexWrapsAtPartitionSize)
{
    PomTlbConfig config;
    PomTlbAddressMap map(config);
    const std::uint64_t sets = map.numSets(PageSize::Small4K);
    EXPECT_EQ(map.setIndex(sets + 5, 0, PageSize::Small4K), 5u);
}

TEST(PomAddrMap, SetAddressRoundTripsThroughPartitionOf)
{
    PomTlbConfig config;
    PomTlbAddressMap map(config);
    for (PageNum vpn = 0; vpn < 10000; vpn += 97) {
        const Addr small = map.setAddress(vpn, 3, PageSize::Small4K);
        const Addr large = map.setAddress(vpn, 3, PageSize::Large2M);
        EXPECT_EQ(map.partitionOf(small), PageSize::Small4K);
        EXPECT_EQ(map.partitionOf(large), PageSize::Large2M);
    }
}

} // namespace
} // namespace pomtlb

/**
 * @file
 * Randomized determinism stress for the sharded engine.
 *
 * The battery in test_engine_sharded.cc pins a handful of
 * configurations; this test walks the configuration space at random
 * — scheme, benchmark, core count, worker-thread count, epoch
 * length, run length, pre-population on/off — and asserts that each
 * sharded run's totals and per-core stats equal a fresh serial run
 * of the same configuration. Epoch lengths are drawn log-uniformly
 * down to 16 cycles, far below anything sensible, precisely because
 * pathological barrier cadences are where an ordering bug would
 * hide.
 *
 * The seed is fixed (the sequence of sampled configurations is part
 * of the test's identity; a failure message names the iteration so
 * it can be replayed in isolation). POMTLB_SHARD_FUZZ_ITERS
 * overrides the iteration count — CI's TSan job runs a reduced
 * count, a soak run can raise it.
 */

#include <cstdlib>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/engine.hh"
#include "sim/machine.hh"
#include "sim/scheme_registry.hh"
#include "trace/profile.hh"

namespace pomtlb
{
namespace
{

constexpr unsigned kDefaultIters = 200;
constexpr std::uint64_t kFuzzSeed = 0x706f6d746c620aULL;

unsigned
iterationCount()
{
    const char *env = std::getenv("POMTLB_SHARD_FUZZ_ITERS");
    if (env == nullptr || *env == '\0')
        return kDefaultIters;
    const long parsed = std::strtol(env, nullptr, 10);
    return parsed > 0 ? static_cast<unsigned>(parsed)
                      : kDefaultIters;
}

RunResult
runOnce(const std::string &scheme, const std::string &benchmark,
        unsigned cores, const EngineConfig &config)
{
    SystemConfig system = SystemConfig::table1();
    system.numCores = cores;
    Machine machine(system, scheme);
    SimulationEngine engine(
        machine, ProfileRegistry::byName(benchmark), config);
    return engine.run();
}

void
expectEqualResults(const RunResult &serial, const RunResult &sharded,
                   const std::string &what)
{
    const RunTotals &a = serial.totals();
    const RunTotals &b = sharded.totals();
    EXPECT_EQ(a.refs, b.refs) << what;
    EXPECT_EQ(a.instructions, b.instructions) << what;
    EXPECT_EQ(a.cycles, b.cycles) << what;
    EXPECT_EQ(a.translationCycles, b.translationCycles) << what;
    EXPECT_EQ(a.l1TlbHits, b.l1TlbHits) << what;
    EXPECT_EQ(a.l2TlbHits, b.l2TlbHits) << what;
    EXPECT_EQ(a.lastLevelMisses, b.lastLevelMisses) << what;
    EXPECT_EQ(a.pageWalks, b.pageWalks) << what;
    EXPECT_EQ(a.shootdowns, b.shootdowns) << what;
    EXPECT_EQ(a.avgPenaltyPerMiss, b.avgPenaltyPerMiss) << what;
    EXPECT_EQ(a.walkFraction, b.walkFraction) << what;

    ASSERT_EQ(serial.cores.size(), sharded.cores.size()) << what;
    for (std::size_t i = 0; i < serial.cores.size(); ++i) {
        const CoreRunStats &x = serial.cores[i];
        const CoreRunStats &y = sharded.cores[i];
        EXPECT_EQ(x.refs, y.refs) << what << " core " << i;
        EXPECT_EQ(x.cycles, y.cycles) << what << " core " << i;
        EXPECT_EQ(x.instructions, y.instructions)
            << what << " core " << i;
        EXPECT_EQ(x.translationCycles, y.translationCycles)
            << what << " core " << i;
        EXPECT_EQ(x.l1TlbHits, y.l1TlbHits)
            << what << " core " << i;
        EXPECT_EQ(x.l2TlbHits, y.l2TlbHits)
            << what << " core " << i;
        EXPECT_EQ(x.lastLevelTlbMisses, y.lastLevelTlbMisses)
            << what << " core " << i;
        EXPECT_EQ(x.avgPenaltyPerMiss, y.avgPenaltyPerMiss)
            << what << " core " << i;
        EXPECT_EQ(x.pageWalks, y.pageWalks)
            << what << " core " << i;
        EXPECT_EQ(x.shootdowns, y.shootdowns)
            << what << " core " << i;
    }
}

TEST(ShardStress, RandomConfigurationsMatchSerialExactly)
{
    const std::vector<std::string> schemes =
        SchemeRegistry::global().names();
    const std::vector<std::string> benchmarks = {"mcf", "gups"};
    std::mt19937_64 rng(kFuzzSeed);
    const unsigned iters = iterationCount();

    for (unsigned iter = 0; iter < iters; ++iter) {
        const std::string &scheme =
            schemes[rng() % schemes.size()];
        const std::string &benchmark =
            benchmarks[rng() % benchmarks.size()];
        // Power-of-two core counts only: schemes that size shared
        // structures per core (Shared_L2) require power-of-two sets.
        const unsigned cores = 1u << (rng() % 3);
        const unsigned threads = 1 + rng() % 8;
        // Log-uniform epoch in [16, 16384] cycles.
        const Cycles epoch = Cycles(16) << (rng() % 11);

        EngineConfig serial;
        serial.refsPerCore = 200 + rng() % 1200;
        serial.warmupRefsPerCore = rng() % 600;
        serial.seed = rng();
        serial.prepopulate = (rng() % 4) != 0;
        if (rng() % 4 == 0) {
            serial.shootdownIntervalRefs = 150 + rng() % 500;
        }

        EngineConfig sharded = serial;
        sharded.runThreads = threads;
        sharded.epochCycles = epoch;

        const std::string what =
            "iteration " + std::to_string(iter) + ": " + scheme +
            "/" + benchmark + " cores=" + std::to_string(cores) +
            " threads=" + std::to_string(threads) + " epoch=" +
            std::to_string(epoch) +
            " prepop=" + (serial.prepopulate ? "1" : "0");

        expectEqualResults(
            runOnce(scheme, benchmark, cores, serial),
            runOnce(scheme, benchmark, cores, sharded), what);
        if (HasFailure())
            FAIL() << "stopping at first divergent " << what;
    }
}

} // namespace
} // namespace pomtlb

/**
 * @file
 * Baseline scheme tests: the nested-walk MMU, Shared_L2, and TSB.
 */

#include <gtest/gtest.h>

#include "baseline/nested_scheme.hh"
#include "baseline/shared_l2_scheme.hh"
#include "baseline/tsb_scheme.hh"
#include "sim/machine.hh"

namespace pomtlb
{
namespace
{

SystemConfig
twoCoreConfig()
{
    SystemConfig config = SystemConfig::table1();
    config.numCores = 2;
    return config;
}

TEST(NestedScheme, AlwaysWalks)
{
    Machine machine(twoCoreConfig(), "Baseline");
    auto &scheme = machine.scheme();
    const SchemeResult a =
        scheme.translateMiss(0, 0x1234000, PageSize::Small4K, 1, 1, 0);
    const SchemeResult b = scheme.translateMiss(
        0, 0x1234000, PageSize::Small4K, 1, 1, 1000);
    EXPECT_TRUE(a.walked);
    EXPECT_TRUE(b.walked);
    EXPECT_EQ(a.pfn, b.pfn);
    // Warm structures make the second walk cheaper.
    EXPECT_LT(b.cycles, a.cycles);
}

TEST(NestedScheme, StatsTrackWalks)
{
    Machine machine(twoCoreConfig(), "Baseline");
    auto *scheme =
        dynamic_cast<NestedWalkScheme *>(&machine.scheme());
    ASSERT_NE(scheme, nullptr);
    scheme->translateMiss(0, 0x1000000, PageSize::Small4K, 1, 1, 0);
    scheme->translateMiss(0, 0x2000000, PageSize::Small4K, 1, 1, 0);
    EXPECT_EQ(scheme->walkCount(), 2u);
    EXPECT_GT(scheme->avgWalkCycles(), 0.0);
    EXPECT_GT(scheme->avgWalkRefs(), 0.0);
    scheme->resetStats();
    EXPECT_EQ(scheme->walkCount(), 0u);
}

TEST(SharedL2, ProvidesSecondLevel)
{
    Machine machine(twoCoreConfig(), "Shared_L2");
    EXPECT_TRUE(machine.scheme().providesSecondLevel());
    // Cores therefore have no private L2 TLB.
    EXPECT_FALSE(machine.mmu(0).tlbs().hasPrivateL2());
}

TEST(SharedL2, SharedCapacityScalesWithCores)
{
    Machine machine(twoCoreConfig(), "Shared_L2");
    auto *scheme =
        dynamic_cast<SharedL2Scheme *>(&machine.scheme());
    ASSERT_NE(scheme, nullptr);
    EXPECT_EQ(scheme->tlb().config().entries, 2u * 1536);
}

TEST(SharedL2, MissWalksThenHits)
{
    Machine machine(twoCoreConfig(), "Shared_L2");
    auto *scheme =
        dynamic_cast<SharedL2Scheme *>(&machine.scheme());
    ASSERT_NE(scheme, nullptr);
    const SchemeResult miss = scheme->translateMiss(
        0, 0x1234000, PageSize::Small4K, 1, 1, 0);
    EXPECT_TRUE(miss.walked);
    const SchemeResult hit = scheme->translateMiss(
        0, 0x1234000, PageSize::Small4K, 1, 1, 1000);
    EXPECT_FALSE(hit.walked);
    // A shared-TLB hit costs exactly the shared access latency.
    EXPECT_EQ(hit.cycles, Cycles{24});
}

TEST(SharedL2, SharedAcrossCores)
{
    Machine machine(twoCoreConfig(), "Shared_L2");
    auto *scheme =
        dynamic_cast<SharedL2Scheme *>(&machine.scheme());
    ASSERT_NE(scheme, nullptr);
    scheme->translateMiss(0, 0x1234000, PageSize::Small4K, 1, 1, 0);
    // Same page from the other core: inter-core sharing hits.
    const SchemeResult other = scheme->translateMiss(
        1, 0x1234000, PageSize::Small4K, 1, 1, 1000);
    EXPECT_FALSE(other.walked);
    EXPECT_EQ(scheme->walkCount(), 1u);
}

TEST(Tsb, TrapCostAlwaysPaid)
{
    SystemConfig config = twoCoreConfig();
    Machine machine(config, "TSB");
    auto &scheme = machine.scheme();
    const SchemeResult hit_path = scheme.translateMiss(
        0, 0x1234000, PageSize::Small4K, 1, 1, 0);
    EXPECT_GE(hit_path.cycles, config.tsb.trapCycles);
}

TEST(Tsb, MissWalksThenHits)
{
    Machine machine(twoCoreConfig(), "TSB");
    auto *scheme = dynamic_cast<TsbScheme *>(&machine.scheme());
    ASSERT_NE(scheme, nullptr);
    const SchemeResult miss = scheme->translateMiss(
        0, 0x1234000, PageSize::Small4K, 1, 1, 0);
    EXPECT_TRUE(miss.walked);
    const SchemeResult hit = scheme->translateMiss(
        0, 0x1234000, PageSize::Small4K, 1, 1, 10000);
    EXPECT_FALSE(hit.walked);
    EXPECT_EQ(hit.pfn, miss.pfn);
    EXPECT_EQ(scheme->walkCount(), 1u);
    EXPECT_GT(scheme->tsbHitRate(), 0.0);
}

TEST(Tsb, DirectMappedConflictEvicts)
{
    Machine machine(twoCoreConfig(), "TSB");
    auto *scheme = dynamic_cast<TsbScheme *>(&machine.scheme());
    ASSERT_NE(scheme, nullptr);
    const std::uint64_t stage_entries =
        machine.config().tsb.capacityBytes /
        machine.config().tsb.entryBytes /
        machine.config().tsb.accessesPerTranslation;
    const Addr vaddr = 0x1234000;
    // A VPN exactly stage_entries apart collides in the
    // direct-mapped buffer (same vm, same pid).
    const Addr collider = vaddr + (stage_entries << smallPageShift);
    scheme->translateMiss(0, vaddr, PageSize::Small4K, 1, 1, 0);
    scheme->translateMiss(0, collider, PageSize::Small4K, 1, 1, 100);
    const SchemeResult again = scheme->translateMiss(
        0, vaddr, PageSize::Small4K, 1, 1, 20000);
    EXPECT_TRUE(again.walked);
}

TEST(Tsb, PrewarmFillsAllStages)
{
    Machine machine(twoCoreConfig(), "TSB");
    auto *scheme = dynamic_cast<TsbScheme *>(&machine.scheme());
    ASSERT_NE(scheme, nullptr);
    const Addr vaddr = 0x9999000;
    const TranslationInfo info = machine.memoryMap().ensureMapped(
        1, 1, vaddr, PageSize::Small4K);
    scheme->prewarm(0, vaddr, PageSize::Small4K, 1, 1,
                    info.hpa >> smallPageShift);
    const SchemeResult hit = scheme->translateMiss(
        0, vaddr, PageSize::Small4K, 1, 1, 0);
    EXPECT_FALSE(hit.walked);
}

TEST(Tsb, VmShootdown)
{
    Machine machine(twoCoreConfig(), "TSB");
    auto *scheme = dynamic_cast<TsbScheme *>(&machine.scheme());
    ASSERT_NE(scheme, nullptr);
    scheme->translateMiss(0, 0x1234000, PageSize::Small4K, 1, 1, 0);
    scheme->invalidateVm(1);
    const SchemeResult after = scheme->translateMiss(
        0, 0x1234000, PageSize::Small4K, 1, 1, 10000);
    EXPECT_TRUE(after.walked);
}

} // namespace
} // namespace pomtlb

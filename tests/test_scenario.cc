/**
 * @file
 * Scenario-engine tests: the single-tenant golden equivalence (a
 * degenerate scenario reproduces the classic engine byte-for-byte),
 * spec resolution (generator expansion, churn schedules, overcommit,
 * VM/ASID auto-binding), lifecycle events (arrivals, departures,
 * migrations, storms), per-tenant QoS accounting, and the
 * `pomtlb-scenario-v1` export.
 */

#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/engine.hh"
#include "sim/machine.hh"
#include "sim/scenario.hh"
#include "sim/stats_export.hh"

namespace pomtlb
{
namespace
{

SystemConfig
smallSystem(unsigned cores = 2)
{
    SystemConfig config = SystemConfig::table1();
    config.numCores = cores;
    return config;
}

EngineConfig
quickEngine()
{
    EngineConfig config;
    config.refsPerCore = 2000;
    config.warmupRefsPerCore = 1000;
    return config;
}

/** A one-tenant scenario whose vCPUs cover every core. */
ScenarioSpec
degenerateSpec(const std::string &benchmark, unsigned cores = 2)
{
    ScenarioSpec spec;
    spec.name = "degenerate";
    spec.scheme = "POM-TLB";
    spec.system = smallSystem(cores);
    spec.engine = quickEngine();
    TenantSpec tenant;
    tenant.benchmark = benchmark;
    tenant.vcpus = cores;
    spec.tenants.push_back(tenant);
    return spec;
}

std::string
legacyStatsDump(const std::string &benchmark, unsigned cores = 2)
{
    Machine machine(smallSystem(cores), std::string("POM-TLB"));
    SimulationEngine engine(machine,
                            ProfileRegistry::byName(benchmark),
                            quickEngine());
    const RunResult result = engine.run();
    return buildStatsDocument(machine, result, benchmark).dump(2);
}

std::string
scenarioStatsDump(const ScenarioSpec &spec)
{
    Machine machine(spec.system, spec.scheme);
    const ScenarioResult result = runScenario(machine, spec);
    return buildScenarioDocument(machine, spec, result)
        .at("stats")
        .dump(2);
}

// ---------------------------------------------------------------
// The golden guarantee: one always-resident tenant covering every
// core IS the classic run, byte for byte.
// ---------------------------------------------------------------

TEST(Scenario, SingleTenantMatchesLegacyRunByteForByte)
{
    const ScenarioSpec spec = degenerateSpec("mcf");
    EXPECT_EQ(scenarioStatsDump(spec), legacyStatsDump("mcf"));
}

TEST(Scenario, SingleTenantMatchesLegacyForMultithreadedWorkload)
{
    // canneal is multithreaded: every vCPU shares one ASID, the
    // other pid-assignment branch of both engines.
    const ScenarioSpec spec = degenerateSpec("canneal");
    EXPECT_EQ(scenarioStatsDump(spec), legacyStatsDump("canneal"));
}

TEST(Scenario, SingleTenantMatchesLegacyOnFourCores)
{
    const ScenarioSpec spec = degenerateSpec("gups", 4);
    EXPECT_EQ(scenarioStatsDump(spec), legacyStatsDump("gups", 4));
}

// ---------------------------------------------------------------
// Spec resolution
// ---------------------------------------------------------------

TEST(Scenario, ResolvedTenantsAutoAssignVmAndAsid)
{
    ScenarioSpec spec;
    spec.system = smallSystem();
    spec.engine = quickEngine();
    spec.tenants.push_back(
        TenantSpec{}.withBenchmark("mcf").withVcpus(2));
    spec.tenants.push_back(
        TenantSpec{}.withBenchmark("gups").withVcpus(2));

    const std::vector<ResolvedTenant> resolved =
        spec.resolvedTenants();
    ASSERT_EQ(resolved.size(), 2u);
    EXPECT_EQ(resolved[0].name, "t0");
    EXPECT_EQ(resolved[0].vm, VmId{1});
    EXPECT_EQ(resolved[0].pidBase, ProcessId{1});
    EXPECT_EQ(resolved[1].vm, VmId{2});
    // mcf is single-threaded: its two vCPUs claim pids 1 and 2,
    // so the next tenant starts at 3.
    EXPECT_EQ(resolved[1].pidBase, ProcessId{3});
    EXPECT_EQ(resolved[0].departureRefs, 3000u);
}

TEST(Scenario, GeneratorExpandsChurnSchedule)
{
    ScenarioSpec spec;
    spec.system = smallSystem(2);
    spec.engine = quickEngine();
    spec.tenantCount = 6;
    spec.residentPerCore = 1;
    spec.tenantBenchmarks = {"mcf", "gups"};

    const std::vector<ResolvedTenant> resolved =
        spec.resolvedTenants();
    ASSERT_EQ(resolved.size(), 6u);
    // Tenant t homes on core t % 2: core 0 runs {0, 2, 4}, core 1
    // runs {1, 3, 5}. With one resident at a time over a 3000-ref
    // timeline, the churn interval is 3000 / 3 = 1000.
    EXPECT_EQ(resolved[0].arrivalRefs, 0u);
    EXPECT_EQ(resolved[0].departureRefs, 1000u);
    EXPECT_EQ(resolved[2].arrivalRefs, 1000u);
    EXPECT_EQ(resolved[2].departureRefs, 2000u);
    EXPECT_EQ(resolved[4].arrivalRefs, 2000u);
    EXPECT_EQ(resolved[4].departureRefs, 3000u);
    // Benchmarks cycle through the list.
    EXPECT_EQ(resolved[0].benchmark, "mcf");
    EXPECT_EQ(resolved[1].benchmark, "gups");
    EXPECT_EQ(resolved[2].benchmark, "mcf");
}

TEST(Scenario, OvercommitShrinksEffectiveFootprints)
{
    ScenarioSpec spec;
    spec.system = smallSystem();
    spec.engine = quickEngine();
    spec.overcommitFactor = 2.0;
    spec.tenants.push_back(TenantSpec{}
                               .withBenchmark("mcf")
                               .withVcpus(2)
                               .withFootprint(Addr{64} << 20));

    const std::vector<ResolvedTenant> resolved =
        spec.resolvedTenants();
    ASSERT_EQ(resolved.size(), 1u);
    EXPECT_EQ(resolved[0].footprintBytes, Addr{32} << 20);
}

TEST(Scenario, ExplicitListAndGeneratorHashIdentically)
{
    ScenarioSpec generated;
    generated.system = smallSystem(2);
    generated.engine = quickEngine();
    generated.tenantCount = 2;
    generated.tenantBenchmarks = {"mcf"};

    ScenarioSpec explicit_list;
    explicit_list.system = smallSystem(2);
    explicit_list.engine = quickEngine();
    explicit_list.tenants.push_back(
        TenantSpec{}.withName("t0").withBenchmark("mcf"));
    explicit_list.tenants.push_back(
        TenantSpec{}.withName("t1").withBenchmark("mcf"));

    EXPECT_EQ(scenarioHash(generated),
              scenarioHash(explicit_list));
}

TEST(Scenario, HashChangesWithConsolidationKnobs)
{
    const ScenarioSpec base = degenerateSpec("mcf");
    ScenarioSpec storm = base;
    storm.storm.intervalRefs = 500;
    ScenarioSpec overcommit = base;
    overcommit.overcommitFactor = 1.5;
    EXPECT_NE(scenarioHash(base), scenarioHash(storm));
    EXPECT_NE(scenarioHash(base), scenarioHash(overcommit));
    EXPECT_EQ(scenarioHash(base), scenarioHash(degenerateSpec("mcf")));
}

TEST(Scenario, BenchmarkLabelJoinsDistinctWorkloads)
{
    ScenarioSpec spec;
    spec.system = smallSystem(2);
    spec.engine = quickEngine();
    spec.tenants.push_back(TenantSpec{}.withBenchmark("mcf"));
    spec.tenants.push_back(TenantSpec{}.withBenchmark("gups"));
    EXPECT_EQ(scenarioBenchmarkLabel(spec), "mcf+gups");
    EXPECT_EQ(scenarioBenchmarkLabel(degenerateSpec("mcf")), "mcf");
}

// ---------------------------------------------------------------
// Lifecycle events and per-tenant accounting
// ---------------------------------------------------------------

TEST(Scenario, ChurnRunsDepartTenantsAndAttributeRefs)
{
    ScenarioSpec spec;
    spec.name = "churn";
    spec.system = smallSystem(2);
    spec.engine = quickEngine();
    spec.tenantCount = 6;
    spec.residentPerCore = 1;

    Machine machine(spec.system, spec.scheme);
    const ScenarioResult result = runScenario(machine, spec);
    ASSERT_EQ(result.tenants.size(), 6u);

    // Tenants 4 and 5 run last (the measured window); the early
    // tenants departed. Departures during warmup are lifecycle
    // state, not measured events — only the measured phase counts.
    std::uint64_t total_refs = 0;
    for (const TenantResult &tenant : result.tenants)
        total_refs += tenant.refs;
    EXPECT_EQ(total_refs, 2u * spec.engine.refsPerCore);
    EXPECT_TRUE(result.tenants[0].departed);
    EXPECT_TRUE(result.tenants[1].departed);
    EXPECT_FALSE(result.tenants[4].departed);
    EXPECT_FALSE(result.tenants[5].departed);
}

TEST(Scenario, TimeSlicedTenantsShareEachCore)
{
    ScenarioSpec spec;
    spec.system = smallSystem(1);
    spec.engine = quickEngine();
    spec.timeSliceRefs = 100;
    spec.tenants.push_back(TenantSpec{}.withBenchmark("mcf"));
    spec.tenants.push_back(TenantSpec{}.withBenchmark("gups"));

    Machine machine(spec.system, spec.scheme);
    const ScenarioResult result = runScenario(machine, spec);
    ASSERT_EQ(result.tenants.size(), 2u);
    // Round-robin at equal priority: the measured window splits
    // evenly between the two always-resident tenants.
    EXPECT_EQ(result.tenants[0].refs, 1000u);
    EXPECT_EQ(result.tenants[1].refs, 1000u);
    EXPECT_GT(result.tenants[0].translationCycles, 0u);
    EXPECT_GT(result.tenants[1].translationCycles, 0u);
}

TEST(Scenario, StormScheduleShootsDownPages)
{
    ScenarioSpec spec = degenerateSpec("mcf");
    spec.storm.intervalRefs = 500;
    spec.storm.pagesPerBurst = 4;

    Machine machine(spec.system, spec.scheme);
    const ScenarioResult result = runScenario(machine, spec);
    EXPECT_GT(result.stormShootdowns, 0u);
    EXPECT_EQ(result.stormShootdowns % 4, 0u);
    EXPECT_EQ(result.tenants[0].shootdowns, result.stormShootdowns);
    EXPECT_EQ(result.run.totals().shootdowns,
              result.stormShootdowns);
}

TEST(Scenario, ArrivalsMigratePages)
{
    ScenarioSpec spec;
    spec.system = smallSystem(1);
    spec.engine = quickEngine();
    spec.migrationPagesPerArrival = 16;
    spec.tenants.push_back(TenantSpec{}.withBenchmark("mcf"));
    spec.tenants.push_back(TenantSpec{}
                               .withBenchmark("gups")
                               .withArrival(2000));

    Machine machine(spec.system, spec.scheme);
    const ScenarioResult result = runScenario(machine, spec);
    // The late tenant arrives inside the measured window and its
    // pages migrate in.
    EXPECT_EQ(result.migrations, 16u);
    EXPECT_EQ(result.tenants[1].migrations, 16u);
    EXPECT_EQ(result.tenants[0].migrations, 0u);
}

TEST(Scenario, DeterministicAcrossRuns)
{
    ScenarioSpec spec;
    spec.name = "repeat";
    spec.system = smallSystem(2);
    spec.engine = quickEngine();
    spec.tenantCount = 6;
    spec.residentPerCore = 2;
    spec.storm.intervalRefs = 700;
    spec.migrationPagesPerArrival = 8;

    Machine machine_a(spec.system, spec.scheme);
    const ScenarioResult a = runScenario(machine_a, spec);
    const std::string doc_a =
        buildScenarioDocument(machine_a, spec, a).dump(2);

    Machine machine_b(spec.system, spec.scheme);
    const ScenarioResult b = runScenario(machine_b, spec);
    const std::string doc_b =
        buildScenarioDocument(machine_b, spec, b).dump(2);
    EXPECT_EQ(doc_a, doc_b);
}

TEST(Scenario, PackReplayReproducesTheScenarioExactly)
{
    // A churny multi-tenant scenario with storms and migrations,
    // recorded to a trace pack and replayed from it: every
    // behavioural section of the document matches byte for byte.
    ScenarioSpec spec;
    spec.name = "replayed";
    spec.system = smallSystem(2);
    spec.engine = quickEngine();
    spec.tenantCount = 4;
    spec.residentPerCore = 1;
    spec.storm.intervalRefs = 700;
    spec.migrationPagesPerArrival = 8;

    const std::string path =
        ::testing::TempDir() + "scenario_replay_test.pack";
    Machine machine_a(spec.system, spec.scheme);
    ScenarioEngine engine_a(machine_a, spec);
    engine_a.recordPack(path);
    const ScenarioResult a = engine_a.run();
    const JsonValue doc_a = buildScenarioDocument(machine_a, spec, a);

    ScenarioSpec replay = spec;
    replay.withTracePack(path);
    Machine machine_b(replay.system, replay.scheme);
    const ScenarioResult b = runScenario(machine_b, replay);
    const JsonValue doc_b =
        buildScenarioDocument(machine_b, replay, b);

    EXPECT_EQ(doc_a.at("stats").dump(2), doc_b.at("stats").dump(2));
    EXPECT_EQ(doc_a.at("tenants").dump(2),
              doc_b.at("tenants").dump(2));
    EXPECT_EQ(doc_a.at("events").dump(2), doc_b.at("events").dump(2));
    // The identities differ on purpose: the replay folds the pack's
    // content hash into the scenario hash.
    EXPECT_NE(scenarioHash(spec), scenarioHash(replay));
    std::filesystem::remove(path);
}

// ---------------------------------------------------------------
// Export document
// ---------------------------------------------------------------

TEST(Scenario, DocumentCarriesPerTenantQosPercentiles)
{
    ScenarioSpec spec = degenerateSpec("mcf");
    Machine machine(spec.system, spec.scheme);
    const ScenarioResult result = runScenario(machine, spec);
    const JsonValue document =
        buildScenarioDocument(machine, spec, result);

    EXPECT_EQ(document.at("schema").asString(),
              "pomtlb-scenario-v1");
    EXPECT_EQ(document.at("scenario_hash").asString(),
              scenarioHash(spec));
    const JsonValue &tenants = document.at("tenants");
    ASSERT_EQ(tenants.elements().size(), 1u);
    const JsonValue &tenant = tenants.at(std::size_t{0});
    EXPECT_EQ(tenant.at("name").asString(), "t0");
    EXPECT_EQ(tenant.at("refs").asUint(), 4000u);
    // p50 is 0 for this workload — most references hit the L1 TLB,
    // which translates for free; the QoS tail lives in p95/p99.
    EXPECT_GT(tenant.at("p95_translation_cycles").asUint(), 0u);
    EXPECT_GE(tenant.at("p95_translation_cycles").asUint(),
              tenant.at("p50_translation_cycles").asUint());
    EXPECT_GE(tenant.at("p99_translation_cycles").asUint(),
              tenant.at("p95_translation_cycles").asUint());
    EXPECT_GT(tenant.at("l1_hit_ratio").asNumber(), 0.0);
    EXPECT_TRUE(tenant.has("translation_cycle_histogram"));
    EXPECT_TRUE(document.at("events").has("departures"));
    EXPECT_EQ(document.at("stats").at("schema").asString(),
              "pomtlb-stats-v1");
}

TEST(Scenario, RegistryExposesTenantGroups)
{
    ScenarioSpec spec = degenerateSpec("mcf");
    Machine machine(spec.system, spec.scheme);
    ScenarioEngine engine(machine, spec);
    engine.run();

    std::vector<std::pair<std::string, double>> flat;
    engine.registry().collect(flat);
    bool saw_refs = false;
    bool saw_p99 = false;
    for (const auto &[name, value] : flat) {
        if (name == "tenants.t0.refs") {
            saw_refs = true;
            EXPECT_EQ(value, 4000.0);
        }
        if (name == "tenants.t0.p99_translation_cycles")
            saw_p99 = true;
    }
    EXPECT_TRUE(saw_refs);
    EXPECT_TRUE(saw_p99);
}

// ---------------------------------------------------------------
// Consolidation at scale: hundreds of tenants, per-tenant QoS.
// ---------------------------------------------------------------

TEST(Scenario, SustainsHundredsOfTenantsWithPerTenantQos)
{
    ScenarioSpec spec;
    spec.name = "consolidation-256t";
    spec.scheme = "POM-TLB";
    spec.system = smallSystem(4);
    spec.engine.refsPerCore = 4000;
    spec.engine.warmupRefsPerCore = 1000;
    spec.tenantCount = 256;
    spec.tenantBenchmarks = {"mcf", "gups", "canneal"};
    spec.storm.intervalRefs = 1000;
    spec.storm.pagesPerBurst = 4;
    spec.migrationPagesPerArrival = 2;
    spec.overcommitFactor = 2.0;

    Machine machine(spec.system, spec.scheme);
    const ScenarioResult result = runScenario(machine, spec);
    const JsonValue document =
        buildScenarioDocument(machine, spec, result);

    const JsonValue &tenants = document.at("tenants");
    ASSERT_EQ(tenants.elements().size(), 256u);
    std::uint64_t refs = 0;
    for (const JsonValue &tenant : tenants.elements()) {
        refs += tenant.at("refs").asUint();
        EXPECT_TRUE(tenant.has("p50_translation_cycles"));
        EXPECT_TRUE(tenant.has("p95_translation_cycles"));
        EXPECT_TRUE(tenant.has("p99_translation_cycles"));
    }
    // Every measured reference is attributed to exactly one tenant.
    EXPECT_EQ(refs, 4u * spec.engine.refsPerCore);
    EXPECT_GT(result.departures, 0u);
    EXPECT_GT(result.stormShootdowns, 0u);
    EXPECT_GT(result.migrations, 0u);
}

// ---------------------------------------------------------------
// Campaigns: memoized, checkpointed, parallel, crash-resumable.
// ---------------------------------------------------------------

namespace fs = std::filesystem;

/** A unique scratch directory, recursively removed on destruction. */
struct ScratchDir
{
    explicit ScratchDir(const std::string &tag)
    {
        path = (fs::temp_directory_path() /
                ("pomtlb-" + tag + "-" + std::to_string(::getpid())))
                   .string();
        fs::remove_all(path);
        fs::create_directories(path);
    }
    ~ScratchDir() { fs::remove_all(path); }

    std::string sub(const std::string &name) const
    {
        return (fs::path(path) / name).string();
    }

    std::string path;
};

/** A small churn+storm scenario with @p tenants tenants. */
ScenarioSpec
churnSpec(unsigned tenants)
{
    ScenarioSpec spec;
    spec.name = "churn-" + std::to_string(tenants) + "t";
    spec.scheme = "POM-TLB";
    spec.system = smallSystem(2);
    spec.engine = quickEngine();
    spec.tenantCount = tenants;
    spec.tenantBenchmarks = {"mcf", "gups"};
    spec.migrationPagesPerArrival = 2;
    spec.storm.intervalRefs = 800;
    spec.storm.pagesPerBurst = 4;
    return spec;
}

TEST(ScenarioCampaign, RerunByteIdenticalAcrossCacheAndJobs)
{
    ScratchDir scratch("scenario-campaign");
    const std::vector<ScenarioSpec> specs = {churnSpec(4),
                                             churnSpec(8)};

    ScenarioCampaignOptions options;
    options.cacheDir = scratch.sub("cache");
    options.jobs = 1;
    SweepServiceStats stats;
    const JsonValue cold =
        runScenarioCampaign(specs, options, &stats);
    EXPECT_EQ(cold.at("schema").asString(), kScenarioSchemaV1);
    EXPECT_EQ(stats.executed, 2u);

    // The warm rerun executes nothing and is byte-identical.
    const JsonValue warm =
        runScenarioCampaign(specs, options, &stats);
    EXPECT_EQ(stats.executed, 0u);
    EXPECT_EQ(stats.cacheHits, 2u);
    EXPECT_EQ(cold.dump(2), warm.dump(2));

    // A different worker count in a pristine cache changes nothing.
    ScenarioCampaignOptions wide;
    wide.cacheDir = scratch.sub("cache-wide");
    wide.jobs = 4;
    const JsonValue parallel =
        runScenarioCampaign(specs, wide, &stats);
    EXPECT_EQ(stats.executed, 2u);
    EXPECT_EQ(cold.dump(2), parallel.dump(2));
}

TEST(ScenarioCampaign, KilledCampaignResumesByteIdentical)
{
    ScratchDir scratch("scenario-crash");
    const std::vector<ScenarioSpec> specs = {churnSpec(4),
                                             churnSpec(8)};

    ScenarioCampaignOptions options;
    options.cacheDir = scratch.sub("cache");
    options.journalPath = scratch.sub("scenario.journal");
    options.jobs = 1;

    // Child: the crash hook vanishes the process (status 137, no
    // flushes, no destructors) right after the first journal
    // append, like a SIGKILL landing mid-campaign.
    const pid_t child = fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
        ScenarioCampaignOptions crashing = options;
        crashing.crashAfterAppends = 1;
        runScenarioCampaign(specs, crashing);
        std::_Exit(0); // not reached: the hook fires first
    }
    int status = 0;
    ASSERT_EQ(::waitpid(child, &status, 0), child);
    ASSERT_TRUE(WIFEXITED(status));
    ASSERT_EQ(WEXITSTATUS(status), 137);

    // Parent: resume. The journaled scenario replays, only the
    // remainder executes.
    SweepServiceStats stats;
    const JsonValue resumed =
        runScenarioCampaign(specs, options, &stats);
    EXPECT_EQ(stats.journalHits, 1u);
    EXPECT_EQ(stats.executed, 1u);

    // The resumed document is byte-identical to an uninterrupted
    // campaign in a pristine cache.
    ScenarioCampaignOptions pristine;
    pristine.cacheDir = scratch.sub("cache-reference");
    pristine.jobs = 1;
    const JsonValue reference = runScenarioCampaign(specs, pristine);
    EXPECT_EQ(resumed.dump(2), reference.dump(2));
}

} // namespace
} // namespace pomtlb

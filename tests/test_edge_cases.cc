/**
 * @file
 * Edge-case and failure-injection tests: degenerate geometries,
 * boundary addresses, exhaustion paths, and misconfiguration.
 */

#include <gtest/gtest.h>

#include "cache/cache.hh"
#include "dram/controller.hh"
#include "pagetable/radix_table.hh"
#include "pomtlb/array.hh"
#include "sim/experiment.hh"
#include "tlb/tlb.hh"

namespace pomtlb
{
namespace
{

// ----------------------------------------------------------------
// Degenerate geometries.
// ----------------------------------------------------------------

TEST(EdgeCache, DirectMappedWorks)
{
    CacheConfig config;
    config.name = "dm";
    config.sizeBytes = 1024;
    config.associativity = 1;
    config.lineBytes = 64;
    SetAssocCache cache(config);
    cache.fill(0x0, LineKind::Data);
    // The conflicting address (same set, different tag) evicts.
    const CacheFillResult fill = cache.fill(0x400, LineKind::Data);
    EXPECT_TRUE(fill.evicted);
    EXPECT_FALSE(cache.contains(0x0));
}

TEST(EdgeCache, FullyAssociativeSingleSet)
{
    CacheConfig config;
    config.name = "fa";
    config.sizeBytes = 256;
    config.associativity = 4;
    config.lineBytes = 64; // exactly one set
    SetAssocCache cache(config);
    for (Addr addr = 0; addr < 4 * 64; addr += 64)
        cache.fill(addr, LineKind::Data);
    EXPECT_EQ(cache.validLineCount(), 4u);
    cache.fill(0x10000, LineKind::Data);
    EXPECT_EQ(cache.validLineCount(), 4u);
}

TEST(EdgeTlb, SingleSetTlb)
{
    TlbConfig config;
    config.name = "tiny";
    config.entries = 4;
    config.associativity = 4;
    SetAssocTlb tlb(config);
    for (PageNum vpn = 0; vpn < 8; ++vpn)
        tlb.insert(vpn, PageSize::Small4K, 0, 0, vpn);
    EXPECT_EQ(tlb.validEntryCount(), 4u);
}

TEST(EdgePom, SingleWayPartitionEvictsInPlace)
{
    PomTlbPartition partition("dm", 8, 1);
    partition.insert(3, 100, 1, 1, PageSize::Small4K, 1);
    partition.insert(3, 200, 1, 1, PageSize::Small4K, 2);
    EXPECT_FALSE(
        partition.lookup(3, 100, 1, 1, PageSize::Small4K).hit);
    EXPECT_TRUE(
        partition.lookup(3, 200, 1, 1, PageSize::Small4K).hit);
    EXPECT_EQ(partition.validEntryCount(), 1u);
}

// ----------------------------------------------------------------
// Boundary addresses.
// ----------------------------------------------------------------

TEST(EdgeAddress, CanonicalTopOfUserSpace)
{
    // 47-bit user VA boundary: the highest mappable 4 KB page.
    MemoryMap map(MemoryMapConfig{});
    const Addr vaddr = (Addr{1} << 47) - smallPageBytes;
    const TranslationInfo info =
        map.ensureMapped(1, 1, vaddr, PageSize::Small4K);
    EXPECT_EQ(map.hostTranslate(1, info.gpa), info.hpa);
    EXPECT_TRUE(map.guestTable(1, 1).isMapped(vaddr));
}

TEST(EdgeAddress, PageZero)
{
    MemoryMap map(MemoryMapConfig{});
    const TranslationInfo info =
        map.ensureMapped(1, 1, 0x0, PageSize::Small4K);
    EXPECT_NE(info.hpa, 0u); // frame 0 is never handed out
}

TEST(EdgeAddress, LastByteOfLargePage)
{
    MemoryMap map(MemoryMapConfig{});
    const Addr base = Addr{5} << largePageShift;
    const TranslationInfo first =
        map.ensureMapped(1, 1, base, PageSize::Large2M);
    const TranslationInfo last = map.ensureMapped(
        1, 1, base + largePageBytes - 1, PageSize::Large2M);
    EXPECT_EQ(pageBase(first.hpa, PageSize::Large2M),
              pageBase(last.hpa, PageSize::Large2M));
    EXPECT_EQ(last.hpa - first.hpa, largePageBytes - 1);
}

// ----------------------------------------------------------------
// Exhaustion and misconfiguration.
// ----------------------------------------------------------------

TEST(EdgeAllocator, ExhaustionIsFatal)
{
    FrameAllocator frames(0x1000, 0x4000); // room for 3 frames
    frames.allocate(PageSize::Small4K);
    frames.allocate(PageSize::Small4K);
    frames.allocate(PageSize::Small4K);
    EXPECT_DEATH_IF_SUPPORTED(
        { frames.allocate(PageSize::Small4K); }, "");
}

TEST(EdgeConfig, ZeroCoresRejected)
{
    SystemConfig config = SystemConfig::table1();
    config.numCores = 0;
    EXPECT_DEATH_IF_SUPPORTED({ config.validate(); }, "");
}

TEST(EdgeConfig, UncacheableNonLineSetAccepted)
{
    // The associativity ablation's geometry: legal only with caching
    // off.
    SystemConfig config = SystemConfig::table1();
    config.pomTlb.associativity = 2;
    config.pomTlb.cacheable = false;
    EXPECT_NO_THROW(config.validate());
    config.pomTlb.cacheable = true;
    EXPECT_DEATH_IF_SUPPORTED({ config.validate(); }, "");
}

TEST(EdgeDram, SingleBankSerializes)
{
    DramConfig config = DramConfig::dieStacked();
    config.numBanks = 1;
    config.coreFreqGhz = 4.0;
    DramController dram(config);
    const DramAccessResult first = dram.access(0, 0);
    const DramAccessResult second =
        dram.access(1u << 20, 0); // other row, same (only) bank
    EXPECT_EQ(second.outcome, RowBufferOutcome::Conflict);
    EXPECT_GT(second.latency, first.latency);
}

TEST(EdgeRadix, DeepTreeIndependentSubtrees)
{
    FrameAllocator frames(0x1000, Addr{1} << 40);
    RadixPageTable table("deep", frames);
    // Two VPNs differing only in the PML4 index.
    const PageNum lo = 0x1;
    const PageNum hi = lo + (PageNum{1} << 27); // bit 39 of the VA
    table.map(lo, PageSize::Small4K, 10);
    table.map(hi, PageSize::Small4K, 20);
    EXPECT_EQ(table.walk(lo << smallPageShift).pfn, 10u);
    EXPECT_EQ(table.walk(hi << smallPageShift).pfn, 20u);
    table.unmap(lo << smallPageShift);
    EXPECT_EQ(table.walk(hi << smallPageShift).pfn, 20u);
}

// ----------------------------------------------------------------
// Tiny run lengths: the engine must behave at the extremes.
// ----------------------------------------------------------------

TEST(EdgeEngine, ZeroWarmup)
{
    ExperimentConfig config;
    config.system.numCores = 1;
    config.engine.refsPerCore = 100;
    config.engine.warmupRefsPerCore = 0;
    const SchemeRunSummary summary = runScheme(
        ProfileRegistry::byName("gups"), "POM-TLB", config);
    EXPECT_EQ(summary.run.totals().refs, 100u);
}

TEST(EdgeEngine, SingleReference)
{
    ExperimentConfig config;
    config.system.numCores = 1;
    config.engine.refsPerCore = 1;
    config.engine.warmupRefsPerCore = 0;
    const SchemeRunSummary summary = runScheme(
        ProfileRegistry::byName("mcf"), "Baseline",
        config);
    EXPECT_EQ(summary.run.totals().refs, 1u);
}

} // namespace
} // namespace pomtlb

/**
 * @file
 * Bit-identity battery for the sharded engine (docs/internals.md
 * §14).
 *
 * The determinism contract of EngineConfig::runThreads is absolute:
 * a sharded run must produce the SAME BYTES as the serial run — not
 * statistically similar, not equal within tolerance — because
 * sharded and serial results share sweep-cache entries (runThreads
 * is excluded from jobHash) and golden fixtures. This battery
 * enforces the contract across every axis that routes work
 * differently through the executor:
 *
 *  - every registered scheme × both benchmarks × 2/3/8 worker
 *    threads, compared on the full `pomtlb-stats-v1` document
 *    byte-for-byte (doubles included at full precision);
 *  - the streaming regime (prepopulate off, so the timed run pulls
 *    from sources through the epoch-barrier prefill machinery
 *    rather than a captured replay), with a deliberately tiny epoch
 *    to force many barriers;
 *  - trace-pack replay input (shared mmap-ed reader fanned out to
 *    worker threads);
 *  - a churny 64-tenant consolidation scenario with overcommit,
 *    migrations, and shootdown storms, compared on the full
 *    `pomtlb-scenario-v1` document.
 */

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/json.hh"
#include "sim/engine.hh"
#include "sim/machine.hh"
#include "sim/scenario.hh"
#include "sim/scheme_registry.hh"
#include "sim/stats_export.hh"
#include "trace/profile.hh"
#include "trace/source.hh"
#include "trace/tracepack.hh"

namespace pomtlb
{
namespace
{

constexpr unsigned kShardCounts[] = {2, 3, 8};

SystemConfig
smallSystem(unsigned cores = 4)
{
    SystemConfig config = SystemConfig::table1();
    config.numCores = cores;
    return config;
}

EngineConfig
quickEngine()
{
    EngineConfig config;
    config.refsPerCore = 2500;
    config.warmupRefsPerCore = 1000;
    return config;
}

/** Full pomtlb-stats-v1 bytes of one run of @p config. */
std::string
statsDump(const std::string &scheme, const std::string &benchmark,
          const EngineConfig &config, unsigned cores = 4)
{
    Machine machine(smallSystem(cores), scheme);
    SimulationEngine engine(
        machine, ProfileRegistry::byName(benchmark), config);
    const RunResult result = engine.run();
    return buildStatsDocument(machine, result, benchmark).dump(2);
}

// ---------------------------------------------------------------
// Captured regime: every scheme, both benchmarks, three shard
// counts (including more threads than cores).
// ---------------------------------------------------------------

class ShardedScheme
    : public ::testing::TestWithParam<
          std::tuple<std::string, std::string>>
{
};

TEST_P(ShardedScheme, StatsDocumentIsByteIdenticalToSerial)
{
    const auto &[scheme, benchmark] = GetParam();
    const EngineConfig serial = quickEngine();
    const std::string expected =
        statsDump(scheme, benchmark, serial);

    for (const unsigned threads : kShardCounts) {
        EngineConfig sharded = serial;
        sharded.runThreads = threads;
        EXPECT_EQ(statsDump(scheme, benchmark, sharded), expected)
            << scheme << "/" << benchmark << " diverged at "
            << threads << " worker threads";
    }
}

std::vector<std::tuple<std::string, std::string>>
allSchemeBenchPairs()
{
    std::vector<std::tuple<std::string, std::string>> out;
    for (const std::string &scheme :
         SchemeRegistry::global().names())
        for (const std::string bench : {"mcf", "gups"})
            out.emplace_back(scheme, bench);
    return out;
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, ShardedScheme,
    ::testing::ValuesIn(allSchemeBenchPairs()),
    [](const ::testing::TestParamInfo<ShardedScheme::ParamType>
           &info) {
        std::string name = std::get<0>(info.param) + "_" +
                           std::get<1>(info.param);
        for (char &c : name) {
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return name;
    });

// ---------------------------------------------------------------
// Streaming regime: with pre-population off there is no capture to
// replay, so the timed loop pulls blocks through the epoch-barrier
// prefill machinery. A tiny epoch forces many barriers.
// ---------------------------------------------------------------

TEST(ShardedStreaming, EpochPrefillIsByteIdenticalToSerial)
{
    EngineConfig serial = quickEngine();
    serial.prepopulate = false;
    const std::string expected = statsDump("POM-TLB", "mcf", serial);

    for (const unsigned threads : kShardCounts) {
        EngineConfig sharded = serial;
        sharded.runThreads = threads;
        sharded.epochCycles = 512;
        EXPECT_EQ(statsDump("POM-TLB", "mcf", sharded), expected)
            << "streaming run diverged at " << threads
            << " worker threads";
    }
}

TEST(ShardedStreaming, EpochLengthNeverChangesResults)
{
    EngineConfig serial = quickEngine();
    serial.prepopulate = false;
    const std::string expected =
        statsDump("Baseline", "gups", serial);

    for (const Cycles epoch : {Cycles(256), Cycles(4096),
                               Cycles(1u << 20)}) {
        EngineConfig sharded = serial;
        sharded.runThreads = 3;
        sharded.epochCycles = epoch;
        EXPECT_EQ(statsDump("Baseline", "gups", sharded), expected)
            << "streaming run diverged at epoch length " << epoch;
    }
}

// ---------------------------------------------------------------
// Trace-pack replay: the shared mmap-ed reader is fanned out to
// worker threads (eagerly verified, trace/tracepack.hh).
// ---------------------------------------------------------------

TEST(ShardedPackReplay, ReplayIsByteIdenticalToSerial)
{
    const auto &profile = ProfileRegistry::byName("gups");
    const EngineConfig config = quickEngine();
    const unsigned cores = 4;

    const std::string path =
        ::testing::TempDir() + "sharded_replay.pack";
    {
        TracePackWriter writer(
            path, {"core0", "core1", "core2", "core3"});
        const std::uint64_t per_core =
            config.warmupRefsPerCore + config.refsPerCore;
        std::vector<TraceRecord> block(1024);
        for (unsigned core = 0; core < cores; ++core) {
            GeneratorSource source(
                profile, core,
                config.seed ^ smallSystem(cores).seed);
            std::uint64_t left = per_core;
            while (left > 0) {
                const std::size_t got = source.fill(
                    block.data(),
                    static_cast<std::size_t>(
                        std::min<std::uint64_t>(block.size(),
                                                left)));
                writer.append(core, block.data(), got);
                left -= got;
            }
        }
        writer.close();
    }

    EngineConfig serial = config;
    serial.tracePackPath = path;
    const std::string expected =
        statsDump("POM-TLB", "gups", serial, cores);

    for (const unsigned threads : kShardCounts) {
        EngineConfig sharded = serial;
        sharded.runThreads = threads;
        EXPECT_EQ(statsDump("POM-TLB", "gups", sharded, cores),
                  expected)
            << "pack replay diverged at " << threads << " threads";
    }
    std::remove(path.c_str());
}

// ---------------------------------------------------------------
// Consolidation scenarios: 64 churning tenants with overcommit,
// migrations, and shootdown storms — the full
// `pomtlb-scenario-v1` document matches byte for byte.
// ---------------------------------------------------------------

ScenarioSpec
churnySpec()
{
    ScenarioSpec spec;
    spec.name = "sharded-churn";
    spec.scheme = "POM-TLB";
    spec.system = smallSystem(4);
    spec.engine = quickEngine();
    spec.tenantCount = 64;
    spec.residentPerCore = 4;
    spec.overcommitFactor = 1.5;
    spec.migrationPagesPerArrival = 16;
    spec.storm.intervalRefs = 900;
    spec.storm.pagesPerBurst = 8;
    return spec;
}

std::string
scenarioDump(const ScenarioSpec &spec)
{
    Machine machine(spec.system, spec.scheme);
    const ScenarioResult result = runScenario(machine, spec);
    return buildScenarioDocument(machine, spec, result).dump(2);
}

TEST(ShardedScenario, ChurnyTenantsAreByteIdenticalToSerial)
{
    const ScenarioSpec serial = churnySpec();
    const std::string expected = scenarioDump(serial);

    for (const unsigned threads : kShardCounts) {
        ScenarioSpec sharded = serial;
        sharded.engine.runThreads = threads;
        EXPECT_EQ(scenarioDump(sharded), expected)
            << "scenario diverged at " << threads
            << " worker threads";
    }
}

} // namespace
} // namespace pomtlb

/**
 * @file
 * Tests for the sweep-at-scale layer (sim/sweep_cache.hh +
 * sim/sweep_serve.hh): content hashing, the on-disk result cache,
 * the checkpoint journal, crash/resume byte-identity, the serve
 * protocol, and docs/sweep-service.md coverage.
 */

#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/content_hash.hh"
#include "sim/scenario.hh"
#include "sim/scheme_registry.hh"
#include "trace/profile.hh"
#include "trace/tracepack.hh"
#include "sim/sweep_cache.hh"
#include "sim/sweep_serve.hh"

namespace fs = std::filesystem;

namespace pomtlb
{
namespace
{

/** A unique scratch directory, recursively removed on destruction. */
struct ScratchDir
{
    explicit ScratchDir(const std::string &tag)
    {
        path = (fs::temp_directory_path() /
                ("pomtlb-" + tag + "-" + std::to_string(::getpid())))
                   .string();
        fs::remove_all(path);
        fs::create_directories(path);
    }
    ~ScratchDir() { fs::remove_all(path); }

    std::string sub(const std::string &name) const
    {
        return (fs::path(path) / name).string();
    }

    std::string path;
};

/** A deliberately tiny configuration so service tests stay fast. */
ExperimentConfig
quickConfig()
{
    ExperimentConfig config;
    config.system.numCores = 2;
    config.engine.refsPerCore = 400;
    config.engine.warmupRefsPerCore = 200;
    return config;
}

std::vector<ExperimentRequest>
quickRequests()
{
    const ExperimentConfig config = quickConfig();
    return {ExperimentRequest::of("mcf", "POM-TLB", config),
            ExperimentRequest::of("mcf", "Baseline", config)};
}

// ----------------------------------------------------------------
// Content hashing
// ----------------------------------------------------------------

TEST(ContentHash, EmptyInputIsTheOffsetBasis)
{
    EXPECT_EQ(ContentHash::of(""),
              "6c62272e07bb014262b821756295c58d");
}

TEST(ContentHash, IncrementalMatchesOneShot)
{
    ContentHash hash;
    hash.update("hello ").update("world");
    EXPECT_EQ(hash.hexDigest(), ContentHash::of("hello world"));
    EXPECT_NE(ContentHash::of("hello world"),
              ContentHash::of("hello worlD"));
}

TEST(JobHash, StableAcrossProcesses)
{
    // Golden digest of the all-defaults mcf/POM-TLB job. A change
    // here means the identity recipe changed: bump
    // kSweepCacheSchemaV1 (old caches must not be served) and
    // update docs/sweep-service.md.
    const ExperimentRequest request =
        ExperimentRequest::of("mcf", "POM-TLB");
    EXPECT_EQ(jobHash(request),
              "fb56d45d06d159354b6e733d8edde6bc");
}

TEST(JobHash, AliasesCanonicaliseToTheSameHash)
{
    EXPECT_EQ(jobHash(ExperimentRequest::of("mcf", "pom")),
              jobHash(ExperimentRequest::of("mcf", "POM-TLB")));
}

TEST(JobHash, SweepJobsDoesNotSplitTheCache)
{
    ExperimentRequest serial = ExperimentRequest::of("mcf", "pom");
    ExperimentRequest parallel = serial;
    parallel.config.sweepJobs = 7;
    EXPECT_EQ(jobHash(serial), jobHash(parallel));
}

TEST(JobHash, RunThreadsAndEpochCyclesDoNotSplitTheCache)
{
    // Intra-run sharding is an execution strategy with bit-identical
    // results (tests/test_engine_sharded.cc), so a cache entry
    // computed serially must be served to sharded requests and vice
    // versa — runThreads and epochCycles are excluded from the
    // identity (engineConfigJson in sim/sweep_cache.cc).
    const ExperimentRequest serial =
        ExperimentRequest::of("mcf", "pom");
    ExperimentRequest sharded = serial;
    sharded.config.engine.runThreads = 8;
    sharded.config.engine.epochCycles = 4096;
    EXPECT_EQ(jobHash(serial), jobHash(sharded));
}

TEST(JobHash, EveryRelevantKnobChangesTheHash)
{
    const ExperimentRequest base =
        ExperimentRequest::of("mcf", "pom");
    const std::string digest = jobHash(base);

    EXPECT_NE(digest, jobHash(ExperimentRequest::of("gups", "pom")));
    EXPECT_NE(digest, jobHash(ExperimentRequest::of("mcf", "tsb")));
    EXPECT_NE(digest,
              jobHash(ExperimentRequest(base).withLabel("v2")));
    EXPECT_NE(digest, jobHash(ExperimentRequest(base).withSeed(9)));
    EXPECT_NE(digest, jobHash(ExperimentRequest(base).withCores(4)));
    EXPECT_NE(digest,
              jobHash(ExperimentRequest(base).withPomCapacityMb(64)));
    EXPECT_NE(digest,
              jobHash(ExperimentRequest(base).withComponentStats()));
    EXPECT_NE(digest,
              jobHash(ExperimentRequest(base).withMode(
                  ExecMode::Native)));
}

TEST(JobHash, TracePackContentJoinsTheIdentity)
{
    ScratchDir scratch("jobhash-pack");
    const std::string pack = scratch.sub("t.pack");
    const auto writePack = [&](std::uint64_t first_vaddr) {
        TracePackWriter writer(pack, {"core0"});
        TraceRecord record;
        record.vaddr = first_vaddr;
        writer.append(0, record);
        record.vaddr = 0x2000;
        writer.append(0, record);
        writer.close();
    };

    // A pack-driven job hashes differently from the generator-driven
    // job with the same knobs.
    writePack(0x1000);
    ExperimentConfig config;
    config.engine.tracePackPath = pack;
    const ExperimentRequest replay =
        ExperimentRequest::of("mcf", "pom", config);
    const std::string digest = jobHash(replay);
    EXPECT_NE(digest, jobHash(ExperimentRequest::of("mcf", "pom")));

    // Same knobs, same pack content (even rewritten) -> same hash;
    // one changed record -> a different hash. The path itself is
    // not the identity, the content hash is.
    writePack(0x1000);
    EXPECT_EQ(digest, jobHash(replay));
    writePack(0x1001);
    EXPECT_NE(digest, jobHash(replay));
}

// ----------------------------------------------------------------
// SweepCache
// ----------------------------------------------------------------

JsonValue
fakeRun(const std::string &benchmark)
{
    JsonValue run = JsonValue::object();
    run.set("benchmark", benchmark);
    run.set("scheme", "POM-TLB");
    return run;
}

TEST(SweepCache, StoreThenLookupRoundTrips)
{
    ScratchDir scratch("cache-roundtrip");
    SweepCache cache(scratch.sub("cache"));
    const std::string hash = ContentHash::of("job one");

    EXPECT_FALSE(cache.lookup(hash).has_value());
    cache.store(hash, "mcf/POM-TLB", fakeRun("mcf"));
    const auto entry = cache.lookup(hash);
    ASSERT_TRUE(entry.has_value());
    EXPECT_EQ(*entry, fakeRun("mcf"));
    EXPECT_EQ(cache.quarantined(), 0u);

    // The published entry is a valid self-describing document.
    std::ifstream in(cache.entryPath(hash));
    std::stringstream buffer;
    buffer << in.rdbuf();
    const JsonValue blob = JsonValue::parse(buffer.str());
    EXPECT_EQ(blob.at("schema").asString(), kSweepCacheSchemaV1);
    EXPECT_EQ(blob.at("job_hash").asString(), hash);
    EXPECT_EQ(blob.at("key").asString(), "mcf/POM-TLB");
}

TEST(SweepCache, CorruptEntriesAreQuarantinedNotServed)
{
    ScratchDir scratch("cache-corrupt");
    const std::string dir = scratch.sub("cache");
    SweepCache cache(dir);
    const std::string truncated = ContentHash::of("truncated");
    const std::string mismatched = ContentHash::of("mismatched");

    cache.store(truncated, "a/b", fakeRun("a"));
    cache.store(mismatched, "c/d", fakeRun("c"));

    // Torn blob: unparsable JSON.
    {
        std::ofstream out(cache.entryPath(truncated),
                          std::ios::trunc);
        out << "{\"schema\": \"pomtlb-swee";
    }
    // Parsable blob filed under the wrong hash.
    {
        std::ifstream in(cache.entryPath(mismatched));
        std::stringstream buffer;
        buffer << in.rdbuf();
        std::ofstream out(cache.entryPath(truncated) + ".tmp");
        out << buffer.str();
        out.close();
        fs::rename(cache.entryPath(mismatched),
                   cache.entryPath(truncated));
    }

    EXPECT_FALSE(cache.lookup(truncated).has_value());
    EXPECT_EQ(cache.quarantined(), 1u);
    // Quarantined for post-mortem, not deleted.
    EXPECT_FALSE(fs::is_empty(fs::path(dir) / "quarantine"));
    // A subsequent store repairs the slot.
    cache.store(truncated, "a/b", fakeRun("a"));
    EXPECT_TRUE(cache.lookup(truncated).has_value());
}

// ----------------------------------------------------------------
// sweepCacheGc
// ----------------------------------------------------------------

TEST(SweepCacheGc, EvictsByAgeThenOldestFirstBySize)
{
    ScratchDir scratch("cache-gc");
    const std::string dir = scratch.sub("cache");
    SweepCache cache(dir);
    const std::string a = ContentHash::of("a");
    const std::string b = ContentHash::of("b");
    const std::string c = ContentHash::of("c");
    cache.store(a, "a/x", fakeRun("a"));
    cache.store(b, "b/x", fakeRun("b"));
    cache.store(c, "c/x", fakeRun("c"));

    const auto now = fs::file_time_type::clock::now();
    fs::last_write_time(cache.entryPath(a),
                        now - std::chrono::hours(10));
    fs::last_write_time(cache.entryPath(b),
                        now - std::chrono::hours(5));

    // Age pass: only the 10-hour-old entry exceeds 8 hours.
    SweepCacheGcStats stats = sweepCacheGc(dir, 0, 8 * 3600);
    EXPECT_EQ(stats.scanned, 3u);
    EXPECT_EQ(stats.evicted, 1u);
    EXPECT_GT(stats.bytesFreed, 0u);
    EXPECT_FALSE(cache.lookup(a).has_value());
    EXPECT_TRUE(cache.lookup(b).has_value());
    EXPECT_TRUE(cache.lookup(c).has_value());

    // Size pass: room for exactly the newest entry, so the older
    // survivor goes first.
    const std::uint64_t newest = fs::file_size(cache.entryPath(c));
    stats = sweepCacheGc(dir, newest, 0);
    EXPECT_EQ(stats.scanned, 2u);
    EXPECT_EQ(stats.evicted, 1u);
    EXPECT_EQ(stats.bytesKept, newest);
    EXPECT_FALSE(cache.lookup(b).has_value());
    EXPECT_TRUE(cache.lookup(c).has_value());

    // No limits: a pure scan, nothing evicted.
    stats = sweepCacheGc(dir, 0, 0);
    EXPECT_EQ(stats.scanned, 1u);
    EXPECT_EQ(stats.evicted, 0u);
}

TEST(SweepCacheGc, DryRunReportsTheEvictionWithoutRemoving)
{
    ScratchDir scratch("cache-gc-dry");
    const std::string dir = scratch.sub("cache");
    SweepCache cache(dir);
    const std::string a = ContentHash::of("a");
    const std::string b = ContentHash::of("b");
    cache.store(a, "a/x", fakeRun("a"));
    cache.store(b, "b/x", fakeRun("b"));
    const auto now = fs::file_time_type::clock::now();
    fs::last_write_time(cache.entryPath(a),
                        now - std::chrono::hours(10));

    // The dry run reports exactly what the real pass would do...
    const SweepCacheGcStats dry =
        sweepCacheGc(dir, 0, 8 * 3600, /*dry_run=*/true);
    EXPECT_EQ(dry.scanned, 2u);
    EXPECT_EQ(dry.evicted, 1u);
    EXPECT_GT(dry.bytesFreed, 0u);
    // ...but removes nothing.
    EXPECT_TRUE(cache.lookup(a).has_value());
    EXPECT_TRUE(cache.lookup(b).has_value());

    // The real pass then matches the dry run's accounting.
    const SweepCacheGcStats wet = sweepCacheGc(dir, 0, 8 * 3600);
    EXPECT_EQ(wet.evicted, dry.evicted);
    EXPECT_EQ(wet.bytesFreed, dry.bytesFreed);
    EXPECT_EQ(wet.bytesKept, dry.bytesKept);
    EXPECT_FALSE(cache.lookup(a).has_value());
    EXPECT_TRUE(cache.lookup(b).has_value());
}

TEST(SweepCacheGc, NeverTouchesQuarantineOrInFlightTemporaries)
{
    ScratchDir scratch("cache-gc-quarantine");
    const std::string dir = scratch.sub("cache");
    SweepCache cache(dir);
    const std::string kept = ContentHash::of("kept");
    const std::string corrupt = ContentHash::of("corrupt");
    cache.store(kept, "a/b", fakeRun("a"));
    cache.store(corrupt, "c/d", fakeRun("c"));
    {
        std::ofstream out(cache.entryPath(corrupt), std::ios::trunc);
        out << "{\"schema\": \"pomtlb-swee";
    }
    // The corrupt entry moves to quarantine/ on lookup.
    EXPECT_FALSE(cache.lookup(corrupt).has_value());
    EXPECT_EQ(cache.quarantined(), 1u);
    // A hidden in-flight temporary, as an interrupted store leaves.
    {
        std::ofstream out((fs::path(dir) / ".tmp-inflight").string());
        out << "partial";
    }

    // Evict everything evictable: quarantined evidence and the
    // temporary survive, and neither is even scanned.
    const SweepCacheGcStats stats = sweepCacheGc(dir, 1, 0);
    EXPECT_EQ(stats.scanned, 1u);
    EXPECT_EQ(stats.evicted, 1u);
    EXPECT_FALSE(cache.lookup(kept).has_value());
    EXPECT_FALSE(fs::is_empty(fs::path(dir) / "quarantine"));
    EXPECT_TRUE(fs::exists(fs::path(dir) / ".tmp-inflight"));
}

// ----------------------------------------------------------------
// SweepJournal
// ----------------------------------------------------------------

TEST(SweepJournal, ReplaysCompletedJobsAndSurvivesTornTails)
{
    ScratchDir scratch("journal");
    const std::string path = scratch.sub("sweep.journal");
    const std::string campaign = ContentHash::of("campaign");

    {
        SweepJournal journal(path);
        EXPECT_TRUE(journal.open(campaign, 3).empty());
        journal.append("hash-a", "mcf/POM-TLB", "executed", 1.5,
                       fakeRun("mcf"));
        journal.append("hash-b", "mcf/Baseline", "executed", 2.5,
                       fakeRun("mcf"));
        EXPECT_EQ(journal.appended(), 2u);
    }
    // Simulate a crash mid-append: a torn trailing record.
    {
        std::ofstream out(path, std::ios::app);
        out << "{\"job_hash\": \"hash-c\", \"ru";
    }
    {
        SweepJournal journal(path);
        const auto replayed = journal.open(campaign, 3);
        EXPECT_EQ(replayed.size(), 2u);
        EXPECT_TRUE(replayed.count("hash-a"));
        EXPECT_TRUE(replayed.count("hash-b"));
        EXPECT_FALSE(replayed.count("hash-c"));
        // The torn tail was truncated: appends stay valid JSONL.
        journal.append("hash-c", "gups/POM-TLB", "executed", 0.5,
                       fakeRun("gups"));
    }
    {
        SweepJournal journal(path);
        EXPECT_EQ(journal.open(campaign, 3).size(), 3u);
    }
    // A different campaign restarts the file instead of replaying.
    {
        SweepJournal journal(path);
        EXPECT_TRUE(
            journal.open(ContentHash::of("other"), 3).empty());
    }
    {
        SweepJournal journal(path);
        EXPECT_TRUE(journal.open(campaign, 3).empty());
    }
}

TEST(SweepJournal, RecordsCarryTheRealWallTime)
{
    ScratchDir scratch("journal-wall");
    const std::string path = scratch.sub("sweep.journal");
    SweepJournal journal(path);
    journal.open(ContentHash::of("c"), 1);
    journal.append("hash-a", "mcf/POM-TLB", "executed", 3.25,
                   fakeRun("mcf"));

    std::ifstream in(path);
    std::string header, record;
    std::getline(in, header);
    std::getline(in, record);
    const JsonValue head = JsonValue::parse(header);
    EXPECT_EQ(head.at("schema").asString(), kSweepJournalSchemaV1);
    const JsonValue rec = JsonValue::parse(record);
    EXPECT_EQ(rec.at("source").asString(), "executed");
    EXPECT_DOUBLE_EQ(rec.at("wall_seconds").asNumber(), 3.25);
}

// ----------------------------------------------------------------
// SweepService
// ----------------------------------------------------------------

TEST(SweepService, ColdRunMatchesThePlainRunnerByteForByte)
{
    const std::vector<ExperimentRequest> requests = quickRequests();
    SweepService service(SweepServiceOptions{});
    const JsonValue document = service.run(requests);

    std::vector<ExperimentResult> results =
        SweepRunner(1).run(requests);
    for (ExperimentResult &result : results)
        result.wallSeconds = 0.0; // the document's identity form
    EXPECT_EQ(document.dump(2),
              SweepResultWriter::toJson(results).dump(2));
    EXPECT_EQ(service.stats().jobs, requests.size());
    EXPECT_EQ(service.stats().executed, requests.size());
}

TEST(SweepService, WarmRunExecutesNothingAndIsByteIdentical)
{
    ScratchDir scratch("service-warm");
    const std::vector<ExperimentRequest> requests = quickRequests();

    SweepServiceOptions options;
    options.cacheDir = scratch.sub("cache");
    SweepService cold(options);
    const JsonValue first = cold.run(requests);
    EXPECT_EQ(cold.stats().executed, requests.size());

    SweepService warm(options);
    const JsonValue second = warm.run(requests);
    EXPECT_EQ(warm.stats().executed, 0u);
    EXPECT_EQ(warm.stats().cacheHits, requests.size());
    EXPECT_EQ(first.dump(2), second.dump(2));
}

TEST(SweepService, DuplicateJobsExecuteOnce)
{
    ScratchDir scratch("service-dedup");
    std::vector<ExperimentRequest> requests = quickRequests();
    requests.push_back(requests.front());

    SweepServiceOptions options;
    options.cacheDir = scratch.sub("cache");
    SweepService service(options);
    const JsonValue document = service.run(requests);
    EXPECT_EQ(service.stats().jobs, 3u);
    EXPECT_EQ(service.stats().executed, 2u);
    EXPECT_EQ(service.stats().deduplicated, 1u);
    EXPECT_EQ(document.at("runs").at(std::size_t{0}).dump(0),
              document.at("runs").at(std::size_t{2}).dump(0));
}

TEST(SweepService, EmitsEveryJobInRequestOrder)
{
    ScratchDir scratch("service-emit");
    const std::vector<ExperimentRequest> requests = quickRequests();
    SweepServiceOptions options;
    options.cacheDir = scratch.sub("cache");
    options.jobs = 2;

    std::vector<std::size_t> order;
    std::vector<std::string> sources;
    SweepService service(options);
    service.run(requests, [&](const SweepJobReport &report,
                              const JsonValue &run) {
        order.push_back(report.index);
        sources.push_back(jobSourceName(report.source));
        EXPECT_EQ(report.key, requests[report.index].key());
        EXPECT_EQ(report.hash, jobHash(requests[report.index]));
        EXPECT_EQ(run.at("benchmark").asString(),
                  requests[report.index].benchmark);
    });
    ASSERT_EQ(order.size(), requests.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        EXPECT_EQ(order[i], i);
    EXPECT_EQ(sources, (std::vector<std::string>{
                           "executed", "executed"}));

    SweepService warm(options);
    sources.clear();
    warm.run(requests,
             [&](const SweepJobReport &report, const JsonValue &) {
                 sources.push_back(jobSourceName(report.source));
                 EXPECT_EQ(report.wallSeconds, 0.0);
             });
    EXPECT_EQ(sources,
              (std::vector<std::string>{"cache", "cache"}));
}

TEST(SweepService, KilledCampaignResumesByteIdentical)
{
    ScratchDir scratch("service-crash");
    const std::vector<ExperimentRequest> requests = quickRequests();

    SweepServiceOptions options;
    options.cacheDir = scratch.sub("cache");
    options.journalPath = scratch.sub("sweep.journal");

    // Child: run the campaign with the crash hook armed — the
    // process vanishes (status 137, no flushes, no destructors)
    // right after the first journal append, like a SIGKILL landing
    // mid-campaign.
    const pid_t child = fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
        SweepServiceOptions crashing = options;
        crashing.crashAfterAppends = 1;
        SweepService service(crashing);
        service.run(requests);
        std::_Exit(0); // not reached: the hook fires first
    }
    int status = 0;
    ASSERT_EQ(::waitpid(child, &status, 0), child);
    ASSERT_TRUE(WIFEXITED(status));
    ASSERT_EQ(WEXITSTATUS(status), 137);

    // Parent: resume. The journaled job replays, only the
    // remainder executes.
    SweepService resumed(options);
    const JsonValue document = resumed.run(requests);
    EXPECT_EQ(resumed.stats().journalHits, 1u);
    EXPECT_EQ(resumed.stats().executed, requests.size() - 1);

    // The resumed document is byte-identical to an uninterrupted
    // run in a pristine cache.
    SweepServiceOptions pristine;
    pristine.cacheDir = scratch.sub("cache-reference");
    SweepService reference(pristine);
    EXPECT_EQ(document.dump(2), reference.run(requests).dump(2));
}

// ----------------------------------------------------------------
// ServeSession
// ----------------------------------------------------------------

/** Drive one serve session over a scripted request stream. */
std::vector<JsonValue>
serve(const std::string &script, const ServeOptions &options)
{
    std::istringstream in(script);
    std::ostringstream out;
    ServeSession session(in, out, options);
    session.runToCompletion();

    std::vector<JsonValue> events;
    std::istringstream lines(out.str());
    std::string line;
    while (std::getline(lines, line))
        events.push_back(JsonValue::parse(line));
    return events;
}

TEST(ServeSession, AnswersPingCatalogAndShutdown)
{
    const std::vector<JsonValue> events = serve(
        "{\"op\": \"ping\"}\n"
        "\n"
        "{\"op\": \"list\"}\n"
        "{\"op\": \"shutdown\"}\n"
        "{\"op\": \"ping\"}\n", // after shutdown: never read
        ServeOptions{});
    ASSERT_EQ(events.size(), 4u);
    for (const JsonValue &event : events)
        EXPECT_EQ(event.at("schema").asString(), kSweepServeSchemaV1);
    EXPECT_EQ(events[0].at("event").asString(), "ready");
    EXPECT_EQ(events[1].at("event").asString(), "pong");
    EXPECT_EQ(events[2].at("event").asString(), "catalog");
    EXPECT_EQ(events[2].at("benchmarks").size(),
              ProfileRegistry::names().size());
    EXPECT_EQ(events[2].at("schemes").size(),
              SchemeRegistry::global().names().size());
    EXPECT_EQ(events[3].at("event").asString(), "bye");
}

TEST(ServeSession, ReportsErrorsAndKeepsServing)
{
    const std::vector<JsonValue> events = serve(
        "this is not json\n"
        "{\"op\": \"warp\"}\n"
        "{\"op\": \"run\", \"benchmark\": \"nope\", "
        "\"scheme\": \"pom\"}\n"
        "{\"op\": \"ping\"}\n",
        ServeOptions{});
    ASSERT_EQ(events.size(), 5u);
    EXPECT_EQ(events[1].at("event").asString(), "error");
    EXPECT_EQ(events[2].at("event").asString(), "error");
    EXPECT_NE(events[2].at("message").asString().find("warp"),
              std::string::npos);
    EXPECT_EQ(events[3].at("event").asString(), "error");
    EXPECT_NE(events[3].at("message").asString().find("nope"),
              std::string::npos);
    EXPECT_EQ(events[4].at("event").asString(), "pong");
}

TEST(ServeSession, StreamsCampaignsAndServesRepeatsFromCache)
{
    ScratchDir scratch("serve-sweep");
    ServeOptions options;
    options.cacheDir = scratch.sub("cache");
    options.journalDir = scratch.sub("journals");

    const std::string request =
        "{\"op\": \"sweep\", \"benchmarks\": [\"mcf\"], "
        "\"schemes\": [\"pom\", \"baseline\"], \"cores\": 2, "
        "\"refs_per_core\": 400, \"warmup_refs_per_core\": 200}\n";

    const std::vector<JsonValue> first =
        serve(request + "{\"op\": \"shutdown\"}\n", options);
    // ready, two jobs, sweep-end, bye.
    ASSERT_EQ(first.size(), 5u);
    EXPECT_EQ(first[1].at("event").asString(), "job");
    EXPECT_EQ(first[1].at("index").asUint(), 0u);
    EXPECT_EQ(first[1].at("key").asString(), "mcf/POM-TLB");
    EXPECT_EQ(first[1].at("source").asString(), "executed");
    EXPECT_EQ(first[1].at("run").at("scheme").asString(),
              "POM-TLB");
    EXPECT_EQ(first[2].at("index").asUint(), 1u);
    EXPECT_EQ(first[3].at("event").asString(), "sweep-end");
    EXPECT_EQ(first[3].at("stats").at("executed").asUint(), 2u);

    const std::vector<JsonValue> second =
        serve(request + "{\"op\": \"stats\"}\n"
                        "{\"op\": \"shutdown\"}\n",
              options);
    ASSERT_EQ(second.size(), 6u);
    // The completed campaign's journal replays before the cache is
    // even consulted.
    EXPECT_EQ(second[1].at("source").asString(), "journal");
    EXPECT_EQ(second[2].at("source").asString(), "journal");
    EXPECT_EQ(second[3].at("stats").at("executed").asUint(), 0u);
    EXPECT_EQ(second[3].at("stats").at("journal_hits").asUint(),
              2u);
    EXPECT_EQ(second[4].at("event").asString(), "stats");
    // The streamed runs replay the first campaign's bytes exactly.
    EXPECT_EQ(first[1].at("run").dump(0),
              second[1].at("run").dump(0));
    EXPECT_EQ(first[2].at("run").dump(0),
              second[2].at("run").dump(0));
    // Both campaigns agree on the campaign identity.
    EXPECT_EQ(first[3].at("sweep_hash").asString(),
              second[3].at("sweep_hash").asString());
}

TEST(ServeSession, ScenarioOpStreamsAndReplaysScenarioJobs)
{
    ScratchDir scratch("serve-scenario");
    ServeOptions options;
    options.cacheDir = scratch.sub("cache");
    options.journalDir = scratch.sub("journals");

    const std::string request =
        "{\"op\": \"scenario\", \"tenants\": [1, 4], \"cores\": 2, "
        "\"refs_per_core\": 1000, \"warmup_refs_per_core\": 500, "
        "\"storm_interval_refs\": 400}\n";

    const std::vector<JsonValue> first =
        serve(request + "{\"op\": \"shutdown\"}\n", options);
    // ready, two scenario jobs, scenario-end, bye.
    ASSERT_EQ(first.size(), 5u);
    EXPECT_EQ(first[1].at("event").asString(), "scenario-job");
    EXPECT_EQ(first[1].at("name").asString(), "consolidation-1t");
    EXPECT_EQ(first[1].at("source").asString(), "executed");
    EXPECT_EQ(first[1].at("run").at("schema").asString(),
              kScenarioSchemaV1);
    EXPECT_EQ(first[2].at("name").asString(), "consolidation-4t");
    EXPECT_EQ(first[2].at("run").at("tenants").size(), 4u);
    EXPECT_EQ(first[3].at("event").asString(), "scenario-end");
    EXPECT_EQ(first[3].at("stats").at("executed").asUint(), 2u);

    // A repeat campaign replays the journal byte-for-byte.
    const std::vector<JsonValue> second =
        serve(request + "{\"op\": \"shutdown\"}\n", options);
    ASSERT_EQ(second.size(), 5u);
    EXPECT_EQ(second[1].at("source").asString(), "journal");
    EXPECT_EQ(first[1].at("run").dump(0),
              second[1].at("run").dump(0));
    EXPECT_EQ(first[2].at("run").dump(0),
              second[2].at("run").dump(0));
    EXPECT_EQ(first[3].at("campaign_hash").asString(),
              second[3].at("campaign_hash").asString());
}

TEST(ServeSession, RunOpIsSingleJobSugar)
{
    const std::vector<JsonValue> events = serve(
        "{\"op\": \"run\", \"benchmark\": \"mcf\", "
        "\"scheme\": \"pom\", \"cores\": 2, "
        "\"refs_per_core\": 400, \"warmup_refs_per_core\": 200}\n"
        "{\"op\": \"shutdown\"}\n",
        ServeOptions{});
    ASSERT_EQ(events.size(), 4u);
    EXPECT_EQ(events[1].at("event").asString(), "job");
    EXPECT_EQ(events[1].at("jobs").asUint(), 1u);
    EXPECT_EQ(events[2].at("event").asString(), "sweep-end");
}

// ----------------------------------------------------------------
// docs/sweep-service.md coverage
// ----------------------------------------------------------------

/** Every backticked token in docs/sweep-service.md. */
std::set<std::string>
documentedServiceTokens()
{
    const std::string path =
        std::string(POMTLB_SOURCE_DIR) + "/docs/sweep-service.md";
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "cannot open " << path;
    std::stringstream buffer;
    buffer << in.rdbuf();
    const std::string text = buffer.str();

    std::set<std::string> tokens;
    std::size_t pos = 0;
    while ((pos = text.find('`', pos)) != std::string::npos) {
        const std::size_t end = text.find('`', pos + 1);
        if (end == std::string::npos)
            break;
        tokens.insert(text.substr(pos + 1, end - pos - 1));
        pos = end + 1;
    }
    return tokens;
}

/**
 * Collect every object key of @p value into @p keys, recursively —
 * except below `run` members, whose contents are `pomtlb-sweep-v1`
 * entries documented field-by-field in docs/internals.md.
 */
void
collectKeys(const JsonValue &value, std::set<std::string> &keys)
{
    if (value.isObject()) {
        for (const auto &[key, member] : value.members()) {
            keys.insert(key);
            if (key != "run")
                collectKeys(member, keys);
        }
    } else if (value.isArray()) {
        for (const JsonValue &element : value.elements())
            collectKeys(element, keys);
    }
}

/**
 * The contract docs/sweep-service.md advertises: every field the
 * service layer emits — job-identity fields (the hash recipe),
 * cache-entry fields, journal fields, and serve-protocol fields —
 * is documented, as are all event, op, and source names.
 */
TEST(SweepServiceDoc, CoversEveryEmittedField)
{
    std::set<std::string> emitted;

    // The hash recipe: every job-identity field.
    collectKeys(jobIdentityJson(ExperimentRequest::of("mcf", "pom")
                                    .withComponentStats()),
                emitted);

    // Cache entries and journal records.
    ScratchDir scratch("doc-coverage");
    SweepCache cache(scratch.sub("cache"));
    const std::string hash = ContentHash::of("doc");
    cache.store(hash, "mcf/POM-TLB", fakeRun("mcf"));
    {
        std::ifstream in(cache.entryPath(hash));
        std::stringstream buffer;
        buffer << in.rdbuf();
        collectKeys(JsonValue::parse(buffer.str()), emitted);
    }
    {
        const std::string path = scratch.sub("sweep.journal");
        SweepJournal journal(path);
        journal.open(ContentHash::of("campaign"), 1);
        journal.append(hash, "mcf/POM-TLB", "executed", 1.0,
                       fakeRun("mcf"));
        std::ifstream in(path);
        std::string line;
        while (std::getline(in, line))
            collectKeys(JsonValue::parse(line), emitted);
    }

    // Serve-protocol events, from a session exercising every op.
    ServeOptions options;
    options.cacheDir = scratch.sub("serve-cache");
    options.journalDir = scratch.sub("serve-journals");
    const std::vector<JsonValue> events = serve(
        "{\"op\": \"ping\"}\n"
        "{\"op\": \"list\"}\n"
        "{\"op\": \"run\", \"benchmark\": \"mcf\", "
        "\"scheme\": \"pom\", \"cores\": 2, "
        "\"refs_per_core\": 400, \"warmup_refs_per_core\": 200}\n"
        "{\"op\": \"scenario\", \"tenants\": 1, \"cores\": 2, "
        "\"refs_per_core\": 400, \"warmup_refs_per_core\": 200}\n"
        "{\"op\": \"stats\"}\n"
        "{\"op\": \"nonsense\"}\n"
        "{\"op\": \"shutdown\"}\n",
        options);
    std::set<std::string> eventNames;
    for (const JsonValue &event : events) {
        collectKeys(event, emitted);
        eventNames.insert(event.at("event").asString());
    }
    // The scripted session above must have produced every event
    // kind the protocol defines.
    EXPECT_EQ(eventNames,
              (std::set<std::string>{"ready", "pong", "catalog",
                                     "job", "sweep-end",
                                     "scenario-job", "scenario-end",
                                     "stats", "error", "bye"}));

    // Names that are part of the vocabulary, not JSON keys.
    for (const char *name :
         {"ping", "list", "sweep", "run", "scenario", "shutdown",
          "op", "executed", "cache", "journal", kSweepCacheSchemaV1,
          kSweepJournalSchemaV1, kSweepServeSchemaV1})
        emitted.insert(name);
    for (const std::string &name : eventNames)
        emitted.insert(name);

    ASSERT_GT(emitted.size(), 80u);
    const std::set<std::string> tokens = documentedServiceTokens();
    for (const std::string &name : emitted) {
        EXPECT_TRUE(tokens.count(name))
            << "field '" << name
            << "' is not documented in docs/sweep-service.md";
    }
}

} // namespace
} // namespace pomtlb

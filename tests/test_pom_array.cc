/**
 * @file
 * POM-TLB partition tests: associative search, the 2-bit in-attr LRU
 * replacement of Section 2.2, and shootdowns.
 */

#include <gtest/gtest.h>

#include "pomtlb/array.hh"

namespace pomtlb
{
namespace
{

TEST(PomArray, InsertLookup)
{
    PomTlbPartition part("p", 16, 4);
    part.insert(3, 0x100, 1, 2, PageSize::Small4K, 0x900);
    const PomTlbArrayResult hit =
        part.lookup(3, 0x100, 1, 2, PageSize::Small4K);
    EXPECT_TRUE(hit.hit);
    EXPECT_EQ(hit.pfn, 0x900u);
    EXPECT_EQ(part.validEntryCount(), 1u);
}

TEST(PomArray, MissOnWrongTag)
{
    PomTlbPartition part("p", 16, 4);
    part.insert(3, 0x100, 1, 2, PageSize::Small4K, 0x900);
    EXPECT_FALSE(part.lookup(3, 0x101, 1, 2, PageSize::Small4K).hit);
    EXPECT_FALSE(part.lookup(3, 0x100, 2, 2, PageSize::Small4K).hit);
    EXPECT_FALSE(part.lookup(3, 0x100, 1, 3, PageSize::Small4K).hit);
}

TEST(PomArray, FourWayCapacityPerSet)
{
    PomTlbPartition part("p", 16, 4);
    for (PageNum vpn = 0; vpn < 4; ++vpn)
        part.insert(0, vpn, 1, 1, PageSize::Small4K, vpn + 100);
    for (PageNum vpn = 0; vpn < 4; ++vpn)
        EXPECT_TRUE(part.lookup(0, vpn, 1, 1, PageSize::Small4K).hit);
    EXPECT_EQ(part.validEntryCount(), 4u);
}

TEST(PomArray, LruBitsPickOldestVictim)
{
    PomTlbPartition part("p", 16, 4);
    for (PageNum vpn = 0; vpn < 4; ++vpn)
        part.insert(0, vpn, 1, 1, PageSize::Small4K, vpn);
    // Touch 0 so it is youngest; 1 becomes the saturated-oldest.
    part.lookup(0, 0, 1, 1, PageSize::Small4K);
    part.insert(0, 99, 1, 1, PageSize::Small4K, 99);
    EXPECT_TRUE(part.lookup(0, 0, 1, 1, PageSize::Small4K).hit);
    EXPECT_FALSE(part.lookup(0, 1, 1, 1, PageSize::Small4K).hit);
    EXPECT_TRUE(part.lookup(0, 99, 1, 1, PageSize::Small4K).hit);
}

TEST(PomArray, ReinsertRefreshesInPlace)
{
    PomTlbPartition part("p", 16, 4);
    part.insert(0, 7, 1, 1, PageSize::Small4K, 10);
    part.insert(0, 7, 1, 1, PageSize::Small4K, 11);
    EXPECT_EQ(part.validEntryCount(), 1u);
    EXPECT_EQ(part.lookup(0, 7, 1, 1, PageSize::Small4K).pfn, 11u);
}

TEST(PomArray, InvalidatePage)
{
    PomTlbPartition part("p", 16, 4);
    part.insert(0, 7, 1, 1, PageSize::Small4K, 10);
    EXPECT_TRUE(part.invalidatePage(0, 7, 1, 1, PageSize::Small4K));
    EXPECT_FALSE(part.lookup(0, 7, 1, 1, PageSize::Small4K).hit);
    EXPECT_FALSE(part.invalidatePage(0, 7, 1, 1, PageSize::Small4K));
    EXPECT_EQ(part.validEntryCount(), 0u);
}

TEST(PomArray, InvalidateVm)
{
    PomTlbPartition part("p", 16, 4);
    part.insert(0, 7, 1, 1, PageSize::Small4K, 10);
    part.insert(1, 8, 1, 1, PageSize::Small4K, 11);
    part.insert(2, 9, 2, 1, PageSize::Small4K, 12);
    EXPECT_EQ(part.invalidateVm(1), 2u);
    EXPECT_EQ(part.validEntryCount(), 1u);
    EXPECT_TRUE(part.lookup(2, 9, 2, 1, PageSize::Small4K).hit);
}

TEST(PomArray, HitRateAndReset)
{
    PomTlbPartition part("p", 16, 4);
    part.insert(0, 7, 1, 1, PageSize::Small4K, 10);
    part.lookup(0, 7, 1, 1, PageSize::Small4K);
    part.lookup(0, 8, 1, 1, PageSize::Small4K);
    EXPECT_DOUBLE_EQ(part.hitRate(), 0.5);
    part.resetStats();
    EXPECT_EQ(part.hits(), 0u);
    EXPECT_EQ(part.misses(), 0u);
}

TEST(PomArray, MultiVmEntriesSameSet)
{
    // Section 5.2: the large TLB retains translations of many VMs.
    PomTlbPartition part("p", 16, 4);
    for (VmId vm = 1; vm <= 4; ++vm)
        part.insert(5, 0x42, vm, 1, PageSize::Small4K, vm * 10);
    for (VmId vm = 1; vm <= 4; ++vm) {
        const PomTlbArrayResult hit =
            part.lookup(5, 0x42, vm, 1, PageSize::Small4K);
        EXPECT_TRUE(hit.hit);
        EXPECT_EQ(hit.pfn, static_cast<PageNum>(vm) * 10);
    }
}

} // namespace
} // namespace pomtlb

/**
 * @file
 * Cross-module integration tests: end-to-end properties of the full
 * machine that individual unit tests cannot see.
 */

#include <gtest/gtest.h>

#include "sim/experiment.hh"
#include "sim/machine.hh"
#include "sim/perf_model.hh"

namespace pomtlb
{
namespace
{

ExperimentConfig
integrationConfig()
{
    ExperimentConfig config;
    config.system.numCores = 2;
    config.engine.refsPerCore = 30000;
    config.engine.warmupRefsPerCore = 20000;
    return config;
}

TEST(Integration, AllSchemesTranslateIdentically)
{
    // Whatever the scheme, the same (vm, pid, vaddr) must resolve to
    // the same host frame for the same machine seed: translation is
    // a function of the memory map, not of the caching scheme.
    SystemConfig config = SystemConfig::table1();
    config.numCores = 1;
    const Addr vaddr = 0x123456789;

    std::vector<HostPhysAddr> results;
    for (const std::string scheme :
         {"Baseline", "POM-TLB", "Shared_L2", "TSB"}) {
        Machine machine(config, scheme);
        const MmuResult result = machine.mmu(0).translate(
            vaddr, PageSize::Small4K, 1, 1, 0);
        results.push_back(result.hpa);
    }
    for (std::size_t i = 1; i < results.size(); ++i)
        EXPECT_EQ(results[i], results[0]);
}

TEST(Integration, RepeatedTranslationIsStable)
{
    SystemConfig config = SystemConfig::table1();
    config.numCores = 1;
    Machine machine(config, "POM-TLB");
    const Addr vaddr = 0xabc123456;
    const MmuResult first = machine.mmu(0).translate(
        vaddr, PageSize::Small4K, 1, 1, 0);
    for (Cycles t = 100; t < 2000; t += 100) {
        const MmuResult again = machine.mmu(0).translate(
            vaddr, PageSize::Small4K, 1, 1, t);
        EXPECT_EQ(again.hpa, first.hpa);
    }
}

TEST(Integration, PomTlbEliminatesNearlyAllWalks)
{
    // Section 4.6 / conclusion: "99% of the page walks can be
    // eliminated by a very large TLB of size 16 MB".
    const SchemeRunSummary pom = runScheme(
        ProfileRegistry::byName("mcf"), "POM-TLB",
        integrationConfig());
    EXPECT_LT(pom.walkFraction, 0.01);
}

TEST(Integration, Figure8OrderingOnMcf)
{
    const BenchmarkComparison comparison = compareSchemes(
        ProfileRegistry::byName("mcf"), integrationConfig());
    // POM-TLB beats both prior schemes on the paper's strongest
    // benchmark.
    const double pom =
        comparison.delta("POM-TLB").improvementPct;
    EXPECT_GT(pom, comparison.delta("TSB").improvementPct);
    EXPECT_GT(pom, 2.0);
}

TEST(Integration, CachedEntriesAreWhatMakePomFast)
{
    // Figure 12's mechanism: with caching disabled, the average POM
    // penalty rises.
    ExperimentConfig cached = integrationConfig();
    ExperimentConfig uncached = integrationConfig();
    uncached.system.pomTlb.cacheable = false;

    const SchemeRunSummary with_cache = runScheme(
        ProfileRegistry::byName("mcf"), "POM-TLB", cached);
    const SchemeRunSummary without_cache = runScheme(
        ProfileRegistry::byName("mcf"), "POM-TLB",
        uncached);
    EXPECT_LT(with_cache.avgPenaltyPerMiss,
              without_cache.avgPenaltyPerMiss);
    // Caching changes latency, not the number of page walks.
    EXPECT_NEAR(with_cache.walkFraction, without_cache.walkFraction,
                0.01);
}

TEST(Integration, DataCachesStillServeData)
{
    // Caching TLB entries must not wreck the data path: the L3 data
    // hit rate stays meaningful under the POM scheme.
    const SchemeRunSummary pom = runScheme(
        ProfileRegistry::byName("mcf"), "POM-TLB",
        integrationConfig());
    EXPECT_GT(pom.l3DataHitRate, 0.0);
}

TEST(Integration, MultiVmConsolidationKeepsHitRates)
{
    // Section 5.2: the POM-TLB retains translations of multiple VMs.
    ExperimentConfig config = integrationConfig();
    config.engine.coreVm = {1, 2};
    const SchemeRunSummary summary = runScheme(
        ProfileRegistry::byName("canneal"), "POM-TLB",
        config);
    EXPECT_LT(summary.walkFraction, 0.02);
}

TEST(Integration, SizePredictorAccurateEndToEnd)
{
    const SchemeRunSummary pom = runScheme(
        ProfileRegistry::byName("mcf"), "POM-TLB",
        integrationConfig());
    // Section 4.3: ~95% average; individual benchmarks vary.
    EXPECT_GT(pom.sizePredictorAccuracy, 0.8);
}

TEST(Integration, CapacityInsensitivity)
{
    // Section 4.6: halving/doubling the 16 MB capacity changes the
    // improvement by under ~1 percentage point.
    ExperimentConfig config = integrationConfig();
    const double at16 = pomImprovementOnly(
        ProfileRegistry::byName("mcf"), config);
    config.system.pomTlb.capacityBytes = 8 * 1024 * 1024;
    const double at8 = pomImprovementOnly(
        ProfileRegistry::byName("mcf"), config);
    EXPECT_NEAR(at16, at8, 1.5);
}

TEST(Integration, StatDumpCoversMachine)
{
    SystemConfig config = SystemConfig::table1();
    config.numCores = 1;
    Machine machine(config, "POM-TLB");
    machine.mmu(0).translate(0x1234000, PageSize::Small4K, 1, 1, 0);

    std::vector<std::pair<std::string, double>> stats;
    machine.mainMemory().stats().collect(stats);
    machine.dieStackedMemory().stats().collect(stats);
    machine.hierarchy().l3d().stats().collect(stats);
    EXPECT_GT(stats.size(), 10u);
}

} // namespace
} // namespace pomtlb

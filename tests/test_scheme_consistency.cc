/**
 * @file
 * Cross-scheme consistency properties under random stimulus: every
 * translation scheme is a different *cache* of the same underlying
 * page tables, so every registered scheme must return identical host
 * frames for any interleaving of translations, shootdowns and page
 * sizes. The suite iterates the registry, so new plug-in schemes are
 * covered automatically.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.hh"
#include "sim/machine.hh"
#include "sim/scheme_registry.hh"

namespace pomtlb
{
namespace
{

struct Stimulus
{
    Addr vaddr;
    PageSize size;
    VmId vm;
    ProcessId pid;
    bool shootdown;
};

std::vector<Stimulus>
makeStimulus(std::uint64_t seed, int count)
{
    Rng rng(seed);
    std::vector<Stimulus> stimulus;
    std::vector<Stimulus> pages; // previously touched, for revisits
    for (int i = 0; i < count; ++i) {
        Stimulus s;
        if (!pages.empty() && rng.chance(0.5)) {
            s = pages[rng.below(pages.size())];
            s.shootdown = rng.chance(0.05);
        } else {
            const bool large = rng.chance(0.3);
            s.size = large ? PageSize::Large2M : PageSize::Small4K;
            // Keep 4 KB pages out of 2 MB-page regions: region
            // [0, 1 GB) is small-page territory, [1 GB, 2 GB) large.
            if (large) {
                s.vaddr = (Addr{1} << 30) +
                          pageBase(rng.below(Addr{1} << 30),
                                   PageSize::Large2M);
            } else {
                s.vaddr = pageBase(rng.below(Addr{1} << 30),
                                   PageSize::Small4K);
            }
            s.vm = static_cast<VmId>(1 + rng.below(2));
            s.pid = static_cast<ProcessId>(1 + rng.below(2));
            s.shootdown = false;
            pages.push_back(s);
        }
        stimulus.push_back(s);
    }
    return stimulus;
}

class SchemeConsistencyTest
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(SchemeConsistencyTest, AllSchemesAgreeUnderChurn)
{
    const std::vector<Stimulus> stimulus =
        makeStimulus(GetParam(), 3000);

    SystemConfig config = SystemConfig::table1();
    config.numCores = 2;

    // Drive every registered scheme with the identical stimulus and
    // collect the translation each returns.
    const std::vector<std::string> schemes =
        SchemeRegistry::global().names();
    ASSERT_GE(schemes.size(), 4u);
    std::vector<std::vector<HostPhysAddr>> results;
    for (const std::string &scheme_name : schemes) {
        Machine machine(config, scheme_name);
        std::vector<HostPhysAddr> translations;
        Cycles now = 0;
        CoreId core = 0;
        for (const Stimulus &s : stimulus) {
            if (s.shootdown) {
                machine.shootdownPage(s.vaddr, s.size, s.vm, s.pid);
                continue;
            }
            const MmuResult result = machine.mmu(core).translate(
                s.vaddr, s.size, s.vm, s.pid, now);
            translations.push_back(result.hpa);
            now += 50;
            core = (core + 1) % config.numCores;
        }
        results.push_back(std::move(translations));
    }

    for (std::size_t scheme = 1; scheme < results.size(); ++scheme) {
        ASSERT_EQ(results[scheme].size(), results[0].size());
        for (std::size_t i = 0; i < results[0].size(); ++i) {
            ASSERT_EQ(results[scheme][i], results[0][i])
                << "scheme " << schemes[scheme]
                << " diverged at stimulus " << i;
        }
    }
}

TEST_P(SchemeConsistencyTest, ShootdownNeverChangesTranslation)
{
    // A shootdown drops cached state; the subsequent re-walk must
    // reproduce the same frame (the OS mapping did not change).
    Rng rng(GetParam());
    SystemConfig config = SystemConfig::table1();
    config.numCores = 1;
    Machine machine(config, "POM-TLB");

    for (int i = 0; i < 200; ++i) {
        const Addr vaddr =
            pageBase(rng.below(Addr{1} << 32), PageSize::Small4K);
        const MmuResult before = machine.mmu(0).translate(
            vaddr, PageSize::Small4K, 1, 1, i * 100);
        machine.shootdownPage(vaddr, PageSize::Small4K, 1, 1);
        const MmuResult after = machine.mmu(0).translate(
            vaddr, PageSize::Small4K, 1, 1, i * 100 + 50);
        ASSERT_EQ(before.hpa, after.hpa);
        ASSERT_TRUE(after.walked);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchemeConsistencyTest,
                         ::testing::Values(11, 29, 53));

} // namespace
} // namespace pomtlb

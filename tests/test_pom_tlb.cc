/**
 * @file
 * POM-TLB device tests: timed DRAM lookups, untimed set search,
 * installs, shootdowns, and row-buffer behaviour of adjacent sets.
 */

#include <gtest/gtest.h>

#include "pomtlb/pom_tlb.hh"

namespace pomtlb
{
namespace
{

class PomTlbTest : public ::testing::Test
{
  protected:
    PomTlbTest()
    {
        config.validate();
        DramConfig die = DramConfig::dieStacked();
        die.coreFreqGhz = 4.0;
        dram = std::make_unique<DramController>(die);
        pom = std::make_unique<PomTlb>(config, *dram);
    }

    PomTlbConfig config;
    std::unique_ptr<DramController> dram;
    std::unique_ptr<PomTlb> pom;
};

TEST_F(PomTlbTest, MissThenInstallThenHit)
{
    const Addr vaddr = 0x123456000;
    const PomTlbDeviceResult miss =
        pom->lookupDram(vaddr, 1, 1, PageSize::Small4K, 0);
    EXPECT_FALSE(miss.hit);
    EXPECT_GT(miss.cycles, 0u);

    pom->install(vaddr, 1, 1, PageSize::Small4K, 0x777, 1000);
    const PomTlbDeviceResult hit =
        pom->lookupDram(vaddr, 1, 1, PageSize::Small4K, 2000);
    EXPECT_TRUE(hit.hit);
    EXPECT_EQ(hit.pfn, 0x777u);
}

TEST_F(PomTlbTest, PartitionsAreIndependent)
{
    const Addr vaddr = 0x40000000;
    pom->install(vaddr, 1, 1, PageSize::Large2M, 0x9, 0);
    EXPECT_FALSE(
        pom->lookupDram(vaddr, 1, 1, PageSize::Small4K, 100).hit);
    EXPECT_TRUE(
        pom->lookupDram(vaddr, 1, 1, PageSize::Large2M, 200).hit);
}

TEST_F(PomTlbTest, SearchSetIsUntimed)
{
    const Addr vaddr = 0x123456000;
    pom->installUntimed(vaddr, 1, 1, PageSize::Small4K, 0x777);
    const std::uint64_t before = dram->accessCount();
    const PomTlbArrayResult search =
        pom->searchSet(vaddr, 1, 1, PageSize::Small4K);
    EXPECT_TRUE(search.hit);
    EXPECT_EQ(search.pfn, 0x777u);
    EXPECT_EQ(dram->accessCount(), before);
}

TEST_F(PomTlbTest, SetAddressInPartitionRange)
{
    const Addr small =
        pom->setAddress(0x123456000, 1, PageSize::Small4K);
    const Addr large =
        pom->setAddress(0x123456000, 1, PageSize::Large2M);
    EXPECT_EQ(pom->addrMap().partitionOf(small), PageSize::Small4K);
    EXPECT_EQ(pom->addrMap().partitionOf(large), PageSize::Large2M);
}

TEST_F(PomTlbTest, AdjacentPagesHitSameDramRow)
{
    // Section 4.4: consecutive VPNs map to consecutive sets, which
    // share a 2 KB DRAM row (32 sets per row).
    pom->lookupDram(0x10000000, 1, 1, PageSize::Small4K, 0);
    const PomTlbDeviceResult next =
        pom->lookupDram(0x10001000, 1, 1, PageSize::Small4K, 1000);
    EXPECT_EQ(next.rowBuffer, RowBufferOutcome::Hit);
}

TEST_F(PomTlbTest, InvalidatePageAndVm)
{
    const Addr vaddr = 0x123456000;
    pom->installUntimed(vaddr, 1, 1, PageSize::Small4K, 1);
    pom->installUntimed(vaddr, 2, 1, PageSize::Small4K, 2);
    EXPECT_TRUE(pom->invalidatePage(vaddr, 1, 1, PageSize::Small4K));
    EXPECT_FALSE(
        pom->searchSet(vaddr, 1, 1, PageSize::Small4K).hit);
    EXPECT_TRUE(pom->searchSet(vaddr, 2, 1, PageSize::Small4K).hit);
    EXPECT_EQ(pom->invalidateVm(2), 1u);
}

TEST_F(PomTlbTest, HitRateAcrossPartitions)
{
    pom->installUntimed(0x1000, 1, 1, PageSize::Small4K, 1);
    pom->searchSet(0x1000, 1, 1, PageSize::Small4K); // hit
    pom->searchSet(0x2000, 1, 1, PageSize::Small4K); // miss
    EXPECT_DOUBLE_EQ(pom->hitRate(), 0.5);
    pom->resetStats();
    EXPECT_DOUBLE_EQ(pom->hitRate(), 0.0);
}

TEST_F(PomTlbTest, CapacityScalesWithConfig)
{
    PomTlbConfig big = config;
    big.capacityBytes = 32 * 1024 * 1024;
    PomTlb bigger(big, *dram);
    EXPECT_EQ(bigger.partition(PageSize::Small4K).setCount(),
              2 * pom->partition(PageSize::Small4K).setCount());
}

} // namespace
} // namespace pomtlb

/**
 * @file
 * End-to-end smoke tests of the exact flows the examples and CLI
 * drive, kept fast enough for CI: each test mirrors one user-facing
 * entry point so a regression there fails here first.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "sim/engine.hh"
#include "sim/experiment.hh"
#include "sim/perf_model.hh"
#include "trace/source.hh"
#include "trace/trace_file.hh"

namespace pomtlb
{
namespace
{

ExperimentConfig
smokeConfig()
{
    ExperimentConfig config;
    config.system.numCores = 2;
    config.engine.refsPerCore = 5000;
    config.engine.warmupRefsPerCore = 5000;
    return config;
}

TEST(PipelineSmoke, QuickstartFlow)
{
    // examples/quickstart.cpp in miniature.
    const ExperimentConfig config = smokeConfig();
    const BenchmarkProfile &profile = ProfileRegistry::byName("mcf");
    const SchemeRunSummary baseline =
        runScheme(profile, "Baseline", config);
    const SchemeRunSummary pom =
        runScheme(profile, "POM-TLB", config);
    const double ratio =
        static_cast<double>(pom.translationCycles) /
        static_cast<double>(baseline.translationCycles);
    const double improvement = PerfModel::improvementPct(
        profile, config.system.mode, ratio);
    EXPECT_GT(improvement, 0.0);
    EXPECT_LT(improvement, profile.overheadVirtualPct * 1.5);
}

TEST(PipelineSmoke, CapacityExplorerFlow)
{
    // examples/capacity_explorer.cpp in miniature: two capacities,
    // neither may break and the bigger may not walk more.
    ExperimentConfig config = smokeConfig();
    const BenchmarkProfile &profile =
        ProfileRegistry::byName("gups");
    config.system.pomTlb.capacityBytes = 2 << 20;
    const SchemeRunSummary small =
        runScheme(profile, "POM-TLB", config);
    config.system.pomTlb.capacityBytes = 32 << 20;
    const SchemeRunSummary big =
        runScheme(profile, "POM-TLB", config);
    EXPECT_LE(big.walkFraction, small.walkFraction + 1e-9);
}

TEST(PipelineSmoke, MixedTenantsFlow)
{
    // examples/mixed_tenants.cpp in miniature: heterogeneous
    // per-core sources in different VMs on one machine.
    ExperimentConfig config = smokeConfig();
    config.engine.coreVm = {1, 2};
    Machine machine(config.system, "POM-TLB");
    std::vector<std::unique_ptr<TraceSource>> sources;
    sources.push_back(std::make_unique<GeneratorSource>(
        ProfileRegistry::byName("mcf"), 0, 42));
    sources.push_back(std::make_unique<GeneratorSource>(
        ProfileRegistry::byName("gups"), 1, 42));
    SimulationEngine engine(machine,
                            ProfileRegistry::byName("mcf"),
                            config.engine, std::move(sources));
    const RunResult result = engine.run();
    EXPECT_EQ(result.cores.size(), 2u);
    EXPECT_LT(result.totals().walkFraction, 0.05);
    EXPECT_EQ(machine.memoryMap().vmCount(), 2u);
}

TEST(PipelineSmoke, RecordReplayFlow)
{
    // tools/pomtlb_cli.cc record-trace + replay-trace in miniature.
    const std::string path =
        ::testing::TempDir() + "pipeline_smoke.pomt";
    {
        TraceGenerator generator(
            ProfileRegistry::byName("canneal"), 0, 42);
        recordTrace(generator, path, 12000);
    }
    ExperimentConfig config = smokeConfig();
    Machine machine(config.system, "POM-TLB");
    std::vector<std::unique_ptr<TraceSource>> sources;
    sources.push_back(std::make_unique<FileSource>(path));
    sources.push_back(std::make_unique<FileSource>(path));
    SimulationEngine engine(machine,
                            ProfileRegistry::byName("canneal"),
                            config.engine, std::move(sources));
    const RunResult result = engine.run();
    EXPECT_EQ(result.totals().refs, 10000u);
    std::remove(path.c_str());
}

TEST(PipelineSmoke, CompareFlowOrdering)
{
    // tools `compare` in miniature: four schemes, baseline cost
    // ratio exactly 1.
    const BenchmarkComparison comparison = compareSchemes(
        ProfileRegistry::byName("canneal"), smokeConfig());
    EXPECT_DOUBLE_EQ(
        comparison.delta("Baseline").costRatio, 1.0);
    const SchemeDelta &pom = comparison.delta("POM-TLB");
    EXPECT_GT(pom.costRatio, 0.0);
    EXPECT_LT(pom.costRatio, 1.5);
    EXPECT_GT(comparison.delta("Shared_L2").costRatio, 0.0);
    EXPECT_GT(comparison.delta("TSB").costRatio, 0.0);
}

} // namespace
} // namespace pomtlb

/**
 * @file
 * Unit and statistical tests for the deterministic RNG and the Zipf
 * generator.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hh"

namespace pomtlb
{
namespace
{

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(1234);
    Rng b(1234);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next() == b.next())
            ++equal;
    }
    EXPECT_EQ(equal, 0);
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(99);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, InRangeInclusive)
{
    Rng rng(7);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        const std::uint64_t v = rng.inRange(3, 5);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 5u);
        saw_lo = saw_lo || v == 3;
        saw_hi = saw_hi || v == 5;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIsRoughlyUniform)
{
    Rng rng(42);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, ChanceEdgeCases)
{
    Rng rng(5);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, ChanceFrequencyMatchesProbability)
{
    Rng rng(5);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += rng.chance(0.3) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, GeometricGapMeanApproximatesTarget)
{
    Rng rng(8);
    const double target = 6.0;
    double sum = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        const std::uint64_t gap = rng.geometricGap(target);
        EXPECT_GE(gap, 1u);
        sum += static_cast<double>(gap);
    }
    EXPECT_NEAR(sum / n, target, 0.5);
}

TEST(Rng, GeometricGapDegenerateMean)
{
    Rng rng(8);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rng.geometricGap(1.0), 1u);
}

TEST(Rng, ForkProducesIndependentStream)
{
    Rng parent(11);
    Rng child = parent.fork(1);
    Rng parent2(11);
    Rng child2 = parent2.fork(2);
    // Different stream ids should produce different sequences.
    EXPECT_NE(child.next(), child2.next());
}

TEST(Zipf, HeadIsHot)
{
    Rng rng(3);
    ZipfGenerator zipf(10000, 0.8);
    std::vector<std::uint64_t> counts(10000, 0);
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        ++counts[zipf.next(rng)];
    // Item 0 must be the hottest by a wide margin over the median.
    EXPECT_GT(counts[0], counts[5000] * 10);
    // The head should carry a sizable fraction of the mass.
    std::uint64_t head = 0;
    for (int i = 0; i < 100; ++i)
        head += counts[i];
    EXPECT_GT(static_cast<double>(head) / n, 0.15);
}

TEST(Zipf, StaysInRange)
{
    Rng rng(4);
    ZipfGenerator zipf(37, 0.6);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(zipf.next(rng), 37u);
}

TEST(Zipf, SingleItem)
{
    Rng rng(4);
    ZipfGenerator zipf(1, 0.5);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(zipf.next(rng), 0u);
}

} // namespace
} // namespace pomtlb

/**
 * @file
 * Trace-generator tests: determinism, footprint confinement, page-size
 * stability, pattern-specific locality properties, and the
 * rate-vs-multithreaded address-space rules.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <unordered_set>
#include <vector>

#include "trace/generator.hh"

namespace pomtlb
{
namespace
{

TEST(Generator, DeterministicPerCoreAndSeed)
{
    const auto &profile = ProfileRegistry::byName("mcf");
    TraceGenerator a(profile, 0, 42);
    TraceGenerator b(profile, 0, 42);
    for (int i = 0; i < 1000; ++i) {
        const TraceRecord ra = a.next();
        const TraceRecord rb = b.next();
        EXPECT_EQ(ra.vaddr, rb.vaddr);
        EXPECT_EQ(ra.instGap, rb.instGap);
        EXPECT_EQ(ra.type, rb.type);
        EXPECT_EQ(ra.pageSize, rb.pageSize);
    }
}

TEST(Generator, DifferentCoresDiverge)
{
    const auto &profile = ProfileRegistry::byName("gups");
    TraceGenerator a(profile, 0, 42);
    TraceGenerator b(profile, 1, 42);
    int same = 0;
    for (int i = 0; i < 1000; ++i) {
        if (a.next().vaddr == b.next().vaddr)
            ++same;
    }
    EXPECT_LT(same, 10);
}

TEST(Generator, AddressesStayInFootprint)
{
    for (const auto &profile : ProfileRegistry::all()) {
        TraceGenerator gen(profile, 2, 7);
        const Addr base = gen.footprintBase();
        const Addr size = gen.footprintSize();
        for (int i = 0; i < 5000; ++i) {
            const Addr vaddr = gen.next().vaddr;
            EXPECT_GE(vaddr, base) << profile.name;
            EXPECT_LT(vaddr, base + size) << profile.name;
        }
    }
}

TEST(Generator, PageSizeIsRegionStable)
{
    const auto &profile = ProfileRegistry::byName("mcf");
    TraceGenerator gen(profile, 0, 42);
    for (int i = 0; i < 5000; ++i) {
        const TraceRecord record = gen.next();
        // The record's size must equal the deterministic region size.
        EXPECT_EQ(record.pageSize, gen.pageSizeOf(record.vaddr));
    }
}

TEST(Generator, LargePageFractionApproximatesProfile)
{
    const auto &profile = ProfileRegistry::byName("zeusmp"); // 72.1%
    // Sample the region maps of several rate-mode copies (page sizes
    // are clustered, so one copy's footprint is a coarse sample).
    std::uint64_t large = 0;
    std::uint64_t regions = 0;
    for (CoreId core = 0; core < 8; ++core) {
        TraceGenerator gen(profile, core, 42);
        const std::uint64_t core_regions =
            gen.footprintSize() >> largePageShift;
        for (std::uint64_t r = 0; r < core_regions; ++r) {
            ++regions;
            if (gen.pageSizeOf(gen.footprintBase() +
                               (r << largePageShift)) ==
                PageSize::Large2M) {
                ++large;
            }
        }
    }
    EXPECT_NEAR(static_cast<double>(large) / regions, 0.721, 0.15);
}

TEST(Generator, RateModeCoresGetDisjointRegions)
{
    const auto &profile = ProfileRegistry::byName("mcf");
    TraceGenerator a(profile, 0, 42);
    TraceGenerator b(profile, 1, 42);
    EXPECT_NE(a.footprintBase(), b.footprintBase());
    const Addr a_end = a.footprintBase() + a.footprintSize();
    EXPECT_LE(a_end, b.footprintBase());
}

TEST(Generator, MultithreadedCoresShareFootprint)
{
    const auto &profile = ProfileRegistry::byName("gups");
    TraceGenerator a(profile, 0, 42);
    TraceGenerator b(profile, 1, 42);
    EXPECT_EQ(a.footprintBase(), b.footprintBase());
    EXPECT_EQ(a.footprintSize(), b.footprintSize());
}

TEST(Generator, StreamingSweepsForward)
{
    const auto &profile = ProfileRegistry::byName("streamcluster");
    TraceGenerator gen(profile, 0, 42);
    // A sweep touches pages at roughly stride/page_size per
    // reference; distinct-page coverage of a window must reflect
    // that (uniform or hot-set patterns would look very different).
    std::unordered_set<Addr> pages;
    const int n = 40000;
    for (int i = 0; i < n; ++i)
        pages.insert(gen.next().vaddr >> smallPageShift);
    const double sweep_pages_per_ref =
        static_cast<double>(profile.streamStrideBytes) /
        smallPageBytes;
    const double expected = n * sweep_pages_per_ref;
    EXPECT_GT(static_cast<double>(pages.size()), expected * 0.4);
    EXPECT_LT(static_cast<double>(pages.size()), expected * 1.6);
}

TEST(Generator, UniformRandomHasHugePageSpread)
{
    const auto &profile = ProfileRegistry::byName("gups");
    TraceGenerator gen(profile, 0, 42);
    std::unordered_set<Addr> pages;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        pages.insert(gen.next().vaddr >> smallPageShift);
    // Uniform draws over a 128 MB footprint rarely repeat pages.
    EXPECT_GT(pages.size(), static_cast<std::size_t>(n) * 6 / 10);
}

TEST(Generator, PointerChaseRevisitsHotSet)
{
    const auto &profile = ProfileRegistry::byName("mcf");
    TraceGenerator gen(profile, 0, 42);
    std::unordered_set<Addr> pages;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        pages.insert(gen.next().vaddr >> smallPageShift);
    // Hot-set revisits keep the distinct page count well below the
    // reference count.
    EXPECT_LT(pages.size(), static_cast<std::size_t>(n) / 3);
}

TEST(Generator, MixedPhasesAlternate)
{
    const auto &profile = ProfileRegistry::byName("soplex");
    TraceGenerator gen(profile, 0, 42);
    // Over several phase lengths, both streaming-like and
    // hotspot-like behaviour must appear: the distinct-page coverage
    // of 20k-reference windows should vary materially between
    // phases.
    std::vector<std::size_t> window_pages;
    for (int window = 0; window < 6; ++window) {
        std::unordered_set<Addr> pages;
        for (int i = 0; i < 20000; ++i)
            pages.insert(gen.next().vaddr >> smallPageShift);
        window_pages.push_back(pages.size());
    }
    std::size_t lo = window_pages[0];
    std::size_t hi = window_pages[0];
    for (std::size_t n : window_pages) {
        lo = std::min(lo, n);
        hi = std::max(hi, n);
    }
    EXPECT_GT(hi, lo); // phases differ
}

TEST(Generator, ConflictGroupTargetsSmallPages)
{
    // Conflict stencil traffic must land on 4 KB-mapped regions.
    const auto &profile = ProfileRegistry::byName("zeusmp"); // 72% 2M
    TraceGenerator gen(profile, 0, 42);
    int small_refs = 0;
    int total = 0;
    for (int i = 0; i < 50000; ++i) {
        const TraceRecord record = gen.next();
        ++total;
        small_refs += record.pageSize == PageSize::Small4K ? 1 : 0;
    }
    // Far more small-page references than the 28% mapping share
    // would suggest: the conflict runs are small-page only.
    EXPECT_GT(static_cast<double>(small_refs) / total, 0.4);
}

TEST(Generator, InstGapsArePositive)
{
    const auto &profile = ProfileRegistry::byName("soplex");
    TraceGenerator gen(profile, 0, 42);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const TraceRecord record = gen.next();
        EXPECT_GE(record.instGap, 1u);
        sum += record.instGap;
    }
    EXPECT_NEAR(sum / 10000.0, profile.instGapMean, 1.5);
}

TEST(Generator, WriteFractionApproximatesProfile)
{
    const auto &profile = ProfileRegistry::byName("gups"); // 0.5
    TraceGenerator gen(profile, 0, 42);
    int writes = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        writes += gen.next().type == AccessType::Write ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(writes) / n,
                profile.writeFraction, 0.05);
}

TEST(Generator, FillMatchesRepeatedNext)
{
    const auto &profile = ProfileRegistry::byName("mcf");
    TraceGenerator batched(profile, 2, 42);
    TraceGenerator scalar(profile, 2, 42);

    // Uneven block sizes, including 0 and 1, must concatenate to the
    // exact scalar stream — the contract the engine's batching
    // relies on.
    std::vector<TraceRecord> block(1024);
    const std::size_t sizes[] = {7, 1, 0, 512, 3, 64};
    for (const std::size_t n : sizes) {
        ASSERT_EQ(batched.fill(block.data(), n), n);
        for (std::size_t i = 0; i < n; ++i) {
            const TraceRecord expected = scalar.next();
            EXPECT_EQ(block[i].vaddr, expected.vaddr);
            EXPECT_EQ(block[i].instGap, expected.instGap);
            EXPECT_EQ(block[i].type, expected.type);
            EXPECT_EQ(block[i].pageSize, expected.pageSize);
        }
    }
}

} // namespace
} // namespace pomtlb

/**
 * @file
 * Simulation-engine tests: determinism, warmup/stat-reset semantics,
 * pre-population, multi-VM placement, and result aggregation.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "sim/engine.hh"
#include "trace/source.hh"
#include "trace/trace_file.hh"
#include "trace/tracepack.hh"

namespace pomtlb
{
namespace
{

EngineConfig
quickEngine()
{
    EngineConfig config;
    config.refsPerCore = 3000;
    config.warmupRefsPerCore = 1000;
    return config;
}

SystemConfig
twoCores()
{
    SystemConfig config = SystemConfig::table1();
    config.numCores = 2;
    return config;
}

TEST(Engine, RunProducesPerCoreStats)
{
    Machine machine(twoCores(), "POM-TLB");
    SimulationEngine engine(
        machine, ProfileRegistry::byName("gups"), quickEngine());
    const RunResult result = engine.run();
    ASSERT_EQ(result.cores.size(), 2u);
    for (const auto &core : result.cores) {
        EXPECT_EQ(core.refs, 3000u);
        EXPECT_GT(core.instructions, core.refs);
        EXPECT_GT(core.cycles, 0u);
    }
    EXPECT_EQ(result.totals().refs, 6000u);
}

TEST(Engine, DeterministicAcrossRuns)
{
    const auto &profile = ProfileRegistry::byName("mcf");
    Machine machine_a(twoCores(), "POM-TLB");
    SimulationEngine engine_a(machine_a, profile, quickEngine());
    const RunResult a = engine_a.run();

    Machine machine_b(twoCores(), "POM-TLB");
    SimulationEngine engine_b(machine_b, profile, quickEngine());
    const RunResult b = engine_b.run();

    EXPECT_EQ(a.totals().translationCycles, b.totals().translationCycles);
    EXPECT_EQ(a.totals().lastLevelMisses, b.totals().lastLevelMisses);
    for (std::size_t i = 0; i < a.cores.size(); ++i)
        EXPECT_EQ(a.cores[i].cycles, b.cores[i].cycles);
}

TEST(Engine, SeedChangesResults)
{
    const auto &profile = ProfileRegistry::byName("gups");
    EngineConfig config_a = quickEngine();
    EngineConfig config_b = quickEngine();
    config_b.seed = 777;

    Machine machine_a(twoCores(), "POM-TLB");
    const RunResult a =
        SimulationEngine(machine_a, profile, config_a).run();
    Machine machine_b(twoCores(), "POM-TLB");
    const RunResult b =
        SimulationEngine(machine_b, profile, config_b).run();
    EXPECT_NE(a.totals().translationCycles,
              b.totals().translationCycles);
}

TEST(Engine, PrepopulationEliminatesColdWalks)
{
    const auto &profile = ProfileRegistry::byName("gups");
    EngineConfig with = quickEngine();
    EngineConfig without = quickEngine();
    without.prepopulate = false;

    Machine machine_a(twoCores(), "POM-TLB");
    const RunResult pre =
        SimulationEngine(machine_a, profile, with).run();
    Machine machine_b(twoCores(), "POM-TLB");
    const RunResult cold =
        SimulationEngine(machine_b, profile, without).run();

    EXPECT_LT(pre.totals().walkFraction, 0.02);
    EXPECT_GT(cold.totals().walkFraction, pre.totals().walkFraction);
}

TEST(Engine, WarmupStatsAreDiscarded)
{
    const auto &profile = ProfileRegistry::byName("gups");
    Machine machine(twoCores(), "POM-TLB");
    SimulationEngine engine(machine, profile, quickEngine());
    const RunResult result = engine.run();
    // Only measured-phase references are counted in the MMU stats.
    std::uint64_t translations = 0;
    for (CoreId core = 0; core < 2; ++core)
        translations += machine.mmu(core).translationCount();
    EXPECT_EQ(translations, result.totals().refs);
}

TEST(Engine, MultiVmPlacement)
{
    const auto &profile = ProfileRegistry::byName("gups");
    EngineConfig config = quickEngine();
    config.coreVm = {1, 2};
    Machine machine(twoCores(), "POM-TLB");
    SimulationEngine engine(machine, profile, config);
    EXPECT_NO_THROW(engine.run());
    // Both VMs really exist in the memory map.
    EXPECT_EQ(machine.memoryMap().vmCount(), 2u);
}

TEST(Engine, BaselineWalksEveryMiss)
{
    const auto &profile = ProfileRegistry::byName("gups");
    Machine machine(twoCores(), "Baseline");
    SimulationEngine engine(machine, profile, quickEngine());
    const RunResult result = engine.run();
    EXPECT_GT(result.totals().lastLevelMisses, 0u);
    EXPECT_DOUBLE_EQ(result.totals().walkFraction, 1.0);
    EXPECT_GT(result.totals().avgPenaltyPerMiss, 0.0);
}

TEST(Engine, FileSourcesDriveTheMachine)
{
    // Record a short synthetic trace, then replay it through the
    // engine via FileSource; the run must behave like a normal run.
    const std::string path =
        ::testing::TempDir() + "engine_replay_test.pomt";
    const auto &profile = ProfileRegistry::byName("gups");
    {
        TraceGenerator generator(profile, 0, 123);
        recordTrace(generator, path, 5000);
    }

    EngineConfig config = quickEngine();
    config.refsPerCore = 2000;
    config.warmupRefsPerCore = 1000;
    Machine machine(twoCores(), "POM-TLB");
    std::vector<std::unique_ptr<TraceSource>> sources;
    sources.push_back(std::make_unique<FileSource>(path));
    sources.push_back(std::make_unique<FileSource>(path));
    SimulationEngine engine(machine, profile, config,
                            std::move(sources));
    const RunResult result = engine.run();
    EXPECT_EQ(result.totals().refs, 4000u);
    // Pre-population still covers every page: no walks.
    EXPECT_LT(result.totals().walkFraction, 0.01);
    std::remove(path.c_str());
}

TEST(Engine, PackReplayMatchesTheGeneratorRunExactly)
{
    const auto &profile = ProfileRegistry::byName("mcf");
    const SystemConfig system = twoCores();
    const EngineConfig config = quickEngine();

    // The generator-driven reference run.
    Machine machine_a(system, "POM-TLB");
    SimulationEngine engine_a(machine_a, profile, config);
    const RunResult a = engine_a.run();

    // Capture the exact streams that run consumed — same combined
    // seed, one stream per core, warmup + measured records...
    const std::string path =
        ::testing::TempDir() + "engine_pack_replay.pack";
    {
        TracePackWriter writer(path, {"core0", "core1"});
        const std::uint64_t per_core =
            config.warmupRefsPerCore + config.refsPerCore;
        std::vector<TraceRecord> block(1024);
        for (unsigned core = 0; core < 2; ++core) {
            GeneratorSource source(profile, core,
                                   config.seed ^ system.seed);
            std::uint64_t left = per_core;
            while (left > 0) {
                const std::size_t got = source.fill(
                    block.data(),
                    static_cast<std::size_t>(std::min<std::uint64_t>(
                        block.size(), left)));
                writer.append(core, block.data(), got);
                left -= got;
            }
        }
        writer.close();
    }

    // ...and replay it: every per-core figure matches exactly.
    EngineConfig replay = config;
    replay.tracePackPath = path;
    Machine machine_b(system, "POM-TLB");
    SimulationEngine engine_b(machine_b, profile, replay);
    const RunResult b = engine_b.run();

    ASSERT_EQ(a.cores.size(), b.cores.size());
    for (std::size_t i = 0; i < a.cores.size(); ++i) {
        EXPECT_EQ(a.cores[i].cycles, b.cores[i].cycles);
        EXPECT_EQ(a.cores[i].instructions, b.cores[i].instructions);
        EXPECT_EQ(a.cores[i].translationCycles,
                  b.cores[i].translationCycles);
        EXPECT_EQ(a.cores[i].l1TlbHits, b.cores[i].l1TlbHits);
        EXPECT_EQ(a.cores[i].lastLevelTlbMisses,
                  b.cores[i].lastLevelTlbMisses);
        EXPECT_EQ(a.cores[i].pageWalks, b.cores[i].pageWalks);
    }
    std::remove(path.c_str());
}

TEST(Engine, GeneratorSourceRewindReplays)
{
    const auto &profile = ProfileRegistry::byName("mcf");
    GeneratorSource source(profile, 0, 99);
    std::vector<Addr> first;
    for (int i = 0; i < 100; ++i)
        first.push_back(source.next().vaddr);
    source.rewind();
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(source.next().vaddr, first[i]);
}

TEST(Engine, PomReducesPenaltyVersusBaseline)
{
    // The headline property: on a TLB-stressing workload the POM-TLB
    // machine spends fewer post-L1 translation cycles than the
    // baseline walker machine, on identical traces.
    const auto &profile = ProfileRegistry::byName("gups");
    EngineConfig config = quickEngine();
    config.refsPerCore = 8000;
    config.warmupRefsPerCore = 4000;

    Machine base(twoCores(), "Baseline");
    const RunResult base_result =
        SimulationEngine(base, profile, config).run();
    Machine pom(twoCores(), "POM-TLB");
    const RunResult pom_result =
        SimulationEngine(pom, profile, config).run();

    EXPECT_LT(pom_result.totals().translationCycles,
              base_result.totals().translationCycles);
}

} // namespace
} // namespace pomtlb

/**
 * @file
 * Trace-scheduler tests: instruction-order merging across streams.
 */

#include <gtest/gtest.h>

#include "trace/scheduler.hh"

namespace pomtlb
{
namespace
{

std::unique_ptr<TraceGenerator>
makeGenerator(const char *name, CoreId core)
{
    return std::make_unique<TraceGenerator>(
        ProfileRegistry::byName(name), core, 42);
}

TEST(Scheduler, SingleStreamPassesThrough)
{
    TraceScheduler scheduler;
    scheduler.addStream(makeGenerator("gups", 0));
    TraceGenerator reference(ProfileRegistry::byName("gups"), 0, 42);
    for (int i = 0; i < 100; ++i) {
        const ScheduledRecord scheduled = scheduler.next();
        EXPECT_EQ(scheduled.core, 0u);
        EXPECT_EQ(scheduled.record.vaddr, reference.next().vaddr);
    }
}

TEST(Scheduler, InstructionCountsAreMonotonicPerCore)
{
    TraceScheduler scheduler;
    scheduler.addStream(makeGenerator("mcf", 0));
    scheduler.addStream(makeGenerator("mcf", 1));
    InstCount last[2] = {0, 0};
    for (int i = 0; i < 1000; ++i) {
        const ScheduledRecord scheduled = scheduler.next();
        ASSERT_LT(scheduled.core, 2u);
        EXPECT_GT(scheduled.instCount, last[scheduled.core]);
        last[scheduled.core] = scheduled.instCount;
    }
}

TEST(Scheduler, MergesByGlobalInstructionOrder)
{
    TraceScheduler scheduler;
    scheduler.addStream(makeGenerator("gups", 0));
    scheduler.addStream(makeGenerator("gups", 1));
    // The gap between the two cores' cumulative instruction counts
    // stays bounded by one record's gap: the scheduler always
    // advances the laggard.
    InstCount counts[2] = {0, 0};
    for (int i = 0; i < 2000; ++i) {
        const ScheduledRecord scheduled = scheduler.next();
        counts[scheduled.core] = scheduled.instCount;
        if (counts[0] > 0 && counts[1] > 0) {
            const InstCount hi = std::max(counts[0], counts[1]);
            const InstCount lo = std::min(counts[0], counts[1]);
            EXPECT_LE(hi - lo, 200000u);
        }
    }
    // Both cores made comparable progress.
    EXPECT_GT(counts[0], 0u);
    EXPECT_GT(counts[1], 0u);
}

TEST(Scheduler, BothCoresIssueRoughlyEqually)
{
    TraceScheduler scheduler;
    scheduler.addStream(makeGenerator("gups", 0));
    scheduler.addStream(makeGenerator("gups", 1));
    int issued[2] = {0, 0};
    for (int i = 0; i < 10000; ++i)
        ++issued[scheduler.next().core];
    EXPECT_NEAR(static_cast<double>(issued[0]) / 10000, 0.5, 0.05);
}

TEST(Scheduler, StreamCount)
{
    TraceScheduler scheduler;
    EXPECT_EQ(scheduler.streamCount(), 0u);
    scheduler.addStream(makeGenerator("gups", 0));
    scheduler.addStream(makeGenerator("mcf", 1));
    EXPECT_EQ(scheduler.streamCount(), 2u);
    EXPECT_EQ(scheduler.generator(1).profile().name, "mcf");
}

} // namespace
} // namespace pomtlb

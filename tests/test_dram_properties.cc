/**
 * @file
 * Parameterised DRAM timing properties: invariants that must hold
 * for any legal timing configuration (both Table 1 parameterisations
 * and synthetic extremes).
 */

#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.hh"
#include "dram/controller.hh"

namespace pomtlb
{
namespace
{

/** (tCAS, tRCD, tRP, banks, channels). */
using TimingParam =
    std::tuple<unsigned, unsigned, unsigned, unsigned, unsigned>;

class DramTimingTest : public ::testing::TestWithParam<TimingParam>
{
  protected:
    DramConfig
    makeConfig() const
    {
        DramConfig config = DramConfig::dieStacked();
        config.tCas = std::get<0>(GetParam());
        config.tRcd = std::get<1>(GetParam());
        config.tRp = std::get<2>(GetParam());
        config.numBanks = std::get<3>(GetParam());
        config.numChannels = std::get<4>(GetParam());
        config.coreFreqGhz = 4.0;
        return config;
    }
};

TEST_P(DramTimingTest, OutcomeLatencyOrdering)
{
    const DramConfig config = makeConfig();
    DramController dram(config);

    // Idle-bank accesses spaced far apart in time.
    const DramAccessResult closed = dram.access(0, 0);
    const DramAccessResult hit = dram.access(64, 1000000);
    const Addr other_row = config.rowBufferBytes * config.numBanks *
                           config.numChannels;
    const DramAccessResult conflict =
        dram.access(other_row, 2000000);

    ASSERT_EQ(closed.outcome, RowBufferOutcome::Closed);
    ASSERT_EQ(hit.outcome, RowBufferOutcome::Hit);
    ASSERT_EQ(conflict.outcome, RowBufferOutcome::Conflict);

    // hit <= closed <= conflict, strictly when the timings are
    // non-zero.
    EXPECT_LE(hit.latency, closed.latency);
    EXPECT_LE(closed.latency, conflict.latency);
    if (config.tRcd > 0)
        EXPECT_LT(hit.latency, closed.latency);
    if (config.tRp > 0)
        EXPECT_LT(closed.latency, conflict.latency);
}

TEST_P(DramTimingTest, LatencyMatchesAnalyticalFormula)
{
    const DramConfig config = makeConfig();
    DramController dram(config);

    const DramAccessResult closed = dram.access(0, 0);
    const double burst = config.burstBusCycles();
    EXPECT_EQ(closed.latency,
              config.toCoreCycles(config.tRcd + config.tCas + burst));

    const DramAccessResult hit = dram.access(64, 1000000);
    EXPECT_EQ(hit.latency,
              config.toCoreCycles(config.tCas + burst));
}

TEST_P(DramTimingTest, StatisticsAreConsistent)
{
    const DramConfig config = makeConfig();
    DramController dram(config);
    Rng rng(1234);
    for (int i = 0; i < 2000; ++i)
        dram.access(rng.below(Addr{1} << 26) & ~Addr{63}, i * 100);
    EXPECT_EQ(dram.accessCount(), 2000u);
    EXPECT_EQ(dram.rowHits() + dram.rowClosed() + dram.rowConflicts(),
              2000u);
    EXPECT_GE(dram.averageLatency(),
              static_cast<double>(
                  config.toCoreCycles(config.tCas)));
}

INSTANTIATE_TEST_SUITE_P(
    Timings, DramTimingTest,
    ::testing::Values(
        TimingParam{11, 11, 11, 8, 1},   // Table 1 die-stacked
        TimingParam{14, 14, 14, 16, 2},  // Table 1 DDR4
        TimingParam{5, 5, 5, 4, 1},      // fast small part
        TimingParam{22, 22, 22, 32, 4},  // slow wide part
        TimingParam{11, 18, 7, 8, 2}));  // asymmetric timings

/** Bus-frequency scaling: same bus cycles, more core cycles. */
TEST(DramScaling, CoreFrequencyScalesLatency)
{
    DramConfig slow_core = DramConfig::dieStacked();
    slow_core.coreFreqGhz = 2.0;
    DramConfig fast_core = DramConfig::dieStacked();
    fast_core.coreFreqGhz = 8.0;

    DramController slow(slow_core);
    DramController fast(fast_core);
    const Cycles at2 = slow.access(0, 0).latency;
    const Cycles at8 = fast.access(0, 0).latency;
    EXPECT_EQ(at8, at2 * 4);
}

} // namespace
} // namespace pomtlb

/**
 * @file
 * SRAM TLB tests: tag matching across page sizes, VM/process
 * isolation, eviction, and shootdowns.
 */

#include <gtest/gtest.h>

#include "tlb/tlb.hh"

namespace pomtlb
{
namespace
{

TlbConfig
tinyTlb()
{
    TlbConfig config;
    config.name = "test";
    config.entries = 16;
    config.associativity = 4; // 4 sets
    config.missPenalty = 9;
    return config;
}

TEST(Tlb, InsertThenLookup)
{
    SetAssocTlb tlb(tinyTlb());
    tlb.insert(0x100, PageSize::Small4K, 1, 2, 0x900);
    const TlbLookupResult hit =
        tlb.lookup(0x100, PageSize::Small4K, 1, 2);
    EXPECT_TRUE(hit.hit);
    EXPECT_EQ(hit.pfn, 0x900u);
}

TEST(Tlb, PageSizeIsPartOfTheTag)
{
    SetAssocTlb tlb(tinyTlb());
    tlb.insert(0x100, PageSize::Small4K, 1, 2, 0x900);
    EXPECT_FALSE(tlb.lookup(0x100, PageSize::Large2M, 1, 2).hit);
}

TEST(Tlb, VmAndPidIsolation)
{
    SetAssocTlb tlb(tinyTlb());
    tlb.insert(0x100, PageSize::Small4K, 1, 2, 0x900);
    EXPECT_FALSE(tlb.lookup(0x100, PageSize::Small4K, 2, 2).hit);
    EXPECT_FALSE(tlb.lookup(0x100, PageSize::Small4K, 1, 3).hit);
}

TEST(Tlb, SameVpnDifferentVmsCoexist)
{
    SetAssocTlb tlb(tinyTlb());
    tlb.insert(0x100, PageSize::Small4K, 1, 2, 0xA);
    tlb.insert(0x100, PageSize::Small4K, 2, 2, 0xB);
    EXPECT_EQ(tlb.lookup(0x100, PageSize::Small4K, 1, 2).pfn, 0xAu);
    EXPECT_EQ(tlb.lookup(0x100, PageSize::Small4K, 2, 2).pfn, 0xBu);
}

TEST(Tlb, LruEvictionWithinSet)
{
    SetAssocTlb tlb(tinyTlb());
    // VPNs 0, 4, 8, 12, 16 all map to set 0 (4 sets), vm 0.
    for (PageNum vpn = 0; vpn < 16; vpn += 4)
        tlb.insert(vpn, PageSize::Small4K, 0, 0, vpn + 100);
    tlb.insert(16, PageSize::Small4K, 0, 0, 116);
    // VPN 0 was least recently used and must be gone.
    EXPECT_FALSE(tlb.contains(0, PageSize::Small4K, 0, 0));
    EXPECT_TRUE(tlb.contains(16, PageSize::Small4K, 0, 0));
    EXPECT_EQ(tlb.validEntryCount(), 4u);
}

TEST(Tlb, ReinsertUpdatesPfnInPlace)
{
    SetAssocTlb tlb(tinyTlb());
    tlb.insert(0x100, PageSize::Small4K, 1, 2, 0x900);
    tlb.insert(0x100, PageSize::Small4K, 1, 2, 0x901);
    EXPECT_EQ(tlb.validEntryCount(), 1u);
    EXPECT_EQ(tlb.lookup(0x100, PageSize::Small4K, 1, 2).pfn, 0x901u);
}

TEST(Tlb, InvalidatePage)
{
    SetAssocTlb tlb(tinyTlb());
    tlb.insert(0x100, PageSize::Small4K, 1, 2, 0x900);
    EXPECT_TRUE(tlb.invalidatePage(0x100, PageSize::Small4K, 1, 2));
    EXPECT_FALSE(tlb.contains(0x100, PageSize::Small4K, 1, 2));
    EXPECT_FALSE(tlb.invalidatePage(0x100, PageSize::Small4K, 1, 2));
}

TEST(Tlb, VmShootdownDropsOnlyThatVm)
{
    SetAssocTlb tlb(tinyTlb());
    tlb.insert(0x100, PageSize::Small4K, 1, 2, 0xA);
    tlb.insert(0x101, PageSize::Small4K, 1, 2, 0xB);
    tlb.insert(0x100, PageSize::Small4K, 2, 2, 0xC);
    EXPECT_EQ(tlb.invalidateVm(1), 2u);
    EXPECT_FALSE(tlb.contains(0x100, PageSize::Small4K, 1, 2));
    EXPECT_TRUE(tlb.contains(0x100, PageSize::Small4K, 2, 2));
}

TEST(Tlb, FlushClearsEverything)
{
    SetAssocTlb tlb(tinyTlb());
    tlb.insert(0x100, PageSize::Small4K, 1, 2, 0xA);
    tlb.insert(0x200, PageSize::Large2M, 1, 2, 0xB);
    EXPECT_EQ(tlb.flush(), 2u);
    EXPECT_EQ(tlb.validEntryCount(), 0u);
}

TEST(Tlb, HitRateTracksLookups)
{
    SetAssocTlb tlb(tinyTlb());
    tlb.insert(0x100, PageSize::Small4K, 1, 2, 0xA);
    tlb.lookup(0x100, PageSize::Small4K, 1, 2);
    tlb.lookup(0x999, PageSize::Small4K, 1, 2);
    EXPECT_DOUBLE_EQ(tlb.hitRate(), 0.5);
    EXPECT_EQ(tlb.hits(), 1u);
    EXPECT_EQ(tlb.misses(), 1u);
    tlb.resetStats();
    EXPECT_EQ(tlb.hits(), 0u);
}

} // namespace
} // namespace pomtlb

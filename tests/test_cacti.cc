/**
 * @file
 * SRAM latency-model tests (the Figure 4 substrate).
 */

#include <gtest/gtest.h>

#include "analysis/cacti.hh"

namespace pomtlb
{
namespace
{

TEST(Cacti, MonotonicInCapacity)
{
    double last = 0.0;
    for (std::uint64_t kb = 16; kb <= 16 * 1024; kb *= 2) {
        const double t = SramLatencyModel::accessTimeNs(kb * 1024);
        EXPECT_GT(t, last);
        last = t;
    }
}

TEST(Cacti, NormalisedToReference)
{
    EXPECT_DOUBLE_EQ(SramLatencyModel::normalizedLatency(
                         SramLatencyModel::referenceBytes),
                     1.0);
}

TEST(Cacti, LargeArraysDoNotScale)
{
    // The Figure 4 message: a 16 MB SRAM is an order of magnitude
    // slower than a 16 KB one.
    const double ratio =
        SramLatencyModel::normalizedLatency(16 * 1024 * 1024);
    EXPECT_GT(ratio, 10.0);
    EXPECT_LT(ratio, 100.0);
}

TEST(Cacti, SqrtScalingShape)
{
    // Quadrupling capacity roughly doubles the RC component.
    const double t1 = SramLatencyModel::accessTimeNs(1 << 20) -
                      SramLatencyModel::fixedNs;
    const double t4 = SramLatencyModel::accessTimeNs(4 << 20) -
                      SramLatencyModel::fixedNs;
    EXPECT_NEAR(t4 / t1, 2.0, 0.01);
}

TEST(Cacti, CycleConversion)
{
    const Cycles at4ghz =
        SramLatencyModel::accessCycles(256 * 1024, 4.0);
    const Cycles at2ghz =
        SramLatencyModel::accessCycles(256 * 1024, 2.0);
    EXPECT_GE(at4ghz, at2ghz);
    EXPECT_GT(at2ghz, 0u);
}

TEST(Cacti, RejectsZeroCapacity)
{
    EXPECT_THROW(SramLatencyModel::accessTimeNs(0),
                 std::logic_error);
}

} // namespace
} // namespace pomtlb

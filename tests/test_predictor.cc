/**
 * @file
 * Size/bypass predictor tests: indexing, single-bit training (the
 * paper's default), hysteresis (footnote 2), and accuracy counters.
 */

#include <gtest/gtest.h>

#include "pomtlb/predictor.hh"

namespace pomtlb
{
namespace
{

/** VA whose predictor index is @p slot (512-entry table). */
Addr
vaddrForSlot(unsigned slot)
{
    return static_cast<Addr>(slot) << smallPageShift;
}

TEST(Predictor, DefaultsToSmallAndNoBypass)
{
    SizeBypassPredictor predictor;
    EXPECT_EQ(predictor.predictSize(0x1234000), PageSize::Small4K);
    EXPECT_FALSE(predictor.predictBypass(0x1234000));
}

TEST(Predictor, LearnsSizeAfterOneUpdate)
{
    SizeBypassPredictor predictor;
    const Addr vaddr = vaddrForSlot(7);
    predictor.updateSize(vaddr, PageSize::Large2M);
    EXPECT_EQ(predictor.predictSize(vaddr), PageSize::Large2M);
    predictor.updateSize(vaddr, PageSize::Small4K);
    EXPECT_EQ(predictor.predictSize(vaddr), PageSize::Small4K);
}

TEST(Predictor, SlotsAreIndependent)
{
    SizeBypassPredictor predictor;
    predictor.updateSize(vaddrForSlot(3), PageSize::Large2M);
    EXPECT_EQ(predictor.predictSize(vaddrForSlot(4)),
              PageSize::Small4K);
}

TEST(Predictor, IndexAliasesEvery512Pages)
{
    SizeBypassPredictor predictor;
    predictor.updateSize(vaddrForSlot(3), PageSize::Large2M);
    // Slot 3 + 512 aliases onto slot 3.
    EXPECT_EQ(predictor.predictSize(vaddrForSlot(3 + 512)),
              PageSize::Large2M);
}

TEST(Predictor, SizeAccuracyTracksOutcomes)
{
    SizeBypassPredictor predictor;
    const Addr vaddr = vaddrForSlot(1);
    predictor.updateSize(vaddr, PageSize::Small4K); // correct (init 0)
    predictor.updateSize(vaddr, PageSize::Large2M); // wrong
    predictor.updateSize(vaddr, PageSize::Large2M); // correct now
    EXPECT_EQ(predictor.sizePredictions(), 3u);
    EXPECT_NEAR(predictor.sizeAccuracy(), 2.0 / 3.0, 1e-12);
}

TEST(Predictor, BypassTrainingFollowsGroundTruth)
{
    SizeBypassPredictor predictor;
    const Addr vaddr = vaddrForSlot(9);
    predictor.updateBypass(vaddr, false, true);
    EXPECT_TRUE(predictor.predictBypass(vaddr));
    predictor.updateBypass(vaddr, true, false);
    EXPECT_FALSE(predictor.predictBypass(vaddr));
}

TEST(Predictor, BypassAccuracy)
{
    SizeBypassPredictor predictor;
    const Addr vaddr = vaddrForSlot(9);
    predictor.updateBypass(vaddr, false, false); // correct
    predictor.updateBypass(vaddr, false, true);  // wrong
    EXPECT_EQ(predictor.bypassPredictions(), 2u);
    EXPECT_DOUBLE_EQ(predictor.bypassAccuracy(), 0.5);
}

TEST(Predictor, HysteresisNeedsTwoUpdatesToFlip)
{
    SizeBypassPredictor predictor(512, /*hysteresis=*/true);
    const Addr vaddr = vaddrForSlot(5);
    predictor.updateSize(vaddr, PageSize::Large2M);
    // One update moves the counter to 1: still predicts small.
    EXPECT_EQ(predictor.predictSize(vaddr), PageSize::Small4K);
    predictor.updateSize(vaddr, PageSize::Large2M);
    EXPECT_EQ(predictor.predictSize(vaddr), PageSize::Large2M);
    // Saturate at 3, then a single small outcome does not flip it.
    predictor.updateSize(vaddr, PageSize::Large2M);
    predictor.updateSize(vaddr, PageSize::Small4K);
    EXPECT_EQ(predictor.predictSize(vaddr), PageSize::Large2M);
}

TEST(Predictor, ResetClearsAccuracyNotState)
{
    SizeBypassPredictor predictor;
    const Addr vaddr = vaddrForSlot(2);
    predictor.updateSize(vaddr, PageSize::Large2M);
    predictor.resetStats();
    EXPECT_EQ(predictor.sizePredictions(), 0u);
    // Learned state survives the stats reset.
    EXPECT_EQ(predictor.predictSize(vaddr), PageSize::Large2M);
}

TEST(Predictor, HighAccuracyOnStablePageSizes)
{
    // Section 4.3: with region-stable page sizes the predictor is
    // highly accurate after warmup.
    SizeBypassPredictor predictor;
    unsigned correct = 0;
    const unsigned trials = 2000;
    for (unsigned i = 0; i < trials; ++i) {
        const unsigned slot = i % 64;
        const PageSize actual = (slot % 4 == 0) ? PageSize::Large2M
                                                : PageSize::Small4K;
        const Addr vaddr = vaddrForSlot(slot);
        if (predictor.predictSize(vaddr) == actual)
            ++correct;
        predictor.updateSize(vaddr, actual);
    }
    EXPECT_GT(static_cast<double>(correct) / trials, 0.95);
}

} // namespace
} // namespace pomtlb

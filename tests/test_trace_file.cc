/**
 * @file
 * Trace-file serialisation tests: round trips, wrap-around, format
 * validation.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "trace/error.hh"
#include "trace/generator.hh"
#include "trace/trace_file.hh"

namespace pomtlb
{
namespace
{

class TraceFileTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        path = ::testing::TempDir() + "pomtlb_trace_test.pomt";
    }

    void TearDown() override { std::remove(path.c_str()); }

    std::string path;
};

TEST_F(TraceFileTest, RoundTripPreservesRecords)
{
    const auto &profile = ProfileRegistry::byName("mcf");
    TraceGenerator generator(profile, 0, 42);

    std::vector<TraceRecord> original;
    {
        TraceFileWriter writer(path);
        for (int i = 0; i < 1000; ++i) {
            const TraceRecord record = generator.next();
            original.push_back(record);
            writer.append(record);
        }
    } // destructor finalises the header

    TraceFileReader reader(path, /*wrap=*/false);
    EXPECT_EQ(reader.recordCount(), 1000u);
    for (const TraceRecord &expected : original) {
        const TraceRecord actual = reader.next();
        EXPECT_EQ(actual.vaddr, expected.vaddr);
        EXPECT_EQ(actual.instGap, expected.instGap);
        EXPECT_EQ(actual.type, expected.type);
        EXPECT_EQ(actual.pageSize, expected.pageSize);
    }
}

TEST_F(TraceFileTest, WrapAroundRestarts)
{
    {
        TraceFileWriter writer(path);
        TraceRecord record;
        record.vaddr = 0x1000;
        writer.append(record);
        record.vaddr = 0x2000;
        writer.append(record);
    }
    TraceFileReader reader(path, /*wrap=*/true);
    EXPECT_EQ(reader.next().vaddr, 0x1000u);
    EXPECT_EQ(reader.next().vaddr, 0x2000u);
    EXPECT_EQ(reader.next().vaddr, 0x1000u); // wrapped
    EXPECT_EQ(reader.position(), 1u);
}

TEST_F(TraceFileTest, ExhaustionIsFatalWithoutWrap)
{
    {
        TraceFileWriter writer(path);
        writer.append(TraceRecord{});
    }
    TraceFileReader reader(path, /*wrap=*/false);
    reader.next();
    EXPECT_DEATH_IF_SUPPORTED({ reader.next(); }, "");
}

TEST_F(TraceFileTest, RewindRestarts)
{
    {
        TraceFileWriter writer(path);
        TraceRecord record;
        record.vaddr = 0xabc000;
        writer.append(record);
        record.vaddr = 0xdef000;
        writer.append(record);
    }
    TraceFileReader reader(path);
    reader.next();
    reader.rewind();
    EXPECT_EQ(reader.next().vaddr, 0xabc000u);
}

TEST_F(TraceFileTest, RejectsGarbageFileNamingThePath)
{
    {
        std::ofstream out(path, std::ios::binary);
        out << "this is not a trace, but it is long enough that the"
               " 16-byte header check passes and the magic fails";
    }
    try {
        TraceFileReader reader(path);
        FAIL() << "expected TraceError";
    } catch (const TraceError &error) {
        EXPECT_NE(std::string(error.what()).find(path),
                  std::string::npos)
            << error.what();
    }
}

TEST_F(TraceFileTest, RejectsMissingFile)
{
    EXPECT_THROW(TraceFileReader reader("/nonexistent/trace.pomt"),
                 TraceError);
}

TEST_F(TraceFileTest, RejectsShortFileReportingSizes)
{
    {
        std::ofstream out(path, std::ios::binary);
        out << "POMT"; // magic only, header cut short
    }
    try {
        TraceFileReader reader(path);
        FAIL() << "expected TraceError";
    } catch (const TraceError &error) {
        const std::string what = error.what();
        EXPECT_NE(what.find(path), std::string::npos) << what;
        EXPECT_NE(what.find("4 bytes"), std::string::npos) << what;
    }
}

TEST_F(TraceFileTest, RejectsTruncatedBodyReportingSizes)
{
    {
        TraceFileWriter writer(path);
        for (int i = 0; i < 8; ++i)
            writer.append(TraceRecord{});
    }
    // Chop the last record in half; the header still claims 8.
    std::ifstream in(path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    in.close();
    bytes.resize(bytes.size() - 6);
    std::ofstream(path, std::ios::binary | std::ios::trunc)
        << bytes;

    try {
        TraceFileReader reader(path);
        FAIL() << "expected TraceError";
    } catch (const TraceError &error) {
        const std::string what = error.what();
        EXPECT_NE(what.find(path), std::string::npos) << what;
        EXPECT_NE(what.find("8 records"), std::string::npos) << what;
        EXPECT_NE(what.find(std::to_string(bytes.size())),
                  std::string::npos)
            << what;
    }
}

TEST_F(TraceFileTest, RecordTraceHelper)
{
    const auto &profile = ProfileRegistry::byName("gups");
    TraceGenerator generator(profile, 1, 7);
    EXPECT_EQ(recordTrace(generator, path, 500), 500u);
    TraceFileReader reader(path);
    EXPECT_EQ(reader.recordCount(), 500u);

    // The file replays the exact generator stream.
    TraceGenerator fresh(profile, 1, 7);
    for (int i = 0; i < 500; ++i)
        EXPECT_EQ(reader.next().vaddr, fresh.next().vaddr);
}

TEST_F(TraceFileTest, FlagsEncodeBothDimensions)
{
    {
        TraceFileWriter writer(path);
        TraceRecord record;
        record.vaddr = 0x40000000;
        record.type = AccessType::Write;
        record.pageSize = PageSize::Large2M;
        record.instGap = 77;
        writer.append(record);
    }
    TraceFileReader reader(path);
    const TraceRecord record = reader.next();
    EXPECT_EQ(record.type, AccessType::Write);
    EXPECT_EQ(record.pageSize, PageSize::Large2M);
    EXPECT_EQ(record.instGap, 77u);
}

// -- fill() batched-read edges ------------------------------------

TEST_F(TraceFileTest, FillShortReadSignalsEndWithoutWrap)
{
    const auto &profile = ProfileRegistry::byName("mcf");
    TraceGenerator generator(profile, 0, 42);
    EXPECT_EQ(recordTrace(generator, path, 10), 10u);

    TraceFileReader reader(path, /*wrap=*/false);
    std::vector<TraceRecord> block(16);

    // Over-asking yields only what remains...
    EXPECT_EQ(reader.fill(block.data(), 16), 10u);
    // ...and an exhausted reader short-reads zero, repeatedly,
    // instead of raising next()'s fatal error.
    EXPECT_EQ(reader.fill(block.data(), 16), 0u);
    EXPECT_EQ(reader.fill(block.data(), 1), 0u);
}

TEST_F(TraceFileTest, FillAfterRewindReplaysIdentically)
{
    const auto &profile = ProfileRegistry::byName("gups");
    TraceGenerator generator(profile, 0, 7);
    EXPECT_EQ(recordTrace(generator, path, 64), 64u);

    TraceFileReader reader(path, /*wrap=*/false);
    std::vector<TraceRecord> first(64), second(64);
    EXPECT_EQ(reader.fill(first.data(), 64), 64u);

    reader.rewind();
    EXPECT_EQ(reader.position(), 0u);
    EXPECT_EQ(reader.fill(second.data(), 64), 64u);
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(first[i].vaddr, second[i].vaddr) << "record " << i;
}

TEST_F(TraceFileTest, FillWrapsExactlyLikeRepeatedNext)
{
    const auto &profile = ProfileRegistry::byName("mcf");
    TraceGenerator generator(profile, 0, 3);
    EXPECT_EQ(recordTrace(generator, path, 5), 5u);

    // A wrapping fill() crossing the file boundary several times
    // must equal the same count of wrapping next() calls.
    TraceFileReader batched(path, /*wrap=*/true);
    TraceFileReader scalar(path, /*wrap=*/true);
    std::vector<TraceRecord> block(13);
    EXPECT_EQ(batched.fill(block.data(), 13), 13u);
    for (int i = 0; i < 13; ++i) {
        const TraceRecord expected = scalar.next();
        EXPECT_EQ(block[i].vaddr, expected.vaddr) << "record " << i;
        EXPECT_EQ(block[i].instGap, expected.instGap);
    }
    // Both cursors agree on where the wrapped stream stands.
    EXPECT_EQ(batched.position(), scalar.position());
}

TEST_F(TraceFileTest, FillAndNextInterleaveOnOneCursor)
{
    const auto &profile = ProfileRegistry::byName("mcf");
    TraceGenerator generator(profile, 0, 11);
    EXPECT_EQ(recordTrace(generator, path, 20), 20u);

    TraceFileReader reader(path, /*wrap=*/false);
    TraceFileReader reference(path, /*wrap=*/false);

    const TraceRecord one = reader.next();
    std::vector<TraceRecord> block(8);
    EXPECT_EQ(reader.fill(block.data(), 8), 8u);
    const TraceRecord after = reader.next();

    EXPECT_EQ(one.vaddr, reference.next().vaddr);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(block[i].vaddr, reference.next().vaddr);
    EXPECT_EQ(after.vaddr, reference.next().vaddr);
}

TEST_F(TraceFileTest, FillZeroIsANoOp)
{
    const auto &profile = ProfileRegistry::byName("mcf");
    TraceGenerator generator(profile, 0, 42);
    EXPECT_EQ(recordTrace(generator, path, 4), 4u);

    TraceFileReader reader(path, /*wrap=*/false);
    EXPECT_EQ(reader.fill(nullptr, 0), 0u);
    EXPECT_EQ(reader.position(), 0u);
}

} // namespace
} // namespace pomtlb

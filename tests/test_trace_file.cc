/**
 * @file
 * Trace-file serialisation tests: round trips, wrap-around, format
 * validation.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "trace/generator.hh"
#include "trace/trace_file.hh"

namespace pomtlb
{
namespace
{

class TraceFileTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        path = ::testing::TempDir() + "pomtlb_trace_test.pomt";
    }

    void TearDown() override { std::remove(path.c_str()); }

    std::string path;
};

TEST_F(TraceFileTest, RoundTripPreservesRecords)
{
    const auto &profile = ProfileRegistry::byName("mcf");
    TraceGenerator generator(profile, 0, 42);

    std::vector<TraceRecord> original;
    {
        TraceFileWriter writer(path);
        for (int i = 0; i < 1000; ++i) {
            const TraceRecord record = generator.next();
            original.push_back(record);
            writer.append(record);
        }
    } // destructor finalises the header

    TraceFileReader reader(path, /*wrap=*/false);
    EXPECT_EQ(reader.recordCount(), 1000u);
    for (const TraceRecord &expected : original) {
        const TraceRecord actual = reader.next();
        EXPECT_EQ(actual.vaddr, expected.vaddr);
        EXPECT_EQ(actual.instGap, expected.instGap);
        EXPECT_EQ(actual.type, expected.type);
        EXPECT_EQ(actual.pageSize, expected.pageSize);
    }
}

TEST_F(TraceFileTest, WrapAroundRestarts)
{
    {
        TraceFileWriter writer(path);
        TraceRecord record;
        record.vaddr = 0x1000;
        writer.append(record);
        record.vaddr = 0x2000;
        writer.append(record);
    }
    TraceFileReader reader(path, /*wrap=*/true);
    EXPECT_EQ(reader.next().vaddr, 0x1000u);
    EXPECT_EQ(reader.next().vaddr, 0x2000u);
    EXPECT_EQ(reader.next().vaddr, 0x1000u); // wrapped
    EXPECT_EQ(reader.position(), 1u);
}

TEST_F(TraceFileTest, ExhaustionIsFatalWithoutWrap)
{
    {
        TraceFileWriter writer(path);
        writer.append(TraceRecord{});
    }
    TraceFileReader reader(path, /*wrap=*/false);
    reader.next();
    EXPECT_DEATH_IF_SUPPORTED({ reader.next(); }, "");
}

TEST_F(TraceFileTest, RewindRestarts)
{
    {
        TraceFileWriter writer(path);
        TraceRecord record;
        record.vaddr = 0xabc000;
        writer.append(record);
        record.vaddr = 0xdef000;
        writer.append(record);
    }
    TraceFileReader reader(path);
    reader.next();
    reader.rewind();
    EXPECT_EQ(reader.next().vaddr, 0xabc000u);
}

TEST_F(TraceFileTest, RejectsGarbageFile)
{
    {
        std::ofstream out(path, std::ios::binary);
        out << "this is not a trace";
    }
    EXPECT_DEATH_IF_SUPPORTED({ TraceFileReader reader(path); }, "");
}

TEST_F(TraceFileTest, RejectsMissingFile)
{
    EXPECT_DEATH_IF_SUPPORTED(
        { TraceFileReader reader("/nonexistent/trace.pomt"); }, "");
}

TEST_F(TraceFileTest, RecordTraceHelper)
{
    const auto &profile = ProfileRegistry::byName("gups");
    TraceGenerator generator(profile, 1, 7);
    EXPECT_EQ(recordTrace(generator, path, 500), 500u);
    TraceFileReader reader(path);
    EXPECT_EQ(reader.recordCount(), 500u);

    // The file replays the exact generator stream.
    TraceGenerator fresh(profile, 1, 7);
    for (int i = 0; i < 500; ++i)
        EXPECT_EQ(reader.next().vaddr, fresh.next().vaddr);
}

TEST_F(TraceFileTest, FlagsEncodeBothDimensions)
{
    {
        TraceFileWriter writer(path);
        TraceRecord record;
        record.vaddr = 0x40000000;
        record.type = AccessType::Write;
        record.pageSize = PageSize::Large2M;
        record.instGap = 77;
        writer.append(record);
    }
    TraceFileReader reader(path);
    const TraceRecord record = reader.next();
    EXPECT_EQ(record.type, AccessType::Write);
    EXPECT_EQ(record.pageSize, PageSize::Large2M);
    EXPECT_EQ(record.instGap, 77u);
}

} // namespace
} // namespace pomtlb

/**
 * @file
 * Unit tests for the sampled translation event trace: sampling
 * cadence, ring-buffer wrap-around, JSONL dump shape, and the
 * machine-level wiring (enableTracing + warmup reset).
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/json.hh"
#include "sim/engine.hh"
#include "sim/machine.hh"
#include "sim/translation_trace.hh"
#include "trace/profile.hh"

namespace pomtlb
{
namespace
{

TranslationEvent
eventWithSeq(std::uint64_t seq)
{
    TranslationEvent event;
    event.seq = seq;
    return event;
}

TEST(TranslationTracer, SamplesOneInN)
{
    TranslationTracer tracer(16, 4);
    int sampled = 0;
    for (int i = 0; i < 12; ++i) {
        if (tracer.shouldSample())
            ++sampled;
    }
    // 1-in-4 starting with the very first translation.
    EXPECT_EQ(sampled, 3);
    EXPECT_EQ(tracer.seenCount(), 12u);
    EXPECT_EQ(tracer.sampleInterval(), 4u);
}

TEST(TranslationTracer, RingKeepsLatestWindow)
{
    TranslationTracer tracer(4, 1);
    for (std::uint64_t seq = 0; seq < 10; ++seq)
        tracer.record(eventWithSeq(seq));
    EXPECT_EQ(tracer.capacity(), 4u);
    EXPECT_EQ(tracer.size(), 4u);
    EXPECT_EQ(tracer.recordedCount(), 10u);

    const std::vector<TranslationEvent> events = tracer.events();
    ASSERT_EQ(events.size(), 4u);
    // Oldest first, and only the latest window survives.
    EXPECT_EQ(events.front().seq, 6u);
    EXPECT_EQ(events.back().seq, 9u);
}

TEST(TranslationTracer, ResetClearsEverything)
{
    TranslationTracer tracer(4, 2);
    tracer.shouldSample();
    tracer.record(eventWithSeq(0));
    tracer.reset();
    EXPECT_EQ(tracer.size(), 0u);
    EXPECT_EQ(tracer.seenCount(), 0u);
    EXPECT_EQ(tracer.recordedCount(), 0u);
    EXPECT_TRUE(tracer.events().empty());
}

TEST(TranslationTracer, JsonlLinesAreValidJson)
{
    TranslationTracer tracer(8, 1);
    TranslationEvent event;
    event.seq = 42;
    event.core = 3;
    event.vaddr = 0xdeadbeef000;
    event.size = PageSize::Large2M;
    event.vm = 1;
    event.pid = 7;
    event.cycles = 100;
    event.sramCycles = 26;
    event.schemeCycles = 74;
    event.tlbLevel = TlbLevel::Miss;
    event.servedBy = ServicePoint::PomDram;
    event.probes = 2;
    event.firstTryServed = false;
    event.walked = false;
    tracer.record(event);

    std::ostringstream oss;
    tracer.writeJsonl(oss);
    const std::string text = oss.str();
    ASSERT_FALSE(text.empty());
    EXPECT_EQ(text.back(), '\n');

    const JsonValue line =
        JsonValue::parse(text.substr(0, text.find('\n')));
    EXPECT_EQ(line.at("seq").asUint(), 42u);
    EXPECT_EQ(line.at("core").asUint(), 3u);
    EXPECT_EQ(line.at("page_size").asString(), "2MB");
    EXPECT_EQ(line.at("tlb_level").asString(), "miss");
    EXPECT_EQ(line.at("served_by").asString(), "pom_dram");
    EXPECT_EQ(line.at("probes").asUint(), 2u);
    EXPECT_FALSE(line.at("first_try").asBool());
    // The exact cycle split survives serialisation.
    EXPECT_EQ(line.at("sram_cycles").asUint() +
                  line.at("scheme_cycles").asUint(),
              line.at("cycles").asUint());
}

TEST(TranslationTracer, MachineWiringRecordsMeasuredPhaseOnly)
{
    SystemConfig config = SystemConfig::table1();
    config.numCores = 2;
    Machine machine(config, "POM-TLB");
    TranslationTracer &tracer = machine.enableTracing(512, 8);
    ASSERT_EQ(machine.tracer(), &tracer);

    EngineConfig engine_config;
    engine_config.refsPerCore = 4000;
    engine_config.warmupRefsPerCore = 1000;
    const BenchmarkProfile &profile =
        ProfileRegistry::byName("mcf");
    SimulationEngine engine(machine, profile, engine_config);
    const RunResult result = engine.run();

    // The warmup-boundary stats reset also resets the tracer, so the
    // sampler saw exactly the measured-phase translations.
    EXPECT_EQ(tracer.seenCount(), result.totals().refs);
    EXPECT_GT(tracer.size(), 0u);
    EXPECT_EQ(tracer.recordedCount(),
              (tracer.seenCount() + 7) / 8);

    // Every recorded event respects the exact cycle split.
    for (const TranslationEvent &event : tracer.events()) {
        EXPECT_EQ(event.sramCycles + event.schemeCycles,
                  event.cycles);
        if (event.tlbLevel != TlbLevel::Miss) {
            EXPECT_EQ(event.schemeCycles, 0u);
        }
    }
}

TEST(TranslationTracer, DefaultSampleIntervalHonoursEnv)
{
    ::setenv("POMTLB_TRACE_SAMPLE", "128", 1);
    EXPECT_EQ(TranslationTracer::defaultSampleInterval(), 128u);
    ::unsetenv("POMTLB_TRACE_SAMPLE");
    EXPECT_EQ(TranslationTracer::defaultSampleInterval(), 64u);
    TranslationTracer tracer(4, 0);
    EXPECT_EQ(tracer.sampleInterval(), 64u);
}

} // namespace
} // namespace pomtlb

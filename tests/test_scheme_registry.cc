/**
 * @file
 * Tests for the scheme plug-in registry (sim/scheme_registry.hh):
 * deterministic ordering, alias and legacy-enum round trips,
 * duplicate rejection, factory isolation across machines, and
 * string-keyed construction of every registered scheme.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "sim/machine.hh"
#include "sim/scheme_registry.hh"

namespace pomtlb
{
namespace
{

SystemConfig
smallConfig()
{
    SystemConfig config = SystemConfig::table1();
    config.numCores = 2;
    return config;
}

TEST(SchemeRegistry, PaperSchemesComeFirstInRegistrationRankOrder)
{
    const std::vector<std::string> names =
        SchemeRegistry::global().names();
    ASSERT_GE(names.size(), 6u);
    // Figure-8 order is pinned: the paper's four schemes first (the
    // exact strings plot_results.py and the golden fixtures rely on),
    // then the contenders in rank order.
    const std::vector<SchemeKind> kinds = allSchemeKinds();
    ASSERT_EQ(kinds.size(), 4u);
    for (std::size_t i = 0; i < kinds.size(); ++i)
        EXPECT_EQ(names[i], schemeKindName(kinds[i]));
    EXPECT_EQ(names[4], "Coalesced");
    EXPECT_EQ(names[5], "Victima");

    // entries() agrees with names() and ranks are non-decreasing.
    const std::vector<const SchemeRegistry::Info *> entries =
        SchemeRegistry::global().entries();
    ASSERT_EQ(entries.size(), names.size());
    for (std::size_t i = 0; i < entries.size(); ++i) {
        EXPECT_EQ(entries[i]->name, names[i]);
        if (i > 0)
            EXPECT_GE(entries[i]->rank, entries[i - 1]->rank);
    }
}

TEST(SchemeRegistry, EveryNameRoundTripsThroughParseAndEmit)
{
    for (const SchemeRegistry::Info *info :
         SchemeRegistry::global().entries()) {
        // The canonical name resolves to itself...
        const SchemeRegistry::Info *by_name =
            SchemeRegistry::global().find(info->name);
        ASSERT_NE(by_name, nullptr) << info->name;
        EXPECT_EQ(by_name->name, info->name);
        // ...and every alias resolves to the canonical name.
        for (const std::string &alias : info->aliases) {
            const SchemeRegistry::Info *by_alias =
                SchemeRegistry::global().find(alias);
            ASSERT_NE(by_alias, nullptr) << alias;
            EXPECT_EQ(by_alias->name, info->name);
        }
        EXPECT_FALSE(info->description.empty()) << info->name;
    }
    EXPECT_EQ(SchemeRegistry::global().find("no-such-scheme"),
              nullptr);
}

TEST(SchemeRegistry, LegacySchemeKindShimsResolveThroughRegistry)
{
    for (const SchemeKind kind : allSchemeKinds()) {
        const auto round = schemeKindFromName(schemeKindName(kind));
        ASSERT_TRUE(round.has_value());
        EXPECT_EQ(*round, kind);
        const SchemeRegistry::Info *info =
            SchemeRegistry::global().find(schemeKindName(kind));
        ASSERT_NE(info, nullptr);
        ASSERT_TRUE(info->legacy.has_value());
        EXPECT_EQ(*info->legacy, kind);
    }
    // The historical CLI spellings still parse.
    EXPECT_EQ(schemeKindFromName("pom"), SchemeKind::PomTlb);
    EXPECT_EQ(schemeKindFromName("shared"), SchemeKind::SharedL2);
    // Contenders exist outside the legacy enum.
    const SchemeRegistry::Info *coalesced =
        SchemeRegistry::global().find("Coalesced");
    ASSERT_NE(coalesced, nullptr);
    EXPECT_FALSE(coalesced->legacy.has_value());
    EXPECT_FALSE(schemeKindFromName("Victima").has_value());
}

TEST(SchemeRegistry, LegacyMachineCtorStillBuildsEveryKind)
{
    // The deprecated Machine(SystemConfig, SchemeKind) overload and
    // the schemeKind() accessor must keep working until the shim is
    // removed; they resolve through the same registry entries as
    // the canonical string names.
    const SystemConfig config = smallConfig();
    for (const SchemeKind kind : allSchemeKinds()) {
        Machine machine(config, kind);
        ASSERT_TRUE(machine.schemeKind().has_value());
        EXPECT_EQ(*machine.schemeKind(), kind);
        EXPECT_EQ(machine.schemeName(), schemeKindName(kind));
    }
    EXPECT_STREQ(schemeKindName(SchemeKind::NestedWalk), "Baseline");
    EXPECT_STREQ(schemeKindName(SchemeKind::PomTlb), "POM-TLB");
    EXPECT_STREQ(schemeKindName(SchemeKind::SharedL2), "Shared_L2");
    EXPECT_STREQ(schemeKindName(SchemeKind::Tsb), "TSB");
}

TEST(SchemeRegistry, RejectsDuplicateAndMalformedRegistrations)
{
    const SchemeRegistry::Factory factory =
        [](const SystemConfig &, Machine &)
        -> std::unique_ptr<TranslationScheme> { return nullptr; };

    SchemeRegistry registry;
    registry.add({.name = "A",
                  .description = "first",
                  .aliases = {"a"},
                  .factory = factory});

    // Same canonical name.
    EXPECT_THROW(registry.add({.name = "A", .factory = factory}),
                 std::invalid_argument);
    // New name colliding with an existing alias.
    EXPECT_THROW(registry.add({.name = "a", .factory = factory}),
                 std::invalid_argument);
    // New alias colliding with an existing canonical name.
    EXPECT_THROW(registry.add({.name = "B",
                               .aliases = {"A"},
                               .factory = factory}),
                 std::invalid_argument);
    // Empty name and missing factory are both malformed.
    EXPECT_THROW(registry.add({.name = "", .factory = factory}),
                 std::invalid_argument);
    EXPECT_THROW(registry.add({.name = "C"}), std::invalid_argument);

    // The failed adds left the registry usable.
    registry.add({.name = "B", .factory = factory});
    EXPECT_EQ(registry.names(),
              (std::vector<std::string>{"A", "B"}));
}

TEST(SchemeRegistry, EverySchemeIsConstructibleByString)
{
    const SystemConfig config = smallConfig();
    for (const std::string &name :
         SchemeRegistry::global().names()) {
        SCOPED_TRACE(name);
        Machine machine(config, name);
        EXPECT_EQ(machine.schemeName(), name);
        const MmuResult result = machine.mmu(0).translate(
            0x1234000, PageSize::Small4K, 1, 1, 0);
        EXPECT_NE(result.hpa, 0u);
    }
    EXPECT_THROW(Machine(config, "no-such-scheme"),
                 std::invalid_argument);
}

TEST(SchemeRegistry, FactoriesShareNoStateAcrossMachines)
{
    const SystemConfig config = smallConfig();
    for (const std::string &name :
         SchemeRegistry::global().names()) {
        SCOPED_TRACE(name);
        Machine hot(config, name);
        Machine cold(config, name);

        std::vector<std::pair<std::string, double>> before;
        cold.collectStats(before);

        // Hammer one machine...
        for (int i = 0; i < 64; ++i) {
            hot.mmu(0).translate(0x40000000ull + i * 0x1000,
                                 PageSize::Small4K, 1, 1, i * 100);
        }

        // ...and the sibling built by the same factory is untouched.
        std::vector<std::pair<std::string, double>> after;
        cold.collectStats(after);
        EXPECT_EQ(before, after);
    }
}

} // namespace
} // namespace pomtlb

/**
 * @file
 * Page-structure-cache tests: coverage granularity, LRU within the
 * tiny Table 1 capacities, probe priority, and VM shootdowns.
 */

#include <gtest/gtest.h>

#include "pagetable/psc.hh"

namespace pomtlb
{
namespace
{

PscConfig
table1Psc()
{
    return PscConfig{};
}

TEST(StructureCache, CoversItsRegion)
{
    StructureCache pde(4, WalkLevel::Pd);
    pde.insert(0x0, 1, 1);
    // Any address within the same 2 MB region hits.
    EXPECT_TRUE(pde.lookup(0x1fffff, 1, 1));
    // The next region misses.
    EXPECT_FALSE(pde.lookup(0x200000, 1, 1));
}

TEST(StructureCache, VmAndPidTagged)
{
    StructureCache pde(4, WalkLevel::Pd);
    pde.insert(0x0, 1, 1);
    EXPECT_FALSE(pde.lookup(0x0, 2, 1));
    EXPECT_FALSE(pde.lookup(0x0, 1, 2));
}

TEST(StructureCache, LruEvictionAtCapacity)
{
    StructureCache pml4(2, WalkLevel::Pml4);
    const Addr region = Addr{1} << 39;
    pml4.insert(0 * region, 1, 1);
    pml4.insert(1 * region, 1, 1);
    // Touch region 0 so region 1 is LRU.
    EXPECT_TRUE(pml4.lookup(0 * region, 1, 1));
    pml4.insert(2 * region, 1, 1);
    EXPECT_TRUE(pml4.lookup(0 * region, 1, 1));
    EXPECT_FALSE(pml4.lookup(1 * region, 1, 1));
    EXPECT_TRUE(pml4.lookup(2 * region, 1, 1));
}

TEST(PscSet, DeepestHitWins)
{
    PscSet psc(table1Psc());
    const Addr addr = 0x12345678;
    psc.fill(addr, 1, 1, 4);
    psc.fill(addr, 1, 1, 3);
    psc.fill(addr, 1, 1, 2);
    const PscProbeResult probe = psc.probe(addr, 1, 1);
    EXPECT_EQ(probe.deepestHitLevel, 2u);
    EXPECT_EQ(probe.cycles, table1Psc().accessLatency);
}

TEST(PscSet, PartialFillHitsUpperLevel)
{
    PscSet psc(table1Psc());
    const Addr addr = 0x12345678;
    psc.fill(addr, 1, 1, 3);
    const PscProbeResult probe = psc.probe(addr, 1, 1);
    EXPECT_EQ(probe.deepestHitLevel, 3u);
}

TEST(PscSet, MissReturnsZero)
{
    PscSet psc(table1Psc());
    const PscProbeResult probe = psc.probe(0x999999999, 1, 1);
    EXPECT_EQ(probe.deepestHitLevel, 0u);
    // Probes still cost the access latency.
    EXPECT_EQ(probe.cycles, table1Psc().accessLatency);
}

TEST(PscSet, LeafFillsIgnored)
{
    PscSet psc(table1Psc());
    psc.fill(0x1000, 1, 1, 1); // PT-level entries belong in TLBs
    EXPECT_EQ(psc.probe(0x1000, 1, 1).deepestHitLevel, 0u);
}

TEST(PscSet, VmShootdown)
{
    PscSet psc(table1Psc());
    psc.fill(0x1000, 1, 1, 2);
    psc.fill(0x1000, 2, 1, 2);
    psc.invalidateVm(1);
    EXPECT_EQ(psc.probe(0x1000, 1, 1).deepestHitLevel, 0u);
    EXPECT_EQ(psc.probe(0x1000, 2, 1).deepestHitLevel, 2u);
}

TEST(PscSet, FlushClearsEverything)
{
    PscSet psc(table1Psc());
    psc.fill(0x1000, 1, 1, 2);
    psc.fill(0x1000, 1, 1, 3);
    psc.fill(0x1000, 1, 1, 4);
    psc.flush();
    EXPECT_EQ(psc.probe(0x1000, 1, 1).deepestHitLevel, 0u);
}

TEST(PscSet, HitAndMissCounters)
{
    PscSet psc(table1Psc());
    psc.fill(0x1000, 1, 1, 2);
    psc.probe(0x1000, 1, 1);   // PDE hit
    psc.probe(0x5000000, 1, 1); // all miss
    EXPECT_EQ(psc.pdeCache().hits(), 1u);
    EXPECT_GE(psc.pdeCache().misses(), 1u);
    EXPECT_GE(psc.pml4Cache().misses(), 1u);
}

} // namespace
} // namespace pomtlb

/**
 * @file
 * Memory-map (OS/hypervisor substrate) tests: demand mapping in both
 * modes, gPA/hPA consistency, VM isolation, and lazy node backing.
 */

#include <gtest/gtest.h>

#include "pagetable/memory_map.hh"

namespace pomtlb
{
namespace
{

TEST(MemoryMap, NativeModeIdentityHostTranslation)
{
    MemoryMapConfig config;
    config.mode = ExecMode::Native;
    MemoryMap map(config);

    const TranslationInfo info =
        map.ensureMapped(1, 1, 0x123456789, PageSize::Small4K);
    EXPECT_EQ(info.gpa, info.hpa);
    EXPECT_EQ(map.hostTranslate(1, 0xabcd), 0xabcdu);
}

TEST(MemoryMap, VirtualizedTwoLevelMapping)
{
    MemoryMapConfig config;
    MemoryMap map(config);

    const Addr vaddr = 0x123456789;
    const TranslationInfo info =
        map.ensureMapped(1, 1, vaddr, PageSize::Small4K);
    // Offsets are preserved through both translations.
    EXPECT_EQ(pageOffset(info.gpa, PageSize::Small4K),
              pageOffset(vaddr, PageSize::Small4K));
    EXPECT_EQ(pageOffset(info.hpa, PageSize::Small4K),
              pageOffset(vaddr, PageSize::Small4K));
    // The host table agrees with the combined mapping.
    EXPECT_EQ(map.hostTranslate(1, info.gpa), info.hpa);
}

TEST(MemoryMap, EnsureMappedIsIdempotent)
{
    MemoryMap map(MemoryMapConfig{});
    const TranslationInfo first =
        map.ensureMapped(1, 1, 0x5000, PageSize::Small4K);
    const TranslationInfo second =
        map.ensureMapped(1, 1, 0x5000, PageSize::Small4K);
    EXPECT_EQ(first.gpa, second.gpa);
    EXPECT_EQ(first.hpa, second.hpa);
}

TEST(MemoryMap, DistinctPagesGetDistinctFrames)
{
    MemoryMap map(MemoryMapConfig{});
    const TranslationInfo a =
        map.ensureMapped(1, 1, 0x5000, PageSize::Small4K);
    const TranslationInfo b =
        map.ensureMapped(1, 1, 0x6000, PageSize::Small4K);
    EXPECT_NE(pageBase(a.hpa, PageSize::Small4K),
              pageBase(b.hpa, PageSize::Small4K));
    EXPECT_NE(pageBase(a.gpa, PageSize::Small4K),
              pageBase(b.gpa, PageSize::Small4K));
}

TEST(MemoryMap, ProcessesHaveSeparateAddressSpaces)
{
    MemoryMap map(MemoryMapConfig{});
    const TranslationInfo p1 =
        map.ensureMapped(1, 1, 0x5000, PageSize::Small4K);
    const TranslationInfo p2 =
        map.ensureMapped(1, 2, 0x5000, PageSize::Small4K);
    EXPECT_NE(p1.hpa, p2.hpa);
}

TEST(MemoryMap, VmsHaveSeparateHostFrames)
{
    MemoryMap map(MemoryMapConfig{});
    const TranslationInfo vm1 =
        map.ensureMapped(1, 1, 0x5000, PageSize::Small4K);
    const TranslationInfo vm2 =
        map.ensureMapped(2, 1, 0x5000, PageSize::Small4K);
    EXPECT_NE(vm1.hpa, vm2.hpa);
    // Guest-physical spaces are per-VM namespaces and may collide.
}

TEST(MemoryMap, LargePageMapping)
{
    MemoryMap map(MemoryMapConfig{});
    const Addr vaddr = (Addr{5} << largePageShift) | 0x12345;
    const TranslationInfo info =
        map.ensureMapped(1, 1, vaddr, PageSize::Large2M);
    EXPECT_EQ(info.size, PageSize::Large2M);
    EXPECT_EQ(pageOffset(info.hpa, PageSize::Large2M), 0x12345u);
    EXPECT_EQ(pageBase(info.hpa, PageSize::Large2M) % largePageBytes,
              0u);
}

TEST(MemoryMap, LazyHostBackingOfTableNodes)
{
    MemoryMap map(MemoryMapConfig{});
    map.ensureMapped(1, 1, 0x5000, PageSize::Small4K);
    // The guest page table's root frame is a guest-physical address;
    // translating it must lazily create a host mapping.
    const Addr root_gpa = map.guestTable(1, 1).rootAddr();
    const HostPhysAddr hpa = map.hostTranslate(1, root_gpa);
    EXPECT_NE(hpa, 0u);
    // A second translation returns the same backing.
    EXPECT_EQ(map.hostTranslate(1, root_gpa), hpa);
}

TEST(MemoryMap, UnmapPage)
{
    MemoryMap map(MemoryMapConfig{});
    map.ensureMapped(1, 1, 0x5000, PageSize::Small4K);
    EXPECT_TRUE(map.unmapPage(1, 1, 0x5000, PageSize::Small4K));
    EXPECT_FALSE(map.guestTable(1, 1).isMapped(0x5000));
}

TEST(MemoryMap, HostBytesGrowWithMappings)
{
    MemoryMap map(MemoryMapConfig{});
    const Addr before = map.hostBytesAllocated();
    map.ensureMapped(1, 1, 0x5000, PageSize::Small4K);
    EXPECT_GT(map.hostBytesAllocated(), before);
}

} // namespace
} // namespace pomtlb

/**
 * @file
 * Tests for the `pomtlb-stats-v1` document (sim/stats_export.hh):
 * schema shape, the exact cycle-accounting invariants for every
 * registered scheme, trace metadata, and the docs/metrics.md
 * coverage contract
 * (every emitted stat name must be documented).
 */

#include <gtest/gtest.h>

#include <cstring>
#include <fstream>
#include <memory>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.hh"
#include "sim/engine.hh"
#include "sim/machine.hh"
#include "sim/scenario.hh"
#include "sim/scheme_registry.hh"
#include "sim/stats_export.hh"
#include "trace/profile.hh"

namespace pomtlb
{
namespace
{

struct RunOutput
{
    std::unique_ptr<Machine> machine;
    RunResult result;
};

RunOutput
runMachine(SystemConfig config, const std::string &scheme,
           bool with_tracer = false)
{
    config.numCores = 2;
    RunOutput out;
    out.machine = std::make_unique<Machine>(config, scheme);
    if (with_tracer)
        out.machine->enableTracing(256, 16);
    EngineConfig engine_config;
    engine_config.refsPerCore = 4000;
    engine_config.warmupRefsPerCore = 1000;
    const BenchmarkProfile &profile =
        ProfileRegistry::byName("mcf");
    SimulationEngine engine(*out.machine, profile, engine_config);
    out.result = engine.run();
    return out;
}

TEST(StatsExport, DocumentShape)
{
    RunOutput out = runMachine(SystemConfig::table1(), "POM-TLB");
    const JsonValue doc =
        buildStatsDocument(*out.machine, out.result, "mcf");

    EXPECT_EQ(doc.at("schema").asString(), kStatsSchemaV1);
    EXPECT_EQ(doc.at("benchmark").asString(), "mcf");
    EXPECT_EQ(doc.at("scheme").asString(), "POM-TLB");
    EXPECT_EQ(doc.at("mode").asString(), "virtualized");
    EXPECT_EQ(doc.at("num_cores").asUint(), 2u);
    EXPECT_TRUE(doc.at("totals").isObject());
    EXPECT_TRUE(doc.at("cycle_breakdown").isObject());
    EXPECT_TRUE(doc.at("components").isObject());
    EXPECT_FALSE(doc.has("trace")); // tracing was off

    // The components tree includes every per-core group.
    EXPECT_TRUE(doc.at("components").has("mmu.0"));
    EXPECT_TRUE(doc.at("components").has("mmu.1"));
    EXPECT_TRUE(doc.at("components").has("walker.0"));
    EXPECT_TRUE(doc.at("components").has("scheme"));

    // The whole document survives a serialise/parse round trip.
    EXPECT_EQ(JsonValue::parse(doc.dump()), doc);
}

/**
 * The acceptance invariant: the document's cycle totals equal the
 * engine's aggregate cost exactly — for every registered scheme.
 */
TEST(StatsExport, CycleTotalsExactlyMatchEngineForEveryScheme)
{
    for (const std::string &scheme :
         SchemeRegistry::global().names()) {
        SCOPED_TRACE(scheme);
        RunOutput out = runMachine(SystemConfig::table1(), scheme);
        const JsonValue doc =
            buildStatsDocument(*out.machine, out.result, "mcf");
        const JsonValue &totals = doc.at("totals");

        // Document totals == the engine's per-core aggregate.
        EXPECT_EQ(totals.at("translation_cycles").asUint(),
                  out.result.totals().translationCycles);
        EXPECT_EQ(totals.at("refs").asUint(),
                  out.result.totals().refs);
        EXPECT_EQ(totals.at("last_level_tlb_misses").asUint(),
                  out.result.totals().lastLevelMisses);
        EXPECT_EQ(totals.at("page_walks").asUint(),
                  out.result.totals().pageWalks);

        // Exact split: translation == sram + scheme.
        EXPECT_EQ(totals.at("sram_cycles").asUint() +
                      totals.at("scheme_cycles").asUint(),
                  totals.at("translation_cycles").asUint());

        // The breakdown partitions the total with no remainder.
        std::uint64_t breakdown_sum = 0;
        for (const auto &[name, value] :
             doc.at("cycle_breakdown").members()) {
            EXPECT_TRUE(name == "sram_tlb" ||
                        servicePointFromName(name).has_value())
                << name;
            breakdown_sum += value.asUint();
        }
        EXPECT_EQ(breakdown_sum,
                  totals.at("translation_cycles").asUint());
        EXPECT_EQ(doc.at("cycle_breakdown").at("sram_tlb").asUint(),
                  totals.at("sram_cycles").asUint());
    }
}

TEST(StatsExport, TraceMetadataPresentWhenTracing)
{
    RunOutput out =
        runMachine(SystemConfig::table1(), "Baseline", true);
    const JsonValue doc =
        buildStatsDocument(*out.machine, out.result, "mcf");
    ASSERT_TRUE(doc.has("trace"));
    const JsonValue &trace = doc.at("trace");
    EXPECT_EQ(trace.at("sample_interval").asUint(), 16u);
    EXPECT_EQ(trace.at("capacity").asUint(), 256u);
    EXPECT_EQ(trace.at("seen").asUint(), out.result.totals().refs);
    EXPECT_GE(trace.at("recorded").asUint(),
              trace.at("held").asUint());
}

// ----------------------------------------------------------------
// docs/metrics.md coverage
// ----------------------------------------------------------------

/** Every backticked token in the doc, plus its dot-split parts. */
std::set<std::string>
documentedTokens()
{
    const std::string path =
        std::string(POMTLB_SOURCE_DIR) + "/docs/metrics.md";
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "cannot open " << path;
    std::stringstream buffer;
    buffer << in.rdbuf();
    const std::string text = buffer.str();

    std::set<std::string> tokens;
    std::size_t pos = 0;
    while ((pos = text.find('`', pos)) != std::string::npos) {
        const std::size_t end = text.find('`', pos + 1);
        if (end == std::string::npos)
            break;
        const std::string token =
            text.substr(pos + 1, end - pos - 1);
        tokens.insert(token);
        std::string part;
        for (const char c : token + ".") {
            if (c == '.') {
                if (!part.empty())
                    tokens.insert(part);
                part.clear();
            } else {
                part += c;
            }
        }
        pos = end + 1;
    }
    return tokens;
}

/** Collect every flat stat name a machine emits, `.N`-normalised. */
void
collectNames(SystemConfig config, const std::string &scheme,
             std::set<std::string> &names)
{
    RunOutput out = runMachine(std::move(config), scheme);
    std::vector<std::pair<std::string, double>> flat;
    out.machine->collectStats(flat);
    const std::regex digits("\\.[0-9]+");
    for (const auto &stat : flat)
        names.insert(std::regex_replace(stat.first, digits, ".N"));
}

/**
 * The contract docs/metrics.md advertises: 100% of emitted stat
 * names are documented. Every dot-segment of every emitted name
 * (histograms reduced to their base name) must appear in the doc.
 */
TEST(StatsExport, MetricsDocCoversEveryStat)
{
    std::set<std::string> names;
    for (const std::string &scheme :
         SchemeRegistry::global().names())
        collectNames(SystemConfig::table1(), scheme, names);
    SystemConfig unified = SystemConfig::table1();
    unified.pomTlb.unifiedOrganization = true;
    collectNames(unified, "POM-TLB", names);
    SystemConfig with_l4 = SystemConfig::table1();
    with_l4.dieStackedL4Cache = true;
    collectNames(with_l4, "Baseline", names);
    ASSERT_GT(names.size(), 100u);

    const std::set<std::string> tokens = documentedTokens();
    for (std::string name : names) {
        // The flat form of a histogram appends .samples/.mean/.max;
        // the doc documents the histogram's base name.
        for (const char *suffix : {".samples", ".mean", ".max"}) {
            const std::size_t at = name.rfind(suffix);
            if (at != std::string::npos &&
                at + std::strlen(suffix) == name.size() &&
                name.find("_hist") != std::string::npos) {
                name.resize(at);
            }
        }
        std::string part;
        for (const char c : name + ".") {
            if (c == '.') {
                if (!part.empty() && part != "N") {
                    EXPECT_TRUE(tokens.count(part))
                        << "stat '" << name << "': segment '"
                        << part
                        << "' is not documented in docs/metrics.md";
                }
                part.clear();
            } else {
                part += c;
            }
        }
    }
}

/**
 * The same 100%-documented contract for the scenario engine's
 * per-tenant registry: every `tenants.<name>.<stat>` it emits must
 * appear in the docs/metrics.md per-tenant table. The tenant-name
 * segment itself is user-chosen and exempt.
 */
TEST(StatsExport, MetricsDocCoversEveryScenarioTenantStat)
{
    ScenarioSpec spec;
    spec.name = "doc-coverage";
    spec.system.numCores = 2;
    spec.engine.refsPerCore = 2000;
    spec.engine.warmupRefsPerCore = 1000;
    spec.tenantCount = 4;
    spec.tenantBenchmarks = {"mcf", "gups"};
    spec.migrationPagesPerArrival = 2;
    spec.storm = {800, 4};

    Machine machine(spec.system, spec.scheme);
    ScenarioEngine engine(machine, spec);
    (void)engine.run();

    std::vector<std::pair<std::string, double>> flat;
    engine.registry().collect(flat);
    ASSERT_GT(flat.size(), 4u * 10u);

    const std::set<std::string> tokens = documentedTokens();
    for (const auto &stat : flat) {
        std::string name = stat.first;
        for (const char *suffix : {".samples", ".mean", ".max"}) {
            const std::size_t at = name.rfind(suffix);
            if (at != std::string::npos &&
                at + std::strlen(suffix) == name.size() &&
                name.find("histogram") != std::string::npos) {
                name.resize(at);
            }
        }
        std::vector<std::string> parts;
        std::string part;
        for (const char c : name + ".") {
            if (c == '.') {
                parts.push_back(part);
                part.clear();
            } else {
                part += c;
            }
        }
        ASSERT_GE(parts.size(), 3u) << name;
        EXPECT_EQ(parts[0], "tenants") << name;
        // parts[1] is the tenant's own name; everything after it
        // must be documented.
        for (std::size_t i = 2; i < parts.size(); ++i) {
            EXPECT_TRUE(tokens.count(parts[i]))
                << "scenario stat '" << name << "': segment '"
                << parts[i]
                << "' is not documented in docs/metrics.md";
        }
    }
}

} // namespace
} // namespace pomtlb

/**
 * @file
 * DRAM controller tests: latency composition, row-buffer statistics,
 * channel serialization, and the bounded-queue clamp.
 */

#include <gtest/gtest.h>

#include "dram/controller.hh"

namespace pomtlb
{
namespace
{

DramConfig
testConfig()
{
    DramConfig config = DramConfig::dieStacked();
    config.coreFreqGhz = 4.0;
    return config;
}

TEST(DramController, ColdAccessLatency)
{
    DramController dram(testConfig());
    const DramAccessResult result = dram.access(0, 0);
    EXPECT_EQ(result.outcome, RowBufferOutcome::Closed);
    // tRCD + tCAS + 2 burst bus cycles at 4x core clock.
    EXPECT_EQ(result.latency, (11 + 11 + 2) * 4u);
}

TEST(DramController, RowHitIsCheaper)
{
    DramController dram(testConfig());
    dram.access(0, 0);
    const DramAccessResult hit = dram.access(64, 10000);
    EXPECT_EQ(hit.outcome, RowBufferOutcome::Hit);
    EXPECT_EQ(hit.latency, (11 + 2) * 4u);
}

TEST(DramController, RowConflictIsMostExpensive)
{
    DramConfig config = testConfig();
    DramController dram(config);
    dram.access(0, 0);
    // Same bank, different row: one full row region ahead times the
    // number of banks and channels.
    const Addr same_bank_other_row =
        config.rowBufferBytes * config.numBanks * config.numChannels;
    const DramAccessResult conflict =
        dram.access(same_bank_other_row, 10000);
    EXPECT_EQ(conflict.outcome, RowBufferOutcome::Conflict);
    EXPECT_EQ(conflict.latency, (11 + 11 + 11 + 2) * 4u);
}

TEST(DramController, StatsAccumulate)
{
    DramController dram(testConfig());
    dram.access(0, 0);
    dram.access(64, 10000);
    dram.access(128, 20000);
    EXPECT_EQ(dram.accessCount(), 3u);
    EXPECT_EQ(dram.rowHits(), 2u);
    EXPECT_EQ(dram.rowClosed(), 1u);
    EXPECT_NEAR(dram.rowBufferHitRate(), 2.0 / 3.0, 1e-12);

    dram.resetStats();
    EXPECT_EQ(dram.accessCount(), 0u);
    EXPECT_DOUBLE_EQ(dram.rowBufferHitRate(), 0.0);
}

TEST(DramController, PrechargeAllClosesRows)
{
    DramController dram(testConfig());
    dram.access(0, 0);
    dram.prechargeAll();
    const DramAccessResult result = dram.access(64, 10000);
    EXPECT_EQ(result.outcome, RowBufferOutcome::Closed);
}

TEST(DramController, BackToBackRequestsQueue)
{
    DramController dram(testConfig());
    const DramAccessResult first = dram.access(0, 0);
    // Immediately-following access to the same bank waits for it.
    const DramAccessResult second = dram.access(64, 0);
    EXPECT_GT(second.latency, first.latency);
}

TEST(DramController, QueueDelayIsClamped)
{
    DramConfig config = testConfig();
    config.maxQueueBusCycles = 48;
    DramController dram(config);
    // Run the bank far into the future...
    for (int i = 0; i < 50; ++i)
        dram.access(0, 0);
    // ...then a fresh request must not see unbounded backlog: the
    // clamp caps the wait at maxQueueBusCycles + service time.
    const DramAccessResult late = dram.access(64, 0);
    const Cycles service = (11 + 11 + 11 + 2) * 4; // worst case
    EXPECT_LE(late.latency, service + config.maxQueueBusCycles * 4 * 2);
}

TEST(DramController, DifferentBanksOverlap)
{
    DramConfig config = testConfig();
    DramController dram(config);
    dram.access(0, 0);
    // A different bank should not pay the first bank's occupancy
    // (only the shared data bus burst serializes).
    const Addr other_bank = config.rowBufferBytes; // next bank region
    const DramAccessResult result = dram.access(other_bank, 0);
    const Cycles cold = (11 + 11 + 2) * 4;
    EXPECT_LE(result.latency, cold + 2 * 4); // at most one burst extra
}

TEST(DramRefresh, DisabledByDefault)
{
    DramController dram(testConfig());
    for (Cycles t = 0; t < 1000000; t += 10000)
        dram.access(0, t);
    EXPECT_EQ(dram.refreshCount(), 0u);
}

TEST(DramRefresh, PeriodicRefreshesHappen)
{
    DramConfig config = testConfig();
    config.refreshEnabled = true;
    config.refreshIntervalBusCycles = 1000;
    config.refreshBusCycles = 100;
    DramController dram(config);
    // Access over 10k bus cycles = 40k core cycles: ~9 refreshes due.
    for (Cycles t = 0; t < 40000; t += 400)
        dram.access(0, t);
    EXPECT_GE(dram.refreshCount(), 8u);
    EXPECT_LE(dram.refreshCount(), 10u);
}

TEST(DramRefresh, RefreshClosesOpenRows)
{
    DramConfig config = testConfig();
    config.refreshEnabled = true;
    config.refreshIntervalBusCycles = 1000;
    config.refreshBusCycles = 100;
    DramController dram(config);
    dram.access(0, 0); // opens row 0
    // Next access to the same row lands after a refresh: the row was
    // closed by it.
    const DramAccessResult after =
        dram.access(0, config.toCoreCycles(2000.0));
    EXPECT_EQ(after.outcome, RowBufferOutcome::Closed);
}

TEST(DramRefresh, AccessDuringRefreshWindowStalls)
{
    DramConfig config = testConfig();
    config.refreshEnabled = true;
    config.refreshIntervalBusCycles = 1000;
    config.refreshBusCycles = 200;
    DramController dram(config);
    // Arrive exactly at the refresh start (bus time 1000).
    const Cycles now = config.toCoreCycles(1000.0);
    const DramAccessResult stalled = dram.access(0, now);
    // Must pay at least the tRFC window on top of a cold access.
    const Cycles cold = (11 + 11 + 2) * 4;
    EXPECT_GE(stalled.latency, cold + 200 * 4 - 8);
}

TEST(DramTfaw, DisabledByDefault)
{
    DramConfig config = testConfig();
    EXPECT_EQ(config.tFaw, 0u);
}

TEST(DramTfaw, FifthActivationWaits)
{
    DramConfig config = testConfig();
    config.tFaw = 1000; // enormous, to make the effect unmistakable
    DramController dram(config);
    // Five activations to five different banks, back to back; bank
    // regions are rowBufferBytes apart.
    Cycles last = 0;
    for (unsigned i = 0; i < 5; ++i) {
        const DramAccessResult result =
            dram.access(Addr{i} * config.rowBufferBytes, 0);
        last = result.latency;
    }
    // The fifth activation had to wait out the tFAW window: its
    // latency includes most of the 1000-bus-cycle window (x4 core).
    EXPECT_GT(last, 1000u * 4 / 2);
}

TEST(DramTfaw, RowHitsAreExempt)
{
    DramConfig config = testConfig();
    config.tFaw = 1000;
    DramController dram(config);
    dram.access(0, 0); // one activation
    // Row hits do not activate: many in a row stay fast.
    for (int i = 0; i < 10; ++i) {
        const DramAccessResult hit = dram.access(64, 100000 + i * 400);
        EXPECT_EQ(hit.outcome, RowBufferOutcome::Hit);
        EXPECT_LE(hit.latency, (11 + 2) * 4u + 8);
    }
}

TEST(DramRefresh, InvalidWindowRejected)
{
    DramConfig config = testConfig();
    config.refreshEnabled = true;
    config.refreshIntervalBusCycles = 100;
    config.refreshBusCycles = 100;
    EXPECT_DEATH_IF_SUPPORTED({ config.validate(); }, "");
}

} // namespace
} // namespace pomtlb

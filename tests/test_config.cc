/**
 * @file
 * Configuration validation tests: Table 1 defaults must validate and
 * impossible geometries must be rejected.
 */

#include <gtest/gtest.h>

#include "common/config.hh"

namespace pomtlb
{
namespace
{

TEST(Config, Table1Validates)
{
    EXPECT_NO_THROW(SystemConfig::table1());
}

TEST(Config, Table1MatchesPaper)
{
    const SystemConfig config = SystemConfig::table1();
    EXPECT_EQ(config.numCores, 8u);
    EXPECT_DOUBLE_EQ(config.coreFreqGhz, 4.0);
    EXPECT_EQ(config.l1d.sizeBytes, 32u * 1024);
    EXPECT_EQ(config.l2.sizeBytes, 256u * 1024);
    EXPECT_EQ(config.l3.sizeBytes, 8u * 1024 * 1024);
    EXPECT_EQ(config.l1TlbSmall.entries, 64u);
    EXPECT_EQ(config.l1TlbLarge.entries, 32u);
    EXPECT_EQ(config.l2Tlb.entries, 1536u);
    EXPECT_EQ(config.l2Tlb.associativity, 12u);
    EXPECT_EQ(config.psc.pml4Entries, 2u);
    EXPECT_EQ(config.psc.pdpEntries, 4u);
    EXPECT_EQ(config.psc.pdeEntries, 32u);
    EXPECT_EQ(config.pomTlb.capacityBytes, 16u * 1024 * 1024);
    EXPECT_EQ(config.pomTlb.associativity, 4u);
    EXPECT_EQ(config.pomTlb.entryBytes, 16u);
    EXPECT_EQ(config.dieStacked.tCas, 11u);
    EXPECT_EQ(config.mainMemory.tCas, 14u);
    EXPECT_EQ(config.dieStacked.rowBufferBytes, 2048u);
}

TEST(Config, CacheRejectsNonPowerOfTwoSets)
{
    CacheConfig cache;
    cache.sizeBytes = 3 * 1024;
    cache.associativity = 4;
    cache.lineBytes = 64;
    EXPECT_DEATH_IF_SUPPORTED(
        { cache.validate(); }, "");
}

TEST(Config, CacheSetCount)
{
    CacheConfig cache;
    cache.sizeBytes = 256 * 1024;
    cache.associativity = 4;
    cache.lineBytes = 64;
    EXPECT_EQ(cache.numSets(), 1024u);
}

TEST(Config, DramBurstCycles)
{
    DramConfig die = DramConfig::dieStacked();
    // 64 B over a 128-bit DDR bus: 4 beats = 2 bus cycles.
    EXPECT_DOUBLE_EQ(die.burstBusCycles(), 2.0);

    DramConfig ddr = DramConfig::ddr4();
    // 64 B over a 64-bit DDR bus: 8 beats = 4 bus cycles.
    EXPECT_DOUBLE_EQ(ddr.burstBusCycles(), 4.0);
}

TEST(Config, DramCoreCycleConversion)
{
    DramConfig die = DramConfig::dieStacked();
    die.coreFreqGhz = 4.0;
    die.busFreqGhz = 1.0;
    // One bus cycle at 1 GHz is four 4 GHz core cycles.
    EXPECT_EQ(die.toCoreCycles(1.0), 4u);
    EXPECT_EQ(die.toCoreCycles(2.5), 10u);
}

TEST(Config, PomTlbPartitionsSplitCapacity)
{
    PomTlbConfig pom;
    EXPECT_EQ(pom.smallPartitionBytes() + pom.largePartitionBytes(),
              pom.capacityBytes);
    EXPECT_NO_THROW(pom.validate());
}

TEST(Config, PomTlbRejectsWrongEntrySize)
{
    PomTlbConfig pom;
    pom.entryBytes = 8;
    EXPECT_DEATH_IF_SUPPORTED({ pom.validate(); }, "");
}

TEST(Config, TsbDefaults)
{
    TsbConfig tsb;
    EXPECT_NO_THROW(tsb.validate());
    EXPECT_EQ(tsb.capacityBytes, 16u * 1024 * 1024);
    EXPECT_EQ(tsb.accessesPerTranslation, 2u);
}

TEST(Config, SystemRejectsMismatchedLineSizes)
{
    SystemConfig config = SystemConfig::table1();
    config.l1d.lineBytes = 32;
    config.l1d.associativity = 8;
    EXPECT_DEATH_IF_SUPPORTED({ config.validate(); }, "");
}

} // namespace
} // namespace pomtlb

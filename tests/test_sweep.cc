/**
 * @file
 * Tests for the parallel sweep subsystem (sim/sweep.hh): request
 * builder semantics, spec expansion, determinism of the worker pool
 * against the serial path, ordering under different worker counts,
 * exception propagation, and the JSON result round trip.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <stdexcept>

#include "sim/sweep.hh"

namespace pomtlb
{
namespace
{

/** Tiny configuration so a full sweep stays fast. */
ExperimentConfig
tinyConfig()
{
    ExperimentConfig config;
    config.system.numCores = 2;
    config.engine.refsPerCore = 2000;
    config.engine.warmupRefsPerCore = 1000;
    return config;
}

/** The cross product the determinism tests run. */
SweepSpec
tinySpec()
{
    return SweepSpec()
        .withBase(tinyConfig())
        .withBenchmarks({"gups", "mcf"})
        .withSchemes(std::vector<std::string>{"Baseline", "POM-TLB"})
        .withVariant("16MB",
                     [](ExperimentConfig &c) {
                         c.system.pomTlb.capacityBytes = 16u << 20;
                     })
        .withVariant("8MB", [](ExperimentConfig &c) {
            c.system.pomTlb.capacityBytes = 8u << 20;
        });
}

/** Field-by-field bit-identity of two run summaries. */
void
expectIdentical(const SchemeRunSummary &a, const SchemeRunSummary &b)
{
    EXPECT_EQ(a.benchmark, b.benchmark);
    EXPECT_EQ(a.scheme, b.scheme);
    EXPECT_EQ(a.mode, b.mode);
    EXPECT_EQ(a.translationCycles, b.translationCycles);
    EXPECT_EQ(a.sramCycles, b.sramCycles);
    EXPECT_EQ(a.schemeCycles, b.schemeCycles);
    ASSERT_EQ(a.cycleBreakdown.size(), b.cycleBreakdown.size());
    for (std::size_t i = 0; i < a.cycleBreakdown.size(); ++i) {
        EXPECT_EQ(a.cycleBreakdown[i].first,
                  b.cycleBreakdown[i].first);
        EXPECT_EQ(a.cycleBreakdown[i].second,
                  b.cycleBreakdown[i].second);
    }
    // Doubles compared with EXPECT_EQ on purpose: parallel execution
    // must be *bit-identical* to serial, not merely close.
    EXPECT_EQ(a.avgPenaltyPerMiss, b.avgPenaltyPerMiss);
    EXPECT_EQ(a.walkFraction, b.walkFraction);
    EXPECT_EQ(a.pomL2CacheServiceRate, b.pomL2CacheServiceRate);
    EXPECT_EQ(a.pomL3CacheServiceRate, b.pomL3CacheServiceRate);
    EXPECT_EQ(a.pomDramServiceRate, b.pomDramServiceRate);
    EXPECT_EQ(a.sizePredictorAccuracy, b.sizePredictorAccuracy);
    EXPECT_EQ(a.bypassPredictorAccuracy, b.bypassPredictorAccuracy);
    EXPECT_EQ(a.dieStackedRowBufferHitRate,
              b.dieStackedRowBufferHitRate);
    EXPECT_EQ(a.l3DataHitRate, b.l3DataHitRate);
    ASSERT_EQ(a.run.cores.size(), b.run.cores.size());
    for (std::size_t c = 0; c < a.run.cores.size(); ++c) {
        EXPECT_EQ(a.run.cores[c].refs, b.run.cores[c].refs);
        EXPECT_EQ(a.run.cores[c].cycles, b.run.cores[c].cycles);
        EXPECT_EQ(a.run.cores[c].translationCycles,
                  b.run.cores[c].translationCycles);
        EXPECT_EQ(a.run.cores[c].lastLevelTlbMisses,
                  b.run.cores[c].lastLevelTlbMisses);
        EXPECT_EQ(a.run.cores[c].pageWalks,
                  b.run.cores[c].pageWalks);
    }
}

TEST(Sweep, RequestBuilderAppliesOverrides)
{
    const ExperimentRequest request =
        ExperimentRequest::of("mcf", "POM-TLB", tinyConfig())
            .withCores(4)
            .withMode(ExecMode::Native)
            .withRefs(1234, 567)
            .withSeed(99)
            .withPomCapacityMb(32)
            .withLabel("32MB")
            .withComponentStats();

    EXPECT_EQ(request.benchmark, "mcf");
    EXPECT_EQ(request.scheme, "POM-TLB");
    EXPECT_EQ(request.config.system.numCores, 4u);
    EXPECT_EQ(request.config.system.mode, ExecMode::Native);
    EXPECT_EQ(request.config.engine.refsPerCore, 1234u);
    EXPECT_EQ(request.config.engine.warmupRefsPerCore, 567u);
    EXPECT_EQ(request.config.engine.seed, 99u);
    EXPECT_EQ(request.config.system.pomTlb.capacityBytes,
              32u << 20);
    EXPECT_TRUE(request.collectComponentStats);
    EXPECT_EQ(request.key(), "mcf/POM-TLB/32MB");
}

TEST(Sweep, SpecExpandsInDeterministicOrder)
{
    const std::vector<ExperimentRequest> requests =
        tinySpec().expand();
    ASSERT_EQ(requests.size(), 8u);
    EXPECT_EQ(tinySpec().jobCount(), 8u);
    // benchmark-major, then scheme, then variant.
    EXPECT_EQ(requests[0].key(), "gups/Baseline/16MB");
    EXPECT_EQ(requests[1].key(), "gups/Baseline/8MB");
    EXPECT_EQ(requests[2].key(), "gups/POM-TLB/16MB");
    EXPECT_EQ(requests[3].key(), "gups/POM-TLB/8MB");
    EXPECT_EQ(requests[4].key(), "mcf/Baseline/16MB");
    EXPECT_EQ(requests[7].key(), "mcf/POM-TLB/8MB");
    // Variants really were applied.
    EXPECT_EQ(requests[2].config.system.pomTlb.capacityBytes,
              16u << 20);
    EXPECT_EQ(requests[3].config.system.pomTlb.capacityBytes,
              8u << 20);
}

TEST(Sweep, EmptySpecYieldsEmptyResults)
{
    EXPECT_TRUE(SweepRunner(4).run(SweepSpec()).empty());
    EXPECT_TRUE(
        SweepRunner(4).run(std::vector<ExperimentRequest>{}).empty());
}

TEST(Sweep, ParallelIsBitIdenticalToSerial)
{
    const std::vector<ExperimentRequest> requests =
        tinySpec().expand();
    const std::vector<ExperimentResult> serial =
        SweepRunner(1).run(requests);
    const std::vector<ExperimentResult> parallel =
        SweepRunner(4).run(requests);

    ASSERT_EQ(serial.size(), requests.size());
    ASSERT_EQ(parallel.size(), requests.size());
    for (std::size_t i = 0; i < requests.size(); ++i) {
        EXPECT_EQ(parallel[i].request.key(), requests[i].key());
        expectIdentical(parallel[i].summary, serial[i].summary);
    }
}

TEST(Sweep, OrderingHoldsForAnyWorkerCount)
{
    const std::vector<ExperimentRequest> requests =
        tinySpec().expand();
    for (const unsigned jobs : {1u, 2u, 8u}) {
        const std::vector<ExperimentResult> results =
            SweepRunner(jobs).run(requests);
        ASSERT_EQ(results.size(), requests.size());
        for (std::size_t i = 0; i < requests.size(); ++i)
            EXPECT_EQ(results[i].request.key(), requests[i].key())
                << "jobs=" << jobs << " index=" << i;
    }
}

TEST(Sweep, WorkerCountIsCappedButNeverZero)
{
    EXPECT_EQ(SweepRunner(1).jobs(), 1u);
    EXPECT_EQ(SweepRunner(7).jobs(), 7u);
    EXPECT_GE(SweepRunner(0).jobs(), 1u);
}

TEST(Sweep, ResolveJobsHonoursEnvOverride)
{
    ::setenv("POMTLB_SWEEP_JOBS", "3", 1);
    EXPECT_EQ(SweepRunner::resolveJobs(0), 3u);
    // Explicit request wins over the environment.
    EXPECT_EQ(SweepRunner::resolveJobs(5), 5u);
    ::unsetenv("POMTLB_SWEEP_JOBS");
    EXPECT_GE(SweepRunner::resolveJobs(0), 1u);

    ::setenv("POMTLB_SWEEP_JOBS", "6", 1);
    EXPECT_EQ(defaultExperimentConfig().sweepJobs, 6u);
    ::unsetenv("POMTLB_SWEEP_JOBS");
    EXPECT_EQ(defaultExperimentConfig().sweepJobs, 1u);
}

TEST(Sweep, FailingJobPropagatesDeterministically)
{
    // A bad benchmark name in the middle of the batch: the workers
    // must drain, join, and rethrow the lowest-indexed failure.
    std::vector<ExperimentRequest> requests = {
        ExperimentRequest::of("gups", "Baseline",
                              tinyConfig()),
        ExperimentRequest::of("no-such-benchmark",
                              "POM-TLB", tinyConfig()),
        ExperimentRequest::of("also-missing", "TSB",
                              tinyConfig()),
        ExperimentRequest::of("mcf", "Baseline",
                              tinyConfig()),
    };
    for (const unsigned jobs : {1u, 4u}) {
        try {
            SweepRunner(jobs).run(requests);
            FAIL() << "expected std::invalid_argument (jobs="
                   << jobs << ")";
        } catch (const std::invalid_argument &error) {
            // Deterministic: always the first failing request.
            EXPECT_NE(std::string(error.what())
                          .find("no-such-benchmark"),
                      std::string::npos);
        }
    }
}

TEST(Sweep, CompareSchemesParallelMatchesSerial)
{
    // The redesigned compareSchemes is a thin wrapper over the
    // runner; fanning it out must not change a single digit.
    ExperimentConfig serial_config = tinyConfig();
    serial_config.sweepJobs = 1;
    ExperimentConfig parallel_config = tinyConfig();
    parallel_config.sweepJobs = 4;

    const BenchmarkComparison a = compareSchemes(
        ProfileRegistry::byName("gups"), serial_config);
    const BenchmarkComparison b = compareSchemes(
        ProfileRegistry::byName("gups"), parallel_config);

    ASSERT_EQ(a.runs.size(), b.runs.size());
    for (std::size_t i = 0; i < a.runs.size(); ++i) {
        EXPECT_EQ(a.runs[i].first, b.runs[i].first);
        expectIdentical(a.runs[i].second, b.runs[i].second);
        const std::string &scheme = a.runs[i].first;
        EXPECT_EQ(a.delta(scheme).costRatio,
                  b.delta(scheme).costRatio);
        EXPECT_EQ(a.delta(scheme).improvementPct,
                  b.delta(scheme).improvementPct);
    }
}

TEST(Sweep, ComponentStatsAttachOnRequest)
{
    const ExperimentResult with_stats = runExperiment(
        ExperimentRequest::of("gups", "POM-TLB",
                              tinyConfig())
            .withComponentStats());
    EXPECT_GT(with_stats.componentStats.size(), 10u);

    const ExperimentResult without_stats = runExperiment(
        ExperimentRequest::of("gups", "POM-TLB",
                              tinyConfig()));
    EXPECT_TRUE(without_stats.componentStats.empty());
    EXPECT_GE(without_stats.wallSeconds, 0.0);
}

/**
 * Per-job stats isolation: every worker thread builds its own
 * Machine and therefore its own StatsRegistry, so concurrent jobs
 * must never bleed counters into each other. Eight identical jobs
 * run on four workers must each report exactly the stats a lone
 * serial run reports. This test is also compiled into the focused
 * `pomtlb_sweep_tests` binary so CI exercises it under TSan.
 */
TEST(Sweep, ComponentStatsIsolatedAcrossWorkerThreads)
{
    const ExperimentRequest request =
        ExperimentRequest::of("gups", "POM-TLB",
                              tinyConfig())
            .withComponentStats();
    const ExperimentResult serial = runExperiment(request);
    ASSERT_GT(serial.componentStats.size(), 10u);

    std::vector<ExperimentRequest> requests(8, request);
    const std::vector<ExperimentResult> parallel_results =
        SweepRunner(4).run(requests);
    ASSERT_EQ(parallel_results.size(), requests.size());
    for (const ExperimentResult &result : parallel_results) {
        ASSERT_EQ(result.componentStats.size(),
                  serial.componentStats.size());
        for (std::size_t s = 0; s < serial.componentStats.size();
             ++s) {
            EXPECT_EQ(result.componentStats[s].first,
                      serial.componentStats[s].first);
            EXPECT_EQ(result.componentStats[s].second,
                      serial.componentStats[s].second)
                << serial.componentStats[s].first;
        }
        expectIdentical(result.summary, serial.summary);
    }
}

TEST(Sweep, JsonRoundTrip)
{
    const std::vector<ExperimentResult> results = SweepRunner(2).run(
        SweepSpec()
            .withBase(tinyConfig())
            .withBenchmarks({"gups"})
            .withSchemes(std::vector<std::string>{"Baseline",
                                                  "POM-TLB"})
            .withComponentStats());

    std::ostringstream out;
    SweepResultWriter::write(out, results);

    const std::vector<ExperimentResult> parsed =
        SweepResultWriter::fromJson(JsonValue::parse(out.str()));
    ASSERT_EQ(parsed.size(), results.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
        const ExperimentResult &a = results[i];
        const ExperimentResult &b = parsed[i];
        EXPECT_EQ(a.request.benchmark, b.request.benchmark);
        EXPECT_EQ(a.request.scheme, b.request.scheme);
        EXPECT_EQ(a.request.label, b.request.label);
        EXPECT_EQ(a.request.config.system.numCores,
                  b.request.config.system.numCores);
        EXPECT_EQ(a.request.config.engine.seed,
                  b.request.config.engine.seed);
        EXPECT_EQ(a.summary.translationCycles,
                  b.summary.translationCycles);
        EXPECT_EQ(a.summary.sramCycles, b.summary.sramCycles);
        EXPECT_EQ(a.summary.schemeCycles, b.summary.schemeCycles);
        // The exact-consistency invariant survives serialisation.
        EXPECT_EQ(b.summary.sramCycles + b.summary.schemeCycles,
                  b.summary.translationCycles);
        ASSERT_EQ(a.summary.cycleBreakdown.size(),
                  b.summary.cycleBreakdown.size());
        for (std::size_t s = 0; s < a.summary.cycleBreakdown.size();
             ++s) {
            EXPECT_EQ(a.summary.cycleBreakdown[s].first,
                      b.summary.cycleBreakdown[s].first);
            EXPECT_EQ(a.summary.cycleBreakdown[s].second,
                      b.summary.cycleBreakdown[s].second);
        }
        EXPECT_EQ(a.summary.avgPenaltyPerMiss,
                  b.summary.avgPenaltyPerMiss);
        EXPECT_EQ(a.summary.walkFraction, b.summary.walkFraction);
        EXPECT_EQ(a.summary.sizePredictorAccuracy,
                  b.summary.sizePredictorAccuracy);
        EXPECT_EQ(a.summary.l3DataHitRate, b.summary.l3DataHitRate);
        EXPECT_EQ(a.wallSeconds, b.wallSeconds);
        ASSERT_EQ(a.componentStats.size(), b.componentStats.size());
        for (std::size_t s = 0; s < a.componentStats.size(); ++s) {
            EXPECT_EQ(a.componentStats[s].first,
                      b.componentStats[s].first);
            EXPECT_EQ(a.componentStats[s].second,
                      b.componentStats[s].second);
        }
    }

    // And the serialisation itself is stable: write -> parse ->
    // write reproduces the same document.
    std::ostringstream again;
    SweepResultWriter::write(again, parsed);
    EXPECT_EQ(out.str(), again.str());
}

TEST(Sweep, RejectsForeignJsonDocuments)
{
    EXPECT_THROW(
        SweepResultWriter::fromJson(JsonValue::parse("{}")),
        std::invalid_argument);
    EXPECT_THROW(SweepResultWriter::fromJson(JsonValue::parse(
                     "{\"schema\": \"other\", \"runs\": []}")),
                 std::invalid_argument);
}

} // namespace
} // namespace pomtlb

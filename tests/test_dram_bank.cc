/**
 * @file
 * Bank state-machine tests: row-buffer outcomes and timing math.
 */

#include <gtest/gtest.h>

#include "dram/bank.hh"

namespace pomtlb
{
namespace
{

constexpr unsigned tCas = 11;
constexpr unsigned tRcd = 11;
constexpr unsigned tRp = 11;

TEST(Bank, FirstAccessIsClosed)
{
    Bank bank;
    EXPECT_FALSE(bank.hasOpenRow());
    const auto timing = bank.access(0.0, 5, tCas, tRcd, tRp);
    EXPECT_EQ(timing.outcome, RowBufferOutcome::Closed);
    EXPECT_DOUBLE_EQ(timing.dataReady, tRcd + tCas);
    EXPECT_DOUBLE_EQ(timing.queueDelay, 0.0);
    EXPECT_TRUE(bank.hasOpenRow());
    EXPECT_EQ(bank.openRow(), 5u);
}

TEST(Bank, SameRowHits)
{
    Bank bank;
    bank.access(0.0, 5, tCas, tRcd, tRp);
    const double now = 100.0;
    const auto timing = bank.access(now, 5, tCas, tRcd, tRp);
    EXPECT_EQ(timing.outcome, RowBufferOutcome::Hit);
    EXPECT_DOUBLE_EQ(timing.dataReady, now + tCas);
}

TEST(Bank, DifferentRowConflicts)
{
    Bank bank;
    bank.access(0.0, 5, tCas, tRcd, tRp);
    const double now = 100.0;
    const auto timing = bank.access(now, 6, tCas, tRcd, tRp);
    EXPECT_EQ(timing.outcome, RowBufferOutcome::Conflict);
    EXPECT_DOUBLE_EQ(timing.dataReady, now + tRp + tRcd + tCas);
    EXPECT_EQ(bank.openRow(), 6u);
}

TEST(Bank, BusyBankQueuesRequest)
{
    Bank bank;
    const auto first = bank.access(0.0, 5, tCas, tRcd, tRp);
    // Second request arrives while the bank is still busy.
    const auto second = bank.access(1.0, 5, tCas, tRcd, tRp);
    EXPECT_DOUBLE_EQ(second.queueDelay, first.dataReady - 1.0);
    EXPECT_DOUBLE_EQ(second.dataReady, first.dataReady + tCas);
}

TEST(Bank, PrechargeClosesRow)
{
    Bank bank;
    bank.access(0.0, 5, tCas, tRcd, tRp);
    bank.precharge();
    EXPECT_FALSE(bank.hasOpenRow());
    const auto timing = bank.access(100.0, 5, tCas, tRcd, tRp);
    EXPECT_EQ(timing.outcome, RowBufferOutcome::Closed);
}

TEST(Bank, OccupyUntilExtendsBusyWindow)
{
    Bank bank;
    bank.access(0.0, 5, tCas, tRcd, tRp);
    const double before = bank.readyAt();
    bank.occupyUntil(before + 10.0);
    EXPECT_DOUBLE_EQ(bank.readyAt(), before + 10.0);
    // Shrinking via occupyUntil is a no-op...
    bank.occupyUntil(before);
    EXPECT_DOUBLE_EQ(bank.readyAt(), before + 10.0);
    // ...but setReadyAt may rewind (queue clamping).
    bank.setReadyAt(before);
    EXPECT_DOUBLE_EQ(bank.readyAt(), before);
}

} // namespace
} // namespace pomtlb

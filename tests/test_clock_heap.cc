/**
 * @file
 * ClockHeap tests: the min-heap scheduler must reproduce the exact
 * (clock, id)-lexicographic order of the linear scan it replaced —
 * including ties — and its staysTop()/replaceTop() fast path must
 * agree with a full re-heap.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <utility>
#include <vector>

#include "sim/clock_heap.hh"

namespace pomtlb
{
namespace
{

TEST(ClockHeap, DrainsInClockOrder)
{
    ClockHeap heap;
    heap.reset(5);
    heap.push(30, 0);
    heap.push(10, 1);
    heap.push(20, 2);
    heap.push(5, 3);
    heap.push(25, 4);

    std::vector<std::uint32_t> order;
    while (!heap.empty()) {
        order.push_back(heap.topId());
        heap.popTop();
    }
    EXPECT_EQ(order, (std::vector<std::uint32_t>{3, 1, 2, 4, 0}));
}

TEST(ClockHeap, TiesBreakTowardLowestId)
{
    // Insert equal clocks in descending-id order so heap layout
    // cannot accidentally produce the right answer.
    ClockHeap heap;
    heap.reset(4);
    for (std::uint32_t id = 4; id-- > 0;)
        heap.push(100, id);

    for (std::uint32_t expected = 0; expected < 4; ++expected) {
        EXPECT_EQ(heap.topKey(), 100u);
        EXPECT_EQ(heap.topId(), expected);
        heap.popTop();
    }
}

TEST(ClockHeap, StaysTopSingleEntryAlwaysTrue)
{
    ClockHeap heap;
    heap.reset(1);
    heap.push(10, 0);
    EXPECT_TRUE(heap.staysTop(10'000'000, 0));
}

TEST(ClockHeap, StaysTopMatchesFullReheap)
{
    // For every candidate re-key of the root, staysTop() must say
    // exactly whether replaceTop() would keep the same root.
    ClockHeap heap;
    heap.reset(3);
    heap.push(10, 0);
    heap.push(20, 1);
    heap.push(15, 2);
    const std::uint32_t root = heap.topId();
    ASSERT_EQ(root, 0u);

    // Still earliest.
    EXPECT_TRUE(heap.staysTop(12, root));
    // Tie with id 2's clock but root has the smaller id? No — the
    // nearest child is (15, 2); (15, 0) < (15, 2), so it stays.
    EXPECT_TRUE(heap.staysTop(15, root));
    // Now strictly later than a child.
    EXPECT_FALSE(heap.staysTop(16, root));
    EXPECT_FALSE(heap.staysTop(21, root));
}

/**
 * Reference scheduler: the pre-batching linear scan — lowest clock
 * wins, ties to the lowest lane index.
 */
std::size_t
linearScanPick(const std::vector<std::uint64_t> &clocks,
               const std::vector<bool> &active)
{
    std::size_t best = clocks.size();
    for (std::size_t i = 0; i < clocks.size(); ++i) {
        if (!active[i])
            continue;
        if (best == clocks.size() || clocks[i] < clocks[best])
            best = i;
    }
    return best;
}

TEST(ClockHeap, RandomisedScheduleMatchesLinearScan)
{
    // Drive both schedulers through the engine's exact usage
    // pattern — pick earliest, advance it by a random stride,
    // staysTop()/replaceTop(), occasionally retire a lane — and
    // require identical pick sequences.
    std::mt19937_64 rng(12345);
    for (int trial = 0; trial < 20; ++trial) {
        const std::size_t lanes = 1 + rng() % 16;
        std::vector<std::uint64_t> clocks(lanes);
        std::vector<bool> active(lanes, true);
        std::vector<std::uint64_t> refs_left(lanes);

        ClockHeap heap;
        heap.reset(lanes);
        for (std::size_t i = 0; i < lanes; ++i) {
            clocks[i] = rng() % 50; // clustered: plenty of ties
            refs_left[i] = 1 + rng() % 200;
            heap.push(clocks[i], static_cast<std::uint32_t>(i));
        }

        while (!heap.empty()) {
            const std::size_t expected =
                linearScanPick(clocks, active);
            ASSERT_EQ(heap.topId(), expected);
            ASSERT_EQ(heap.topKey(), clocks[expected]);

            // Advance the picked lane like the engine does.
            clocks[expected] += rng() % 8; // 0 = instant, keeps ties
            if (--refs_left[expected] == 0) {
                active[expected] = false;
                heap.popTop();
            } else if (heap.staysTop(
                           clocks[expected],
                           static_cast<std::uint32_t>(expected))) {
                // Fast path: root unchanged; re-key lazily exactly
                // as the engine does before the next comparison.
                heap.replaceTop(clocks[expected]);
            } else {
                heap.replaceTop(clocks[expected]);
            }
        }
        EXPECT_EQ(linearScanPick(clocks, active), lanes);
    }
}

TEST(ClockHeap, ResetReusesWithoutStaleEntries)
{
    ClockHeap heap;
    heap.reset(2);
    heap.push(1, 0);
    heap.push(2, 1);
    heap.popTop();

    heap.reset(3);
    EXPECT_TRUE(heap.empty());
    EXPECT_EQ(heap.size(), 0u);
    heap.push(9, 7);
    EXPECT_EQ(heap.topId(), 7u);
    EXPECT_EQ(heap.size(), 1u);
}

} // namespace
} // namespace pomtlb

/**
 * @file
 * Tests for the logging/assert helpers: panic must be detectable and
 * simAssert must fire exactly on false conditions.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "common/log.hh"

namespace pomtlb
{
namespace
{

TEST(Log, PanicThrowsLogicError)
{
    EXPECT_THROW(panic("boom ", 42), std::logic_error);
}

TEST(Log, SimAssertPassesOnTrue)
{
    EXPECT_NO_THROW(simAssert(true, "never shown"));
}

TEST(Log, SimAssertFiresOnFalse)
{
    EXPECT_THROW(simAssert(false, "expected failure"),
                 std::logic_error);
}

TEST(Log, PanicMessageIncludesArguments)
{
    try {
        panic("value=", 17, " name=", "abc");
        FAIL() << "panic did not throw";
    } catch (const std::logic_error &error) {
        const std::string what = error.what();
        EXPECT_NE(what.find("value=17"), std::string::npos);
        EXPECT_NE(what.find("name=abc"), std::string::npos);
    }
}

TEST(Log, InformToggle)
{
    detail::setInformEnabled(false);
    EXPECT_FALSE(detail::informEnabled());
    inform("this should not print");
    detail::setInformEnabled(true);
    EXPECT_TRUE(detail::informEnabled());
}

} // namespace
} // namespace pomtlb

/**
 * @file
 * Page-walker tests: the Figure 1 reference counts (up to 24 in
 * virtualized mode, up to 4 native), PSC/nested-TLB acceleration,
 * and translation correctness against the memory map.
 */

#include <gtest/gtest.h>

#include "pagetable/walker.hh"

namespace pomtlb
{
namespace
{

class WalkerTest : public ::testing::Test
{
  protected:
    void
    build(ExecMode mode)
    {
        config = SystemConfig::table1();
        config.numCores = 1;
        config.mode = mode;
        memory = std::make_unique<DramController>(config.mainMemory);
        hierarchy = std::make_unique<DataHierarchy>(config, *memory);
        MemoryMapConfig map_config;
        map_config.mode = mode;
        map = std::make_unique<MemoryMap>(map_config);
        walker = std::make_unique<PageWalker>(0, *map, *hierarchy,
                                              config.psc);
    }

    SystemConfig config;
    std::unique_ptr<DramController> memory;
    std::unique_ptr<DataHierarchy> hierarchy;
    std::unique_ptr<MemoryMap> map;
    std::unique_ptr<PageWalker> walker;
};

TEST_F(WalkerTest, NativeColdWalkIsFourRefs)
{
    build(ExecMode::Native);
    const WalkResult result =
        walker->walk(0x123456789000, 1, 1, PageSize::Small4K, 0);
    EXPECT_EQ(result.memRefs, 4u);
    EXPECT_GT(result.cycles, 0u);
    EXPECT_EQ(result.size, PageSize::Small4K);
}

TEST_F(WalkerTest, NativeLargePageWalkIsThreeRefs)
{
    build(ExecMode::Native);
    const WalkResult result =
        walker->walk(0x40000000, 1, 1, PageSize::Large2M, 0);
    EXPECT_EQ(result.memRefs, 3u);
    EXPECT_EQ(result.size, PageSize::Large2M);
}

TEST_F(WalkerTest, VirtualizedColdWalkIs24Refs)
{
    build(ExecMode::Virtualized);
    const WalkResult result =
        walker->walk(0x123456789000, 1, 1, PageSize::Small4K, 0);
    // Figure 1: 4 guest reads, each preceded by a 4-ref host walk,
    // plus the final 4-ref host walk of the data gPA = 24.
    EXPECT_EQ(result.memRefs, 24u);
}

TEST_F(WalkerTest, VirtualizedLargePageColdWalk)
{
    build(ExecMode::Virtualized);
    const WalkResult result =
        walker->walk(0x40000000, 1, 1, PageSize::Large2M, 0);
    // 3 guest reads, each preceded by a 4-ref host walk, plus the
    // final host walk of the data gPA — which is 2 MB-backed, so its
    // EPT walk is 3 reads: 3 + 12 + 3 = 18.
    EXPECT_EQ(result.memRefs, 18u);
}

TEST_F(WalkerTest, RepeatWalkUsesPscAndNestedTlb)
{
    build(ExecMode::Virtualized);
    const Addr vaddr = 0x123456789000;
    const WalkResult cold =
        walker->walk(vaddr, 1, 1, PageSize::Small4K, 0);
    const WalkResult warm =
        walker->walk(vaddr, 1, 1, PageSize::Small4K, 1000);
    // The guest PDE cache skips to the PT level and the nested TLB
    // short-circuits both host walks: one guest read remains.
    EXPECT_LT(warm.memRefs, cold.memRefs);
    EXPECT_LE(warm.memRefs, 2u);
    EXPECT_LT(warm.cycles, cold.cycles);
}

TEST_F(WalkerTest, NeighbourPageBenefitsFromPsc)
{
    build(ExecMode::Virtualized);
    walker->walk(0x123456789000, 1, 1, PageSize::Small4K, 0);
    const WalkResult neighbour =
        walker->walk(0x12345678a000, 1, 1, PageSize::Small4K, 1000);
    // Same 2 MB region: guest PDE cache hit, but a fresh data gPA
    // still needs one host walk (4 refs) plus one guest read.
    EXPECT_LE(neighbour.memRefs, 5u);
}

TEST_F(WalkerTest, TranslationMatchesMemoryMap)
{
    build(ExecMode::Virtualized);
    const Addr vaddr = 0xabcdef1234;
    const WalkResult result =
        walker->walk(vaddr, 3, 7, PageSize::Small4K, 0);
    const TranslationInfo info =
        map->ensureMapped(3, 7, vaddr, PageSize::Small4K);
    EXPECT_EQ(result.hostPfn, info.hpa >> smallPageShift);
}

TEST_F(WalkerTest, NativeTranslationMatchesMemoryMap)
{
    build(ExecMode::Native);
    const Addr vaddr = 0xabcdef1234;
    const WalkResult result =
        walker->walk(vaddr, 3, 7, PageSize::Small4K, 0);
    const TranslationInfo info =
        map->ensureMapped(3, 7, vaddr, PageSize::Small4K);
    EXPECT_EQ(result.hostPfn, info.hpa >> smallPageShift);
}

TEST_F(WalkerTest, StatsAccumulate)
{
    build(ExecMode::Virtualized);
    walker->walk(0x1000000, 1, 1, PageSize::Small4K, 0);
    walker->walk(0x2000000, 1, 1, PageSize::Small4K, 100);
    EXPECT_EQ(walker->walkCount(), 2u);
    EXPECT_GT(walker->avgRefsPerWalk(), 0.0);
    EXPECT_GT(walker->avgCyclesPerWalk(), 0.0);
    walker->resetStats();
    EXPECT_EQ(walker->walkCount(), 0u);
}

TEST_F(WalkerTest, VmShootdownForcesFullWalk)
{
    build(ExecMode::Virtualized);
    const Addr vaddr = 0x123456789000;
    walker->walk(vaddr, 1, 1, PageSize::Small4K, 0);
    walker->invalidateVm(1);
    // PSC and nested TLB are cold again; only the data caches still
    // hold PTE lines, so the reference count is back to 24.
    const WalkResult after =
        walker->walk(vaddr, 1, 1, PageSize::Small4K, 1000);
    EXPECT_EQ(after.memRefs, 24u);
}

TEST_F(WalkerTest, VirtualizedCostExceedsNative)
{
    build(ExecMode::Virtualized);
    const WalkResult virt =
        walker->walk(0x123456789000, 1, 1, PageSize::Small4K, 0);

    build(ExecMode::Native);
    const WalkResult native =
        walker->walk(0x123456789000, 1, 1, PageSize::Small4K, 0);

    EXPECT_GT(virt.cycles, native.cycles);
    EXPECT_GT(virt.memRefs, native.memRefs);
}

} // namespace
} // namespace pomtlb

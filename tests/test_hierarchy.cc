/**
 * @file
 * Data-hierarchy tests: level routing, fill propagation, TLB-line
 * probe paths, and the Figure 9 aggregation helpers.
 */

#include <gtest/gtest.h>

#include "cache/hierarchy.hh"

namespace pomtlb
{
namespace
{

class HierarchyTest : public ::testing::Test
{
  protected:
    HierarchyTest()
        : config(SystemConfig::table1())
    {
        config.numCores = 2;
        memory = std::make_unique<DramController>(config.mainMemory);
        hierarchy =
            std::make_unique<DataHierarchy>(config, *memory);
    }

    SystemConfig config;
    std::unique_ptr<DramController> memory;
    std::unique_ptr<DataHierarchy> hierarchy;
};

TEST_F(HierarchyTest, ColdAccessGoesToMemory)
{
    const HierarchyAccessResult result =
        hierarchy->accessData(0, 0x1000, AccessType::Read, 0);
    EXPECT_EQ(result.servedBy, MemLevel::Memory);
    EXPECT_GT(result.latency,
              config.l1d.accessLatency + config.l2.accessLatency +
                  config.l3.accessLatency);
    EXPECT_EQ(memory->accessCount(), 1u);
}

TEST_F(HierarchyTest, SecondAccessHitsL1)
{
    hierarchy->accessData(0, 0x1000, AccessType::Read, 0);
    const HierarchyAccessResult result =
        hierarchy->accessData(0, 0x1000, AccessType::Read, 100);
    EXPECT_EQ(result.servedBy, MemLevel::L1D);
    EXPECT_EQ(result.latency, config.l1d.accessLatency);
}

TEST_F(HierarchyTest, OtherCoreHitsSharedL3)
{
    hierarchy->accessData(0, 0x1000, AccessType::Read, 0);
    const HierarchyAccessResult result =
        hierarchy->accessData(1, 0x1000, AccessType::Read, 100);
    EXPECT_EQ(result.servedBy, MemLevel::L3D);
    EXPECT_EQ(result.latency, config.l1d.accessLatency +
                                  config.l2.accessLatency +
                                  config.l3.accessLatency);
}

TEST_F(HierarchyTest, PteAccessSkipsL1)
{
    const HierarchyAccessResult cold =
        hierarchy->accessPte(0, 0x2000, 0);
    EXPECT_EQ(cold.servedBy, MemLevel::Memory);
    const HierarchyAccessResult warm =
        hierarchy->accessPte(0, 0x2000, 100);
    EXPECT_EQ(warm.servedBy, MemLevel::L2D);
    EXPECT_EQ(warm.latency, config.l2.accessLatency);
    // PTE fills do not touch the L1D.
    EXPECT_FALSE(hierarchy->l1d(0).contains(0x2000));
}

TEST_F(HierarchyTest, TlbProbeNeverTouchesMemory)
{
    const CacheProbeResult probe =
        hierarchy->probeTlbLine(0, 0x3000, 0);
    EXPECT_FALSE(probe.hit);
    EXPECT_EQ(memory->accessCount(), 0u);
    EXPECT_EQ(probe.latency,
              config.l2.accessLatency + config.l3.accessLatency);
}

TEST_F(HierarchyTest, TlbFillThenProbeHitsL2)
{
    hierarchy->fillTlbLine(0, 0x3000);
    const CacheProbeResult probe =
        hierarchy->probeTlbLine(0, 0x3000, 0);
    EXPECT_TRUE(probe.hit);
    EXPECT_EQ(probe.level, MemLevel::L2D);
    EXPECT_EQ(probe.latency, config.l2.accessLatency);
}

TEST_F(HierarchyTest, TlbLinePromotesAcrossCores)
{
    hierarchy->fillTlbLine(0, 0x3000);
    // Core 1's private L2D misses, shared L3D hits, line promotes.
    const CacheProbeResult first =
        hierarchy->probeTlbLine(1, 0x3000, 0);
    EXPECT_TRUE(first.hit);
    EXPECT_EQ(first.level, MemLevel::L3D);
    const CacheProbeResult second =
        hierarchy->probeTlbLine(1, 0x3000, 10);
    EXPECT_EQ(second.level, MemLevel::L2D);
}

TEST_F(HierarchyTest, InvalidateTlbLineEverywhere)
{
    hierarchy->fillTlbLine(0, 0x3000);
    hierarchy->probeTlbLine(1, 0x3000, 0); // promote into core 1 L2D
    hierarchy->invalidateTlbLine(0x3000);
    const CacheProbeResult core0 =
        hierarchy->probeTlbLine(0, 0x3000, 0);
    const CacheProbeResult core1 =
        hierarchy->probeTlbLine(1, 0x3000, 0);
    EXPECT_FALSE(core0.hit);
    EXPECT_FALSE(core1.hit);
}

TEST_F(HierarchyTest, ProbeHitRates)
{
    hierarchy->fillTlbLine(0, 0x3000);
    hierarchy->probeTlbLine(0, 0x3000, 0); // L2D hit
    hierarchy->probeTlbLine(0, 0x4000, 0); // full miss
    EXPECT_DOUBLE_EQ(hierarchy->l2TlbProbeHitRate(), 0.5);
    EXPECT_DOUBLE_EQ(hierarchy->l3TlbProbeHitRate(), 0.0);
}

TEST_F(HierarchyTest, WriteAllocates)
{
    hierarchy->accessData(0, 0x5000, AccessType::Write, 0);
    const HierarchyAccessResult again =
        hierarchy->accessData(0, 0x5000, AccessType::Read, 100);
    EXPECT_EQ(again.servedBy, MemLevel::L1D);
}

TEST_F(HierarchyTest, ResetStatsClearsRates)
{
    hierarchy->accessData(0, 0x1000, AccessType::Read, 0);
    hierarchy->resetStats();
    EXPECT_EQ(hierarchy->l1d(0).hitCount(LineKind::Data), 0u);
    EXPECT_EQ(hierarchy->l1d(0).missCount(LineKind::Data), 0u);
    // State is preserved, only statistics clear.
    EXPECT_TRUE(hierarchy->l1d(0).contains(0x1000));
}

TEST_F(HierarchyTest, WritebackTrafficOffByDefault)
{
    // Dirty victims are counted but no DRAM write happens.
    hierarchy->accessData(0, 0x1000, AccessType::Write, 0);
    const std::uint64_t after_fill = memory->accessCount();
    // Evict it from L3 by filling its set with conflicting lines.
    const std::uint64_t l3_sets = config.l3.numSets();
    for (unsigned way = 0; way <= config.l3.associativity; ++way) {
        hierarchy->accessData(
            0, 0x1000 + (way + 1) * l3_sets * 64, AccessType::Read,
            1000 + way);
    }
    // Exactly one DRAM access per demand miss: no extra writes.
    EXPECT_EQ(memory->accessCount(),
              after_fill + config.l3.associativity + 1);
}

TEST_F(HierarchyTest, WritebackTrafficModelsDramWrites)
{
    SystemConfig wb_config = SystemConfig::table1();
    wb_config.numCores = 1;
    wb_config.modelWritebackTraffic = true;
    DramController wb_memory(wb_config.mainMemory);
    DataHierarchy wb_hierarchy(wb_config, wb_memory);

    // Dirty a line, then evict it from the L3 via set conflicts.
    wb_hierarchy.accessData(0, 0x1000, AccessType::Write, 0);
    // Propagate the dirty bit to L3: in this model the L1 fill is
    // dirty; force L3 victimisation of 0x1000's line and verify the
    // traffic counter moved beyond the demand misses.
    const std::uint64_t l3_sets = wb_config.l3.numSets();
    const std::uint64_t demand_before = wb_memory.accessCount();
    unsigned fills = 0;
    for (unsigned way = 0; way <= wb_config.l3.associativity; ++way) {
        wb_hierarchy.accessData(
            0, 0x1000 + (way + 1) * l3_sets * 64, AccessType::Write,
            1000 + way);
        ++fills;
    }
    // With writeback modelling, DRAM sees demand misses plus at
    // least... the dirty L3 victims. (L3 lines only become dirty via
    // write-allocate fills at L1; our tag-only model marks L3 lines
    // dirty only on direct L3 write hits, so count conservatively:
    // the access count must be at least the demand misses.)
    EXPECT_GE(wb_memory.accessCount(), demand_before + fills);
    EXPECT_EQ(wb_memory.accessCount() - (demand_before + fills),
              wb_hierarchy.dramWritebackCount());
}

} // namespace
} // namespace pomtlb

/**
 * @file
 * Enforces the SchemeKind deprecation: the legacy enum and its
 * overloads are a compatibility shim for out-of-tree callers only,
 * so no in-tree source outside the shim itself (and its dedicated
 * tests) may mention SchemeKind. New code selects schemes by
 * registry name (sim/scheme_registry.hh).
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace pomtlb
{
namespace
{

namespace fs = std::filesystem;

/**
 * The only files allowed to mention SchemeKind, relative to the
 * repository root: the shim's definition, the overloads kept for
 * compatibility, the scheme registrations that declare their legacy
 * kind, the shim's own tests, and this enforcement test.
 */
const std::set<std::string> kShimAllowlist = {
    "src/baseline/nested_scheme.cc",
    "src/baseline/shared_l2_scheme.cc",
    "src/baseline/tsb_scheme.cc",
    "src/pomtlb/scheme.cc",
    "src/sim/experiment.cc",
    "src/sim/experiment.hh",
    "src/sim/machine.cc",
    "src/sim/machine.hh",
    "src/sim/scheme.hh",
    "src/sim/scheme_registry.cc",
    "src/sim/scheme_registry.hh",
    "src/sim/sweep.cc",
    "src/sim/sweep.hh",
    "tests/test_scheme_api_migration.cc",
    "tests/test_scheme_registry.cc",
};

bool
isSourceFile(const fs::path &path)
{
    const std::string ext = path.extension().string();
    return ext == ".cc" || ext == ".hh" || ext == ".cpp" ||
           ext == ".hpp";
}

TEST(SchemeApiMigration, NoInTreeUseOfSchemeKindOutsideTheShim)
{
    const fs::path root{POMTLB_SOURCE_DIR};
    std::vector<std::string> offenders;
    for (const char *top :
         {"src", "tests", "bench", "examples", "tools"}) {
        const fs::path dir = root / top;
        ASSERT_TRUE(fs::is_directory(dir)) << dir;
        for (const auto &entry :
             fs::recursive_directory_iterator(dir)) {
            if (!entry.is_regular_file() ||
                !isSourceFile(entry.path()))
                continue;
            const std::string rel =
                fs::relative(entry.path(), root).generic_string();
            if (kShimAllowlist.count(rel))
                continue;
            std::ifstream in(entry.path());
            ASSERT_TRUE(in) << rel;
            std::ostringstream text;
            text << in.rdbuf();
            if (text.str().find("SchemeKind") != std::string::npos)
                offenders.push_back(rel);
        }
    }
    EXPECT_TRUE(offenders.empty())
        << "SchemeKind is a deprecated compatibility shim; migrate "
           "these files to registry scheme names "
           "(sim/scheme_registry.hh):\n  " +
               [&] {
                   std::string joined;
                   for (const std::string &path : offenders)
                       joined += path + "\n  ";
                   return joined;
               }();
}

TEST(SchemeApiMigration, ShimFilesStillExistWhileDeprecated)
{
    // When the shim is finally deleted, this test (and the
    // allowlist) should be deleted with it; until then the allowlist
    // must not go stale by naming files that moved.
    const fs::path root{POMTLB_SOURCE_DIR};
    for (const std::string &rel : kShimAllowlist)
        EXPECT_TRUE(fs::is_regular_file(root / rel)) << rel;
}

} // namespace
} // namespace pomtlb

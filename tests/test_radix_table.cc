/**
 * @file
 * Radix page-table tests: mapping, walking, PSC-skip walks, page-size
 * conflicts, and frame-allocator behaviour.
 */

#include <gtest/gtest.h>

#include "pagetable/radix_table.hh"

namespace pomtlb
{
namespace
{

class RadixTest : public ::testing::Test
{
  protected:
    RadixTest() : frames(0x1000, Addr{1} << 32) {}

    FrameAllocator frames;
};

TEST_F(RadixTest, AllocatorAlignsAndAdvances)
{
    const Addr a = frames.allocate(PageSize::Small4K);
    const Addr b = frames.allocate(PageSize::Small4K);
    EXPECT_EQ(a % smallPageBytes, 0u);
    EXPECT_EQ(b, a + smallPageBytes);
    const Addr c = frames.allocate(PageSize::Large2M);
    EXPECT_EQ(c % largePageBytes, 0u);
    EXPECT_GT(c, b);
}

TEST_F(RadixTest, Map4kAndWalk)
{
    RadixPageTable table("t", frames);
    const Addr vaddr = Addr{0x1234} << smallPageShift;
    table.map(0x1234, PageSize::Small4K, 0x555);

    const RadixWalkPath path = table.walk(vaddr);
    EXPECT_TRUE(path.present);
    EXPECT_EQ(path.reads, 4u);
    EXPECT_EQ(path.pfn, 0x555u);
    EXPECT_EQ(path.size, PageSize::Small4K);
    // Levels descend 4, 3, 2, 1.
    EXPECT_EQ(path.pteLevel[0], 4u);
    EXPECT_EQ(path.pteLevel[3], 1u);
}

TEST_F(RadixTest, Map2mWalkIsThreeLevels)
{
    RadixPageTable table("t", frames);
    const Addr vaddr = Addr{0x77} << largePageShift;
    table.map(0x77, PageSize::Large2M, 0x888);

    const RadixWalkPath path = table.walk(vaddr);
    EXPECT_TRUE(path.present);
    EXPECT_EQ(path.reads, 3u);
    EXPECT_EQ(path.size, PageSize::Large2M);
    EXPECT_EQ(path.pfn, 0x888u);
}

TEST_F(RadixTest, UnmappedWalkNotPresent)
{
    RadixPageTable table("t", frames);
    const RadixWalkPath path = table.walk(0xdead000);
    EXPECT_FALSE(path.present);
    // The root read still happened before discovering the hole.
    EXPECT_EQ(path.reads, 1u);
}

TEST_F(RadixTest, PscSkippedWalkReadsFewerLevels)
{
    RadixPageTable table("t", frames);
    const Addr vaddr = Addr{0x1234} << smallPageShift;
    table.map(0x1234, PageSize::Small4K, 0x555);

    // PDE-cache hit: start reading at level 1.
    const RadixWalkPath path = table.walk(vaddr, 1);
    EXPECT_TRUE(path.present);
    EXPECT_EQ(path.reads, 1u);
    EXPECT_EQ(path.pteLevel[0], 1u);
    EXPECT_EQ(path.pfn, 0x555u);
}

TEST_F(RadixTest, PteAddressesLiveInTableFrames)
{
    RadixPageTable table("t", frames);
    table.map(0x1234, PageSize::Small4K, 0x555);
    const RadixWalkPath path =
        table.walk(Addr{0x1234} << smallPageShift);
    // The first read is in the root frame.
    EXPECT_EQ(path.pteAddr[0] & ~Addr{0xfff}, table.rootAddr());
    // Each PTE is 8-byte aligned within its 4 KB frame.
    for (unsigned i = 0; i < path.reads; ++i)
        EXPECT_EQ(path.pteAddr[i] % 8, 0u);
}

TEST_F(RadixTest, NeighbouringPagesShareTableNodes)
{
    RadixPageTable table("t", frames);
    table.map(0x1000, PageSize::Small4K, 1);
    const std::uint64_t nodes_before = table.nodeCount();
    table.map(0x1001, PageSize::Small4K, 2);
    // The second mapping reuses every intermediate node.
    EXPECT_EQ(table.nodeCount(), nodes_before);
    EXPECT_EQ(table.mappedPageCount(), 2u);
}

TEST_F(RadixTest, DistantPagesAllocateNewNodes)
{
    RadixPageTable table("t", frames);
    table.map(0x1000, PageSize::Small4K, 1);
    const std::uint64_t nodes_before = table.nodeCount();
    // A VPN differing in the PML4 index needs a fresh subtree.
    table.map(Addr{1} << (39 - smallPageShift + 9), PageSize::Small4K,
              2);
    EXPECT_GT(table.nodeCount(), nodes_before);
}

TEST_F(RadixTest, RemapUpdatesFrame)
{
    RadixPageTable table("t", frames);
    table.map(0x10, PageSize::Small4K, 1);
    table.map(0x10, PageSize::Small4K, 2);
    EXPECT_EQ(table.mappedPageCount(), 1u);
    EXPECT_EQ(table.walk(Addr{0x10} << smallPageShift).pfn, 2u);
}

TEST_F(RadixTest, PageSizeConflictPanics)
{
    RadixPageTable table("t", frames);
    // Map the 2 MB region as a large page, then try a 4 KB page
    // inside it.
    table.map(0x5, PageSize::Large2M, 1);
    const PageNum inside =
        (Addr{0x5} << (largePageShift - smallPageShift)) + 3;
    EXPECT_THROW(table.map(inside, PageSize::Small4K, 2),
                 std::logic_error);
}

TEST_F(RadixTest, UnmapRemovesTranslation)
{
    RadixPageTable table("t", frames);
    const Addr vaddr = Addr{0x42} << smallPageShift;
    table.map(0x42, PageSize::Small4K, 9);
    EXPECT_TRUE(table.isMapped(vaddr));
    EXPECT_TRUE(table.unmap(vaddr));
    EXPECT_FALSE(table.isMapped(vaddr));
    EXPECT_FALSE(table.unmap(vaddr));
    EXPECT_EQ(table.mappedPageCount(), 0u);
}

} // namespace
} // namespace pomtlb

/**
 * @file
 * POM-TLB scheme tests: the Figure 7 flow — cache probes, DRAM
 * fallback, second-size lookup, walk fallback with install, and the
 * feature switches (cacheable / predictors).
 */

#include <gtest/gtest.h>

#include "pomtlb/scheme.hh"
#include "sim/machine.hh"

namespace pomtlb
{
namespace
{

class PomSchemeTest : public ::testing::Test
{
  protected:
    void
    build(bool cacheable = true, bool bypass = true)
    {
        SystemConfig config = SystemConfig::table1();
        config.numCores = 2;
        config.pomTlb.cacheable = cacheable;
        config.pomTlb.bypassPredictor = bypass;
        machine = std::make_unique<Machine>(config,
                                            "POM-TLB");
        scheme = machine->pomTlbScheme();
        ASSERT_NE(scheme, nullptr);
    }

    std::unique_ptr<Machine> machine;
    PomTlbScheme *scheme = nullptr;
};

TEST_F(PomSchemeTest, ColdMissWalksAndInstalls)
{
    build();
    const Addr vaddr = 0x123456000;
    const SchemeResult result =
        scheme->translateMiss(0, vaddr, PageSize::Small4K, 1, 1, 0);
    EXPECT_TRUE(result.walked);
    EXPECT_GT(result.cycles, 0u);
    // The walked translation landed in the POM-TLB array.
    EXPECT_TRUE(machine->pomTlbDevice()
                    ->searchSet(vaddr, 1, 1, PageSize::Small4K)
                    .hit);
}

TEST_F(PomSchemeTest, SecondRequestServedWithoutWalk)
{
    build();
    const Addr vaddr = 0x123456000;
    scheme->translateMiss(0, vaddr, PageSize::Small4K, 1, 1, 0);
    const SchemeResult again = scheme->translateMiss(
        0, vaddr, PageSize::Small4K, 1, 1, 10000);
    EXPECT_FALSE(again.walked);
    EXPECT_EQ(scheme->servedCount(PomServiceLevel::PageWalk), 1u);
}

TEST_F(PomSchemeTest, CachedLineServesFromL2D)
{
    build();
    const Addr vaddr = 0x123456000;
    scheme->translateMiss(0, vaddr, PageSize::Small4K, 1, 1, 0);
    // The cold miss observed empty caches and trained the single-bit
    // bypass predictor toward 'bypass'; the second access therefore
    // goes straight to DRAM, observes the now-cached line, and
    // retrains. The third access probes the caches and hits the L2D$
    // (this one-step oscillation is inherent to the paper's 1-bit
    // design and part of why its bypass accuracy is only ~46%).
    scheme->translateMiss(0, vaddr, PageSize::Small4K, 1, 1, 10000);
    const SchemeResult third = scheme->translateMiss(
        0, vaddr, PageSize::Small4K, 1, 1, 20000);
    EXPECT_FALSE(third.walked);
    EXPECT_GT(scheme->servedCount(PomServiceLevel::L2Cache), 0u);
}

TEST_F(PomSchemeTest, CrossCoreServedFromL3)
{
    build();
    const Addr vaddr = 0x123456000;
    scheme->translateMiss(0, vaddr, PageSize::Small4K, 1, 1, 0);
    const SchemeResult other = scheme->translateMiss(
        1, vaddr, PageSize::Small4K, 1, 1, 10000);
    EXPECT_FALSE(other.walked);
    EXPECT_GT(scheme->servedCount(PomServiceLevel::L3Cache), 0u);
}

TEST_F(PomSchemeTest, UncacheableConfigurationGoesToDram)
{
    build(/*cacheable=*/false);
    const Addr vaddr = 0x123456000;
    scheme->translateMiss(0, vaddr, PageSize::Small4K, 1, 1, 0);
    const SchemeResult again = scheme->translateMiss(
        0, vaddr, PageSize::Small4K, 1, 1, 10000);
    EXPECT_FALSE(again.walked);
    EXPECT_GT(scheme->servedCount(PomServiceLevel::PomDram), 0u);
    EXPECT_EQ(scheme->servedCount(PomServiceLevel::L2Cache), 0u);
    EXPECT_EQ(scheme->servedCount(PomServiceLevel::L3Cache), 0u);
}

TEST_F(PomSchemeTest, TranslationIsCorrect)
{
    build();
    const Addr vaddr = 0xdeadbee000;
    const SchemeResult first =
        scheme->translateMiss(0, vaddr, PageSize::Small4K, 1, 1, 0);
    const SchemeResult second = scheme->translateMiss(
        0, vaddr, PageSize::Small4K, 1, 1, 5000);
    EXPECT_EQ(first.pfn, second.pfn);
    const TranslationInfo info = machine->memoryMap().ensureMapped(
        1, 1, vaddr, PageSize::Small4K);
    EXPECT_EQ(first.pfn, info.hpa >> smallPageShift);
}

TEST_F(PomSchemeTest, LargePageFlow)
{
    build();
    const Addr vaddr = 0x80000000;
    const SchemeResult first =
        scheme->translateMiss(0, vaddr, PageSize::Large2M, 1, 1, 0);
    EXPECT_TRUE(first.walked);
    const SchemeResult second = scheme->translateMiss(
        0, vaddr, PageSize::Large2M, 1, 1, 5000);
    EXPECT_FALSE(second.walked);
    EXPECT_EQ(first.pfn, second.pfn);
}

TEST_F(PomSchemeTest, SizePredictorTrainsOnActualSizes)
{
    build();
    const Addr vaddr = 0x80000000;
    scheme->translateMiss(0, vaddr, PageSize::Large2M, 1, 1, 0);
    scheme->translateMiss(0, vaddr, PageSize::Large2M, 1, 1, 1000);
    // After training, the predictor for this region predicts large.
    EXPECT_EQ(scheme->predictor(0).predictSize(vaddr),
              PageSize::Large2M);
}

TEST_F(PomSchemeTest, ServiceRatesSumSensibly)
{
    build();
    for (Addr vaddr = 0x1000000; vaddr < 0x1000000 + 50 * 4096;
         vaddr += 4096) {
        scheme->translateMiss(0, vaddr, PageSize::Small4K, 1, 1, 0);
        scheme->translateMiss(0, vaddr, PageSize::Small4K, 1, 1, 1);
    }
    const std::uint64_t total =
        scheme->servedCount(PomServiceLevel::L2Cache) +
        scheme->servedCount(PomServiceLevel::L3Cache) +
        scheme->servedCount(PomServiceLevel::PomDram) +
        scheme->servedCount(PomServiceLevel::PageWalk);
    EXPECT_EQ(total, scheme->requestCount());
    EXPECT_EQ(scheme->requestCount(), 100u);
    EXPECT_GT(scheme->walkEliminationRate(), 0.0);
}

TEST_F(PomSchemeTest, PrewarmEliminatesWalks)
{
    build();
    const Addr vaddr = 0x55555000;
    const TranslationInfo info = machine->memoryMap().ensureMapped(
        1, 1, vaddr, PageSize::Small4K);
    scheme->prewarm(0, vaddr, PageSize::Small4K, 1, 1,
                    info.hpa >> smallPageShift);
    const SchemeResult result =
        scheme->translateMiss(0, vaddr, PageSize::Small4K, 1, 1, 0);
    EXPECT_FALSE(result.walked);
    EXPECT_EQ(result.pfn, info.hpa >> smallPageShift);
}

TEST_F(PomSchemeTest, VmShootdownDropsEntries)
{
    build();
    const Addr vaddr = 0x123456000;
    scheme->translateMiss(0, vaddr, PageSize::Small4K, 1, 1, 0);
    scheme->invalidateVm(1);
    const SchemeResult after = scheme->translateMiss(
        0, vaddr, PageSize::Small4K, 1, 1, 10000);
    EXPECT_TRUE(after.walked);
}

} // namespace
} // namespace pomtlb

/**
 * @file
 * Replacement-policy tests: LRU exactness, tree-PLRU sanity, random
 * determinism.
 */

#include <gtest/gtest.h>

#include <set>

#include "cache/replacement.hh"

namespace pomtlb
{
namespace
{

TEST(Lru, EvictsLeastRecentlyUsed)
{
    LruPolicy lru(4, 4);
    for (unsigned way = 0; way < 4; ++way)
        lru.touch(0, way);
    // Way 0 is oldest.
    EXPECT_EQ(lru.victim(0), 0u);
    lru.touch(0, 0);
    // Now way 1 is oldest.
    EXPECT_EQ(lru.victim(0), 1u);
}

TEST(Lru, InvalidatedWayPreferred)
{
    LruPolicy lru(1, 4);
    for (unsigned way = 0; way < 4; ++way)
        lru.touch(0, way);
    lru.invalidate(0, 2);
    EXPECT_EQ(lru.victim(0), 2u);
}

TEST(Lru, SetsAreIndependent)
{
    LruPolicy lru(2, 2);
    lru.touch(0, 0);
    lru.touch(0, 1);
    lru.touch(1, 1);
    lru.touch(1, 0);
    EXPECT_EQ(lru.victim(0), 0u);
    EXPECT_EQ(lru.victim(1), 1u);
}

TEST(TreePlru, VictimNeverMostRecentlyUsed)
{
    TreePlruPolicy plru(1, 8);
    for (int round = 0; round < 100; ++round) {
        const unsigned touched = round % 8;
        plru.touch(0, touched);
        EXPECT_NE(plru.victim(0), touched);
    }
}

TEST(TreePlru, InvalidateMakesWayVictim)
{
    TreePlruPolicy plru(1, 8);
    for (unsigned way = 0; way < 8; ++way)
        plru.touch(0, way);
    plru.invalidate(0, 3);
    EXPECT_EQ(plru.victim(0), 3u);
}

TEST(TreePlru, CyclicTouchesCycleVictims)
{
    // Touching every way in order must leave some untouched-longest
    // way as victim; over rounds, all ways should appear as victims.
    TreePlruPolicy plru(1, 4);
    std::set<unsigned> victims;
    for (int round = 0; round < 16; ++round) {
        const unsigned v = plru.victim(0);
        victims.insert(v);
        plru.touch(0, v);
    }
    EXPECT_EQ(victims.size(), 4u);
}

TEST(Random, DeterministicWithSeed)
{
    RandomPolicy a(8, 42);
    RandomPolicy b(8, 42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.victim(0), b.victim(0));
}

TEST(Random, CoversAllWays)
{
    RandomPolicy random(4, 7);
    std::set<unsigned> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(random.victim(0));
    EXPECT_EQ(seen.size(), 4u);
}

TEST(Factory, CreatesRequestedKind)
{
    auto lru = ReplacementPolicy::create(ReplacementKind::Lru, 4, 4);
    auto plru =
        ReplacementPolicy::create(ReplacementKind::TreePlru, 4, 4);
    auto rnd =
        ReplacementPolicy::create(ReplacementKind::Random, 4, 4, 1);
    EXPECT_NE(dynamic_cast<LruPolicy *>(lru.get()), nullptr);
    EXPECT_NE(dynamic_cast<TreePlruPolicy *>(plru.get()), nullptr);
    EXPECT_NE(dynamic_cast<RandomPolicy *>(rnd.get()), nullptr);
}

} // namespace
} // namespace pomtlb

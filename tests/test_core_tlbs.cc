/**
 * @file
 * Per-core TLB-stack tests: level routing, penalty accounting, and
 * the no-private-L2 (Shared_L2 baseline) configuration.
 */

#include <gtest/gtest.h>

#include "tlb/core_tlbs.hh"

namespace pomtlb
{
namespace
{

class CoreTlbsTest : public ::testing::Test
{
  protected:
    CoreTlbsTest() : config(SystemConfig::table1()) {}

    SystemConfig config;
};

TEST_F(CoreTlbsTest, MissThenInsertThenL1Hit)
{
    CoreTlbs tlbs(config, 0, true);
    const CoreTlbResult miss =
        tlbs.lookup(0x10, PageSize::Small4K, 1, 1);
    EXPECT_EQ(miss.level, TlbLevel::Miss);
    EXPECT_EQ(miss.cycles, config.l1TlbSmall.missPenalty +
                               config.l2Tlb.missPenalty);

    tlbs.insert(0x10, PageSize::Small4K, 1, 1, 0x99);
    const CoreTlbResult hit =
        tlbs.lookup(0x10, PageSize::Small4K, 1, 1);
    EXPECT_EQ(hit.level, TlbLevel::L1);
    EXPECT_EQ(hit.cycles, 0u);
    EXPECT_EQ(hit.pfn, 0x99u);
}

TEST_F(CoreTlbsTest, L2HitRefillsL1)
{
    CoreTlbs tlbs(config, 0, true);
    tlbs.insert(0x10, PageSize::Small4K, 1, 1, 0x99);
    // Evict VPN 0x10 from the small L1 TLB (16 sets x 4 ways): fill
    // its set with conflicting entries.
    const unsigned l1_sets = config.l1TlbSmall.numSets();
    for (PageNum vpn = 0x10 + l1_sets; tlbs.l1SmallTlb().contains(
             0x10, PageSize::Small4K, 1, 1);
         vpn += l1_sets) {
        tlbs.l1For(PageSize::Small4K)
            .insert(vpn, PageSize::Small4K, 1, 1, vpn);
    }

    const CoreTlbResult hit =
        tlbs.lookup(0x10, PageSize::Small4K, 1, 1);
    EXPECT_EQ(hit.level, TlbLevel::L2);
    EXPECT_EQ(hit.cycles, config.l1TlbSmall.missPenalty);
    // And the L1 got refilled.
    EXPECT_TRUE(
        tlbs.l1SmallTlb().contains(0x10, PageSize::Small4K, 1, 1));
}

TEST_F(CoreTlbsTest, SplitL1ByPageSize)
{
    CoreTlbs tlbs(config, 0, true);
    tlbs.insert(0x10, PageSize::Small4K, 1, 1, 0xA);
    tlbs.insert(0x10, PageSize::Large2M, 1, 1, 0xB);
    EXPECT_TRUE(
        tlbs.l1SmallTlb().contains(0x10, PageSize::Small4K, 1, 1));
    EXPECT_TRUE(
        tlbs.l1LargeTlb().contains(0x10, PageSize::Large2M, 1, 1));
    EXPECT_FALSE(
        tlbs.l1SmallTlb().contains(0x10, PageSize::Large2M, 1, 1));
}

TEST_F(CoreTlbsTest, NoPrivateL2Configuration)
{
    CoreTlbs tlbs(config, 0, false);
    EXPECT_FALSE(tlbs.hasPrivateL2());
    const CoreTlbResult miss =
        tlbs.lookup(0x10, PageSize::Small4K, 1, 1);
    EXPECT_EQ(miss.level, TlbLevel::Miss);
    // Only the L1 miss penalty applies: there is no private L2.
    EXPECT_EQ(miss.cycles, config.l1TlbSmall.missPenalty);
    EXPECT_EQ(tlbs.l2Misses(), 1u);
}

TEST_F(CoreTlbsTest, VmShootdownClearsAllLevels)
{
    CoreTlbs tlbs(config, 0, true);
    tlbs.insert(0x10, PageSize::Small4K, 1, 1, 0xA);
    tlbs.insert(0x20, PageSize::Large2M, 1, 1, 0xB);
    tlbs.invalidateVm(1);
    EXPECT_EQ(tlbs.lookup(0x10, PageSize::Small4K, 1, 1).level,
              TlbLevel::Miss);
    EXPECT_EQ(tlbs.lookup(0x20, PageSize::Large2M, 1, 1).level,
              TlbLevel::Miss);
}

TEST_F(CoreTlbsTest, PageShootdownIsPrecise)
{
    CoreTlbs tlbs(config, 0, true);
    tlbs.insert(0x10, PageSize::Small4K, 1, 1, 0xA);
    tlbs.insert(0x11, PageSize::Small4K, 1, 1, 0xB);
    tlbs.invalidatePage(0x10, PageSize::Small4K, 1, 1);
    EXPECT_EQ(tlbs.lookup(0x10, PageSize::Small4K, 1, 1).level,
              TlbLevel::Miss);
    EXPECT_EQ(tlbs.lookup(0x11, PageSize::Small4K, 1, 1).level,
              TlbLevel::L1);
}

TEST_F(CoreTlbsTest, FlushAndMissCounting)
{
    CoreTlbs tlbs(config, 0, true);
    tlbs.insert(0x10, PageSize::Small4K, 1, 1, 0xA);
    tlbs.flush();
    tlbs.lookup(0x10, PageSize::Small4K, 1, 1);
    tlbs.lookup(0x11, PageSize::Small4K, 1, 1);
    EXPECT_EQ(tlbs.l2Misses(), 2u);
    tlbs.resetStats();
    EXPECT_EQ(tlbs.l2Misses(), 0u);
}

} // namespace
} // namespace pomtlb

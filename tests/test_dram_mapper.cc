/**
 * @file
 * DRAM address-mapper tests: decode/encode round trips and layout
 * properties that the row-buffer-hit behaviour depends on.
 */

#include <gtest/gtest.h>

#include "dram/mapper.hh"

namespace pomtlb
{
namespace
{

TEST(DramMapper, RoundTrip)
{
    const DramConfig config = DramConfig::dieStacked();
    DramAddressMapper mapper(config);
    for (Addr addr = 0; addr < (Addr{1} << 22); addr += 64) {
        const DramCoord coord = mapper.decode(addr);
        EXPECT_EQ(mapper.encode(coord), addr);
    }
}

TEST(DramMapper, ConsecutiveBurstsShareRow)
{
    const DramConfig config = DramConfig::dieStacked();
    DramAddressMapper mapper(config);
    // Within one 2 KB row region, all bursts decode to the same
    // channel/bank/row.
    const DramCoord first = mapper.decode(0);
    for (Addr addr = 0; addr < config.rowBufferBytes; addr += 64) {
        const DramCoord coord = mapper.decode(addr);
        EXPECT_EQ(coord.channel, first.channel);
        EXPECT_EQ(coord.bank, first.bank);
        EXPECT_EQ(coord.row, first.row);
    }
    // The next region moves to a different channel or bank or row.
    const DramCoord next = mapper.decode(config.rowBufferBytes);
    EXPECT_FALSE(next == first);
}

TEST(DramMapper, CoversAllBanksAndChannels)
{
    const DramConfig config = DramConfig::ddr4();
    DramAddressMapper mapper(config);
    std::vector<bool> bank_seen(config.numBanks, false);
    std::vector<bool> channel_seen(config.numChannels, false);
    for (Addr addr = 0; addr < (Addr{1} << 24);
         addr += config.rowBufferBytes) {
        const DramCoord coord = mapper.decode(addr);
        ASSERT_LT(coord.bank, config.numBanks);
        ASSERT_LT(coord.channel, config.numChannels);
        bank_seen[coord.bank] = true;
        channel_seen[coord.channel] = true;
    }
    for (bool seen : bank_seen)
        EXPECT_TRUE(seen);
    for (bool seen : channel_seen)
        EXPECT_TRUE(seen);
}

TEST(DramMapper, Ddr4RoundTrip)
{
    const DramConfig config = DramConfig::ddr4();
    DramAddressMapper mapper(config);
    for (Addr addr = 0; addr < (Addr{1} << 23); addr += 4096 + 64) {
        const DramCoord coord = mapper.decode(addr & ~Addr{63});
        EXPECT_EQ(mapper.encode(coord), addr & ~Addr{63});
    }
}

TEST(DramMapper, ColumnWithinRow)
{
    const DramConfig config = DramConfig::dieStacked();
    DramAddressMapper mapper(config);
    const std::uint64_t columns =
        config.rowBufferBytes / config.burstBytes;
    for (Addr addr = 0; addr < config.rowBufferBytes; addr += 64) {
        const DramCoord coord = mapper.decode(addr);
        EXPECT_LT(coord.column, columns);
    }
}

TEST(DramMapper, BitBudget)
{
    const DramConfig config = DramConfig::dieStacked();
    DramAddressMapper mapper(config);
    EXPECT_EQ(mapper.offsetBits(), 6u);   // 64 B bursts
    EXPECT_EQ(mapper.columnBits(), 5u);   // 2048/64 = 32 columns
    EXPECT_EQ(mapper.channelBits(), 0u);  // 1 channel
    EXPECT_EQ(mapper.bankBits(), 3u);     // 8 banks
}

} // namespace
} // namespace pomtlb

/**
 * @file
 * Result-table formatter tests.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "analysis/report.hh"

namespace pomtlb
{
namespace
{

TEST(Report, AlignedTable)
{
    ResultTable table({"Benchmark", "Improvement (%)"});
    table.addRow({"mcf", ResultTable::num(17.5, 1)});
    table.addRow({"streamcluster", ResultTable::num(1.0, 1)});

    std::ostringstream oss;
    table.print(oss);
    const std::string out = oss.str();
    EXPECT_NE(out.find("Benchmark"), std::string::npos);
    EXPECT_NE(out.find("mcf"), std::string::npos);
    EXPECT_NE(out.find("17.5"), std::string::npos);
    EXPECT_NE(out.find("streamcluster"), std::string::npos);
    // Separator line present.
    EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Report, CsvOutput)
{
    ResultTable table({"a", "b"});
    table.addRow({"1", "2"});
    table.addRow({"3", "4"});
    std::ostringstream oss;
    table.printCsv(oss);
    EXPECT_EQ(oss.str(), "a,b\n1,2\n3,4\n");
}

TEST(Report, NumFormatting)
{
    EXPECT_EQ(ResultTable::num(3.14159, 2), "3.14");
    EXPECT_EQ(ResultTable::num(3.0, 0), "3");
    EXPECT_EQ(ResultTable::num(-1.5, 1), "-1.5");
}

TEST(Report, RowWidthMismatchPanics)
{
    ResultTable table({"a", "b"});
    EXPECT_THROW(table.addRow({"only-one"}), std::logic_error);
}

TEST(Report, ExperimentHeader)
{
    std::ostringstream oss;
    printExperimentHeader(oss, "Figure 8", "Performance Improvement");
    EXPECT_NE(oss.str().find("Figure 8"), std::string::npos);
    EXPECT_NE(oss.str().find("Performance Improvement"),
              std::string::npos);
}

TEST(Report, RowCount)
{
    ResultTable table({"x"});
    EXPECT_EQ(table.rowCount(), 0u);
    table.addRow({"1"});
    EXPECT_EQ(table.rowCount(), 1u);
}

} // namespace
} // namespace pomtlb

/**
 * @file
 * Experiment-runner tests: scheme summaries and the all-scheme
 * comparison that feeds Figure 8.
 */

#include <gtest/gtest.h>

#include "sim/experiment.hh"
#include "sim/scheme_registry.hh"

namespace pomtlb
{
namespace
{

ExperimentConfig
quickConfig()
{
    ExperimentConfig config;
    config.system.numCores = 2;
    config.engine.refsPerCore = 4000;
    config.engine.warmupRefsPerCore = 2000;
    return config;
}

TEST(Experiment, RunSchemeSummarises)
{
    const SchemeRunSummary summary = runScheme(
        ProfileRegistry::byName("gups"), "POM-TLB",
        quickConfig());
    EXPECT_EQ(summary.benchmark, "gups");
    EXPECT_EQ(summary.scheme, "POM-TLB");
    EXPECT_GT(summary.translationCycles, 0u);
    EXPECT_GT(summary.avgPenaltyPerMiss, 0.0);
    EXPECT_GE(summary.sizePredictorAccuracy, 0.0);
    EXPECT_LE(summary.sizePredictorAccuracy, 1.0);
    EXPECT_GE(summary.dieStackedRowBufferHitRate, 0.0);
}

TEST(Experiment, BaselineSummaryHasNoPomStats)
{
    const SchemeRunSummary summary = runScheme(
        ProfileRegistry::byName("gups"), "Baseline",
        quickConfig());
    EXPECT_DOUBLE_EQ(summary.pomL2CacheServiceRate, 0.0);
    EXPECT_DOUBLE_EQ(summary.sizePredictorAccuracy, 0.0);
    EXPECT_DOUBLE_EQ(summary.walkFraction, 1.0);
}

TEST(Experiment, CompareSchemesProducesImprovements)
{
    const BenchmarkComparison comparison = compareSchemes(
        ProfileRegistry::byName("gups"), quickConfig());
    EXPECT_EQ(comparison.benchmark, "gups");
    // One run + delta per registered scheme, in registry order —
    // the paper's four first, then the contenders.
    const std::vector<std::string> names =
        SchemeRegistry::global().names();
    ASSERT_EQ(comparison.runs.size(), names.size());
    for (std::size_t i = 0; i < comparison.runs.size(); ++i)
        EXPECT_EQ(comparison.runs[i].first, names[i]);
    const std::vector<std::string> paper = {"Baseline", "POM-TLB",
                                            "Shared_L2", "TSB"};
    for (std::size_t i = 0; i < paper.size(); ++i)
        EXPECT_EQ(comparison.runs[i].first, paper[i]);
    const SchemeDelta &baseline =
        comparison.delta("Baseline");
    EXPECT_DOUBLE_EQ(baseline.costRatio, 1.0);
    EXPECT_DOUBLE_EQ(baseline.improvementPct, 0.0);

    const SchemeDelta &pom = comparison.delta("POM-TLB");
    EXPECT_GT(pom.costRatio, 0.0);
    EXPECT_LT(pom.costRatio, 1.0);
    // POM-TLB improves over the baseline on gups.
    EXPECT_GT(pom.improvementPct, 0.0);
    // And beats the TSB by a wide margin (the paper's "order of
    // difference" observation for gups).
    EXPECT_GT(pom.improvementPct,
              comparison.delta("TSB").improvementPct + 1.0);
}

TEST(Experiment, PomImprovementOnlyMatchesComparison)
{
    const ExperimentConfig config = quickConfig();
    const BenchmarkComparison comparison =
        compareSchemes(ProfileRegistry::byName("gups"), config);
    const double only = pomImprovementOnly(
        ProfileRegistry::byName("gups"), config);
    EXPECT_NEAR(only,
                comparison.delta("POM-TLB").improvementPct,
                1e-9);
}

TEST(Experiment, PomImprovementOverloadVariesOnlyPomSide)
{
    // The overload with an independent POM-side SystemConfig must
    // agree with the two-argument form when given the same system,
    // and actually apply the override when given a different one.
    const ExperimentConfig config = quickConfig();
    const BenchmarkProfile &profile =
        ProfileRegistry::byName("gups");

    const double same =
        pomImprovementOnly(profile, config, config.system);
    EXPECT_NEAR(same, pomImprovementOnly(profile, config), 1e-12);

    SystemConfig uncached = config.system;
    uncached.pomTlb.cacheable = false;
    const double without_caching =
        pomImprovementOnly(profile, config, uncached);
    // gups relies on cached POM entries; disabling data caching
    // must change (lower) the improvement.
    EXPECT_NE(without_caching, same);
}

TEST(Experiment, DefaultConfigRespectsQuickEnv)
{
    // Without the env var the defaults hold.
    const ExperimentConfig config = defaultExperimentConfig();
    EXPECT_GE(config.engine.refsPerCore, 20000u);
}

TEST(Experiment, NativeModeRuns)
{
    ExperimentConfig config = quickConfig();
    config.system.mode = ExecMode::Native;
    const SchemeRunSummary summary = runScheme(
        ProfileRegistry::byName("gups"), "Baseline",
        config);
    EXPECT_EQ(summary.mode, ExecMode::Native);
    EXPECT_GT(summary.avgPenaltyPerMiss, 0.0);
}

TEST(Experiment, VirtualizedWalksCostMoreThanNative)
{
    ExperimentConfig native_config = quickConfig();
    native_config.system.mode = ExecMode::Native;
    ExperimentConfig virt_config = quickConfig();

    const SchemeRunSummary native = runScheme(
        ProfileRegistry::byName("gups"), "Baseline",
        native_config);
    const SchemeRunSummary virt = runScheme(
        ProfileRegistry::byName("gups"), "Baseline",
        virt_config);
    // Figure 3's message: virtualized translation costs more.
    EXPECT_GT(virt.avgPenaltyPerMiss, native.avgPenaltyPerMiss);
}

} // namespace
} // namespace pomtlb

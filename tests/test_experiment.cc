/**
 * @file
 * Experiment-runner tests: scheme summaries and the four-scheme
 * comparison that feeds Figure 8.
 */

#include <gtest/gtest.h>

#include "sim/experiment.hh"

namespace pomtlb
{
namespace
{

ExperimentConfig
quickConfig()
{
    ExperimentConfig config;
    config.system.numCores = 2;
    config.engine.refsPerCore = 4000;
    config.engine.warmupRefsPerCore = 2000;
    return config;
}

TEST(Experiment, RunSchemeSummarises)
{
    const SchemeRunSummary summary = runScheme(
        ProfileRegistry::byName("gups"), SchemeKind::PomTlb,
        quickConfig());
    EXPECT_EQ(summary.benchmark, "gups");
    EXPECT_EQ(summary.scheme, SchemeKind::PomTlb);
    EXPECT_GT(summary.translationCycles, 0u);
    EXPECT_GT(summary.avgPenaltyPerMiss, 0.0);
    EXPECT_GE(summary.sizePredictorAccuracy, 0.0);
    EXPECT_LE(summary.sizePredictorAccuracy, 1.0);
    EXPECT_GE(summary.dieStackedRowBufferHitRate, 0.0);
}

TEST(Experiment, BaselineSummaryHasNoPomStats)
{
    const SchemeRunSummary summary = runScheme(
        ProfileRegistry::byName("gups"), SchemeKind::NestedWalk,
        quickConfig());
    EXPECT_DOUBLE_EQ(summary.pomL2CacheServiceRate, 0.0);
    EXPECT_DOUBLE_EQ(summary.sizePredictorAccuracy, 0.0);
    EXPECT_DOUBLE_EQ(summary.walkFraction, 1.0);
}

TEST(Experiment, CompareSchemesProducesImprovements)
{
    const BenchmarkComparison comparison = compareSchemes(
        ProfileRegistry::byName("gups"), quickConfig());
    EXPECT_EQ(comparison.benchmark, "gups");
    EXPECT_GT(comparison.pomCostRatio, 0.0);
    EXPECT_LT(comparison.pomCostRatio, 1.0);
    // POM-TLB improves over the baseline on gups.
    EXPECT_GT(comparison.pomImprovementPct, 0.0);
    // And beats the TSB by a wide margin (the paper's "order of
    // difference" observation for gups).
    EXPECT_GT(comparison.pomImprovementPct,
              comparison.tsbImprovementPct + 1.0);
}

TEST(Experiment, PomImprovementOnlyMatchesComparison)
{
    const ExperimentConfig config = quickConfig();
    const BenchmarkComparison comparison =
        compareSchemes(ProfileRegistry::byName("gups"), config);
    const double only = pomImprovementOnly(
        ProfileRegistry::byName("gups"), config);
    EXPECT_NEAR(only, comparison.pomImprovementPct, 1e-9);
}

TEST(Experiment, DefaultConfigRespectsQuickEnv)
{
    // Without the env var the defaults hold.
    const ExperimentConfig config = defaultExperimentConfig();
    EXPECT_GE(config.engine.refsPerCore, 20000u);
}

TEST(Experiment, NativeModeRuns)
{
    ExperimentConfig config = quickConfig();
    config.system.mode = ExecMode::Native;
    const SchemeRunSummary summary = runScheme(
        ProfileRegistry::byName("gups"), SchemeKind::NestedWalk,
        config);
    EXPECT_EQ(summary.mode, ExecMode::Native);
    EXPECT_GT(summary.avgPenaltyPerMiss, 0.0);
}

TEST(Experiment, VirtualizedWalksCostMoreThanNative)
{
    ExperimentConfig native_config = quickConfig();
    native_config.system.mode = ExecMode::Native;
    ExperimentConfig virt_config = quickConfig();

    const SchemeRunSummary native = runScheme(
        ProfileRegistry::byName("gups"), SchemeKind::NestedWalk,
        native_config);
    const SchemeRunSummary virt = runScheme(
        ProfileRegistry::byName("gups"), SchemeKind::NestedWalk,
        virt_config);
    // Figure 3's message: virtualized translation costs more.
    EXPECT_GT(virt.avgPenaltyPerMiss, native.avgPenaltyPerMiss);
}

} // namespace
} // namespace pomtlb

/**
 * @file
 * Benchmark-profile registry tests: the fifteen workloads, Table 2
 * constants, and model-parameter sanity.
 */

#include <gtest/gtest.h>

#include "trace/profile.hh"

namespace pomtlb
{
namespace
{

TEST(Profiles, FifteenWorkloadsInFigureOrder)
{
    const auto &all = ProfileRegistry::all();
    ASSERT_EQ(all.size(), 15u);
    EXPECT_EQ(all.front().name, "astar");
    EXPECT_EQ(all.back().name, "zeusmp");
}

TEST(Profiles, Table2ValuesMatchPaper)
{
    const BenchmarkProfile &mcf = ProfileRegistry::byName("mcf");
    EXPECT_DOUBLE_EQ(mcf.overheadNativePct, 10.32);
    EXPECT_DOUBLE_EQ(mcf.overheadVirtualPct, 19.01);
    EXPECT_DOUBLE_EQ(mcf.cyclesPerMissNative, 66);
    EXPECT_DOUBLE_EQ(mcf.cyclesPerMissVirtual, 169);
    EXPECT_DOUBLE_EQ(mcf.fracLargePagesPct, 60.7);

    const BenchmarkProfile &cc =
        ProfileRegistry::byName("ccomponent");
    EXPECT_DOUBLE_EQ(cc.cyclesPerMissVirtual, 1158);

    const BenchmarkProfile &sc =
        ProfileRegistry::byName("streamcluster");
    EXPECT_DOUBLE_EQ(sc.overheadVirtualPct, 2.11);
    EXPECT_DOUBLE_EQ(sc.fracLargePagesPct, 87.2);
}

TEST(Profiles, VirtualOverheadAtLeastNative)
{
    for (const auto &profile : ProfileRegistry::all()) {
        EXPECT_GE(profile.overheadVirtualPct,
                  profile.overheadNativePct)
            << profile.name;
        EXPECT_GE(profile.cyclesPerMissVirtual,
                  profile.cyclesPerMissNative)
            << profile.name;
    }
}

TEST(Profiles, ModelParametersAreSane)
{
    for (const auto &profile : ProfileRegistry::all()) {
        EXPECT_GE(profile.footprintBytes, Addr{16} << 20)
            << profile.name;
        EXPECT_GE(profile.runLength, 1.0) << profile.name;
        EXPECT_GE(profile.instGapMean, 1.0) << profile.name;
        EXPECT_GE(profile.writeFraction, 0.0) << profile.name;
        EXPECT_LE(profile.writeFraction, 1.0) << profile.name;
        EXPECT_GE(profile.largePageProbability(), 0.0)
            << profile.name;
        EXPECT_LE(profile.largePageProbability(), 1.0)
            << profile.name;
        EXPECT_GE(profile.conflictProbability, 0.0) << profile.name;
        EXPECT_LE(profile.hotProbability, 1.0) << profile.name;
    }
}

TEST(Profiles, WorkloadClassesMatchPaper)
{
    // Multithreaded: PARSEC and the graph/big-data workloads.
    EXPECT_TRUE(ProfileRegistry::byName("canneal").multithreaded);
    EXPECT_TRUE(ProfileRegistry::byName("streamcluster").multithreaded);
    EXPECT_TRUE(ProfileRegistry::byName("gups").multithreaded);
    EXPECT_TRUE(ProfileRegistry::byName("graph500").multithreaded);
    EXPECT_TRUE(ProfileRegistry::byName("pagerank").multithreaded);
    EXPECT_TRUE(ProfileRegistry::byName("ccomponent").multithreaded);
    // SPEC CPU runs in rate mode.
    EXPECT_FALSE(ProfileRegistry::byName("mcf").multithreaded);
    EXPECT_FALSE(ProfileRegistry::byName("astar").multithreaded);
    EXPECT_FALSE(ProfileRegistry::byName("lbm").multithreaded);
}

TEST(Profiles, PatternAssignments)
{
    EXPECT_EQ(ProfileRegistry::byName("gups").pattern,
              AccessPattern::UniformRandom);
    EXPECT_EQ(ProfileRegistry::byName("lbm").pattern,
              AccessPattern::Streaming);
    EXPECT_EQ(ProfileRegistry::byName("mcf").pattern,
              AccessPattern::PointerChase);
    EXPECT_EQ(ProfileRegistry::byName("gcc").pattern,
              AccessPattern::ZipfHotspot);
    EXPECT_EQ(ProfileRegistry::byName("soplex").pattern,
              AccessPattern::MixedPhases);
}

TEST(Profiles, UnknownNameIsFatal)
{
    EXPECT_DEATH_IF_SUPPORTED(
        { ProfileRegistry::byName("nonexistent"); }, "");
}

TEST(Profiles, NamesHelperMatchesRegistry)
{
    const auto names = ProfileRegistry::names();
    const auto &all = ProfileRegistry::all();
    ASSERT_EQ(names.size(), all.size());
    for (std::size_t i = 0; i < names.size(); ++i)
        EXPECT_EQ(names[i], all[i].name);
}

TEST(Profiles, PatternNames)
{
    EXPECT_STREQ(accessPatternName(AccessPattern::UniformRandom),
                 "uniform-random");
    EXPECT_STREQ(accessPatternName(AccessPattern::Streaming),
                 "streaming");
    EXPECT_STREQ(accessPatternName(AccessPattern::PointerChase),
                 "pointer-chase");
}

} // namespace
} // namespace pomtlb

/**
 * @file
 * MMU front-end tests: TLB level routing, penalty accounting, and the
 * translation-cycle bookkeeping the performance model consumes.
 */

#include <gtest/gtest.h>

#include "sim/machine.hh"

namespace pomtlb
{
namespace
{

class MmuTest : public ::testing::Test
{
  protected:
    MmuTest()
    {
        SystemConfig config = SystemConfig::table1();
        config.numCores = 1;
        machine =
            std::make_unique<Machine>(config, "POM-TLB");
    }

    std::unique_ptr<Machine> machine;
};

TEST_F(MmuTest, ColdTranslationMissesAndResolves)
{
    Mmu &mmu = machine->mmu(0);
    const Addr vaddr = 0x123456789;
    const MmuResult result =
        mmu.translate(vaddr, PageSize::Small4K, 1, 1, 0);
    EXPECT_EQ(result.level, TlbLevel::Miss);
    EXPECT_TRUE(result.walked);
    EXPECT_GT(result.cycles, 0u);
    EXPECT_EQ(pageOffset(result.hpa, PageSize::Small4K),
              pageOffset(vaddr, PageSize::Small4K));
}

TEST_F(MmuTest, SecondAccessHitsL1Free)
{
    Mmu &mmu = machine->mmu(0);
    const Addr vaddr = 0x123456789;
    const MmuResult first =
        mmu.translate(vaddr, PageSize::Small4K, 1, 1, 0);
    const MmuResult second =
        mmu.translate(vaddr, PageSize::Small4K, 1, 1, 1000);
    EXPECT_EQ(second.level, TlbLevel::L1);
    EXPECT_EQ(second.cycles, 0u);
    EXPECT_EQ(second.hpa, first.hpa);
}

TEST_F(MmuTest, CountersTrackLevels)
{
    Mmu &mmu = machine->mmu(0);
    mmu.translate(0x1000000, PageSize::Small4K, 1, 1, 0);
    mmu.translate(0x1000000, PageSize::Small4K, 1, 1, 100);
    mmu.translate(0x2000000, PageSize::Small4K, 1, 1, 200);
    EXPECT_EQ(mmu.translationCount(), 3u);
    EXPECT_EQ(mmu.lastLevelMissCount(), 2u);
    EXPECT_EQ(mmu.l1HitCount(), 1u);
}

TEST_F(MmuTest, TranslationCyclesAccumulatePostL1Costs)
{
    Mmu &mmu = machine->mmu(0);
    mmu.translate(0x1000000, PageSize::Small4K, 1, 1, 0);
    const std::uint64_t after_miss = mmu.totalTranslationCycles();
    EXPECT_GT(after_miss, 0u);
    // An L1 hit adds nothing.
    mmu.translate(0x1000000, PageSize::Small4K, 1, 1, 100);
    EXPECT_EQ(mmu.totalTranslationCycles(), after_miss);
}

TEST_F(MmuTest, AvgPenaltyPerMissIsSchemeCyclesOnly)
{
    Mmu &mmu = machine->mmu(0);
    const MmuResult result =
        mmu.translate(0x1000000, PageSize::Small4K, 1, 1, 0);
    const Cycles tlb_cost =
        machine->config().l1TlbSmall.missPenalty +
        machine->config().l2Tlb.missPenalty;
    EXPECT_NEAR(mmu.avgPenaltyPerMiss(),
                static_cast<double>(result.cycles - tlb_cost), 1e-9);
}

TEST_F(MmuTest, DifferentPageSizesRouteToDifferentL1s)
{
    Mmu &mmu = machine->mmu(0);
    mmu.translate(0x80000000, PageSize::Large2M, 1, 1, 0);
    const MmuResult hit =
        mmu.translate(0x80000000, PageSize::Large2M, 1, 1, 100);
    EXPECT_EQ(hit.level, TlbLevel::L1);
    EXPECT_TRUE(machine->mmu(0).tlbs().l1LargeTlb().contains(
        0x80000000 >> largePageShift, PageSize::Large2M, 1, 1));
}

TEST_F(MmuTest, VmShootdownForcesRefetch)
{
    Mmu &mmu = machine->mmu(0);
    mmu.translate(0x1000000, PageSize::Small4K, 1, 1, 0);
    mmu.invalidateVm(1);
    const MmuResult after =
        mmu.translate(0x1000000, PageSize::Small4K, 1, 1, 100);
    EXPECT_EQ(after.level, TlbLevel::Miss);
}

TEST_F(MmuTest, PenaltyHistogramFills)
{
    Mmu &mmu = machine->mmu(0);
    for (Addr vaddr = 0x1000000; vaddr < 0x1000000 + 50 * 4096;
         vaddr += 4096) {
        mmu.translate(vaddr, PageSize::Small4K, 1, 1, 0);
    }
    const Histogram &hist = mmu.penaltyHistogram();
    EXPECT_EQ(hist.sampleCount(), 50u);
    EXPECT_GT(hist.mean(), 0.0);
    // Every sample landed in some bucket or the overflow.
    std::uint64_t total = hist.overflow();
    for (std::size_t b = 0; b < hist.bucketCount(); ++b)
        total += hist.bucket(b);
    EXPECT_EQ(total, 50u);
}

TEST_F(MmuTest, StatGroupDumps)
{
    Mmu &mmu = machine->mmu(0);
    mmu.translate(0x1000000, PageSize::Small4K, 1, 1, 0);
    std::vector<std::pair<std::string, double>> flat;
    mmu.stats().collect(flat);
    bool found_translations = false;
    for (const auto &entry : flat) {
        if (entry.first.find("translations") != std::string::npos) {
            found_translations = true;
            EXPECT_DOUBLE_EQ(entry.second, 1.0);
        }
    }
    EXPECT_TRUE(found_translations);
}

TEST_F(MmuTest, ResetStats)
{
    Mmu &mmu = machine->mmu(0);
    mmu.translate(0x1000000, PageSize::Small4K, 1, 1, 0);
    mmu.resetStats();
    EXPECT_EQ(mmu.translationCount(), 0u);
    EXPECT_EQ(mmu.totalTranslationCycles(), 0u);
    EXPECT_EQ(mmu.lastLevelMissCount(), 0u);
}

} // namespace
} // namespace pomtlb

#include "tlb/core_tlbs.hh"

#include <string>

namespace pomtlb
{

CoreTlbs::CoreTlbs(const SystemConfig &config, CoreId core,
                   bool private_l2)
    : l1MissPenalty(config.l1TlbSmall.missPenalty),
      l2MissPenalty(config.l2Tlb.missPenalty)
{
    // Group names carry no core suffix: each stack's groups are
    // attached as children of the owning MMU's "mmu.<core>" group,
    // which provides the per-core path segment.
    (void)core;
    TlbConfig small = config.l1TlbSmall;
    small.name = "l1tlb4k";
    TlbConfig large = config.l1TlbLarge;
    large.name = "l1tlb2m";
    l1Small = std::make_unique<SetAssocTlb>(small);
    l1Large = std::make_unique<SetAssocTlb>(large);
    if (private_l2) {
        TlbConfig unified = config.l2Tlb;
        unified.name = "l2tlb";
        l2 = std::make_unique<SetAssocTlb>(unified);
    }
}

CoreTlbResult
CoreTlbs::lookup(PageNum vpn, PageSize size, VmId vm, ProcessId pid)
{
    CoreTlbResult result;

    SetAssocTlb &l1 = l1For(size);
    const TlbLookupResult l1_hit = l1.lookup(vpn, size, vm, pid);
    if (l1_hit.hit) {
        result.level = TlbLevel::L1;
        result.pfn = l1_hit.pfn;
        return result;
    }

    // L1 miss penalty: the cost of consulting the next level.
    result.cycles += l1MissPenalty;

    if (!l2) {
        ++noL2Misses;
        result.level = TlbLevel::Miss;
        return result;
    }

    const TlbLookupResult l2_hit = l2->lookup(vpn, size, vm, pid);
    if (l2_hit.hit) {
        result.level = TlbLevel::L2;
        result.pfn = l2_hit.pfn;
        // Refill L1 so the next access to this page hits there.
        l1.insert(vpn, size, vm, pid, l2_hit.pfn);
        return result;
    }

    result.cycles += l2MissPenalty;
    result.level = TlbLevel::Miss;
    return result;
}

void
CoreTlbs::insert(PageNum vpn, PageSize size, VmId vm, ProcessId pid,
                 PageNum pfn)
{
    l1For(size).insert(vpn, size, vm, pid, pfn);
    if (l2)
        l2->insert(vpn, size, vm, pid, pfn);
}

void
CoreTlbs::invalidatePage(PageNum vpn, PageSize size, VmId vm,
                         ProcessId pid)
{
    l1For(size).invalidatePage(vpn, size, vm, pid);
    if (l2)
        l2->invalidatePage(vpn, size, vm, pid);
}

void
CoreTlbs::invalidateVm(VmId vm)
{
    l1Small->invalidateVm(vm);
    l1Large->invalidateVm(vm);
    if (l2)
        l2->invalidateVm(vm);
}

void
CoreTlbs::flush()
{
    l1Small->flush();
    l1Large->flush();
    if (l2)
        l2->flush();
}

std::uint64_t
CoreTlbs::l2Misses() const
{
    return l2 ? l2->misses() : noL2Misses.value();
}

void
CoreTlbs::resetStats()
{
    l1Small->resetStats();
    l1Large->resetStats();
    if (l2)
        l2->resetStats();
    noL2Misses.reset();
}

} // namespace pomtlb

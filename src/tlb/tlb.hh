/**
 * @file
 * A set-associative SRAM TLB with VM-ID/ASID tagging.
 *
 * Used for the per-core L1 TLBs (one per page size), the unified
 * per-core L2 TLB, and the Shared_L2 baseline's large shared TLB.
 */

#ifndef POMTLB_TLB_TLB_HH
#define POMTLB_TLB_TLB_HH

#include <memory>
#include <string>
#include <vector>

#include "cache/replacement.hh"
#include "common/bitutil.hh"
#include "common/config.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "tlb/entry.hh"

namespace pomtlb
{

/** Result of a TLB lookup. */
struct TlbLookupResult
{
    bool hit = false;
    /** Valid only on hit. */
    PageNum pfn = 0;
};

/** One level of set-associative SRAM TLB. */
class SetAssocTlb
{
  public:
    SetAssocTlb(const TlbConfig &config,
                ReplacementKind replacement = ReplacementKind::Lru);

    /** Look up (vpn, vm, pid) at @p size; updates LRU on hit. */
    TlbLookupResult lookup(PageNum vpn, PageSize size, VmId vm,
                           ProcessId pid);

    /** State-preserving membership check. */
    bool contains(PageNum vpn, PageSize size, VmId vm,
                  ProcessId pid) const;

    /** Install a translation, evicting the set's LRU entry if full. */
    void insert(PageNum vpn, PageSize size, VmId vm, ProcessId pid,
                PageNum pfn);

    /** Drop one page's translation (single-page shootdown). */
    bool invalidatePage(PageNum vpn, PageSize size, VmId vm,
                        ProcessId pid);

    /** Drop every entry belonging to @p vm (VM-wide shootdown). */
    std::uint64_t invalidateVm(VmId vm);

    /** Drop everything. */
    std::uint64_t flush();

    double hitRate() const;
    std::uint64_t hits() const { return hitCount.value(); }
    std::uint64_t misses() const { return missCount.value(); }
    std::uint64_t validEntryCount() const { return validEntries; }

    const TlbConfig &config() const { return tlbConfig; }
    const StatGroup &stats() const { return statGroup; }
    void resetStats();

  private:
    std::uint64_t setIndex(PageNum vpn, VmId vm) const;

    /**
     * Packed match key of a valid entry for the SIMD-friendly way
     * scan: a mixed digest of (vpn, vm, pid, size), forced non-zero
     * so 0 can stand for an invalid way. The scan compares one
     * contiguous 64-bit lane per set (common/setscan.hh) and then
     * verifies candidate ways against the full entry fields, so a
     * rare digest collision costs a compare, never a wrong hit.
     */
    static std::uint64_t
    entryKey(PageNum vpn, VmId vm, ProcessId pid, PageSize size)
    {
        const std::uint64_t packed =
            vpn ^ (static_cast<std::uint64_t>(vm) << 44) ^
            (static_cast<std::uint64_t>(pid) << 28) ^
            (static_cast<std::uint64_t>(
                 static_cast<unsigned>(size))
             << 60);
        return mix64(packed) | 1;
    }

    /**
     * First way of @p set fully matching (vpn, vm, pid, size), or
     * the associativity when none does.
     */
    unsigned matchWay(std::uint64_t set, PageNum vpn, PageSize size,
                      VmId vm, ProcessId pid) const;

    /** Note a use of [set, way] in the replacement state. */
    void
    touchWay(std::uint64_t set, unsigned way)
    {
        if (policy)
            policy->touch(set, way);
        else
            stamps[set * ways + way] = ++lruClock;
    }

    /** Forget a way's use history after an invalidation. */
    void
    forgetWay(std::uint64_t set, unsigned way)
    {
        if (policy)
            policy->invalidate(set, way);
        else
            stamps[set * ways + way] = 0;
    }

    /** Pick the eviction victim in @p set. */
    unsigned
    victimWay(std::uint64_t set)
    {
        if (policy)
            return policy->victim(set);
        // Inline LRU: oldest stamp, lowest way on ties — identical
        // to LruPolicy::victim (the stamps follow the same updates).
        const std::uint64_t base = set * ways;
        unsigned best = 0;
        std::uint64_t best_stamp = stamps[base];
        for (unsigned way = 1; way < ways; ++way) {
            if (stamps[base + way] < best_stamp) {
                best_stamp = stamps[base + way];
                best = way;
            }
        }
        return best;
    }

    TlbConfig tlbConfig;
    std::uint64_t sets;
    unsigned ways;
    std::vector<TlbEntry> entries;
    /** Per-way packed match keys (entryKey(); 0 = invalid way). */
    std::vector<std::uint64_t> keys;
    /**
     * Per-way recency stamps for the inlined default-LRU policy
     * (kept outside TlbEntry, which keeps the paper's 16-byte
     * Figure 5 layout). Unused when a polymorphic policy is set.
     */
    std::vector<std::uint64_t> stamps;
    std::uint64_t lruClock = 0;
    /** Non-null only for non-LRU replacement (LRU is inlined). */
    std::unique_ptr<ReplacementPolicy> policy;
    std::uint64_t validEntries = 0;

    Counter hitCount;
    Counter missCount;
    Counter insertions;
    Counter evictions;
    Counter shootdowns;
    StatGroup statGroup;
};

} // namespace pomtlb

#endif // POMTLB_TLB_TLB_HH

#include "tlb/tlb.hh"

#include "common/bitutil.hh"
#include "common/log.hh"

namespace pomtlb
{

SetAssocTlb::SetAssocTlb(const TlbConfig &config,
                         ReplacementKind replacement)
    : tlbConfig(config),
      sets(config.numSets()),
      ways(config.associativity),
      entries(config.entries),
      stamps(config.entries, 0),
      statGroup(config.name)
{
    tlbConfig.validate();
    // Default LRU is inlined over the stamps vector; only the other
    // policies pay for a polymorphic object (see victimWay()).
    if (replacement != ReplacementKind::Lru) {
        policy = ReplacementPolicy::create(
            replacement, config.numSets(), config.associativity);
    }
    statGroup.addCounter("hits", hitCount);
    statGroup.addCounter("misses", missCount);
    statGroup.addCounter("insertions", insertions);
    statGroup.addCounter("evictions", evictions);
    statGroup.addCounter("shootdowns", shootdowns);
    statGroup.addDerived("hit_rate", [this] { return hitRate(); });
}

std::uint64_t
SetAssocTlb::setIndex(PageNum vpn, VmId vm) const
{
    // XOR the VM ID in so multiple VMs spread across sets, mirroring
    // the POM-TLB's set hash (Equation 1).
    return (vpn ^ vm) & (sets - 1);
}

TlbLookupResult
SetAssocTlb::lookup(PageNum vpn, PageSize size, VmId vm, ProcessId pid)
{
    const std::uint64_t set = setIndex(vpn, vm);
    TlbEntry *base = &entries[set * ways];
    for (unsigned way = 0; way < ways; ++way) {
        if (base[way].matches(vpn, vm, pid, size)) {
            touchWay(set, way);
            ++hitCount;
            return {true, base[way].pfn};
        }
    }
    ++missCount;
    return {};
}

bool
SetAssocTlb::contains(PageNum vpn, PageSize size, VmId vm,
                      ProcessId pid) const
{
    const std::uint64_t set = setIndex(vpn, vm);
    const TlbEntry *base = &entries[set * ways];
    for (unsigned way = 0; way < ways; ++way) {
        if (base[way].matches(vpn, vm, pid, size))
            return true;
    }
    return false;
}

void
SetAssocTlb::insert(PageNum vpn, PageSize size, VmId vm, ProcessId pid,
                    PageNum pfn)
{
    const std::uint64_t set = setIndex(vpn, vm);
    TlbEntry *base = &entries[set * ways];
    ++insertions;

    // One pass finds a matching entry (refresh in place — a duplicate
    // fill), the first free way, and — for the inlined default LRU —
    // the oldest-stamp victim. At most one way can match, so merging
    // the scans changes nothing observable; the running minimum is
    // only consumed when the loop covered every way (no match, no
    // free way), and strict '<' keeps victimWay()'s lowest-way
    // tie-break.
    const std::uint64_t *set_stamps = stamps.data() + set * ways;
    const bool inline_lru = !policy;
    unsigned target = ways;
    unsigned min_way = 0;
    std::uint64_t min_stamp = ~std::uint64_t{0};
    for (unsigned way = 0; way < ways; ++way) {
        if (base[way].matches(vpn, vm, pid, size)) {
            base[way].pfn = pfn;
            touchWay(set, way);
            return;
        }
        if (target == ways && !base[way].valid)
            target = way;
        if (inline_lru && set_stamps[way] < min_stamp) {
            min_stamp = set_stamps[way];
            min_way = way;
        }
    }

    if (target == ways) {
        target = inline_lru ? min_way : victimWay(set);
        ++evictions;
        --validEntries;
    }

    TlbEntry &entry = base[target];
    entry.valid = true;
    entry.vmId = vm;
    entry.pid = pid;
    entry.vpn = vpn;
    entry.pfn = pfn;
    entry.pageSize = size;
    ++validEntries;
    touchWay(set, target);
}

bool
SetAssocTlb::invalidatePage(PageNum vpn, PageSize size, VmId vm,
                            ProcessId pid)
{
    const std::uint64_t set = setIndex(vpn, vm);
    TlbEntry *base = &entries[set * ways];
    for (unsigned way = 0; way < ways; ++way) {
        if (base[way].matches(vpn, vm, pid, size)) {
            base[way].valid = false;
            forgetWay(set, way);
            --validEntries;
            ++shootdowns;
            return true;
        }
    }
    return false;
}

std::uint64_t
SetAssocTlb::invalidateVm(VmId vm)
{
    std::uint64_t dropped = 0;
    for (std::uint64_t set = 0; set < sets; ++set) {
        TlbEntry *base = &entries[set * ways];
        for (unsigned way = 0; way < ways; ++way) {
            if (base[way].valid && base[way].vmId == vm) {
                base[way].valid = false;
                forgetWay(set, way);
                --validEntries;
                ++dropped;
            }
        }
    }
    shootdowns.increment(dropped);
    return dropped;
}

std::uint64_t
SetAssocTlb::flush()
{
    std::uint64_t dropped = 0;
    for (std::uint64_t set = 0; set < sets; ++set) {
        TlbEntry *base = &entries[set * ways];
        for (unsigned way = 0; way < ways; ++way) {
            if (base[way].valid) {
                base[way].valid = false;
                forgetWay(set, way);
                ++dropped;
            }
        }
    }
    validEntries = 0;
    return dropped;
}

double
SetAssocTlb::hitRate() const
{
    const std::uint64_t total = hitCount.value() + missCount.value();
    return total ? static_cast<double>(hitCount.value()) / total : 0.0;
}

void
SetAssocTlb::resetStats()
{
    hitCount.reset();
    missCount.reset();
    insertions.reset();
    evictions.reset();
    shootdowns.reset();
}

} // namespace pomtlb

#include "tlb/tlb.hh"

#include "common/bitutil.hh"
#include "common/log.hh"
#include "common/setscan.hh"

namespace pomtlb
{

SetAssocTlb::SetAssocTlb(const TlbConfig &config,
                         ReplacementKind replacement)
    : tlbConfig(config),
      sets(config.numSets()),
      ways(config.associativity),
      entries(config.entries),
      keys(config.entries, 0),
      stamps(config.entries, 0),
      statGroup(config.name)
{
    tlbConfig.validate();
    // Default LRU is inlined over the stamps vector; only the other
    // policies pay for a polymorphic object (see victimWay()).
    if (replacement != ReplacementKind::Lru) {
        policy = ReplacementPolicy::create(
            replacement, config.numSets(), config.associativity);
    }
    statGroup.addCounter("hits", hitCount);
    statGroup.addCounter("misses", missCount);
    statGroup.addCounter("insertions", insertions);
    statGroup.addCounter("evictions", evictions);
    statGroup.addCounter("shootdowns", shootdowns);
    statGroup.addDerived("hit_rate", [this] { return hitRate(); });
}

std::uint64_t
SetAssocTlb::setIndex(PageNum vpn, VmId vm) const
{
    // XOR the VM ID in so multiple VMs spread across sets, mirroring
    // the POM-TLB's set hash (Equation 1).
    return (vpn ^ vm) & (sets - 1);
}

unsigned
SetAssocTlb::matchWay(std::uint64_t set, PageNum vpn, PageSize size,
                      VmId vm, ProcessId pid) const
{
    // SIMD-friendly probe: one compare pass over the set's packed
    // key lane, then full-field verification of each candidate in
    // way order (a digest collision must not manufacture a hit, and
    // the lowest truly-matching way must win).
    std::uint64_t mask = findKeyMask(keys.data() + set * ways, ways,
                                     entryKey(vpn, vm, pid, size));
    const TlbEntry *base = &entries[set * ways];
    while (mask != 0) {
        const unsigned way =
            static_cast<unsigned>(std::countr_zero(mask));
        if (base[way].matches(vpn, vm, pid, size))
            return way;
        mask &= mask - 1;
    }
    return ways;
}

TlbLookupResult
SetAssocTlb::lookup(PageNum vpn, PageSize size, VmId vm, ProcessId pid)
{
    const std::uint64_t set = setIndex(vpn, vm);
    const unsigned way = matchWay(set, vpn, size, vm, pid);
    if (way != ways) {
        touchWay(set, way);
        ++hitCount;
        return {true, entries[set * ways + way].pfn};
    }
    ++missCount;
    return {};
}

bool
SetAssocTlb::contains(PageNum vpn, PageSize size, VmId vm,
                      ProcessId pid) const
{
    const std::uint64_t set = setIndex(vpn, vm);
    return matchWay(set, vpn, size, vm, pid) != ways;
}

void
SetAssocTlb::insert(PageNum vpn, PageSize size, VmId vm, ProcessId pid,
                    PageNum pfn)
{
    const std::uint64_t set = setIndex(vpn, vm);
    const std::uint64_t base_index = set * ways;
    TlbEntry *base = &entries[base_index];
    ++insertions;

    // Vector-friendly fixed-trip scans over the set's packed key
    // lane (common/setscan.hh) replace the old merged early-exit
    // loop: a matching entry refreshes in place (a duplicate fill),
    // else the first free way (key 0) wins, else the inline-LRU
    // oldest stamp. Each result is consumed exactly when the scalar
    // loop consumed it and every tie goes to the lowest way, so the
    // victims — and therefore all downstream state — match
    // bit-for-bit.
    const unsigned match = matchWay(set, vpn, size, vm, pid);
    if (match != ways) {
        base[match].pfn = pfn;
        touchWay(set, match);
        return;
    }

    unsigned target = findKeyWay(keys.data() + base_index, ways, 0);
    if (target == ways) {
        target = policy ? victimWay(set)
                        : minStampWay(stamps.data() + base_index,
                                      ways);
        ++evictions;
        --validEntries;
    }

    TlbEntry &entry = base[target];
    entry.valid = true;
    entry.vmId = vm;
    entry.pid = pid;
    entry.vpn = vpn;
    entry.pfn = pfn;
    entry.pageSize = size;
    keys[base_index + target] = entryKey(vpn, vm, pid, size);
    ++validEntries;
    touchWay(set, target);
}

bool
SetAssocTlb::invalidatePage(PageNum vpn, PageSize size, VmId vm,
                            ProcessId pid)
{
    const std::uint64_t set = setIndex(vpn, vm);
    const unsigned way = matchWay(set, vpn, size, vm, pid);
    if (way == ways)
        return false;
    entries[set * ways + way].valid = false;
    keys[set * ways + way] = 0;
    forgetWay(set, way);
    --validEntries;
    ++shootdowns;
    return true;
}

std::uint64_t
SetAssocTlb::invalidateVm(VmId vm)
{
    std::uint64_t dropped = 0;
    for (std::uint64_t set = 0; set < sets; ++set) {
        TlbEntry *base = &entries[set * ways];
        for (unsigned way = 0; way < ways; ++way) {
            if (base[way].valid && base[way].vmId == vm) {
                base[way].valid = false;
                keys[set * ways + way] = 0;
                forgetWay(set, way);
                --validEntries;
                ++dropped;
            }
        }
    }
    shootdowns.increment(dropped);
    return dropped;
}

std::uint64_t
SetAssocTlb::flush()
{
    std::uint64_t dropped = 0;
    for (std::uint64_t set = 0; set < sets; ++set) {
        TlbEntry *base = &entries[set * ways];
        for (unsigned way = 0; way < ways; ++way) {
            if (base[way].valid) {
                base[way].valid = false;
                keys[set * ways + way] = 0;
                forgetWay(set, way);
                ++dropped;
            }
        }
    }
    validEntries = 0;
    return dropped;
}

double
SetAssocTlb::hitRate() const
{
    const std::uint64_t total = hitCount.value() + missCount.value();
    return total ? static_cast<double>(hitCount.value()) / total : 0.0;
}

void
SetAssocTlb::resetStats()
{
    hitCount.reset();
    missCount.reset();
    insertions.reset();
    evictions.reset();
    shootdowns.reset();
}

} // namespace pomtlb

#include "tlb/tlb.hh"

#include "common/bitutil.hh"
#include "common/log.hh"

namespace pomtlb
{

SetAssocTlb::SetAssocTlb(const TlbConfig &config,
                         ReplacementKind replacement)
    : tlbConfig(config),
      sets(config.numSets()),
      ways(config.associativity),
      entries(config.entries),
      policy(ReplacementPolicy::create(replacement, config.numSets(),
                                       config.associativity)),
      statGroup(config.name)
{
    tlbConfig.validate();
    statGroup.addCounter("hits", hitCount);
    statGroup.addCounter("misses", missCount);
    statGroup.addCounter("insertions", insertions);
    statGroup.addCounter("evictions", evictions);
    statGroup.addCounter("shootdowns", shootdowns);
    statGroup.addDerived("hit_rate", [this] { return hitRate(); });
}

std::uint64_t
SetAssocTlb::setIndex(PageNum vpn, VmId vm) const
{
    // XOR the VM ID in so multiple VMs spread across sets, mirroring
    // the POM-TLB's set hash (Equation 1).
    return (vpn ^ vm) & (sets - 1);
}

TlbLookupResult
SetAssocTlb::lookup(PageNum vpn, PageSize size, VmId vm, ProcessId pid)
{
    const std::uint64_t set = setIndex(vpn, vm);
    TlbEntry *base = &entries[set * ways];
    for (unsigned way = 0; way < ways; ++way) {
        if (base[way].matches(vpn, vm, pid, size)) {
            policy->touch(set, way);
            ++hitCount;
            return {true, base[way].pfn};
        }
    }
    ++missCount;
    return {};
}

bool
SetAssocTlb::contains(PageNum vpn, PageSize size, VmId vm,
                      ProcessId pid) const
{
    const std::uint64_t set = setIndex(vpn, vm);
    const TlbEntry *base = &entries[set * ways];
    for (unsigned way = 0; way < ways; ++way) {
        if (base[way].matches(vpn, vm, pid, size))
            return true;
    }
    return false;
}

void
SetAssocTlb::insert(PageNum vpn, PageSize size, VmId vm, ProcessId pid,
                    PageNum pfn)
{
    const std::uint64_t set = setIndex(vpn, vm);
    TlbEntry *base = &entries[set * ways];
    ++insertions;

    // Refresh in place if already present (duplicate fill).
    for (unsigned way = 0; way < ways; ++way) {
        if (base[way].matches(vpn, vm, pid, size)) {
            base[way].pfn = pfn;
            policy->touch(set, way);
            return;
        }
    }

    unsigned target = ways;
    for (unsigned way = 0; way < ways; ++way) {
        if (!base[way].valid) {
            target = way;
            break;
        }
    }
    if (target == ways) {
        target = policy->victim(set);
        ++evictions;
        --validEntries;
    }

    TlbEntry &entry = base[target];
    entry.valid = true;
    entry.vmId = vm;
    entry.pid = pid;
    entry.vpn = vpn;
    entry.pfn = pfn;
    entry.pageSize = size;
    ++validEntries;
    policy->touch(set, target);
}

bool
SetAssocTlb::invalidatePage(PageNum vpn, PageSize size, VmId vm,
                            ProcessId pid)
{
    const std::uint64_t set = setIndex(vpn, vm);
    TlbEntry *base = &entries[set * ways];
    for (unsigned way = 0; way < ways; ++way) {
        if (base[way].matches(vpn, vm, pid, size)) {
            base[way].valid = false;
            policy->invalidate(set, way);
            --validEntries;
            ++shootdowns;
            return true;
        }
    }
    return false;
}

std::uint64_t
SetAssocTlb::invalidateVm(VmId vm)
{
    std::uint64_t dropped = 0;
    for (std::uint64_t set = 0; set < sets; ++set) {
        TlbEntry *base = &entries[set * ways];
        for (unsigned way = 0; way < ways; ++way) {
            if (base[way].valid && base[way].vmId == vm) {
                base[way].valid = false;
                policy->invalidate(set, way);
                --validEntries;
                ++dropped;
            }
        }
    }
    shootdowns.increment(dropped);
    return dropped;
}

std::uint64_t
SetAssocTlb::flush()
{
    std::uint64_t dropped = 0;
    for (std::uint64_t set = 0; set < sets; ++set) {
        TlbEntry *base = &entries[set * ways];
        for (unsigned way = 0; way < ways; ++way) {
            if (base[way].valid) {
                base[way].valid = false;
                policy->invalidate(set, way);
                ++dropped;
            }
        }
    }
    validEntries = 0;
    return dropped;
}

double
SetAssocTlb::hitRate() const
{
    const std::uint64_t total = hitCount.value() + missCount.value();
    return total ? static_cast<double>(hitCount.value()) / total : 0.0;
}

void
SetAssocTlb::resetStats()
{
    hitCount.reset();
    missCount.reset();
    insertions.reset();
    evictions.reset();
    shootdowns.reset();
}

} // namespace pomtlb

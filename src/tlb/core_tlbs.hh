/**
 * @file
 * The per-core SRAM TLB stack: split L1 TLBs (4 KB / 2 MB) and an
 * optional unified private L2 TLB, as in the Skylake-like Table 1
 * organisation. The Shared_L2 baseline constructs cores without the
 * private L2 and routes L1 misses to one shared structure instead.
 */

#ifndef POMTLB_TLB_CORE_TLBS_HH
#define POMTLB_TLB_CORE_TLBS_HH

#include <memory>

#include "common/config.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "tlb/tlb.hh"

namespace pomtlb
{

/** Which TLB level (if any) satisfied a translation. */
enum class TlbLevel : std::uint8_t
{
    L1 = 0,
    L2 = 1,
    Miss = 2,
};

/** Result of running a translation through the per-core TLB stack. */
struct CoreTlbResult
{
    TlbLevel level = TlbLevel::Miss;
    PageNum pfn = 0;
    /** Cycles spent in the SRAM TLB levels before any scheme work. */
    Cycles cycles = 0;
};

/** One core's private TLB hierarchy. */
class CoreTlbs
{
  public:
    /**
     * @param config     System configuration (TLB geometries).
     * @param core       Owning core, for stat naming.
     * @param private_l2 Whether this core has a private L2 TLB.
     */
    CoreTlbs(const SystemConfig &config, CoreId core, bool private_l2);

    /**
     * Look up @p vpn through L1 then (if present) L2.
     * Cycles charged: 0 on an L1 hit, the L1 miss penalty on an L2
     * hit, and L1+L2 miss penalties on a full miss — matching the
     * Table 1 penalty accounting.
     */
    CoreTlbResult lookup(PageNum vpn, PageSize size, VmId vm,
                         ProcessId pid);

    /** Install a resolved translation into L1 (and L2 when present). */
    void insert(PageNum vpn, PageSize size, VmId vm, ProcessId pid,
                PageNum pfn);

    /** Single-page shootdown across all levels. */
    void invalidatePage(PageNum vpn, PageSize size, VmId vm,
                        ProcessId pid);

    /** VM-wide shootdown across all levels. */
    void invalidateVm(VmId vm);

    /** Drop everything (context-switch-like full flush). */
    void flush();

    bool hasPrivateL2() const { return l2 != nullptr; }

    SetAssocTlb &l1For(PageSize size)
    {
        return size == PageSize::Small4K ? *l1Small : *l1Large;
    }
    SetAssocTlb &l2Tlb() { return *l2; }
    const SetAssocTlb &l1SmallTlb() const { return *l1Small; }
    const SetAssocTlb &l1LargeTlb() const { return *l1Large; }

    std::uint64_t l2Misses() const;
    void resetStats();

  private:
    std::unique_ptr<SetAssocTlb> l1Small;
    std::unique_ptr<SetAssocTlb> l1Large;
    std::unique_ptr<SetAssocTlb> l2;
    Cycles l1MissPenalty;
    Cycles l2MissPenalty;
    /** L1 misses that hit nothing further (no-L2 configuration). */
    Counter noL2Misses;
};

} // namespace pomtlb

#endif // POMTLB_TLB_CORE_TLBS_HH

/**
 * @file
 * The logical TLB entry shared by SRAM TLBs and the POM-TLB.
 *
 * Matches the 16-byte format of Figure 5: valid bit, VM ID, process
 * ID, virtual and physical page numbers, and an attribute field whose
 * low two bits the POM-TLB uses as its in-DRAM LRU state.
 */

#ifndef POMTLB_TLB_ENTRY_HH
#define POMTLB_TLB_ENTRY_HH

#include "common/types.hh"

namespace pomtlb
{

/** A guest-virtual to host-physical translation record. */
struct TlbEntry
{
    bool valid = false;
    VmId vmId = 0;
    ProcessId pid = 0;
    PageNum vpn = 0;
    PageNum pfn = 0;
    PageSize pageSize = PageSize::Small4K;
    /** Replacement/protection attribute bits (Figure 5 "Attr"). */
    std::uint8_t attr = 0;

    /** Does this entry translate (vpn, vmId, pid) at this page size? */
    bool
    matches(PageNum lookup_vpn, VmId lookup_vm, ProcessId lookup_pid,
            PageSize lookup_size) const
    {
        return valid && vpn == lookup_vpn && vmId == lookup_vm &&
               pid == lookup_pid && pageSize == lookup_size;
    }

    /** Translate a full virtual address using this entry. */
    Addr
    translate(Addr virt_addr) const
    {
        return (pfn << pageShift(pageSize)) |
               pageOffset(virt_addr, pageSize);
    }
};

} // namespace pomtlb

#endif // POMTLB_TLB_ENTRY_HH

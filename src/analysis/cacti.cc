#include "analysis/cacti.hh"

#include <cmath>

#include "common/log.hh"

namespace pomtlb
{

double
SramLatencyModel::accessTimeNs(std::uint64_t bytes)
{
    simAssert(bytes > 0, "SRAM model needs a positive capacity");
    const double kb = static_cast<double>(bytes) / 1024.0;
    return fixedNs + scaleNsPerSqrtKb * std::sqrt(kb);
}

double
SramLatencyModel::normalizedLatency(std::uint64_t bytes)
{
    return accessTimeNs(bytes) / accessTimeNs(referenceBytes);
}

Cycles
SramLatencyModel::accessCycles(std::uint64_t bytes,
                               double core_freq_ghz)
{
    simAssert(core_freq_ghz > 0.0, "non-positive core frequency");
    return static_cast<Cycles>(
        std::ceil(accessTimeNs(bytes) * core_freq_ghz));
}

} // namespace pomtlb

/**
 * @file
 * Result-table formatting for the bench binaries: aligned console
 * tables (the rows/series the paper's figures report) and CSV
 * emission for external plotting.
 */

#ifndef POMTLB_ANALYSIS_REPORT_HH
#define POMTLB_ANALYSIS_REPORT_HH

#include <iosfwd>
#include <string>
#include <vector>

namespace pomtlb
{

/** A simple column-aligned table builder. */
class ResultTable
{
  public:
    explicit ResultTable(std::vector<std::string> column_headers);

    /** Append one row (must match the header count). */
    void addRow(std::vector<std::string> cells);

    /** Convenience: format a double with @p precision decimals. */
    static std::string num(double value, int precision = 2);

    /** Print the aligned table. */
    void print(std::ostream &os) const;

    /** Emit as CSV (headers first). */
    void printCsv(std::ostream &os) const;

    std::size_t rowCount() const { return rows.size(); }

  private:
    std::vector<std::string> headers;
    std::vector<std::vector<std::string>> rows;
};

/** Print a figure/table banner matching the experiment index. */
void printExperimentHeader(std::ostream &os, const std::string &id,
                           const std::string &description);

} // namespace pomtlb

#endif // POMTLB_ANALYSIS_REPORT_HH

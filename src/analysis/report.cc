#include "analysis/report.hh"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/log.hh"

namespace pomtlb
{

ResultTable::ResultTable(std::vector<std::string> column_headers)
    : headers(std::move(column_headers))
{
    simAssert(!headers.empty(), "result table needs columns");
}

void
ResultTable::addRow(std::vector<std::string> cells)
{
    simAssert(cells.size() == headers.size(),
              "row width does not match header count");
    rows.push_back(std::move(cells));
}

std::string
ResultTable::num(double value, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << value;
    return oss.str();
}

void
ResultTable::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers.size());
    for (std::size_t c = 0; c < headers.size(); ++c)
        widths[c] = headers[c].size();
    for (const auto &row : rows) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto print_row = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << (c == 0 ? "" : "  ") << std::left
               << std::setw(static_cast<int>(widths[c])) << cells[c];
        }
        os << "\n";
    };

    print_row(headers);
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c == 0 ? 0 : 2);
    os << std::string(total, '-') << "\n";
    for (const auto &row : rows)
        print_row(row);
}

void
ResultTable::printCsv(std::ostream &os) const
{
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c)
            os << (c == 0 ? "" : ",") << cells[c];
        os << "\n";
    };
    emit(headers);
    for (const auto &row : rows)
        emit(row);
}

void
printExperimentHeader(std::ostream &os, const std::string &id,
                      const std::string &description)
{
    os << "\n=== " << id << ": " << description << " ===\n";
}

} // namespace pomtlb

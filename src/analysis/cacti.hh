/**
 * @file
 * An analytical CACTI-style SRAM access-latency model for Figure 4.
 *
 * The paper used CACTI to show that naively growing an SRAM L2 TLB
 * does not scale: access latency grows roughly with the square root
 * of the array area (word-line plus bit-line RC), with a fixed
 * decoder/sense overhead. We fit that functional form:
 *
 *     t(C) = t0 + k * sqrt(C / 1 KB)   [ns]
 *
 * which reproduces CACTI's published trend (a 16 MB array is over an
 * order of magnitude slower than a 16 KB one). Figure 4 plots the
 * latency normalised to 16 KB.
 */

#ifndef POMTLB_ANALYSIS_CACTI_HH
#define POMTLB_ANALYSIS_CACTI_HH

#include <cstdint>

#include "common/types.hh"

namespace pomtlb
{

/** Analytical SRAM latency model. */
class SramLatencyModel
{
  public:
    /** Fixed decode/sense overhead (ns). */
    static constexpr double fixedNs = 0.25;
    /** RC scaling coefficient (ns per sqrt(KB)). */
    static constexpr double scaleNsPerSqrtKb = 0.11;
    /** Figure 4's normalisation point. */
    static constexpr std::uint64_t referenceBytes = 16 * 1024;

    /** Absolute access time for a @p bytes SRAM array (ns). */
    static double accessTimeNs(std::uint64_t bytes);

    /** Latency normalised to the 16 KB reference (Figure 4's y-axis). */
    static double normalizedLatency(std::uint64_t bytes);

    /** Access time in core cycles at @p core_freq_ghz. */
    static Cycles accessCycles(std::uint64_t bytes,
                               double core_freq_ghz);
};

} // namespace pomtlb

#endif // POMTLB_ANALYSIS_CACTI_HH

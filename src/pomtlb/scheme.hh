/**
 * @file
 * The POM-TLB translation scheme: the Figure 7 access flow.
 *
 * On an L2 TLB miss:
 *  1. consult the per-core size/bypass predictor;
 *  2. compute the POM-TLB set address for the predicted size;
 *  3. unless bypassing, probe L2D$ then L3D$ for that line;
 *  4. on cache miss (or bypass), fetch the set from the die-stacked
 *     DRAM partition;
 *  5. if no entry matched, repeat for the other page size;
 *  6. if both sizes miss, fall back to a full page walk and install
 *     the walked translation into the POM-TLB (and the data caches).
 */

#ifndef POMTLB_POMTLB_SCHEME_HH
#define POMTLB_POMTLB_SCHEME_HH

#include <memory>
#include <vector>

#include "cache/hierarchy.hh"
#include "common/config.hh"
#include "common/stats.hh"
#include "pagetable/walker.hh"
#include "pomtlb/pom_tlb.hh"
#include "pomtlb/predictor.hh"
#include "sim/scheme.hh"

namespace pomtlb
{

/** Where a POM-TLB translation request was finally served from. */
enum class PomServiceLevel : std::uint8_t
{
    L2Cache = 0,
    L3Cache = 1,
    PomDram = 2,
    PageWalk = 3,
};

/** The paper's scheme (Section 2). */
class PomTlbScheme : public TranslationScheme
{
  public:
    /**
     * @param config    POM-TLB geometry and feature switches.
     * @param pom       The shared in-DRAM TLB device.
     * @param hierarchy Data caches for entry caching.
     * @param walkers   Per-core page walkers (fallback path).
     */
    PomTlbScheme(const PomTlbConfig &config, PomTlb &pom,
                 DataHierarchy &hierarchy,
                 std::vector<std::unique_ptr<PageWalker>> &walkers);

    std::string name() const override { return "POM-TLB"; }

    SchemeResult translateMiss(CoreId core, Addr vaddr, PageSize size,
                               VmId vm, ProcessId pid,
                               Cycles now) override;

    void prewarm(CoreId core, Addr vaddr, PageSize size, VmId vm,
                 ProcessId pid, PageNum pfn) override;

    void invalidatePage(Addr vaddr, PageSize size, VmId vm,
                        ProcessId pid) override;
    void invalidateVm(VmId vm) override;
    void resetStats() override;

    const StatGroup *statistics() const override
    {
        return &statGroup;
    }
    std::vector<std::pair<ServicePoint, std::uint64_t>>
    cycleBreakdown() const override;

    /** Figure 9: fraction of requests served by the L2D$. */
    double l2CacheServiceRate() const;
    /** Figure 9: of requests past the L2D$, fraction the L3D$ served. */
    double l3CacheServiceRate() const;
    /** Figure 9: of requests past both caches, fraction POM-DRAM served. */
    double pomDramServiceRate() const;
    /** Fraction of L2 TLB misses that avoided a page walk. */
    double walkEliminationRate() const;

    /** Figure 10 inputs, aggregated over cores. */
    double sizePredictorAccuracy() const;
    double bypassPredictorAccuracy() const;

    /** Requests finally served at @p level since the stats reset. */
    std::uint64_t servedCount(PomServiceLevel level) const
    {
        return served[static_cast<unsigned>(level)].value();
    }
    /** Total L2 TLB misses the scheme handled since the stats reset. */
    std::uint64_t requestCount() const { return requests.value(); }
    /** Mean scheme cycles per request. */
    double avgMissCycles() const { return missCycles.mean(); }

    /** The per-core size/bypass predictor (Figure 10 inputs). */
    const SizeBypassPredictor &predictor(CoreId core) const
    {
        return *predictors[core];
    }

  private:
    /** Try one page size end to end; returns true when translated. */
    bool trySize(CoreId core, Addr vaddr, PageSize size, VmId vm,
                 ProcessId pid, bool bypass, Cycles now,
                 Cycles &cycles, PageNum &pfn,
                 PomServiceLevel &level, std::uint8_t &probes);

    PomTlbConfig tlbConfig;
    PomTlb &pomTlb;
    DataHierarchy &dataHierarchy;
    std::vector<std::unique_ptr<PageWalker>> &pageWalkers;
    std::vector<std::unique_ptr<SizeBypassPredictor>> predictors;

    Counter requests;
    Counter served[4];
    /** Cycles of requests finally served at each PomServiceLevel. */
    Counter servedCycles[4];
    Counter secondSizeLookups;
    Counter bypasses;
    Counter prefetches;
    Average missCycles;
    Log2Histogram missCycleHist;
    StatGroup statGroup;
};

} // namespace pomtlb

#endif // POMTLB_POMTLB_SCHEME_HH

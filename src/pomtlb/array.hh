/**
 * @file
 * The in-DRAM POM-TLB entry array: two 4-way associative partitions
 * (4 KB and 2 MB pages) whose replacement state is the 2-bit LRU field
 * carried in each entry's attribute byte (Section 2.2, "Entry
 * Replacement") — fetched with the set in a single 64 B burst, so the
 * victim choice costs no extra DRAM access.
 *
 * The array holds the entries themselves; DRAM timing lives in the
 * PomTlb device that wraps it.
 */

#ifndef POMTLB_POMTLB_ARRAY_HH
#define POMTLB_POMTLB_ARRAY_HH

#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "pomtlb/addr_map.hh"
#include "tlb/entry.hh"

namespace pomtlb
{

/** Result of an associative search of one POM-TLB set. */
struct PomTlbArrayResult
{
    bool hit = false;
    PageNum pfn = 0;
};

/** Entry storage for one partition of the POM-TLB. */
class PomTlbPartition
{
  public:
    PomTlbPartition(std::string name, std::uint64_t sets,
                    unsigned ways);

    /** Associative search of set @p set; refreshes 2-bit LRU on hit. */
    PomTlbArrayResult lookup(std::uint64_t set, PageNum vpn, VmId vm,
                             ProcessId pid, PageSize size);

    /** Install a translation, evicting via the in-attr LRU bits. */
    void insert(std::uint64_t set, PageNum vpn, VmId vm, ProcessId pid,
                PageSize size, PageNum pfn);

    /** Drop one page's entry; true if found. */
    bool invalidatePage(std::uint64_t set, PageNum vpn, VmId vm,
                        ProcessId pid, PageSize size);

    /** Drop all entries of @p vm; returns the count. */
    std::uint64_t invalidateVm(VmId vm);

    /** Lookups that matched an entry since the stats reset. */
    std::uint64_t hits() const { return hitCount.value(); }
    /** Lookups that matched no entry since the stats reset. */
    std::uint64_t misses() const { return missCount.value(); }
    /** Fraction of lookups that hit (0 when no lookups happened). */
    double hitRate() const;
    /** Entries currently valid in the array. */
    std::uint64_t validEntryCount() const { return validEntries; }
    /** Number of sets in this partition. */
    std::uint64_t setCount() const { return sets; }
    /** Zero all partition counters. */
    void resetStats();

    /** The partition's statistics group (named after the partition). */
    const StatGroup &stats() const { return statGroup; }

  private:
    /** Age every other valid entry in the set; set way's age to 0. */
    void makeYoungest(TlbEntry *base, unsigned way);

    std::string partitionName;
    std::uint64_t sets;
    unsigned ways;
    std::vector<TlbEntry> entries;
    std::uint64_t validEntries = 0;

    Counter hitCount;
    Counter missCount;
    Counter insertions;
    Counter evictions;
    StatGroup statGroup;
};

} // namespace pomtlb

#endif // POMTLB_POMTLB_ARRAY_HH

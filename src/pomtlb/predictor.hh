/**
 * @file
 * The shared page-size / cache-bypass predictor (Sections 2.1.4-2.1.5).
 *
 * One table of 512 two-bit entries per core (128 bytes of SRAM):
 * bit 0 predicts the page size of the next translation to the indexed
 * region (0 = 4 KB, 1 = 2 MB); bit 1 predicts whether probing the data
 * caches for the POM-TLB line is useless and should be bypassed.
 * The table is indexed with 9 bits of the virtual address above the
 * 4 KB page offset. Mispredictions simply overwrite the bit — the
 * paper notes hysteresis as a possible refinement, left off by
 * default but available for the ablation benches.
 */

#ifndef POMTLB_POMTLB_PREDICTOR_HH
#define POMTLB_POMTLB_PREDICTOR_HH

#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace pomtlb
{

/** Per-core page-size + cache-bypass predictor. */
class SizeBypassPredictor
{
  public:
    /**
     * @param table_entries Number of predictor slots (512 in paper).
     * @param hysteresis    Use 2-bit saturating counters per
     *                      prediction instead of single bits
     *                      (footnote 2's suggested refinement).
     */
    explicit SizeBypassPredictor(unsigned table_entries = 512,
                                 bool hysteresis = false);

    /** Predict the page size of the translation for @p vaddr. */
    PageSize predictSize(Addr vaddr) const;

    /** Predict whether to bypass the data caches for @p vaddr. */
    bool predictBypass(Addr vaddr) const;

    /**
     * Train with the actual page size; also records size-prediction
     * accuracy (Figure 10).
     */
    void updateSize(Addr vaddr, PageSize actual);

    /**
     * Train the bypass bit with what the right decision would have
     * been (@p should_bypass = the caches did not hold the line), and
     * record bypass accuracy against the decision actually taken.
     */
    void updateBypass(Addr vaddr, bool predicted, bool should_bypass);

    double sizeAccuracy() const;
    double bypassAccuracy() const;
    std::uint64_t sizePredictions() const
    {
        return sizeCorrect.value() + sizeWrong.value();
    }
    std::uint64_t bypassPredictions() const
    {
        return bypassCorrect.value() + bypassWrong.value();
    }

    void resetStats();

  private:
    unsigned indexOf(Addr vaddr) const;

    /** Move a saturating counter toward @p taken. */
    static std::uint8_t train(std::uint8_t counter, bool toward);

    unsigned tableEntries;
    bool useHysteresis;
    /** 2-bit saturating counters; MSB is the prediction. */
    std::vector<std::uint8_t> sizeState;
    std::vector<std::uint8_t> bypassState;

    Counter sizeCorrect;
    Counter sizeWrong;
    Counter bypassCorrect;
    Counter bypassWrong;
};

} // namespace pomtlb

#endif // POMTLB_POMTLB_PREDICTOR_HH

/**
 * @file
 * The POM-TLB device: both in-DRAM partitions behind the dedicated
 * die-stacked channel, plus the set-address map. The translation
 * scheme (pomtlb/scheme.hh) drives the Figure 7 access flow; this
 * class owns storage and DRAM timing.
 */

#ifndef POMTLB_POMTLB_POM_TLB_HH
#define POMTLB_POMTLB_POM_TLB_HH

#include "common/config.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "dram/controller.hh"
#include "pomtlb/addr_map.hh"
#include "pomtlb/array.hh"

namespace pomtlb
{

/** Result of a timed POM-TLB DRAM lookup. */
struct PomTlbDeviceResult
{
    bool hit = false;
    PageNum pfn = 0;
    Cycles cycles = 0;
    RowBufferOutcome rowBuffer = RowBufferOutcome::Closed;
};

/** The shared, addressable, in-DRAM L3 TLB. */
class PomTlb
{
  public:
    /**
     * @param config      Geometry (capacity, partitions, base PA).
     * @param die_stacked The dedicated die-stacked DRAM channel.
     */
    PomTlb(const PomTlbConfig &config, DramController &die_stacked);

    /** Host-physical address of the set @p vaddr maps to at @p size. */
    Addr
    setAddress(Addr vaddr, VmId vm, PageSize size) const
    {
        return addressMap.setAddress(pageNumber(vaddr, size), vm, size);
    }

    /**
     * Timed lookup: one die-stacked DRAM burst fetches the set, then
     * the four entries are searched associatively.
     */
    PomTlbDeviceResult lookupDram(Addr vaddr, VmId vm, ProcessId pid,
                                  PageSize size, Cycles now);

    /**
     * Untimed associative search of the set — used when the set's
     * line was found in a data cache (the cached line is coherent
     * with the array; see DESIGN.md on write-update semantics).
     */
    PomTlbArrayResult searchSet(Addr vaddr, VmId vm, ProcessId pid,
                                PageSize size);

    /**
     * Install a walked translation. The DRAM write advances the bank
     * timeline but its latency is not returned: fills happen off the
     * translation's critical path.
     */
    void install(Addr vaddr, VmId vm, ProcessId pid, PageSize size,
                 PageNum pfn, Cycles now);

    /** Untimed install (steady-state pre-population). */
    void installUntimed(Addr vaddr, VmId vm, ProcessId pid,
                        PageSize size, PageNum pfn);

    /** Single-page shootdown. */
    bool invalidatePage(Addr vaddr, VmId vm, ProcessId pid,
                        PageSize size);

    /** VM-wide shootdown; returns entries dropped. */
    std::uint64_t invalidateVm(VmId vm);

    /** Hit rate across both partitions (lookups only). */
    double hitRate() const;

    /** Row-buffer hit rate of the die-stacked channel (Figure 11). */
    double rowBufferHitRate() const
    {
        return dram.rowBufferHitRate();
    }

    /** The set-address map (Section 2.1 addressing). */
    const PomTlbAddressMap &addrMap() const { return addressMap; }
    /** The partition serving @p size pages. */
    const PomTlbPartition &
    partition(PageSize size) const
    {
        if (addressMap.isUnified())
            return smallPartition;
        return size == PageSize::Small4K ? smallPartition
                                         : largePartition;
    }
    /** The dedicated die-stacked DRAM channel behind the device. */
    DramController &dramController() { return dram; }

    /** Device-level statistics, with both partitions as children. */
    const StatGroup &stats() const { return statGroup; }

    /** Zero device and partition counters. */
    void resetStats();

  private:
    PomTlbPartition &
    partitionFor(PageSize size)
    {
        if (addressMap.isUnified())
            return smallPartition;
        return size == PageSize::Small4K ? smallPartition
                                         : largePartition;
    }

    PomTlbAddressMap addressMap;
    PomTlbPartition smallPartition;
    PomTlbPartition largePartition;
    DramController &dram;
    StatGroup statGroup;
};

} // namespace pomtlb

#endif // POMTLB_POMTLB_POM_TLB_HH

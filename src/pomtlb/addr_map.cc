#include "pomtlb/addr_map.hh"

#include "common/bitutil.hh"
#include "common/log.hh"

namespace pomtlb
{

PomTlbAddressMap::PomTlbAddressMap(const PomTlbConfig &config)
    : setBytes(config.entryBytes * config.associativity),
      unified(config.unifiedOrganization),
      ways(config.associativity)
{
    config.validate();
    // Cacheable configurations keep one set per 64 B line (enforced
    // by SystemConfig::validate()); the associativity ablation may
    // use smaller sets with caching disabled.
    if (unified) {
        // One shared array holds both page sizes (footnote 1).
        smallSets = config.capacityBytes / setBytes;
        largeSets = smallSets;
        smallBase = config.baseAddress;
        largeBase = config.baseAddress;
    } else {
        smallSets = config.smallPartitionBytes() / setBytes;
        largeSets = config.largePartitionBytes() / setBytes;
        smallBase = config.baseAddress;
        largeBase = smallBase + config.smallPartitionBytes();
    }
}

std::optional<PageSize>
PomTlbAddressMap::partitionOf(Addr addr) const
{
    if (unified) {
        if (addr >= smallBase && addr < smallBase + smallSets * setBytes)
            return PageSize::Small4K; // the single shared array
        return std::nullopt;
    }
    if (addr >= smallBase && addr < largeBase)
        return PageSize::Small4K;
    if (addr >= largeBase && addr < rangeEnd())
        return PageSize::Large2M;
    return std::nullopt;
}

} // namespace pomtlb

#include "pomtlb/pom_tlb.hh"

namespace pomtlb
{

PomTlb::PomTlb(const PomTlbConfig &config, DramController &die_stacked)
    : addressMap(config),
      smallPartition(config.unifiedOrganization ? "unified_partition"
                                                : "small_partition",
                     addressMap.numSets(PageSize::Small4K),
                     config.associativity),
      // In the unified organisation the "large" member is a 1-set
      // stub; both sizes route to the shared array.
      largePartition("large_partition",
                     config.unifiedOrganization
                         ? 1
                         : addressMap.numSets(PageSize::Large2M),
                     config.associativity),
      dram(die_stacked),
      statGroup("pom_tlb")
{
    statGroup.addDerived("hit_rate", [this] { return hitRate(); });
    statGroup.addDerived("row_buffer_hit_rate",
                         [this] { return rowBufferHitRate(); });
    statGroup.addChild(smallPartition.stats());
    if (!addressMap.isUnified())
        statGroup.addChild(largePartition.stats());
}

PomTlbDeviceResult
PomTlb::lookupDram(Addr vaddr, VmId vm, ProcessId pid, PageSize size,
                   Cycles now)
{
    const PageNum vpn = pageNumber(vaddr, size);
    const Addr set_addr = addressMap.setAddress(vpn, vm, size);

    const DramAccessResult dram_result = dram.access(set_addr, now);

    const std::uint64_t set = addressMap.setIndex(vpn, vm, size);
    const PomTlbArrayResult search =
        partitionFor(size).lookup(set, vpn, vm, pid, size);

    PomTlbDeviceResult result;
    result.hit = search.hit;
    result.pfn = search.pfn;
    result.cycles = dram_result.latency;
    result.rowBuffer = dram_result.outcome;
    return result;
}

PomTlbArrayResult
PomTlb::searchSet(Addr vaddr, VmId vm, ProcessId pid, PageSize size)
{
    const PageNum vpn = pageNumber(vaddr, size);
    const std::uint64_t set = addressMap.setIndex(vpn, vm, size);
    return partitionFor(size).lookup(set, vpn, vm, pid, size);
}

void
PomTlb::install(Addr vaddr, VmId vm, ProcessId pid, PageSize size,
                PageNum pfn, Cycles now)
{
    const PageNum vpn = pageNumber(vaddr, size);
    const Addr set_addr = addressMap.setAddress(vpn, vm, size);

    // The fill write occupies the bank but is off the critical path;
    // read-modify-write of the 64 B set is one burst here.
    dram.access(set_addr, now);

    const std::uint64_t set = addressMap.setIndex(vpn, vm, size);
    partitionFor(size).insert(set, vpn, vm, pid, size, pfn);
}

void
PomTlb::installUntimed(Addr vaddr, VmId vm, ProcessId pid,
                       PageSize size, PageNum pfn)
{
    const PageNum vpn = pageNumber(vaddr, size);
    const std::uint64_t set = addressMap.setIndex(vpn, vm, size);
    partitionFor(size).insert(set, vpn, vm, pid, size, pfn);
}

bool
PomTlb::invalidatePage(Addr vaddr, VmId vm, ProcessId pid,
                       PageSize size)
{
    const PageNum vpn = pageNumber(vaddr, size);
    const std::uint64_t set = addressMap.setIndex(vpn, vm, size);
    return partitionFor(size).invalidatePage(set, vpn, vm, pid, size);
}

std::uint64_t
PomTlb::invalidateVm(VmId vm)
{
    return smallPartition.invalidateVm(vm) +
           largePartition.invalidateVm(vm);
}

double
PomTlb::hitRate() const
{
    const std::uint64_t hits =
        smallPartition.hits() + largePartition.hits();
    const std::uint64_t total = hits + smallPartition.misses() +
                                largePartition.misses();
    return total ? static_cast<double>(hits) / total : 0.0;
}

void
PomTlb::resetStats()
{
    smallPartition.resetStats();
    largePartition.resetStats();
    dram.resetStats();
}

} // namespace pomtlb

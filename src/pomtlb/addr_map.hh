/**
 * @file
 * POM-TLB set addressing (Section 2.1.3, Equation 1).
 *
 * The POM-TLB is mapped into the host-physical address space: the
 * small-page partition at the configured base, the large-page
 * partition right after it. A virtual address is converted to a set
 * index by extracting log2(N) bits of its VPN after XOR-ing with the
 * VM ID (to spread multiple VMs across sets), and each set is one
 * 64-byte line holding four 16-byte entries.
 *
 * Extracting contiguous low VPN bits — rather than hashing — is what
 * preserves the spatial locality that yields the high DRAM row-buffer
 * hit rates of Section 4.4.
 */

#ifndef POMTLB_POMTLB_ADDR_MAP_HH
#define POMTLB_POMTLB_ADDR_MAP_HH

#include <optional>

#include "common/bitutil.hh"
#include "common/config.hh"
#include "common/types.hh"

namespace pomtlb
{

/** Computes set indices and physical addresses for both partitions. */
class PomTlbAddressMap
{
  public:
    explicit PomTlbAddressMap(const PomTlbConfig &config);

    /** Number of sets in the partition for @p size. */
    std::uint64_t numSets(PageSize size) const
    {
        return size == PageSize::Small4K ? smallSets : largeSets;
    }

    /**
     * Set index for a VPN of the given page size. In the paper's
     * partitioned design this is Equation 1 (low VPN bits XOR VM id)
     * for both partitions. In the unified organisation (footnote 1)
     * both sizes share one array: 4 KB pages keep the Equation 1
     * index (preserving spatial locality and row-buffer hits) while
     * 2 MB pages use a skewed hash so the two sizes do not collide
     * systematically in the shared sets.
     */
    std::uint64_t
    setIndex(PageNum vpn, VmId vm, PageSize size) const
    {
        if (unified && size == PageSize::Large2M) {
            return (mix64(vpn) ^ vm) & (largeSets - 1);
        }
        return (vpn ^ vm) & (numSets(size) - 1);
    }

    /** Whether both sizes share one array (footnote 1 extension). */
    bool isUnified() const { return unified; }

    /** Host-physical address of the set's 64-byte line. */
    Addr
    setAddress(PageNum vpn, VmId vm, PageSize size) const
    {
        return partitionBase(size) +
               setIndex(vpn, vm, size) * setBytes;
    }

    /** Base host-physical address of a partition. */
    Addr
    partitionBase(PageSize size) const
    {
        return size == PageSize::Small4K ? smallBase : largeBase;
    }

    /** Which partition (if any) owns host-physical address @p addr. */
    std::optional<PageSize> partitionOf(Addr addr) const;

    /** One past the last byte of the POM-TLB's address range. */
    Addr rangeEnd() const { return largeBase + largeSets * setBytes; }

    unsigned associativity() const { return ways; }
    /** Bytes per set (64 in the paper's 4-way x 16 B layout). */
    unsigned setSizeBytes() const { return setBytes; }

  private:
    unsigned setBytes;
    bool unified;
    std::uint64_t smallSets;
    std::uint64_t largeSets;
    Addr smallBase;
    Addr largeBase;
    unsigned ways;
};

} // namespace pomtlb

#endif // POMTLB_POMTLB_ADDR_MAP_HH

#include "pomtlb/scheme.hh"

#include "common/log.hh"
#include "sim/machine.hh"
#include "sim/scheme_registry.hh"

namespace pomtlb
{

PomTlbScheme::PomTlbScheme(
    const PomTlbConfig &config, PomTlb &pom, DataHierarchy &hierarchy,
    std::vector<std::unique_ptr<PageWalker>> &walkers)
    : tlbConfig(config),
      pomTlb(pom),
      dataHierarchy(hierarchy),
      pageWalkers(walkers),
      statGroup("scheme")
{
    predictors.reserve(hierarchy.numCores());
    for (unsigned core = 0; core < hierarchy.numCores(); ++core) {
        predictors.push_back(std::make_unique<SizeBypassPredictor>(
            config.predictorEntries));
    }

    statGroup.addCounter("requests", requests);
    statGroup.addCounter("served_l2d_cache", served[0]);
    statGroup.addCounter("served_l3d_cache", served[1]);
    statGroup.addCounter("served_pom_dram", served[2]);
    statGroup.addCounter("served_page_walk", served[3]);
    statGroup.addCounter("l2d_cache_cycles", servedCycles[0]);
    statGroup.addCounter("l3d_cache_cycles", servedCycles[1]);
    statGroup.addCounter("pom_dram_cycles", servedCycles[2]);
    statGroup.addCounter("walk_path_cycles", servedCycles[3]);
    statGroup.addCounter("second_size_lookups", secondSizeLookups);
    statGroup.addCounter("bypasses", bypasses);
    statGroup.addCounter("prefetches", prefetches);
    statGroup.addAverage("avg_miss_cycles", missCycles);
    statGroup.addDerived("l2d_service_rate",
                         [this] { return l2CacheServiceRate(); });
    statGroup.addDerived("l3d_service_rate",
                         [this] { return l3CacheServiceRate(); });
    statGroup.addDerived("pom_dram_service_rate",
                         [this] { return pomDramServiceRate(); });
    statGroup.addDerived("walk_elimination_rate",
                         [this] { return walkEliminationRate(); });
    statGroup.addDerived("size_predictor_accuracy",
                         [this] { return sizePredictorAccuracy(); });
    statGroup.addDerived("bypass_predictor_accuracy",
                         [this] { return bypassPredictorAccuracy(); });
    statGroup.addHistogram("miss_cycle_hist", missCycleHist);
    statGroup.addChild(pomTlb.stats());
}

bool
PomTlbScheme::trySize(CoreId core, Addr vaddr, PageSize size, VmId vm,
                      ProcessId pid, bool bypass, Cycles now,
                      Cycles &cycles, PageNum &pfn,
                      PomServiceLevel &level, std::uint8_t &probes)
{
    const Addr set_addr = pomTlb.setAddress(vaddr, vm, size);

    if (!bypass && tlbConfig.cacheable) {
        const CacheProbeResult probe =
            dataHierarchy.probeTlbLine(core, set_addr, now + cycles);
        cycles += probe.latency;
        ++probes;
        if (probe.hit) {
            // The cached line is coherent with the array: search it.
            const PomTlbArrayResult search =
                pomTlb.searchSet(vaddr, vm, pid, size);
            if (search.hit) {
                pfn = search.pfn;
                level = probe.level == MemLevel::L2D
                            ? PomServiceLevel::L2Cache
                            : PomServiceLevel::L3Cache;
                return true;
            }
            // Line cached but no matching entry: this partition
            // definitively misses — DRAM holds the same set content.
            return false;
        }
    }

    const PomTlbDeviceResult dram =
        pomTlb.lookupDram(vaddr, vm, pid, size, now + cycles);
    cycles += dram.cycles;
    ++probes;
    if (tlbConfig.cacheable)
        dataHierarchy.fillTlbLine(core, set_addr);
    if (dram.hit) {
        pfn = dram.pfn;
        level = PomServiceLevel::PomDram;
        return true;
    }
    return false;
}

SchemeResult
PomTlbScheme::translateMiss(CoreId core, Addr vaddr, PageSize size,
                            VmId vm, ProcessId pid, Cycles now)
{
    simAssert(core < predictors.size(), "core id out of range");
    SizeBypassPredictor &predictor = *predictors[core];
    ++requests;

    const PageSize predicted_size = tlbConfig.sizePredictor
                                        ? predictor.predictSize(vaddr)
                                        : PageSize::Small4K;
    const PageSize other_size = predicted_size == PageSize::Small4K
                                    ? PageSize::Large2M
                                    : PageSize::Small4K;

    const bool bypass = tlbConfig.cacheable &&
                        tlbConfig.bypassPredictor &&
                        predictor.predictBypass(vaddr);
    if (bypass)
        ++bypasses;

    // Ground truth for bypass training/accuracy: would the cache
    // probes (for the predicted size) have hit? Observed without
    // perturbing cache state.
    const Addr predicted_addr =
        pomTlb.setAddress(vaddr, vm, predicted_size);
    const bool caches_held_line =
        dataHierarchy.l2d(core).contains(predicted_addr) ||
        dataHierarchy.l3d().contains(predicted_addr);

    SchemeResult result;
    PomServiceLevel level = PomServiceLevel::PageWalk;

    bool found = trySize(core, vaddr, predicted_size, vm, pid, bypass,
                         now, result.cycles, result.pfn, level,
                         result.probes);
    if (!found) {
        ++secondSizeLookups;
        result.firstTryServed = false;
        found = trySize(core, vaddr, other_size, vm, pid, bypass, now,
                        result.cycles, result.pfn, level,
                        result.probes);
    }

    if (!found) {
        PageWalker &walker = *pageWalkers[core];
        const WalkResult walk =
            walker.walk(vaddr, vm, pid, size, now + result.cycles);
        result.cycles += walk.cycles;
        result.pfn = walk.hostPfn;
        result.walked = true;
        result.firstTryServed = false;
        ++result.probes;
        level = PomServiceLevel::PageWalk;

        pomTlb.install(vaddr, vm, pid, size, walk.hostPfn,
                       now + result.cycles);
        if (tlbConfig.cacheable) {
            dataHierarchy.fillTlbLine(
                core, pomTlb.setAddress(vaddr, vm, size));
        }
    }

    // Train the predictors with this translation's actual outcome.
    if (tlbConfig.sizePredictor)
        predictor.updateSize(vaddr, size);
    if (tlbConfig.cacheable && tlbConfig.bypassPredictor)
        predictor.updateBypass(vaddr, bypass, !caches_held_line);

    // Section 6 extension: warm the adjacent page's set line into
    // the caches off the critical path (sequential miss streams then
    // find their next translation already cache-resident).
    if (tlbConfig.prefetchNextSet && tlbConfig.cacheable) {
        const Addr next_page = vaddr + pageBytes(size);
        dataHierarchy.fillTlbLine(
            core, pomTlb.setAddress(next_page, vm, size));
        ++prefetches;
    }

    ++served[static_cast<unsigned>(level)];
    servedCycles[static_cast<unsigned>(level)] += result.cycles;
    switch (level) {
      case PomServiceLevel::L2Cache:
        result.servedBy = ServicePoint::CacheL2D;
        break;
      case PomServiceLevel::L3Cache:
        result.servedBy = ServicePoint::CacheL3D;
        break;
      case PomServiceLevel::PomDram:
        result.servedBy = ServicePoint::PomDram;
        break;
      case PomServiceLevel::PageWalk:
        result.servedBy = ServicePoint::PageWalk;
        break;
    }
    missCycles.sample(static_cast<double>(result.cycles));
    if (StatsRegistry::detail())
        missCycleHist.sample(result.cycles);
    return result;
}

std::vector<std::pair<ServicePoint, std::uint64_t>>
PomTlbScheme::cycleBreakdown() const
{
    return {{ServicePoint::CacheL2D, servedCycles[0].value()},
            {ServicePoint::CacheL3D, servedCycles[1].value()},
            {ServicePoint::PomDram, servedCycles[2].value()},
            {ServicePoint::PageWalk, servedCycles[3].value()}};
}

void
PomTlbScheme::prewarm(CoreId, Addr vaddr, PageSize size, VmId vm,
                      ProcessId pid, PageNum pfn)
{
    pomTlb.installUntimed(vaddr, vm, pid, size, pfn);
}

void
PomTlbScheme::invalidatePage(Addr vaddr, PageSize size, VmId vm,
                             ProcessId pid)
{
    pomTlb.invalidatePage(vaddr, vm, pid, size);
    // The set line cached in the data hierarchy now holds a stale
    // entry; a shootdown invalidates it everywhere (Section 2.2).
    dataHierarchy.invalidateTlbLine(
        pomTlb.setAddress(vaddr, vm, size));
}

void
PomTlbScheme::invalidateVm(VmId vm)
{
    pomTlb.invalidateVm(vm);
    for (auto &walker : pageWalkers)
        walker->invalidateVm(vm);
}

void
PomTlbScheme::resetStats()
{
    requests.reset();
    for (auto &counter : served)
        counter.reset();
    for (auto &counter : servedCycles)
        counter.reset();
    secondSizeLookups.reset();
    bypasses.reset();
    prefetches.reset();
    missCycles.reset();
    missCycleHist.reset();
    for (auto &predictor : predictors)
        predictor->resetStats();
    pomTlb.resetStats();
}

double
PomTlbScheme::l2CacheServiceRate() const
{
    const std::uint64_t total = requests.value();
    if (total == 0)
        return 0.0;
    return static_cast<double>(
               served[static_cast<unsigned>(PomServiceLevel::L2Cache)]
                   .value()) /
           static_cast<double>(total);
}

double
PomTlbScheme::l3CacheServiceRate() const
{
    const std::uint64_t past_l2 =
        requests.value() -
        served[static_cast<unsigned>(PomServiceLevel::L2Cache)].value();
    if (past_l2 == 0)
        return 0.0;
    return static_cast<double>(
               served[static_cast<unsigned>(PomServiceLevel::L3Cache)]
                   .value()) /
           static_cast<double>(past_l2);
}

double
PomTlbScheme::pomDramServiceRate() const
{
    const std::uint64_t past_caches =
        requests.value() -
        served[static_cast<unsigned>(PomServiceLevel::L2Cache)].value() -
        served[static_cast<unsigned>(PomServiceLevel::L3Cache)].value();
    if (past_caches == 0)
        return 0.0;
    return static_cast<double>(
               served[static_cast<unsigned>(PomServiceLevel::PomDram)]
                   .value()) /
           static_cast<double>(past_caches);
}

double
PomTlbScheme::walkEliminationRate() const
{
    const std::uint64_t total = requests.value();
    if (total == 0)
        return 0.0;
    const std::uint64_t walks =
        served[static_cast<unsigned>(PomServiceLevel::PageWalk)].value();
    return 1.0 - static_cast<double>(walks) /
                     static_cast<double>(total);
}

double
PomTlbScheme::sizePredictorAccuracy() const
{
    std::uint64_t correct = 0;
    std::uint64_t total = 0;
    for (const auto &predictor : predictors) {
        const std::uint64_t n = predictor->sizePredictions();
        correct += static_cast<std::uint64_t>(
            predictor->sizeAccuracy() * static_cast<double>(n) + 0.5);
        total += n;
    }
    return total ? static_cast<double>(correct) / total : 0.0;
}

double
PomTlbScheme::bypassPredictorAccuracy() const
{
    std::uint64_t correct = 0;
    std::uint64_t total = 0;
    for (const auto &predictor : predictors) {
        const std::uint64_t n = predictor->bypassPredictions();
        correct += static_cast<std::uint64_t>(
            predictor->bypassAccuracy() * static_cast<double>(n) + 0.5);
        total += n;
    }
    return total ? static_cast<double>(correct) / total : 0.0;
}

POMTLB_REGISTER_SCHEME(registerPomTlb, {
    .name = "POM-TLB",
    .description = "the paper's very large part-of-memory L3 TLB in "
                   "die-stacked DRAM, cached by the data caches",
    .aliases = {"pom", "pom-tlb"},
    .rank = 1,
    .legacy = SchemeKind::PomTlb,
    .factory = [](const SystemConfig &config, Machine &machine)
        -> std::unique_ptr<TranslationScheme> {
        return std::make_unique<PomTlbScheme>(
            config.pomTlb, machine.ensurePomTlbDevice(),
            machine.hierarchy(), machine.walkerPool());
    },
});

} // namespace pomtlb

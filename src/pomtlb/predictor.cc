#include "pomtlb/predictor.hh"

#include "common/bitutil.hh"
#include "common/log.hh"

namespace pomtlb
{

SizeBypassPredictor::SizeBypassPredictor(unsigned table_entries,
                                         bool hysteresis)
    : tableEntries(table_entries),
      useHysteresis(hysteresis),
      sizeState(table_entries, 0),
      bypassState(table_entries, 0)
{
    simAssert(isPowerOfTwo(table_entries),
              "predictor table must be a power of two");
}

unsigned
SizeBypassPredictor::indexOf(Addr vaddr) const
{
    // 9 bits of the VA above the 4 KB page offset (Section 2.1.4).
    return static_cast<unsigned>((vaddr >> smallPageShift) &
                                 (tableEntries - 1));
}

std::uint8_t
SizeBypassPredictor::train(std::uint8_t counter, bool toward)
{
    if (toward)
        return counter < 3 ? counter + 1 : 3;
    return counter > 0 ? counter - 1 : 0;
}

PageSize
SizeBypassPredictor::predictSize(Addr vaddr) const
{
    const std::uint8_t state = sizeState[indexOf(vaddr)];
    const bool large = useHysteresis ? state >= 2 : state != 0;
    return large ? PageSize::Large2M : PageSize::Small4K;
}

bool
SizeBypassPredictor::predictBypass(Addr vaddr) const
{
    const std::uint8_t state = bypassState[indexOf(vaddr)];
    return useHysteresis ? state >= 2 : state != 0;
}

void
SizeBypassPredictor::updateSize(Addr vaddr, PageSize actual)
{
    const unsigned index = indexOf(vaddr);
    const bool predicted_large =
        useHysteresis ? sizeState[index] >= 2 : sizeState[index] != 0;
    const bool actual_large = actual == PageSize::Large2M;

    if (predicted_large == actual_large)
        ++sizeCorrect;
    else
        ++sizeWrong;

    if (useHysteresis)
        sizeState[index] = train(sizeState[index], actual_large);
    else
        sizeState[index] = actual_large ? 1 : 0;
}

void
SizeBypassPredictor::updateBypass(Addr vaddr, bool predicted,
                                  bool should_bypass)
{
    const unsigned index = indexOf(vaddr);
    if (predicted == should_bypass)
        ++bypassCorrect;
    else
        ++bypassWrong;

    if (useHysteresis)
        bypassState[index] = train(bypassState[index], should_bypass);
    else
        bypassState[index] = should_bypass ? 1 : 0;
}

double
SizeBypassPredictor::sizeAccuracy() const
{
    const std::uint64_t total = sizePredictions();
    return total ? static_cast<double>(sizeCorrect.value()) / total : 0.0;
}

double
SizeBypassPredictor::bypassAccuracy() const
{
    const std::uint64_t total = bypassPredictions();
    return total
               ? static_cast<double>(bypassCorrect.value()) / total
               : 0.0;
}

void
SizeBypassPredictor::resetStats()
{
    sizeCorrect.reset();
    sizeWrong.reset();
    bypassCorrect.reset();
    bypassWrong.reset();
}

} // namespace pomtlb

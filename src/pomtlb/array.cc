#include "pomtlb/array.hh"

#include "common/log.hh"

namespace pomtlb
{

namespace
{
/** The attribute byte's low two bits hold the entry's LRU age. */
constexpr std::uint8_t lruMask = 0x3;
constexpr std::uint8_t lruMax = 0x3;
} // namespace

PomTlbPartition::PomTlbPartition(std::string name, std::uint64_t set_count,
                                 unsigned way_count)
    : partitionName(std::move(name)),
      sets(set_count),
      ways(way_count),
      entries(set_count * way_count),
      statGroup(partitionName)
{
    simAssert(set_count > 0 && way_count > 0,
              "POM-TLB partition needs sets and ways");
    statGroup.addCounter("hits", hitCount);
    statGroup.addCounter("misses", missCount);
    statGroup.addCounter("insertions", insertions);
    statGroup.addCounter("evictions", evictions);
    statGroup.addDerived("hit_rate", [this] { return hitRate(); });
    statGroup.addDerived("valid_entries", [this] {
        return static_cast<double>(validEntries);
    });
}

void
PomTlbPartition::makeYoungest(TlbEntry *base, unsigned way)
{
    for (unsigned w = 0; w < ways; ++w) {
        if (w == way) {
            base[w].attr &= ~lruMask;
            continue;
        }
        const std::uint8_t age = base[w].attr & lruMask;
        if (age < lruMax)
            base[w].attr = (base[w].attr & ~lruMask) |
                           static_cast<std::uint8_t>(age + 1);
    }
}

PomTlbArrayResult
PomTlbPartition::lookup(std::uint64_t set, PageNum vpn, VmId vm,
                        ProcessId pid, PageSize size)
{
    simAssert(set < sets, "POM-TLB set index out of range");
    TlbEntry *base = &entries[set * ways];
    for (unsigned way = 0; way < ways; ++way) {
        if (base[way].matches(vpn, vm, pid, size)) {
            makeYoungest(base, way);
            ++hitCount;
            return {true, base[way].pfn};
        }
    }
    ++missCount;
    return {};
}

void
PomTlbPartition::insert(std::uint64_t set, PageNum vpn, VmId vm,
                        ProcessId pid, PageSize size, PageNum pfn)
{
    simAssert(set < sets, "POM-TLB set index out of range");
    TlbEntry *base = &entries[set * ways];
    ++insertions;

    // Refresh in place when present.
    for (unsigned way = 0; way < ways; ++way) {
        if (base[way].matches(vpn, vm, pid, size)) {
            base[way].pfn = pfn;
            makeYoungest(base, way);
            return;
        }
    }

    unsigned target = ways;
    for (unsigned way = 0; way < ways; ++way) {
        if (!base[way].valid) {
            target = way;
            break;
        }
    }
    if (target == ways) {
        // Evict the oldest entry per the in-attr LRU bits.
        std::uint8_t oldest_age = 0;
        target = 0;
        for (unsigned way = 0; way < ways; ++way) {
            const std::uint8_t age = base[way].attr & lruMask;
            if (age >= oldest_age) {
                oldest_age = age;
                target = way;
            }
        }
        ++evictions;
        --validEntries;
    }

    TlbEntry &entry = base[target];
    entry.valid = true;
    entry.vmId = vm;
    entry.pid = pid;
    entry.vpn = vpn;
    entry.pfn = pfn;
    entry.pageSize = size;
    ++validEntries;
    makeYoungest(base, target);
}

bool
PomTlbPartition::invalidatePage(std::uint64_t set, PageNum vpn, VmId vm,
                                ProcessId pid, PageSize size)
{
    simAssert(set < sets, "POM-TLB set index out of range");
    TlbEntry *base = &entries[set * ways];
    for (unsigned way = 0; way < ways; ++way) {
        if (base[way].matches(vpn, vm, pid, size)) {
            base[way].valid = false;
            --validEntries;
            return true;
        }
    }
    return false;
}

std::uint64_t
PomTlbPartition::invalidateVm(VmId vm)
{
    std::uint64_t dropped = 0;
    for (auto &entry : entries) {
        if (entry.valid && entry.vmId == vm) {
            entry.valid = false;
            ++dropped;
        }
    }
    validEntries -= dropped;
    return dropped;
}

double
PomTlbPartition::hitRate() const
{
    const std::uint64_t total = hitCount.value() + missCount.value();
    return total ? static_cast<double>(hitCount.value()) / total : 0.0;
}

void
PomTlbPartition::resetStats()
{
    hitCount.reset();
    missCount.reset();
    insertions.reset();
    evictions.reset();
}

} // namespace pomtlb

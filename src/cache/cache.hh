/**
 * @file
 * A generic set-associative, write-back, write-allocate cache model.
 *
 * The model tracks tags only (no data payloads — this is a timing and
 * hit/miss simulator). Each line remembers whether it holds a cached
 * POM-TLB entry, so the experiments can report how translation lines
 * and ordinary data compete for capacity (Sections 4.2 and 5.1).
 *
 * Hot-path layout: line state is stored structure-of-arrays — the tag
 * probe (the operation every access performs) scans one contiguous
 * 64-bit array per set instead of striding through a wide per-line
 * struct, and validity is folded into the tag with a reserved
 * sentinel so the probe is a single compare per way. Under the
 * default LRU replacement the recency stamps double as the policy
 * state (the same stamps the Section 5.1 TLB-aware victim scan
 * uses), so no virtual ReplacementPolicy calls appear on the access
 * path; non-LRU policies still go through the polymorphic interface.
 */

#ifndef POMTLB_CACHE_CACHE_HH
#define POMTLB_CACHE_CACHE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cache/replacement.hh"
#include "common/config.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace pomtlb
{

/** What a cache line holds, for occupancy accounting. */
enum class LineKind : std::uint8_t
{
    Data = 0,
    TlbEntry = 1,
};

/** Result of a cache lookup. */
struct CacheLookupResult
{
    bool hit = false;
    /** Valid only on hit: what kind of line hit. */
    LineKind kind = LineKind::Data;
};

/** Result of a fill: whether/what got evicted. */
struct CacheFillResult
{
    bool evicted = false;
    Addr victimAddr = 0;
    bool victimDirty = false;
    LineKind victimKind = LineKind::Data;
};

/**
 * How a cache arbitrates between data lines and cached POM-TLB lines
 * when choosing an eviction victim (Section 5.1, "TLB-Aware Caching").
 */
enum class TlbLinePolicy : std::uint8_t
{
    /** Plain LRU: TLB lines compete with data on equal terms. */
    None = 0,
    /**
     * Retain TLB lines: when a fill must evict and the set holds any
     * data line, the least-recently-used *data* line is evicted in
     * preference to any TLB line. Useful when translation misses are
     * costlier than the data misses the displaced lines would cause.
     */
    RetainTlb = 1,
};

/** One level of set-associative cache. */
class SetAssocCache
{
  public:
    SetAssocCache(const CacheConfig &config,
                  ReplacementKind replacement = ReplacementKind::Lru,
                  std::uint64_t seed = 0);

    /** Select the Section 5.1 TLB-aware victim policy. */
    void setTlbLinePolicy(TlbLinePolicy policy)
    {
        tlbPolicy = policy;
    }
    TlbLinePolicy tlbLinePolicy() const { return tlbPolicy; }

    /**
     * Look up the line containing @p addr. On a hit the replacement
     * state is updated and, for writes, the line is marked dirty.
     */
    CacheLookupResult lookup(Addr addr, AccessType type,
                             LineKind probe_kind);

    /** State-preserving lookup (no replacement update, no stats). */
    bool contains(Addr addr) const;

    /**
     * Install the line containing @p addr (after a miss was resolved
     * by an outer level), evicting a victim if the set is full.
     */
    CacheFillResult fill(Addr addr, LineKind kind, bool dirty = false);

    /** Drop the line containing @p addr if present. */
    bool invalidate(Addr addr);

    /** Drop every line (returns number of lines dropped). */
    std::uint64_t flush();

    /** Number of currently valid lines holding TLB entries. */
    std::uint64_t tlbLineCount() const { return tlbLines; }

    /** Number of currently valid lines. */
    std::uint64_t validLineCount() const { return validLines; }

    double hitRate() const;
    /** Hit rate counting only probes of the given kind. */
    double hitRate(LineKind kind) const;

    Cycles latency() const { return cacheConfig.accessLatency; }
    const CacheConfig &config() const { return cacheConfig; }
    const StatGroup &stats() const { return statGroup; }
    void resetStats();

    std::uint64_t hitCount(LineKind kind) const
    {
        return kind == LineKind::Data ? dataHits.value()
                                      : tlbHits.value();
    }
    std::uint64_t missCount(LineKind kind) const
    {
        return kind == LineKind::Data ? dataMisses.value()
                                      : tlbMisses.value();
    }
    std::uint64_t writebackCount() const { return writebacks.value(); }

  private:
    /**
     * Reserved tag marking an invalid way. Real tags are addresses
     * shifted right by at least the line bits, so they can never
     * reach the all-ones value (asserted in the constructor).
     */
    static constexpr std::uint64_t invalidTag = ~std::uint64_t{0};

    /** meta[] bit 0: line dirty. */
    static constexpr std::uint8_t metaDirty = 1u << 0;
    /** meta[] bit 1: line caches a POM-TLB entry. */
    static constexpr std::uint8_t metaTlb = 1u << 1;

    std::uint64_t setIndex(Addr addr) const;
    /** Victim way honouring the TLB-aware policy. */
    unsigned victimWay(std::uint64_t set, LineKind incoming);
    std::uint64_t tagOf(Addr addr) const;
    Addr lineAddr(std::uint64_t set, std::uint64_t tag) const;
    /** Index into the line arrays, or -1 when not resident. */
    std::int64_t findLine(Addr addr) const;

    static LineKind
    kindOf(std::uint8_t meta_bits)
    {
        return (meta_bits & metaTlb) ? LineKind::TlbEntry
                                     : LineKind::Data;
    }

    CacheConfig cacheConfig;
    std::uint64_t sets;
    unsigned ways;
    unsigned lineShift;
    unsigned setBits;

    // Structure-of-arrays line state, indexed [set * ways + way].
    std::vector<std::uint64_t> tags;
    /** Recency stamps: LRU state and TLB-aware victim input. */
    std::vector<std::uint64_t> stamps;
    /** Per-line dirty/kind bits (metaDirty / metaTlb). */
    std::vector<std::uint8_t> meta;

    /** Non-null only for non-LRU replacement (LRU is inlined). */
    std::unique_ptr<ReplacementPolicy> policy;
    TlbLinePolicy tlbPolicy = TlbLinePolicy::None;
    std::uint64_t recencyClock = 0;
    std::uint64_t tlbLines = 0;
    std::uint64_t validLines = 0;

    Counter dataHits;
    Counter dataMisses;
    Counter tlbHits;
    Counter tlbMisses;
    Counter fills;
    Counter evictions;
    Counter writebacks;
    Counter invalidations;
    StatGroup statGroup;
};

} // namespace pomtlb

#endif // POMTLB_CACHE_CACHE_HH

/**
 * @file
 * Replacement policies for set-associative structures.
 *
 * The cache owns one policy object sized to its geometry; the policy
 * keeps whatever per-set state it needs (ages, PLRU bits, nothing).
 * The same interface backs both the data caches and the SRAM TLBs.
 */

#ifndef POMTLB_CACHE_REPLACEMENT_HH
#define POMTLB_CACHE_REPLACEMENT_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.hh"

namespace pomtlb
{

/** Which replacement algorithm a structure uses. */
enum class ReplacementKind : std::uint8_t
{
    Lru = 0,
    TreePlru = 1,
    Random = 2,
};

/** Interface for per-set replacement state. */
class ReplacementPolicy
{
  public:
    virtual ~ReplacementPolicy() = default;

    /** Note that @p way in @p set was just used. */
    virtual void touch(std::uint64_t set, unsigned way) = 0;

    /** Pick the eviction victim way in @p set (does not touch it). */
    virtual unsigned victim(std::uint64_t set) = 0;

    /** Forget any use history for @p way in @p set (invalidation). */
    virtual void invalidate(std::uint64_t set, unsigned way) = 0;

    /** Factory keyed on ReplacementKind. */
    static std::unique_ptr<ReplacementPolicy>
    create(ReplacementKind kind, std::uint64_t sets, unsigned ways,
           std::uint64_t seed = 0);
};

/** True LRU via per-line age stamps. */
class LruPolicy : public ReplacementPolicy
{
  public:
    LruPolicy(std::uint64_t sets, unsigned ways);

    void touch(std::uint64_t set, unsigned way) override;
    unsigned victim(std::uint64_t set) override;
    void invalidate(std::uint64_t set, unsigned way) override;

  private:
    unsigned numWays;
    std::uint64_t clock = 0;
    /** stamps[set * numWays + way]; 0 means "never used" (prefer). */
    std::vector<std::uint64_t> stamps;
};

/** Tree pseudo-LRU (binary decision tree per set). */
class TreePlruPolicy : public ReplacementPolicy
{
  public:
    TreePlruPolicy(std::uint64_t sets, unsigned ways);

    void touch(std::uint64_t set, unsigned way) override;
    unsigned victim(std::uint64_t set) override;
    void invalidate(std::uint64_t set, unsigned way) override;

  private:
    unsigned numWays;
    unsigned treeNodes;
    /** bits[set * treeNodes + node]. */
    std::vector<std::uint8_t> bits;
};

/** Uniform-random victim selection (deterministic via seeded Rng). */
class RandomPolicy : public ReplacementPolicy
{
  public:
    RandomPolicy(unsigned ways, std::uint64_t seed);

    void touch(std::uint64_t set, unsigned way) override;
    unsigned victim(std::uint64_t set) override;
    void invalidate(std::uint64_t set, unsigned way) override;

  private:
    unsigned numWays;
    Rng rng;
};

} // namespace pomtlb

#endif // POMTLB_CACHE_REPLACEMENT_HH

/**
 * @file
 * A die-stacked DRAM L4 data cache — the alternative use of the
 * stacked capacity the paper argues against (Section 2.2, "Other
 * Die-Stacked DRAM Use"): "using the same capacity as a large TLB is
 * likely to save more cycles than using it as L4 data cache".
 *
 * The model follows the Alloy/ATCache-style organisation the paper
 * cites: tags are checked quickly (a small SRAM tag cache), data
 * resides in stacked DRAM, so a hit costs one die-stacked access and
 * a miss adds only the tag-check latency before falling through to
 * main memory. Implemented as a tag-only set-associative array (like
 * every cache here) whose hit timing is charged against a dedicated
 * die-stacked DramController channel.
 */

#ifndef POMTLB_CACHE_DRAM_CACHE_HH
#define POMTLB_CACHE_DRAM_CACHE_HH

#include <memory>

#include "cache/cache.hh"
#include "common/config.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "dram/controller.hh"

namespace pomtlb
{

/** Result of an L4 DRAM-cache access. */
struct DramCacheResult
{
    bool hit = false;
    /** Core cycles consumed (tag check, plus DRAM on a hit). */
    Cycles latency = 0;
};

/** A die-stacked L4 data cache in front of main memory. */
class DramCache
{
  public:
    /**
     * @param capacity_bytes Cache capacity (the paper discusses the
     *                       same 16 MB the POM-TLB would use).
     * @param line_bytes     Line size (64 B, one stacked burst).
     * @param channel        The dedicated die-stacked channel.
     * @param tag_latency    SRAM tag-cache check cost (core cycles).
     */
    DramCache(std::uint64_t capacity_bytes, unsigned line_bytes,
              DramController &channel, Cycles tag_latency = 4);

    /**
     * Access the line containing @p addr at time @p now; fills on
     * miss (the fill's DRAM write advances the channel timeline but
     * is off the critical path).
     */
    DramCacheResult access(Addr addr, AccessType type, Cycles now);

    /** Fraction of accesses that hit (0 when no accesses happened). */
    double hitRate() const;
    /** Accesses that hit since the stats reset. */
    std::uint64_t hits() const { return hitCount.value(); }
    /** Accesses that missed since the stats reset. */
    std::uint64_t misses() const { return missCount.value(); }
    /** SRAM tag-cache check cost (core cycles). */
    Cycles tagLatency() const { return tagCheckLatency; }

    /** This cache's statistics group ("l4_dram_cache"). */
    const StatGroup &stats() const { return statGroup; }

    /** Zero the hit/miss counters and the tag array's statistics. */
    void resetStats();

  private:
    std::unique_ptr<SetAssocCache> tags;
    DramController &dram;
    Cycles tagCheckLatency;
    Counter hitCount;
    Counter missCount;
    StatGroup statGroup;
};

} // namespace pomtlb

#endif // POMTLB_CACHE_DRAM_CACHE_HH

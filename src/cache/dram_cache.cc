#include "cache/dram_cache.hh"

namespace pomtlb
{

DramCache::DramCache(std::uint64_t capacity_bytes, unsigned line_bytes,
                     DramController &channel, Cycles tag_latency)
    : dram(channel), tagCheckLatency(tag_latency),
      statGroup("l4_dram_cache")
{
    CacheConfig config;
    config.name = "tags";
    config.sizeBytes = capacity_bytes;
    // A wide, DRAM-friendly associativity; 16 ways keeps the sets a
    // power of two at the capacities of interest.
    config.associativity = 16;
    config.lineBytes = line_bytes;
    config.accessLatency = tag_latency;
    tags = std::make_unique<SetAssocCache>(config);

    statGroup.addCounter("hits", hitCount);
    statGroup.addCounter("misses", missCount);
    statGroup.addDerived("hit_rate", [this] { return hitRate(); });
    statGroup.addChild(tags->stats());
}

DramCacheResult
DramCache::access(Addr addr, AccessType type, Cycles now)
{
    DramCacheResult result;
    result.latency += tagCheckLatency;

    if (tags->lookup(addr, type, LineKind::Data).hit) {
        // Data lives in the stacked DRAM: one timed burst.
        const DramAccessResult data =
            dram.access(addr, now + result.latency);
        result.latency += data.latency;
        result.hit = true;
        ++hitCount;
        return result;
    }

    ++missCount;
    // Fill after the main-memory access resolves; the write occupies
    // the stacked channel but is not on the requester's path.
    tags->fill(addr, LineKind::Data, type == AccessType::Write);
    dram.access(addr, now + result.latency);
    return result;
}

double
DramCache::hitRate() const
{
    const std::uint64_t total = hitCount.value() + missCount.value();
    return total ? static_cast<double>(hitCount.value()) / total : 0.0;
}

void
DramCache::resetStats()
{
    hitCount.reset();
    missCount.reset();
    tags->resetStats();
}

} // namespace pomtlb

/**
 * @file
 * The three-level data-cache hierarchy plus its DRAM backing store.
 *
 * Three access paths exist, matching how the paper's MMU uses the
 * caches (Figure 7):
 *
 *  - accessData(): ordinary loads/stores, L1D -> L2D -> L3D -> DDR4;
 *  - accessPte(): page-walker reads of page-table entries, which are
 *    cached in the data caches starting at the (private) L2D;
 *  - probeTlbLine()/fillTlbLine(): POM-TLB set probes, also starting
 *    at the L2D, but *not* automatically resolved to memory — the
 *    translation scheme owns the POM-TLB DRAM access.
 *
 * The hierarchy is mostly-inclusive: fills propagate toward the core,
 * evictions at an outer level do not back-invalidate inner levels
 * (Section 2.2, "Consistency").
 */

#ifndef POMTLB_CACHE_HIERARCHY_HH
#define POMTLB_CACHE_HIERARCHY_HH

#include <memory>
#include <vector>

#include "cache/cache.hh"
#include "common/config.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "cache/dram_cache.hh"
#include "dram/controller.hh"

namespace pomtlb
{

/** Which level serviced an access. */
enum class MemLevel : std::uint8_t
{
    L1D = 0,
    L2D = 1,
    L3D = 2,
    Memory = 3,
};

/** Human-readable level name. */
const char *memLevelName(MemLevel level);

/** Result of a full data-path access. */
struct HierarchyAccessResult
{
    Cycles latency = 0;
    MemLevel servedBy = MemLevel::L1D;
};

/** Result of a cache-only probe (TLB-line lookups). */
struct CacheProbeResult
{
    bool hit = false;
    MemLevel level = MemLevel::L2D;
    Cycles latency = 0;
};

/** Per-core L1D/L2D, shared L3D, backed by a DRAM controller. */
class DataHierarchy
{
  public:
    /**
     * @param config Geometry and feature flags.
     * @param memory Main-memory (DDR4) controller.
     * @param l4_channel Dedicated die-stacked channel for the
     *                   optional L4 data cache; required when
     *                   config.dieStackedL4Cache is set.
     */
    DataHierarchy(const SystemConfig &config, DramController &memory,
                  DramController *l4_channel = nullptr);

    /** Ordinary load/store down the full hierarchy. */
    HierarchyAccessResult accessData(CoreId core, Addr addr,
                                     AccessType type, Cycles now);

    /** Page-walker PTE read: L2D -> L3D -> DDR4, cached as data. */
    HierarchyAccessResult accessPte(CoreId core, Addr addr, Cycles now);

    /**
     * Probe L2D then L3D of @p core for the cache line at @p addr
     * holding a POM-TLB set. Never accesses memory.
     */
    CacheProbeResult probeTlbLine(CoreId core, Addr addr, Cycles now);

    /** Install a POM-TLB set line into L3D and the core's L2D. */
    void fillTlbLine(CoreId core, Addr addr);

    /** Invalidate a POM-TLB set line everywhere (shootdown support). */
    void invalidateTlbLine(Addr addr);

    SetAssocCache &l1d(CoreId core) { return *l1Caches[core]; }
    SetAssocCache &l2d(CoreId core) { return *l2Caches[core]; }
    SetAssocCache &l3d() { return *l3Cache; }
    const SetAssocCache &l1d(CoreId core) const { return *l1Caches[core]; }
    const SetAssocCache &l2d(CoreId core) const { return *l2Caches[core]; }
    const SetAssocCache &l3d() const { return *l3Cache; }

    unsigned numCores() const
    {
        return static_cast<unsigned>(l1Caches.size());
    }

    /** The optional L4 die-stacked data cache (null when absent). */
    DramCache *l4Cache() { return l4.get(); }

    /** Dirty L3 victims written to DRAM (writeback modelling on). */
    std::uint64_t dramWritebackCount() const
    {
        return dramWritebacks.value();
    }

    /** Aggregate L2D TLB-probe hit rate across all cores (Fig. 9). */
    double l2TlbProbeHitRate() const;
    /** L3D TLB-probe hit rate (of probes that missed in L2D). */
    double l3TlbProbeHitRate() const;

    /** Hierarchy-level statistics (writebacks, probe hit rates). */
    const StatGroup &stats() const { return statGroup; }

    /** Zero every cache's and the hierarchy's own statistics. */
    void resetStats();

  private:
    /** Send a dirty L3 victim to DRAM when traffic modelling is on. */
    void writebackVictim(const CacheFillResult &fill, Cycles now);

    /** L3-miss backend: L4 DRAM cache (if any) then main memory. */
    HierarchyAccessResult missToMemory(Addr addr, AccessType type,
                                       Cycles now, Cycles latency);

    DramController &mainMemory;
    std::unique_ptr<DramCache> l4;
    bool writebackTraffic;
    Counter dramWritebacks;
    StatGroup statGroup{"hierarchy"};
    std::vector<std::unique_ptr<SetAssocCache>> l1Caches;
    std::vector<std::unique_ptr<SetAssocCache>> l2Caches;
    std::unique_ptr<SetAssocCache> l3Cache;
};

} // namespace pomtlb

#endif // POMTLB_CACHE_HIERARCHY_HH

#include "cache/cache.hh"

#include "common/bitutil.hh"
#include "common/log.hh"
#include "common/setscan.hh"

namespace pomtlb
{

SetAssocCache::SetAssocCache(const CacheConfig &config,
                             ReplacementKind replacement,
                             std::uint64_t seed)
    : cacheConfig(config),
      sets(config.numSets()),
      ways(config.associativity),
      lineShift(floorLog2(config.lineBytes)),
      setBits(floorLog2(config.numSets())),
      tags(config.numSets() * config.associativity, invalidTag),
      stamps(config.numSets() * config.associativity, 0),
      meta(config.numSets() * config.associativity, 0),
      statGroup(config.name)
{
    cacheConfig.validate();
    simAssert(lineShift >= 1,
              "line size must leave headroom for the invalid-tag "
              "sentinel");
    // The default LRU policy is inlined over the recency stamps (the
    // stamps a plain LruPolicy would keep are updated at exactly the
    // same points, so the victims match bit-for-bit); only the other
    // policies pay for a polymorphic object.
    if (replacement != ReplacementKind::Lru) {
        policy = ReplacementPolicy::create(
            replacement, config.numSets(), config.associativity,
            seed);
    }
    statGroup.addCounter("data_hits", dataHits);
    statGroup.addCounter("data_misses", dataMisses);
    statGroup.addCounter("tlb_hits", tlbHits);
    statGroup.addCounter("tlb_misses", tlbMisses);
    statGroup.addCounter("fills", fills);
    statGroup.addCounter("evictions", evictions);
    statGroup.addCounter("writebacks", writebacks);
    statGroup.addCounter("invalidations", invalidations);
    statGroup.addDerived("hit_rate", [this] { return hitRate(); });
    statGroup.addDerived("tlb_line_occupancy", [this] {
        return static_cast<double>(tlbLines) /
               static_cast<double>(tags.size());
    });
}

std::uint64_t
SetAssocCache::setIndex(Addr addr) const
{
    return (addr >> lineShift) & (sets - 1);
}

std::uint64_t
SetAssocCache::tagOf(Addr addr) const
{
    return addr >> (lineShift + setBits);
}

Addr
SetAssocCache::lineAddr(std::uint64_t set, std::uint64_t tag) const
{
    return ((tag << setBits) | set) << lineShift;
}

std::int64_t
SetAssocCache::findLine(Addr addr) const
{
    const std::uint64_t tag = tagOf(addr);
    const std::uint64_t base = setIndex(addr) * ways;
    // One vector-friendly compare pass over a contiguous 64-bit
    // array: invalid ways hold the sentinel, which never equals a
    // real tag.
    const unsigned way = findKeyWay(tags.data() + base, ways, tag);
    if (way == ways)
        return -1;
    return static_cast<std::int64_t>(base + way);
}

CacheLookupResult
SetAssocCache::lookup(Addr addr, AccessType type, LineKind probe_kind)
{
    CacheLookupResult result;
    const std::int64_t index = findLine(addr);
    if (index >= 0) {
        result.hit = true;
        result.kind = kindOf(meta[index]);
        if (type == AccessType::Write)
            meta[index] |= metaDirty;
        stamps[index] = ++recencyClock;
        if (policy) {
            policy->touch(setIndex(addr),
                          static_cast<unsigned>(index % ways));
        }
        if (probe_kind == LineKind::Data)
            ++dataHits;
        else
            ++tlbHits;
    } else {
        if (probe_kind == LineKind::Data)
            ++dataMisses;
        else
            ++tlbMisses;
    }
    return result;
}

bool
SetAssocCache::contains(Addr addr) const
{
    return findLine(addr) >= 0;
}

CacheFillResult
SetAssocCache::fill(Addr addr, LineKind kind, bool dirty)
{
    CacheFillResult result;
    ++fills;

    const std::uint64_t set = setIndex(addr);
    const std::uint64_t base = set * ways;

    // Fixed-trip scans over the set's contiguous tag lane find the
    // resident line (at most one way can match) and the first free
    // way; only when both miss does the inline-LRU min scan run
    // (common/setscan.hh). Each pass vectorizes — the old merged
    // early-exit loop could not — and the free/victim results are
    // consumed exactly when the scalar loop consumed them, so the
    // victims match bit-for-bit (the lowest way wins every tie).
    const std::uint64_t tag = tagOf(addr);
    const std::uint64_t *set_tags = tags.data() + base;
    const unsigned match = findKeyWay(set_tags, ways, tag);
    const std::int64_t resident =
        match == ways ? -1 : static_cast<std::int64_t>(base + match);

    // Refresh in place when the line is already resident (e.g. two
    // outstanding misses to the same line resolved back to back).
    if (resident >= 0) {
        if (dirty)
            meta[resident] |= metaDirty;
        if (kindOf(meta[resident]) != kind) {
            tlbLines += (kind == LineKind::TlbEntry) ? 1 : -1;
            meta[resident] ^= metaTlb;
        }
        stamps[resident] = ++recencyClock;
        if (policy) {
            policy->touch(set,
                          static_cast<unsigned>(resident % ways));
        }
        return result;
    }

    unsigned target = findKeyWay(set_tags, ways, invalidTag);
    if (target == ways) {
        const bool inline_lru =
            tlbPolicy == TlbLinePolicy::None && !policy;
        target = inline_lru
                     ? minStampWay(stamps.data() + base, ways)
                     : victimWay(set, kind);
        const std::uint64_t victim = base + target;
        result.evicted = true;
        result.victimAddr = lineAddr(set, tags[victim]);
        result.victimDirty = (meta[victim] & metaDirty) != 0;
        result.victimKind = kindOf(meta[victim]);
        ++evictions;
        if (result.victimDirty)
            ++writebacks;
        if (result.victimKind == LineKind::TlbEntry)
            --tlbLines;
        --validLines;
    }

    const std::uint64_t index = base + target;
    tags[index] = tag;
    meta[index] = (dirty ? metaDirty : 0) |
                  (kind == LineKind::TlbEntry ? metaTlb : 0);
    stamps[index] = ++recencyClock;
    ++validLines;
    if (kind == LineKind::TlbEntry)
        ++tlbLines;
    if (policy)
        policy->touch(set, target);
    return result;
}

unsigned
SetAssocCache::victimWay(std::uint64_t set, LineKind)
{
    const std::uint64_t base = set * ways;

    if (tlbPolicy == TlbLinePolicy::None) {
        if (policy)
            return policy->victim(set);
        // Inline LRU: oldest stamp wins, lowest way on ties —
        // exactly LruPolicy::victim over lockstep-updated stamps.
        return minStampWay(stamps.data() + base, ways);
    }

    // Section 5.1: retain TLB lines — evict the least-recently-used
    // *data* line when one exists; fall back to overall LRU when the
    // set holds nothing but TLB lines.
    const unsigned best = minStampWayMasked(
        stamps.data() + base, meta.data() + base, metaTlb, ways);
    if (best != ways)
        return best;
    if (policy)
        return policy->victim(set);
    return minStampWay(stamps.data() + base, ways);
}

bool
SetAssocCache::invalidate(Addr addr)
{
    const std::int64_t index = findLine(addr);
    if (index < 0)
        return false;
    if (meta[index] & metaTlb)
        --tlbLines;
    --validLines;
    tags[index] = invalidTag;
    meta[index] = 0;
    if (policy) {
        policy->invalidate(setIndex(addr),
                           static_cast<unsigned>(index % ways));
    }
    ++invalidations;
    return true;
}

std::uint64_t
SetAssocCache::flush()
{
    std::uint64_t dropped = 0;
    for (std::uint64_t index = 0; index < tags.size(); ++index) {
        if (tags[index] != invalidTag) {
            ++dropped;
            tags[index] = invalidTag;
            meta[index] = 0;
        }
    }
    tlbLines = 0;
    validLines = 0;
    return dropped;
}

double
SetAssocCache::hitRate() const
{
    const std::uint64_t hits = dataHits.value() + tlbHits.value();
    const std::uint64_t total =
        hits + dataMisses.value() + tlbMisses.value();
    return total ? static_cast<double>(hits) / total : 0.0;
}

double
SetAssocCache::hitRate(LineKind kind) const
{
    const std::uint64_t hits = hitCount(kind);
    const std::uint64_t total = hits + missCount(kind);
    return total ? static_cast<double>(hits) / total : 0.0;
}

void
SetAssocCache::resetStats()
{
    dataHits.reset();
    dataMisses.reset();
    tlbHits.reset();
    tlbMisses.reset();
    fills.reset();
    evictions.reset();
    writebacks.reset();
    invalidations.reset();
}

} // namespace pomtlb

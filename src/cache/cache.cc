#include "cache/cache.hh"

#include "common/bitutil.hh"
#include "common/log.hh"

namespace pomtlb
{

SetAssocCache::SetAssocCache(const CacheConfig &config,
                             ReplacementKind replacement,
                             std::uint64_t seed)
    : cacheConfig(config),
      sets(config.numSets()),
      ways(config.associativity),
      lineShift(floorLog2(config.lineBytes)),
      setBits(floorLog2(config.numSets())),
      lines(config.numSets() * config.associativity),
      policy(ReplacementPolicy::create(replacement, config.numSets(),
                                       config.associativity, seed)),
      statGroup(config.name)
{
    cacheConfig.validate();
    statGroup.addCounter("data_hits", dataHits);
    statGroup.addCounter("data_misses", dataMisses);
    statGroup.addCounter("tlb_hits", tlbHits);
    statGroup.addCounter("tlb_misses", tlbMisses);
    statGroup.addCounter("fills", fills);
    statGroup.addCounter("evictions", evictions);
    statGroup.addCounter("writebacks", writebacks);
    statGroup.addCounter("invalidations", invalidations);
    statGroup.addDerived("hit_rate", [this] { return hitRate(); });
    statGroup.addDerived("tlb_line_occupancy", [this] {
        return static_cast<double>(tlbLines) /
               static_cast<double>(lines.size());
    });
}

std::uint64_t
SetAssocCache::setIndex(Addr addr) const
{
    return (addr >> lineShift) & (sets - 1);
}

std::uint64_t
SetAssocCache::tagOf(Addr addr) const
{
    return addr >> (lineShift + setBits);
}

Addr
SetAssocCache::lineAddr(std::uint64_t set, std::uint64_t tag) const
{
    return ((tag << setBits) | set) << lineShift;
}

SetAssocCache::Line *
SetAssocCache::findLine(Addr addr, unsigned *way_out)
{
    const std::uint64_t set = setIndex(addr);
    const std::uint64_t tag = tagOf(addr);
    Line *base = &lines[set * ways];
    for (unsigned way = 0; way < ways; ++way) {
        if (base[way].valid && base[way].tag == tag) {
            if (way_out)
                *way_out = way;
            return &base[way];
        }
    }
    return nullptr;
}

const SetAssocCache::Line *
SetAssocCache::findLine(Addr addr) const
{
    const std::uint64_t set = setIndex(addr);
    const std::uint64_t tag = tagOf(addr);
    const Line *base = &lines[set * ways];
    for (unsigned way = 0; way < ways; ++way) {
        if (base[way].valid && base[way].tag == tag)
            return &base[way];
    }
    return nullptr;
}

CacheLookupResult
SetAssocCache::lookup(Addr addr, AccessType type, LineKind probe_kind)
{
    CacheLookupResult result;
    unsigned way = 0;
    Line *line = findLine(addr, &way);
    if (line) {
        result.hit = true;
        result.kind = line->kind;
        if (type == AccessType::Write)
            line->dirty = true;
        line->stamp = ++recencyClock;
        policy->touch(setIndex(addr), way);
        if (probe_kind == LineKind::Data)
            ++dataHits;
        else
            ++tlbHits;
    } else {
        if (probe_kind == LineKind::Data)
            ++dataMisses;
        else
            ++tlbMisses;
    }
    return result;
}

bool
SetAssocCache::contains(Addr addr) const
{
    return findLine(addr) != nullptr;
}

CacheFillResult
SetAssocCache::fill(Addr addr, LineKind kind, bool dirty)
{
    CacheFillResult result;
    ++fills;

    // Refresh in place when the line is already resident (e.g. two
    // outstanding misses to the same line resolved back to back).
    unsigned way = 0;
    if (Line *line = findLine(addr, &way)) {
        line->dirty = line->dirty || dirty;
        if (line->kind != kind) {
            tlbLines += (kind == LineKind::TlbEntry) ? 1 : -1;
            line->kind = kind;
        }
        line->stamp = ++recencyClock;
        policy->touch(setIndex(addr), way);
        return result;
    }

    const std::uint64_t set = setIndex(addr);
    Line *base = &lines[set * ways];
    unsigned target = ways;
    for (unsigned w = 0; w < ways; ++w) {
        if (!base[w].valid) {
            target = w;
            break;
        }
    }
    if (target == ways) {
        target = victimWay(set, kind);
        Line &victim = base[target];
        result.evicted = true;
        result.victimAddr = lineAddr(set, victim.tag);
        result.victimDirty = victim.dirty;
        result.victimKind = victim.kind;
        ++evictions;
        if (victim.dirty)
            ++writebacks;
        if (victim.kind == LineKind::TlbEntry)
            --tlbLines;
        --validLines;
    }

    Line &line = base[target];
    line.valid = true;
    line.dirty = dirty;
    line.kind = kind;
    line.tag = tagOf(addr);
    line.stamp = ++recencyClock;
    ++validLines;
    if (kind == LineKind::TlbEntry)
        ++tlbLines;
    policy->touch(set, target);
    return result;
}

unsigned
SetAssocCache::victimWay(std::uint64_t set, LineKind)
{
    if (tlbPolicy == TlbLinePolicy::None)
        return policy->victim(set);

    // Section 5.1: retain TLB lines — evict the least-recently-used
    // *data* line when one exists; fall back to overall LRU when the
    // set holds nothing but TLB lines.
    const Line *base = &lines[set * ways];
    unsigned best = ways;
    std::uint64_t best_stamp = ~std::uint64_t{0};
    for (unsigned way = 0; way < ways; ++way) {
        if (base[way].kind == LineKind::Data &&
            base[way].stamp < best_stamp) {
            best_stamp = base[way].stamp;
            best = way;
        }
    }
    if (best != ways)
        return best;
    return policy->victim(set);
}

bool
SetAssocCache::invalidate(Addr addr)
{
    unsigned way = 0;
    Line *line = findLine(addr, &way);
    if (!line)
        return false;
    if (line->kind == LineKind::TlbEntry)
        --tlbLines;
    --validLines;
    line->valid = false;
    line->dirty = false;
    policy->invalidate(setIndex(addr), way);
    ++invalidations;
    return true;
}

std::uint64_t
SetAssocCache::flush()
{
    std::uint64_t dropped = 0;
    for (auto &line : lines) {
        if (line.valid) {
            ++dropped;
            line.valid = false;
            line.dirty = false;
        }
    }
    tlbLines = 0;
    validLines = 0;
    return dropped;
}

double
SetAssocCache::hitRate() const
{
    const std::uint64_t hits = dataHits.value() + tlbHits.value();
    const std::uint64_t total =
        hits + dataMisses.value() + tlbMisses.value();
    return total ? static_cast<double>(hits) / total : 0.0;
}

double
SetAssocCache::hitRate(LineKind kind) const
{
    const std::uint64_t hits = hitCount(kind);
    const std::uint64_t total = hits + missCount(kind);
    return total ? static_cast<double>(hits) / total : 0.0;
}

void
SetAssocCache::resetStats()
{
    dataHits.reset();
    dataMisses.reset();
    tlbHits.reset();
    tlbMisses.reset();
    fills.reset();
    evictions.reset();
    writebacks.reset();
    invalidations.reset();
}

} // namespace pomtlb

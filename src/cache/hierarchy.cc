#include "cache/hierarchy.hh"

#include "common/log.hh"

namespace pomtlb
{

const char *
memLevelName(MemLevel level)
{
    switch (level) {
      case MemLevel::L1D:
        return "L1D";
      case MemLevel::L2D:
        return "L2D";
      case MemLevel::L3D:
        return "L3D";
      case MemLevel::Memory:
        return "memory";
    }
    return "?";
}

DataHierarchy::DataHierarchy(const SystemConfig &config,
                             DramController &memory,
                             DramController *l4_channel)
    : mainMemory(memory),
      writebackTraffic(config.modelWritebackTraffic)
{
    if (config.dieStackedL4Cache) {
        simAssert(l4_channel != nullptr,
                  "the L4 DRAM cache needs a die-stacked channel");
        l4 = std::make_unique<DramCache>(
            config.l4CacheBytes, config.l3.lineBytes, *l4_channel);
    }
    l1Caches.reserve(config.numCores);
    l2Caches.reserve(config.numCores);
    for (unsigned core = 0; core < config.numCores; ++core) {
        CacheConfig l1 = config.l1d;
        l1.name = "l1d." + std::to_string(core);
        CacheConfig l2 = config.l2;
        l2.name = "l2d." + std::to_string(core);
        l1Caches.push_back(std::make_unique<SetAssocCache>(l1));
        l2Caches.push_back(std::make_unique<SetAssocCache>(l2));
        if (config.tlbAwareCaching) {
            l2Caches.back()->setTlbLinePolicy(
                TlbLinePolicy::RetainTlb);
        }
    }
    l3Cache = std::make_unique<SetAssocCache>(config.l3);
    if (config.tlbAwareCaching)
        l3Cache->setTlbLinePolicy(TlbLinePolicy::RetainTlb);

    statGroup.addCounter("dram_writebacks", dramWritebacks);
    statGroup.addDerived("l2_tlb_probe_hit_rate",
                         [this] { return l2TlbProbeHitRate(); });
    statGroup.addDerived("l3_tlb_probe_hit_rate",
                         [this] { return l3TlbProbeHitRate(); });
}

HierarchyAccessResult
DataHierarchy::accessData(CoreId core, Addr addr, AccessType type,
                          Cycles now)
{
    simAssert(core < l1Caches.size(), "core id out of range");
    HierarchyAccessResult result;
    SetAssocCache &l1 = *l1Caches[core];
    SetAssocCache &l2 = *l2Caches[core];
    SetAssocCache &l3 = *l3Cache;

    result.latency += l1.latency();
    if (l1.lookup(addr, type, LineKind::Data).hit) {
        result.servedBy = MemLevel::L1D;
        return result;
    }

    result.latency += l2.latency();
    if (l2.lookup(addr, type, LineKind::Data).hit) {
        l1.fill(addr, LineKind::Data, type == AccessType::Write);
        result.servedBy = MemLevel::L2D;
        return result;
    }

    result.latency += l3.latency();
    if (l3.lookup(addr, type, LineKind::Data).hit) {
        l2.fill(addr, LineKind::Data);
        l1.fill(addr, LineKind::Data, type == AccessType::Write);
        result.servedBy = MemLevel::L3D;
        return result;
    }

    const HierarchyAccessResult memory_result =
        missToMemory(addr, type, now, result.latency);
    result.latency = memory_result.latency;
    writebackVictim(l3.fill(addr, LineKind::Data),
                    now + result.latency);
    l2.fill(addr, LineKind::Data);
    l1.fill(addr, LineKind::Data, type == AccessType::Write);
    result.servedBy = memory_result.servedBy;
    return result;
}

HierarchyAccessResult
DataHierarchy::missToMemory(Addr addr, AccessType type, Cycles now,
                            Cycles latency)
{
    HierarchyAccessResult result;
    result.latency = latency;
    if (l4) {
        const DramCacheResult l4_result =
            l4->access(addr, type, now + result.latency);
        result.latency += l4_result.latency;
        if (l4_result.hit) {
            result.servedBy = MemLevel::Memory; // die-stacked L4
            return result;
        }
    }
    const DramAccessResult dram =
        mainMemory.access(addr, now + result.latency);
    result.latency += dram.latency;
    result.servedBy = MemLevel::Memory;
    return result;
}

void
DataHierarchy::writebackVictim(const CacheFillResult &fill,
                               Cycles now)
{
    if (!writebackTraffic || !fill.evicted || !fill.victimDirty)
        return;
    // Background write: occupies the bank/bus timeline but is not on
    // any requester's critical path.
    mainMemory.access(fill.victimAddr, now);
    ++dramWritebacks;
}

HierarchyAccessResult
DataHierarchy::accessPte(CoreId core, Addr addr, Cycles now)
{
    simAssert(core < l2Caches.size(), "core id out of range");
    HierarchyAccessResult result;
    SetAssocCache &l2 = *l2Caches[core];
    SetAssocCache &l3 = *l3Cache;

    result.latency += l2.latency();
    if (l2.lookup(addr, AccessType::Read, LineKind::Data).hit) {
        result.servedBy = MemLevel::L2D;
        return result;
    }

    result.latency += l3.latency();
    if (l3.lookup(addr, AccessType::Read, LineKind::Data).hit) {
        l2.fill(addr, LineKind::Data);
        result.servedBy = MemLevel::L3D;
        return result;
    }

    const HierarchyAccessResult memory_result =
        missToMemory(addr, AccessType::Read, now, result.latency);
    result.latency = memory_result.latency;
    writebackVictim(l3.fill(addr, LineKind::Data),
                    now + result.latency);
    l2.fill(addr, LineKind::Data);
    result.servedBy = MemLevel::Memory;
    return result;
}

CacheProbeResult
DataHierarchy::probeTlbLine(CoreId core, Addr addr, Cycles)
{
    simAssert(core < l2Caches.size(), "core id out of range");
    CacheProbeResult result;
    SetAssocCache &l2 = *l2Caches[core];
    SetAssocCache &l3 = *l3Cache;

    result.latency += l2.latency();
    if (l2.lookup(addr, AccessType::Read, LineKind::TlbEntry).hit) {
        result.hit = true;
        result.level = MemLevel::L2D;
        return result;
    }

    result.latency += l3.latency();
    if (l3.lookup(addr, AccessType::Read, LineKind::TlbEntry).hit) {
        // Promote toward the requesting core, as a data miss would.
        l2.fill(addr, LineKind::TlbEntry);
        result.hit = true;
        result.level = MemLevel::L3D;
        return result;
    }

    result.hit = false;
    result.level = MemLevel::Memory;
    return result;
}

void
DataHierarchy::fillTlbLine(CoreId core, Addr addr)
{
    simAssert(core < l2Caches.size(), "core id out of range");
    l3Cache->fill(addr, LineKind::TlbEntry);
    l2Caches[core]->fill(addr, LineKind::TlbEntry);
}

void
DataHierarchy::invalidateTlbLine(Addr addr)
{
    for (auto &l2 : l2Caches)
        l2->invalidate(addr);
    for (auto &l1 : l1Caches)
        l1->invalidate(addr);
    l3Cache->invalidate(addr);
}

double
DataHierarchy::l2TlbProbeHitRate() const
{
    std::uint64_t hits = 0;
    std::uint64_t total = 0;
    for (const auto &l2 : l2Caches) {
        hits += l2->hitCount(LineKind::TlbEntry);
        total += l2->hitCount(LineKind::TlbEntry) +
                 l2->missCount(LineKind::TlbEntry);
    }
    return total ? static_cast<double>(hits) / total : 0.0;
}

double
DataHierarchy::l3TlbProbeHitRate() const
{
    const std::uint64_t hits = l3Cache->hitCount(LineKind::TlbEntry);
    const std::uint64_t total =
        hits + l3Cache->missCount(LineKind::TlbEntry);
    return total ? static_cast<double>(hits) / total : 0.0;
}

void
DataHierarchy::resetStats()
{
    for (auto &cache : l1Caches)
        cache->resetStats();
    for (auto &cache : l2Caches)
        cache->resetStats();
    l3Cache->resetStats();
    dramWritebacks.reset();
}

} // namespace pomtlb

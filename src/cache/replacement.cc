#include "cache/replacement.hh"

#include "common/bitutil.hh"
#include "common/log.hh"

namespace pomtlb
{

std::unique_ptr<ReplacementPolicy>
ReplacementPolicy::create(ReplacementKind kind, std::uint64_t sets,
                          unsigned ways, std::uint64_t seed)
{
    switch (kind) {
      case ReplacementKind::Lru:
        return std::make_unique<LruPolicy>(sets, ways);
      case ReplacementKind::TreePlru:
        return std::make_unique<TreePlruPolicy>(sets, ways);
      case ReplacementKind::Random:
        return std::make_unique<RandomPolicy>(ways, seed);
    }
    panic("unknown replacement kind");
}

LruPolicy::LruPolicy(std::uint64_t sets, unsigned ways)
    : numWays(ways), stamps(sets * ways, 0)
{
}

void
LruPolicy::touch(std::uint64_t set, unsigned way)
{
    stamps[set * numWays + way] = ++clock;
}

unsigned
LruPolicy::victim(std::uint64_t set)
{
    const std::uint64_t base = set * numWays;
    unsigned best = 0;
    std::uint64_t best_stamp = stamps[base];
    for (unsigned way = 1; way < numWays; ++way) {
        if (stamps[base + way] < best_stamp) {
            best_stamp = stamps[base + way];
            best = way;
        }
    }
    return best;
}

void
LruPolicy::invalidate(std::uint64_t set, unsigned way)
{
    stamps[set * numWays + way] = 0;
}

TreePlruPolicy::TreePlruPolicy(std::uint64_t sets, unsigned ways)
    : numWays(ways), treeNodes(ways > 1 ? ways - 1 : 1),
      bits(sets * (ways > 1 ? ways - 1 : 1), 0)
{
    simAssert(isPowerOfTwo(ways), "tree PLRU needs power-of-two ways");
}

void
TreePlruPolicy::touch(std::uint64_t set, unsigned way)
{
    if (numWays == 1)
        return;
    std::uint8_t *tree = &bits[set * treeNodes];
    // Walk from the root; at each node point *away* from this way.
    unsigned node = 0;
    unsigned span = numWays;
    unsigned base = 0;
    while (span > 1) {
        const unsigned half = span / 2;
        const bool right = way >= base + half;
        tree[node] = right ? 0 : 1; // bit points at the LRU side
        node = 2 * node + (right ? 2 : 1);
        if (right)
            base += half;
        span = half;
    }
}

unsigned
TreePlruPolicy::victim(std::uint64_t set)
{
    if (numWays == 1)
        return 0;
    const std::uint8_t *tree = &bits[set * treeNodes];
    unsigned node = 0;
    unsigned span = numWays;
    unsigned base = 0;
    while (span > 1) {
        const unsigned half = span / 2;
        const bool right = tree[node] != 0;
        node = 2 * node + (right ? 2 : 1);
        if (right)
            base += half;
        span = half;
    }
    return base;
}

void
TreePlruPolicy::invalidate(std::uint64_t set, unsigned way)
{
    if (numWays == 1)
        return;
    // Make the invalidated way the immediate victim by pointing every
    // node on its path toward it.
    std::uint8_t *tree = &bits[set * treeNodes];
    unsigned node = 0;
    unsigned span = numWays;
    unsigned base = 0;
    while (span > 1) {
        const unsigned half = span / 2;
        const bool right = way >= base + half;
        tree[node] = right ? 1 : 0;
        node = 2 * node + (right ? 2 : 1);
        if (right)
            base += half;
        span = half;
    }
}

RandomPolicy::RandomPolicy(unsigned ways, std::uint64_t seed)
    : numWays(ways), rng(seed)
{
}

void
RandomPolicy::touch(std::uint64_t, unsigned)
{
}

unsigned
RandomPolicy::victim(std::uint64_t)
{
    return static_cast<unsigned>(rng.below(numWays));
}

void
RandomPolicy::invalidate(std::uint64_t, unsigned)
{
}

} // namespace pomtlb

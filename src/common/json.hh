/**
 * @file
 * A minimal JSON document model: build, serialise, parse.
 *
 * Exists so the sweep subsystem can hand results to
 * `scripts/plot_results.py` (and round-trip them in tests) without
 * pulling in an external dependency. Objects preserve insertion
 * order, so serialisation is deterministic; numbers are written with
 * enough precision that doubles survive a write/parse round trip.
 *
 * Only what the repository needs is implemented: no comments, no
 * NaN/Inf (rejected on write and parse), UTF-8 passed through
 * untouched apart from the mandatory escapes.
 */

#ifndef POMTLB_COMMON_JSON_HH
#define POMTLB_COMMON_JSON_HH

#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace pomtlb
{

/** Thrown by JsonValue::parse on malformed input. */
class JsonParseError : public std::runtime_error
{
  public:
    JsonParseError(const std::string &what, std::size_t at)
        : std::runtime_error(what + " (at offset " +
                             std::to_string(at) + ")"),
          offset(at)
    {
    }

    /** Byte offset in the input where parsing failed. */
    std::size_t offset;
};

/** One JSON value: null, bool, number, string, array, or object. */
class JsonValue
{
  public:
    enum class Kind : std::uint8_t
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    /** Default-constructs null. */
    JsonValue() = default;
    JsonValue(bool value) : valueKind(Kind::Bool), boolValue(value) {}
    JsonValue(double value) : valueKind(Kind::Number), numValue(value)
    {
    }
    JsonValue(int value)
        : valueKind(Kind::Number), numValue(static_cast<double>(value))
    {
    }
    JsonValue(std::uint64_t value)
        : valueKind(Kind::Number), numValue(static_cast<double>(value))
    {
    }
    JsonValue(std::string value)
        : valueKind(Kind::String), strValue(std::move(value))
    {
    }
    JsonValue(const char *value)
        : valueKind(Kind::String), strValue(value)
    {
    }

    static JsonValue array();
    static JsonValue object();

    Kind kind() const { return valueKind; }
    bool isNull() const { return valueKind == Kind::Null; }
    bool isBool() const { return valueKind == Kind::Bool; }
    bool isNumber() const { return valueKind == Kind::Number; }
    bool isString() const { return valueKind == Kind::String; }
    bool isArray() const { return valueKind == Kind::Array; }
    bool isObject() const { return valueKind == Kind::Object; }

    /** Typed accessors; throw std::logic_error on kind mismatch. */
    bool asBool() const;
    double asNumber() const;
    /** asNumber() rounded; throws if not integral. */
    std::uint64_t asUint() const;
    const std::string &asString() const;

    // -- array interface ------------------------------------------
    /** Append to an array (value must be an array). */
    JsonValue &push(JsonValue element);
    std::size_t size() const;
    const JsonValue &at(std::size_t index) const;
    const std::vector<JsonValue> &elements() const;

    // -- object interface -----------------------------------------
    /** Insert or overwrite a member (value must be an object). */
    JsonValue &set(const std::string &key, JsonValue member);
    /** True when the object has @p key. */
    bool has(const std::string &key) const;
    /** Member lookup; throws std::out_of_range when absent. */
    const JsonValue &at(const std::string &key) const;
    /** Members in insertion order. */
    const std::vector<std::pair<std::string, JsonValue>> &
    members() const;

    // -- serialisation --------------------------------------------
    /**
     * Write this value to @p os. @p indent > 0 pretty-prints with
     * that many spaces per level; 0 writes compact one-line JSON.
     */
    void write(std::ostream &os, int indent = 2) const;
    std::string dump(int indent = 2) const;

    /** Parse @p text (must contain exactly one JSON document). */
    static JsonValue parse(const std::string &text);

    bool operator==(const JsonValue &other) const;
    bool operator!=(const JsonValue &other) const
    {
        return !(*this == other);
    }

  private:
    void writeIndented(std::ostream &os, int indent,
                       int depth) const;

    Kind valueKind = Kind::Null;
    bool boolValue = false;
    double numValue = 0.0;
    std::string strValue;
    std::vector<JsonValue> arrayValues;
    std::vector<std::pair<std::string, JsonValue>> objectMembers;
};

} // namespace pomtlb

#endif // POMTLB_COMMON_JSON_HH

/**
 * @file
 * Fundamental scalar types and enumerations shared by every subsystem.
 *
 * The simulator models a virtualized x86-64 style machine, so two
 * distinct address spaces appear throughout the code base:
 *
 *  - guest virtual addresses (gVA), what the application issues;
 *  - guest physical addresses (gPA), what the guest page table yields;
 *  - host physical addresses (hPA), what the host (EPT-style) page
 *    table yields and what the memory system actually operates on.
 *
 * All three are carried as plain @c Addr; the type aliases below exist
 * for documentation value at API boundaries.
 */

#ifndef POMTLB_COMMON_TYPES_HH
#define POMTLB_COMMON_TYPES_HH

#include <cstdint>
#include <string>

namespace pomtlb
{

/** A memory address (in any of the three address spaces). */
using Addr = std::uint64_t;

/** Guest virtual address. */
using GuestVirtAddr = Addr;

/** Guest physical address. */
using GuestPhysAddr = Addr;

/** Host physical address. */
using HostPhysAddr = Addr;

/** Simulated clock cycles (core clock unless noted otherwise). */
using Cycles = std::uint64_t;

/** Simulated instruction count. */
using InstCount = std::uint64_t;

/** Core identifier within the simulated machine. */
using CoreId = std::uint32_t;

/** Virtual machine identifier (Intel VPID-like tag). */
using VmId = std::uint16_t;

/** Guest process (address space) identifier. */
using ProcessId = std::uint16_t;

/** Virtual/physical page frame number. */
using PageNum = std::uint64_t;

/** The two page sizes the POM-TLB supports (4 KB and 2 MB). */
enum class PageSize : std::uint8_t
{
    Small4K = 0,
    Large2M = 1,
};

/** Number of distinct PageSize values. */
constexpr int numPageSizes = 2;

/** log2 of the 4 KB page size. */
constexpr unsigned smallPageShift = 12;

/** log2 of the 2 MB page size. */
constexpr unsigned largePageShift = 21;

/** Byte size of a 4 KB page. */
constexpr Addr smallPageBytes = Addr{1} << smallPageShift;

/** Byte size of a 2 MB page. */
constexpr Addr largePageBytes = Addr{1} << largePageShift;

/** Return log2(page size in bytes) for a PageSize. */
constexpr unsigned
pageShift(PageSize size)
{
    return size == PageSize::Small4K ? smallPageShift : largePageShift;
}

/** Return the page size in bytes for a PageSize. */
constexpr Addr
pageBytes(PageSize size)
{
    return Addr{1} << pageShift(size);
}

/** Extract the virtual/physical page number of @p addr at @p size. */
constexpr PageNum
pageNumber(Addr addr, PageSize size)
{
    return addr >> pageShift(size);
}

/** Return the page-aligned base of @p addr at @p size. */
constexpr Addr
pageBase(Addr addr, PageSize size)
{
    return addr & ~(pageBytes(size) - 1);
}

/** Return the in-page offset of @p addr at @p size. */
constexpr Addr
pageOffset(Addr addr, PageSize size)
{
    return addr & (pageBytes(size) - 1);
}

/** Human-readable name of a PageSize. */
inline const char *
pageSizeName(PageSize size)
{
    return size == PageSize::Small4K ? "4KB" : "2MB";
}

/** Kind of memory access issued by a core. */
enum class AccessType : std::uint8_t
{
    Read = 0,
    Write = 1,
};

/** Result category for lookups in cache/TLB-like structures. */
enum class LookupOutcome : std::uint8_t
{
    Hit = 0,
    Miss = 1,
};

/** Translation mode the simulated machine runs in. */
enum class ExecMode : std::uint8_t
{
    /** Bare-metal: single (1D) page walk, 4 references max. */
    Native = 0,
    /** Under a hypervisor: 2D nested walk, up to 24 references. */
    Virtualized = 1,
};

/** Human-readable name of an ExecMode. */
inline const char *
execModeName(ExecMode mode)
{
    return mode == ExecMode::Native ? "native" : "virtualized";
}

} // namespace pomtlb

#endif // POMTLB_COMMON_TYPES_HH

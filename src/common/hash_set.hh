/**
 * @file
 * Minimal open-addressing hash containers over 64-bit keys.
 *
 * The engine's steady-state pre-population pass dedups one key per
 * trace reference, and the memory map memoises one translation per
 * walk, so these probes are on the whole-trace path; open-addressed,
 * linear-probed tables over flat arrays beat std::unordered_* (node
 * allocation, pointer chasing) by a wide margin there. Callers supply
 * already-mixed keys (e.g. via mix64 — a bijection, so pre-mixing
 * loses no information); the tables just mask the low bits for the
 * home slot. Key 0 is the empty-slot sentinel and is tracked out of
 * band, so every 64-bit value is insertable.
 */

#ifndef POMTLB_COMMON_HASH_SET_HH
#define POMTLB_COMMON_HASH_SET_HH

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace pomtlb
{

/** Open-addressing set of pre-mixed 64-bit keys. */
class U64Set
{
  public:
    /** @param expected Rough number of keys (sizes the first table). */
    explicit U64Set(std::size_t expected = 1024)
    {
        std::size_t cap = 16;
        while (cap < expected * 2)
            cap <<= 1;
        slots.assign(cap, 0);
        mask = cap - 1;
    }

    /** Insert @p key; returns true iff it was not already present. */
    bool
    insert(std::uint64_t key)
    {
        if (key == 0) {
            const bool fresh = !zeroPresent;
            zeroPresent = true;
            return fresh;
        }
        if ((used + 1) * 3 >= slots.size() * 2)
            grow();
        std::size_t i = static_cast<std::size_t>(key) & mask;
        for (;;) {
            const std::uint64_t slot = slots[i];
            if (slot == key)
                return false;
            if (slot == 0) {
                slots[i] = key;
                ++used;
                return true;
            }
            i = (i + 1) & mask;
        }
    }

    /** Number of distinct keys inserted. */
    std::size_t
    size() const
    {
        return used + (zeroPresent ? 1 : 0);
    }

  private:
    void
    grow()
    {
        std::vector<std::uint64_t> old = std::move(slots);
        slots.assign(old.size() * 2, 0);
        mask = slots.size() - 1;
        for (const std::uint64_t key : old) {
            if (key == 0)
                continue;
            std::size_t i = static_cast<std::size_t>(key) & mask;
            while (slots[i] != 0)
                i = (i + 1) & mask;
            slots[i] = key;
        }
    }

    std::vector<std::uint64_t> slots;
    std::size_t mask = 0;
    std::size_t used = 0;
    bool zeroPresent = false;
};

/** Open-addressing map from pre-mixed 64-bit keys to 64-bit values. */
class U64Map
{
  public:
    /** @param expected Rough number of keys (sizes the first table). */
    explicit U64Map(std::size_t expected = 1024)
    {
        std::size_t cap = 16;
        while (cap < expected * 2)
            cap <<= 1;
        keys.assign(cap, 0);
        vals.assign(cap, 0);
        mask = cap - 1;
    }

    /** Look up @p key; returns a pointer to its value or nullptr. */
    const std::uint64_t *
    find(std::uint64_t key) const
    {
        if (key == 0)
            return zeroPresent ? &zeroValue : nullptr;
        std::size_t i = static_cast<std::size_t>(key) & mask;
        for (;;) {
            const std::uint64_t slot = keys[i];
            if (slot == key)
                return &vals[i];
            if (slot == 0)
                return nullptr;
            i = (i + 1) & mask;
        }
    }

    /** Insert or overwrite (@p key -> @p value). */
    void
    insert(std::uint64_t key, std::uint64_t value)
    {
        if (key == 0) {
            zeroPresent = true;
            zeroValue = value;
            return;
        }
        if ((used + 1) * 3 >= keys.size() * 2)
            grow();
        std::size_t i = static_cast<std::size_t>(key) & mask;
        for (;;) {
            const std::uint64_t slot = keys[i];
            if (slot == key) {
                vals[i] = value;
                return;
            }
            if (slot == 0) {
                keys[i] = key;
                vals[i] = value;
                ++used;
                return;
            }
            i = (i + 1) & mask;
        }
    }

    /** Drop every entry, keeping the current capacity. */
    void
    clear()
    {
        std::fill(keys.begin(), keys.end(), 0);
        used = 0;
        zeroPresent = false;
    }

    /** Number of distinct keys present. */
    std::size_t
    size() const
    {
        return used + (zeroPresent ? 1 : 0);
    }

  private:
    void
    grow()
    {
        std::vector<std::uint64_t> old_keys = std::move(keys);
        std::vector<std::uint64_t> old_vals = std::move(vals);
        keys.assign(old_keys.size() * 2, 0);
        vals.assign(old_vals.size() * 2, 0);
        mask = keys.size() - 1;
        for (std::size_t j = 0; j < old_keys.size(); ++j) {
            const std::uint64_t key = old_keys[j];
            if (key == 0)
                continue;
            std::size_t i = static_cast<std::size_t>(key) & mask;
            while (keys[i] != 0)
                i = (i + 1) & mask;
            keys[i] = key;
            vals[i] = old_vals[j];
        }
    }

    std::vector<std::uint64_t> keys;
    std::vector<std::uint64_t> vals;
    std::size_t mask = 0;
    std::size_t used = 0;
    bool zeroPresent = false;
    std::uint64_t zeroValue = 0;
};

} // namespace pomtlb

#endif // POMTLB_COMMON_HASH_SET_HH

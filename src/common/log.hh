/**
 * @file
 * Status/error reporting helpers in the gem5 spirit.
 *
 * - inform(): normal operating messages.
 * - warn():   something works but maybe not as well as it should.
 * - fatal():  the user supplied an impossible configuration; exit(1).
 * - panic():  an internal invariant broke (a simulator bug); abort().
 */

#ifndef POMTLB_COMMON_LOG_HH
#define POMTLB_COMMON_LOG_HH

#include <sstream>
#include <string>

namespace pomtlb
{

namespace detail
{

/** Concatenate a parameter pack into one string via a stringstream. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << args);
    return oss.str();
}

[[noreturn]] void fatalImpl(const std::string &message);
[[noreturn]] void panicImpl(const std::string &message);
void informImpl(const std::string &message);
void warnImpl(const std::string &message);

/** Enable/disable inform() output (tests silence it). */
void setInformEnabled(bool enabled);
bool informEnabled();

} // namespace detail

/** Print an informational message to stderr. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::informImpl(detail::concat(std::forward<Args>(args)...));
}

/** Print a warning message to stderr. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::warnImpl(detail::concat(std::forward<Args>(args)...));
}

/** Report a user-level configuration error and exit(1). */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    detail::fatalImpl(detail::concat(std::forward<Args>(args)...));
}

/** Report an internal simulator bug and abort(). */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    detail::panicImpl(detail::concat(std::forward<Args>(args)...));
}

/**
 * Check an internal invariant; panic with @p args when it fails.
 * Active in all build types (the simulator is cheap enough to always
 * self-check).
 */
template <typename... Args>
void
simAssert(bool condition, Args &&...args)
{
    if (!condition)
        panic(std::forward<Args>(args)...);
}

} // namespace pomtlb

#endif // POMTLB_COMMON_LOG_HH

/**
 * @file
 * Deterministic pseudo-random number generation (xoshiro256**).
 *
 * Every stochastic component of the simulator (trace generators,
 * random replacement, page allocation jitter) draws from an Rng seeded
 * explicitly, so any experiment is reproducible bit-for-bit. We avoid
 * std::mt19937 both for speed and because libstdc++ makes no
 * cross-version reproducibility promise for distributions.
 */

#ifndef POMTLB_COMMON_RNG_HH
#define POMTLB_COMMON_RNG_HH

#include <cmath>
#include <cstdint>

#include "common/bitutil.hh"
#include "common/log.hh"

namespace pomtlb
{

/**
 * xoshiro256** generator with explicit splitmix64 seeding.
 * Satisfies enough of UniformRandomBitGenerator for our own helpers.
 */
class Rng
{
  public:
    /** Seed the four state words from one 64-bit seed via splitmix64. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
    {
        std::uint64_t x = seed;
        for (auto &word : state) {
            x += 0x9e3779b97f4a7c15ULL;
            word = mix64(x);
        }
        // xoshiro must not start from the all-zero state.
        if ((state[0] | state[1] | state[2] | state[3]) == 0)
            state[0] = 0x9e3779b97f4a7c15ULL;
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state[1] * 5, 7) * 9;
        const std::uint64_t t = state[1] << 17;

        state[2] ^= state[0];
        state[3] ^= state[1];
        state[1] ^= state[2];
        state[0] ^= state[3];
        state[2] ^= t;
        state[3] = rotl(state[3], 45);

        return result;
    }

    /** Uniform integer in [0, bound) — bound must be non-zero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        simAssert(bound != 0, "Rng::below(0) is undefined");
        // Lemire-style multiply-shift rejection-free mapping is fine
        // for simulation purposes (bias < 2^-64 * bound).
        const unsigned __int128 product =
            static_cast<unsigned __int128>(next()) * bound;
        return static_cast<std::uint64_t>(product >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    inRange(std::uint64_t lo, std::uint64_t hi)
    {
        simAssert(lo <= hi, "Rng::inRange with lo > hi");
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability @p probability of true. */
    bool
    chance(double probability)
    {
        if (probability <= 0.0)
            return false;
        if (probability >= 1.0)
            return true;
        return uniform() < probability;
    }

    /** Geometric-ish gap: integer >= 1 with mean @p mean (>= 1). */
    std::uint64_t
    geometricGap(double mean)
    {
        if (mean <= 1.0)
            return 1;
        const double u = uniform();
        const double p = 1.0 / mean;
        // Inverse-CDF of a geometric distribution, clamped for safety.
        const double draw = std::log1p(-u) / std::log1p(-p);
        const auto gap = static_cast<std::uint64_t>(draw) + 1;
        return gap > 100000 ? 100000 : gap;
    }

    /** Derive an independent child generator for a sub-stream. */
    Rng
    fork(std::uint64_t stream)
    {
        return Rng(mix64(next() ^ mix64(stream)));
    }

    // UniformRandomBitGenerator interface.
    using result_type = std::uint64_t;
    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~result_type{0}; }
    result_type operator()() { return next(); }

  private:
    static std::uint64_t
    rotl(std::uint64_t value, int amount)
    {
        return (value << amount) | (value >> (64 - amount));
    }

    std::uint64_t state[4];
};

/**
 * Zipfian integer generator over [0, count) with skew @p theta.
 * Uses the Gray/Jim-Gray "quick and dirty" approximation from the YCSB
 * generator: constant-time draws after O(1) setup.
 */
class ZipfGenerator
{
  public:
    ZipfGenerator(std::uint64_t count, double theta)
        : items(count), skew(theta)
    {
        simAssert(count >= 1, "ZipfGenerator needs at least one item");
        simAssert(theta > 0.0 && theta < 1.0,
                  "ZipfGenerator theta must be in (0,1)");
        zetaN = zeta(items, skew);
        zeta2 = zeta(2, skew);
        alpha = 1.0 / (1.0 - skew);
        eta = (1.0 - std::pow(2.0 / static_cast<double>(items),
                              1.0 - skew)) /
              (1.0 - zeta2 / zetaN);
    }

    /** Draw the next item index (0 is the hottest item). */
    std::uint64_t
    next(Rng &rng) const
    {
        const double u = rng.uniform();
        const double uz = u * zetaN;
        if (uz < 1.0)
            return 0;
        if (uz < 1.0 + std::pow(0.5, skew))
            return 1;
        const double fraction =
            std::pow(eta * u - eta + 1.0, alpha);
        auto index = static_cast<std::uint64_t>(
            static_cast<double>(items) * fraction);
        return index >= items ? items - 1 : index;
    }

    std::uint64_t itemCount() const { return items; }

  private:
    static double
    zeta(std::uint64_t n, double theta)
    {
        // Exact for small n; a standard integral approximation beyond,
        // which is plenty accurate for trace-generation purposes.
        constexpr std::uint64_t exactLimit = 10000;
        double sum = 0.0;
        const std::uint64_t limit = n < exactLimit ? n : exactLimit;
        for (std::uint64_t i = 1; i <= limit; ++i)
            sum += std::pow(1.0 / static_cast<double>(i), theta);
        if (n > exactLimit) {
            const double a = static_cast<double>(exactLimit);
            const double b = static_cast<double>(n);
            sum += (std::pow(b, 1.0 - theta) - std::pow(a, 1.0 - theta)) /
                   (1.0 - theta);
        }
        return sum;
    }

    std::uint64_t items;
    double skew;
    double zetaN;
    double zeta2;
    double alpha;
    double eta;
};

} // namespace pomtlb

#endif // POMTLB_COMMON_RNG_HH

/**
 * @file
 * The statistics framework behind the simulator's observability layer.
 *
 * Components own a StatGroup; they register named counters, averaged
 * samples, derived ratios, and log2-bucketed latency histograms
 * against it. Groups nest, and a Machine registers every top-level
 * group into one StatsRegistry, so a full machine dumps (or
 * JSON-exports) a single hierarchical tree of statistics — the
 * `components` section of the versioned `pomtlb-stats-v1` document
 * (see docs/metrics.md for the full schema reference).
 *
 * Everything is plain uint64/double — no atomics, the simulator core
 * is single-threaded by design (sweep workers each own a whole
 * machine, and therefore a whole registry). The one global knob,
 * StatsRegistry::detail(), gates the *optional* distribution
 * sampling (histograms) in hot paths so the disabled path costs a
 * single predictable branch; plain counters are always live because
 * the simulator's results are computed from them.
 */

#ifndef POMTLB_COMMON_STATS_HH
#define POMTLB_COMMON_STATS_HH

#include <atomic>
#include <bit>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

namespace pomtlb
{

class JsonValue;

/** A monotonically increasing event counter. */
class Counter
{
  public:
    Counter() = default;

    /** Add @p amount to the count. */
    void increment(std::uint64_t amount = 1) { count += amount; }
    /** Zero the count. */
    void reset() { count = 0; }
    /** Current count. */
    std::uint64_t value() const { return count; }

    /** Pre-increment by one. */
    Counter &operator++() { ++count; return *this; }
    /** Add @p amount. */
    Counter &operator+=(std::uint64_t amount) { count += amount; return *this; }

  private:
    std::uint64_t count = 0;
};

/** An accumulating sample average (sum / sample count). */
class Average
{
  public:
    /** Record one sample. */
    void
    sample(double value)
    {
        total += value;
        ++samples;
    }

    /** Zero the accumulator. */
    void
    reset()
    {
        total = 0.0;
        samples = 0;
    }

    /** Mean of all samples (0 when empty). */
    double mean() const { return samples ? total / samples : 0.0; }
    /** Number of samples recorded. */
    std::uint64_t sampleCount() const { return samples; }
    /** Sum of all samples. */
    double sum() const { return total; }

  private:
    double total = 0.0;
    std::uint64_t samples = 0;
};

/**
 * A fixed-bucket histogram over [0, bucketWidth * bucketCount); samples
 * beyond the last bucket land in an overflow bucket.
 */
class Histogram
{
  public:
    /** @param width bucket width; @param buckets bucket count. */
    Histogram(std::uint64_t width, std::size_t buckets)
        : bucketWidth(width), counts(buckets + 1, 0)
    {
    }

    /** Record one sample. */
    void
    sample(std::uint64_t value)
    {
        std::size_t index = value / bucketWidth;
        if (index >= counts.size() - 1)
            index = counts.size() - 1;
        ++counts[index];
        total += value;
        ++samples;
        if (value > maxSeen)
            maxSeen = value;
    }

    /** Zero every bucket and accumulator. */
    void
    reset()
    {
        for (auto &c : counts)
            c = 0;
        total = 0;
        samples = 0;
        maxSeen = 0;
    }

    /** Number of regular (non-overflow) buckets. */
    std::uint64_t bucketCount() const { return counts.size() - 1; }
    /** Count in bucket @p index. */
    std::uint64_t bucket(std::size_t index) const { return counts[index]; }
    /** Count of samples beyond the last regular bucket. */
    std::uint64_t overflow() const { return counts.back(); }
    /** Number of samples recorded. */
    std::uint64_t sampleCount() const { return samples; }
    /** Largest sample seen. */
    std::uint64_t maxValue() const { return maxSeen; }
    /** Mean of all samples (0 when empty). */
    double mean() const
    {
        return samples ? static_cast<double>(total) / samples : 0.0;
    }
    /** Configured bucket width. */
    std::uint64_t width() const { return bucketWidth; }

  private:
    std::uint64_t bucketWidth;
    std::vector<std::uint64_t> counts;
    std::uint64_t total = 0;
    std::uint64_t samples = 0;
    std::uint64_t maxSeen = 0;
};

/**
 * A log2-bucketed histogram covering the whole uint64 range with 65
 * buckets and no overflow bucket: bucket 0 holds exactly the value 0,
 * bucket b >= 1 holds [2^(b-1), 2^b - 1]. Sampling is one bit_width
 * plus two increments — cheap enough for translation-latency
 * distributions on the miss path.
 */
class Log2Histogram
{
  public:
    /** Bucket count: one zero bucket plus one per bit position. */
    static constexpr std::size_t numBuckets = 65;

    /** Bucket index @p value lands in (0 for 0, else bit_width). */
    static std::size_t
    bucketIndex(std::uint64_t value)
    {
        return static_cast<std::size_t>(std::bit_width(value));
    }

    /** Smallest value bucket @p index holds. */
    static std::uint64_t
    bucketLow(std::size_t index)
    {
        return index == 0 ? 0
                          : std::uint64_t{1} << (index - 1);
    }

    /** Largest value bucket @p index holds. */
    static std::uint64_t
    bucketHigh(std::size_t index)
    {
        if (index == 0)
            return 0;
        if (index >= 64)
            return ~std::uint64_t{0};
        return (std::uint64_t{1} << index) - 1;
    }

    /** Record one sample. */
    void
    sample(std::uint64_t value)
    {
        ++counts[bucketIndex(value)];
        total += static_cast<double>(value);
        ++samples;
        if (value > maxSeen)
            maxSeen = value;
    }

    /** Zero every bucket and accumulator. */
    void
    reset()
    {
        for (auto &c : counts)
            c = 0;
        total = 0.0;
        samples = 0;
        maxSeen = 0;
    }

    /** Count in bucket @p index. */
    std::uint64_t bucket(std::size_t index) const
    {
        return counts[index];
    }
    /** Number of samples recorded. */
    std::uint64_t sampleCount() const { return samples; }
    /** Largest sample seen. */
    std::uint64_t maxValue() const { return maxSeen; }
    /** Mean of all samples (0 when empty). */
    double mean() const { return samples ? total / samples : 0.0; }

    /**
     * Upper bound of the bucket containing the @p percent-th
     * percentile sample (0 when empty). @p percent in [0, 100].
     */
    std::uint64_t percentileUpperBound(double percent) const;

    /**
     * Serialise as a JSON object: kind, samples, mean, max, and the
     * non-empty buckets as {lo, hi, count} triples.
     */
    JsonValue toJson() const;

  private:
    std::uint64_t counts[numBuckets] = {};
    double total = 0.0;
    std::uint64_t samples = 0;
    std::uint64_t maxSeen = 0;
};

/**
 * A named collection of statistics belonging to one component.
 * Registration stores a name plus an accessor closure; dump() walks
 * the group tree and pretty-prints "group.stat value" lines, while
 * toJson() renders the same tree as nested objects for the
 * `pomtlb-stats-v1` document.
 */
class StatGroup
{
  public:
    /** @param group_name dotted-path segment this group contributes. */
    explicit StatGroup(std::string group_name);

    /** Non-copyable: registered closures capture component pointers. */
    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    /** Register a counter under @p name (the counter outlives us). */
    void addCounter(const std::string &name, const Counter &counter);

    /** Register an averaged sample statistic. */
    void addAverage(const std::string &name, const Average &average);

    /** Register a derived value computed on demand at dump time. */
    void addDerived(const std::string &name,
                    std::function<double()> compute);

    /** Register a log2 latency histogram (must outlive the group). */
    void addHistogram(const std::string &name,
                      const Log2Histogram &histogram);

    /** Attach @p child as a nested group (child must outlive us). */
    void addChild(const StatGroup &child);

    /** Print "prefix.name value" lines for this group and children. */
    void dump(std::ostream &os, const std::string &prefix = "") const;

    /** Collect (flat-name, value) pairs for programmatic checks. */
    void collect(std::vector<std::pair<std::string, double>> &out,
                 const std::string &prefix = "") const;

    /**
     * Serialise this group (scalars, histograms, children) as one
     * JSON object; the caller keys it by name().
     */
    JsonValue toJson() const;

    /** The group's dotted-path segment. */
    const std::string &name() const { return groupName; }

  private:
    struct Entry
    {
        std::string name;
        std::function<double()> value;
        bool integral;
    };

    std::string groupName;
    std::vector<Entry> entries;
    std::vector<std::pair<std::string, const Log2Histogram *>>
        histograms;
    std::vector<const StatGroup *> children;
};

/**
 * The machine-wide stats tree: every component's top-level StatGroup
 * registers here (Machine wires this up), giving one place to dump,
 * flatten, or JSON-export the whole hierarchy.
 *
 * The registry does not own groups — components do, and they must
 * outlive it. The static detail() switch gates optional distribution
 * sampling machine-wide (see file header); it defaults to on and can
 * be disabled with POMTLB_STATS_DETAIL=0 or setDetail(false).
 */
class StatsRegistry
{
  public:
    StatsRegistry() = default;

    /** Registries hold raw pointers into components: not copyable. */
    StatsRegistry(const StatsRegistry &) = delete;
    StatsRegistry &operator=(const StatsRegistry &) = delete;

    /** Register @p group as a top-level tree root (must outlive us). */
    void add(const StatGroup &group);

    /** Number of registered top-level groups. */
    std::size_t groupCount() const { return groups.size(); }

    /** The registered top-level groups, in registration order. */
    const std::vector<const StatGroup *> &topLevel() const
    {
        return groups;
    }

    /** Print every "name value" line of every registered tree. */
    void dump(std::ostream &os) const;

    /** Flatten every tree into (dotted-name, value) pairs. */
    void collect(std::vector<std::pair<std::string, double>> &out) const;

    /**
     * Serialise the whole tree as one JSON object keyed by top-level
     * group name — the `components` section of `pomtlb-stats-v1`.
     */
    JsonValue toJson() const;

    /** Whether optional distribution sampling is enabled. */
    static bool
    detail()
    {
        return detailEnabled().load(std::memory_order_relaxed);
    }

    /** Turn optional distribution sampling on or off globally. */
    static void
    setDetail(bool enabled)
    {
        detailEnabled().store(enabled, std::memory_order_relaxed);
    }

  private:
    /** The global detail flag, seeded from POMTLB_STATS_DETAIL. */
    static std::atomic<bool> &detailEnabled();

    std::vector<const StatGroup *> groups;
};

/** Geometric mean of a vector of positive values (0 for empty input). */
double geomean(const std::vector<double> &values);

} // namespace pomtlb

#endif // POMTLB_COMMON_STATS_HH

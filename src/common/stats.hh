/**
 * @file
 * A small statistics framework in the spirit of gem5's Stats package.
 *
 * Components own a StatGroup; they register named counters and derived
 * ratios against it. Groups nest, so a full machine can dump one tree
 * of statistics. Everything is plain uint64/double — no atomics, the
 * simulator is single-threaded by design.
 */

#ifndef POMTLB_COMMON_STATS_HH
#define POMTLB_COMMON_STATS_HH

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

namespace pomtlb
{

/** A monotonically increasing event counter. */
class Counter
{
  public:
    Counter() = default;

    void increment(std::uint64_t amount = 1) { count += amount; }
    void reset() { count = 0; }
    std::uint64_t value() const { return count; }

    Counter &operator++() { ++count; return *this; }
    Counter &operator+=(std::uint64_t amount) { count += amount; return *this; }

  private:
    std::uint64_t count = 0;
};

/** An accumulating sample average (sum / sample count). */
class Average
{
  public:
    void
    sample(double value)
    {
        total += value;
        ++samples;
    }

    void
    reset()
    {
        total = 0.0;
        samples = 0;
    }

    double mean() const { return samples ? total / samples : 0.0; }
    std::uint64_t sampleCount() const { return samples; }
    double sum() const { return total; }

  private:
    double total = 0.0;
    std::uint64_t samples = 0;
};

/**
 * A fixed-bucket histogram over [0, bucketWidth * bucketCount); samples
 * beyond the last bucket land in an overflow bucket.
 */
class Histogram
{
  public:
    Histogram(std::uint64_t width, std::size_t buckets)
        : bucketWidth(width), counts(buckets + 1, 0)
    {
    }

    void
    sample(std::uint64_t value)
    {
        std::size_t index = value / bucketWidth;
        if (index >= counts.size() - 1)
            index = counts.size() - 1;
        ++counts[index];
        total += value;
        ++samples;
        if (value > maxSeen)
            maxSeen = value;
    }

    void
    reset()
    {
        for (auto &c : counts)
            c = 0;
        total = 0;
        samples = 0;
        maxSeen = 0;
    }

    std::uint64_t bucketCount() const { return counts.size() - 1; }
    std::uint64_t bucket(std::size_t index) const { return counts[index]; }
    std::uint64_t overflow() const { return counts.back(); }
    std::uint64_t sampleCount() const { return samples; }
    std::uint64_t maxValue() const { return maxSeen; }
    double mean() const
    {
        return samples ? static_cast<double>(total) / samples : 0.0;
    }
    std::uint64_t width() const { return bucketWidth; }

  private:
    std::uint64_t bucketWidth;
    std::vector<std::uint64_t> counts;
    std::uint64_t total = 0;
    std::uint64_t samples = 0;
    std::uint64_t maxSeen = 0;
};

/**
 * A named collection of statistics belonging to one component.
 * Registration stores a name plus an accessor closure; dump() walks
 * the group tree and pretty-prints "group.stat value" lines.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string group_name);

    /** Non-copyable: registered closures capture component pointers. */
    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    /** Register a counter under @p name (the counter outlives us). */
    void addCounter(const std::string &name, const Counter &counter);

    /** Register an averaged sample statistic. */
    void addAverage(const std::string &name, const Average &average);

    /** Register a derived value computed on demand at dump time. */
    void addDerived(const std::string &name,
                    std::function<double()> compute);

    /** Attach @p child as a nested group (child must outlive us). */
    void addChild(const StatGroup &child);

    /** Print "prefix.name value" lines for this group and children. */
    void dump(std::ostream &os, const std::string &prefix = "") const;

    /** Collect (flat-name, value) pairs for programmatic checks. */
    void collect(std::vector<std::pair<std::string, double>> &out,
                 const std::string &prefix = "") const;

    const std::string &name() const { return groupName; }

  private:
    struct Entry
    {
        std::string name;
        std::function<double()> value;
        bool integral;
    };

    std::string groupName;
    std::vector<Entry> entries;
    std::vector<const StatGroup *> children;
};

/** Geometric mean of a vector of positive values (0 for empty input). */
double geomean(const std::vector<double> &values);

} // namespace pomtlb

#endif // POMTLB_COMMON_STATS_HH

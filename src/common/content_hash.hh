/**
 * @file
 * Streaming 128-bit FNV-1a content hash.
 *
 * The sweep-at-scale cache (sim/sweep_cache.hh) content-addresses
 * jobs by the hash of their canonical JSON identity, so the digest
 * must be deterministic across processes, hosts, and time: no
 * pointers, no container iteration order, no per-process seeding.
 * FNV-1a over the serialised bytes satisfies all of that, and 128
 * bits make accidental collisions implausible even for campaigns of
 * millions of jobs. The reference parameters are the standard FNV-1a
 * 128-bit offset basis and prime.
 *
 * This is a content fingerprint, not a cryptographic hash: the cache
 * directory is trusted local state, collision *resistance* against
 * an adversary is a non-goal.
 */

#ifndef POMTLB_COMMON_CONTENT_HASH_HH
#define POMTLB_COMMON_CONTENT_HASH_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace pomtlb
{

/**
 * Incremental FNV-1a hasher producing a 32-hex-character digest.
 *
 *     ContentHash hash;
 *     hash.update(document.dump(0));
 *     std::string digest = hash.hexDigest();
 */
class ContentHash
{
  public:
    /** Absorb @p size raw bytes. */
    ContentHash &
    update(const void *data, std::size_t size)
    {
        const auto *bytes = static_cast<const unsigned char *>(data);
        for (std::size_t i = 0; i < size; ++i) {
            state ^= bytes[i];
            state *= prime();
        }
        return *this;
    }

    /** Absorb the bytes of @p text. */
    ContentHash &
    update(std::string_view text)
    {
        return update(text.data(), text.size());
    }

    /** The digest so far, as 32 lowercase hex characters. */
    std::string
    hexDigest() const
    {
        static const char digits[] = "0123456789abcdef";
        std::string out(32, '0');
        Word value = state;
        for (int i = 31; i >= 0; --i) {
            out[static_cast<std::size_t>(i)] =
                digits[static_cast<unsigned>(value & 0xf)];
            value >>= 4;
        }
        return out;
    }

    /** One-shot convenience: digest of @p text. */
    static std::string
    of(std::string_view text)
    {
        return ContentHash().update(text).hexDigest();
    }

  private:
    // GCC/Clang builtin 128-bit integer; the FNV-1a-128 prime is
    // 2^88 + 2^8 + 0x3b and does not fit in 64 bits.
    using Word = unsigned __int128;

    static constexpr Word
    prime()
    {
        return (Word{1} << 88) | Word{0x13b};
    }

    static constexpr Word
    offsetBasis()
    {
        return (Word{0x6c62272e07bb0142ULL} << 64) |
               Word{0x62b821756295c58dULL};
    }

    Word state = offsetBasis();
};

} // namespace pomtlb

#endif // POMTLB_COMMON_CONTENT_HASH_HH

/**
 * @file
 * Small bit-manipulation helpers used across the simulator.
 */

#ifndef POMTLB_COMMON_BITUTIL_HH
#define POMTLB_COMMON_BITUTIL_HH

#include <cstdint>

namespace pomtlb
{

/** Return true when @p value is a (non-zero) power of two. */
constexpr bool
isPowerOfTwo(std::uint64_t value)
{
    return value != 0 && (value & (value - 1)) == 0;
}

/**
 * Return floor(log2(value)). @p value must be non-zero; log2 of zero is
 * defined here as zero so the function stays constexpr-friendly for
 * configuration tables.
 */
constexpr unsigned
floorLog2(std::uint64_t value)
{
    unsigned result = 0;
    while (value > 1) {
        value >>= 1;
        ++result;
    }
    return result;
}

/** Return ceil(log2(value)) (zero for values <= 1). */
constexpr unsigned
ceilLog2(std::uint64_t value)
{
    if (value <= 1)
        return 0;
    return floorLog2(value - 1) + 1;
}

/**
 * Extract @p count bits of @p value starting at bit @p first
 * (bit 0 is the least significant bit).
 */
constexpr std::uint64_t
extractBits(std::uint64_t value, unsigned first, unsigned count)
{
    if (count >= 64)
        return value >> first;
    return (value >> first) & ((std::uint64_t{1} << count) - 1);
}

/** Align @p value down to a multiple of @p alignment (a power of two). */
constexpr std::uint64_t
alignDown(std::uint64_t value, std::uint64_t alignment)
{
    return value & ~(alignment - 1);
}

/** Align @p value up to a multiple of @p alignment (a power of two). */
constexpr std::uint64_t
alignUp(std::uint64_t value, std::uint64_t alignment)
{
    return (value + alignment - 1) & ~(alignment - 1);
}

/**
 * Mix the bits of @p value into a well-distributed 64-bit hash
 * (the finalizer of splitmix64). Used for set-index hashing and to
 * derive independent RNG seeds.
 */
constexpr std::uint64_t
mix64(std::uint64_t value)
{
    value ^= value >> 30;
    value *= 0xbf58476d1ce4e5b9ULL;
    value ^= value >> 27;
    value *= 0x94d049bb133111ebULL;
    value ^= value >> 31;
    return value;
}

} // namespace pomtlb

#endif // POMTLB_COMMON_BITUTIL_HH

#include "common/config.hh"

#include <cmath>

#include "common/bitutil.hh"
#include "common/log.hh"

namespace pomtlb
{

void
CacheConfig::validate() const
{
    if (sizeBytes == 0 || associativity == 0 || lineBytes == 0)
        fatal("cache '", name, "': zero-sized parameter");
    if (!isPowerOfTwo(lineBytes))
        fatal("cache '", name, "': line size must be a power of two");
    if (sizeBytes % (static_cast<std::uint64_t>(associativity) * lineBytes))
        fatal("cache '", name, "': size not divisible by way size");
    if (!isPowerOfTwo(numSets()))
        fatal("cache '", name, "': set count must be a power of two");
    if (accessLatency == 0)
        fatal("cache '", name, "': zero access latency");
}

void
TlbConfig::validate() const
{
    if (entries == 0 || associativity == 0)
        fatal("tlb '", name, "': zero-sized parameter");
    if (entries % associativity)
        fatal("tlb '", name, "': entries not divisible by associativity");
    if (!isPowerOfTwo(numSets()))
        fatal("tlb '", name, "': set count must be a power of two");
}

void
PscConfig::validate() const
{
    if (pml4Entries == 0 || pdpEntries == 0 || pdeEntries == 0)
        fatal("psc: zero-sized structure cache");
    if (nestedTlbEntries == 0 || nestedTlbAssociativity == 0)
        fatal("psc: zero-sized nested TLB");
    if (nestedTlbEntries % nestedTlbAssociativity)
        fatal("psc: nested TLB entries not divisible by ways");
    if (!isPowerOfTwo(nestedTlbEntries / nestedTlbAssociativity))
        fatal("psc: nested TLB set count must be a power of two");
}

DramConfig
DramConfig::dieStacked()
{
    DramConfig config;
    config.name = "die-stacked";
    config.busFreqGhz = 1.0;
    config.busWidthBits = 128;
    config.rowBufferBytes = 2048;
    config.tCas = 11;
    config.tRcd = 11;
    config.tRp = 11;
    config.numBanks = 8;
    config.numChannels = 1;
    return config;
}

DramConfig
DramConfig::ddr4()
{
    DramConfig config;
    config.name = "ddr4-2133";
    config.busFreqGhz = 1.066;
    config.busWidthBits = 64;
    config.rowBufferBytes = 2048;
    config.tCas = 14;
    config.tRcd = 14;
    config.tRp = 14;
    config.numBanks = 16;
    config.numChannels = 2;
    return config;
}

Cycles
DramConfig::toCoreCycles(double bus_cycles) const
{
    const double scale = coreFreqGhz / busFreqGhz;
    return static_cast<Cycles>(std::ceil(bus_cycles * scale));
}

double
DramConfig::burstBusCycles() const
{
    // Double data rate: two beats per bus cycle.
    const double bytes_per_beat = busWidthBits / 8.0;
    const double beats = burstBytes / bytes_per_beat;
    return beats / 2.0;
}

void
DramConfig::validate() const
{
    if (busFreqGhz <= 0.0 || coreFreqGhz <= 0.0)
        fatal("dram '", name, "': non-positive frequency");
    if (!isPowerOfTwo(rowBufferBytes) || !isPowerOfTwo(burstBytes))
        fatal("dram '", name, "': row/burst sizes must be powers of two");
    if (!isPowerOfTwo(numBanks) || !isPowerOfTwo(numChannels))
        fatal("dram '", name, "': bank/channel counts must be powers of "
              "two");
    if (burstBytes > rowBufferBytes)
        fatal("dram '", name, "': burst larger than a row");
    if (busWidthBits % 8)
        fatal("dram '", name, "': bus width must be whole bytes");
    if (refreshEnabled &&
        (refreshIntervalBusCycles == 0 ||
         refreshBusCycles >= refreshIntervalBusCycles)) {
        fatal("dram '", name, "': refresh window must be shorter "
              "than the refresh interval");
    }
}

void
PomTlbConfig::validate() const
{
    if (entryBytes != 16)
        fatal("pom-tlb: entry format is fixed at 16 bytes (Figure 5)");
    if (associativity == 0 || capacityBytes == 0)
        fatal("pom-tlb: zero-sized parameter");
    if (smallPartitionFraction <= 0.0 || smallPartitionFraction >= 1.0)
        fatal("pom-tlb: small partition fraction must be in (0,1)");
    const std::uint64_t small_bytes = smallPartitionBytes();
    const std::uint64_t large_bytes = capacityBytes - small_bytes;
    const std::uint64_t set_bytes =
        static_cast<std::uint64_t>(entryBytes) * associativity;
    if (small_bytes % set_bytes || large_bytes % set_bytes)
        fatal("pom-tlb: partitions must hold whole sets");
    if (!isPowerOfTwo(small_bytes / set_bytes) ||
        !isPowerOfTwo(large_bytes / set_bytes)) {
        fatal("pom-tlb: per-partition set counts must be powers of two");
    }
    if (!isPowerOfTwo(predictorEntries))
        fatal("pom-tlb: predictor entries must be a power of two");
}

void
TsbConfig::validate() const
{
    if (capacityBytes == 0 || entryBytes == 0)
        fatal("tsb: zero-sized parameter");
    if (!isPowerOfTwo(capacityBytes / entryBytes))
        fatal("tsb: entry count must be a power of two");
    if (accessesPerTranslation == 0)
        fatal("tsb: needs at least one access per translation");
}

void
CoalescedTlbConfig::validate() const
{
    if (rangePages == 0 || !isPowerOfTwo(rangePages))
        fatal("coalesced: range must be a non-zero power of two");
    if (rangePages > 64)
        fatal("coalesced: range wider than the 64-bit presence map");
    if (associativity == 0)
        fatal("coalesced: need at least one way");
}

void
VictimaConfig::validate() const
{
    if (entriesPerBlock == 0)
        fatal("victima: need at least one entry per block");
    if (regionBytes == 0 || !isPowerOfTwo(regionBytes))
        fatal("victima: region must be a non-zero power of two");
}

void
SystemConfig::validate() const
{
    if (numCores == 0)
        fatal("system: need at least one core");
    if (coreFreqGhz <= 0.0)
        fatal("system: non-positive core frequency");
    l1d.validate();
    l2.validate();
    l3.validate();
    l1TlbSmall.validate();
    l1TlbLarge.validate();
    l2Tlb.validate();
    psc.validate();
    dieStacked.validate();
    mainMemory.validate();
    pomTlb.validate();
    tsb.validate();
    coalesced.validate();
    victima.validate();
    if (l1d.lineBytes != l2.lineBytes || l2.lineBytes != l3.lineBytes)
        fatal("system: cache line size must match across levels");
    if (pomTlb.cacheable &&
        pomTlb.entryBytes * pomTlb.associativity != l3.lineBytes) {
        fatal("system: a cacheable POM-TLB needs one set per cache "
              "line (Section 2.1.1)");
    }
}

SystemConfig
SystemConfig::table1()
{
    SystemConfig config;
    config.dieStacked.coreFreqGhz = config.coreFreqGhz;
    config.mainMemory.coreFreqGhz = config.coreFreqGhz;
    config.validate();
    return config;
}

} // namespace pomtlb

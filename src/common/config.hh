/**
 * @file
 * Configuration structures mirroring Table 1 of the paper.
 *
 * Every structure carries the paper's default value and a validate()
 * method that fatal()s on impossible combinations, so misconfigured
 * experiments fail fast instead of producing quiet nonsense.
 */

#ifndef POMTLB_COMMON_CONFIG_HH
#define POMTLB_COMMON_CONFIG_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace pomtlb
{

/** Geometry and latency of one set-associative SRAM cache level. */
struct CacheConfig
{
    std::string name = "cache";     /**< Stat-group / log name. */
    std::uint64_t sizeBytes = 32 * 1024; /**< Total data capacity. */
    unsigned associativity = 8;     /**< Ways per set. */
    unsigned lineBytes = 64;        /**< Cache line size. */
    Cycles accessLatency = 4;       /**< Hit latency in core cycles. */

    /** Number of sets implied by the geometry. */
    std::uint64_t numSets() const
    {
        return sizeBytes / (static_cast<std::uint64_t>(associativity) *
                            lineBytes);
    }

    /** Fatal on impossible geometry (non-power-of-two sets, ...). */
    void validate() const;
};

/** Geometry and penalty of one SRAM TLB level. */
struct TlbConfig
{
    std::string name = "tlb"; /**< Stat-group / log name. */
    unsigned entries = 64;    /**< Total entry count. */
    unsigned associativity = 4; /**< Ways per set. */
    /** Cycles charged when this level misses (Table 1 miss penalty). */
    Cycles missPenalty = 9;
    /** Lookup latency for explicit probes (shared L2 TLB baseline). */
    Cycles accessLatency = 1;

    /** Number of sets implied by the geometry. */
    unsigned numSets() const { return entries / associativity; }

    /** Fatal on impossible geometry. */
    void validate() const;
};

/** Page-structure-cache sizes (PML4E / PDPE / PDE caches, Table 1). */
struct PscConfig
{
    unsigned pml4Entries = 2;  /**< PML4E cache entries. */
    unsigned pdpEntries = 4;   /**< PDPE cache entries. */
    unsigned pdeEntries = 32;  /**< PDE cache entries. */
    Cycles accessLatency = 2;  /**< PSC probe latency (core cycles). */

    /**
     * Nested-TLB entries caching complete gPA -> hPA translations for
     * the host (EPT) dimension of 2D walks. A hit short-circuits one
     * host walk; a miss pays the full four EPT references. The
     * Table 1 PSCs accelerate the guest dimension only.
     */
    unsigned nestedTlbEntries = 32;
    unsigned nestedTlbAssociativity = 4; /**< Nested-TLB ways. */
    Cycles nestedTlbLatency = 2; /**< Nested-TLB probe latency. */

    /** Fatal on impossible geometry. */
    void validate() const;
};

/**
 * DRAM timing parameters in memory-bus clock cycles plus the bus
 * geometry needed to convert to core cycles. Two parameterisations are
 * used: the die-stacked channel holding the POM-TLB and commodity
 * DDR4-2133 for main memory (Table 1).
 */
struct DramConfig
{
    std::string name = "dram"; /**< Stat-group / log name. */
    double busFreqGhz = 1.0;   /**< Memory bus clock. */
    unsigned busWidthBits = 128; /**< Data bus width. */
    std::uint64_t rowBufferBytes = 2048; /**< Open-row size. */
    unsigned tCas = 11; /**< Column access (CL), bus cycles. */
    unsigned tRcd = 11; /**< RAS-to-CAS delay, bus cycles. */
    unsigned tRp = 11;  /**< Row precharge, bus cycles. */
    unsigned numBanks = 8;    /**< Banks per channel. */
    unsigned numChannels = 1; /**< Independent channels. */
    unsigned burstBytes = 64; /**< Bytes moved per burst. */
    /** Core clock, to convert bus cycles into core cycles. */
    double coreFreqGhz = 4.0;
    /**
     * Maximum bus cycles a request may wait on bank/bus state. Models
     * a bounded controller queue; it also bounds the artificial
     * serialisation that per-core trace-clock skew would otherwise
     * introduce between loosely-ordered requests from different
     * cores.
     */
    unsigned maxQueueBusCycles = 48;
    /**
     * Periodic refresh: every @c refreshIntervalBusCycles (tREFI) a
     * channel stalls for @c refreshBusCycles (tRFC) and all its rows
     * close. Off by default — the paper's Ramulator-like model (and
     * its Table 1) does not account for refresh — but available for
     * fidelity studies.
     */
    bool refreshEnabled = false;
    unsigned refreshIntervalBusCycles = 7800; /**< tREFI (~7.8 us). */
    unsigned refreshBusCycles = 350;          /**< tRFC (~350 ns). */
    /**
     * Four-activation window (tFAW): at most four row activations
     * per channel within this many bus cycles. 0 disables the
     * constraint (the Table 1 model omits it).
     */
    unsigned tFaw = 0;

    /** Die-stacked (HBM-like) channel defaults from Table 1. */
    static DramConfig dieStacked();
    /** Off-chip DDR4-2133 defaults from Table 1. */
    static DramConfig ddr4();

    /** Multiply bus cycles into (rounded-up) core cycles. */
    Cycles toCoreCycles(double bus_cycles) const;

    /** Bus cycles needed to move one burst of @c burstBytes. */
    double burstBusCycles() const;

    /** Fatal on impossible timing/geometry combinations. */
    void validate() const;
};

/** POM-TLB geometry (Section 2.1.1). */
struct PomTlbConfig
{
    /** Total capacity across both partitions (paper default 16 MB). */
    std::uint64_t capacityBytes = 16 * 1024 * 1024;
    /**
     * Fraction of capacity given to the 4 KB-page partition. The paper
     * notes exact partition sizes matter little (Section 2.1.2); we
     * default to an even split so both partitions keep power-of-two
     * set counts.
     */
    double smallPartitionFraction = 0.5;
    unsigned entryBytes = 16;   /**< Bytes per TLB entry (§2.1.1). */
    unsigned associativity = 4; /**< Entries per set line. */
    /** Predictor table entries (512 x 2 bits, Section 2.1.4). */
    unsigned predictorEntries = 512;
    /** Base host-physical address the small partition is mapped at. */
    Addr baseAddress = Addr{0x10} << 36; // 1 TB, above simulated DRAM
    /** Whether POM-TLB entries may be cached in L2D$/L3D$. */
    bool cacheable = true;
    /** Whether the bypass predictor is active (Section 2.1.5). */
    bool bypassPredictor = true;
    /** Whether the page-size predictor is active (Section 2.1.4). */
    bool sizePredictor = true;
    /**
     * Section 6 extension: after each POM-TLB request, prefetch the
     * adjacent page's set line into the requesting core's data
     * caches (off the critical path). Off by default.
     */
    bool prefetchNextSet = false;
    /**
     * Footnote 1 extension: organise the POM-TLB as one unified
     * array indexed with a size-skewed hash instead of two
     * statically-sized partitions. Off by default (the paper's
     * design is partitioned).
     */
    bool unifiedOrganization = false;

    /** Capacity given to the 4 KB-page partition. */
    std::uint64_t
    smallPartitionBytes() const
    {
        return static_cast<std::uint64_t>(
            static_cast<double>(capacityBytes) * smallPartitionFraction);
    }

    /** Capacity left for the 2 MB-page partition. */
    std::uint64_t
    largePartitionBytes() const
    {
        return capacityBytes - smallPartitionBytes();
    }

    /** Fatal on impossible geometry. */
    void validate() const;
};

/** SPARC-style TSB baseline parameters (Section 3.3). */
struct TsbConfig
{
    std::uint64_t capacityBytes = 16 * 1024 * 1024; /**< TSB size. */
    unsigned entryBytes = 16; /**< Bytes per TSB entry. */
    /** Software trap entry/exit cost in core cycles. */
    Cycles trapCycles = 30;
    /** TSB lookups needed per complete translation (paper: several). */
    unsigned accessesPerTranslation = 2;

    /** Fatal on impossible geometry. */
    void validate() const;
};

/**
 * Coalesced-entry shared TLB (the "Coalesced" contender): one pooled
 * second-level SRAM TLB whose entries each cover an aligned run of
 * contiguous pages, merged SVNAPOT/CoLT-style as contiguity is
 * observed in walk results.
 */
struct CoalescedTlbConfig
{
    /** Pages per coalesced entry (aligned run; power of two). */
    unsigned rangePages = 8;
    /** Set associativity of the coalesced array. */
    unsigned associativity = 12;
    /** Access latency (pooled SRAM array + interconnect hop). */
    Cycles accessLatency = 24;

    /** Fatal on impossible geometry. */
    void validate() const;
};

/**
 * Victima-style contender: translations are stashed in (otherwise
 * underutilized) L2/L3 data-cache blocks instead of a dedicated
 * structure, so TLB reach scales with cache capacity.
 */
struct VictimaConfig
{
    /**
     * Base of the physical region translation blocks are named in;
     * far outside both host DRAM and the POM-TLB reserved region.
     */
    Addr baseAddress = Addr{0x11} << 36;
    /** Translation entries packed into one 64-byte cache block. */
    unsigned entriesPerBlock = 8;
    /** Size of the block-address region (bounds distinct blocks). */
    std::uint64_t regionBytes = 8 * 1024 * 1024;

    /** Fatal on impossible geometry. */
    void validate() const;
};

/** Full system configuration (Table 1 defaults). */
struct SystemConfig
{
    unsigned numCores = 8;    /**< Simulated cores (Table 1: 8). */
    double coreFreqGhz = 4.0; /**< Core clock. */
    ExecMode mode = ExecMode::Virtualized; /**< Native or guest. */

    CacheConfig l1d{"l1d", 32 * 1024, 8, 64, 4}; /**< Per-core L1D. */
    CacheConfig l2{"l2", 256 * 1024, 4, 64, 12}; /**< Per-core L2D. */
    CacheConfig l3{"l3", 8 * 1024 * 1024, 16, 64, 42}; /**< Shared L3. */

    TlbConfig l1TlbSmall{"l1tlb4k", 64, 4, 9, 1}; /**< L1 4 KB TLB. */
    TlbConfig l1TlbLarge{"l1tlb2m", 32, 4, 9, 1}; /**< L1 2 MB TLB. */
    TlbConfig l2Tlb{"l2tlb", 1536, 12, 17, 7}; /**< Unified L2 TLB. */

    PscConfig psc{}; /**< Page-structure caches + nested TLB. */
    /**
     * Section 5.1 extension: make L2D$/L3D$ eviction prefer data
     * lines over cached POM-TLB lines. Off by default (the paper
     * evaluates plain LRU and proposes this as future work).
     */
    bool tlbAwareCaching = false;
    /**
     * Route dirty L3 victims to main memory as background DRAM
     * writes (bank occupancy, not charged to any requester). Off by
     * default: writebacks are then only counted, matching the
     * paper's latency-focused model.
     */
    bool modelWritebackTraffic = false;
    /**
     * Section 2.2's alternative use of the stacked capacity: a
     * 16 MB die-stacked L4 *data* cache between the L3D$ and main
     * memory (its own channel). Mutually comparable with the
     * POM-TLB — the paper argues the TLB use wins; the
     * bench_abl_l4_cache ablation measures it.
     */
    bool dieStackedL4Cache = false;
    std::uint64_t l4CacheBytes = 16 * 1024 * 1024; /**< L4 size. */
    DramConfig dieStacked = DramConfig::dieStacked(); /**< POM channel. */
    DramConfig mainMemory = DramConfig::ddr4(); /**< Main memory. */
    PomTlbConfig pomTlb{}; /**< POM-TLB geometry + predictors. */
    TsbConfig tsb{};       /**< TSB baseline parameters. */
    CoalescedTlbConfig coalesced{}; /**< Coalesced contender. */
    VictimaConfig victima{}; /**< Victima contender. */

    /** RNG seed that every derived stream forks from. */
    std::uint64_t seed = 0x5eed5eed;

    /** Validate every sub-config; fatal on the first violation. */
    void validate() const;

    /** The paper's 8-core Table 1 machine. */
    static SystemConfig table1();
};

} // namespace pomtlb

#endif // POMTLB_COMMON_CONFIG_HH

#include "common/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace pomtlb
{

JsonValue
JsonValue::array()
{
    JsonValue value;
    value.valueKind = Kind::Array;
    return value;
}

JsonValue
JsonValue::object()
{
    JsonValue value;
    value.valueKind = Kind::Object;
    return value;
}

namespace
{

[[noreturn]] void
kindError(const char *wanted, JsonValue::Kind got)
{
    static const char *const names[] = {"null",   "bool",  "number",
                                        "string", "array", "object"};
    throw std::logic_error(std::string("JSON value is ") +
                           names[static_cast<int>(got)] + ", wanted " +
                           wanted);
}

} // namespace

bool
JsonValue::asBool() const
{
    if (!isBool())
        kindError("bool", valueKind);
    return boolValue;
}

double
JsonValue::asNumber() const
{
    if (!isNumber())
        kindError("number", valueKind);
    return numValue;
}

std::uint64_t
JsonValue::asUint() const
{
    const double value = asNumber();
    if (value < 0.0 || std::floor(value) != value)
        throw std::logic_error("JSON number is not a non-negative "
                               "integer");
    return static_cast<std::uint64_t>(value);
}

const std::string &
JsonValue::asString() const
{
    if (!isString())
        kindError("string", valueKind);
    return strValue;
}

JsonValue &
JsonValue::push(JsonValue element)
{
    if (!isArray())
        kindError("array", valueKind);
    arrayValues.push_back(std::move(element));
    return *this;
}

std::size_t
JsonValue::size() const
{
    if (isArray())
        return arrayValues.size();
    if (isObject())
        return objectMembers.size();
    kindError("array or object", valueKind);
}

const JsonValue &
JsonValue::at(std::size_t index) const
{
    if (!isArray())
        kindError("array", valueKind);
    return arrayValues.at(index);
}

const std::vector<JsonValue> &
JsonValue::elements() const
{
    if (!isArray())
        kindError("array", valueKind);
    return arrayValues;
}

JsonValue &
JsonValue::set(const std::string &key, JsonValue member)
{
    if (!isObject())
        kindError("object", valueKind);
    for (auto &entry : objectMembers) {
        if (entry.first == key) {
            entry.second = std::move(member);
            return *this;
        }
    }
    objectMembers.emplace_back(key, std::move(member));
    return *this;
}

bool
JsonValue::has(const std::string &key) const
{
    if (!isObject())
        kindError("object", valueKind);
    for (const auto &entry : objectMembers)
        if (entry.first == key)
            return true;
    return false;
}

const JsonValue &
JsonValue::at(const std::string &key) const
{
    if (!isObject())
        kindError("object", valueKind);
    for (const auto &entry : objectMembers)
        if (entry.first == key)
            return entry.second;
    throw std::out_of_range("JSON object has no member '" + key +
                            "'");
}

const std::vector<std::pair<std::string, JsonValue>> &
JsonValue::members() const
{
    if (!isObject())
        kindError("object", valueKind);
    return objectMembers;
}

// ---------------------------------------------------------------
// Serialisation
// ---------------------------------------------------------------

namespace
{

void
writeEscaped(std::ostream &os, const std::string &text)
{
    os << '"';
    for (const char c : text) {
        switch (c) {
          case '"':
            os << "\\\"";
            break;
          case '\\':
            os << "\\\\";
            break;
          case '\n':
            os << "\\n";
            break;
          case '\r':
            os << "\\r";
            break;
          case '\t':
            os << "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buffer[8];
                std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                os << buffer;
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

void
writeNumber(std::ostream &os, double value)
{
    if (!std::isfinite(value))
        throw std::logic_error(
            "JSON cannot represent NaN or infinity");
    // Integers (the common case: counters) print without an
    // exponent or trailing zeros; everything else uses %.17g, which
    // is lossless for IEEE-754 doubles.
    if (std::floor(value) == value && std::fabs(value) < 1e15) {
        char buffer[32];
        std::snprintf(buffer, sizeof(buffer), "%.0f", value);
        os << buffer;
        return;
    }
    char buffer[40];
    std::snprintf(buffer, sizeof(buffer), "%.17g", value);
    os << buffer;
}

void
newlineIndent(std::ostream &os, int indent, int depth)
{
    if (indent <= 0)
        return;
    os << '\n';
    for (int i = 0; i < indent * depth; ++i)
        os << ' ';
}

} // namespace

void
JsonValue::writeIndented(std::ostream &os, int indent,
                         int depth) const
{
    switch (valueKind) {
      case Kind::Null:
        os << "null";
        break;
      case Kind::Bool:
        os << (boolValue ? "true" : "false");
        break;
      case Kind::Number:
        writeNumber(os, numValue);
        break;
      case Kind::String:
        writeEscaped(os, strValue);
        break;
      case Kind::Array:
        if (arrayValues.empty()) {
            os << "[]";
            break;
        }
        os << '[';
        for (std::size_t i = 0; i < arrayValues.size(); ++i) {
            if (i)
                os << ',';
            newlineIndent(os, indent, depth + 1);
            arrayValues[i].writeIndented(os, indent, depth + 1);
        }
        newlineIndent(os, indent, depth);
        os << ']';
        break;
      case Kind::Object:
        if (objectMembers.empty()) {
            os << "{}";
            break;
        }
        os << '{';
        for (std::size_t i = 0; i < objectMembers.size(); ++i) {
            if (i)
                os << ',';
            newlineIndent(os, indent, depth + 1);
            writeEscaped(os, objectMembers[i].first);
            os << (indent > 0 ? ": " : ":");
            objectMembers[i].second.writeIndented(os, indent,
                                                  depth + 1);
        }
        newlineIndent(os, indent, depth);
        os << '}';
        break;
    }
}

void
JsonValue::write(std::ostream &os, int indent) const
{
    writeIndented(os, indent, 0);
}

std::string
JsonValue::dump(int indent) const
{
    std::ostringstream os;
    write(os, indent);
    return os.str();
}

bool
JsonValue::operator==(const JsonValue &other) const
{
    if (valueKind != other.valueKind)
        return false;
    switch (valueKind) {
      case Kind::Null:
        return true;
      case Kind::Bool:
        return boolValue == other.boolValue;
      case Kind::Number:
        return numValue == other.numValue;
      case Kind::String:
        return strValue == other.strValue;
      case Kind::Array:
        return arrayValues == other.arrayValues;
      case Kind::Object:
        return objectMembers == other.objectMembers;
    }
    return false;
}

// ---------------------------------------------------------------
// Parsing (recursive descent)
// ---------------------------------------------------------------

namespace
{

class Parser
{
  public:
    explicit Parser(const std::string &input) : text(input) {}

    JsonValue
    document()
    {
        const JsonValue value = parseValue();
        skipSpace();
        if (pos != text.size())
            fail("trailing characters after JSON document");
        return value;
    }

  private:
    [[noreturn]] void
    fail(const std::string &message) const
    {
        throw JsonParseError(message, pos);
    }

    void
    skipSpace()
    {
        while (pos < text.size() &&
               (text[pos] == ' ' || text[pos] == '\t' ||
                text[pos] == '\n' || text[pos] == '\r'))
            ++pos;
    }

    char
    peek()
    {
        skipSpace();
        if (pos >= text.size())
            fail("unexpected end of input");
        return text[pos];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos;
    }

    bool
    consumeLiteral(const char *literal)
    {
        const std::size_t len = std::char_traits<char>::length(literal);
        if (text.compare(pos, len, literal) == 0) {
            pos += len;
            return true;
        }
        return false;
    }

    JsonValue
    parseValue()
    {
        const char c = peek();
        switch (c) {
          case '{':
            return parseObject();
          case '[':
            return parseArray();
          case '"':
            return JsonValue(parseString());
          case 't':
            if (!consumeLiteral("true"))
                fail("bad literal");
            return JsonValue(true);
          case 'f':
            if (!consumeLiteral("false"))
                fail("bad literal");
            return JsonValue(false);
          case 'n':
            if (!consumeLiteral("null"))
                fail("bad literal");
            return JsonValue();
          default:
            return parseNumber();
        }
    }

    JsonValue
    parseObject()
    {
        expect('{');
        JsonValue object = JsonValue::object();
        if (peek() == '}') {
            ++pos;
            return object;
        }
        while (true) {
            if (peek() != '"')
                fail("object key must be a string");
            std::string key = parseString();
            expect(':');
            object.set(key, parseValue());
            const char c = peek();
            ++pos;
            if (c == '}')
                return object;
            if (c != ',')
                fail("expected ',' or '}' in object");
        }
    }

    JsonValue
    parseArray()
    {
        expect('[');
        JsonValue array = JsonValue::array();
        if (peek() == ']') {
            ++pos;
            return array;
        }
        while (true) {
            array.push(parseValue());
            const char c = peek();
            ++pos;
            if (c == ']')
                return array;
            if (c != ',')
                fail("expected ',' or ']' in array");
        }
    }

    std::string
    parseString()
    {
        expect('"');
        std::string result;
        while (true) {
            if (pos >= text.size())
                fail("unterminated string");
            const char c = text[pos++];
            if (c == '"')
                return result;
            if (c != '\\') {
                result += c;
                continue;
            }
            if (pos >= text.size())
                fail("unterminated escape");
            const char esc = text[pos++];
            switch (esc) {
              case '"':
                result += '"';
                break;
              case '\\':
                result += '\\';
                break;
              case '/':
                result += '/';
                break;
              case 'n':
                result += '\n';
                break;
              case 'r':
                result += '\r';
                break;
              case 't':
                result += '\t';
                break;
              case 'b':
                result += '\b';
                break;
              case 'f':
                result += '\f';
                break;
              case 'u': {
                if (pos + 4 > text.size())
                    fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text[pos++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        fail("bad hex digit in \\u escape");
                }
                // Encode the code point as UTF-8 (BMP only; this
                // writer never emits surrogate pairs).
                if (code < 0x80) {
                    result += static_cast<char>(code);
                } else if (code < 0x800) {
                    result += static_cast<char>(0xC0 | (code >> 6));
                    result +=
                        static_cast<char>(0x80 | (code & 0x3F));
                } else {
                    result += static_cast<char>(0xE0 | (code >> 12));
                    result += static_cast<char>(
                        0x80 | ((code >> 6) & 0x3F));
                    result +=
                        static_cast<char>(0x80 | (code & 0x3F));
                }
                break;
              }
              default:
                fail("unknown escape character");
            }
        }
    }

    JsonValue
    parseNumber()
    {
        skipSpace();
        const std::size_t start = pos;
        if (pos < text.size() && (text[pos] == '-' || text[pos] == '+'))
            ++pos;
        bool digits = false;
        auto eatDigits = [&] {
            while (pos < text.size() &&
                   std::isdigit(static_cast<unsigned char>(text[pos]))) {
                ++pos;
                digits = true;
            }
        };
        eatDigits();
        if (pos < text.size() && text[pos] == '.') {
            ++pos;
            eatDigits();
        }
        if (digits && pos < text.size() &&
            (text[pos] == 'e' || text[pos] == 'E')) {
            ++pos;
            if (pos < text.size() &&
                (text[pos] == '-' || text[pos] == '+'))
                ++pos;
            bool exp_digits = false;
            while (pos < text.size() &&
                   std::isdigit(
                       static_cast<unsigned char>(text[pos]))) {
                ++pos;
                exp_digits = true;
            }
            if (!exp_digits)
                fail("missing exponent digits");
        }
        if (!digits)
            fail("invalid number");
        return JsonValue(std::stod(text.substr(start, pos - start)));
    }

    const std::string &text;
    std::size_t pos = 0;
};

} // namespace

JsonValue
JsonValue::parse(const std::string &text)
{
    return Parser(text).document();
}

} // namespace pomtlb

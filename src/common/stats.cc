#include "common/stats.hh"

#include <cmath>
#include <iomanip>
#include <ostream>

#include "common/log.hh"

namespace pomtlb
{

StatGroup::StatGroup(std::string group_name)
    : groupName(std::move(group_name))
{
}

void
StatGroup::addCounter(const std::string &name, const Counter &counter)
{
    const Counter *ptr = &counter;
    entries.push_back({name,
                       [ptr] { return static_cast<double>(ptr->value()); },
                       true});
}

void
StatGroup::addAverage(const std::string &name, const Average &average)
{
    const Average *ptr = &average;
    entries.push_back({name, [ptr] { return ptr->mean(); }, false});
}

void
StatGroup::addDerived(const std::string &name,
                      std::function<double()> compute)
{
    entries.push_back({name, std::move(compute), false});
}

void
StatGroup::addChild(const StatGroup &child)
{
    children.push_back(&child);
}

void
StatGroup::dump(std::ostream &os, const std::string &prefix) const
{
    const std::string full =
        prefix.empty() ? groupName : prefix + "." + groupName;
    for (const auto &entry : entries) {
        os << std::left << std::setw(48) << (full + "." + entry.name)
           << " ";
        const double value = entry.value();
        if (entry.integral) {
            os << static_cast<std::uint64_t>(value);
        } else {
            os << std::fixed << std::setprecision(4) << value;
        }
        os << "\n";
    }
    for (const auto *child : children)
        child->dump(os, full);
}

void
StatGroup::collect(std::vector<std::pair<std::string, double>> &out,
                   const std::string &prefix) const
{
    const std::string full =
        prefix.empty() ? groupName : prefix + "." + groupName;
    for (const auto &entry : entries)
        out.emplace_back(full + "." + entry.name, entry.value());
    for (const auto *child : children)
        child->collect(out, full);
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values) {
        simAssert(v > 0.0, "geomean requires positive values");
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

} // namespace pomtlb

#include "common/stats.hh"

#include <cmath>
#include <cstdlib>
#include <iomanip>
#include <ostream>

#include "common/json.hh"
#include "common/log.hh"

namespace pomtlb
{

std::uint64_t
Log2Histogram::percentileUpperBound(double percent) const
{
    if (samples == 0)
        return 0;
    const double target =
        percent / 100.0 * static_cast<double>(samples);
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < numBuckets; ++b) {
        seen += counts[b];
        if (static_cast<double>(seen) >= target && seen > 0)
            return bucketHigh(b);
    }
    return maxSeen;
}

JsonValue
Log2Histogram::toJson() const
{
    JsonValue object = JsonValue::object();
    object.set("kind", "log2_histogram");
    object.set("samples", samples);
    object.set("mean", mean());
    object.set("max", maxSeen);
    JsonValue buckets = JsonValue::array();
    for (std::size_t b = 0; b < numBuckets; ++b) {
        if (counts[b] == 0)
            continue;
        JsonValue bucket = JsonValue::object();
        bucket.set("lo", bucketLow(b));
        bucket.set("hi", bucketHigh(b));
        bucket.set("count", counts[b]);
        buckets.push(std::move(bucket));
    }
    object.set("buckets", std::move(buckets));
    return object;
}

StatGroup::StatGroup(std::string group_name)
    : groupName(std::move(group_name))
{
}

void
StatGroup::addCounter(const std::string &name, const Counter &counter)
{
    const Counter *ptr = &counter;
    entries.push_back({name,
                       [ptr] { return static_cast<double>(ptr->value()); },
                       true});
}

void
StatGroup::addAverage(const std::string &name, const Average &average)
{
    const Average *ptr = &average;
    entries.push_back({name, [ptr] { return ptr->mean(); }, false});
}

void
StatGroup::addDerived(const std::string &name,
                      std::function<double()> compute)
{
    entries.push_back({name, std::move(compute), false});
}

void
StatGroup::addHistogram(const std::string &name,
                        const Log2Histogram &histogram)
{
    histograms.emplace_back(name, &histogram);
}

void
StatGroup::addChild(const StatGroup &child)
{
    children.push_back(&child);
}

void
StatGroup::dump(std::ostream &os, const std::string &prefix) const
{
    const std::string full =
        prefix.empty() ? groupName : prefix + "." + groupName;
    for (const auto &entry : entries) {
        os << std::left << std::setw(48) << (full + "." + entry.name)
           << " ";
        const double value = entry.value();
        if (entry.integral) {
            os << static_cast<std::uint64_t>(value);
        } else {
            os << std::fixed << std::setprecision(4) << value;
        }
        os << "\n";
    }
    for (const auto &[name, hist] : histograms) {
        const std::string base = full + "." + name;
        os << std::left << std::setw(48) << (base + ".samples") << " "
           << hist->sampleCount() << "\n";
        os << std::left << std::setw(48) << (base + ".mean") << " "
           << std::fixed << std::setprecision(4) << hist->mean()
           << "\n";
        os << std::left << std::setw(48) << (base + ".max") << " "
           << hist->maxValue() << "\n";
    }
    for (const auto *child : children)
        child->dump(os, full);
}

void
StatGroup::collect(std::vector<std::pair<std::string, double>> &out,
                   const std::string &prefix) const
{
    const std::string full =
        prefix.empty() ? groupName : prefix + "." + groupName;
    for (const auto &entry : entries)
        out.emplace_back(full + "." + entry.name, entry.value());
    for (const auto &[name, hist] : histograms) {
        const std::string base = full + "." + name;
        out.emplace_back(base + ".samples",
                         static_cast<double>(hist->sampleCount()));
        out.emplace_back(base + ".mean", hist->mean());
        out.emplace_back(base + ".max",
                         static_cast<double>(hist->maxValue()));
    }
    for (const auto *child : children)
        child->collect(out, full);
}

JsonValue
StatGroup::toJson() const
{
    JsonValue object = JsonValue::object();
    for (const auto &entry : entries) {
        const double value = entry.value();
        if (entry.integral) {
            object.set(entry.name,
                       static_cast<std::uint64_t>(value));
        } else {
            object.set(entry.name, value);
        }
    }
    for (const auto &[name, hist] : histograms)
        object.set(name, hist->toJson());
    for (const auto *child : children)
        object.set(child->name(), child->toJson());
    return object;
}

void
StatsRegistry::add(const StatGroup &group)
{
    groups.push_back(&group);
}

void
StatsRegistry::dump(std::ostream &os) const
{
    for (const auto *group : groups)
        group->dump(os);
}

void
StatsRegistry::collect(
    std::vector<std::pair<std::string, double>> &out) const
{
    for (const auto *group : groups)
        group->collect(out);
}

JsonValue
StatsRegistry::toJson() const
{
    JsonValue object = JsonValue::object();
    for (const auto *group : groups)
        object.set(group->name(), group->toJson());
    return object;
}

std::atomic<bool> &
StatsRegistry::detailEnabled()
{
    static std::atomic<bool> enabled = [] {
        if (const char *env = std::getenv("POMTLB_STATS_DETAIL"))
            return env[0] != '0';
        return true;
    }();
    return enabled;
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values) {
        simAssert(v > 0.0, "geomean requires positive values");
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

} // namespace pomtlb

#include "common/log.hh"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace pomtlb
{
namespace detail
{

namespace
{
bool informOn = true;
} // namespace

void
setInformEnabled(bool enabled)
{
    informOn = enabled;
}

bool
informEnabled()
{
    return informOn;
}

void
informImpl(const std::string &message)
{
    if (informOn)
        std::fprintf(stderr, "info: %s\n", message.c_str());
}

void
warnImpl(const std::string &message)
{
    std::fprintf(stderr, "warn: %s\n", message.c_str());
}

void
fatalImpl(const std::string &message)
{
    std::fprintf(stderr, "fatal: %s\n", message.c_str());
    std::exit(1);
}

void
panicImpl(const std::string &message)
{
    std::fprintf(stderr, "panic: %s\n", message.c_str());
    // Throwing (rather than abort()) lets unit tests assert that
    // invariant violations are detected; uncaught it still terminates.
    throw std::logic_error("panic: " + message);
}

} // namespace detail
} // namespace pomtlb

/**
 * @file
 * Branch-free scan primitives for set-associative lookups.
 *
 * The per-reference hot paths of the data caches and SRAM TLBs all
 * reduce to two scans over one set's contiguous 64-bit lanes: "which
 * way holds this key?" and "which way holds the oldest stamp?". The
 * classic early-exit loops defeat auto-vectorization (a data-
 * dependent break forbids reading the remaining ways), so these
 * helpers express both questions as fixed-trip-count passes over the
 * whole set — a compare-into-bitmask reduction and a min reduction —
 * which GCC and Clang turn into SIMD compares at any register width
 * without intrinsics. Associativities are small (4–16 ways), so the
 * extra lanes an early exit would have skipped are already in the
 * cache line the scan touched anyway.
 *
 * Every helper preserves the exact tie-break discipline of the loops
 * it replaces: the *lowest* matching way wins, and the lowest way
 * among minimum-stamp ties wins (the strict '<' running-minimum
 * idiom). Results are bit-identical to the scalar scans; the golden
 * fixtures in tests/golden/ pin that equivalence.
 */

#ifndef POMTLB_COMMON_SETSCAN_HH
#define POMTLB_COMMON_SETSCAN_HH

#include <bit>
#include <cstdint>

namespace pomtlb
{

/**
 * Bitmask of the ways in @p keys[0..ways) equal to @p key (bit w set
 * iff way w matches). Compares every way unconditionally — a
 * reduction the vectorizer maps onto SIMD compares. Associativity
 * must be at most 64 (one bitmask lane per way).
 */
inline std::uint64_t
findKeyMask(const std::uint64_t *keys, unsigned ways,
            std::uint64_t key)
{
    std::uint64_t mask = 0;
    for (unsigned way = 0; way < ways; ++way) {
        mask |= static_cast<std::uint64_t>(keys[way] == key)
                << way;
    }
    return mask;
}

/**
 * First way in @p keys[0..ways) equal to @p key, or @p ways when no
 * way matches.
 */
inline unsigned
findKeyWay(const std::uint64_t *keys, unsigned ways,
           std::uint64_t key)
{
    const std::uint64_t mask = findKeyMask(keys, ways, key);
    if (mask == 0)
        return ways;
    return static_cast<unsigned>(std::countr_zero(mask));
}

/**
 * Lowest way holding the minimum of @p stamps[0..ways) — the inline-
 * LRU victim. @p ways must be at least 1.
 */
inline unsigned
minStampWay(const std::uint64_t *stamps, unsigned ways)
{
    // Two fixed-trip passes: a plain min reduction (vectorizable),
    // then the first way carrying that minimum. Taking the first
    // occurrence reproduces the strict-'<' running minimum's
    // lowest-way tie-break exactly.
    std::uint64_t lowest = stamps[0];
    for (unsigned way = 1; way < ways; ++way)
        lowest = stamps[way] < lowest ? stamps[way] : lowest;
    unsigned way = 0;
    while (stamps[way] != lowest)
        ++way;
    return way;
}

/**
 * Lowest way holding the minimum stamp among ways whose @p meta byte
 * has none of @p excluded_bits set, or @p ways when every eligible
 * way's stamp is the all-ones sentinel (or none is eligible). Used
 * by the RetainTlb victim policy: excluded ways are treated as if
 * they held an untouchable all-ones stamp, which matches the scalar
 * loop's behaviour (strict '<' against an all-ones initial best
 * never selects an all-ones stamp).
 */
inline unsigned
minStampWayMasked(const std::uint64_t *stamps,
                  const std::uint8_t *meta,
                  std::uint8_t excluded_bits, unsigned ways)
{
    constexpr std::uint64_t untouchable = ~std::uint64_t{0};
    std::uint64_t lowest = untouchable;
    for (unsigned way = 0; way < ways; ++way) {
        const std::uint64_t masked =
            (meta[way] & excluded_bits) ? untouchable : stamps[way];
        lowest = masked < lowest ? masked : lowest;
    }
    if (lowest == untouchable)
        return ways;
    unsigned way = 0;
    while ((meta[way] & excluded_bits) || stamps[way] != lowest)
        ++way;
    return way;
}

} // namespace pomtlb

#endif // POMTLB_COMMON_SETSCAN_HH

#include "trace/interleave.hh"

#include "common/log.hh"

namespace pomtlb
{

std::size_t
TenantStreamSet::add(TenantStream stream)
{
    streams.push_back(std::move(stream));
    return streams.size() - 1;
}

bool
TenantStreamSet::captureEligible() const
{
    for (const TenantStream &stream : streams) {
        if (stream.totalRefs > replayCapRecords)
            return false;
    }
    return true;
}

void
TenantStreamSet::beginRun(bool captured)
{
    replayMode = captured;
    for (TenantStream &stream : streams) {
        stream.block = nullptr;
        stream.blockPos = 0;
        stream.blockLen = 0;
        stream.consumed = 0;
        if (!captured) {
            stream.scratch.resize(
                static_cast<std::size_t>(streamBlockRecords));
        }
    }
}

void
TenantStreamSet::refill(TenantStream &stream)
{
    if (replayMode) {
        // Replay mode: the block is a zero-copy slice of the
        // captured stream, extended to everything not yet consumed —
        // a stream refills at most once per run.
        const std::vector<TraceRecord> &records = stream.replay;
        simAssert(stream.consumed < records.size(),
                  "captured tenant stream exhausted");
        stream.block = records.data() + stream.consumed;
        stream.blockPos = 0;
        stream.blockLen = records.size() - stream.consumed;
        return;
    }
    const std::size_t got = stream.source->fill(
        stream.scratch.data(), stream.scratch.size());
    simAssert(got > 0, "tenant trace source exhausted");
    stream.block = stream.scratch.data();
    stream.blockPos = 0;
    stream.blockLen = got;
}

void
TenantStreamSet::releaseCaptures()
{
    for (TenantStream &stream : streams) {
        stream.replay.clear();
        stream.replay.shrink_to_fit();
        stream.block = nullptr;
        stream.blockPos = 0;
        stream.blockLen = 0;
    }
}

} // namespace pomtlb

#include "trace/trace_file.hh"

#include <algorithm>
#include <cstring>

#include "common/log.hh"
#include "trace/error.hh"

namespace pomtlb
{

namespace
{

constexpr char traceMagic[4] = {'P', 'O', 'M', 'T'};
constexpr std::uint32_t traceVersion = 1;

constexpr std::uint8_t flagWrite = 1u << 0;
constexpr std::uint8_t flagLargePage = 1u << 1;

void
putU32(std::ofstream &out, std::uint32_t value)
{
    char bytes[4];
    for (int i = 0; i < 4; ++i)
        bytes[i] = static_cast<char>((value >> (8 * i)) & 0xff);
    out.write(bytes, 4);
}

void
putU64(std::ofstream &out, std::uint64_t value)
{
    char bytes[8];
    for (int i = 0; i < 8; ++i)
        bytes[i] = static_cast<char>((value >> (8 * i)) & 0xff);
    out.write(bytes, 8);
}

std::uint32_t
getU32(std::ifstream &in)
{
    unsigned char bytes[4];
    in.read(reinterpret_cast<char *>(bytes), 4);
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i)
        value |= static_cast<std::uint32_t>(bytes[i]) << (8 * i);
    return value;
}

std::uint64_t
getU64(std::ifstream &in)
{
    unsigned char bytes[8];
    in.read(reinterpret_cast<char *>(bytes), 8);
    std::uint64_t value = 0;
    for (int i = 0; i < 8; ++i)
        value |= static_cast<std::uint64_t>(bytes[i]) << (8 * i);
    return value;
}

} // namespace

TraceFileWriter::TraceFileWriter(const std::string &path)
    : out(path, std::ios::binary | std::ios::trunc), filePath(path)
{
    if (!out)
        fatal("cannot open trace file '", path, "' for writing");
    writeHeader();
}

TraceFileWriter::~TraceFileWriter()
{
    if (!closed)
        close();
}

void
TraceFileWriter::writeHeader()
{
    out.seekp(0);
    out.write(traceMagic, 4);
    putU32(out, traceVersion);
    putU64(out, count);
}

void
TraceFileWriter::append(const TraceRecord &record)
{
    simAssert(!closed, "append to a closed trace file");
    putU64(out, record.vaddr);
    putU32(out, record.instGap);
    std::uint8_t flags = 0;
    if (record.type == AccessType::Write)
        flags |= flagWrite;
    if (record.pageSize == PageSize::Large2M)
        flags |= flagLargePage;
    out.write(reinterpret_cast<const char *>(&flags), 1);
    ++count;
}

void
TraceFileWriter::close()
{
    if (closed)
        return;
    writeHeader(); // rewrite with the final record count
    out.flush();
    if (!out)
        fatal("error writing trace file '", filePath, "'");
    out.close();
    closed = true;
}

TraceFileReader::TraceFileReader(const std::string &path, bool wrap)
    : filePath(path), wrapAround(wrap)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw TraceError("cannot open trace file '" + path + "'");
    in.seekg(0, std::ios::end);
    const std::uint64_t fileBytes =
        static_cast<std::uint64_t>(in.tellg());
    in.seekg(0);

    constexpr std::uint64_t headerBytes = 16;
    constexpr std::uint64_t recordBytes = 13;
    if (fileBytes < headerBytes)
        throw TraceError(
            "trace file '" + path + "' is too short: " +
            std::to_string(fileBytes) + " bytes, but the header "
            "alone is " + std::to_string(headerBytes) + " bytes");

    char magic[4];
    in.read(magic, 4);
    if (!in || std::memcmp(magic, traceMagic, 4) != 0)
        throw TraceError("'" + path +
                         "' is not a POM-TLB trace file");
    const std::uint32_t version = getU32(in);
    if (version != traceVersion)
        throw TraceError("trace file '" + path +
                         "' has unsupported version " +
                         std::to_string(version));
    count = getU64(in);
    const std::uint64_t needed = headerBytes + count * recordBytes;
    if (fileBytes < needed)
        throw TraceError(
            "trace file '" + path + "' truncated: header claims " +
            std::to_string(count) + " records (" +
            std::to_string(needed) + " bytes) but the file holds "
            "only " + std::to_string(fileBytes) + " bytes");
    if (count == 0)
        throw TraceError("trace file '" + path +
                         "' contains no records");

    records.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        TraceRecord record;
        record.vaddr = getU64(in);
        record.instGap = getU32(in);
        std::uint8_t flags = 0;
        in.read(reinterpret_cast<char *>(&flags), 1);
        record.type = (flags & flagWrite) ? AccessType::Write
                                          : AccessType::Read;
        record.pageSize = (flags & flagLargePage)
                              ? PageSize::Large2M
                              : PageSize::Small4K;
        if (!in)
            throw TraceError("error reading trace file '" + path +
                             "' at record " + std::to_string(i));
        records.push_back(record);
    }
}

TraceRecord
TraceFileReader::next()
{
    if (index >= count) {
        if (!wrapAround)
            fatal("trace file '", filePath, "' exhausted");
        index = 0;
    }
    return records[index++];
}

std::size_t
TraceFileReader::fill(TraceRecord *out, std::size_t n)
{
    std::size_t produced = 0;
    while (produced < n) {
        if (index >= count) {
            if (!wrapAround)
                break; // short read: the caller sees EOF as < n
            index = 0;
        }
        const std::uint64_t available = count - index;
        const std::size_t chunk = static_cast<std::size_t>(
            std::min<std::uint64_t>(n - produced, available));
        std::copy_n(records.begin() +
                        static_cast<std::ptrdiff_t>(index),
                    chunk, out + produced);
        produced += chunk;
        index += chunk;
    }
    return produced;
}

void
TraceFileReader::rewind()
{
    index = 0;
}

} // namespace pomtlb

/**
 * @file
 * Binary trace-file serialisation.
 *
 * The paper's methodology collects PIN + pagemap traces; this module
 * lets users bring real traces (or archive synthetic ones) instead of
 * the built-in generators. The format is a fixed little-endian
 * layout:
 *
 *   header:  magic "POMT" | u32 version | u64 record count
 *   record:  u64 vaddr | u32 instGap | u8 flags
 *            flags bit 0: write, bit 1: 2 MB page
 *
 * A TraceFileWriter streams records out; a TraceFileReader replays
 * them (with optional wrap-around so short files can drive long
 * simulations).
 */

#ifndef POMTLB_TRACE_TRACE_FILE_HH
#define POMTLB_TRACE_TRACE_FILE_HH

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "trace/record.hh"

namespace pomtlb
{

/** Writes trace records to a binary file. */
class TraceFileWriter
{
  public:
    /** Open @p path for writing (fatal on failure). */
    explicit TraceFileWriter(const std::string &path);
    ~TraceFileWriter();

    TraceFileWriter(const TraceFileWriter &) = delete;
    TraceFileWriter &operator=(const TraceFileWriter &) = delete;

    /** Append one record. */
    void append(const TraceRecord &record);

    /** Flush and finalise the header (also done by the destructor). */
    void close();

    std::uint64_t recordCount() const { return count; }

  private:
    void writeHeader();

    std::ofstream out;
    std::string filePath;
    std::uint64_t count = 0;
    bool closed = false;
};

/** Replays trace records from a binary file. */
class TraceFileReader
{
  public:
    /**
     * Open and validate @p path. Malformed input — missing file,
     * bad magic or version, a header that claims more records than
     * the file holds — throws a path-named, size-reporting
     * TraceError (trace/error.hh) instead of terminating the
     * process, so batch converters and the CLI can report and
     * continue.
     *
     * @param wrap When true, next() restarts from the first record
     *             after the last one (short traces can then drive
     *             arbitrarily long simulations).
     */
    explicit TraceFileReader(const std::string &path,
                             bool wrap = true);

    /** Read the next record (fatal at EOF when wrap is off). */
    TraceRecord next();

    /**
     * Copy up to @p n records into the caller-owned block @p out and
     * return the count copied. With wrap on, exactly @p n records are
     * produced (the stream restarts as often as needed); with wrap
     * off, a short read — fewer than @p n, possibly zero — signals
     * the end of the file without the fatal error next() raises.
     */
    std::size_t fill(TraceRecord *out, std::size_t n);

    /** Restart from the first record. */
    void rewind();

    std::uint64_t recordCount() const { return count; }
    std::uint64_t position() const { return index; }
    const std::string &path() const { return filePath; }

  private:
    // The whole trace is held in memory: records are 13 bytes packed
    // and even hundred-million-record traces fit comfortably.
    std::vector<TraceRecord> records;
    std::string filePath;
    std::uint64_t count = 0;
    std::uint64_t index = 0;
    bool wrapAround;
};

/** Convenience: dump @p n records from a generator-like source. */
template <typename Source>
std::uint64_t
recordTrace(Source &source, const std::string &path, std::uint64_t n)
{
    TraceFileWriter writer(path);
    for (std::uint64_t i = 0; i < n; ++i)
        writer.append(source.next());
    writer.close();
    return writer.recordCount();
}

} // namespace pomtlb

#endif // POMTLB_TRACE_TRACE_FILE_HH

/**
 * @file
 * Benchmark profiles: the measurement substrate of the reproduction.
 *
 * The paper's methodology (Section 3.2) combines real-hardware
 * measurements (Table 2: translation overheads, cycles per L2 TLB
 * miss, large-page fractions) with trace-driven simulation. Lacking
 * the authors' Skylake testbed, we embed the published Table 2
 * numbers here as each benchmark's measured constants, and pair them
 * with a synthetic reference-stream model whose locality class,
 * footprint and page-size mix reproduce the workload's behaviour in
 * the simulated memory system. DESIGN.md documents this substitution.
 */

#ifndef POMTLB_TRACE_PROFILE_HH
#define POMTLB_TRACE_PROFILE_HH

#include <string>
#include <vector>

#include "common/types.hh"

namespace pomtlb
{

/** Reference-stream locality classes the generators implement. */
enum class AccessPattern : std::uint8_t
{
    /** Uniform random over the footprint (gups). */
    UniformRandom = 0,
    /** Sequential streaming with occasional region jumps. */
    Streaming = 1,
    /** Zipf-distributed page popularity with in-page runs. */
    ZipfHotspot = 2,
    /** Dependent pointer chasing across pages (graph workloads). */
    PointerChase = 3,
    /** Alternating streaming and random phases. */
    MixedPhases = 4,
};

/** Human-readable pattern name. */
const char *accessPatternName(AccessPattern pattern);

/** Everything known about one benchmark. */
struct BenchmarkProfile
{
    std::string name;

    // --- Measured constants (Table 2, the paper's Skylake runs) ---
    /** Translation overhead, native execution (% of cycles). */
    double overheadNativePct = 0.0;
    /** Translation overhead, virtualized execution (% of cycles). */
    double overheadVirtualPct = 0.0;
    /** Average translation cycles per L2 TLB miss, native. */
    double cyclesPerMissNative = 0.0;
    /** Average translation cycles per L2 TLB miss, virtualized. */
    double cyclesPerMissVirtual = 0.0;
    /** Fraction of accesses to 2 MB (THP) pages (%). */
    double fracLargePagesPct = 0.0;

    // --- Synthetic stream model (the PIN-trace substitute) ---
    AccessPattern pattern = AccessPattern::UniformRandom;
    /** Per-core virtual footprint in bytes. */
    Addr footprintBytes = Addr{256} << 20;
    /** Zipf skew for ZipfHotspot (ignored otherwise). */
    double zipfTheta = 0.8;
    /** Mean consecutive references within one page. */
    double runLength = 4.0;
    /** Mean non-memory instructions between references. */
    double instGapMean = 4.0;
    /** Fraction of references that are writes. */
    double writeFraction = 0.3;
    /**
     * Pointer-chase locality: fraction of the footprint forming the
     * hot node set, and the probability a hop lands in it. Real graph
     * and optimisation codes revisit a hot core of nodes; pure random
     * chase (hotProbability = 0) models the pathological cases.
     */
    double hotFraction = 0.1;
    double hotProbability = 0.0;
    /**
     * Spatial burst locality: when an in-page run ends, probability
     * the next run is in the adjacent page instead of a fresh draw.
     * Models allocation locality (neighbouring graph nodes, adjacent
     * rows of a matrix) — the spatio-temporal locality Section 4.4
     * credits for the POM-TLB's high DRAM row-buffer hit rate.
     */
    double localNextProbability = 0.0;
    /**
     * TLB-conflict stencil traffic: structured codes (grids,
     * stencils, column-major matrix ops) access pages at large
     * power-of-two strides that collide in the set-indexed SRAM
     * TLBs. A conflict group of @c conflictGroupPages pages spaced
     * @c conflictStridePages apart is cycled repeatedly; with more
     * pages than TLB ways, every revisit re-misses with a short
     * reuse distance — the regime in which cached POM-TLB lines pay
     * off most (one L2D$ hit versus a multi-reference walk).
     * A fraction @c conflictProbability of run starts enter the
     * current conflict group; the group re-seeds occasionally.
     */
    double conflictProbability = 0.0;
    unsigned conflictStridePages = 128;
    unsigned conflictGroupPages = 32;
    /**
     * Multithreaded workloads (PARSEC, graph) run all cores in one
     * address space sharing one footprint; SPEC CPU profiles run in
     * rate mode — one independent copy per core with its own address
     * space (Section 3.1).
     */
    bool multithreaded = false;
    /**
     * Streaming advance per reference. Real streams touch every
     * cache line but traces sample; a coarser stride lets a sweep
     * complete within simulable trace lengths while keeping several
     * references per page.
     */
    Addr streamStrideBytes = 256;

    /** Probability a page region is backed by a 2 MB page. */
    double largePageProbability() const
    {
        return fracLargePagesPct / 100.0;
    }
};

/** The registry of the paper's fifteen workloads. */
class ProfileRegistry
{
  public:
    /** All fifteen profiles, in the paper's figure order. */
    static const std::vector<BenchmarkProfile> &all();

    /** Look up one profile by name (fatal if unknown). */
    static const BenchmarkProfile &byName(const std::string &name);

    /**
     * Non-fatal lookup: nullptr when @p name is unknown. Use this on
     * paths that must report errors instead of exiting (the sweep
     * runner propagates an exception; the CLI prints usage).
     */
    static const BenchmarkProfile *find(const std::string &name);

    /** Names, in figure order. */
    static std::vector<std::string> names();
};

} // namespace pomtlb

#endif // POMTLB_TRACE_PROFILE_HH

/**
 * @file
 * The trace-source abstraction the simulation engine consumes.
 *
 * Two implementations ship: GeneratorSource wraps the synthetic
 * per-benchmark generators, FileSource replays recorded trace files
 * (trace/trace_file.hh). Sources must be rewindable so the engine's
 * steady-state pre-population pass can replay the exact stream the
 * timed run will issue.
 */

#ifndef POMTLB_TRACE_SOURCE_HH
#define POMTLB_TRACE_SOURCE_HH

#include <memory>
#include <string>

#include "trace/generator.hh"
#include "trace/record.hh"
#include "trace/trace_file.hh"

namespace pomtlb
{

/** A rewindable stream of trace records for one core. */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /** Produce the next reference. */
    virtual TraceRecord next() = 0;

    /** Restart the stream from its beginning. */
    virtual void rewind() = 0;

    /** Short description for diagnostics. */
    virtual std::string describe() const = 0;
};

/** Synthetic-generator source (rewind = rebuild the generator). */
class GeneratorSource : public TraceSource
{
  public:
    GeneratorSource(const BenchmarkProfile &profile, CoreId core,
                    std::uint64_t seed)
        : benchProfile(profile), coreId(core), rngSeed(seed),
          generator(profile, core, seed)
    {
    }

    TraceRecord next() override { return generator.next(); }

    void
    rewind() override
    {
        generator = TraceGenerator(benchProfile, coreId, rngSeed);
    }

    std::string
    describe() const override
    {
        return "generator:" + benchProfile.name + "/core" +
               std::to_string(coreId);
    }

    const TraceGenerator &underlying() const { return generator; }

  private:
    BenchmarkProfile benchProfile;
    CoreId coreId;
    std::uint64_t rngSeed;
    TraceGenerator generator;
};

/** Recorded-trace source (wraps TraceFileReader, always wrapping). */
class FileSource : public TraceSource
{
  public:
    explicit FileSource(const std::string &path)
        : reader(path, /*wrap=*/true)
    {
    }

    TraceRecord next() override { return reader.next(); }
    void rewind() override { reader.rewind(); }

    std::string
    describe() const override
    {
        return "file:" + reader.path();
    }

    std::uint64_t recordCount() const { return reader.recordCount(); }

  private:
    TraceFileReader reader;
};

} // namespace pomtlb

#endif // POMTLB_TRACE_SOURCE_HH

/**
 * @file
 * The trace-source abstraction the simulation engine consumes.
 *
 * Two implementations ship: GeneratorSource wraps the synthetic
 * per-benchmark generators, FileSource replays recorded trace files
 * (trace/trace_file.hh). Sources must be rewindable so the engine's
 * steady-state pre-population pass can replay the exact stream the
 * timed run will issue.
 *
 * The primitive operation is the batched fill(): the caller owns a
 * TraceRecord block and the source writes up to @c n records into it
 * in one virtual call, which is what lets the engine amortise the
 * dispatch over a whole execution block. A non-virtual next() shim
 * remains for tests and other single-stepping callers; it is exactly
 * fill() of one record.
 */

#ifndef POMTLB_TRACE_SOURCE_HH
#define POMTLB_TRACE_SOURCE_HH

#include <cstddef>
#include <memory>
#include <string>

#include "common/log.hh"
#include "trace/generator.hh"
#include "trace/record.hh"
#include "trace/trace_file.hh"

namespace pomtlb
{

/** A rewindable stream of trace records for one core. */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /**
     * Produce up to @p n records into the caller-owned block @p out.
     *
     * Returns the number of records written. Endless sources (the
     * synthetic generators, wrapping file replays) always return
     * @p n; a finite source returns fewer — possibly zero — once
     * exhausted (a short read). Records are written in stream order
     * and the stream position advances by exactly the returned count,
     * so interleaving fill() and next() is well defined.
     */
    virtual std::size_t fill(TraceRecord *out, std::size_t n) = 0;

    /**
     * Single-record convenience shim over fill() (fatal if the
     * source is exhausted). Kept non-virtual so fill() stays the one
     * primitive implementations provide.
     */
    TraceRecord
    next()
    {
        TraceRecord record;
        const std::size_t got = fill(&record, 1);
        simAssert(got == 1, "trace source exhausted");
        return record;
    }

    /** Restart the stream from its beginning. */
    virtual void rewind() = 0;

    /** Short description for diagnostics. */
    virtual std::string describe() const = 0;
};

/** Synthetic-generator source (rewind = rebuild the generator). */
class GeneratorSource : public TraceSource
{
  public:
    GeneratorSource(const BenchmarkProfile &profile, CoreId core,
                    std::uint64_t seed)
        : benchProfile(profile), coreId(core), rngSeed(seed),
          generator(profile, core, seed)
    {
    }

    std::size_t
    fill(TraceRecord *out, std::size_t n) override
    {
        return generator.fill(out, n);
    }

    void
    rewind() override
    {
        generator = TraceGenerator(benchProfile, coreId, rngSeed);
    }

    std::string
    describe() const override
    {
        return "generator:" + benchProfile.name + "/core" +
               std::to_string(coreId);
    }

    const TraceGenerator &underlying() const { return generator; }

  private:
    BenchmarkProfile benchProfile;
    CoreId coreId;
    std::uint64_t rngSeed;
    TraceGenerator generator;
};

/** Recorded-trace source (wraps TraceFileReader, always wrapping). */
class FileSource : public TraceSource
{
  public:
    explicit FileSource(const std::string &path)
        : reader(path, /*wrap=*/true)
    {
    }

    std::size_t
    fill(TraceRecord *out, std::size_t n) override
    {
        return reader.fill(out, n);
    }

    void rewind() override { reader.rewind(); }

    std::string
    describe() const override
    {
        return "file:" + reader.path();
    }

    std::uint64_t recordCount() const { return reader.recordCount(); }

  private:
    TraceFileReader reader;
};

} // namespace pomtlb

#endif // POMTLB_TRACE_SOURCE_HH

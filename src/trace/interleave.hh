/**
 * @file
 * Per-tenant interleaved trace streams for the scenario engine.
 *
 * A consolidation scenario time-shares each simulated core between
 * many tenant vCPU streams. Every stream keeps its own buffered
 * cursor into its TraceSource — current block, position, consumed
 * count — so the scenario engine can park a stream mid-block at a
 * time-slice boundary and resume it later without disturbing the
 * stream's content. The buffering discipline (block size, capture
 * cap, replay slices) mirrors sim/engine.cc exactly, which is what
 * makes a degenerate single-tenant scenario reproduce the classic
 * engine byte-for-byte.
 *
 * A stream's records are captured during pre-population (when every
 * stream fits the per-stream cap) and replayed by the timed run, or
 * re-generated through a per-stream scratch block when any stream is
 * too long — the same two regimes as SimulationEngine.
 */

#ifndef POMTLB_TRACE_INTERLEAVE_HH
#define POMTLB_TRACE_INTERLEAVE_HH

#include <cstddef>
#include <memory>
#include <vector>

#include "common/types.hh"
#include "trace/record.hh"
#include "trace/source.hh"

namespace pomtlb
{

/**
 * One tenant vCPU's trace stream plus its buffered cursor. A stream
 * is pinned to one home core and one (VM, process) address space;
 * the scenario compiler decides when the home core runs it.
 */
struct TenantStream
{
    /** The underlying rewindable record stream. */
    std::unique_ptr<TraceSource> source;
    /** Index of the owning tenant in the resolved-tenant list. */
    unsigned tenant = 0;
    /** Core this stream executes on. */
    CoreId homeCore = 0;
    /** VM the stream's references translate under. */
    VmId vm = 1;
    /** Process (ASID) the stream's references translate under. */
    ProcessId pid = 1;
    /** Records this stream issues over the whole run (all slices). */
    std::uint64_t totalRefs = 0;

    // --- cursor state (managed by TenantStreamSet) ---
    /** Current record block (replay slice or scratch buffer). */
    const TraceRecord *block = nullptr;
    /** Next record index within the block. */
    std::uint64_t blockPos = 0;
    /** Records valid in the block. */
    std::uint64_t blockLen = 0;
    /** Records consumed from the stream this run. */
    std::uint64_t consumed = 0;
    /** Scratch block when streaming straight from the source. */
    std::vector<TraceRecord> scratch;
    /** Captured records when pre-population captured the stream. */
    std::vector<TraceRecord> replay;
};

/**
 * The set of tenant streams of one scenario: storage, the
 * capture-or-stream decision, and the block refill discipline —
 * the multi-tenant twin of SimulationEngine's per-core lanes.
 */
class TenantStreamSet
{
  public:
    /** Records fetched per TraceSource::fill() when streaming. */
    static constexpr std::uint64_t streamBlockRecords = 1024;

    /**
     * Pre-population captures a stream for replay unless it exceeds
     * this many records (the cap sim/engine.cc applies per core).
     */
    static constexpr std::uint64_t replayCapRecords =
        std::uint64_t{1} << 22;

    /** Append a stream; returns its stream id (insertion index). */
    std::size_t add(TenantStream stream);

    /** Number of streams. */
    std::size_t size() const { return streams.size(); }

    /** Stream @p index (insertion order = global stream id). */
    TenantStream &at(std::size_t index) { return streams[index]; }
    /** Stream @p index (read-only). */
    const TenantStream &at(std::size_t index) const
    {
        return streams[index];
    }

    /**
     * Whether pre-population may capture: every stream's whole-run
     * record count fits the per-stream cap.
     */
    bool captureEligible() const;

    /** Whether the last beginRun() armed captured-replay mode. */
    bool replaying() const { return replayMode; }

    /**
     * Arm every cursor for a timed run: reset positions, and either
     * point at the captured records (@p captured) or size the
     * per-stream scratch blocks for streaming.
     */
    void beginRun(bool captured);

    /**
     * Refill @p stream's exhausted block: a zero-copy slice of the
     * capture (everything not yet consumed — one refill per run), or
     * one fill() of the scratch block. Fatal if the stream is
     * exhausted, exactly like SimulationEngine::refill.
     */
    void refill(TenantStream &stream);

    /** Drop every capture (frees tens of MB between runs). */
    void releaseCaptures();

  private:
    std::vector<TenantStream> streams;
    bool replayMode = false;
};

} // namespace pomtlb

#endif // POMTLB_TRACE_INTERLEAVE_HH

#include "trace/generator.hh"

#include <algorithm>
#include <functional>
#include <string>

#include "common/bitutil.hh"
#include "common/log.hh"

namespace pomtlb
{

namespace
{
/** Canonical heap-like base for the modelled footprint. */
constexpr Addr footprintBaseAddr = Addr{0x100} << 32; // 1 TB VA
} // namespace

TraceGenerator::TraceGenerator(const BenchmarkProfile &profile,
                               CoreId core, std::uint64_t seed)
    : bench(profile),
      rng(mix64(seed ^ mix64(core + 0x9e37)) ^
          mix64(std::hash<std::string>{}(profile.name))),
      regionSalt(mix64(std::hash<std::string>{}(profile.name) ^ seed)),
      base(footprintBaseAddr),
      footprint(alignDown(profile.footprintBytes, largePageBytes)),
      chaseState(rng.next()),
      phaseRemaining(phaseLength)
{
    simAssert(footprint >= largePageBytes,
              "footprint must cover at least one 2 MB region");

    // Rate-mode copies get disjoint address-space regions (each copy
    // is an independent process); threads of a multithreaded workload
    // share one footprint (the region-size salt depends only on the
    // profile and experiment seed, so threads agree on page sizes).
    // The per-copy offset is deliberately NOT a power of two: real
    // processes get ASLR-staggered layouts, and a power-of-two
    // stagger would alias every copy onto the same POM-TLB sets
    // (Equation 1 extracts low VPN bits).
    if (!bench.multithreaded) {
        base += static_cast<Addr>(core) *
                ((Addr{1} << 40) + 947 * largePageBytes);
    }

    numSmallPages = footprint >> smallPageShift;

    // Page-size clusters (THP arenas) are roughly 1/32nd of the
    // footprint, clamped to [2 MB, 8 MB]: small enough that hot
    // regions and conflict groups mix both page sizes (so the
    // large-page fraction holds where it matters), large enough that
    // the miss stream still sees same-size streaks the 512-entry
    // size predictor can learn despite its 2 MB index aliasing.
    clusterShift = floorLog2(footprint) - 5;
    if (clusterShift > largePageShift + 2)
        clusterShift = largePageShift + 2;
    if (clusterShift < largePageShift)
        clusterShift = largePageShift;

    streamCursor.resize(numStreams);
    for (unsigned i = 0; i < numStreams; ++i) {
        Addr offset = (footprint / numStreams) * i;
        // Threads shard the sweep: stagger their stream origins.
        if (bench.multithreaded)
            offset += (footprint / numStreams / 8) * (core % 8);
        streamCursor[i] = offset % footprint;
    }

    if (bench.pattern == AccessPattern::ZipfHotspot ||
        bench.pattern == AccessPattern::MixedPhases) {
        const double theta =
            bench.zipfTheta > 0.0 ? bench.zipfTheta : 0.6;
        zipf = std::make_unique<ZipfGenerator>(numSmallPages, theta);
    }
}

PageSize
TraceGenerator::pageSizeOf(Addr vaddr) const
{
    // THP promotes whole allocation arenas: page sizes come in long
    // same-size runs, so we flip a deterministic coin per cluster
    // (see clusterShift) rather than per 2 MB region. The clustering
    // is also what lets the 512-entry size predictor work: its 9
    // index bits alias every 2 MB, so a finer-grained interleaving
    // would be unlearnable (and unrealistic).
    const std::uint64_t cluster = vaddr >> clusterShift;
    const double draw =
        static_cast<double>(mix64(cluster ^ regionSalt) >> 11) *
        0x1.0p-53;
    return draw < bench.largePageProbability() ? PageSize::Large2M
                                               : PageSize::Small4K;
}

Addr
TraceGenerator::uniformAddr()
{
    return rebase(alignDown(rng.below(footprint), 8));
}

Addr
TraceGenerator::streamingAddr()
{
    // Stencil codes interleave their sweeps with strided plane/array
    // accesses that conflict in the TLBs; a conflict run interposes
    // here with per-reference probability conflictProbability / 4.
    if (runRemaining > 0) {
        --runRemaining;
        return rebase(runPageBase +
                      alignDown(rng.below(runPageSpan), 8));
    }
    if (bench.conflictProbability > 0.0 &&
        rng.chance(bench.conflictProbability / 4.0)) {
        runPageBase = conflictPage() << smallPageShift;
        runPageSpan = smallPageBytes;
        runRemaining = static_cast<unsigned>(
            rng.geometricGap(bench.runLength));
        --runRemaining;
        return rebase(runPageBase +
                      alignDown(rng.below(runPageSpan), 8));
    }

    Addr &cursor = streamCursor[nextStream];
    nextStream = (nextStream + 1) % numStreams;

    const Addr addr = rebase(cursor);
    cursor += bench.streamStrideBytes;
    if (cursor >= footprint)
        cursor = 0;
    // Rare stream restarts model loop boundaries.
    if (rng.chance(1.0 / 50000.0))
        cursor = alignDown(rng.below(footprint), 64);
    return addr;
}

std::uint64_t
TraceGenerator::conflictPage()
{
    // Re-seed the stencil base after many passes over the group (a
    // plane/column change in the modelled structured code).
    const std::uint64_t reseed_after =
        static_cast<std::uint64_t>(bench.conflictGroupPages) * 50;
    if (conflictVisits == 0 || conflictVisits >= reseed_after) {
        conflictBasePage = rng.below(numSmallPages);
        conflictIndex = 0;
        conflictVisits = 0;
    }
    std::uint64_t page =
        (conflictBasePage +
         static_cast<std::uint64_t>(conflictIndex) *
             bench.conflictStridePages) %
        numSmallPages;
    conflictIndex = (conflictIndex + 1) % bench.conflictGroupPages;
    ++conflictVisits;

    // Stencil conflict traffic targets 4 KB-mapped regions (THP does
    // not promote scattered strided planes); skip forward a whole
    // 2 MB region at a time — 512 is a multiple of every TLB's set
    // count, so the colliding set index is preserved.
    constexpr std::uint64_t region_pages =
        largePageBytes / smallPageBytes;
    for (unsigned tries = 0;
         tries < 64 &&
         pageSizeOf(base + (page << smallPageShift)) !=
             PageSize::Small4K;
         ++tries) {
        page = (page + region_pages) % numSmallPages;
    }
    return page;
}

Addr
TraceGenerator::nextRunPage(bool use_zipf)
{
    if (bench.conflictProbability > 0.0 &&
        rng.chance(bench.conflictProbability)) {
        return conflictPage() << smallPageShift;
    }
    if (rng.chance(bench.localNextProbability)) {
        // Spatial burst: continue into the adjacent page.
        return runPageBase + smallPageBytes;
    }
    if (use_zipf) {
        // Scramble the Zipf rank so the hottest pages are scattered
        // across the footprint rather than clustered at its start.
        const std::uint64_t rank = zipf->next(rng);
        const std::uint64_t page =
            mix64(rank * 0x9e3779b97f4a7c15ULL) % numSmallPages;
        return page << smallPageShift;
    }
    // A dependent chain: the next node's page is a deterministic
    // scramble of the current state. With probability hotProbability
    // the hop lands in the hot node region at the start of the
    // footprint; otherwise it is uniform over the whole footprint.
    chaseState = mix64(chaseState + 0x9e3779b97f4a7c15ULL);
    const std::uint64_t hot_pages = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               static_cast<double>(numSmallPages) * bench.hotFraction));
    std::uint64_t page;
    if (rng.chance(bench.hotProbability))
        page = chaseState % hot_pages;
    else
        page = chaseState % numSmallPages;
    return page << smallPageShift;
}

Addr
TraceGenerator::zipfAddr()
{
    if (runRemaining == 0) {
        runPageBase = nextRunPage(true);
        runPageSpan = smallPageBytes;
        runRemaining = static_cast<unsigned>(
            rng.geometricGap(bench.runLength));
    }
    --runRemaining;
    return rebase(runPageBase + alignDown(rng.below(runPageSpan), 8));
}

Addr
TraceGenerator::chaseAddr()
{
    if (runRemaining == 0) {
        runPageBase = nextRunPage(false);
        runPageSpan = smallPageBytes;
        runRemaining = static_cast<unsigned>(
            rng.geometricGap(bench.runLength));
    }
    --runRemaining;
    return rebase(runPageBase + alignDown(rng.below(runPageSpan), 8));
}

Addr
TraceGenerator::mixedAddr()
{
    if (phaseRemaining == 0) {
        phaseStreaming = !phaseStreaming;
        phaseRemaining = phaseLength;
    }
    --phaseRemaining;
    return phaseStreaming ? streamingAddr() : zipfAddr();
}

std::size_t
TraceGenerator::fill(TraceRecord *out, std::size_t n)
{
    // next() is defined in this translation unit, so the compiler
    // inlines the whole record construction into this loop — the
    // per-record cost is pattern dispatch only, no call overhead.
    for (std::size_t i = 0; i < n; ++i)
        out[i] = next();
    return n;
}

TraceRecord
TraceGenerator::next()
{
    TraceRecord record;

    switch (bench.pattern) {
      case AccessPattern::UniformRandom:
        record.vaddr = uniformAddr();
        break;
      case AccessPattern::Streaming:
        record.vaddr = streamingAddr();
        break;
      case AccessPattern::ZipfHotspot:
        record.vaddr = zipfAddr();
        break;
      case AccessPattern::PointerChase:
        record.vaddr = chaseAddr();
        break;
      case AccessPattern::MixedPhases:
        record.vaddr = mixedAddr();
        break;
    }

    record.pageSize = pageSizeOf(record.vaddr);
    record.type = rng.chance(bench.writeFraction) ? AccessType::Write
                                                  : AccessType::Read;
    record.instGap = static_cast<std::uint32_t>(
        rng.geometricGap(bench.instGapMean));
    return record;
}

} // namespace pomtlb

/**
 * @file
 * Recoverable trace-input error.
 *
 * Trace files arrive from outside the simulator (recorded on other
 * hosts, converted from foreign tools, truncated by crashed writers),
 * so a malformed one is an input problem, not a programming error.
 * Unlike fatal()/panic() — which terminate the process and are
 * reserved for internal invariant violations — readers throw
 * TraceError so callers (the CLI, tests, batch converters) can report
 * the offending path and move on. Every message names the file it is
 * about, following the same discipline as SweepJournal's path-named
 * corruption reports.
 */

#ifndef POMTLB_TRACE_ERROR_HH
#define POMTLB_TRACE_ERROR_HH

#include <stdexcept>
#include <string>

namespace pomtlb
{

/**
 * Thrown when a trace file or trace pack cannot be opened, parsed, or
 * verified. The what() string always names the offending path and,
 * where useful, the observed size or offset.
 */
class TraceError : public std::runtime_error
{
  public:
    explicit TraceError(const std::string &message)
        : std::runtime_error(message)
    {
    }
};

} // namespace pomtlb

#endif // POMTLB_TRACE_ERROR_HH

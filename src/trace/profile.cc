#include "trace/profile.hh"

#include "common/log.hh"

namespace pomtlb
{

const char *
accessPatternName(AccessPattern pattern)
{
    switch (pattern) {
      case AccessPattern::UniformRandom:
        return "uniform-random";
      case AccessPattern::Streaming:
        return "streaming";
      case AccessPattern::ZipfHotspot:
        return "zipf-hotspot";
      case AccessPattern::PointerChase:
        return "pointer-chase";
      case AccessPattern::MixedPhases:
        return "mixed-phases";
    }
    return "?";
}

namespace
{

/** Shorthand builder keeping the table below readable. */
BenchmarkProfile
make(const char *name, double ovh_native, double ovh_virtual,
     double cycles_native, double cycles_virtual, double frac_large,
     AccessPattern pattern, Addr footprint_mb, double zipf_theta,
     double run_length, double inst_gap, double write_fraction,
     double hot_fraction, double hot_probability, bool multithreaded)
{
    BenchmarkProfile profile;
    profile.name = name;
    profile.overheadNativePct = ovh_native;
    profile.overheadVirtualPct = ovh_virtual;
    profile.cyclesPerMissNative = cycles_native;
    profile.cyclesPerMissVirtual = cycles_virtual;
    profile.fracLargePagesPct = frac_large;
    profile.pattern = pattern;
    profile.footprintBytes = footprint_mb << 20;
    profile.zipfTheta = zipf_theta;
    profile.runLength = run_length;
    profile.instGapMean = inst_gap;
    profile.writeFraction = write_fraction;
    profile.hotFraction = hot_fraction;
    profile.hotProbability = hot_probability;
    profile.multithreaded = multithreaded;
    return profile;
}

/**
 * The fifteen workloads. Measured columns are Table 2 verbatim; the
 * stream-model columns are chosen per the benchmark's published
 * characterisation: gups is uniformly random (the paper calls out its
 * low page-table locality), lbm/bwaves/libquantum/zeusmp/
 * streamcluster stream over grids, the graph workloads
 * (ccomponent/graph500/pagerank) and mcf/canneal chase pointers, and
 * gcc/astar concentrate on hot working sets.
 */
std::vector<BenchmarkProfile>
buildProfiles()
{
    using AP = AccessPattern;
    std::vector<BenchmarkProfile> profiles;
    // SPEC CPU profiles run rate-mode (one copy per core, disjoint
    // address spaces); PARSEC/graph profiles are multithreaded over
    // one shared footprint. Footprints are scaled so steady state is
    // reached within simulable trace lengths while still dwarfing the
    // 6 MB reach of the 1536-entry L2 TLB; ccomponent intentionally
    // keeps a footprint that defeats every caching level (its
    // Table 2 walk cost is 1158 cycles — the pathological case).
    //                 name         ovhN   ovhV   cycN  cycV  large  pattern            MB  theta run   gap  wr    hotF   hotP  MT
    profiles.push_back(make("astar",         13.89, 16.08,  98,  114, 41.7, AP::ZipfHotspot,    96, 0.85,  3.0, 3.0, 0.25, 0.00,  0.00, false));
    profiles.push_back(make("bwaves",         0.73,  7.70, 128,  151,  0.8, AP::Streaming,      32, 0.00,  8.0, 5.0, 0.30, 0.00,  0.00, false));
    profiles.push_back(make("canneal",        3.19,  6.34,  53,   61, 16.0, AP::PointerChase,  192, 0.00,  2.0, 4.0, 0.20, 0.05,  0.90, true));
    profiles.push_back(make("ccomponent",     0.73,  7.40,  44, 1158, 50.0, AP::PointerChase, 1024, 0.00,  1.0, 3.0, 0.10, 0.05,  0.20, true));
    profiles.push_back(make("gcc",            0.30, 12.12,  46,   88, 29.0, AP::ZipfHotspot,    96, 0.95,  4.0, 4.0, 0.35, 0.00,  0.00, false));
    profiles.push_back(make("GemsFDTD",      10.58, 16.01, 129,  133, 71.0, AP::MixedPhases,    96, 0.80,  6.0, 4.0, 0.40, 0.00,  0.00, false));
    profiles.push_back(make("graph500",       1.03,  7.66,  79,   80,  7.0, AP::PointerChase,  256, 0.00,  2.0, 3.0, 0.15, 0.06,  0.70, true));
    profiles.push_back(make("gups",          12.20, 17.20,  43,   70,  2.6, AP::UniformRandom, 128, 0.00,  1.0, 2.0, 0.50, 0.00,  0.00, true));
    profiles.push_back(make("lbm",            0.05, 12.02, 110,  290, 57.4, AP::Streaming,      32, 0.00,  8.0, 5.0, 0.45, 0.00,  0.00, false));
    profiles.push_back(make("libquantum",     0.02,  7.37,  70,   75, 32.9, AP::Streaming,      24, 0.00, 16.0, 6.0, 0.25, 0.00,  0.00, false));
    profiles.push_back(make("mcf",           10.32, 19.01,  66,  169, 60.7, AP::PointerChase,  192, 0.00,  2.0, 3.0, 0.20, 0.05,  0.90, false));
    profiles.push_back(make("pagerank",       4.07,  6.96,  51,   61, 60.0, AP::PointerChase,  192, 0.00,  2.0, 3.0, 0.25, 0.06,  0.80, true));
    profiles.push_back(make("soplex",         4.16, 17.07, 144,  145, 12.3, AP::MixedPhases,    96, 0.80,  4.0, 4.0, 0.30, 0.00,  0.00, false));
    profiles.push_back(make("streamcluster",  0.07,  2.11,  74,   76, 87.2, AP::Streaming,     128, 0.00, 16.0, 5.0, 0.20, 0.00,  0.00, true));
    profiles.push_back(make("zeusmp",         0.01, 10.22, 136,  137, 72.1, AP::Streaming,      32, 0.00,  8.0, 5.0, 0.40, 0.00,  0.00, false));

    // Spatial burst locality (adjacent-page continuation) per
    // workload class: graph codes with locality-aware layouts and
    // hot-working-set SPEC codes burst across neighbouring pages;
    // ccomponent (pathological) and gups (uniform by construction)
    // stay scattered.
    for (auto &profile : profiles) {
        if (profile.pattern == AccessPattern::ZipfHotspot ||
            profile.pattern == AccessPattern::MixedPhases) {
            profile.localNextProbability = 0.5;
        } else if (profile.pattern == AccessPattern::PointerChase) {
            profile.localNextProbability = 0.5;
        }
    }
    for (auto &profile : profiles) {
        if (profile.name == "ccomponent")
            profile.localNextProbability = 0.15;
        else if (profile.name == "mcf")
            profile.localNextProbability = 0.6;
        else if (profile.name == "graph500")
            profile.localNextProbability = 0.4;
    }

    // TLB-conflict stencil shares: structured SPEC codes (grids,
    // stencils, column-major sweeps) and locality-aware graph codes
    // generate page strides that collide in the set-indexed TLBs,
    // re-missing hot pages at short reuse distances. gups and
    // ccomponent stay unstructured (their Table 2 behaviour is the
    // uniform/pathological case).
    for (auto &profile : profiles) {
        if (profile.name == "astar")
            profile.conflictProbability = 0.70;
        else if (profile.name == "gcc")
            profile.conflictProbability = 0.65;
        else if (profile.name == "GemsFDTD")
            profile.conflictProbability = 0.78;
        else if (profile.name == "soplex")
            profile.conflictProbability = 0.78;
        else if (profile.name == "mcf")
            profile.conflictProbability = 0.62;
        else if (profile.name == "canneal")
            profile.conflictProbability = 0.50;
        else if (profile.name == "pagerank")
            profile.conflictProbability = 0.50;
        else if (profile.name == "graph500")
            profile.conflictProbability = 0.45;
        else if (profile.name == "ccomponent")
            profile.conflictProbability = 0.10;
        else if (profile.name == "bwaves")
            profile.conflictProbability = 0.70;
        else if (profile.name == "lbm")
            profile.conflictProbability = 0.90;
        else if (profile.name == "libquantum")
            profile.conflictProbability = 0.50;
        else if (profile.name == "zeusmp")
            profile.conflictProbability = 0.80;
        else if (profile.name == "streamcluster")
            profile.conflictProbability = 0.05;
    }

    // The streaming stencils cycle over many arrays/planes: their
    // conflict groups are large (hundreds of pages), so the walk's
    // several cache lines per page overflow the private L2D$ while
    // the POM-TLB's single line per page still fits — the asymmetry
    // Section 4.1 credits for POM-TLB's advantage over PTE caching.
    for (auto &profile : profiles) {
        if (profile.name == "lbm") {
            profile.conflictGroupPages = 512;
        }
    }

    // Streaming strides: chosen so one full sweep of the footprint
    // completes well within the warmup phase (steady-state capacity
    // re-misses, not cold misses, dominate — as in the paper's
    // 20-billion-instruction traces).
    for (auto &profile : profiles) {
        if (profile.name == "GemsFDTD" || profile.name == "soplex") {
            profile.streamStrideBytes = 1024;
        } else if (profile.name == "bwaves" || profile.name == "lbm" ||
                   profile.name == "zeusmp") {
            profile.streamStrideBytes = 512;
        } else if (profile.name == "libquantum" ||
                   profile.name == "streamcluster") {
            profile.streamStrideBytes = 512;
        }
    }
    return profiles;
}

} // namespace

const std::vector<BenchmarkProfile> &
ProfileRegistry::all()
{
    static const std::vector<BenchmarkProfile> profiles =
        buildProfiles();
    return profiles;
}

const BenchmarkProfile &
ProfileRegistry::byName(const std::string &name)
{
    if (const BenchmarkProfile *profile = find(name))
        return *profile;
    fatal("unknown benchmark profile '", name, "'");
}

const BenchmarkProfile *
ProfileRegistry::find(const std::string &name)
{
    for (const auto &profile : all()) {
        if (profile.name == name)
            return &profile;
    }
    return nullptr;
}

std::vector<std::string>
ProfileRegistry::names()
{
    std::vector<std::string> result;
    for (const auto &profile : all())
        result.push_back(profile.name);
    return result;
}

} // namespace pomtlb

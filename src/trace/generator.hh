/**
 * @file
 * Synthetic trace generators — the PIN-trace substitute.
 *
 * Each generator produces an endless, deterministic reference stream
 * for one core running one benchmark profile. Page sizes are assigned
 * per 2 MB virtual region with a deterministic hash so a region's
 * size never changes and the configured large-page fraction holds in
 * expectation (the THP model).
 */

#ifndef POMTLB_TRACE_GENERATOR_HH
#define POMTLB_TRACE_GENERATOR_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"
#include "trace/profile.hh"
#include "trace/record.hh"

namespace pomtlb
{

/** Deterministic per-core reference-stream generator. */
class TraceGenerator
{
  public:
    /**
     * @param profile Benchmark to model (copied).
     * @param core    Core index (decorrelates per-core streams).
     * @param seed    Experiment seed.
     */
    TraceGenerator(const BenchmarkProfile &profile, CoreId core,
                   std::uint64_t seed);

    /** Produce the next reference. */
    TraceRecord next();

    /**
     * Produce @p n references into the caller-owned block @p out.
     *
     * The generator is endless, so exactly @p n records are always
     * written (and @p n is returned); the sequence is identical to
     * @p n successive next() calls. One non-inlined call per block
     * instead of one per record is what keeps the engine's batched
     * hot path cheap.
     */
    std::size_t fill(TraceRecord *out, std::size_t n);

    /** Page size of the 2 MB region containing @p vaddr. */
    PageSize pageSizeOf(Addr vaddr) const;

    /** First byte of the modelled footprint. */
    Addr footprintBase() const { return base; }
    /** Size of the modelled footprint. */
    Addr footprintSize() const { return footprint; }
    const BenchmarkProfile &profile() const { return bench; }

  private:
    Addr uniformAddr();
    Addr streamingAddr();
    Addr zipfAddr();
    Addr chaseAddr();
    Addr mixedAddr();

    /** Clamp an offset into [0, footprint) and add the base. */
    Addr rebase(Addr offset) const { return base + offset % footprint; }

    BenchmarkProfile bench;
    Rng rng;
    std::uint64_t regionSalt;
    Addr base;
    Addr footprint;
    std::uint64_t numSmallPages;
    /** log2 of the page-size cluster granularity (THP arenas). */
    unsigned clusterShift;

    // Streaming state: a few concurrent sequential streams.
    static constexpr unsigned numStreams = 4;
    std::vector<Addr> streamCursor;
    unsigned nextStream = 0;

    // In-page run state (Zipf / pointer-chase).
    Addr runPageBase = 0;
    Addr runPageSpan = 0;
    unsigned runRemaining = 0;

    // Pointer-chase state.
    std::uint64_t chaseState;

    // TLB-conflict stencil state (see BenchmarkProfile).
    std::uint64_t conflictBasePage = 0;
    unsigned conflictIndex = 0;
    std::uint64_t conflictVisits = 0;

    /** Pick the next run's page; shared by zipf and chase. */
    Addr nextRunPage(bool use_zipf);
    /** Next page of the conflict stencil group. */
    std::uint64_t conflictPage();

    // Mixed-phase state.
    std::uint64_t phaseRemaining;
    bool phaseStreaming = true;
    static constexpr std::uint64_t phaseLength = 20000;

    // Zipf distribution over small-page indices (lazy: only built for
    // profiles that need it).
    std::unique_ptr<ZipfGenerator> zipf;
};

} // namespace pomtlb

#endif // POMTLB_TRACE_GENERATOR_HH

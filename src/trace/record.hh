/**
 * @file
 * The memory-trace record format (Section 3.2).
 *
 * The paper traces workloads with PIN plus the Linux pagemap; each
 * record carries the virtual address, the count of abstracted
 * non-memory instructions preceding it (the issue cadence the
 * Ramulator-like scheduler uses), a read/write flag, the thread, and
 * the OS-reported page size.
 */

#ifndef POMTLB_TRACE_RECORD_HH
#define POMTLB_TRACE_RECORD_HH

#include "common/types.hh"

namespace pomtlb
{

/** One traced memory reference. */
struct TraceRecord
{
    /** Guest-virtual address referenced. */
    Addr vaddr = 0;
    /** Non-memory instructions executed since the previous record. */
    std::uint32_t instGap = 1;
    /** Load or store. */
    AccessType type = AccessType::Read;
    /** OS-assigned page size of the containing page. */
    PageSize pageSize = PageSize::Small4K;
};

} // namespace pomtlb

#endif // POMTLB_TRACE_RECORD_HH

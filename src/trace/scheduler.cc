#include "trace/scheduler.hh"

#include "common/log.hh"

namespace pomtlb
{

void
TraceScheduler::addStream(std::unique_ptr<TraceGenerator> generator)
{
    Stream stream;
    stream.gen = std::move(generator);
    streams.push_back(std::move(stream));
}

void
TraceScheduler::prime(Stream &stream)
{
    stream.pending = stream.gen->next();
    stream.instCount += stream.pending.instGap + 1;
    stream.primed = true;
}

ScheduledRecord
TraceScheduler::next()
{
    simAssert(!streams.empty(), "scheduler has no streams");

    for (auto &stream : streams) {
        if (!stream.primed)
            prime(stream);
    }

    std::size_t best = 0;
    for (std::size_t i = 1; i < streams.size(); ++i) {
        if (streams[i].instCount < streams[best].instCount)
            best = i;
    }

    ScheduledRecord result;
    result.core = static_cast<CoreId>(best);
    result.record = streams[best].pending;
    result.instCount = streams[best].instCount;
    streams[best].primed = false;
    return result;
}

} // namespace pomtlb

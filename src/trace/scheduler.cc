#include "trace/scheduler.hh"

#include "common/log.hh"

namespace pomtlb
{

void
TraceScheduler::addStream(std::unique_ptr<TraceGenerator> generator)
{
    Stream stream;
    stream.gen = std::move(generator);
    streams.push_back(std::move(stream));
}

void
TraceScheduler::prime(Stream &stream)
{
    // Records are drawn from a per-stream batch buffer refilled via
    // the generator's batched fill(); the consumption order — and so
    // the merge — is identical to per-record next() calls.
    if (stream.bufferPos >= stream.buffer.size()) {
        stream.buffer.resize(batchSize);
        const std::size_t got =
            stream.gen->fill(stream.buffer.data(), batchSize);
        stream.buffer.resize(got);
        stream.bufferPos = 0;
        simAssert(got > 0, "generator produced no records");
    }
    stream.pending = stream.buffer[stream.bufferPos++];
    stream.instCount += stream.pending.instGap + 1;
    stream.primed = true;
}

ScheduledRecord
TraceScheduler::next()
{
    simAssert(!streams.empty(), "scheduler has no streams");

    for (auto &stream : streams) {
        if (!stream.primed)
            prime(stream);
    }

    std::size_t best = 0;
    for (std::size_t i = 1; i < streams.size(); ++i) {
        if (streams[i].instCount < streams[best].instCount)
            best = i;
    }

    ScheduledRecord result;
    result.core = static_cast<CoreId>(best);
    result.record = streams[best].pending;
    result.instCount = streams[best].instCount;
    streams[best].primed = false;
    return result;
}

} // namespace pomtlb

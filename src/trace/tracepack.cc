#include "trace/tracepack.hh"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

namespace pomtlb
{

namespace
{

constexpr char packMagic[8] = {'P', 'O', 'M', 'T', 'P', 'A', 'K',
                               '1'};
constexpr char dirMagic[4] = {'P', 'K', 'S', 'D'};
constexpr char chunkMagic[4] = {'P', 'K', 'C', 'H'};
constexpr char indexMagic[8] = {'P', 'K', 'I', 'X', 'P', 'K', 'I',
                                'X'};

constexpr std::uint64_t packHeaderBytes = 128;
constexpr std::uint64_t chunkHeaderBytes = 64;
constexpr std::uint64_t packAlignment = 64;
constexpr std::uint32_t packRecordBytes = 16;
constexpr std::size_t digestChars = 32;

constexpr std::uint8_t flagWrite = 1u << 0;
constexpr std::uint8_t flagLargePage = 1u << 1;

std::uint64_t
alignUp(std::uint64_t value)
{
    return (value + packAlignment - 1) & ~(packAlignment - 1);
}

void
putU32(std::string &out, std::uint32_t value)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(
            static_cast<char>((value >> (8 * i)) & 0xff));
}

void
putU64(std::string &out, std::uint64_t value)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(
            static_cast<char>((value >> (8 * i)) & 0xff));
}

std::uint32_t
loadU32(const unsigned char *p)
{
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i)
        value |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    return value;
}

std::uint64_t
loadU64(const unsigned char *p)
{
    std::uint64_t value = 0;
    for (int i = 0; i < 8; ++i)
        value |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return value;
}

void
packRecord(std::string &out, const TraceRecord &record)
{
    putU64(out, record.vaddr);
    putU32(out, record.instGap);
    std::uint8_t flags = 0;
    if (record.type == AccessType::Write)
        flags |= flagWrite;
    if (record.pageSize == PageSize::Large2M)
        flags |= flagLargePage;
    out.push_back(static_cast<char>(flags));
    out.push_back(0);
    out.push_back(0);
    out.push_back(0);
}

TraceRecord
unpackRecord(const unsigned char *p)
{
    TraceRecord record;
    record.vaddr = loadU64(p);
    record.instGap = loadU32(p + 8);
    const std::uint8_t flags = p[12];
    record.type = (flags & flagWrite) ? AccessType::Write
                                      : AccessType::Read;
    record.pageSize = (flags & flagLargePage) ? PageSize::Large2M
                                              : PageSize::Small4K;
    return record;
}

/** Digest of one chunk: 4 LE stream-id bytes, then the payload. */
std::string
chunkDigest(std::uint32_t stream, const unsigned char *payload,
            std::size_t payloadBytes)
{
    // Two independent 64-bit FNV-1a lanes over the stream id, the
    // payload length, and the payload as 8-byte little-endian words
    // (tail bytes zero-extended). Word-at-a-time keeps first-read
    // verification off the replay critical path — one multiply per
    // 8 bytes instead of the byte-streamed ContentHash's one per
    // byte — and two lanes with distinct primes keep the printed
    // digest at the same 32 hex characters as every other digest
    // in the file. The identity-grade file content_hash still uses
    // ContentHash (absorbChunk below).
    constexpr std::uint64_t prime0 = 0x100000001b3ULL;
    constexpr std::uint64_t prime1 = 0x9e3779b97f4a7c15ULL;
    std::uint64_t lane0 = 0xcbf29ce484222325ULL;
    std::uint64_t lane1 = 0x84222325cbf29ce4ULL;
    const auto absorb = [&](std::uint64_t word) {
        lane0 = (lane0 ^ word) * prime0;
        lane1 = (lane1 ^ word) * prime1;
    };
    absorb(stream);
    absorb(payloadBytes);
    std::size_t i = 0;
    for (; i + 8 <= payloadBytes; i += 8)
        absorb(loadU64(payload + i));
    if (i < payloadBytes) {
        unsigned char tail[8] = {};
        std::memcpy(tail, payload + i, payloadBytes - i);
        absorb(loadU64(tail));
    }
    char text[33];
    std::snprintf(text, sizeof(text), "%016llx%016llx",
                  static_cast<unsigned long long>(lane0),
                  static_cast<unsigned long long>(lane1));
    return std::string(text, 32);
}

void
absorbChunk(ContentHash &hasher, std::uint32_t stream,
            const unsigned char *payload, std::size_t payloadBytes)
{
    std::string idBytes;
    putU32(idBytes, stream);
    hasher.update(idBytes).update(payload, payloadBytes);
}

} // namespace

// ---------------------------------------------------------------
// TracePackWriter
// ---------------------------------------------------------------

TracePackWriter::TracePackWriter(
    const std::string &path, std::vector<std::string> streamNames,
    std::uint64_t chunkRecords)
    : out(path, std::ios::binary | std::ios::trunc), filePath(path),
      chunkCapacity(chunkRecords)
{
    if (streamNames.empty())
        throw TraceError("trace pack '" + path +
                         "': at least one stream is required");
    if (chunkCapacity == 0)
        throw TraceError("trace pack '" + path +
                         "': chunk size must be at least 1 record");
    if (!out)
        throw TraceError("cannot create trace pack '" + path + "'");

    streams.reserve(streamNames.size());
    for (auto &name : streamNames) {
        StreamState state;
        state.name = std::move(name);
        state.pending.reserve(chunkCapacity);
        streams.push_back(std::move(state));
    }

    // Provisional header: index_offset 0 and a zero hash mark the
    // pack as unfinalised until close() rewrites it.
    writeHeader(0, std::string(digestChars, '0'));
    writeOffset = packHeaderBytes;

    // Stream directory, so even a torn pack keeps its stream names.
    std::string names;
    for (const auto &stream : streams) {
        putU32(names,
               static_cast<std::uint32_t>(stream.name.size()));
        names.append(stream.name);
    }
    const std::uint64_t dirBytes =
        alignUp(12 + names.size() + digestChars);
    std::string body;
    body.append(dirMagic, sizeof(dirMagic));
    putU32(body, static_cast<std::uint32_t>(dirBytes));
    putU32(body, static_cast<std::uint32_t>(streams.size()));
    body.append(names);
    // Digest covers magic..names; the zero padding between the
    // names and the trailing digest slot is excluded (the reader
    // hashes exactly the bytes it parsed).
    const std::string digest = ContentHash::of(body);
    body.resize(dirBytes - digestChars, '\0');
    body.append(digest);
    out.write(body.data(), static_cast<std::streamsize>(body.size()));
    writeOffset += body.size();
}

TracePackWriter::~TracePackWriter()
{
    try {
        close();
    } catch (...) {
        // A destructor must not throw; a failed implicit close
        // leaves a torn (recoverable) pack behind.
    }
}

void
TracePackWriter::writeHeader(std::uint64_t indexOffset,
                             const std::string &hashHex)
{
    std::string header;
    header.append(packMagic, sizeof(packMagic));
    putU32(header, tracePackVersion);
    putU32(header, static_cast<std::uint32_t>(packHeaderBytes));
    putU32(header, static_cast<std::uint32_t>(streams.size()));
    putU32(header, packRecordBytes);
    putU64(header, chunkCapacity);
    putU64(header, totalRecords);
    putU64(header, indexOffset);
    header.append(hashHex);
    header.resize(packHeaderBytes, '\0');
    out.seekp(0);
    out.write(header.data(),
              static_cast<std::streamsize>(header.size()));
}

void
TracePackWriter::append(std::uint32_t stream,
                        const TraceRecord &record)
{
    append(stream, &record, 1);
}

void
TracePackWriter::append(std::uint32_t stream,
                        const TraceRecord *records, std::size_t n)
{
    if (closed)
        throw TraceError("trace pack '" + filePath +
                         "': append after close");
    if (stream >= streams.size())
        throw TraceError(
            "trace pack '" + filePath + "': stream " +
            std::to_string(stream) + " out of range (" +
            std::to_string(streams.size()) + " streams)");
    StreamState &state = streams[stream];
    for (std::size_t i = 0; i < n; ++i) {
        state.pending.push_back(records[i]);
        if (state.pending.size() >= chunkCapacity)
            flushChunk(stream);
    }
    totalRecords += n;
    // state.records counts *flushed* records; pending ones are
    // added when their chunk flushes.
}

void
TracePackWriter::flushChunk(std::uint32_t stream)
{
    StreamState &state = streams[stream];
    if (state.pending.empty())
        return;

    std::string payload;
    payload.reserve(state.pending.size() * packRecordBytes);
    for (const TraceRecord &record : state.pending)
        packRecord(payload, record);

    const auto *payloadBytes =
        reinterpret_cast<const unsigned char *>(payload.data());
    const std::string digest =
        chunkDigest(stream, payloadBytes, payload.size());
    absorbChunk(hasher, stream, payloadBytes, payload.size());

    std::string header;
    header.append(chunkMagic, sizeof(chunkMagic));
    putU32(header, stream);
    putU64(header, state.records);
    putU32(header, static_cast<std::uint32_t>(state.pending.size()));
    putU32(header, static_cast<std::uint32_t>(payload.size()));
    header.append(digest);
    header.resize(chunkHeaderBytes, '\0');

    state.chunkOffsets.push_back(writeOffset);
    state.records += state.pending.size();
    state.pending.clear();

    payload.resize(alignUp(payload.size()), '\0');
    out.write(header.data(),
              static_cast<std::streamsize>(header.size()));
    out.write(payload.data(),
              static_cast<std::streamsize>(payload.size()));
    writeOffset += header.size() + payload.size();
}

void
TracePackWriter::close()
{
    if (closed)
        return;
    for (std::uint32_t s = 0; s < streams.size(); ++s)
        flushChunk(s);

    // Index footer, then the finalising header rewrite: a crash
    // before the rewrite leaves index_offset 0, which is exactly
    // the torn-pack state the reader recovers from.
    const std::uint64_t indexOffset = writeOffset;
    std::string index;
    index.append(indexMagic, sizeof(indexMagic));
    putU32(index, static_cast<std::uint32_t>(streams.size()));
    putU32(index, 0);
    for (const StreamState &state : streams) {
        putU64(index, state.chunkOffsets.size());
        putU64(index, state.records);
        for (std::uint64_t offset : state.chunkOffsets)
            putU64(index, offset);
    }
    index.append(ContentHash::of(index));
    out.write(index.data(),
              static_cast<std::streamsize>(index.size()));

    writeHeader(indexOffset, hasher.hexDigest());
    out.flush();
    if (!out)
        throw TraceError("error writing trace pack '" + filePath +
                         "'");
    out.close();
    closed = true;
}

// ---------------------------------------------------------------
// TracePackReader
// ---------------------------------------------------------------

TracePackReader::TracePackReader(const std::string &path)
    : filePath(path)
{
    openMapping();

    if (mapSize < packHeaderBytes)
        throw TraceError(
            "trace pack '" + filePath + "' is too short: " +
            std::to_string(mapSize) + " bytes, but the header alone "
            "is " + std::to_string(packHeaderBytes) + " bytes");
    if (std::memcmp(base, packMagic, sizeof(packMagic)) != 0)
        throw TraceError("'" + filePath +
                         "' is not a pomtlb trace pack (bad magic)");
    const std::uint32_t version = loadU32(base + 8);
    if (version != tracePackVersion)
        throw TraceError(
            "trace pack '" + filePath + "' has unsupported version " +
            std::to_string(version) + " (this build reads version " +
            std::to_string(tracePackVersion) + ")");
    const std::uint32_t headerBytes = loadU32(base + 12);
    if (headerBytes != packHeaderBytes)
        throw TraceError("trace pack '" + filePath +
                         "': unexpected header size " +
                         std::to_string(headerBytes));
    const std::uint32_t streamCount = loadU32(base + 16);
    if (streamCount == 0)
        throw TraceError("trace pack '" + filePath +
                         "' declares zero streams");
    const std::uint32_t recordBytes = loadU32(base + 20);
    if (recordBytes != packRecordBytes)
        throw TraceError("trace pack '" + filePath +
                         "': unexpected record size " +
                         std::to_string(recordBytes));
    chunkCapacity = loadU64(base + 24);
    if (chunkCapacity == 0)
        throw TraceError("trace pack '" + filePath +
                         "' declares zero-record chunks");

    streams.resize(streamCount);
    streamChunks.resize(streamCount);
    const std::uint64_t dataStart = parseDirectory();

    const std::uint64_t indexOffset = loadU64(base + 40);
    std::string headerHash(reinterpret_cast<const char *>(base + 48),
                           digestChars);
    if (indexOffset != 0) {
        try {
            parseIndexed(indexOffset, headerHash);
            return;
        } catch (const TraceError &) {
            // Invalid or out-of-range index (e.g. a finalised pack
            // that was truncated afterwards): fall back to the same
            // chunk scan an unfinalised pack gets.
            for (auto &perStream : streamChunks)
                perStream.clear();
            chunks.clear();
            for (auto &stream : streams) {
                stream.records = 0;
                stream.chunks = 0;
            }
        }
    }
    recoverByScan(dataStart);
}

TracePackReader::~TracePackReader()
{
    if (usedMmap && base != nullptr)
        ::munmap(const_cast<unsigned char *>(base), mapSize);
}

void
TracePackReader::openMapping()
{
    const int fd = ::open(filePath.c_str(), O_RDONLY);
    if (fd < 0)
        throw TraceError("cannot open trace pack '" + filePath +
                         "': " + std::strerror(errno));
    struct stat st;
    if (::fstat(fd, &st) != 0) {
        const int err = errno;
        ::close(fd);
        throw TraceError("cannot stat trace pack '" + filePath +
                         "': " + std::strerror(err));
    }
    mapSize = static_cast<std::uint64_t>(st.st_size);
    if (mapSize == 0) {
        ::close(fd);
        throw TraceError("trace pack '" + filePath +
                         "' is empty (0 bytes)");
    }
    void *mapped = ::mmap(nullptr, mapSize, PROT_READ, MAP_PRIVATE,
                          fd, 0);
    if (mapped != MAP_FAILED) {
        base = static_cast<const unsigned char *>(mapped);
        usedMmap = true;
        ::close(fd);
        return;
    }
    // mmap can fail on exotic filesystems; fall back to one read.
    heapCopy.resize(mapSize);
    std::uint64_t got = 0;
    while (got < mapSize) {
        const ssize_t n = ::read(fd, heapCopy.data() + got,
                                 mapSize - got);
        if (n <= 0) {
            ::close(fd);
            throw TraceError("cannot read trace pack '" + filePath +
                             "'");
        }
        got += static_cast<std::uint64_t>(n);
    }
    ::close(fd);
    base = heapCopy.data();
    usedMmap = false;
}

std::uint64_t
TracePackReader::parseDirectory()
{
    const std::uint64_t start = packHeaderBytes;
    if (start + 12 > mapSize)
        throw TraceError(
            "trace pack '" + filePath + "' is too short for its "
            "stream directory: " + std::to_string(mapSize) +
            " bytes");
    if (std::memcmp(at(start), dirMagic, sizeof(dirMagic)) != 0)
        throw TraceError("trace pack '" + filePath +
                         "': stream directory magic missing");
    const std::uint64_t dirBytes = loadU32(at(start + 4));
    if (dirBytes < 12 + digestChars || dirBytes % packAlignment != 0
        || start + dirBytes > mapSize)
        throw TraceError("trace pack '" + filePath +
                         "': stream directory size " +
                         std::to_string(dirBytes) +
                         " is inconsistent with the file's " +
                         std::to_string(mapSize) + " bytes");
    const std::uint32_t dirStreams = loadU32(at(start + 8));
    if (dirStreams != streams.size())
        throw TraceError(
            "trace pack '" + filePath + "': directory declares " +
            std::to_string(dirStreams) + " streams but the header "
            "declares " + std::to_string(streams.size()));

    std::uint64_t cursor = start + 12;
    const std::uint64_t limit = start + dirBytes - digestChars;
    for (auto &stream : streams) {
        if (cursor + 4 > limit)
            throw TraceError("trace pack '" + filePath +
                             "': truncated stream directory");
        const std::uint32_t nameLen = loadU32(at(cursor));
        cursor += 4;
        if (cursor + nameLen > limit)
            throw TraceError("trace pack '" + filePath +
                             "': stream name overruns the "
                             "directory");
        stream.name.assign(
            reinterpret_cast<const char *>(at(cursor)), nameLen);
        cursor += nameLen;
    }

    const std::string expected = ContentHash()
        .update(at(start), cursor - start)
        .hexDigest();
    const std::string stored(
        reinterpret_cast<const char *>(at(limit)), digestChars);
    if (expected != stored)
        throw TraceError("trace pack '" + filePath +
                         "': stream directory checksum mismatch");
    return start + dirBytes;
}

void
TracePackReader::parseIndexed(std::uint64_t indexOffset,
                              const std::string &headerHash)
{
    if (indexOffset + sizeof(indexMagic) + 8 > mapSize)
        throw TraceError("trace pack '" + filePath +
                         "': index offset " +
                         std::to_string(indexOffset) +
                         " is beyond the file's " +
                         std::to_string(mapSize) + " bytes");
    if (std::memcmp(at(indexOffset), indexMagic,
                    sizeof(indexMagic)) != 0)
        throw TraceError("trace pack '" + filePath +
                         "': index magic missing");
    if (loadU32(at(indexOffset + 8)) != streams.size())
        throw TraceError("trace pack '" + filePath +
                         "': index stream count mismatch");

    std::uint64_t cursor = indexOffset + 16;
    std::uint64_t total = 0;
    std::vector<std::pair<std::uint64_t,
                          std::pair<std::uint32_t, std::uint32_t>>>
        byOffset; // (header offset, (stream, chunk))
    for (std::uint32_t s = 0; s < streams.size(); ++s) {
        if (cursor + 16 > mapSize)
            throw TraceError("trace pack '" + filePath +
                             "': truncated index");
        const std::uint64_t chunkCount = loadU64(at(cursor));
        const std::uint64_t records = loadU64(at(cursor + 8));
        cursor += 16;
        if (cursor + chunkCount * 8 > mapSize)
            throw TraceError("trace pack '" + filePath +
                             "': truncated index");
        streams[s].records = records;
        streams[s].chunks = chunkCount;
        total += records;
        std::uint64_t seen = 0;
        for (std::uint64_t c = 0; c < chunkCount; ++c) {
            const std::uint64_t offset = loadU64(at(cursor));
            cursor += 8;
            if (offset + chunkHeaderBytes > indexOffset)
                throw TraceError(
                    "trace pack '" + filePath + "': chunk offset " +
                    std::to_string(offset) + " overlaps the index");
            const unsigned char *header = at(offset);
            if (std::memcmp(header, chunkMagic,
                            sizeof(chunkMagic)) != 0)
                throw TraceError("trace pack '" + filePath +
                                 "': chunk magic missing at offset " +
                                 std::to_string(offset));
            if (loadU32(header + 4) != s)
                throw TraceError("trace pack '" + filePath +
                                 "': chunk at offset " +
                                 std::to_string(offset) +
                                 " belongs to another stream");
            if (loadU64(header + 8) != seen)
                throw TraceError("trace pack '" + filePath +
                                 "': chunk sequence broken at "
                                 "offset " + std::to_string(offset));
            const std::uint32_t count = loadU32(header + 16);
            const std::uint32_t payloadBytes = loadU32(header + 20);
            const bool last = (c + 1 == chunkCount);
            if (count == 0 || count > chunkCapacity ||
                (!last && count != chunkCapacity))
                throw TraceError(
                    "trace pack '" + filePath + "': chunk at "
                    "offset " + std::to_string(offset) +
                    " has inconsistent record count " +
                    std::to_string(count));
            if (payloadBytes !=
                    count * std::uint64_t{packRecordBytes} ||
                offset + chunkHeaderBytes + payloadBytes >
                    indexOffset)
                throw TraceError("trace pack '" + filePath +
                                 "': chunk payload overruns at "
                                 "offset " + std::to_string(offset));
            seen += count;
            ChunkRef ref;
            ref.payloadOffset = offset + chunkHeaderBytes;
            ref.records = count;
            streamChunks[s].push_back(ref);
            byOffset.push_back({offset,
                                {s,
                                 static_cast<std::uint32_t>(c)}});
        }
        if (seen != records)
            throw TraceError(
                "trace pack '" + filePath + "': stream '" +
                streams[s].name + "' indexes " +
                std::to_string(seen) + " records but declares " +
                std::to_string(records));
    }

    const std::uint64_t digestAt = cursor;
    if (digestAt + digestChars > mapSize)
        throw TraceError("trace pack '" + filePath +
                         "': truncated index digest");
    const std::string expected =
        ContentHash()
            .update(at(indexOffset), digestAt - indexOffset)
            .hexDigest();
    const std::string stored(
        reinterpret_cast<const char *>(at(digestAt)), digestChars);
    if (expected != stored)
        throw TraceError("trace pack '" + filePath +
                         "': index checksum mismatch");
    if (total != loadU64(at(32)))
        throw TraceError("trace pack '" + filePath +
                         "': header record count disagrees with "
                         "the index");
    for (char c : headerHash)
        if (!std::isxdigit(static_cast<unsigned char>(c)))
            throw TraceError("trace pack '" + filePath +
                             "': malformed content hash in header");

    // Flat file-order chunk list for lazy verification and for
    // recomputing the content hash if anyone asks to re-verify.
    std::sort(byOffset.begin(), byOffset.end());
    chunks.reserve(byOffset.size());
    for (const auto &entry : byOffset) {
        const std::uint32_t s = entry.second.first;
        const std::uint32_t c = entry.second.second;
        streamChunks[s][c].fileIndex =
            static_cast<std::uint32_t>(chunks.size());
        chunks.push_back({s, streamChunks[s][c]});
    }
    chunkVerified.assign(chunks.size(), 0);
    totalRecords = total;
    packHash = headerHash;
    isFinalized = true;
}

void
TracePackReader::recoverByScan(std::uint64_t dataStart)
{
    ContentHash hasher;
    std::vector<std::uint64_t> seen(streams.size(), 0);
    std::vector<bool> sawPartial(streams.size(), false);
    std::uint64_t offset = dataStart;
    while (offset + chunkHeaderBytes <= mapSize) {
        const unsigned char *header = at(offset);
        if (std::memcmp(header, chunkMagic, sizeof(chunkMagic)) != 0)
            break; // index footer, or a torn header
        const std::uint32_t s = loadU32(header + 4);
        if (s >= streams.size())
            break;
        if (loadU64(header + 8) != seen[s])
            break;
        const std::uint32_t count = loadU32(header + 16);
        const std::uint32_t payloadBytes = loadU32(header + 20);
        if (count == 0 || count > chunkCapacity || sawPartial[s] ||
            payloadBytes != count * std::uint64_t{packRecordBytes})
            break;
        const std::uint64_t payloadAt = offset + chunkHeaderBytes;
        const std::uint64_t next = payloadAt + alignUp(payloadBytes);
        if (next > mapSize)
            break; // torn tail: payload incomplete
        const std::string stored(
            reinterpret_cast<const char *>(header + 24),
            digestChars);
        if (chunkDigest(s, at(payloadAt), payloadBytes) != stored)
            break; // corrupt or torn chunk: drop it and the rest
        if (count < chunkCapacity)
            sawPartial[s] = true;

        absorbChunk(hasher, s, at(payloadAt), payloadBytes);
        ChunkRef ref;
        ref.payloadOffset = payloadAt;
        ref.records = count;
        ref.fileIndex = static_cast<std::uint32_t>(chunks.size());
        streamChunks[s].push_back(ref);
        chunks.push_back({s, ref});
        seen[s] += count;
        offset = next;
    }

    totalRecords = 0;
    for (std::uint32_t s = 0; s < streams.size(); ++s) {
        streams[s].records = seen[s];
        streams[s].chunks = streamChunks[s].size();
        totalRecords += seen[s];
    }
    chunkVerified.assign(chunks.size(), 1); // scan verified them all
    packHash = hasher.hexDigest();
    isFinalized = false;
}

const TracePackStreamInfo &
TracePackReader::stream(std::size_t index) const
{
    if (index >= streams.size())
        throw TraceError("trace pack '" + filePath + "': stream " +
                         std::to_string(index) + " out of range (" +
                         std::to_string(streams.size()) +
                         " streams)");
    return streams[index];
}

int
TracePackReader::streamIndex(const std::string &name) const
{
    for (std::size_t i = 0; i < streams.size(); ++i)
        if (streams[i].name == name)
            return static_cast<int>(i);
    return -1;
}

void
TracePackReader::verifyChunk(std::size_t stream,
                             std::size_t chunk) const
{
    const ChunkRef &ref = streamChunks[stream][chunk];
    if (chunkVerified[ref.fileIndex])
        return;
    const unsigned char *header =
        at(ref.payloadOffset - chunkHeaderBytes);
    const std::string stored(
        reinterpret_cast<const char *>(header + 24), digestChars);
    if (chunkDigest(static_cast<std::uint32_t>(stream),
                    at(ref.payloadOffset),
                    ref.records * packRecordBytes) != stored)
        throw TraceError(
            "trace pack '" + filePath + "': corrupt chunk " +
            std::to_string(chunk) + " of stream '" +
            streams[stream].name + "' (checksum mismatch)");
    chunkVerified[ref.fileIndex] = 1;
}

void
TracePackReader::verifyAllChunks() const
{
    for (std::size_t stream = 0; stream < streamChunks.size();
         ++stream) {
        for (std::size_t chunk = 0;
             chunk < streamChunks[stream].size(); ++chunk)
            verifyChunk(stream, chunk);
    }
}

std::size_t
TracePackReader::read(std::size_t stream, std::uint64_t pos,
                      TraceRecord *out, std::size_t n) const
{
    if (stream >= streams.size())
        throw TraceError("trace pack '" + filePath + "': stream " +
                         std::to_string(stream) +
                         " out of range (" +
                         std::to_string(streams.size()) +
                         " streams)");
    const std::uint64_t records = streams[stream].records;
    std::size_t produced = 0;
    while (produced < n && pos < records) {
        const std::size_t chunk =
            static_cast<std::size_t>(pos / chunkCapacity);
        const std::uint64_t within = pos % chunkCapacity;
        verifyChunk(stream, chunk);
        const ChunkRef &ref = streamChunks[stream][chunk];
        const std::uint64_t avail = ref.records - within;
        const std::uint64_t want = std::min<std::uint64_t>(
            avail, n - produced);
        const unsigned char *p =
            at(ref.payloadOffset + within * packRecordBytes);
        for (std::uint64_t i = 0; i < want; ++i) {
            out[produced++] = unpackRecord(p);
            p += packRecordBytes;
        }
        pos += want;
    }
    return produced;
}

// ---------------------------------------------------------------
// PackStreamSource
// ---------------------------------------------------------------

PackStreamSource::PackStreamSource(
    std::shared_ptr<TracePackReader> pack, std::size_t stream,
    bool wrap)
    : reader(std::move(pack)), streamId(stream), wrapAround(wrap)
{
    // Resolve bad stream indices at construction, not first fill().
    reader->stream(streamId);
}

std::size_t
PackStreamSource::fill(TraceRecord *out, std::size_t n)
{
    const std::uint64_t records = reader->stream(streamId).records;
    if (records == 0)
        return 0; // empty stream: never spin, even with wrap on
    std::size_t produced = 0;
    while (produced < n) {
        if (position >= records) {
            if (!wrapAround)
                break;
            position = 0;
        }
        const std::size_t got = reader->read(
            streamId, position, out + produced, n - produced);
        produced += got;
        position += got;
    }
    return produced;
}

std::string
PackStreamSource::describe() const
{
    return "pack:" + reader->path() + "/" +
           reader->stream(streamId).name;
}

std::uint64_t
PackStreamSource::recordCount() const
{
    return reader->stream(streamId).records;
}

// ---------------------------------------------------------------
// Converters and helpers
// ---------------------------------------------------------------

std::uint64_t
scanLegacyTrace(const std::string &path,
                const std::function<void(const TraceRecord *,
                                         std::size_t)> &sink)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw TraceError("cannot open trace file '" + path + "'");
    in.seekg(0, std::ios::end);
    const std::uint64_t fileBytes =
        static_cast<std::uint64_t>(in.tellg());
    in.seekg(0);

    constexpr std::uint64_t legacyHeaderBytes = 16;
    constexpr std::uint64_t legacyRecordBytes = 13;
    if (fileBytes < legacyHeaderBytes)
        throw TraceError(
            "trace file '" + path + "' is too short: " +
            std::to_string(fileBytes) + " bytes, but the header "
            "alone is " + std::to_string(legacyHeaderBytes) +
            " bytes");

    unsigned char header[legacyHeaderBytes];
    in.read(reinterpret_cast<char *>(header), legacyHeaderBytes);
    if (!in || std::memcmp(header, "POMT", 4) != 0)
        throw TraceError("'" + path +
                         "' is not a POM-TLB trace file");
    const std::uint32_t version = loadU32(header + 4);
    if (version != 1)
        throw TraceError("trace file '" + path +
                         "' has unsupported version " +
                         std::to_string(version));
    const std::uint64_t count = loadU64(header + 8);
    const std::uint64_t needed =
        legacyHeaderBytes + count * legacyRecordBytes;
    if (fileBytes < needed)
        throw TraceError(
            "trace file '" + path + "' truncated: header claims " +
            std::to_string(count) + " records (" +
            std::to_string(needed) + " bytes) but the file holds "
            "only " + std::to_string(fileBytes) + " bytes");

    // One bounded buffer, each record read exactly once — unlike
    // TraceFileReader, which materialises the whole trace to replay
    // it. A converter never needs that second copy.
    constexpr std::size_t blockRecords = 1024;
    std::vector<unsigned char> raw(blockRecords * legacyRecordBytes);
    std::vector<TraceRecord> block(blockRecords);
    std::uint64_t remaining = count;
    while (remaining > 0) {
        const std::size_t batch = static_cast<std::size_t>(
            std::min<std::uint64_t>(remaining, blockRecords));
        in.read(reinterpret_cast<char *>(raw.data()),
                static_cast<std::streamsize>(batch *
                                             legacyRecordBytes));
        if (!in)
            throw TraceError("error reading trace file '" + path +
                             "'");
        for (std::size_t i = 0; i < batch; ++i) {
            const unsigned char *p =
                raw.data() + i * legacyRecordBytes;
            TraceRecord &record = block[i];
            record.vaddr = loadU64(p);
            record.instGap = loadU32(p + 8);
            record.type = (p[12] & flagWrite) ? AccessType::Write
                                              : AccessType::Read;
            record.pageSize = (p[12] & flagLargePage)
                                  ? PageSize::Large2M
                                  : PageSize::Small4K;
        }
        sink(block.data(), batch);
        remaining -= batch;
    }
    return count;
}

namespace
{

std::string
trimmed(const std::string &line)
{
    std::size_t first = 0;
    std::size_t last = line.size();
    while (first < last &&
           std::isspace(static_cast<unsigned char>(line[first])))
        ++first;
    while (last > first &&
           std::isspace(static_cast<unsigned char>(line[last - 1])))
        --last;
    return line.substr(first, last - first);
}

[[noreturn]] void
textError(const std::string &path, std::uint64_t lineNo,
          const std::string &message)
{
    throw TraceError("trace text '" + path + "' line " +
                     std::to_string(lineNo) + ": " + message);
}

} // namespace

std::uint64_t
scanTextTrace(const std::string &path,
              const std::function<void(const TraceRecord *,
                                       std::size_t)> &sink)
{
    std::ifstream in(path);
    if (!in)
        throw TraceError("cannot open trace text '" + path + "'");

    constexpr std::size_t blockRecords = 1024;
    std::vector<TraceRecord> block;
    block.reserve(blockRecords);
    std::uint64_t total = 0;
    std::uint64_t lineNo = 0;
    std::string line;
    while (std::getline(in, line)) {
        ++lineNo;
        const std::string text = trimmed(line);
        if (text.empty() || text[0] == '#')
            continue;

        std::string fields[4];
        std::size_t field = 0;
        for (char c : text) {
            if (c == ',') {
                if (++field >= 4)
                    textError(path, lineNo,
                              "expected 4 comma-separated fields");
            } else {
                fields[field].push_back(c);
            }
        }
        if (field != 3)
            textError(path, lineNo,
                      "expected 4 comma-separated fields "
                      "(vaddr,inst_gap,rw,page), got " +
                          std::to_string(field + 1));
        for (auto &f : fields)
            f = trimmed(f);

        TraceRecord record;
        char *end = nullptr;
        errno = 0;
        record.vaddr = std::strtoull(fields[0].c_str(), &end, 0);
        if (fields[0].empty() || *end != '\0' || errno == ERANGE)
            textError(path, lineNo,
                      "bad vaddr '" + fields[0] + "'");
        errno = 0;
        const unsigned long long gap =
            std::strtoull(fields[1].c_str(), &end, 10);
        if (fields[1].empty() || *end != '\0' || errno == ERANGE ||
            gap > 0xffffffffull)
            textError(path, lineNo,
                      "bad inst_gap '" + fields[1] + "'");
        record.instGap = static_cast<std::uint32_t>(gap);
        if (fields[2] == "R" || fields[2] == "r")
            record.type = AccessType::Read;
        else if (fields[2] == "W" || fields[2] == "w")
            record.type = AccessType::Write;
        else
            textError(path, lineNo,
                      "bad rw flag '" + fields[2] +
                          "' (expected R or W)");
        if (fields[3] == "4K" || fields[3] == "4k")
            record.pageSize = PageSize::Small4K;
        else if (fields[3] == "2M" || fields[3] == "2m")
            record.pageSize = PageSize::Large2M;
        else
            textError(path, lineNo,
                      "bad page size '" + fields[3] +
                          "' (expected 4K or 2M)");

        block.push_back(record);
        ++total;
        if (block.size() >= blockRecords) {
            sink(block.data(), block.size());
            block.clear();
        }
    }
    if (!block.empty())
        sink(block.data(), block.size());
    return total;
}

std::string
formatTextRecord(const TraceRecord &record)
{
    std::ostringstream out;
    out << "0x" << std::hex << record.vaddr << std::dec << ","
        << record.instGap << ","
        << (record.type == AccessType::Write ? 'W' : 'R') << ","
        << (record.pageSize == PageSize::Large2M ? "2M" : "4K");
    return out.str();
}

JsonValue
tracePackInfoJson(const std::string &path)
{
    TracePackReader reader(path);
    JsonValue doc = JsonValue::object();
    doc.set("schema", tracePackSchema());
    doc.set("path", reader.path());
    doc.set("file_bytes", reader.fileBytes());
    doc.set("header_bytes", std::uint64_t{128});
    doc.set("record_bytes", std::uint64_t{16});
    doc.set("chunk_records", reader.chunkRecords());
    doc.set("records", reader.recordCount());
    doc.set("chunks", reader.chunkCount());
    doc.set("content_hash", reader.contentHash());
    doc.set("finalized", reader.finalized());
    JsonValue streams = JsonValue::array();
    for (std::size_t i = 0; i < reader.streamCount(); ++i) {
        const TracePackStreamInfo &info = reader.stream(i);
        JsonValue stream = JsonValue::object();
        stream.set("name", info.name);
        stream.set("records", info.records);
        stream.set("chunks", info.chunks);
        streams.push(std::move(stream));
    }
    doc.set("streams", std::move(streams));
    return doc;
}

std::string
tracePackContentHash(const std::string &path)
{
    return TracePackReader(path).contentHash();
}

} // namespace pomtlb

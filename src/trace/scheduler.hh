/**
 * @file
 * Instruction-cadence interleaving of per-core trace streams.
 *
 * The simulation engine proper schedules cores by their simulated
 * clocks; this scheduler provides the simpler Ramulator-style
 * instruction-order merge the paper describes, used by tests,
 * examples and anywhere a single interleaved stream is convenient.
 */

#ifndef POMTLB_TRACE_SCHEDULER_HH
#define POMTLB_TRACE_SCHEDULER_HH

#include <cstddef>
#include <memory>
#include <vector>

#include "common/types.hh"
#include "trace/generator.hh"
#include "trace/record.hh"

namespace pomtlb
{

/** One scheduled reference: which core issues what. */
struct ScheduledRecord
{
    CoreId core = 0;
    TraceRecord record;
    /** The issuing core's cumulative instruction count afterwards. */
    InstCount instCount = 0;
};

/** Merges per-core generators in global instruction order. */
class TraceScheduler
{
  public:
    TraceScheduler() = default;

    /** Attach one core's generator (core ids are assigned in order). */
    void addStream(std::unique_ptr<TraceGenerator> generator);

    /** Number of attached streams. */
    unsigned streamCount() const
    {
        return static_cast<unsigned>(streams.size());
    }

    /**
     * Pop the globally next reference: the core whose cumulative
     * instruction count is lowest issues its pending record.
     */
    ScheduledRecord next();

    /** Access a stream's generator (tests). */
    TraceGenerator &generator(CoreId core) { return *streams[core].gen; }

  private:
    /** Records fetched per TraceGenerator::fill() batch. */
    static constexpr std::size_t batchSize = 256;

    struct Stream
    {
        std::unique_ptr<TraceGenerator> gen;
        /** Per-stream batch buffer (filled via gen->fill()). */
        std::vector<TraceRecord> buffer;
        std::size_t bufferPos = 0;
        TraceRecord pending;
        InstCount instCount = 0;
        bool primed = false;
    };

    void prime(Stream &stream);

    std::vector<Stream> streams;
};

} // namespace pomtlb

#endif // POMTLB_TRACE_SCHEDULER_HH

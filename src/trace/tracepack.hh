/**
 * @file
 * The pomtlb-tracepack-v1 container: mmap-able, chunked, multi-stream
 * trace storage.
 *
 * The legacy POMT format (trace/trace_file.hh) stores one unnamed
 * stream of 13-byte packed records and is replayed by slurping the
 * whole file into a std::vector. A trace pack instead holds one or
 * more *named* streams (one per core or per tenant vCPU) in
 * 64-byte-aligned chunks that a reader maps read-only and decodes
 * straight out of the mapping — no up-front copy, O(1) seek and
 * rewind, and per-chunk checksums so corruption is detected instead
 * of silently simulated.
 *
 * On-disk layout (all integers little-endian):
 *
 *   file header (128 bytes):
 *     magic "POMTPAK1" | u32 version=1 | u32 header_bytes=128
 *     | u32 stream_count | u32 record_bytes=16 | u64 chunk_records
 *     | u64 total_records | u64 index_offset | char[32] content_hash
 *     | zero padding to 128
 *   stream directory (64-byte padded):
 *     magic "PKSD" | u32 dir_bytes | u32 stream_count
 *     | stream_count x (u32 name_len | name bytes)
 *     | char[32] directory digest | zero padding
 *   chunks, each 64-byte aligned:
 *     header (64 bytes): magic "PKCH" | u32 stream_id
 *       | u64 first_record | u32 record_count | u32 payload_bytes
 *       | char[32] chunk digest | zero padding
 *     payload: record_count x 16-byte records, zero-padded to a
 *       64-byte multiple
 *   index footer (at index_offset):
 *     magic "PKIXPKIX" | u32 stream_count | u32 zero
 *     | per stream: u64 chunk_count | u64 record_count
 *       | chunk_count x u64 chunk file offsets
 *     | char[32] index digest
 *
 *   record (16 bytes): u64 vaddr | u32 inst_gap | u8 flags | 3 zero
 *     flags bit 0: write, bit 1: 2 MB page
 *
 * Every digest is 32 lowercase hex characters. Directory and index
 * digests and the file content hash are the streaming 128-bit
 * FNV-1a of common/content_hash.hh; chunk digests are verified on
 * the replay critical path, so they use two 64-bit FNV-1a lanes
 * over 8-byte words instead (see chunkDigest in tracepack.cc). The
 * file content hash chains each chunk's 4 little-endian stream-id
 * bytes and unpadded payload in file order, so it identifies the
 * record content exactly — flipping one record bit changes it,
 * which is what lets sweep-cache job identity include it.
 *
 * Every chunk except a stream's last holds exactly chunk_records
 * records, which is what makes seek O(1): record @c pos of a stream
 * lives in chunk pos / chunk_records at offset pos % chunk_records.
 *
 * Crash discipline mirrors SweepJournal: the writer emits chunks as
 * they fill and finalises the index footer and header *last* (close()
 * rewrites index_offset and content_hash), so a torn file still has
 * index_offset == 0 and the reader falls back to scanning chunks from
 * the data start, keeping every digest-valid prefix chunk and
 * dropping the torn tail. Corruption inside the header or directory
 * is not recoverable and is rejected with a path-named TraceError.
 */

#ifndef POMTLB_TRACE_TRACEPACK_HH
#define POMTLB_TRACE_TRACEPACK_HH

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/content_hash.hh"
#include "common/json.hh"
#include "trace/error.hh"
#include "trace/record.hh"
#include "trace/source.hh"

namespace pomtlb
{

/** Version tag of the on-disk layout this module reads and writes. */
constexpr std::uint32_t tracePackVersion = 1;

/** Schema string emitted by `pomtlb trace info` and the docs. */
inline const char *
tracePackSchema()
{
    return "pomtlb-tracepack-v1";
}

/**
 * Streaming trace-pack writer.
 *
 * Streams are declared up front (the directory is written before any
 * chunk); records are appended per stream and buffered until a chunk
 * fills, so memory stays bounded at streams x chunk_records records
 * no matter how long the trace is. close() flushes partial tail
 * chunks, writes the index footer, and finalises the header — a
 * writer that dies before close() leaves a recoverable torn file.
 */
class TracePackWriter
{
  public:
    /**
     * Create @p path (truncating) with one stream per entry of
     * @p streamNames. Throws TraceError if the file cannot be
     * created or the stream set is empty.
     *
     * @param chunkRecords Records per full chunk; tune down for
     *        fine-grained recovery, up for fewer chunk headers.
     */
    TracePackWriter(const std::string &path,
                    std::vector<std::string> streamNames,
                    std::uint64_t chunkRecords = 4096);
    ~TracePackWriter();

    TracePackWriter(const TracePackWriter &) = delete;
    TracePackWriter &operator=(const TracePackWriter &) = delete;

    /** Append one record to stream @p stream. */
    void append(std::uint32_t stream, const TraceRecord &record);

    /** Append @p n records to stream @p stream. */
    void append(std::uint32_t stream, const TraceRecord *records,
                std::size_t n);

    /**
     * Flush tail chunks, write the index footer, finalise the
     * header. Also run by the destructor; idempotent.
     */
    void close();

    /** Total records appended across all streams. */
    std::uint64_t recordCount() const { return totalRecords; }

    /** The pack content hash; complete only after close(). */
    std::string contentHash() const { return hasher.hexDigest(); }

    const std::string &path() const { return filePath; }

  private:
    void flushChunk(std::uint32_t stream);
    void writeHeader(std::uint64_t indexOffset,
                     const std::string &hashHex);

    struct StreamState
    {
        std::string name;
        std::vector<TraceRecord> pending;
        std::uint64_t records = 0;
        std::vector<std::uint64_t> chunkOffsets;
    };

    std::ofstream out;
    std::string filePath;
    std::vector<StreamState> streams;
    std::uint64_t chunkCapacity;
    std::uint64_t totalRecords = 0;
    std::uint64_t writeOffset = 0;
    ContentHash hasher;
    bool closed = false;
};

/** Per-stream shape reported by TracePackReader. */
struct TracePackStreamInfo
{
    std::string name;          //!< Directory name of the stream.
    std::uint64_t records = 0; //!< Records in the stream.
    std::uint64_t chunks = 0;  //!< Chunks holding those records.
};

/**
 * Zero-copy trace-pack reader.
 *
 * Maps the file read-only (falling back to one heap read if mmap is
 * unavailable) and decodes records straight out of the mapping.
 * Opening a finalised pack is O(index): chunk headers are validated
 * eagerly but payload checksums are verified lazily, on the first
 * read touching each chunk. A pack without a valid index footer — a
 * writer died before close() — is *recovered* by scanning chunks
 * from the data start, verifying every digest, and keeping the valid
 * prefix. Any inconsistency names the path (and chunk) in the
 * TraceError it throws.
 */
class TracePackReader
{
  public:
    /** Open and validate @p path; throws TraceError on bad input. */
    explicit TracePackReader(const std::string &path);
    ~TracePackReader();

    TracePackReader(const TracePackReader &) = delete;
    TracePackReader &operator=(const TracePackReader &) = delete;

    std::size_t streamCount() const { return streams.size(); }

    /** Shape of stream @p index (bounds-checked, throws). */
    const TracePackStreamInfo &stream(std::size_t index) const;

    /** Index of the stream named @p name, or -1 when absent. */
    int streamIndex(const std::string &name) const;

    /** Total records across all streams. */
    std::uint64_t recordCount() const { return totalRecords; }

    /** Records per full chunk. */
    std::uint64_t chunkRecords() const { return chunkCapacity; }

    /** Total chunks across all streams. */
    std::uint64_t chunkCount() const { return chunks.size(); }

    /**
     * Content hash over every retained chunk's stream id + payload.
     * For a finalised pack this equals the header's hash (verified at
     * open); for a recovered pack it is recomputed from the retained
     * prefix.
     */
    const std::string &contentHash() const { return packHash; }

    /** True when the pack had a valid index footer (clean close()). */
    bool finalized() const { return isFinalized; }

    /** True when the pack was rebuilt by the torn-tail chunk scan. */
    bool recovered() const { return !isFinalized; }

    /** Size of the mapped file in bytes. */
    std::uint64_t fileBytes() const { return mapSize; }

    const std::string &path() const { return filePath; }

    /**
     * Decode up to @p n records of stream @p stream starting at
     * record @p pos into @p out; returns the number decoded (short
     * when the stream ends). Verifies each chunk's checksum on first
     * touch; a mismatch throws a TraceError naming path and chunk.
     */
    std::size_t read(std::size_t stream, std::uint64_t pos,
                     TraceRecord *out, std::size_t n) const;

    /**
     * Eagerly verify every retained chunk's checksum (a mismatch
     * throws the same path-and-chunk-named TraceError a lazy first
     * touch would). Sharded runs (EngineConfig::runThreads) call
     * this before fanning a shared reader out to worker threads:
     * lazy verification writes the mutable verified-flag cache, so
     * pre-verifying is what makes concurrent read()s of disjoint
     * streams data-race-free.
     */
    void verifyAllChunks() const;

  private:
    struct ChunkRef
    {
        std::uint64_t payloadOffset = 0; //!< File offset of records.
        std::uint32_t records = 0;
        std::uint32_t fileIndex = 0;     //!< Position in file order.
    };

    const unsigned char *at(std::uint64_t offset) const
    {
        return base + offset;
    }
    void verifyChunk(std::size_t stream, std::size_t chunk) const;
    void openMapping();
    void parseIndexed(std::uint64_t indexOffset,
                      const std::string &headerHash);
    void recoverByScan(std::uint64_t dataStart);
    std::uint64_t parseDirectory();

    std::string filePath;
    const unsigned char *base = nullptr;
    std::uint64_t mapSize = 0;
    bool usedMmap = false;
    std::vector<unsigned char> heapCopy; //!< mmap-fallback storage.

    std::vector<TracePackStreamInfo> streams;
    // chunks[stream][i] — i-th chunk of that stream, plus a flat
    // file-order view for hashing and lazy verification.
    std::vector<std::vector<ChunkRef>> streamChunks;
    std::vector<std::pair<std::uint32_t, ChunkRef>> chunks;
    mutable std::vector<std::uint8_t> chunkVerified;

    std::uint64_t chunkCapacity = 0;
    std::uint64_t totalRecords = 0;
    std::string packHash;
    bool isFinalized = false;
};

/**
 * TraceSource view of one stream of a shared TracePackReader.
 *
 * fill() decodes records directly from the pack mapping into the
 * caller's block. With wrap on (the default, matching FileSource)
 * the stream restarts after its last record so short traces can
 * drive arbitrarily long simulations; an *empty* stream returns 0
 * regardless, so a mis-wired scenario fails loudly instead of
 * spinning.
 */
class PackStreamSource : public TraceSource
{
  public:
    PackStreamSource(std::shared_ptr<TracePackReader> pack,
                     std::size_t stream, bool wrap = true);

    std::size_t fill(TraceRecord *out, std::size_t n) override;
    void rewind() override { position = 0; }
    std::string describe() const override;

    /** Records in the underlying stream (before wrapping). */
    std::uint64_t recordCount() const;

  private:
    std::shared_ptr<TracePackReader> reader;
    std::size_t streamId;
    std::uint64_t position = 0;
    bool wrapAround;
};

/**
 * Stream the records of a legacy POMT trace file through @p sink in
 * fixed-size blocks without buffering the whole file (unlike
 * TraceFileReader's in-memory replay vector — the converter reads
 * each record exactly once). Returns the record count. Throws a
 * path-named, size-reporting TraceError on malformed input.
 */
std::uint64_t
scanLegacyTrace(const std::string &path,
                const std::function<void(const TraceRecord *,
                                         std::size_t)> &sink);

/**
 * Stream the records of a pomtlb-tracetext-v1 text/CSV trace through
 * @p sink. The format is one record per line —
 * `vaddr,inst_gap,rw,page` e.g. `0x1a000,3,R,4K` — with blank lines
 * and `#` comments ignored. Returns the record count. Parse errors
 * throw a TraceError naming the path and line number.
 */
std::uint64_t
scanTextTrace(const std::string &path,
              const std::function<void(const TraceRecord *,
                                       std::size_t)> &sink);

/** Render @p record as one pomtlb-tracetext-v1 line (no newline). */
std::string formatTextRecord(const TraceRecord &record);

/**
 * Open @p path and summarise it as the `pomtlb trace info --json`
 * document (schema pomtlb-tracepack-v1; see docs/trace-format.md).
 * Throws TraceError on unreadable or malformed packs.
 */
JsonValue tracePackInfoJson(const std::string &path);

/**
 * Content hash of the pack at @p path (opens it, so corrupt packs
 * throw). Used to fold trace identity into sweep-cache job hashes.
 */
std::string tracePackContentHash(const std::string &path);

} // namespace pomtlb

#endif // POMTLB_TRACE_TRACEPACK_HH

#include "baseline/shared_l2_scheme.hh"

#include "common/log.hh"

namespace pomtlb
{

SharedL2Scheme::SharedL2Scheme(
    const TlbConfig &config,
    std::vector<std::unique_ptr<PageWalker>> &walkers)
    : sharedTlb(std::make_unique<SetAssocTlb>(config)),
      sharedLatency(config.accessLatency),
      pageWalkers(walkers)
{
}

SchemeResult
SharedL2Scheme::translateMiss(CoreId core, Addr vaddr, PageSize size,
                              VmId vm, ProcessId pid, Cycles now)
{
    simAssert(core < pageWalkers.size(), "core id out of range");
    SchemeResult result;

    const PageNum vpn = pageNumber(vaddr, size);
    result.cycles += sharedLatency;
    const TlbLookupResult hit = sharedTlb->lookup(vpn, size, vm, pid);
    if (hit.hit) {
        result.pfn = hit.pfn;
        missCycles.sample(static_cast<double>(result.cycles));
        return result;
    }

    const WalkResult walk = pageWalkers[core]->walk(
        vaddr, vm, pid, size, now + result.cycles);
    result.cycles += walk.cycles;
    result.pfn = walk.hostPfn;
    result.walked = true;
    ++walks;

    sharedTlb->insert(vpn, size, vm, pid, walk.hostPfn);
    missCycles.sample(static_cast<double>(result.cycles));
    return result;
}

void
SharedL2Scheme::invalidatePage(Addr vaddr, PageSize size, VmId vm,
                               ProcessId pid)
{
    sharedTlb->invalidatePage(pageNumber(vaddr, size), size, vm, pid);
}

void
SharedL2Scheme::invalidateVm(VmId vm)
{
    sharedTlb->invalidateVm(vm);
    for (auto &walker : pageWalkers)
        walker->invalidateVm(vm);
}

void
SharedL2Scheme::resetStats()
{
    sharedTlb->resetStats();
    walks.reset();
    missCycles.reset();
}

} // namespace pomtlb

#include "baseline/shared_l2_scheme.hh"

#include "common/log.hh"
#include "sim/machine.hh"
#include "sim/scheme_registry.hh"

namespace pomtlb
{

SharedL2Scheme::SharedL2Scheme(
    const TlbConfig &config,
    std::vector<std::unique_ptr<PageWalker>> &walkers)
    : sharedTlb(std::make_unique<SetAssocTlb>(config)),
      sharedLatency(config.accessLatency),
      pageWalkers(walkers),
      statGroup("scheme")
{
    statGroup.addCounter("walks", walks);
    statGroup.addCounter("shared_hit_cycles", sharedHitCycles);
    statGroup.addCounter("walk_path_cycles", walkPathCycles);
    statGroup.addAverage("avg_miss_cycles", missCycles);
    statGroup.addDerived("shared_hit_rate",
                         [this] { return sharedHitRate(); });
    statGroup.addHistogram("miss_cycle_hist", missCycleHist);
    statGroup.addChild(sharedTlb->stats());
}

SchemeResult
SharedL2Scheme::translateMiss(CoreId core, Addr vaddr, PageSize size,
                              VmId vm, ProcessId pid, Cycles now)
{
    simAssert(core < pageWalkers.size(), "core id out of range");
    SchemeResult result;

    const PageNum vpn = pageNumber(vaddr, size);
    result.cycles += sharedLatency;
    const TlbLookupResult hit = sharedTlb->lookup(vpn, size, vm, pid);
    if (hit.hit) {
        result.pfn = hit.pfn;
        result.servedBy = ServicePoint::SharedTlb;
        result.probes = 1;
        sharedHitCycles += result.cycles;
        missCycles.sample(static_cast<double>(result.cycles));
        if (StatsRegistry::detail())
            missCycleHist.sample(result.cycles);
        return result;
    }

    const WalkResult walk = pageWalkers[core]->walk(
        vaddr, vm, pid, size, now + result.cycles);
    result.cycles += walk.cycles;
    result.pfn = walk.hostPfn;
    result.walked = true;
    result.servedBy = ServicePoint::PageWalk;
    result.probes = 2;
    result.firstTryServed = false;
    ++walks;
    walkPathCycles += result.cycles;

    sharedTlb->insert(vpn, size, vm, pid, walk.hostPfn);
    missCycles.sample(static_cast<double>(result.cycles));
    if (StatsRegistry::detail())
        missCycleHist.sample(result.cycles);
    return result;
}

std::vector<std::pair<ServicePoint, std::uint64_t>>
SharedL2Scheme::cycleBreakdown() const
{
    return {{ServicePoint::SharedTlb, sharedHitCycles.value()},
            {ServicePoint::PageWalk, walkPathCycles.value()}};
}

void
SharedL2Scheme::invalidatePage(Addr vaddr, PageSize size, VmId vm,
                               ProcessId pid)
{
    sharedTlb->invalidatePage(pageNumber(vaddr, size), size, vm, pid);
}

void
SharedL2Scheme::invalidateVm(VmId vm)
{
    sharedTlb->invalidateVm(vm);
    for (auto &walker : pageWalkers)
        walker->invalidateVm(vm);
}

void
SharedL2Scheme::resetStats()
{
    sharedTlb->resetStats();
    walks.reset();
    sharedHitCycles.reset();
    walkPathCycles.reset();
    missCycles.reset();
    missCycleHist.reset();
}

POMTLB_REGISTER_SCHEME(registerSharedL2, {
    .name = "Shared_L2",
    .description = "one shared SRAM L2 TLB pooling the private L2 "
                   "capacities (Bhattacharjee et al.)",
    .aliases = {"shared", "shared-l2"},
    .rank = 2,
    .legacy = SchemeKind::SharedL2,
    .factory = [](const SystemConfig &config, Machine &machine)
        -> std::unique_ptr<TranslationScheme> {
        // Combine the private L2 TLB capacities into one shared
        // structure; its latency reflects the larger SRAM array plus
        // the interconnect hop (see analysis/cacti.hh for the trend).
        TlbConfig shared = config.l2Tlb;
        shared.name = "shared_l2tlb";
        shared.entries *= config.numCores;
        shared.accessLatency = 24;
        return std::make_unique<SharedL2Scheme>(shared,
                                                machine.walkerPool());
    },
});

} // namespace pomtlb

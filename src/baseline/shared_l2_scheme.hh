/**
 * @file
 * The Shared_L2 baseline (Bhattacharjee, Lustig, Martonosi, HPCA'11):
 * the private per-core L2 TLBs are combined into one large shared
 * SRAM TLB. An L1 TLB miss looks up the shared structure; a miss
 * there starts an ordinary page walk (Section 3.3).
 *
 * The shared structure's access latency is higher than a private L2
 * TLB's because of its capacity and the interconnect hop — the
 * default is derived from the Figure 4 CACTI-style scaling.
 */

#ifndef POMTLB_BASELINE_SHARED_L2_SCHEME_HH
#define POMTLB_BASELINE_SHARED_L2_SCHEME_HH

#include <memory>
#include <vector>

#include "common/config.hh"
#include "common/stats.hh"
#include "pagetable/walker.hh"
#include "sim/scheme.hh"
#include "tlb/tlb.hh"

namespace pomtlb
{

/** One shared SRAM L2 TLB replacing the private L2 TLBs. */
class SharedL2Scheme : public TranslationScheme
{
  public:
    /**
     * @param config    Shared-TLB geometry; entries should already be
     *                  scaled to the combined capacity of the private
     *                  L2 TLBs it replaces.
     * @param walkers   Per-core walkers for shared-TLB misses.
     */
    SharedL2Scheme(const TlbConfig &config,
                   std::vector<std::unique_ptr<PageWalker>> &walkers);

    std::string name() const override { return "Shared_L2"; }

    /** This scheme *is* the second level: cores keep no private L2. */
    bool providesSecondLevel() const override { return true; }

    SchemeResult translateMiss(CoreId core, Addr vaddr, PageSize size,
                               VmId vm, ProcessId pid,
                               Cycles now) override;

    void invalidatePage(Addr vaddr, PageSize size, VmId vm,
                        ProcessId pid) override;
    void invalidateVm(VmId vm) override;
    void resetStats() override;

    const StatGroup *statistics() const override
    {
        return &statGroup;
    }
    std::vector<std::pair<ServicePoint, std::uint64_t>>
    cycleBreakdown() const override;

    /** Hit rate of the shared SRAM structure. */
    double sharedHitRate() const { return sharedTlb->hitRate(); }
    /** Walks performed (shared-TLB misses) since the stats reset. */
    std::uint64_t walkCount() const { return walks.value(); }
    /** Mean scheme cycles per request. */
    double avgMissCycles() const { return missCycles.mean(); }
    /** The shared SRAM structure itself. */
    const SetAssocTlb &tlb() const { return *sharedTlb; }

  private:
    std::unique_ptr<SetAssocTlb> sharedTlb;
    Cycles sharedLatency;
    std::vector<std::unique_ptr<PageWalker>> &pageWalkers;
    Counter walks;
    /** Cycles of requests the shared TLB served. */
    Counter sharedHitCycles;
    /** Cycles of requests that fell through to a page walk. */
    Counter walkPathCycles;
    Average missCycles;
    Log2Histogram missCycleHist;
    StatGroup statGroup;
};

} // namespace pomtlb

#endif // POMTLB_BASELINE_SHARED_L2_SCHEME_HH

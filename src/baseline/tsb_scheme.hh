/**
 * @file
 * The SPARC-style Translation Storage Buffer baseline (Section 3.3).
 *
 * On an L2 TLB miss the hardware traps to software; the handler
 * probes a large software-allocated buffer in main memory. Compared
 * to the POM-TLB the TSB pays: (a) the trap entry/exit cost on every
 * miss, (b) a direct-mapped organisation (more conflict misses), and
 * (c) entries that are not direct guest-VA-to-host-PA translations,
 * so completing one translation takes multiple buffer accesses.
 * The handler's loads are ordinary software loads and therefore do
 * travel through the data caches.
 */

#ifndef POMTLB_BASELINE_TSB_SCHEME_HH
#define POMTLB_BASELINE_TSB_SCHEME_HH

#include <memory>
#include <vector>

#include "cache/hierarchy.hh"
#include "common/config.hh"
#include "common/stats.hh"
#include "pagetable/walker.hh"
#include "sim/scheme.hh"
#include "tlb/entry.hh"

namespace pomtlb
{

/** Software-managed TSB baseline. */
class TsbScheme : public TranslationScheme
{
  public:
    /**
     * @param config    TSB capacity, trap cost, accesses per
     *                  translation.
     * @param base_addr Host-physical base the buffer is allocated at.
     * @param hierarchy Data caches the handler's loads go through.
     * @param walkers   Per-core walkers for TSB misses.
     */
    TsbScheme(const TsbConfig &config, Addr base_addr,
              DataHierarchy &hierarchy,
              std::vector<std::unique_ptr<PageWalker>> &walkers);

    std::string name() const override { return "TSB"; }

    SchemeResult translateMiss(CoreId core, Addr vaddr, PageSize size,
                               VmId vm, ProcessId pid,
                               Cycles now) override;

    void prewarm(CoreId core, Addr vaddr, PageSize size, VmId vm,
                 ProcessId pid, PageNum pfn) override;

    void invalidatePage(Addr vaddr, PageSize size, VmId vm,
                        ProcessId pid) override;
    void invalidateVm(VmId vm) override;
    void resetStats() override;

    const StatGroup *statistics() const override
    {
        return &statGroup;
    }
    std::vector<std::pair<ServicePoint, std::uint64_t>>
    cycleBreakdown() const override;

    /** Fraction of requests the buffer completed without a walk. */
    double tsbHitRate() const;
    /** Walks performed (buffer misses) since the stats reset. */
    std::uint64_t walkCount() const { return walks.value(); }
    /** Mean scheme cycles per request. */
    double avgMissCycles() const { return missCycles.mean(); }

  private:
    /** Index into one of the buffer's stages for @p vpn. */
    std::uint64_t indexOf(PageNum vpn, VmId vm, ProcessId pid) const;
    /** Host-physical address of a stage slot (for cache timing). */
    Addr slotAddr(unsigned stage, std::uint64_t index) const;

    TsbConfig tsbConfig;
    Addr baseAddr;
    DataHierarchy &dataHierarchy;
    std::vector<std::unique_ptr<PageWalker>> &pageWalkers;

    /** Entries per stage (direct-mapped). */
    std::uint64_t stageEntries;
    /**
     * The buffer content, one direct-mapped array per stage; a
     * translation completes only when every stage matches, modelling
     * the multi-access indirect format of real TSB entries.
     */
    std::vector<std::vector<TlbEntry>> stages;

    Counter hits;
    Counter misses;
    Counter walks;
    /** Cycles of requests the buffer itself completed. */
    Counter tsbHitCycles;
    /** Cycles of requests that fell through to a page walk. */
    Counter walkPathCycles;
    Average missCycles;
    Log2Histogram missCycleHist;
    StatGroup statGroup;
};

} // namespace pomtlb

#endif // POMTLB_BASELINE_TSB_SCHEME_HH

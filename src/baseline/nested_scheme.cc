#include "baseline/nested_scheme.hh"

#include "common/log.hh"

namespace pomtlb
{

NestedWalkScheme::NestedWalkScheme(
    std::vector<std::unique_ptr<PageWalker>> &walkers)
    : pageWalkers(walkers)
{
}

SchemeResult
NestedWalkScheme::translateMiss(CoreId core, Addr vaddr, PageSize size,
                                VmId vm, ProcessId pid, Cycles now)
{
    simAssert(core < pageWalkers.size(), "core id out of range");
    const WalkResult walk =
        pageWalkers[core]->walk(vaddr, vm, pid, size, now);

    ++walks;
    walkCycles.sample(static_cast<double>(walk.cycles));
    walkRefs.sample(static_cast<double>(walk.memRefs));

    SchemeResult result;
    result.cycles = walk.cycles;
    result.pfn = walk.hostPfn;
    result.walked = true;
    return result;
}

void
NestedWalkScheme::invalidateVm(VmId vm)
{
    for (auto &walker : pageWalkers)
        walker->invalidateVm(vm);
}

void
NestedWalkScheme::resetStats()
{
    walks.reset();
    walkCycles.reset();
    walkRefs.reset();
}

} // namespace pomtlb

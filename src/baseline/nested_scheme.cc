#include "baseline/nested_scheme.hh"

#include "common/log.hh"
#include "sim/machine.hh"
#include "sim/scheme_registry.hh"

namespace pomtlb
{

NestedWalkScheme::NestedWalkScheme(
    std::vector<std::unique_ptr<PageWalker>> &walkers)
    : pageWalkers(walkers), statGroup("scheme")
{
    statGroup.addCounter("walks", walks);
    statGroup.addCounter("walk_cycles", walkCyclesTotal);
    statGroup.addAverage("avg_walk_cycles", walkCycles);
    statGroup.addAverage("avg_walk_refs", walkRefs);
    statGroup.addHistogram("walk_cycle_hist", walkCycleHist);
}

SchemeResult
NestedWalkScheme::translateMiss(CoreId core, Addr vaddr, PageSize size,
                                VmId vm, ProcessId pid, Cycles now)
{
    simAssert(core < pageWalkers.size(), "core id out of range");
    const WalkResult walk =
        pageWalkers[core]->walk(vaddr, vm, pid, size, now);

    ++walks;
    walkCyclesTotal += walk.cycles;
    walkCycles.sample(static_cast<double>(walk.cycles));
    walkRefs.sample(static_cast<double>(walk.memRefs));
    if (StatsRegistry::detail())
        walkCycleHist.sample(walk.cycles);

    SchemeResult result;
    result.cycles = walk.cycles;
    result.pfn = walk.hostPfn;
    result.walked = true;
    result.servedBy = ServicePoint::PageWalk;
    result.probes = 1;
    return result;
}

std::vector<std::pair<ServicePoint, std::uint64_t>>
NestedWalkScheme::cycleBreakdown() const
{
    return {{ServicePoint::PageWalk, walkCyclesTotal.value()}};
}

void
NestedWalkScheme::invalidateVm(VmId vm)
{
    for (auto &walker : pageWalkers)
        walker->invalidateVm(vm);
}

void
NestedWalkScheme::resetStats()
{
    walks.reset();
    walkCyclesTotal.reset();
    walkCycles.reset();
    walkRefs.reset();
    walkCycleHist.reset();
}

POMTLB_REGISTER_SCHEME(registerNestedWalk, {
    .name = "Baseline",
    .description = "conventional 2D nested page walk with page-table "
                   "structure caches",
    .aliases = {"baseline", "nested"},
    .rank = 0,
    .legacy = SchemeKind::NestedWalk,
    .factory = [](const SystemConfig &, Machine &machine)
        -> std::unique_ptr<TranslationScheme> {
        return std::make_unique<NestedWalkScheme>(machine.walkerPool());
    },
});

} // namespace pomtlb

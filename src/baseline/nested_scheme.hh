/**
 * @file
 * The baseline translation scheme: an L2 TLB miss starts a page walk
 * (2D nested in virtualized mode), accelerated by the per-core
 * page-structure caches and by PTE caching in the data caches —
 * i.e., what a Skylake-class MMU does (Section 3's baseline).
 */

#ifndef POMTLB_BASELINE_NESTED_SCHEME_HH
#define POMTLB_BASELINE_NESTED_SCHEME_HH

#include <memory>
#include <vector>

#include "common/stats.hh"
#include "pagetable/walker.hh"
#include "sim/scheme.hh"

namespace pomtlb
{

/** Conventional nested-page-walk MMU. */
class NestedWalkScheme : public TranslationScheme
{
  public:
    explicit NestedWalkScheme(
        std::vector<std::unique_ptr<PageWalker>> &walkers);

    std::string name() const override { return "Baseline"; }

    SchemeResult translateMiss(CoreId core, Addr vaddr, PageSize size,
                               VmId vm, ProcessId pid,
                               Cycles now) override;

    void invalidateVm(VmId vm) override;
    void resetStats() override;

    const StatGroup *statistics() const override
    {
        return &statGroup;
    }
    std::vector<std::pair<ServicePoint, std::uint64_t>>
    cycleBreakdown() const override;

    /** Walks performed since the last stats reset. */
    std::uint64_t walkCount() const { return walks.value(); }
    /** Mean cycles per walk. */
    double avgWalkCycles() const { return walkCycles.mean(); }
    /** Mean PTE memory references per walk. */
    double avgWalkRefs() const { return walkRefs.mean(); }

  private:
    std::vector<std::unique_ptr<PageWalker>> &pageWalkers;
    Counter walks;
    Counter walkCyclesTotal;
    Average walkCycles;
    Average walkRefs;
    Log2Histogram walkCycleHist;
    StatGroup statGroup;
};

} // namespace pomtlb

#endif // POMTLB_BASELINE_NESTED_SCHEME_HH

#include "baseline/tsb_scheme.hh"

#include "common/bitutil.hh"
#include "common/log.hh"
#include "pagetable/memory_map.hh"
#include "sim/machine.hh"
#include "sim/scheme_registry.hh"

namespace pomtlb
{

TsbScheme::TsbScheme(const TsbConfig &config, Addr base_addr,
                     DataHierarchy &hierarchy,
                     std::vector<std::unique_ptr<PageWalker>> &walkers)
    : tsbConfig(config),
      baseAddr(base_addr),
      dataHierarchy(hierarchy),
      pageWalkers(walkers),
      statGroup("scheme")
{
    statGroup.addCounter("hits", hits);
    statGroup.addCounter("misses", misses);
    statGroup.addCounter("walks", walks);
    statGroup.addCounter("tsb_hit_cycles", tsbHitCycles);
    statGroup.addCounter("walk_path_cycles", walkPathCycles);
    statGroup.addAverage("avg_miss_cycles", missCycles);
    statGroup.addDerived("tsb_hit_rate", [this] { return tsbHitRate(); });
    statGroup.addHistogram("miss_cycle_hist", missCycleHist);

    tsbConfig.validate();
    const std::uint64_t total_entries =
        config.capacityBytes / config.entryBytes;
    stageEntries = total_entries / config.accessesPerTranslation;
    simAssert(isPowerOfTwo(stageEntries),
              "TSB stage entry count must be a power of two");
    stages.resize(config.accessesPerTranslation);
    for (auto &stage : stages)
        stage.resize(stageEntries);
}

std::uint64_t
TsbScheme::indexOf(PageNum vpn, VmId vm, ProcessId pid) const
{
    // SPARC TSB hashing includes the context number: the OS spreads
    // address spaces across the buffer, so rate-mode copies with
    // identical VA layouts do not collide.
    return (vpn ^ vm ^ (static_cast<std::uint64_t>(pid) * 0x9e3779b9)) &
           (stageEntries - 1);
}

Addr
TsbScheme::slotAddr(unsigned stage, std::uint64_t index) const
{
    return baseAddr +
           (static_cast<Addr>(stage) * stageEntries + index) *
               tsbConfig.entryBytes;
}

SchemeResult
TsbScheme::translateMiss(CoreId core, Addr vaddr, PageSize size,
                         VmId vm, ProcessId pid, Cycles now)
{
    simAssert(core < pageWalkers.size(), "core id out of range");
    SchemeResult result;

    // Trap into the software handler.
    result.cycles += tsbConfig.trapCycles;

    const PageNum vpn = pageNumber(vaddr, size);
    const std::uint64_t index = indexOf(vpn, vm, pid);

    // The handler performs one dependent load per stage; every stage
    // must match for the translation to complete.
    bool all_match = true;
    PageNum pfn = 0;
    for (unsigned stage = 0; stage < stages.size(); ++stage) {
        const HierarchyAccessResult load = dataHierarchy.accessData(
            core, slotAddr(stage, index), AccessType::Read,
            now + result.cycles);
        result.cycles += load.latency;
        ++result.probes;

        const TlbEntry &entry = stages[stage][index];
        if (!entry.matches(vpn, vm, pid, size)) {
            all_match = false;
            // The handler knows after this load that the walk is
            // needed; remaining stage loads are skipped.
            break;
        }
        pfn = entry.pfn;
    }

    if (all_match) {
        ++hits;
        result.pfn = pfn;
        result.servedBy = ServicePoint::TsbBuffer;
        tsbHitCycles += result.cycles;
        missCycles.sample(static_cast<double>(result.cycles));
        if (StatsRegistry::detail())
            missCycleHist.sample(result.cycles);
        return result;
    }

    ++misses;
    const WalkResult walk = pageWalkers[core]->walk(
        vaddr, vm, pid, size, now + result.cycles);
    result.cycles += walk.cycles;
    result.pfn = walk.hostPfn;
    result.walked = true;
    result.servedBy = ServicePoint::PageWalk;
    ++result.probes;
    result.firstTryServed = false;
    ++walks;

    // The handler refills the buffer (direct-mapped overwrite); the
    // stores are off the translation's critical path.
    for (unsigned stage = 0; stage < stages.size(); ++stage) {
        TlbEntry &entry = stages[stage][index];
        entry.valid = true;
        entry.vmId = vm;
        entry.pid = pid;
        entry.vpn = vpn;
        entry.pfn = walk.hostPfn;
        entry.pageSize = size;
        dataHierarchy.accessData(core, slotAddr(stage, index),
                                 AccessType::Write,
                                 now + result.cycles);
    }

    walkPathCycles += result.cycles;
    missCycles.sample(static_cast<double>(result.cycles));
    if (StatsRegistry::detail())
        missCycleHist.sample(result.cycles);
    return result;
}

std::vector<std::pair<ServicePoint, std::uint64_t>>
TsbScheme::cycleBreakdown() const
{
    return {{ServicePoint::TsbBuffer, tsbHitCycles.value()},
            {ServicePoint::PageWalk, walkPathCycles.value()}};
}

void
TsbScheme::prewarm(CoreId, Addr vaddr, PageSize size, VmId vm,
                   ProcessId pid, PageNum pfn)
{
    const PageNum vpn = pageNumber(vaddr, size);
    const std::uint64_t index = indexOf(vpn, vm, pid);
    for (auto &stage : stages) {
        TlbEntry &entry = stage[index];
        entry.valid = true;
        entry.vmId = vm;
        entry.pid = pid;
        entry.vpn = vpn;
        entry.pfn = pfn;
        entry.pageSize = size;
    }
}

void
TsbScheme::invalidatePage(Addr vaddr, PageSize size, VmId vm,
                          ProcessId pid)
{
    const PageNum vpn = pageNumber(vaddr, size);
    const std::uint64_t index = indexOf(vpn, vm, pid);
    for (auto &stage : stages) {
        TlbEntry &entry = stage[index];
        if (entry.matches(vpn, vm, pid, size))
            entry.valid = false;
    }
}

void
TsbScheme::invalidateVm(VmId vm)
{
    for (auto &stage : stages) {
        for (auto &entry : stage) {
            if (entry.valid && entry.vmId == vm)
                entry.valid = false;
        }
    }
    for (auto &walker : pageWalkers)
        walker->invalidateVm(vm);
}

void
TsbScheme::resetStats()
{
    hits.reset();
    misses.reset();
    walks.reset();
    tsbHitCycles.reset();
    walkPathCycles.reset();
    missCycles.reset();
    missCycleHist.reset();
}

double
TsbScheme::tsbHitRate() const
{
    const std::uint64_t total = hits.value() + misses.value();
    return total ? static_cast<double>(hits.value()) / total : 0.0;
}

POMTLB_REGISTER_SCHEME(registerTsb, {
    .name = "TSB",
    .description = "SPARC-style software-managed translation storage "
                   "buffer in main memory",
    .aliases = {"tsb"},
    .rank = 3,
    .legacy = SchemeKind::Tsb,
    .factory = [](const SystemConfig &config, Machine &machine)
        -> std::unique_ptr<TranslationScheme> {
        // The software buffer lives at the top of host-physical
        // memory, far above anything the frame allocator hands out.
        MemoryMapConfig defaults;
        const Addr tsb_base =
            defaults.hostPhysBytes - config.tsb.capacityBytes;
        return std::make_unique<TsbScheme>(config.tsb, tsb_base,
                                           machine.hierarchy(),
                                           machine.walkerPool());
    },
});

} // namespace pomtlb

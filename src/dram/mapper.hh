/**
 * @file
 * Physical-address to DRAM coordinate mapping.
 *
 * The mapper uses an open-page-friendly layout: consecutive physical
 * addresses fill a row before moving to the next channel/bank, which
 * is what gives the POM-TLB its high row-buffer hit rate for
 * spatially-local translation streams (Section 4.4).
 *
 *   addr bits (low to high):
 *     [burst offset][column][channel][bank][row]
 */

#ifndef POMTLB_DRAM_MAPPER_HH
#define POMTLB_DRAM_MAPPER_HH

#include <cstdint>

#include "common/config.hh"
#include "common/types.hh"

namespace pomtlb
{

/** DRAM coordinates a physical address decodes to. */
struct DramCoord
{
    unsigned channel;
    unsigned bank;
    std::uint64_t row;
    std::uint64_t column;

    bool
    operator==(const DramCoord &other) const
    {
        return channel == other.channel && bank == other.bank &&
               row == other.row && column == other.column;
    }
};

/** Decodes physical addresses into channel/bank/row/column. */
class DramAddressMapper
{
  public:
    explicit DramAddressMapper(const DramConfig &config);

    /** Decode @p addr into DRAM coordinates. */
    DramCoord decode(Addr addr) const;

    /** Recompose coordinates into the canonical address (testing). */
    Addr encode(const DramCoord &coord) const;

    unsigned channelBits() const { return channel_bits; }
    unsigned bankBits() const { return bank_bits; }
    unsigned columnBits() const { return column_bits; }
    unsigned offsetBits() const { return offset_bits; }

  private:
    unsigned offset_bits;
    unsigned column_bits;
    unsigned channel_bits;
    unsigned bank_bits;
};

} // namespace pomtlb

#endif // POMTLB_DRAM_MAPPER_HH

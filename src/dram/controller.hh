/**
 * @file
 * A Ramulator-style (cycle-approximate) open-page DRAM controller.
 *
 * Models per-bank row-buffer state and occupancy, per-channel data-bus
 * serialisation, and the tCAS/tRCD/tRP timing triplet from Table 1.
 * One instance models the die-stacked channel that houses the POM-TLB;
 * another models off-chip DDR4 main memory.
 */

#ifndef POMTLB_DRAM_CONTROLLER_HH
#define POMTLB_DRAM_CONTROLLER_HH

#include <array>
#include <vector>

#include "common/config.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "dram/bank.hh"
#include "dram/mapper.hh"

namespace pomtlb
{

/** Result of one DRAM access as seen by the requester. */
struct DramAccessResult
{
    /** Total core cycles from issue to data return. */
    Cycles latency;
    /** Row-buffer outcome at the target bank. */
    RowBufferOutcome outcome;
};

/** Open-page DRAM controller with per-bank state. */
class DramController
{
  public:
    explicit DramController(const DramConfig &config);

    /**
     * Perform a burst access to @p addr issued at core-cycle @p now.
     * Advances the internal bank/bus timeline.
     */
    DramAccessResult access(Addr addr, Cycles now);

    /** Precharge every bank (cold-start/epoch boundary helper). */
    void prechargeAll();

    /** Refreshes performed so far (0 unless refresh is enabled). */
    std::uint64_t refreshCount() const { return refreshes.value(); }

    /** Reset all statistics (bank state is preserved). */
    void resetStats();

    /** Row-buffer hit fraction over all accesses so far. */
    double rowBufferHitRate() const;

    std::uint64_t accessCount() const { return accesses.value(); }
    std::uint64_t rowHits() const { return rbHits.value(); }
    std::uint64_t rowClosed() const { return rbClosed.value(); }
    std::uint64_t rowConflicts() const { return rbConflicts.value(); }
    double averageLatency() const { return avgLatency.mean(); }

    const StatGroup &stats() const { return statGroup; }
    const DramConfig &config() const { return dramConfig; }
    const DramAddressMapper &mapper() const { return addressMapper; }

  private:
    DramConfig dramConfig;
    DramAddressMapper addressMapper;
    /** banks[channel * numBanks + bank]. */
    std::vector<Bank> banks;
    /** Per-channel time the data bus frees up (bus cycles). */
    std::vector<double> channelBusyUntil;
    /** Per-channel next scheduled refresh (bus cycles). */
    std::vector<double> nextRefreshAt;
    /** Per-channel ring of the last four activation times. */
    std::vector<std::array<double, 4>> activationWindow;
    std::vector<unsigned> activationCursor;

    /**
     * Enforce tFAW for an activation at @p start on @p channel;
     * returns the (possibly delayed) activation time and records it.
     */
    double constrainActivation(unsigned channel, double start);

    /**
     * Apply any refreshes due at @p now_bus on @p channel; returns
     * the earliest time the access may begin (>= now_bus).
     */
    double applyRefresh(unsigned channel, double now_bus);

    Counter accesses;
    Counter refreshes;
    Counter rbHits;
    Counter rbClosed;
    Counter rbConflicts;
    Average avgLatency;
    Average avgQueueDelay;
    StatGroup statGroup;
};

} // namespace pomtlb

#endif // POMTLB_DRAM_CONTROLLER_HH

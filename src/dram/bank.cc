#include "dram/bank.hh"

#include <algorithm>

namespace pomtlb
{

Bank::AccessTiming
Bank::access(double now, std::uint64_t row, unsigned t_cas,
             unsigned t_rcd, unsigned t_rp)
{
    AccessTiming timing;
    const double start = std::max(now, ready_at);
    timing.queueDelay = start - now;

    double prep;
    if (open_row == row) {
        timing.outcome = RowBufferOutcome::Hit;
        prep = 0.0;
    } else if (open_row == noRow) {
        timing.outcome = RowBufferOutcome::Closed;
        prep = t_rcd;
    } else {
        timing.outcome = RowBufferOutcome::Conflict;
        prep = static_cast<double>(t_rp) + t_rcd;
    }

    open_row = row;
    timing.dataReady = start + prep + t_cas;
    ready_at = timing.dataReady;
    return timing;
}

} // namespace pomtlb

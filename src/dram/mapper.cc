#include "dram/mapper.hh"

#include "common/bitutil.hh"

namespace pomtlb
{

DramAddressMapper::DramAddressMapper(const DramConfig &config)
    : offset_bits(floorLog2(config.burstBytes)),
      column_bits(floorLog2(config.rowBufferBytes / config.burstBytes)),
      channel_bits(floorLog2(config.numChannels)),
      bank_bits(floorLog2(config.numBanks))
{
}

DramCoord
DramAddressMapper::decode(Addr addr) const
{
    DramCoord coord;
    unsigned shift = offset_bits;
    coord.column = extractBits(addr, shift, column_bits);
    shift += column_bits;
    coord.channel = static_cast<unsigned>(
        extractBits(addr, shift, channel_bits));
    shift += channel_bits;
    coord.bank = static_cast<unsigned>(extractBits(addr, shift, bank_bits));
    shift += bank_bits;
    coord.row = addr >> shift;
    return coord;
}

Addr
DramAddressMapper::encode(const DramCoord &coord) const
{
    Addr addr = coord.row;
    addr = (addr << bank_bits) | coord.bank;
    addr = (addr << channel_bits) | coord.channel;
    addr = (addr << column_bits) | coord.column;
    addr <<= offset_bits;
    return addr;
}

} // namespace pomtlb

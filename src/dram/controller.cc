#include "dram/controller.hh"

#include <algorithm>
#include <cmath>

#include "common/log.hh"

namespace pomtlb
{

DramController::DramController(const DramConfig &config)
    : dramConfig(config),
      addressMapper(config),
      banks(static_cast<std::size_t>(config.numChannels) * config.numBanks),
      channelBusyUntil(config.numChannels, 0.0),
      nextRefreshAt(config.numChannels,
                    static_cast<double>(config.refreshIntervalBusCycles)),
      activationWindow(config.numChannels,
                       {-1e18, -1e18, -1e18, -1e18}),
      activationCursor(config.numChannels, 0),
      statGroup(config.name)
{
    dramConfig.validate();
    statGroup.addCounter("accesses", accesses);
    statGroup.addCounter("refreshes", refreshes);
    statGroup.addCounter("row_hits", rbHits);
    statGroup.addCounter("row_closed", rbClosed);
    statGroup.addCounter("row_conflicts", rbConflicts);
    statGroup.addAverage("avg_latency_core_cycles", avgLatency);
    statGroup.addAverage("avg_queue_delay_bus_cycles", avgQueueDelay);
    statGroup.addDerived("row_buffer_hit_rate",
                         [this] { return rowBufferHitRate(); });
}

DramAccessResult
DramController::access(Addr addr, Cycles now)
{
    const DramCoord coord = addressMapper.decode(addr);
    simAssert(coord.channel < dramConfig.numChannels,
              "dram channel out of range");

    const double bus_per_core = dramConfig.busFreqGhz /
                                dramConfig.coreFreqGhz;
    double now_bus = static_cast<double>(now) * bus_per_core;

    // Refresh stalls are real service time, not queueing: they apply
    // before the bounded-queue clamp.
    const double original_now = now_bus;
    now_bus = applyRefresh(coord.channel, now_bus);

    Bank &bank = banks[static_cast<std::size_t>(coord.channel) *
                           dramConfig.numBanks +
                       coord.bank];

    // Bank preparation (precharge/activate/CAS) proceeds in parallel
    // across banks; only the data burst serializes on the channel's
    // shared data bus. The wait on prior bank state is clamped to the
    // bounded controller queue depth.
    // Row activations (anything but a row-buffer hit) are subject
    // to the four-activation window when tFAW is configured.
    double bank_now = now_bus;
    if (dramConfig.tFaw > 0 && bank.openRow() != coord.row)
        bank_now = constrainActivation(coord.channel, bank_now);

    Bank::AccessTiming timing = bank.access(
        bank_now, coord.row, dramConfig.tCas, dramConfig.tRcd,
        dramConfig.tRp);
    const double max_wait = dramConfig.maxQueueBusCycles;
    if (timing.queueDelay > max_wait) {
        timing.dataReady -= timing.queueDelay - max_wait;
        timing.queueDelay = max_wait;
        bank.setReadyAt(timing.dataReady);
    }

    double transfer_start = std::max(
        timing.dataReady, channelBusyUntil[coord.channel]);
    if (transfer_start - timing.dataReady > max_wait)
        transfer_start = timing.dataReady + max_wait;
    const double finish = transfer_start + dramConfig.burstBusCycles();
    channelBusyUntil[coord.channel] = finish;
    bank.occupyUntil(finish);

    const double bus_latency = finish - original_now;
    DramAccessResult result;
    result.latency = dramConfig.toCoreCycles(bus_latency);
    result.outcome = timing.outcome;

    ++accesses;
    switch (timing.outcome) {
      case RowBufferOutcome::Hit:
        ++rbHits;
        break;
      case RowBufferOutcome::Closed:
        ++rbClosed;
        break;
      case RowBufferOutcome::Conflict:
        ++rbConflicts;
        break;
    }
    avgLatency.sample(static_cast<double>(result.latency));
    avgQueueDelay.sample(timing.queueDelay +
                         (transfer_start - timing.dataReady));

    return result;
}

double
DramController::constrainActivation(unsigned channel, double start)
{
    // The new activation must be at least tFAW after the
    // fourth-most-recent one; the ring buffer holds exactly four.
    auto &window = activationWindow[channel];
    unsigned &cursor = activationCursor[channel];
    const double oldest = window[cursor];
    double when = start;
    if (when < oldest + dramConfig.tFaw)
        when = oldest + dramConfig.tFaw;
    window[cursor] = when;
    cursor = (cursor + 1) % window.size();
    return when;
}

double
DramController::applyRefresh(unsigned channel, double now_bus)
{
    if (!dramConfig.refreshEnabled)
        return now_bus;

    const double interval = dramConfig.refreshIntervalBusCycles;
    const double t_rfc = dramConfig.refreshBusCycles;
    double earliest = now_bus;
    // Catch up on every refresh due before this access; each closes
    // all of the channel's rows and blocks it for tRFC.
    while (nextRefreshAt[channel] <= now_bus) {
        const double start = nextRefreshAt[channel];
        for (unsigned b = 0; b < dramConfig.numBanks; ++b) {
            Bank &bank = banks[static_cast<std::size_t>(channel) *
                                   dramConfig.numBanks +
                               b];
            bank.precharge();
            bank.occupyUntil(start + t_rfc);
        }
        if (now_bus < start + t_rfc)
            earliest = start + t_rfc;
        nextRefreshAt[channel] += interval;
        ++refreshes;
    }
    return earliest;
}

void
DramController::prechargeAll()
{
    for (auto &bank : banks)
        bank.precharge();
}

void
DramController::resetStats()
{
    accesses.reset();
    rbHits.reset();
    rbClosed.reset();
    rbConflicts.reset();
    avgLatency.reset();
    avgQueueDelay.reset();
}

double
DramController::rowBufferHitRate() const
{
    const std::uint64_t total = accesses.value();
    if (total == 0)
        return 0.0;
    return static_cast<double>(rbHits.value()) /
           static_cast<double>(total);
}

} // namespace pomtlb

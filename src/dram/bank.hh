/**
 * @file
 * One DRAM bank: open-row state plus a ready-time for simple queuing.
 *
 * The bank computes when its data is ready (activate/precharge plus
 * CAS); the controller separately serializes the data burst on the
 * channel bus, so bank preparation in different banks overlaps — the
 * bank-level parallelism Section 2.2 relies on.
 */

#ifndef POMTLB_DRAM_BANK_HH
#define POMTLB_DRAM_BANK_HH

#include <cstdint>

namespace pomtlb
{

/** Outcome of a DRAM access relative to the bank's row buffer. */
enum class RowBufferOutcome : std::uint8_t
{
    /** Requested row was already open. */
    Hit = 0,
    /** Bank was precharged (no row open). */
    Closed = 1,
    /** A different row was open and had to be precharged first. */
    Conflict = 2,
};

/** Open-page bank state machine. */
class Bank
{
  public:
    /** Result of timing one access against the bank. */
    struct AccessTiming
    {
        RowBufferOutcome outcome;
        /** Bus-cycle time the column data is ready for transfer. */
        double dataReady;
        /** Bus cycles the request waited for the bank. */
        double queueDelay;
    };

    /**
     * Time an access to @p row arriving at bus time @p now. The bank
     * is left busy until the caller extends it via occupyUntil() once
     * the burst completes.
     *
     * @param now   Arrival time in bus cycles.
     * @param row   Target row index.
     * @param t_cas CAS latency (bus cycles).
     * @param t_rcd RAS-to-CAS delay (bus cycles).
     * @param t_rp  Precharge time (bus cycles).
     */
    AccessTiming access(double now, std::uint64_t row, unsigned t_cas,
                        unsigned t_rcd, unsigned t_rp);

    /** Extend the bank's busy window (data burst completion). */
    void
    occupyUntil(double time)
    {
        if (time > ready_at)
            ready_at = time;
    }

    /**
     * Rewind the busy window (controller queue-clamping: the bank
     * timeline must not ratchet ahead of the clamped request time).
     */
    void setReadyAt(double time) { ready_at = time; }

    /** Close the open row (used by refresh-like maintenance). */
    void precharge() { open_row = noRow; }

    bool hasOpenRow() const { return open_row != noRow; }
    std::uint64_t openRow() const { return open_row; }
    double readyAt() const { return ready_at; }

  private:
    static constexpr std::uint64_t noRow = ~std::uint64_t{0};

    std::uint64_t open_row = noRow;
    double ready_at = 0.0;
};

} // namespace pomtlb

#endif // POMTLB_DRAM_BANK_HH

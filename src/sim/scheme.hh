/**
 * @file
 * The translation-scheme plug-in interface.
 *
 * The per-core MMU front end (L1 TLBs, optional private L2 TLB) is
 * common to every design the paper evaluates; what differs is what
 * happens after the last private SRAM TLB misses. Each scheme —
 * baseline nested walk, POM-TLB, Shared_L2, TSB, plus the contender
 * zoo in src/schemes/ — implements that step, so experiments swap a
 * single object. Schemes are constructed by name through the
 * string-keyed factory in sim/scheme_registry.hh; SchemeKind survives
 * only as a compatibility shim over the registry's canonical names.
 */

#ifndef POMTLB_SIM_SCHEME_HH
#define POMTLB_SIM_SCHEME_HH

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hh"

namespace pomtlb
{

class StatGroup;

/**
 * Legacy identifier for the paper's four schemes. New code should
 * select schemes by registry name (sim/scheme_registry.hh); this enum
 * remains for the original four so existing call sites keep
 * compiling, and maps 1:1 onto registry entries that declare a
 * `legacy` kind.
 *
 * @deprecated Select schemes by registry name. The enum and every
 *             overload taking it are a compatibility shim for
 *             out-of-tree callers; in-tree code must not use them
 *             (enforced by tests/test_scheme_api_migration.cc), and
 *             the shim will be removed in a future major version.
 */
enum class SchemeKind : std::uint8_t
{
    /** Conventional 2D nested page walk with PSCs (baseline). */
    NestedWalk = 0,
    /** The paper's part-of-memory L3 TLB. */
    PomTlb = 1,
    /** Shared SRAM L2 TLB (Bhattacharjee et al.). */
    SharedL2 = 2,
    /** SPARC-style software-managed translation storage buffer. */
    Tsb = 3,
};

/**
 * Human-readable scheme name — identical to the scheme's canonical
 * registry name, so JSON documents written through either path match.
 *
 * @deprecated Part of the SchemeKind compatibility shim; use the
 *             registry name directly.
 */
const char *schemeKindName(SchemeKind kind);

/**
 * The four schemes the paper evaluates, in Figure 8 order. Registry
 * contenders are NOT included; iterate SchemeRegistry::global()
 * names() for the full zoo.
 *
 * @deprecated Part of the SchemeKind compatibility shim; iterate
 *             registry names (or name the four schemes explicitly).
 */
const std::vector<SchemeKind> &allSchemeKinds();

/**
 * Parse a scheme name as the CLI and sweep specs accept it:
 * "baseline"/"nested", "pom"/"pom-tlb", "shared"/"shared-l2", "tsb",
 * or the display names schemeKindName() produces. Resolution goes
 * through the scheme registry (canonical names + aliases); the empty
 * optional means the name is unknown *or* names a registry scheme
 * with no legacy SchemeKind.
 *
 * @deprecated Part of the SchemeKind compatibility shim; resolve
 *             names through SchemeRegistry::global().find() instead.
 */
std::optional<SchemeKind> schemeKindFromName(const std::string &name);

/**
 * Where one translation was finally served from, across every scheme
 * and TLB level — the serving-level axis of the observability layer
 * (trace events and the `cycle_breakdown` of `pomtlb-stats-v1`).
 */
enum class ServicePoint : std::uint8_t
{
    /** Private L1 SRAM TLB hit (never reaches a scheme). */
    SramL1 = 0,
    /** Private L2 SRAM TLB hit (never reaches a scheme). */
    SramL2 = 1,
    /** POM-TLB set line found in the core's L2 data cache. */
    CacheL2D = 2,
    /** POM-TLB set line found in the shared L3 data cache. */
    CacheL3D = 3,
    /** POM-TLB entry fetched from the die-stacked DRAM partition. */
    PomDram = 4,
    /** Shared SRAM L2 TLB hit (the Shared_L2 baseline). */
    SharedTlb = 5,
    /** TSB software-buffer hit (the TSB baseline). */
    TsbBuffer = 6,
    /** Full page walk (any scheme's fallback, and the baseline). */
    PageWalk = 7,
    /** Coalesced-entry shared TLB hit (the Coalesced contender). */
    CoalescedTlb = 8,
    /** Victima translation found in a core's L2 data cache. */
    VictimaL2D = 9,
    /** Victima translation found in the shared L3 data cache. */
    VictimaL3D = 10,
};

/** Stable snake_case name of @p point, as emitted in JSON. */
const char *servicePointName(ServicePoint point);

/** Every ServicePoint, in enum order. */
const std::vector<ServicePoint> &allServicePoints();

/**
 * Parse a servicePointName() string back to its ServicePoint (used
 * when reading `cycle_breakdown` objects). Empty optional on anything
 * else.
 */
std::optional<ServicePoint>
servicePointFromName(const std::string &name);

/** What a scheme reports back for one post-L2-TLB-miss translation. */
struct SchemeResult
{
    /** Cycles from the L2 TLB miss to translation availability. */
    Cycles cycles = 0;
    /** The resolved host-physical frame number. */
    PageNum pfn = 0;
    /** Whether a full page walk ended up being required. */
    bool walked = false;
    /** Which structure finally produced the translation. */
    ServicePoint servedBy = ServicePoint::PageWalk;
    /** Structure probes performed before the translation resolved. */
    std::uint8_t probes = 0;
    /**
     * Whether the scheme's first-guess path (e.g. the POM-TLB size
     * predictor) was the one that resolved the translation. Always
     * true for schemes without a prediction step.
     */
    bool firstTryServed = true;
};

/** Interface every translation scheme implements. */
class TranslationScheme
{
  public:
    virtual ~TranslationScheme() = default;

    /** Scheme name for reports. */
    virtual std::string name() const = 0;

    /**
     * Resolve the translation of @p vaddr for (vm, pid) after the
     * core's private TLBs missed. @p size is the actual page size of
     * the referenced page (schemes with size predictors must not use
     * it for lookup ordering decisions — only for correctness checks
     * and predictor training).
     */
    virtual SchemeResult translateMiss(CoreId core, Addr vaddr,
                                       PageSize size, VmId vm,
                                       ProcessId pid, Cycles now) = 0;

    /**
     * True when the scheme replaces the private L2 TLBs with its own
     * second-level structure (the Shared_L2 baseline).
     */
    virtual bool providesSecondLevel() const { return false; }

    /**
     * Steady-state pre-population hook: the engine calls this for
     * every page the trace will touch before timed simulation starts,
     * modelling a workload that has been running far longer than the
     * simulated window (the paper's 20-billion-instruction traces).
     * Schemes with large persistent translation stores (POM-TLB, TSB)
     * install the entry untimed; SRAM-only schemes ignore it.
     */
    virtual void
    prewarm(CoreId core, Addr vaddr, PageSize size, VmId vm,
            ProcessId pid, PageNum pfn)
    {
        (void)core;
        (void)vaddr;
        (void)size;
        (void)vm;
        (void)pid;
        (void)pfn;
    }

    /**
     * Single-page shootdown of scheme-held translation state
     * (Section 2.2: the POM-TLB participates in TLB shootdowns).
     */
    virtual void
    invalidatePage(Addr vaddr, PageSize size, VmId vm, ProcessId pid)
    {
        (void)vaddr;
        (void)size;
        (void)vm;
        (void)pid;
    }

    /** VM-wide shootdown of any scheme-held translation state. */
    virtual void invalidateVm(VmId vm) = 0;

    /** Zero every statistic (warmup boundary). */
    virtual void resetStats() = 0;

    /**
     * The scheme's statistics tree, registered into the machine's
     * StatsRegistry; null for schemes that keep no statistics.
     */
    virtual const StatGroup *statistics() const { return nullptr; }

    /**
     * Post-SRAM translation cycles attributed to each serving level,
     * as (ServicePoint, total cycles) pairs. The pair values sum
     * exactly to every cycle this scheme has charged through
     * translateMiss() since the last resetStats() — the invariant
     * behind the `cycle_breakdown` consistency check of
     * `pomtlb-stats-v1` (tests/test_stats_export.cc).
     */
    virtual std::vector<std::pair<ServicePoint, std::uint64_t>>
    cycleBreakdown() const
    {
        return {};
    }
};

} // namespace pomtlb

#endif // POMTLB_SIM_SCHEME_HH

/**
 * @file
 * The translation-scheme plug-in interface.
 *
 * The per-core MMU front end (L1 TLBs, optional private L2 TLB) is
 * common to every design the paper evaluates; what differs is what
 * happens after the last private SRAM TLB misses. Each scheme —
 * baseline nested walk, POM-TLB, Shared_L2, TSB — implements that
 * step, so experiments swap a single object.
 */

#ifndef POMTLB_SIM_SCHEME_HH
#define POMTLB_SIM_SCHEME_HH

#include <optional>
#include <string>
#include <vector>

#include "common/types.hh"

namespace pomtlb
{

/** Which scheme a Machine should be built with. */
enum class SchemeKind : std::uint8_t
{
    /** Conventional 2D nested page walk with PSCs (baseline). */
    NestedWalk = 0,
    /** The paper's part-of-memory L3 TLB. */
    PomTlb = 1,
    /** Shared SRAM L2 TLB (Bhattacharjee et al.). */
    SharedL2 = 2,
    /** SPARC-style software-managed translation storage buffer. */
    Tsb = 3,
};

/** Human-readable scheme name. */
const char *schemeKindName(SchemeKind kind);

/** Every scheme the paper evaluates, in Figure 8 order. */
const std::vector<SchemeKind> &allSchemeKinds();

/**
 * Parse a scheme name as the CLI and sweep specs accept it:
 * "baseline"/"nested", "pom"/"pom-tlb", "shared"/"shared-l2", "tsb",
 * or the display names schemeKindName() produces. Empty optional on
 * anything else.
 */
std::optional<SchemeKind> schemeKindFromName(const std::string &name);

/** What a scheme reports back for one post-L2-TLB-miss translation. */
struct SchemeResult
{
    /** Cycles from the L2 TLB miss to translation availability. */
    Cycles cycles = 0;
    /** The resolved host-physical frame number. */
    PageNum pfn = 0;
    /** Whether a full page walk ended up being required. */
    bool walked = false;
};

/** Interface every translation scheme implements. */
class TranslationScheme
{
  public:
    virtual ~TranslationScheme() = default;

    /** Scheme name for reports. */
    virtual std::string name() const = 0;

    /**
     * Resolve the translation of @p vaddr for (vm, pid) after the
     * core's private TLBs missed. @p size is the actual page size of
     * the referenced page (schemes with size predictors must not use
     * it for lookup ordering decisions — only for correctness checks
     * and predictor training).
     */
    virtual SchemeResult translateMiss(CoreId core, Addr vaddr,
                                       PageSize size, VmId vm,
                                       ProcessId pid, Cycles now) = 0;

    /**
     * True when the scheme replaces the private L2 TLBs with its own
     * second-level structure (the Shared_L2 baseline).
     */
    virtual bool providesSecondLevel() const { return false; }

    /**
     * Steady-state pre-population hook: the engine calls this for
     * every page the trace will touch before timed simulation starts,
     * modelling a workload that has been running far longer than the
     * simulated window (the paper's 20-billion-instruction traces).
     * Schemes with large persistent translation stores (POM-TLB, TSB)
     * install the entry untimed; SRAM-only schemes ignore it.
     */
    virtual void
    prewarm(CoreId core, Addr vaddr, PageSize size, VmId vm,
            ProcessId pid, PageNum pfn)
    {
        (void)core;
        (void)vaddr;
        (void)size;
        (void)vm;
        (void)pid;
        (void)pfn;
    }

    /**
     * Single-page shootdown of scheme-held translation state
     * (Section 2.2: the POM-TLB participates in TLB shootdowns).
     */
    virtual void
    invalidatePage(Addr vaddr, PageSize size, VmId vm, ProcessId pid)
    {
        (void)vaddr;
        (void)size;
        (void)vm;
        (void)pid;
    }

    /** VM-wide shootdown of any scheme-held translation state. */
    virtual void invalidateVm(VmId vm) = 0;

    virtual void resetStats() = 0;
};

} // namespace pomtlb

#endif // POMTLB_SIM_SCHEME_HH

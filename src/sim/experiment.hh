/**
 * @file
 * High-level experiment runners shared by the bench binaries, the
 * examples, and the integration tests: build a machine for a scheme,
 * drive a benchmark through it, and summarise the statistics every
 * figure of the paper needs.
 *
 * The multi-run entry points (compareSchemes, pomImprovementOnly,
 * and everything in sim/sweep.hh) execute their independent runs
 * through the SweepRunner worker pool; ExperimentConfig::sweepJobs
 * bounds the fan-out (1 = strictly serial, the default).
 */

#ifndef POMTLB_SIM_EXPERIMENT_HH
#define POMTLB_SIM_EXPERIMENT_HH

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/config.hh"
#include "sim/engine.hh"
#include "sim/scheme.hh"
#include "trace/profile.hh"

namespace pomtlb
{

/** Everything configurable about one experiment. */
struct ExperimentConfig
{
    SystemConfig system = SystemConfig::table1();
    EngineConfig engine;
    /**
     * Worker threads for the multi-run helpers (compareSchemes,
     * pomImprovementOnly, SweepRunner when constructed from this
     * config). 1 runs serially; 0 resolves to the host's hardware
     * concurrency. defaultExperimentConfig() honours the
     * POMTLB_SWEEP_JOBS environment variable so CI can throttle.
     */
    unsigned sweepJobs = 1;
};

/** Flattened summary of one (benchmark, scheme) run. */
struct SchemeRunSummary
{
    std::string benchmark;
    /** Canonical registry name of the scheme that ran. */
    std::string scheme = "Baseline";
    ExecMode mode = ExecMode::Virtualized;

    RunResult run;

    /** Sum over cores of post-L1 translation cycles (T_post). */
    std::uint64_t translationCycles = 0;
    /** SRAM-TLB share of translationCycles (exact split). */
    std::uint64_t sramCycles = 0;
    /** Scheme share of translationCycles (exact split). */
    std::uint64_t schemeCycles = 0;
    /**
     * Scheme cycles attributed to each serving level, as reported by
     * TranslationScheme::cycleBreakdown(); the values sum exactly to
     * schemeCycles. Serialised as the `cycle_breakdown` object of
     * both `pomtlb-sweep-v1` runs and `pomtlb-stats-v1` documents.
     */
    std::vector<std::pair<ServicePoint, std::uint64_t>>
        cycleBreakdown;
    /** Average scheme cycles per last-level TLB miss (paper's P). */
    double avgPenaltyPerMiss = 0.0;
    /** Fraction of last-level TLB misses requiring a page walk. */
    double walkFraction = 0.0;

    // POM-TLB specific (zero for other schemes).
    double pomL2CacheServiceRate = 0.0;
    double pomL3CacheServiceRate = 0.0;
    double pomDramServiceRate = 0.0;
    double sizePredictorAccuracy = 0.0;
    double bypassPredictorAccuracy = 0.0;
    double dieStackedRowBufferHitRate = 0.0;

    // Data-cache behaviour (all schemes).
    double l3DataHitRate = 0.0;
};

/** Build a machine for (config, scheme), run @p profile, summarise. */
SchemeRunSummary runScheme(const BenchmarkProfile &profile,
                           const std::string &scheme,
                           const ExperimentConfig &config);

/**
 * Legacy-enum overload of runScheme().
 * @deprecated Pass the registry scheme name (e.g. "POM-TLB")
 *             instead; this shim exists only for out-of-tree
 *             callers and will be removed with SchemeKind.
 */
SchemeRunSummary runScheme(const BenchmarkProfile &profile,
                           SchemeKind scheme,
                           const ExperimentConfig &config);

/**
 * Translation-cost ratio and Figure 8 improvement of one scheme
 * relative to the baseline run of the same benchmark.
 */
struct SchemeDelta
{
    double costRatio = 1.0;
    double improvementPct = 0.0;
};

/**
 * One benchmark across every scheme, with Eq. 4-5 improvements.
 *
 * Runs and deltas are keyed by canonical registry scheme name, so
 * figure benches iterate instead of naming each scheme; adding a
 * contender means one registration, not editing every bench.
 */
struct BenchmarkComparison
{
    std::string benchmark;
    /** One summary per scheme, in registry (rank, name) order. */
    std::vector<std::pair<std::string, SchemeRunSummary>> runs;
    /** Cost ratio + improvement per scheme (baseline: 1.0 / 0.0). */
    std::map<std::string, SchemeDelta> deltas;

    /** Summary lookup; fatal if @p scheme was not part of the run. */
    const SchemeRunSummary &summary(const std::string &scheme) const;
    /**
     * Legacy-enum overload of summary().
     * @deprecated Look up by registry scheme name instead; the
     *             shim will be removed with SchemeKind.
     */
    const SchemeRunSummary &summary(SchemeKind kind) const;
    /** Delta lookup; fatal if @p scheme was not part of the run. */
    const SchemeDelta &delta(const std::string &scheme) const;
    /**
     * Legacy-enum overload of delta().
     * @deprecated Look up by registry scheme name instead; the
     *             shim will be removed with SchemeKind.
     */
    const SchemeDelta &delta(SchemeKind kind) const;
    /** The nested-walk baseline's summary. */
    const SchemeRunSummary &baseline() const
    {
        return summary("Baseline");
    }
};

/**
 * Run every registered scheme for @p profile and compute Figure 8's
 * improvement percentages from the paper's additive model. Fans the
 * independent runs out over @p config.sweepJobs workers (thin
 * wrapper over SweepRunner).
 */
BenchmarkComparison compareSchemes(const BenchmarkProfile &profile,
                                   const ExperimentConfig &config);

/**
 * POM-TLB-vs-baseline-only comparison (faster; used by sensitivity
 * and ablation benches). Both machines are built from @p config.
 */
double pomImprovementOnly(const BenchmarkProfile &profile,
                          const ExperimentConfig &config);

/**
 * Overload for ablations that vary only the POM-TLB machine:
 * the baseline runs under @p config.system while the POM-TLB side
 * runs under @p pom_system (same engine settings). This is what the
 * capacity/caching benches hand-rolled before the sweep API existed.
 */
double pomImprovementOnly(const BenchmarkProfile &profile,
                          const ExperimentConfig &config,
                          const SystemConfig &pom_system);

/**
 * Default experiment configuration, honouring the environment:
 * POMTLB_QUICK trims run lengths for smoke runs, POMTLB_SWEEP_JOBS
 * presets the sweep fan-out.
 */
ExperimentConfig defaultExperimentConfig();

} // namespace pomtlb

#endif // POMTLB_SIM_EXPERIMENT_HH

/**
 * @file
 * High-level experiment runners shared by the bench binaries, the
 * examples, and the integration tests: build a machine for a scheme,
 * drive a benchmark through it, and summarise the statistics every
 * figure of the paper needs.
 */

#ifndef POMTLB_SIM_EXPERIMENT_HH
#define POMTLB_SIM_EXPERIMENT_HH

#include <string>
#include <vector>

#include "common/config.hh"
#include "sim/engine.hh"
#include "sim/scheme.hh"
#include "trace/profile.hh"

namespace pomtlb
{

/** Everything configurable about one experiment. */
struct ExperimentConfig
{
    SystemConfig system = SystemConfig::table1();
    EngineConfig engine;
};

/** Flattened summary of one (benchmark, scheme) run. */
struct SchemeRunSummary
{
    std::string benchmark;
    SchemeKind scheme = SchemeKind::NestedWalk;
    ExecMode mode = ExecMode::Virtualized;

    RunResult run;

    /** Sum over cores of post-L1 translation cycles (T_post). */
    std::uint64_t translationCycles = 0;
    /** Average scheme cycles per last-level TLB miss (paper's P). */
    double avgPenaltyPerMiss = 0.0;
    /** Fraction of last-level TLB misses requiring a page walk. */
    double walkFraction = 0.0;

    // POM-TLB specific (zero for other schemes).
    double pomL2CacheServiceRate = 0.0;
    double pomL3CacheServiceRate = 0.0;
    double pomDramServiceRate = 0.0;
    double sizePredictorAccuracy = 0.0;
    double bypassPredictorAccuracy = 0.0;
    double dieStackedRowBufferHitRate = 0.0;

    // Data-cache behaviour (all schemes).
    double l3DataHitRate = 0.0;
};

/** Build a machine for (config, scheme), run @p profile, summarise. */
SchemeRunSummary runScheme(const BenchmarkProfile &profile,
                           SchemeKind scheme,
                           const ExperimentConfig &config);

/** One benchmark across all four schemes, with Eq. 4-5 improvements. */
struct BenchmarkComparison
{
    std::string benchmark;
    SchemeRunSummary baseline;
    SchemeRunSummary pomTlb;
    SchemeRunSummary sharedL2;
    SchemeRunSummary tsb;

    /** Simulated translation-cost ratios vs. the baseline run. */
    double pomCostRatio = 0.0;
    double sharedCostRatio = 0.0;
    double tsbCostRatio = 0.0;

    /** Figure 8 improvements (%). */
    double pomImprovementPct = 0.0;
    double sharedImprovementPct = 0.0;
    double tsbImprovementPct = 0.0;
};

/**
 * Run all four schemes for @p profile and compute Figure 8's
 * improvement percentages from the paper's additive model.
 */
BenchmarkComparison compareSchemes(const BenchmarkProfile &profile,
                                   const ExperimentConfig &config);

/**
 * POM-TLB-vs-baseline-only comparison (faster; used by sensitivity
 * and ablation benches). @p pom_config_system lets the caller tweak
 * the POM-TLB machine independently of the baseline machine.
 */
double pomImprovementOnly(const BenchmarkProfile &profile,
                          const ExperimentConfig &config);

/** Scale run length down for quick CI runs via an env-style factor. */
ExperimentConfig defaultExperimentConfig();

} // namespace pomtlb

#endif // POMTLB_SIM_EXPERIMENT_HH

/**
 * @file
 * The worker-thread pool behind intra-run sharding.
 *
 * A sharded run (EngineConfig::runThreads > 0) splits every phase of
 * simulation into two kinds of work. Order-independent, core-private
 * work — trace generation, stream capture, pre-population page
 * scanning, block prefill — is partitioned over the pool's worker
 * threads; each index of a forEach() batch touches only its own
 * lane's state, so the partition cannot affect results. Everything
 * that couples cores through shared machine state (cache and DRAM
 * transitions, POM-TLB fills, shootdown broadcasts, stat deltas) is
 * applied by the coordinating thread in exact (clock, core) order
 * between batches. The pool is therefore a pure throughput device:
 * results are bit-identical for every thread count, which is what
 * lets the sweep cache exclude the thread count from job identity
 * (docs/internals.md §14).
 *
 * forEach() is a full barrier: it returns only when every index has
 * run, and the completed work happens-before the return (so the
 * coordinator may freely read what the workers wrote, and vice
 * versa for the next batch). Worker exceptions are captured and the
 * first one rethrown on the coordinating thread.
 */

#ifndef POMTLB_SIM_SHARD_HH
#define POMTLB_SIM_SHARD_HH

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pomtlb
{

/** Fixed pool of worker threads running order-free index batches. */
class ShardPool
{
  public:
    /**
     * Spawn @p threads persistent workers. 0 is allowed and spawns
     * nothing: forEach() then runs every index inline, which keeps
     * one code path for the serial fallback.
     */
    explicit ShardPool(unsigned threads);
    ~ShardPool();

    ShardPool(const ShardPool &) = delete;
    ShardPool &operator=(const ShardPool &) = delete;

    /** Worker threads in the pool. */
    unsigned threadCount() const
    {
        return static_cast<unsigned>(workers.size());
    }

    /**
     * Run @p job(index) for every index in [0, @p count), spread
     * over the workers, and wait for all of them. Indices are handed
     * out dynamically, so the assignment of index to thread is
     * nondeterministic — callers must only submit jobs whose indices
     * touch disjoint state. Not reentrant: a job must not call
     * forEach() on its own pool.
     */
    void forEach(std::size_t count,
                 const std::function<void(std::size_t)> &job);

  private:
    void workerLoop();

    std::vector<std::thread> workers;
    std::mutex mutex;
    /** Wakes workers for a new batch (or shutdown). */
    std::condition_variable wake;
    /** Wakes the coordinator when a batch completes. */
    std::condition_variable done;
    /** Batch sequence number; bumping it publishes a new batch. */
    std::uint64_t generation = 0;
    const std::function<void(std::size_t)> *job = nullptr;
    std::size_t total = 0;
    /** Next unclaimed index of the current batch. */
    std::size_t nextIndex = 0;
    /** Indices of the current batch still running or unclaimed. */
    std::size_t pending = 0;
    /** First exception thrown by a worker job this batch. */
    std::exception_ptr firstError;
    bool stopping = false;
};

} // namespace pomtlb

#endif // POMTLB_SIM_SHARD_HH

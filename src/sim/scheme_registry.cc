#include "sim/scheme_registry.hh"

#include <algorithm>
#include <stdexcept>

namespace pomtlb
{

SchemeRegistry &
SchemeRegistry::global()
{
    // Function-local static: safe to touch from any translation
    // unit's static initialisers (first use constructs it).
    static SchemeRegistry registry;
    return registry;
}

void
SchemeRegistry::add(Info info)
{
    if (info.name.empty())
        throw std::invalid_argument("scheme name must not be empty");
    if (!info.factory)
        throw std::invalid_argument("scheme '" + info.name +
                                    "' has no factory");
    auto taken = [this](const std::string &name) {
        for (const Info &existing : schemes) {
            if (existing.name == name)
                return true;
            for (const std::string &alias : existing.aliases) {
                if (alias == name)
                    return true;
            }
        }
        return false;
    };
    if (taken(info.name))
        throw std::invalid_argument("duplicate scheme name '" +
                                    info.name + "'");
    for (const std::string &alias : info.aliases) {
        if (alias == info.name || taken(alias))
            throw std::invalid_argument("duplicate scheme alias '" +
                                        alias + "'");
    }
    schemes.push_back(std::move(info));
}

const SchemeRegistry::Info *
SchemeRegistry::find(const std::string &name_or_alias) const
{
    for (const Info &info : schemes) {
        if (info.name == name_or_alias)
            return &info;
        for (const std::string &alias : info.aliases) {
            if (alias == name_or_alias)
                return &info;
        }
    }
    return nullptr;
}

std::vector<const SchemeRegistry::Info *>
SchemeRegistry::entries() const
{
    std::vector<const Info *> ordered;
    ordered.reserve(schemes.size());
    for (const Info &info : schemes)
        ordered.push_back(&info);
    std::sort(ordered.begin(), ordered.end(),
              [](const Info *a, const Info *b) {
                  if (a->rank != b->rank)
                      return a->rank < b->rank;
                  return a->name < b->name;
              });
    return ordered;
}

std::vector<std::string>
SchemeRegistry::names() const
{
    std::vector<std::string> ordered;
    ordered.reserve(schemes.size());
    for (const Info *info : entries())
        ordered.push_back(info->name);
    return ordered;
}

std::unique_ptr<TranslationScheme>
SchemeRegistry::create(const std::string &name_or_alias,
                       const SystemConfig &config,
                       Machine &machine) const
{
    const Info *info = find(name_or_alias);
    if (info == nullptr)
        throw std::invalid_argument("unknown translation scheme '" +
                                    name_or_alias + "'");
    return info->factory(config, machine);
}

SchemeRegistrar::SchemeRegistrar(SchemeRegistry::Info info)
{
    SchemeRegistry::global().add(std::move(info));
}

// ----------------------------------------------------------------
// SchemeKind compatibility shim
// ----------------------------------------------------------------

const char *
schemeKindName(SchemeKind kind)
{
    // A plain switch (not a registry query) keeps this callable from
    // other translation units' static initialisers; a registry test
    // pins these strings to the registered canonical names.
    switch (kind) {
      case SchemeKind::NestedWalk:
        return "Baseline";
      case SchemeKind::PomTlb:
        return "POM-TLB";
      case SchemeKind::SharedL2:
        return "Shared_L2";
      case SchemeKind::Tsb:
        return "TSB";
    }
    return "?";
}

const std::vector<SchemeKind> &
allSchemeKinds()
{
    static const std::vector<SchemeKind> kinds = {
        SchemeKind::NestedWalk, SchemeKind::PomTlb,
        SchemeKind::SharedL2, SchemeKind::Tsb};
    return kinds;
}

std::optional<SchemeKind>
schemeKindFromName(const std::string &name)
{
    const SchemeRegistry::Info *info =
        SchemeRegistry::global().find(name);
    if (info == nullptr)
        return std::nullopt;
    return info->legacy;
}

} // namespace pomtlb

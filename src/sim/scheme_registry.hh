/**
 * @file
 * String-keyed, self-registering factory for translation schemes.
 *
 * Every scheme the simulator knows — the paper's four (Baseline,
 * POM-TLB, Shared_L2, TSB) and any later contender — registers itself
 * here at static-initialisation time via POMTLB_REGISTER_SCHEME. The
 * Machine, the sweep/experiment layer, and the CLI all resolve scheme
 * names through this registry, so adding a design means adding one
 * translation-unit, not editing seven files.
 *
 * Ordering is deterministic: each registration carries an explicit
 * rank, and iteration is sorted by (rank, name) — never by map order
 * or by the (unspecified) cross-TU static-initialisation order. The
 * paper's four schemes hold ranks 0–3 so Figure-8 ordering is
 * preserved; new schemes append with higher ranks.
 */

#ifndef POMTLB_SIM_SCHEME_REGISTRY_HH
#define POMTLB_SIM_SCHEME_REGISTRY_HH

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sim/scheme.hh"

namespace pomtlb
{

struct SystemConfig;
class Machine;

/** The global name → factory table for translation schemes. */
class SchemeRegistry
{
  public:
    /**
     * Builds one scheme instance wired into @p machine. The machine
     * is fully constructed up to (and including) its page walkers and
     * data hierarchy when the factory runs; MMUs are built afterwards
     * around the returned scheme.
     */
    using Factory = std::function<std::unique_ptr<TranslationScheme>(
        const SystemConfig &, Machine &)>;

    /** One registered scheme. */
    struct Info
    {
        /**
         * Canonical name: what reports, JSON documents
         * (`pomtlb-sweep-v1` / `pomtlb-stats-v1`) and the CLI emit.
         */
        std::string name;
        /** One-line description for `pomtlb list-schemes`. */
        std::string description;
        /** Extra accepted spellings (CLI/sweep parsing only). */
        std::vector<std::string> aliases;
        /**
         * Listing rank; iteration order is (rank, name). The paper's
         * schemes use 0–3 (Figure 8 order); contenders use higher
         * ranks so they append after the originals.
         */
        int rank = 0;
        /** The legacy SchemeKind this scheme shims, if any. */
        std::optional<SchemeKind> legacy;
        /** Scheme constructor. */
        Factory factory;
    };

    /** The process-wide registry every scheme registers into. */
    static SchemeRegistry &global();

    /**
     * Register a scheme. Throws std::invalid_argument when the name
     * or any alias collides with an already-registered name or alias.
     */
    void add(Info info);

    /**
     * Look up a scheme by canonical name or alias; null when the
     * name is unknown.
     */
    const Info *find(const std::string &name_or_alias) const;

    /** Every canonical name, in deterministic (rank, name) order. */
    std::vector<std::string> names() const;

    /** Every registration, in deterministic (rank, name) order. */
    std::vector<const Info *> entries() const;

    /**
     * Build the named scheme for @p machine. Throws
     * std::invalid_argument when the name is unknown.
     */
    std::unique_ptr<TranslationScheme>
    create(const std::string &name_or_alias, const SystemConfig &config,
           Machine &machine) const;

  private:
    std::vector<Info> schemes;
};

/**
 * Registers one scheme into SchemeRegistry::global() during static
 * initialisation — declare one (via POMTLB_REGISTER_SCHEME) at
 * namespace scope in the scheme's translation unit.
 */
class SchemeRegistrar
{
  public:
    /** Registers @p info with the global registry. */
    explicit SchemeRegistrar(SchemeRegistry::Info info);
};

/**
 * Self-registration hook: expands to a static SchemeRegistrar named
 * @p tag initialised from a braced SchemeRegistry::Info. Place one in
 * the scheme's .cc file:
 *
 * @code
 * POMTLB_REGISTER_SCHEME(registerMyScheme, {
 *     .name = "MyScheme",
 *     .description = "one-line summary",
 *     .aliases = {"my-scheme"},
 *     .rank = 6,
 *     .factory = [](const SystemConfig &config, Machine &machine)
 *         -> std::unique_ptr<TranslationScheme> { ... },
 * });
 * @endcode
 */
#define POMTLB_REGISTER_SCHEME(tag, ...)                              \
    static const ::pomtlb::SchemeRegistrar tag(                       \
        ::pomtlb::SchemeRegistry::Info __VA_ARGS__)

} // namespace pomtlb

#endif // POMTLB_SIM_SCHEME_REGISTRY_HH

#include "sim/mmu.hh"

namespace pomtlb
{

Mmu::Mmu(const SystemConfig &config, CoreId core,
         TranslationScheme &scheme)
    : coreId(core), translationScheme(scheme),
      statGroup("mmu." + std::to_string(core))
{
    coreTlbs = std::make_unique<CoreTlbs>(
        config, core, !scheme.providesSecondLevel());
    statGroup.addCounter("translations", translations);
    statGroup.addCounter("l1_hits", l1Hits);
    statGroup.addCounter("l2_hits", l2Hits);
    statGroup.addCounter("last_level_misses", l2Misses);
    statGroup.addCounter("translation_cycles", translationCycles);
    statGroup.addAverage("avg_penalty_per_miss", missPenalty);
    statGroup.addDerived("penalty_p99_bucket", [this] {
        // Upper edge of the bucket containing the 99th percentile.
        const std::uint64_t total = penaltyHist.sampleCount();
        if (total == 0)
            return 0.0;
        std::uint64_t seen = 0;
        for (std::size_t b = 0; b < penaltyHist.bucketCount(); ++b) {
            seen += penaltyHist.bucket(b);
            if (seen * 100 >= total * 99) {
                return static_cast<double>((b + 1) *
                                           penaltyHist.width());
            }
        }
        return static_cast<double>(penaltyHist.maxValue());
    });
}

MmuResult
Mmu::translate(Addr vaddr, PageSize size, VmId vm, ProcessId pid,
               Cycles now)
{
    ++translations;
    MmuResult result;

    const PageNum vpn = pageNumber(vaddr, size);
    const CoreTlbResult tlb = coreTlbs->lookup(vpn, size, vm, pid);
    result.cycles = tlb.cycles;
    result.level = tlb.level;

    if (tlb.level != TlbLevel::Miss) {
        if (tlb.level == TlbLevel::L1)
            ++l1Hits;
        else
            ++l2Hits;
        result.hpa = (tlb.pfn << pageShift(size)) |
                     pageOffset(vaddr, size);
        translationCycles.increment(result.cycles);
        return result;
    }

    ++l2Misses;
    const SchemeResult scheme = translationScheme.translateMiss(
        coreId, vaddr, size, vm, pid, now + result.cycles);
    result.cycles += scheme.cycles;
    result.hpa =
        (scheme.pfn << pageShift(size)) | pageOffset(vaddr, size);
    result.walked = scheme.walked;

    coreTlbs->insert(vpn, size, vm, pid, scheme.pfn);

    translationCycles.increment(result.cycles);
    missPenalty.sample(static_cast<double>(scheme.cycles));
    penaltyHist.sample(scheme.cycles);
    return result;
}

void
Mmu::invalidateVm(VmId vm)
{
    coreTlbs->invalidateVm(vm);
}

void
Mmu::resetStats()
{
    translations.reset();
    l1Hits.reset();
    l2Hits.reset();
    l2Misses.reset();
    translationCycles.reset();
    missPenalty.reset();
    penaltyHist.reset();
    coreTlbs->resetStats();
}

} // namespace pomtlb

#include "sim/mmu.hh"

#include "sim/translation_trace.hh"

namespace pomtlb
{

Mmu::Mmu(const SystemConfig &config, CoreId core,
         TranslationScheme &scheme)
    : coreId(core), translationScheme(scheme),
      statGroup("mmu." + std::to_string(core))
{
    coreTlbs = std::make_unique<CoreTlbs>(
        config, core, !scheme.providesSecondLevel());
    statGroup.addCounter("translations", translations);
    statGroup.addCounter("l1_hits", l1Hits);
    statGroup.addCounter("l2_hits", l2Hits);
    statGroup.addCounter("last_level_misses", l2Misses);
    statGroup.addCounter("translation_cycles", translationCycles);
    statGroup.addCounter("sram_cycles", sramCycles);
    statGroup.addCounter("scheme_cycles", schemeCycles);
    statGroup.addAverage("avg_penalty_per_miss", missPenalty);
    statGroup.addHistogram("penalty_cycle_hist", penaltyCycleHist);
    statGroup.addChild(coreTlbs->l1SmallTlb().stats());
    statGroup.addChild(coreTlbs->l1LargeTlb().stats());
    if (coreTlbs->hasPrivateL2())
        statGroup.addChild(coreTlbs->l2Tlb().stats());
    statGroup.addDerived("penalty_p99_bucket", [this] {
        // Upper edge of the bucket containing the 99th percentile.
        const std::uint64_t total = penaltyHist.sampleCount();
        if (total == 0)
            return 0.0;
        std::uint64_t seen = 0;
        for (std::size_t b = 0; b < penaltyHist.bucketCount(); ++b) {
            seen += penaltyHist.bucket(b);
            if (seen * 100 >= total * 99) {
                return static_cast<double>((b + 1) *
                                           penaltyHist.width());
            }
        }
        return static_cast<double>(penaltyHist.maxValue());
    });
}

MmuResult
Mmu::translate(Addr vaddr, PageSize size, VmId vm, ProcessId pid,
               Cycles now)
{
    ++translations;
    MmuResult result;

    // Sampling decision first, so every translation advances the
    // tracer's 1-in-N counter whether or not this one is recorded.
    const bool traced = tracer != nullptr && tracer->shouldSample();

    const PageNum vpn = pageNumber(vaddr, size);
    const CoreTlbResult tlb = coreTlbs->lookup(vpn, size, vm, pid);
    result.cycles = tlb.cycles;
    result.level = tlb.level;

    if (tlb.level != TlbLevel::Miss) {
        if (tlb.level == TlbLevel::L1) {
            ++l1Hits;
            result.servedBy = ServicePoint::SramL1;
        } else {
            ++l2Hits;
            result.servedBy = ServicePoint::SramL2;
        }
        result.hpa = (tlb.pfn << pageShift(size)) |
                     pageOffset(vaddr, size);
        translationCycles.increment(result.cycles);
        sramCycles.increment(result.cycles);
        if (traced) {
            TranslationEvent event;
            event.seq = tracer->seenCount() - 1;
            event.core = coreId;
            event.vaddr = vaddr;
            event.size = size;
            event.vm = vm;
            event.pid = pid;
            event.start = now;
            event.cycles = result.cycles;
            event.sramCycles = result.cycles;
            event.tlbLevel = tlb.level;
            event.servedBy = result.servedBy;
            tracer->record(event);
        }
        return result;
    }

    ++l2Misses;
    const SchemeResult scheme = translationScheme.translateMiss(
        coreId, vaddr, size, vm, pid, now + result.cycles);
    result.cycles += scheme.cycles;
    result.hpa =
        (scheme.pfn << pageShift(size)) | pageOffset(vaddr, size);
    result.walked = scheme.walked;
    result.servedBy = scheme.servedBy;

    coreTlbs->insert(vpn, size, vm, pid, scheme.pfn);

    translationCycles.increment(result.cycles);
    sramCycles.increment(tlb.cycles);
    schemeCycles.increment(scheme.cycles);
    missPenalty.sample(static_cast<double>(scheme.cycles));
    if (StatsRegistry::detail()) {
        penaltyHist.sample(scheme.cycles);
        penaltyCycleHist.sample(scheme.cycles);
    }
    if (traced) {
        TranslationEvent event;
        event.seq = tracer->seenCount() - 1;
        event.core = coreId;
        event.vaddr = vaddr;
        event.size = size;
        event.vm = vm;
        event.pid = pid;
        event.start = now;
        event.cycles = result.cycles;
        event.sramCycles = tlb.cycles;
        event.schemeCycles = scheme.cycles;
        event.tlbLevel = TlbLevel::Miss;
        event.servedBy = scheme.servedBy;
        event.probes = scheme.probes;
        event.firstTryServed = scheme.firstTryServed;
        event.walked = scheme.walked;
        tracer->record(event);
    }
    return result;
}

void
Mmu::invalidateVm(VmId vm)
{
    coreTlbs->invalidateVm(vm);
}

void
Mmu::resetStats()
{
    translations.reset();
    l1Hits.reset();
    l2Hits.reset();
    l2Misses.reset();
    translationCycles.reset();
    sramCycles.reset();
    schemeCycles.reset();
    missPenalty.reset();
    penaltyHist.reset();
    penaltyCycleHist.reset();
    coreTlbs->resetStats();
}

} // namespace pomtlb

/**
 * @file
 * Min-heap core scheduler for the simulation engine.
 *
 * The engine must always advance the lane (core) that is earliest in
 * simulated time, breaking clock ties toward the lowest lane id —
 * exactly the order the original per-step linear scan produced, so
 * replacing the scan with this heap changes no simulated outcome.
 * The heap's root is the lexicographic minimum of (clock, id); after
 * a lane runs one reference the engine asks staysTop() whether the
 * lane is still globally earliest (two comparisons against the root's
 * children) and only pays a sift when it is not. Lanes that finish
 * their phase are removed with popTop().
 */

#ifndef POMTLB_SIM_CLOCK_HEAP_HH
#define POMTLB_SIM_CLOCK_HEAP_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/log.hh"
#include "common/types.hh"

namespace pomtlb
{

/**
 * Binary min-heap of (deadline, lane id) pairs with deterministic
 * lexicographic ordering: smaller clock first, smaller id on ties.
 */
class ClockHeap
{
  public:
    /** One heap entry: a lane's next-event clock plus its id. */
    struct Entry
    {
        Cycles key = 0;
        std::uint32_t id = 0;
    };

    /** Drop all entries, keeping capacity for @p lanes pushes. */
    void
    reset(std::size_t lanes)
    {
        heap.clear();
        heap.reserve(lanes);
    }

    /** Insert a lane. Ids must be unique while in the heap. */
    void
    push(Cycles key, std::uint32_t id)
    {
        heap.push_back(Entry{key, id});
        siftUp(heap.size() - 1);
    }

    bool empty() const { return heap.empty(); }
    std::size_t size() const { return heap.size(); }

    /** Clock of the earliest lane (heap must be non-empty). */
    Cycles
    topKey() const
    {
        simAssert(!heap.empty(), "topKey() on empty ClockHeap");
        return heap.front().key;
    }

    /** Id of the earliest lane (heap must be non-empty). */
    std::uint32_t
    topId() const
    {
        simAssert(!heap.empty(), "topId() on empty ClockHeap");
        return heap.front().id;
    }

    /**
     * Would the root, rekeyed to (@p key, @p id), still be the
     * global minimum? True on a single-entry heap. This is the
     * engine's fast path: when the just-advanced lane remains
     * earliest it keeps running without any heap restructuring.
     */
    bool
    staysTop(Cycles key, std::uint32_t id) const
    {
        const std::size_t n = heap.size();
        if (n <= 1)
            return true;
        std::size_t child = 1;
        if (n > 2 && less(heap[2], heap[1]))
            child = 2;
        return less(Entry{key, id}, heap[child]);
    }

    /** Re-key the root (its id is unchanged) and restore heap order. */
    void
    replaceTop(Cycles key)
    {
        simAssert(!heap.empty(), "replaceTop() on empty ClockHeap");
        heap.front().key = key;
        siftDown(0);
    }

    /** Remove the earliest lane. */
    void
    popTop()
    {
        simAssert(!heap.empty(), "popTop() on empty ClockHeap");
        heap.front() = heap.back();
        heap.pop_back();
        if (!heap.empty())
            siftDown(0);
    }

  private:
    static bool
    less(const Entry &a, const Entry &b)
    {
        return a.key < b.key || (a.key == b.key && a.id < b.id);
    }

    void
    siftUp(std::size_t i)
    {
        const Entry e = heap[i];
        while (i > 0) {
            const std::size_t parent = (i - 1) / 2;
            if (!less(e, heap[parent]))
                break;
            heap[i] = heap[parent];
            i = parent;
        }
        heap[i] = e;
    }

    void
    siftDown(std::size_t i)
    {
        const Entry e = heap[i];
        const std::size_t n = heap.size();
        for (;;) {
            std::size_t child = 2 * i + 1;
            if (child >= n)
                break;
            if (child + 1 < n && less(heap[child + 1], heap[child]))
                ++child;
            if (!less(heap[child], e))
                break;
            heap[i] = heap[child];
            i = child;
        }
        heap[i] = e;
    }

    std::vector<Entry> heap;
};

} // namespace pomtlb

#endif // POMTLB_SIM_CLOCK_HEAP_HH

/**
 * @file
 * The `pomtlb serve` protocol: a line-oriented JSON (JSONL) request
 * loop that runs sweep campaigns through the sweep-at-scale service
 * (sim/sweep_cache.hh) and streams results incrementally.
 *
 * The session reads one JSON request object per input line and
 * writes one JSON event object per output line, each tagged
 * `"schema": "pomtlb-serve-v1"`. Long campaigns stream a `job`
 * event per completed job — in request order, cached prefixes
 * immediately — so a client (scripts/plot_results.py understands
 * the stream) renders progress without waiting for the end.
 *
 * The protocol lives in the library, parameterised over plain
 * istream/ostream, so the CLI serves a FIFO or stdin with the exact
 * code the tests drive through stringstreams. The full
 * request/event vocabulary is documented in docs/sweep-service.md.
 */

#ifndef POMTLB_SIM_SWEEP_SERVE_HH
#define POMTLB_SIM_SWEEP_SERVE_HH

#include <cstddef>
#include <iosfwd>
#include <string>

#include "common/json.hh"
#include "sim/sweep_cache.hh"

namespace pomtlb
{

/** Schema identifier tagged onto every serve-protocol event line. */
inline constexpr const char *kSweepServeSchemaV1 = "pomtlb-serve-v1";

/** Knobs of one ServeSession. */
struct ServeOptions
{
    /** Result-cache directory shared by every campaign served. */
    std::string cacheDir;
    /**
     * Directory for checkpoint journals, one per campaign
     * (`<dir>/<sweep-hash>.jsonl`); empty disables checkpointing.
     */
    std::string journalDir;
    /** Worker threads per campaign (SweepRunner semantics). */
    unsigned jobs = 1;
    /** Fault injection forwarded to every campaign (tests/CLI). */
    unsigned crashAfterAppends = 0;
};

/**
 * One serve-protocol session over an input/output stream pair.
 *
 * Requests (one JSON object per line, `"op"` selects):
 *  - `ping`      liveness probe, answered with `pong`;
 *  - `list`      answered with a `catalog` of benchmarks + schemes;
 *  - `sweep`     run a campaign (benchmarks x schemes axes plus
 *                config overrides), streaming `job` events and a
 *                final `sweep-end`;
 *  - `run`       single-job sugar for `sweep`;
 *  - `scenario`  run a consolidation-scenario campaign (tenant
 *                counts plus churn/overcommit/storm knobs; see
 *                sim/scenario.hh), streaming `scenario-job` events
 *                and a final `scenario-end`;
 *  - `stats`     accounting of the most recent campaign;
 *  - `shutdown`  answered with `bye`; the session ends.
 *
 * Malformed lines and unknown ops produce an `error` event and the
 * loop continues; EOF ends the session without a `bye`.
 */
class ServeSession
{
  public:
    ServeSession(std::istream &in, std::ostream &out,
                 ServeOptions serve_options);

    /**
     * Announce `ready`, then serve requests until `shutdown` or
     * EOF. Returns the number of request lines processed.
     */
    std::size_t runToCompletion();

    /** Accounting of the most recent campaign (all zero before). */
    const SweepServiceStats &lastCampaignStats() const
    {
        return campaignStats;
    }

  private:
    void emitEvent(JsonValue event);
    JsonValue statsJson() const;
    void handleRequest(const JsonValue &request);
    void handleSweep(const JsonValue &request);
    void handleScenario(const JsonValue &request);

    std::istream &input;
    std::ostream &output;
    ServeOptions serveOptions;
    SweepServiceStats campaignStats;
    bool shuttingDown = false;
};

} // namespace pomtlb

#endif // POMTLB_SIM_SWEEP_SERVE_HH

#include "sim/shard.hh"

namespace pomtlb
{

ShardPool::ShardPool(unsigned threads)
{
    workers.reserve(threads);
    for (unsigned t = 0; t < threads; ++t)
        workers.emplace_back([this] { workerLoop(); });
}

ShardPool::~ShardPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex);
        stopping = true;
    }
    wake.notify_all();
    for (std::thread &worker : workers)
        worker.join();
}

void
ShardPool::forEach(std::size_t count,
                   const std::function<void(std::size_t)> &job_ref)
{
    if (count == 0)
        return;
    if (workers.empty()) {
        for (std::size_t index = 0; index < count; ++index)
            job_ref(index);
        return;
    }

    std::unique_lock<std::mutex> lock(mutex);
    job = &job_ref;
    total = count;
    nextIndex = 0;
    pending = count;
    firstError = nullptr;
    ++generation;
    lock.unlock();
    wake.notify_all();

    lock.lock();
    done.wait(lock, [this] { return pending == 0; });
    job = nullptr;
    if (firstError) {
        std::exception_ptr error = firstError;
        firstError = nullptr;
        std::rethrow_exception(error);
    }
}

void
ShardPool::workerLoop()
{
    std::uint64_t seen_generation = 0;
    std::unique_lock<std::mutex> lock(mutex);
    for (;;) {
        wake.wait(lock, [&] {
            return stopping || generation != seen_generation;
        });
        if (stopping)
            return;
        seen_generation = generation;

        // Drain the batch: claim one index at a time under the lock,
        // run it unlocked. The per-index lock round-trip is noise
        // next to the work each index does (a whole lane's trace
        // scan or block fill), and it gives the happens-before edge
        // the barrier contract promises.
        while (nextIndex < total) {
            const std::size_t index = nextIndex++;
            const std::function<void(std::size_t)> *batch = job;
            lock.unlock();
            try {
                (*batch)(index);
            } catch (...) {
                lock.lock();
                if (!firstError)
                    firstError = std::current_exception();
                lock.unlock();
            }
            lock.lock();
            if (--pending == 0)
                done.notify_all();
        }
    }
}

} // namespace pomtlb

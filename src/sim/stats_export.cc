#include "sim/stats_export.hh"

#include "sim/engine.hh"
#include "sim/machine.hh"
#include "sim/translation_trace.hh"

namespace pomtlb
{

namespace
{

/** Sum the MMUs' exact SRAM/scheme cycle split across all cores. */
struct CycleSplit
{
    std::uint64_t sram = 0;
    std::uint64_t scheme = 0;
    std::uint64_t total = 0;
};

CycleSplit
sumCycleSplit(Machine &machine)
{
    CycleSplit split;
    for (unsigned core = 0; core < machine.numCores(); ++core) {
        const Mmu &mmu = machine.mmu(core);
        split.sram += mmu.totalSramCycles();
        split.scheme += mmu.totalSchemeCycles();
        split.total += mmu.totalTranslationCycles();
    }
    return split;
}

} // namespace

JsonValue
buildStatsDocument(Machine &machine, const RunResult &result,
                   const std::string &benchmark)
{
    JsonValue doc = JsonValue::object();
    doc.set("schema", kStatsSchemaV1);
    doc.set("benchmark", benchmark);
    doc.set("scheme", machine.schemeName());
    doc.set("mode", execModeName(machine.config().mode));
    doc.set("num_cores",
            static_cast<std::uint64_t>(machine.numCores()));

    // -- totals ----------------------------------------------------
    std::uint64_t translations = 0;
    std::uint64_t l1_hits = 0;
    std::uint64_t l2_hits = 0;
    std::uint64_t ll_misses = 0;
    for (unsigned core = 0; core < machine.numCores(); ++core) {
        const Mmu &mmu = machine.mmu(core);
        translations += mmu.translationCount();
        l1_hits += mmu.l1HitCount();
        l2_hits += mmu.l2HitCount();
        ll_misses += mmu.lastLevelMissCount();
    }
    const CycleSplit split = sumCycleSplit(machine);

    const RunTotals &run_totals = result.totals();
    JsonValue totals = JsonValue::object();
    totals.set("refs", run_totals.refs);
    totals.set("translations", translations);
    totals.set("l1_tlb_hits", l1_hits);
    totals.set("l2_tlb_hits", l2_hits);
    totals.set("last_level_tlb_misses", ll_misses);
    totals.set("translation_cycles", split.total);
    totals.set("sram_cycles", split.sram);
    totals.set("scheme_cycles", split.scheme);
    totals.set("page_walks", run_totals.pageWalks);
    totals.set("shootdowns", run_totals.shootdowns);
    totals.set("avg_penalty_per_miss", run_totals.avgPenaltyPerMiss);
    totals.set("walk_fraction", run_totals.walkFraction);
    doc.set("totals", std::move(totals));

    // -- cycle breakdown (Figure 8 decomposition) ------------------
    // "sram_tlb" is the private-SRAM share; the remaining keys come
    // from the scheme's per-service-point accounting and sum exactly
    // to totals.scheme_cycles (asserted in tests).
    JsonValue breakdown = JsonValue::object();
    breakdown.set("sram_tlb", split.sram);
    for (const auto &[point, cycles] :
         machine.scheme().cycleBreakdown()) {
        breakdown.set(servicePointName(point), cycles);
    }
    doc.set("cycle_breakdown", std::move(breakdown));

    // -- full component statistics tree ----------------------------
    doc.set("components", machine.registry().toJson());

    // -- trace metadata (only when a tracer is attached) -----------
    if (const TranslationTracer *tracer = machine.tracer()) {
        JsonValue trace = JsonValue::object();
        trace.set("sample_interval", tracer->sampleInterval());
        trace.set("capacity",
                  static_cast<std::uint64_t>(tracer->capacity()));
        trace.set("seen", tracer->seenCount());
        trace.set("recorded", tracer->recordedCount());
        trace.set("held",
                  static_cast<std::uint64_t>(tracer->size()));
        doc.set("trace", std::move(trace));
    }

    return doc;
}

} // namespace pomtlb

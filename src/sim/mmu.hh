/**
 * @file
 * The per-core MMU front end: private SRAM TLBs plus the pluggable
 * translation scheme behind them. This is the component every traced
 * memory reference enters first.
 */

#ifndef POMTLB_SIM_MMU_HH
#define POMTLB_SIM_MMU_HH

#include <memory>

#include "common/config.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "sim/scheme.hh"
#include "tlb/core_tlbs.hh"

namespace pomtlb
{

class TranslationTracer;

/** Result of translating one reference. */
struct MmuResult
{
    /** Total translation cycles beyond an L1 TLB hit (0 on L1 hit). */
    Cycles cycles = 0;
    /** The host-physical address. */
    HostPhysAddr hpa = 0;
    /** Which private TLB level hit (Miss = scheme resolved it). */
    TlbLevel level = TlbLevel::Miss;
    /** The structure that finally produced the translation. */
    ServicePoint servedBy = ServicePoint::SramL1;
    /** Whether a full page walk happened. */
    bool walked = false;
};

/** One core's MMU. */
class Mmu
{
  public:
    /**
     * @param config System configuration (TLB geometry).
     * @param core   Owning core id.
     * @param scheme Post-TLB translation scheme (shared object).
     */
    Mmu(const SystemConfig &config, CoreId core,
        TranslationScheme &scheme);

    /** Translate @p vaddr; updates TLBs and charges scheme costs. */
    MmuResult translate(Addr vaddr, PageSize size, VmId vm,
                        ProcessId pid, Cycles now);

    /** VM-wide shootdown of this core's private TLBs. */
    void invalidateVm(VmId vm);

    /**
     * Attach (or detach with nullptr) a translation tracer; every
     * translation then consults its 1-in-N sampler. The tracer must
     * outlive the MMU or be detached first.
     */
    void setTracer(TranslationTracer *t) { tracer = t; }

    /** This core's private SRAM TLB stack. */
    CoreTlbs &tlbs() { return *coreTlbs; }
    /** This core's private SRAM TLB stack (read-only). */
    const CoreTlbs &tlbs() const { return *coreTlbs; }

    /** References translated since the stats reset. */
    std::uint64_t translationCount() const
    {
        return translations.value();
    }
    /** Translations the L1 TLBs served. */
    std::uint64_t l1HitCount() const { return l1Hits.value(); }
    /** Translations the private L2 TLB served. */
    std::uint64_t l2HitCount() const { return l2Hits.value(); }
    /** Translations that missed every private SRAM level. */
    std::uint64_t lastLevelMissCount() const { return l2Misses.value(); }
    /** Sum of post-L1 translation cycles (the T_post of DESIGN.md). */
    std::uint64_t totalTranslationCycles() const
    {
        return translationCycles.value();
    }
    /**
     * Cycles charged by the SRAM TLB levels alone. The invariant
     * totalTranslationCycles() == totalSramCycles() +
     * totalSchemeCycles() holds exactly and is asserted in tests.
     */
    std::uint64_t totalSramCycles() const
    {
        return sramCycles.value();
    }
    /** Cycles charged by the translation scheme alone. */
    std::uint64_t totalSchemeCycles() const
    {
        return schemeCycles.value();
    }
    /** Average scheme cycles per last-level TLB miss (the paper's P). */
    double avgPenaltyPerMiss() const { return missPenalty.mean(); }

    /** Distribution of per-miss penalties (32-cycle buckets). */
    const Histogram &penaltyHistogram() const { return penaltyHist; }

    /** Log2-bucketed distribution of per-miss penalties. */
    const Log2Histogram &penaltyCycleHistogram() const
    {
        return penaltyCycleHist;
    }

    /** This core's MMU statistics group. */
    const StatGroup &stats() const { return statGroup; }

    /** Zero every MMU and private-TLB statistic. */
    void resetStats();

  private:
    CoreId coreId;
    TranslationScheme &translationScheme;
    std::unique_ptr<CoreTlbs> coreTlbs;
    /** Optional sampled event trace sink (not owned). */
    TranslationTracer *tracer = nullptr;

    Counter translations;
    Counter l1Hits;
    Counter l2Hits;
    Counter l2Misses;
    Counter translationCycles;
    /** SRAM-TLB share of translationCycles (exact split). */
    Counter sramCycles;
    /** Scheme share of translationCycles (exact split). */
    Counter schemeCycles;
    Average missPenalty;
    Histogram penaltyHist{32, 32};
    Log2Histogram penaltyCycleHist;
    StatGroup statGroup;
};

} // namespace pomtlb

#endif // POMTLB_SIM_MMU_HH
